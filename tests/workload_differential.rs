//! Workload differential smoke test: the real benchmark suite, not just
//! fuzzer-generated programs, must co-simulate exactly.
//!
//! For every GAP and SPEC-like workload, the first `PREFIX` retired
//! main-thread records from the baseline pipeline must equal the
//! functional emulator's trace, and the pipeline's retire-time register
//! file (over registers the prefix wrote) and memory image must equal the
//! emulator's state at the same instruction boundary. This is the
//! workload-scale cousin of the `phelps-verify` fuzzing harness: the
//! fuzzer covers the ISA corners, this covers the paper's actual kernels
//! (pointer chasing, worklists, hash tables) at their real working-set
//! sizes.
//!
//! The full run-to-halt check lives in the `#[ignore]`d test below: at
//! ~290M combined instructions it is release-mode work, and
//! `scripts/ci.sh` runs it there.

use phelps_repro::prelude::*;
use std::collections::HashSet;

/// Retired-instruction prefix compared per workload. Long enough to get
/// every kernel out of its setup code and into its main loop.
const PREFIX: usize = 10_000;

fn workload(name: &str) -> Workload {
    suite::gap_workload(name)
        .or_else(|| suite::spec_workload(name))
        .unwrap_or_else(|| panic!("unknown workload {name}"))
}

fn check_prefix(w: Workload) {
    let name = w.name;
    let cpu = w.cpu;
    let mut emu = cpu.clone();
    let mut want = Vec::with_capacity(PREFIX);
    for i in 0..PREFIX {
        match emu.step() {
            Ok(rec) => want.push(rec),
            Err(e) => panic!("{name}: emulator fault at instruction {i}: {e}"),
        }
        if emu.is_halted() {
            break;
        }
    }

    let mut cfg = RunConfig::scaled(Mode::Baseline);
    cfg.max_mt_insts = want.len() as u64;
    let r = simulate_observed(cpu, &cfg);
    let got = r.retire_log.expect("retire log was requested");
    assert_eq!(
        got.len(),
        want.len(),
        "{name}: pipeline retired {} records, emulator executed {}",
        got.len(),
        want.len()
    );
    for (i, (w_rec, g_rec)) in want.iter().zip(got.iter()).enumerate() {
        assert_eq!(w_rec, g_rec, "{name}: retired record {i} diverges");
    }
    assert_eq!(r.stats.mt_retired, want.len() as u64, "{name}: stat count");

    // Both machines now sit at the same instruction boundary. The
    // pipeline's register file starts zeroed and is written only at
    // retire, so compare the registers the prefix actually wrote; memory
    // is seeded from the guest image and must match everywhere.
    let fin = r.final_state.expect("final state was requested");
    let written: HashSet<usize> = want
        .iter()
        .filter_map(|rec| rec.inst.dst())
        .map(|d| d.index())
        .collect();
    for idx in written {
        let reg = phelps_isa::Reg::new(idx as u8).expect("valid index");
        assert_eq!(
            fin.mt_regs[idx],
            emu.reg(reg),
            "{name}: final register {reg} diverges"
        );
    }
    assert_eq!(
        fin.mem.first_difference(&emu.mem),
        None,
        "{name}: final memory diverges"
    );
}

#[test]
fn gap_workloads_cosimulate_exactly() {
    for name in suite::gap_names() {
        check_prefix(workload(name));
    }
}

#[test]
fn spec_workloads_cosimulate_exactly() {
    for name in suite::spec_names() {
        check_prefix(workload(name));
    }
}

/// Every workload is a terminating program: the emulator reaches `halt`
/// (nothing in the suite spins forever waiting on state the timing model
/// would have to provide). ~290M combined instructions, so release-only:
/// `scripts/ci.sh` runs it via `cargo test --release -- --ignored`.
#[test]
#[ignore = "runs every workload to completion; scripts/ci.sh runs this in release"]
fn every_workload_halts_on_the_emulator() {
    for name in suite::gap_names().iter().chain(suite::spec_names()) {
        let mut cpu = workload(name).cpu;
        cpu.run(250_000_000)
            .unwrap_or_else(|e| panic!("{name}: emulator fault: {e}"));
        assert!(
            cpu.is_halted(),
            "{name} did not halt within 250M instructions"
        );
    }
}
