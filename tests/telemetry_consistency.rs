//! Cross-checks the telemetry subsystem against the simulator's own
//! statistics: every counter the pipeline reports through `SimStats` must
//! agree with the independently-traced telemetry stream for the same run.

use phelps_repro::prelude::*;
use phelps_telemetry as tlm;

/// Small-but-representative run configuration (mirrors `end_to_end.rs`).
fn quick(mode: Mode) -> RunConfig {
    RunConfig::quick(mode, 200_000, 80_000)
}

/// Installs a verbose sink big enough that nothing is dropped.
fn install_trace(label: &str) {
    tlm::install(tlm::Config {
        epoch_len: 25_000,
        verbose: true,
        ring_capacity: 1 << 20,
        label: label.to_string(),
        epoch_sink: None,
    });
}

#[test]
fn baseline_trace_matches_sim_stats() {
    install_trace("consistency/baseline");
    let r = simulate(suite::astar_small().cpu, &quick(Mode::Baseline));
    let rep = r
        .telemetry
        .as_ref()
        .expect("telemetry installed before the run must be harvested");
    assert!(r.stats.mt_retired > 0, "run must make progress");

    // Counters traced at retire agree exactly with SimStats.
    assert_eq!(rep.counter(tlm::Counter::MtRetired), r.stats.mt_retired);
    assert_eq!(
        rep.counter(tlm::Counter::MtCondBranches),
        r.stats.mt_cond_branches
    );
    assert_eq!(
        rep.counter(tlm::Counter::MtMispredicts),
        r.stats.mt_mispredicts
    );

    // Verbose mode records one event per misprediction; the ring was sized
    // so none were dropped, making the event stream exhaustive.
    assert_eq!(rep.events_dropped, 0, "ring must not overflow in this test");
    assert_eq!(
        rep.event_count(tlm::EventKind::Mispredict) as u64,
        r.stats.mt_mispredicts
    );

    // The default predictor is consulted once per retired conditional
    // branch in a baseline run, so its own update counters line up too.
    assert_eq!(
        rep.counter(tlm::Counter::BpredUpdates),
        r.stats.mt_cond_branches
    );
    assert_eq!(
        rep.counter(tlm::Counter::BpredWrong),
        r.stats.mt_mispredicts
    );

    // Epoch samples partition the run: per-epoch retired counts must sum
    // back to the total, and end cycles must be monotone.
    let epoch_retired: u64 = rep.epochs.iter().map(|e| e.retired).sum();
    assert_eq!(epoch_retired, r.stats.mt_retired);
    for w in rep.epochs.windows(2) {
        assert!(w[0].end_cycle < w[1].end_cycle, "epoch cycles monotone");
    }
    assert_eq!(rep.final_cycle, r.stats.cycles);
}

#[test]
fn phelps_trace_matches_trigger_and_queue_stats() {
    install_trace("consistency/phelps");
    let r = simulate(
        suite::astar_small().cpu,
        &quick(Mode::Phelps(PhelpsFeatures::full())),
    );
    let rep = r.telemetry.as_ref().expect("telemetry must be harvested");

    assert_eq!(rep.counter(tlm::Counter::Triggers), r.stats.triggers);
    assert_eq!(
        rep.counter(tlm::Counter::Terminations),
        r.stats.terminations
    );
    assert_eq!(
        rep.event_count(tlm::EventKind::Trigger) as u64,
        r.stats.triggers
    );
    assert_eq!(
        rep.event_count(tlm::EventKind::Terminate) as u64,
        r.stats.terminations
    );
    assert_eq!(
        rep.counter(tlm::Counter::PredConsumeHits),
        r.stats.preds_from_queue
    );
    assert_eq!(
        rep.counter(tlm::Counter::PredConsumeUntimely),
        r.stats.queue_untimely
    );
}

#[test]
fn report_serializes_to_valid_json() {
    install_trace("consistency/json");
    let r = simulate(suite::astar_small().cpu, &quick(Mode::Baseline));
    let rep = r.telemetry.as_ref().expect("telemetry must be harvested");

    let json = rep.to_json();
    let v = tlm::parse_json(&json).expect("report JSON must parse");
    assert_eq!(
        v.get("label").and_then(|l| l.as_str()),
        Some("consistency/json")
    );
    assert_eq!(
        v.get("final_cycle").and_then(|c| c.as_u64()),
        Some(r.stats.cycles)
    );
    let counters = v.get("counters").expect("counters object");
    assert_eq!(
        counters.get("mt_retired").and_then(|c| c.as_u64()),
        Some(r.stats.mt_retired)
    );
    let epochs = v.get("epochs").and_then(|e| e.as_array()).expect("epochs");
    assert_eq!(epochs.len(), rep.epochs.len());
}

#[test]
fn no_install_means_no_telemetry_and_no_overhead_path() {
    // Without an installed sink, the run must not fabricate a report.
    let r = simulate(suite::astar_small().cpu, &quick(Mode::Baseline));
    assert!(r.telemetry.is_none());
    assert!(!tlm::enabled());
}
