//! Port-model and L1I integration tests.
//!
//! Three families:
//!
//! 1. **Ideal-memory compatibility** — with every bandwidth limit removed
//!    and the L1I disabled ([`CoreConfig::ideal_memory`]), the refactored
//!    request path must reproduce the pre-refactor golden cycle counts to
//!    within 0.5% (the residual delta comes from retired stores now
//!    allocating MSHRs, so later loads merge onto in-flight store fills
//!    instead of hitting eagerly-filled tags).
//! 2. **L1I behavior** — a straight-line code footprint larger than the
//!    L1I misses and stalls fetch on every pass; a tight loop only takes
//!    compulsory misses; a W>0 checkpoint warmup replays the lead-in
//!    through the L1I so the region starts warm.
//! 3. **Bandwidth pressure** — with paper-default port widths, a Phelps
//!    run shows nonzero per-level port-stall counters, both in `SimStats`
//!    and in the telemetry stream.

use phelps_repro::phelps_ckpt::{capture_snapshots, resume};
use phelps_repro::prelude::*;
use phelps_telemetry as tlm;

/// Pre-refactor golden pins (see the history note in
/// `tests/golden_stats.rs`).
const OLD_BASELINE_CYCLES: u64 = 152_471;
const OLD_PHELPS_CYCLES: u64 = 149_181;

fn ideal_cfg(mode: Mode) -> RunConfig {
    let mut c = RunConfig::quick(mode, 200_000, 80_000);
    c.core = c.core.ideal_memory();
    c
}

fn within_half_percent(got: u64, want: u64) -> bool {
    got.abs_diff(want) as f64 / want as f64 <= 0.005
}

/// A loop whose straight-line body (12K instructions, 48KB) overflows the
/// 32KB L1I: every pass re-misses the whole footprint.
fn straightline_kernel(passes: u64) -> Cpu {
    let mut a = Asm::new(0x10000);
    a.label("pass");
    for _ in 0..12_000 {
        a.add(Reg::A3, Reg::A3, Reg::A4);
    }
    a.addi(Reg::A1, Reg::A1, 1);
    a.bne(Reg::A1, Reg::A2, "pass");
    a.halt();
    let mut cpu = Cpu::new(a.assemble().expect("assembles"));
    cpu.set_reg(Reg::A2, passes);
    cpu
}

/// A four-instruction loop: one code block, compulsory misses only.
fn tight_loop_kernel(iters: u64) -> Cpu {
    let mut a = Asm::new(0x10000);
    a.label("loop");
    a.add(Reg::A3, Reg::A3, Reg::A4);
    a.xor(Reg::A4, Reg::A4, Reg::A3);
    a.addi(Reg::A1, Reg::A1, 1);
    a.bne(Reg::A1, Reg::A2, "loop");
    a.halt();
    let mut cpu = Cpu::new(a.assemble().expect("assembles"));
    cpu.set_reg(Reg::A2, iters);
    cpu
}

#[test]
fn ideal_memory_reproduces_prerefactor_baseline() {
    let r = simulate(suite::astar_small().cpu, &ideal_cfg(Mode::Baseline));
    assert!(
        within_half_percent(r.stats.cycles, OLD_BASELINE_CYCLES),
        "ideal-memory baseline drifted past 0.5%: got {} want ~{}",
        r.stats.cycles,
        OLD_BASELINE_CYCLES
    );
    // No L1I, no port limits: the new counters must all stay zero.
    assert_eq!(r.stats.l1i_accesses, 0);
    assert_eq!(r.stats.l1i_misses, 0);
    assert_eq!(r.stats.mt_fetch_stall_ifetch, 0);
    assert_eq!(r.stats.l1i_port_stalls, 0);
    assert_eq!(r.stats.l1d_port_stalls, 0);
    assert_eq!(r.stats.l2_port_stalls, 0);
    assert_eq!(r.stats.l3_port_stalls, 0);
    assert_eq!(r.stats.dram_queue_stalls, 0);
}

#[test]
fn ideal_memory_reproduces_prerefactor_phelps() {
    let r = simulate(
        suite::astar_small().cpu,
        &ideal_cfg(Mode::Phelps(PhelpsFeatures::full())),
    );
    assert!(
        within_half_percent(r.stats.cycles, OLD_PHELPS_CYCLES),
        "ideal-memory phelps drifted past 0.5%: got {} want ~{}",
        r.stats.cycles,
        OLD_PHELPS_CYCLES
    );
}

#[test]
fn straightline_footprint_misses_l1i_and_stalls_fetch() {
    let cfg = RunConfig::quick(Mode::Baseline, 36_100, 12_000);
    let r = simulate(straightline_kernel(3), &cfg);
    // 48KB body in a 32KB cache: every pass re-misses its ~750 blocks.
    assert!(
        r.stats.l1i_misses > 1_000,
        "expected capacity thrash, got {} L1I misses",
        r.stats.l1i_misses
    );
    let mpki = 1000.0 * r.stats.l1i_misses as f64 / r.stats.mt_retired as f64;
    assert!(mpki > 10.0, "L1I MPKI {mpki:.1} too low for this footprint");
    assert!(
        r.stats.mt_fetch_stall_ifetch > 0,
        "I-misses must stall fetch"
    );
    assert!(r.stats.l1i_accesses >= r.stats.l1i_misses);
}

#[test]
fn tight_loop_takes_compulsory_l1i_misses_only() {
    let cfg = RunConfig::quick(Mode::Baseline, 40_100, 12_000);
    let r = simulate(tight_loop_kernel(10_000), &cfg);
    // The whole kernel is two code blocks; after they fill, fetch never
    // misses again.
    assert!(
        r.stats.l1i_misses <= 2,
        "tight loop re-missed the L1I: {} misses",
        r.stats.l1i_misses
    );
    assert!(r.stats.l1i_accesses > 1_000, "block-grain probes expected");
}

#[test]
fn checkpoint_warmup_warms_l1i() {
    let skip = 20_000;
    let warm_window = 2_000;
    let cfg = RunConfig::quick(Mode::Baseline, 20_000, 8_000);

    // W=0: the region starts with a cold L1I and takes compulsory misses.
    let snap = capture_snapshots(&mut tight_loop_kernel(100_000), &[skip], 0)
        .expect("capture")
        .pop()
        .expect("one snapshot");
    let r0 = resume(tight_loop_kernel(100_000), &snap, 0).expect("restore");
    let cold = simulate_warmed(r0.cpu, &cfg, &r0.warm);
    assert!(
        cold.stats.l1i_misses > 0,
        "cold region start must take a compulsory I-miss"
    );

    // W>0: the warmup replay walks the same loop body through the L1I, so
    // the region itself never I-misses.
    let snap = capture_snapshots(&mut tight_loop_kernel(100_000), &[skip], warm_window)
        .expect("capture")
        .pop()
        .expect("one snapshot");
    let rw = resume(tight_loop_kernel(100_000), &snap, warm_window).expect("restore");
    assert!(!rw.warm.is_empty(), "warmup records expected");
    let warm = simulate_warmed(rw.cpu, &cfg, &rw.warm);
    assert_eq!(
        warm.stats.l1i_misses, 0,
        "warmup replay must have filled the loop's code blocks"
    );
}

#[test]
fn paper_ports_show_bandwidth_pressure_and_l1i_traffic() {
    tlm::install(tlm::Config {
        epoch_len: 25_000,
        verbose: false,
        ring_capacity: 1 << 12,
        label: "mem_ports/pressure".to_string(),
        epoch_sink: None,
    });
    // Paper-default config: L1I enabled, finite port widths everywhere.
    let cfg = RunConfig::quick(Mode::Phelps(PhelpsFeatures::full()), 200_000, 80_000);
    let r = simulate(suite::astar_small().cpu, &cfg);
    assert!(r.stats.l1i_accesses > 0, "L1I saw no fetch traffic");
    assert!(r.stats.l1i_misses > 0, "no compulsory L1I misses");
    assert!(
        r.stats.l1d_port_stalls > 0,
        "2-wide L1D port never backed up under load+store+prefetch traffic"
    );

    // The same numbers must flow through telemetry.
    let rep = r.telemetry.as_ref().expect("telemetry harvested");
    assert_eq!(rep.counter(tlm::Counter::L1iMisses), r.stats.l1i_misses);
    assert_eq!(
        rep.counter(tlm::Counter::L1dPortStalls),
        r.stats.l1d_port_stalls
    );
    assert_eq!(
        rep.counter(tlm::Counter::L1iPortStalls),
        r.stats.l1i_port_stalls
    );
    assert_eq!(
        rep.counter(tlm::Counter::L2PortStalls),
        r.stats.l2_port_stalls
    );
    assert_eq!(
        rep.counter(tlm::Counter::L3PortStalls),
        r.stats.l3_port_stalls
    );
    assert_eq!(
        rep.counter(tlm::Counter::DramQueueStalls),
        r.stats.dram_queue_stalls
    );
    assert_eq!(
        rep.counter(tlm::Counter::IfetchStallCycles),
        r.stats.mt_fetch_stall_ifetch
    );
    // Fetch-stall cycles appear in the per-epoch series.
    let epoch_stalls: u64 = rep.epochs.iter().map(|e| e.ifetch_stalls).sum();
    assert!(
        epoch_stalls <= r.stats.mt_fetch_stall_ifetch,
        "epoch series cannot exceed the total"
    );
}
