//! End-to-end integration tests spanning every crate: workloads run through
//! the full simulator under each mode, checking the paper's qualitative
//! claims at reduced scale.

use phelps_repro::prelude::*;

fn quick(mode: Mode) -> RunConfig {
    RunConfig::quick(mode, 500_000, 80_000)
}

/// Perfect branch prediction is an upper bound; Phelps sits between the
/// baseline and perfect BP on the delinquent astar kernel.
#[test]
fn astar_ordering_baseline_phelps_perfect() {
    let base = simulate(suite::astar().cpu, &quick(Mode::Baseline));
    let ph = simulate(
        suite::astar().cpu,
        &quick(Mode::Phelps(PhelpsFeatures::full())),
    );
    let perf = simulate(suite::astar().cpu, &quick(Mode::PerfectBp));
    assert!(
        ph.stats.ipc() > base.stats.ipc(),
        "phelps {} > baseline {}",
        ph.stats.ipc(),
        base.stats.ipc()
    );
    assert!(
        perf.stats.ipc() > ph.stats.ipc(),
        "perfect BP {} > phelps {}",
        perf.stats.ipc(),
        ph.stats.ipc()
    );
    assert!(ph.stats.mpki() < base.stats.mpki());
}

/// The astar helper thread reaches the Fig. 5 structure: stores are
/// retained, predicated, and mostly suppressed.
#[test]
fn astar_helper_thread_engages() {
    let ph = simulate(
        suite::astar().cpu,
        &quick(Mode::Phelps(PhelpsFeatures::full())),
    );
    assert!(ph.stats.triggers > 0, "helper thread triggered");
    assert!(ph.stats.ht_retired > 10_000, "helper thread did real work");
    assert!(
        ph.stats.preds_from_queue > 1_000,
        "queues supplied predictions: {}",
        ph.stats.preds_from_queue
    );
}

/// Dual decoupled helper threads engage on bfs's nested-loop idiom: one
/// trigger per frontier pass, with visits flowing outer→inner.
#[test]
fn bfs_uses_dual_threads_per_frontier_pass() {
    let ph = simulate(
        suite::bfs().cpu,
        &quick(Mode::Phelps(PhelpsFeatures::full())),
    );
    assert!(
        ph.stats.triggers > 10,
        "one trigger per frontier pass: {}",
        ph.stats.triggers
    );
    assert!(ph.stats.preds_from_queue > 1_000);
    let base = simulate(suite::bfs().cpu, &quick(Mode::Baseline));
    assert!(
        ph.stats.mpki() < base.stats.mpki(),
        "bfs MPKI improves: {} vs {}",
        ph.stats.mpki(),
        base.stats.mpki()
    );
}

/// Fig. 11's headline: full-featured Phelps beats Branch Runahead on astar.
#[test]
fn phelps_beats_branch_runahead_on_astar() {
    let ph = simulate(
        suite::astar().cpu,
        &quick(Mode::Phelps(PhelpsFeatures::full())),
    );
    let br = simulate_runahead(
        suite::astar().cpu,
        &quick(Mode::Baseline),
        BrVariant::Speculative,
    );
    assert!(
        ph.stats.ipc() > br.stats.ipc(),
        "phelps {} > BR {}",
        ph.stats.ipc(),
        br.stats.ipc()
    );
}

/// Fig. 13c: partitioning alone slows the main thread.
#[test]
fn partitioning_only_slows_down() {
    for make in [suite::pr, suite::cc_sv] {
        let base = simulate(make().cpu, &quick(Mode::Baseline));
        let part = simulate(make().cpu, &quick(Mode::PartitionOnly));
        assert!(
            part.stats.ipc() < base.stats.ipc(),
            "{}: partitioned {} < full {}",
            make().name,
            part.stats.ipc(),
            base.stats.ipc()
        );
    }
}

/// Predictable code never triggers helper threads (no delinquency).
#[test]
fn predictable_kernels_stay_untouched() {
    use phelps_workloads::spec;
    let r = simulate(
        spec::exchange2_like(3_000),
        &quick(Mode::Phelps(PhelpsFeatures::full())),
    );
    assert_eq!(r.stats.triggers, 0, "exchange2-like never triggers");
    assert!(r.stats.mpki() < 2.0, "and is nearly perfectly predicted");
}

/// Fig. 14 bins: the mcf idiom lands in "not in loop".
#[test]
fn mcf_like_classified_not_in_loop() {
    use phelps::classify::MispredictClass;
    use phelps_workloads::spec;
    let r = simulate(
        spec::mcf_like(200_000, 3),
        &quick(Mode::Phelps(PhelpsFeatures::full())),
    );
    assert_eq!(r.stats.triggers, 0);
    let not_in_loop = r.breakdown.mpki(MispredictClass::NotInLoop);
    assert!(
        not_in_loop > 0.5 * r.stats.mpki(),
        "most mispredictions are 'not in loop': {not_in_loop} of {}",
        r.stats.mpki()
    );
}

/// Determinism: identical runs give identical cycle counts.
#[test]
fn runs_are_deterministic() {
    let a = simulate(
        suite::astar_small().cpu,
        &quick(Mode::Phelps(PhelpsFeatures::full())),
    );
    let b = simulate(
        suite::astar_small().cpu,
        &quick(Mode::Phelps(PhelpsFeatures::full())),
    );
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.stats.mt_mispredicts, b.stats.mt_mispredicts);
    assert_eq!(a.stats.ht_retired, b.stats.ht_retired);
}

/// Guest architectural results are independent of the timing mode: the
/// pipeline must never corrupt architectural execution.
#[test]
fn timing_mode_does_not_change_architecture() {
    // Run the same program functionally and under two timing modes; the
    // MT retires the same number of instructions either way (the trace is
    // the architecture).
    let base = simulate(suite::astar_small().cpu, &quick(Mode::Baseline));
    let ph = simulate(
        suite::astar_small().cpu,
        &quick(Mode::Phelps(PhelpsFeatures::full())),
    );
    assert_eq!(base.stats.mt_retired, ph.stats.mt_retired);
    assert_eq!(base.stats.mt_cond_branches, ph.stats.mt_cond_branches);
}
