//! W=0 checkpoint-restore equivalence over real workloads.
//!
//! The `phelps-ckpt` guarantee (DESIGN.md §8): with a zero warm window, a
//! region run started from a checkpoint restore produces **bit-identical**
//! `SimStats` to one started by functionally fast-forwarding to the same
//! offset. This sweep checks it end-to-end — capture, on-disk store
//! round-trip, restore, cycle-level simulation — for three workloads in
//! all four pipeline modes.

use phelps_repro::phelps_ckpt::{capture_snapshots, region_key, resume, CheckpointStore};
use phelps_repro::prelude::*;

const SKIP: u64 = 50_000;

fn modes() -> [Mode; 4] {
    [
        Mode::Baseline,
        Mode::PerfectBp,
        Mode::PartitionOnly,
        Mode::Phelps(PhelpsFeatures::full()),
    ]
}

fn check_workload(name: &str, make: fn() -> Workload) {
    let dir = std::env::temp_dir().join(format!("phelps-ckpt-eq-{}-{name}", std::process::id()));
    let store = CheckpointStore::new(&dir);
    let key = region_key(name, &make().cpu, SKIP);
    let captured = capture_snapshots(&mut make().cpu, &[SKIP], 0)
        .expect("fast-forward to the capture point")
        .pop()
        .expect("one snapshot");
    store.save(&key, &captured);
    let snap = store.load(&key).expect("checkpoint survives the store");

    for mode in modes() {
        let cfg = RunConfig::quick(mode.clone(), 30_000, 15_000);

        let mut ff = make().cpu;
        ff.run(SKIP).expect("fast-forward");
        let cold = simulate(ff, &cfg);

        let restored = resume(make().cpu, &snap, 0).expect("restore");
        assert!(restored.warm.is_empty(), "W=0 yields no warm records");
        let warmed = simulate_warmed(restored.cpu, &cfg, &restored.warm);

        assert_eq!(
            cold.stats, warmed.stats,
            "{name}/{mode:?}: W=0 restored region must be bit-identical"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn astar_small_restores_bit_identically() {
    check_workload("astar_small", suite::astar_small);
}

#[test]
fn bfs_restores_bit_identically() {
    check_workload("bfs", suite::bfs);
}

#[test]
fn bc_restores_bit_identically() {
    check_workload("bc", suite::bc);
}
