//! Golden statistics pinning the simulator's cycle-level behavior.
//!
//! These exact values were captured on the astar_small kernel before the
//! pipeline stage decomposition (`crates/core/src/sim/pipeline/`). Any
//! refactor of the pipeline must keep them bit-identical: a drift here
//! means the stage split changed timing behavior, not just code layout.

use phelps_repro::prelude::*;

fn cfg(mode: Mode) -> RunConfig {
    let mut c = RunConfig::scaled(mode);
    c.max_mt_insts = 200_000;
    c.epoch_len = 80_000;
    c
}

#[test]
fn golden_baseline_astar_small() {
    let r = simulate(suite::astar_small().cpu, &cfg(Mode::Baseline));
    assert_eq!(r.stats.cycles, 152_783, "baseline cycles drifted");
    assert_eq!(r.stats.mt_retired, 200_000);
    assert_eq!(r.stats.mt_cond_branches, 24_837);
    assert_eq!(r.stats.mt_mispredicts, 4_196);
    assert_eq!(r.stats.l1d_misses, 971);
}

#[test]
fn golden_phelps_full_astar_small() {
    let r = simulate(
        suite::astar_small().cpu,
        &cfg(Mode::Phelps(PhelpsFeatures::full())),
    );
    assert_eq!(r.stats.cycles, 149_493, "phelps cycles drifted");
    assert_eq!(r.stats.mt_mispredicts, 3_657);
    assert_eq!(r.stats.ht_retired, 61_003);
    assert_eq!(r.stats.triggers, 36);
    assert_eq!(r.stats.preds_from_queue, 3_310);
    assert_eq!(r.stats.l1d_misses, 994);
}
