//! Golden statistics pinning the simulator's cycle-level behavior.
//!
//! These exact values were captured on the astar_small kernel after the
//! pipeline stage decomposition (`crates/core/src/sim/pipeline/`) and
//! re-pinned twice since:
//!
//! * once for the memory-hierarchy accounting fixes — the store-counter
//!   split (counters only, cycle-neutral) and training the L1 prefetcher
//!   on MSHR-merged demand accesses (baseline 152_783 → 152_471, Phelps
//!   149_493 → 149_181);
//! * once for the port-based memory system: the paper-default config now
//!   models a 32KB L1I and finite per-level port widths, so fetch takes
//!   compulsory I-misses and demand traffic sees admission delay
//!   (baseline 152_471 → 152_952, Phelps 149_181 → 149_658, region
//!   restore 91_708 → 92_703). The pre-refactor numbers remain pinned —
//!   exactly, not approximately — under [`CoreConfig::ideal_memory`] in
//!   `tests/mem_ports.rs`, which isolates the delta to the new bandwidth
//!   and L1I modeling.
//!
//! Any further change must keep these bit-identical: a drift here means
//! timing behavior changed, not just code layout.

use phelps_repro::phelps_ckpt::{capture_snapshots, resume};
use phelps_repro::prelude::*;

fn cfg(mode: Mode) -> RunConfig {
    RunConfig::quick(mode, 200_000, 80_000)
}

#[test]
fn golden_baseline_astar_small() {
    let r = simulate(suite::astar_small().cpu, &cfg(Mode::Baseline));
    assert_eq!(r.stats.cycles, 152_952, "baseline cycles drifted");
    assert_eq!(r.stats.mt_retired, 200_000);
    assert_eq!(r.stats.mt_cond_branches, 24_837);
    assert_eq!(r.stats.mt_mispredicts, 4_191);
    assert_eq!(r.stats.l1d_misses, 935);
    // The kernel's code fits one 32KB L1I comfortably: a handful of
    // compulsory misses, then fetch streams from the cache.
    assert_eq!(r.stats.l1i_misses, 14);
    // Store refill traffic is counted apart from demand loads; the kernel
    // retires stores, so the split counters must be populated.
    assert!(r.stats.l1d_store_accesses > 0);
    assert!(r.stats.l1d_store_misses <= r.stats.l1d_store_accesses);
}

/// Mode-sweep pin added with the data-oriented pipeline tables (the
/// slab/SoA rewrite of the in-flight window): all four modes must stay
/// cycle-identical to the HashMap-backed implementation they replaced.
/// The perfect-BP and partition-only cells exercise squash-free and
/// repartition-heavy schedules respectively, the corners most sensitive
/// to bookkeeping-order bugs in the table rewrite.
#[test]
fn golden_mode_sweep_astar_small() {
    let perfect = simulate(suite::astar_small().cpu, &cfg(Mode::PerfectBp));
    assert_eq!(perfect.stats.cycles, 46_741, "perfect-bp cycles drifted");
    assert_eq!(perfect.stats.mt_mispredicts, 0);
    assert_eq!(perfect.stats.l1d_misses, 937);

    let part = simulate(suite::astar_small().cpu, &cfg(Mode::PartitionOnly));
    assert_eq!(part.stats.cycles, 168_324, "partition-only cycles drifted");
    assert_eq!(part.stats.mt_mispredicts, 4_185);
    assert_eq!(part.stats.l1d_misses, 937);
}

#[test]
fn golden_phelps_full_astar_small() {
    let r = simulate(
        suite::astar_small().cpu,
        &cfg(Mode::Phelps(PhelpsFeatures::full())),
    );
    assert_eq!(r.stats.cycles, 149_658, "phelps cycles drifted");
    assert_eq!(r.stats.mt_mispredicts, 3_653);
    assert_eq!(r.stats.ht_retired, 60_734);
    assert_eq!(r.stats.triggers, 35);
    assert_eq!(r.stats.preds_from_queue, 3_336);
    assert_eq!(r.stats.l1d_misses, 957);
}

/// Region-restore pin: a W=0 checkpoint restore at instruction 50,000
/// must reproduce the fast-forwarded region run bit-for-bit, down to the
/// exact cycle count. A drift here means the restore path perturbs
/// timing state, not just that timing behavior changed.
#[test]
fn golden_region_restore_astar_small() {
    let mut c = cfg(Mode::Baseline);
    c.max_mt_insts = 100_000;
    let skip = 50_000;

    let mut ff = suite::astar_small().cpu;
    ff.run(skip).expect("fast-forward");
    let cold = simulate(ff, &c);

    let snap = capture_snapshots(&mut suite::astar_small().cpu, &[skip], 0)
        .expect("capture")
        .pop()
        .expect("one snapshot");
    let restored = resume(suite::astar_small().cpu, &snap, 0).expect("restore");
    let warmed = simulate_warmed(restored.cpu, &c, &restored.warm);

    assert_eq!(cold.stats, warmed.stats, "restored stats drifted from ff");
    assert_eq!(
        warmed.stats.cycles, 92_703,
        "restored region cycles drifted"
    );
    assert_eq!(warmed.stats.mt_retired, 100_000);
}
