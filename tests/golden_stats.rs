//! Golden statistics pinning the simulator's cycle-level behavior.
//!
//! These exact values were captured on the astar_small kernel after the
//! pipeline stage decomposition (`crates/core/src/sim/pipeline/`) and
//! re-pinned once for the memory-hierarchy accounting fixes:
//!
//! * the store-counter split moved retired-store refill traffic out of
//!   `l1d_accesses`/`l1d_misses` into `l1d_store_*` (counters only — it
//!   was verified to leave every cycle count bit-identical);
//! * training the L1 prefetcher on MSHR-merged demand accesses (which the
//!   old merge early-return skipped) is a behavioral fix and legitimately
//!   moved the cycle counts (baseline 152_783 → 152_471, Phelps
//!   149_493 → 149_181).
//!
//! Any further change must keep these bit-identical: a drift here means
//! timing behavior changed, not just code layout.

use phelps_repro::phelps_ckpt::{capture_snapshots, resume};
use phelps_repro::prelude::*;

fn cfg(mode: Mode) -> RunConfig {
    let mut c = RunConfig::scaled(mode);
    c.max_mt_insts = 200_000;
    c.epoch_len = 80_000;
    c
}

#[test]
fn golden_baseline_astar_small() {
    let r = simulate(suite::astar_small().cpu, &cfg(Mode::Baseline));
    assert_eq!(r.stats.cycles, 152_471, "baseline cycles drifted");
    assert_eq!(r.stats.mt_retired, 200_000);
    assert_eq!(r.stats.mt_cond_branches, 24_837);
    assert_eq!(r.stats.mt_mispredicts, 4_197);
    assert_eq!(r.stats.l1d_misses, 935);
    // Store refill traffic is counted apart from demand loads; the kernel
    // retires stores, so the split counters must be populated.
    assert!(r.stats.l1d_store_accesses > 0);
    assert!(r.stats.l1d_store_misses <= r.stats.l1d_store_accesses);
}

#[test]
fn golden_phelps_full_astar_small() {
    let r = simulate(
        suite::astar_small().cpu,
        &cfg(Mode::Phelps(PhelpsFeatures::full())),
    );
    assert_eq!(r.stats.cycles, 149_181, "phelps cycles drifted");
    assert_eq!(r.stats.mt_mispredicts, 3_658);
    assert_eq!(r.stats.ht_retired, 61_003);
    assert_eq!(r.stats.triggers, 36);
    assert_eq!(r.stats.preds_from_queue, 3_310);
    assert_eq!(r.stats.l1d_misses, 957);
}

/// Region-restore pin: a W=0 checkpoint restore at instruction 50,000
/// must reproduce the fast-forwarded region run bit-for-bit, down to the
/// exact cycle count. A drift here means the restore path perturbs
/// timing state, not just that timing behavior changed.
#[test]
fn golden_region_restore_astar_small() {
    let mut c = cfg(Mode::Baseline);
    c.max_mt_insts = 100_000;
    let skip = 50_000;

    let mut ff = suite::astar_small().cpu;
    ff.run(skip).expect("fast-forward");
    let cold = simulate(ff, &c);

    let snap = capture_snapshots(&mut suite::astar_small().cpu, &[skip], 0)
        .expect("capture")
        .pop()
        .expect("one snapshot");
    let restored = resume(suite::astar_small().cpu, &snap, 0).expect("restore");
    let warmed = simulate_warmed(restored.cpu, &c, &restored.warm);

    assert_eq!(cold.stats, warmed.stats, "restored stats drifted from ff");
    assert_eq!(
        warmed.stats.cycles, 91_708,
        "restored region cycles drifted"
    );
    assert_eq!(warmed.stats.mt_retired, 100_000);
}
