#!/usr/bin/env sh
# Tier-1 gate: formatting, lints, and the full test suite.
#
# Usage: ./scripts/ci.sh
# Runs from the repository root regardless of the caller's cwd.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> ci.sh: all green"
