#!/usr/bin/env sh
# Tier-1 gate: formatting, lints, and the full test suite.
#
# Usage: ./scripts/ci.sh
# Runs from the repository root regardless of the caller's cwd.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (no-deps, -D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> differential fuzz (200 programs, fixed seed, debug-invariants)"
# Seeded and therefore deterministic run-to-run; PHELPS_FUZZ_SEED=<seed>
# replays a reported failure (see crates/verify). The feature compiles the
# pipeline's per-cycle microarchitectural assertions into the fuzzed runs.
cargo run --release -q -p phelps-verify --features debug-invariants \
    --bin phelps-fuzz -- 200

echo "==> workload halt check (release; ~290M emulated instructions)"
cargo test --release -q -p phelps-repro --test workload_differential \
    -- --ignored

echo "==> runner smoke test (2-cell matrix, 2 workers, then warm cache)"
cargo build --release -q -p phelps-bench --bin fig11
smoke_cache=$(mktemp -d)
smoke_out=$(PHELPS_JOBS=2 PHELPS_REGION=20000 PHELPS_EPOCH=10000 \
    PHELPS_CACHE_DIR="$smoke_cache" \
    ./target/release/fig11 --only=BR- | grep '^\[runner\]')
echo "    $smoke_out"
case $smoke_out in
*"cells=2 hits=0 simulated=2"*) ;;
*) echo "ci.sh: cold runner smoke run did not simulate" >&2; exit 1 ;;
esac
smoke_out=$(PHELPS_JOBS=2 PHELPS_REGION=20000 PHELPS_EPOCH=10000 \
    PHELPS_CACHE_DIR="$smoke_cache" \
    ./target/release/fig11 --only=BR- | grep '^\[runner\]')
echo "    $smoke_out"
rm -rf "$smoke_cache"
case $smoke_out in
*"cells=2 hits=2 simulated=0"*) ;;
*) echo "ci.sh: warm runner smoke run missed the cache" >&2; exit 1 ;;
esac

echo "==> proxy smoke test (train on cached sweeps, gate MAE, triage fig11)"
cargo build --release -q -p phelps-bench --bin fig12b
cargo build --release -q -p phelps-proxy --bin phelps-proxy
proxy_cache=$(mktemp -d)
proxy_cold=$(mktemp -d)
PHELPS_JOBS=2 PHELPS_REGION=20000 PHELPS_EPOCH=10000 \
    PHELPS_CACHE_DIR="$proxy_cache" ./target/release/fig11 >/dev/null
PHELPS_JOBS=2 PHELPS_REGION=20000 PHELPS_EPOCH=10000 \
    PHELPS_CACHE_DIR="$proxy_cache" ./target/release/fig12b >/dev/null
# The 0.05 IPC bound is ~2x the cross-validated MAE this matrix trains
# to (see DESIGN.md section 13) — slack for workload drift, hard fail
# for a broken feature extractor or regressor.
./target/release/phelps-proxy train --cache-dir="$proxy_cache" \
    --out="$proxy_cache/model.json" --max-mae=0.05
triage_out=$(PHELPS_JOBS=2 PHELPS_REGION=20000 PHELPS_EPOCH=10000 \
    PHELPS_CACHE_DIR="$proxy_cold" PHELPS_PROXY=triage \
    PHELPS_PROXY_MODEL="$proxy_cache/model.json" \
    ./target/release/fig11 | grep -E '^\[(runner|proxy)\]')
echo "$triage_out" | sed 's/^/    /'
echo "$triage_out" | grep -q 'cells=7 hits=0 simulated=3' || {
    echo "ci.sh: triage run did not simulate <=50% of the fig11 matrix" >&2
    exit 1; }
echo "$triage_out" | grep -q '^\[proxy\] fig11: mode=triage' || {
    echo "ci.sh: triage run printed no [proxy] summary" >&2; exit 1; }
# PHELPS_PROXY=off must leave figure output byte-identical to an unset
# environment (warm cache, so both runs are pure table rendering).
off_a=$(PHELPS_JOBS=2 PHELPS_REGION=20000 PHELPS_EPOCH=10000 \
    PHELPS_CACHE_DIR="$proxy_cache" ./target/release/fig11)
off_b=$(PHELPS_JOBS=2 PHELPS_REGION=20000 PHELPS_EPOCH=10000 \
    PHELPS_CACHE_DIR="$proxy_cache" PHELPS_PROXY=off \
    PHELPS_PROXY_MODEL="$proxy_cache/model.json" ./target/release/fig11)
[ "$off_a" = "$off_b" ] || {
    echo "ci.sh: PHELPS_PROXY=off changed figure output" >&2; exit 1; }
rm -rf "$proxy_cache" "$proxy_cold"

echo "==> serve smoke test (daemon on ephemeral port: stream, dedup, drain)"
cargo build --release -q -p phelps-serve --bin phelps-serve
serve_cache=$(mktemp -d)
serve_log=$(mktemp)
./target/release/phelps-serve serve --addr=127.0.0.1:0 --workers=2 \
    --cache-dir="$serve_cache" >"$serve_log" 2>&1 &
serve_pid=$!
serve_port=""
for _ in $(seq 1 100); do
    serve_port=$(sed -n 's/^\[serve\] listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
        "$serve_log")
    [ -n "$serve_port" ] && break
    sleep 0.1
done
[ -n "$serve_port" ] || {
    echo "ci.sh: daemon never announced its port" >&2; cat "$serve_log" >&2; exit 1; }
cold_submit=$(./target/release/phelps-serve submit --port="$serve_port" \
    --workload=bfs --mode=phelps --region=20000 --epoch=5000)
echo "$cold_submit" | grep -q '"type":"epoch"' || {
    echo "ci.sh: cold serve submit streamed no epoch samples" >&2; exit 1; }
echo "$cold_submit" | grep -q '"type":"result".*"dedup":"simulated"' || {
    echo "ci.sh: cold serve submit did not simulate" >&2; exit 1; }
warm_submit=$(./target/release/phelps-serve submit --port="$serve_port" \
    --workload=bfs --mode=phelps --region=20000 --epoch=5000)
echo "$warm_submit" | grep -q '"type":"result".*"dedup":"session"' || {
    echo "ci.sh: warm serve submit was not a dedup hit" >&2; exit 1; }
echo "$warm_submit" | grep -q '"type":"epoch".*"replay":true' || {
    echo "ci.sh: warm serve submit replayed no epoch samples" >&2; exit 1; }
./target/release/phelps-serve shutdown --port="$serve_port" >/dev/null
# The daemon joins every worker/connection thread before exiting; a
# nonzero status here means a leaked thread or an unclean drain.
wait "$serve_pid" || {
    echo "ci.sh: daemon exited uncleanly" >&2; cat "$serve_log" >&2; exit 1; }
grep -q '^\[serve\] shutdown clean' "$serve_log" || {
    echo "ci.sh: daemon never reported a clean shutdown" >&2
    cat "$serve_log" >&2; exit 1; }
echo "    cold: $(echo "$cold_submit" | grep -c '"type":"epoch"') epochs streamed;" \
    "warm: session replay; shutdown clean"
rm -rf "$serve_cache" "$serve_log"

echo "==> co-run smoke test (idle-peer identity, contended slowdown, fig_corun)"
# The release-profile co-run invariants: a tenant co-scheduled against a
# memory-silent peer on unlimited uncore ports is bit-identical to its
# solo run; a contended pair slows both tenants (per-tenant IPC <= solo
# IPC) with nonzero attributed shared-uncore stalls; and the pair result
# is byte-stable across repeated runs. These are the `corun` tests in
# crates/core/src/sim/mod.rs.
cargo test --release -q -p phelps --lib corun
# End-to-end bench wiring: the fig_corun binary's bfs row must produce
# all four cells (solo + co-run x baseline + Phelps) from a cold cache.
cargo build --release -q -p phelps-bench --bin fig_corun
corun_cache=$(mktemp -d)
corun_out=$(PHELPS_JOBS=2 PHELPS_REGION=20000 PHELPS_EPOCH=10000 \
    PHELPS_CACHE_DIR="$corun_cache" ./target/release/fig_corun --only=bfs/)
rm -rf "$corun_cache"
echo "$corun_out" | grep '^\[runner\]' | sed 's/^/    /'
echo "$corun_out" | grep -q 'cells=4 hits=0 simulated=4' || {
    echo "ci.sh: fig_corun smoke run did not simulate its 4 bfs cells" >&2
    exit 1; }
echo "$corun_out" | grep -Eq '^ *bfs  ' || {
    echo "ci.sh: fig_corun printed no bfs row" >&2; exit 1; }

echo "==> perf trajectory (simulated MIPS per mode -> BENCH_perf.json)"
cargo build --release -q -p phelps-bench --bin perf
# The committed trajectory must have been produced by the current binary's
# schema: a stale file silently breaks every PR-to-PR speed comparison
# (cells move or gain fields and the diff reads as a perf change).
committed_schema=$(sed -n 's/.*"schema":"\([^"]*\)".*/\1/p' BENCH_perf.json | head -n 1)
prev_perf=$(mktemp)
cp BENCH_perf.json "$prev_perf"
PHELPS_REGION=200000 PHELPS_EPOCH=50000 ./target/release/perf --out=BENCH_perf.json
grep -q '"schema":"phelps-bench-perf/4"' BENCH_perf.json || {
    echo "ci.sh: BENCH_perf.json missing or malformed" >&2; exit 1; }
fresh_schema=$(sed -n 's/.*"schema":"\([^"]*\)".*/\1/p' BENCH_perf.json | head -n 1)
[ "$committed_schema" = "$fresh_schema" ] || {
    echo "ci.sh: committed BENCH_perf.json schema '$committed_schema' is stale" \
         "(binary emits '$fresh_schema'); regenerate and commit it" >&2
    exit 1; }
# Warn-only MIPS floor: flag cells that regressed to less than half the
# committed trajectory. Machine-to-machine and load variance is large
# (the committed numbers may come from different hardware), so this
# never fails the gate — it exists to make an accidental quadratic-loop
# reintroduction loud in the CI log.
python3 - "$prev_perf" BENCH_perf.json <<'PYEOF' || true
import json, sys
prev = {(c["workload"], c["mode"], c["shards"]): c["mips"]
        for c in json.load(open(sys.argv[1])).get("cells", [])}
cur = json.load(open(sys.argv[2]))["cells"]
slow = [(k, prev[k], c["mips"]) for c in cur
        if (k := (c["workload"], c["mode"], c["shards"])) in prev
        and c["mips"] < 0.5 * prev[k]]
for k, p, n in slow:
    print(f"ci.sh: WARNING: perf floor: {k} fell to {n:.3f} MIPS"
          f" (< 50% of committed {p:.3f})", file=sys.stderr)
if not slow:
    print("    perf floor: all cells within 2x of the committed trajectory")
PYEOF
rm -f "$prev_perf"

echo "==> checkpoint restore-equivalence oracle (fixed seeds, all modes)"
cargo test --release -q -p phelps-verify --test restore_equivalence

echo "==> checkpoint round-trip + sharded-equivalence smoke test (simpoints)"
# First run (4 workers) captures region checkpoints into a fresh store;
# the second (1 worker) restores them. The result cache is disabled so
# the second run really simulates. Two invariants ride on the diff pair:
#   1. stdout (every table and IPC line) and the --merged-out JSON
#      (merged SimStats + spliced telemetry) must be byte-identical
#      across worker counts — PHELPS_JOBS is pure execution parallelism
#      and may never leak into a result;
#   2. the restored run must match the cold run exactly — the SimStats
#      equality half of the checkpoint guarantee.
# The [ckpt] stderr counters then prove the fast-forward wall-clock
# collapsed.
cargo build --release -q -p phelps-bench --bin simpoints
ckpt_dir=$(mktemp -d)
cold_out=$(mktemp); cold_err=$(mktemp); warm_out=$(mktemp); warm_err=$(mktemp)
cold_merged=$(mktemp); warm_merged=$(mktemp)
PHELPS_NO_CACHE=1 PHELPS_REGION=20000 PHELPS_EPOCH=10000 PHELPS_JOBS=4 \
    PHELPS_CKPT_DIR="$ckpt_dir" \
    ./target/release/simpoints --merged-out="$cold_merged" \
    >"$cold_out" 2>"$cold_err"
PHELPS_NO_CACHE=1 PHELPS_REGION=20000 PHELPS_EPOCH=10000 PHELPS_JOBS=1 \
    PHELPS_CKPT_DIR="$ckpt_dir" \
    ./target/release/simpoints --merged-out="$warm_merged" \
    >"$warm_out" 2>"$warm_err"
ckpt_field() { grep '^\[ckpt\]' "$1" | tr ' ' '\n' | sed -n "s/^$2=//p"; }
echo "    cold: $(grep '^\[ckpt\]' "$cold_err")"
echo "    warm: $(grep '^\[ckpt\]' "$warm_err")"
diff "$cold_out" "$warm_out" || {
    echo "ci.sh: restored simpoints run diverged from the cold run" >&2; exit 1; }
diff "$cold_merged" "$warm_merged" || {
    echo "ci.sh: merged stats/telemetry depend on PHELPS_JOBS" >&2; exit 1; }
grep -q '"schema":"phelps-simpoints-merged/1"' "$cold_merged" || {
    echo "ci.sh: simpoints --merged-out JSON missing or malformed" >&2; exit 1; }
[ "$(ckpt_field "$cold_err" saves)" -gt 0 ] || {
    echo "ci.sh: cold run saved no checkpoints" >&2; exit 1; }
[ "$(ckpt_field "$warm_err" hits)" -gt 0 ] || {
    echo "ci.sh: warm run restored no checkpoints" >&2; exit 1; }
[ "$(ckpt_field "$warm_err" misses)" -eq 0 ] || {
    echo "ci.sh: warm run still missed checkpoints" >&2; exit 1; }
cold_ff=$(ckpt_field "$cold_err" ff_ns)
warm_ff=$(ckpt_field "$warm_err" ff_ns)
warm_restore=$(ckpt_field "$warm_err" restore_ns)
awk "BEGIN { exit !($cold_ff >= 5 * ($warm_ff + $warm_restore + 1)) }" || {
    echo "ci.sh: checkpoint restore saved <5x fast-forward time" \
         "(cold ff ${cold_ff}ns vs warm ff ${warm_ff}ns + restore ${warm_restore}ns)" >&2
    exit 1; }
rm -rf "$ckpt_dir" "$cold_out" "$cold_err" "$warm_out" "$warm_err" \
    "$cold_merged" "$warm_merged"

echo "==> ci.sh: all green"
