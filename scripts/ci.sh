#!/usr/bin/env sh
# Tier-1 gate: formatting, lints, and the full test suite.
#
# Usage: ./scripts/ci.sh
# Runs from the repository root regardless of the caller's cwd.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, -D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> differential fuzz (200 programs, fixed seed, debug-invariants)"
# Seeded and therefore deterministic run-to-run; PHELPS_FUZZ_SEED=<seed>
# replays a reported failure (see crates/verify). The feature compiles the
# pipeline's per-cycle microarchitectural assertions into the fuzzed runs.
cargo run --release -q -p phelps-verify --features debug-invariants \
    --bin phelps-fuzz -- 200

echo "==> workload halt check (release; ~290M emulated instructions)"
cargo test --release -q -p phelps-repro --test workload_differential \
    -- --ignored

echo "==> runner smoke test (2-cell matrix, 2 workers, then warm cache)"
cargo build --release -q -p phelps-bench --bin fig11
smoke_cache=$(mktemp -d)
smoke_out=$(PHELPS_JOBS=2 PHELPS_REGION=20000 PHELPS_EPOCH=10000 \
    PHELPS_CACHE_DIR="$smoke_cache" \
    ./target/release/fig11 --only=BR- | grep '^\[runner\]')
echo "    $smoke_out"
case $smoke_out in
*"cells=2 hits=0 simulated=2"*) ;;
*) echo "ci.sh: cold runner smoke run did not simulate" >&2; exit 1 ;;
esac
smoke_out=$(PHELPS_JOBS=2 PHELPS_REGION=20000 PHELPS_EPOCH=10000 \
    PHELPS_CACHE_DIR="$smoke_cache" \
    ./target/release/fig11 --only=BR- | grep '^\[runner\]')
echo "    $smoke_out"
rm -rf "$smoke_cache"
case $smoke_out in
*"cells=2 hits=2 simulated=0"*) ;;
*) echo "ci.sh: warm runner smoke run missed the cache" >&2; exit 1 ;;
esac

echo "==> ci.sh: all green"
