//! The paper's running example: dependent delinquent branches and stores
//! in an astar-like grid expansion (Fig. 3), pre-executed by a predicated
//! helper thread.
//!
//! Runs the full Fig. 11 ablation on a reduced region:
//! full Phelps (b1->b2->s1) vs dropping guarded branches and/or stores,
//! vs the Branch Runahead baseline.
//!
//! ```sh
//! cargo run --release --example astar_preexec
//! ```

use phelps_repro::prelude::*;

fn cfg(mode: Mode) -> RunConfig {
    let mut cfg = RunConfig::scaled(mode);
    cfg.max_mt_insts = 800_000;
    cfg.epoch_len = 100_000;
    cfg
}

fn main() {
    let base = simulate(suite::astar().cpu, &cfg(Mode::Baseline));
    println!(
        "baseline             IPC {:.3}  MPKI {:>5.1}",
        base.stats.ipc(),
        base.stats.mpki()
    );

    let variants = [
        ("Phelps b1 only      ", PhelpsFeatures::b1_only()),
        ("Phelps b1->s1       ", PhelpsFeatures::b1_with_stores()),
        ("Phelps b1->b2       ", PhelpsFeatures::no_stores()),
        ("Phelps b1->b2->s1   ", PhelpsFeatures::full()),
    ];
    for (name, f) in variants {
        let r = simulate(suite::astar().cpu, &cfg(Mode::Phelps(f)));
        println!(
            "{name} IPC {:.3}  MPKI {:>5.1}  speedup {:+.1}%",
            r.stats.ipc(),
            r.stats.mpki(),
            (speedup(&base.stats, &r.stats) - 1.0) * 100.0
        );
    }

    let br = simulate_runahead(
        suite::astar().cpu,
        &cfg(Mode::Baseline),
        BrVariant::Speculative,
    );
    println!(
        "Branch Runahead      IPC {:.3}  MPKI {:>5.1}  speedup {:+.1}%",
        br.stats.ipc(),
        br.stats.mpki(),
        (speedup(&base.stats, &br.stats) - 1.0) * 100.0
    );

    println!(
        "\nthe paper's point: pre-executing the guarded branch (b2) and\n\
         predicating the guarded store (s1) are both needed for the full win."
    );
}
