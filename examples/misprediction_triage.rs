//! Misprediction triage (paper Fig. 14): why Phelps does or doesn't engage
//! on a given workload.
//!
//! Runs three contrasting kernels and prints the per-bin breakdown:
//! * astar — most mispredictions eliminated;
//! * mcf-like — the delinquent branch lives in a non-inlined callee, so it
//!   is never inside a contiguous loop ("del. but not in loop");
//! * gcc-like — so many static branches that the 256-entry DBT thrashes
//!   ("gathering delinquency" forever).
//!
//! ```sh
//! cargo run --release --example misprediction_triage
//! ```

use phelps::classify::MispredictClass;
use phelps_repro::prelude::*;
use phelps_workloads::spec;

fn triage(name: &str, cpu: Cpu) {
    let mut cfg = RunConfig::scaled(Mode::Phelps(PhelpsFeatures::full()));
    cfg.max_mt_insts = 600_000;
    cfg.epoch_len = 100_000;
    let r = simulate(cpu, &cfg);
    println!("\n{name}: MPKI {:.1}", r.stats.mpki());
    for class in MispredictClass::all() {
        let mpki = r.breakdown.mpki(class);
        if mpki > 0.005 {
            println!("  {:<40} {:>6.2} MPKI", class.label(), mpki);
        }
    }
}

fn main() {
    triage("astar", suite::astar().cpu);
    triage("mcf-like", spec::mcf_like(400_000, 1));
    triage("gcc-like", spec::gcc_like(600, 80, 1));
}
