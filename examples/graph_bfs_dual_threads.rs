//! Dual decoupled helper threads on the nested-loop idiom (paper Fig. 2).
//!
//! BFS over a road-network graph: a long-running outer loop over the
//! frontier with a short, unpredictable-trip-count inner loop over
//! neighbors. Phelps builds an outer-thread (which queues inner-loop
//! visits) and an inner-thread (which pre-executes the visit's branches),
//! so helper-thread start/stop costs are paid once per frontier pass, not
//! once per vertex.
//!
//! ```sh
//! cargo run --release --example graph_bfs_dual_threads
//! ```

use phelps_repro::prelude::*;

fn cfg(mode: Mode) -> RunConfig {
    let mut cfg = RunConfig::scaled(mode);
    cfg.max_mt_insts = 800_000;
    cfg.epoch_len = 100_000;
    cfg
}

fn main() {
    let base = simulate(suite::bfs().cpu, &cfg(Mode::Baseline));
    println!(
        "baseline IPC {:.3}  MPKI {:.1}",
        base.stats.ipc(),
        base.stats.mpki()
    );

    let ph = simulate(suite::bfs().cpu, &cfg(Mode::Phelps(PhelpsFeatures::full())));
    println!(
        "phelps   IPC {:.3}  MPKI {:.1}  speedup {:+.1}%",
        ph.stats.ipc(),
        ph.stats.mpki(),
        (speedup(&base.stats, &ph.stats) - 1.0) * 100.0
    );
    println!(
        "triggers {} (one per frontier pass), terminations {},",
        ph.stats.triggers, ph.stats.terminations
    );
    println!(
        "queue predictions consumed {}, untimely {}, helper insts {}",
        ph.stats.preds_from_queue, ph.stats.queue_untimely, ph.stats.ht_retired
    );

    // Contrast: the same kernel on a power-law web graph (Fig. 15b's input
    // study) — shallower traversal, different benefit profile.
    use phelps_workloads::graph::GraphKind;
    let mk = || suite::bfs_on(GraphKind::PowerLaw, suite::GAP_VERTICES);
    let base_pl = simulate(mk().cpu, &cfg(Mode::Baseline));
    let ph_pl = simulate(mk().cpu, &cfg(Mode::Phelps(PhelpsFeatures::full())));
    println!(
        "\npower-law input: baseline MPKI {:.1}, Phelps speedup {:+.1}%",
        base_pl.stats.mpki(),
        (speedup(&base_pl.stats, &ph_pl.stats) - 1.0) * 100.0
    );
}
