//! Quickstart: assemble a tiny delinquent loop, run it under the baseline
//! core and under Phelps, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use phelps_repro::prelude::*;

fn delinquent_loop(n: u64) -> Cpu {
    // A loop whose branch tests pseudo-random data: the archetypal
    // delinquent branch no history-based predictor can learn.
    let mut a = Asm::new(0x1000);
    a.label("loop");
    a.slli(Reg::T0, Reg::A1, 3);
    a.add(Reg::T0, Reg::A0, Reg::T0);
    a.ld(Reg::T1, Reg::T0, 0);
    a.andi(Reg::T1, Reg::T1, 1);
    a.beq(Reg::T1, Reg::ZERO, "skip"); // delinquent: data-dependent
    a.addi(Reg::A3, Reg::A3, 7);
    a.label("skip");
    a.addi(Reg::A3, Reg::A3, 1);
    a.xor(Reg::A3, Reg::A3, Reg::A1);
    a.addi(Reg::A1, Reg::A1, 1);
    a.bne(Reg::A1, Reg::A2, "loop");
    a.halt();

    let mut cpu = Cpu::new(a.assemble().expect("assembles"));
    let mut x = 42u64;
    for i in 0..n {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        cpu.mem.write_u64(0x100000 + i * 8, x >> 33);
    }
    cpu.set_reg(Reg::A0, 0x100000);
    cpu.set_reg(Reg::A2, n);
    cpu
}

fn main() {
    let mut cfg = RunConfig::scaled(Mode::Baseline);
    cfg.max_mt_insts = 400_000;
    cfg.epoch_len = 50_000;

    let base = simulate(delinquent_loop(100_000), &cfg);
    println!(
        "baseline:  IPC {:.3}  MPKI {:>5.1}",
        base.stats.ipc(),
        base.stats.mpki()
    );

    cfg.mode = Mode::Phelps(PhelpsFeatures::full());
    let ph = simulate(delinquent_loop(100_000), &cfg);
    println!(
        "phelps:    IPC {:.3}  MPKI {:>5.1}  (helper thread retired {} insts, {} triggers)",
        ph.stats.ipc(),
        ph.stats.mpki(),
        ph.stats.ht_retired,
        ph.stats.triggers
    );

    cfg.mode = Mode::PerfectBp;
    let perf = simulate(delinquent_loop(100_000), &cfg);
    println!("perfectBP: IPC {:.3}  MPKI   0.0", perf.stats.ipc());

    println!(
        "\nspeedup: Phelps {:+.1}%, perfect BP {:+.1}%",
        (speedup(&base.stats, &ph.stats) - 1.0) * 100.0,
        (speedup(&base.stats, &perf.stats) - 1.0) * 100.0
    );
}
