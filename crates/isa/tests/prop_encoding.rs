//! Property tests: every encodable instruction round-trips through the
//! 32-bit binary encoding, and Display output re-parses to the same
//! instruction for PC-independent forms.

use phelps_isa::{decode, encode, parse_asm, AluOp, BranchCond, Inst, MemWidth, Reg};
use proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|i| Reg::new(i).expect("valid index"))
}

fn any_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Divu),
        Just(AluOp::Rem),
        Just(AluOp::Remu),
        Just(AluOp::Addw),
        Just(AluOp::Subw),
        Just(AluOp::Mulw),
        Just(AluOp::Sllw),
    ]
}

fn any_width() -> impl Strategy<Value = MemWidth> {
    prop_oneof![
        Just(MemWidth::B),
        Just(MemWidth::H),
        Just(MemWidth::W),
        Just(MemWidth::D),
    ]
}

fn any_cond() -> impl Strategy<Value = BranchCond> {
    prop_oneof![
        Just(BranchCond::Eq),
        Just(BranchCond::Ne),
        Just(BranchCond::Lt),
        Just(BranchCond::Ge),
        Just(BranchCond::Ltu),
        Just(BranchCond::Geu),
    ]
}

proptest! {
    #[test]
    fn alu_roundtrip(op in any_alu_op(), rd in any_reg(), rs1 in any_reg(), rs2 in any_reg()) {
        let inst = Inst::Alu { op, rd, rs1, rs2 };
        let w = encode(&inst, 0x1000).expect("encodes");
        prop_assert_eq!(decode(w, 0x1000).expect("decodes"), inst);
    }

    #[test]
    fn alui_roundtrip(
        op in prop_oneof![
            Just(AluOp::Add), Just(AluOp::Sll), Just(AluOp::Srl), Just(AluOp::Sra),
            Just(AluOp::And), Just(AluOp::Or), Just(AluOp::Xor), Just(AluOp::Slt),
        ],
        rd in any_reg(), rs1 in any_reg(), imm in -2048i32..=2047,
    ) {
        let inst = Inst::AluImm { op, rd, rs1, imm };
        let w = encode(&inst, 0).expect("encodes");
        prop_assert_eq!(decode(w, 0).expect("decodes"), inst);
    }

    #[test]
    fn mem_roundtrip(
        width in any_width(), signed in any::<bool>(),
        rd in any_reg(), base in any_reg(), offset in -2048i32..=2047,
    ) {
        let load = Inst::Load { width, signed, rd, base, offset };
        let w = encode(&load, 0x40).expect("encodes");
        prop_assert_eq!(decode(w, 0x40).expect("decodes"), load);

        let store = Inst::Store { width, base, src: rd, offset };
        let w = encode(&store, 0x40).expect("encodes");
        prop_assert_eq!(decode(w, 0x40).expect("decodes"), store);
    }

    #[test]
    fn branch_roundtrip(
        cond in any_cond(), rs1 in any_reg(), rs2 in any_reg(),
        pc in (0u64..1 << 20).prop_map(|p| p * 4),
        half_off in -2048i64..=2047,
    ) {
        let target = (pc as i64 + half_off * 2).max(0) as u64;
        let inst = Inst::Branch { cond, rs1, rs2, target };
        match encode(&inst, pc) {
            Ok(w) => prop_assert_eq!(decode(w, pc).expect("decodes"), inst),
            Err(_) => {
                // Only legal failure: clamping `target` at 0 pushed the
                // offset out of range.
                prop_assert!(pc as i64 + half_off * 2 < 0);
            }
        }
    }

    #[test]
    fn jal_roundtrip(
        rd in any_reg(),
        pc in (0u64..1 << 18).prop_map(|p| p * 4),
        half_off in -(1i64 << 19)..(1i64 << 19) - 1,
    ) {
        let target = (pc as i64 + half_off * 2).max(0) as u64;
        let inst = Inst::Jal { rd, target };
        match encode(&inst, pc) {
            Ok(w) => prop_assert_eq!(decode(w, pc).expect("decodes"), inst),
            Err(_) => prop_assert!(pc as i64 + half_off * 2 < 0),
        }
    }

    #[test]
    fn display_reparses_alu(op in any_alu_op(), rd in any_reg(), rs1 in any_reg(), rs2 in any_reg()) {
        let inst = Inst::Alu { op, rd, rs1, rs2 };
        let text = format!("{inst}\nhalt");
        let p = parse_asm(&text, 0).expect("parses").assemble().expect("assembles");
        prop_assert_eq!(*p.fetch(0).expect("first instruction"), inst);
    }
}
