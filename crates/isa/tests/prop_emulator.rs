//! Property tests: the guest ALU matches host semantics on random
//! operands, and assembled programs execute deterministically.

use phelps_isa::{AluOp, Asm, BranchCond, Cpu, MemWidth, Memory, Reg};
use proptest::prelude::*;

proptest! {
    /// Guest ALU ops agree with host arithmetic on random operands.
    #[test]
    fn alu_matches_host(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(AluOp::Add.eval(a, b), a.wrapping_add(b));
        prop_assert_eq!(AluOp::Sub.eval(a, b), a.wrapping_sub(b));
        prop_assert_eq!(AluOp::Xor.eval(a, b), a ^ b);
        prop_assert_eq!(AluOp::Or.eval(a, b), a | b);
        prop_assert_eq!(AluOp::And.eval(a, b), a & b);
        prop_assert_eq!(AluOp::Slt.eval(a, b), ((a as i64) < (b as i64)) as u64);
        prop_assert_eq!(AluOp::Sltu.eval(a, b), (a < b) as u64);
        prop_assert_eq!(AluOp::Mul.eval(a, b), a.wrapping_mul(b));
        prop_assert_eq!(AluOp::Sll.eval(a, b), a.wrapping_shl((b & 63) as u32));
        prop_assert_eq!(AluOp::Srl.eval(a, b), a.wrapping_shr((b & 63) as u32));
    }

    /// Division follows RISC-V edge-case semantics for every operand pair.
    #[test]
    fn division_riscv_semantics(a in any::<u64>(), b in any::<u64>()) {
        if b == 0 {
            prop_assert_eq!(AluOp::Divu.eval(a, b), u64::MAX);
            prop_assert_eq!(AluOp::Remu.eval(a, b), a);
            prop_assert_eq!(AluOp::Div.eval(a, b), u64::MAX);
            prop_assert_eq!(AluOp::Rem.eval(a, b), a);
        } else {
            prop_assert_eq!(AluOp::Divu.eval(a, b), a / b);
            prop_assert_eq!(AluOp::Remu.eval(a, b), a % b);
            prop_assert_eq!(
                AluOp::Div.eval(a, b),
                (a as i64).wrapping_div(b as i64) as u64
            );
        }
    }

    /// Branch conditions agree with host comparisons.
    #[test]
    fn branch_conditions_match_host(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(BranchCond::Eq.eval(a, b), a == b);
        prop_assert_eq!(BranchCond::Ne.eval(a, b), a != b);
        prop_assert_eq!(BranchCond::Lt.eval(a, b), (a as i64) < (b as i64));
        prop_assert_eq!(BranchCond::Ge.eval(a, b), (a as i64) >= (b as i64));
        prop_assert_eq!(BranchCond::Ltu.eval(a, b), a < b);
        prop_assert_eq!(BranchCond::Geu.eval(a, b), a >= b);
    }

    /// Memory round-trips every width at random (possibly unaligned,
    /// possibly page-straddling) addresses.
    #[test]
    fn memory_roundtrip(addr in 0u64..0x10_0000, v in any::<u64>()) {
        let mut mem = Memory::new();
        for w in [MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D] {
            mem.write(addr, w, v);
            let bits = 8 * w.bytes() as u32;
            let mask = if bits >= 64 { u64::MAX } else { (1u64 << bits) - 1 };
            prop_assert_eq!(mem.read(addr, w, false), v & mask);
        }
    }

    /// A computed guest sum over random inputs matches the host.
    #[test]
    fn summing_program_matches_host(values in prop::collection::vec(any::<u32>(), 1..64)) {
        let mut a = Asm::new(0x1000);
        a.label("loop");
        a.slli(Reg::T0, Reg::A1, 3);
        a.add(Reg::T0, Reg::A0, Reg::T0);
        a.ld(Reg::T1, Reg::T0, 0);
        a.add(Reg::A3, Reg::A3, Reg::T1);
        a.addi(Reg::A1, Reg::A1, 1);
        a.bne(Reg::A1, Reg::A2, "loop");
        a.halt();
        let mut cpu = Cpu::new(a.assemble().unwrap());
        for (i, v) in values.iter().enumerate() {
            cpu.mem.write_u64(0x8000 + 8 * i as u64, *v as u64);
        }
        cpu.set_reg(Reg::A0, 0x8000);
        cpu.set_reg(Reg::A2, values.len() as u64);
        cpu.run(1_000_000).unwrap();
        prop_assert!(cpu.is_halted());
        let expected: u64 = values.iter().map(|v| *v as u64).sum();
        prop_assert_eq!(cpu.reg(Reg::A3), expected);
    }
}
