//! Textual assembly parsing.
//!
//! [`parse_asm`] accepts the same surface syntax the crate's `Display`
//! implementations emit, plus labels and comments, and produces an
//! [`Asm`] builder ready to assemble:
//!
//! ```text
//! # sum the first n naturals
//! loop:
//!     add a0, a0, a1
//!     addi a1, a1, -1
//!     bne a1, zero, loop
//!     halt
//! ```
//!
//! Supported: every register-register and register-immediate ALU
//! mnemonic, `li`/`mv`/`nop`, all load/store widths, all branch
//! conditions (targets are labels), `j`/`call`/`ret`/`jalr`, and `halt`.
//! Comments start with `#` or `//`; labels end with `:`.

use crate::{AluOp, Asm, BranchCond, MemWidth, Reg};
use std::error::Error;
use std::fmt;

/// Error produced by [`parse_asm`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

fn reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    let tok = tok.trim().trim_end_matches(',');
    // ABI names.
    for r in Reg::all() {
        if r.abi_name() == tok {
            return Ok(r);
        }
    }
    // xN names.
    if let Some(n) = tok.strip_prefix('x') {
        if let Ok(i) = n.parse::<u8>() {
            if let Some(r) = Reg::new(i) {
                return Ok(r);
            }
        }
    }
    Err(ParseError {
        line,
        message: format!("unknown register `{tok}`"),
    })
}

fn imm(tok: &str, line: usize) -> Result<i64, ParseError> {
    let tok = tok.trim().trim_end_matches(',');
    let (neg, body) = match tok.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, tok),
    };
    let value = if let Some(hex) = body.strip_prefix("0x") {
        i64::from_str_radix(hex, 16)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| ParseError {
        line,
        message: format!("bad immediate `{tok}`"),
    })?;
    Ok(if neg { -value } else { value })
}

/// Splits `off(base)` into (offset, base register).
fn mem_operand(tok: &str, line: usize) -> Result<(i32, Reg), ParseError> {
    let tok = tok.trim().trim_end_matches(',');
    let open = tok.find('(').ok_or_else(|| ParseError {
        line,
        message: format!("expected `off(base)`, got `{tok}`"),
    })?;
    let close = tok.rfind(')').ok_or_else(|| ParseError {
        line,
        message: format!("unclosed `(` in `{tok}`"),
    })?;
    let off = if open == 0 {
        0
    } else {
        imm(&tok[..open], line)? as i32
    };
    let base = reg(&tok[open + 1..close], line)?;
    Ok((off, base))
}

/// Parses a full program listing into an [`Asm`] builder at `base`.
///
/// # Errors
///
/// [`ParseError`] identifies the offending line; label resolution errors
/// surface later from [`Asm::assemble`].
///
/// # Examples
///
/// ```
/// use phelps_isa::{parse_asm, Cpu, Reg};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let asm = parse_asm(
///     "    li a0, 0
///          li a1, 10
///      loop:
///          add a0, a0, a1
///          addi a1, a1, -1
///          bne a1, zero, loop
///          halt",
///     0x1000,
/// )?;
/// let mut cpu = Cpu::new(asm.assemble()?);
/// cpu.run(1_000)?;
/// assert_eq!(cpu.reg(Reg::A0), 55);
/// # Ok(())
/// # }
/// ```
pub fn parse_asm(text: &str, base: u64) -> Result<Asm, ParseError> {
    let mut a = Asm::new(base);
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let code = raw.split('#').next().unwrap_or("");
        let code = code.split("//").next().unwrap_or("").trim();
        if code.is_empty() {
            continue;
        }
        // Label?
        if let Some(label) = code.strip_suffix(':') {
            let label = label.trim();
            if label.is_empty() || label.contains(char::is_whitespace) {
                return Err(ParseError {
                    line,
                    message: format!("bad label `{code}`"),
                });
            }
            a.label(label);
            continue;
        }
        let mut parts = code.split_whitespace();
        let mnem = parts.next().expect("nonempty");
        let ops: Vec<&str> = code[mnem.len()..]
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let need = |n: usize| -> Result<(), ParseError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(ParseError {
                    line,
                    message: format!("`{mnem}` takes {n} operands, got {}", ops.len()),
                })
            }
        };

        let alu3 = |a: &mut Asm, op: AluOp| -> Result<(), ParseError> {
            need(3)?;
            a.alu(
                op,
                reg(ops[0], line)?,
                reg(ops[1], line)?,
                reg(ops[2], line)?,
            );
            Ok(())
        };
        let alui = |a: &mut Asm, op: AluOp| -> Result<(), ParseError> {
            need(3)?;
            a.alui(
                op,
                reg(ops[0], line)?,
                reg(ops[1], line)?,
                imm(ops[2], line)? as i32,
            );
            Ok(())
        };
        let load = |a: &mut Asm, w: MemWidth, s: bool| -> Result<(), ParseError> {
            need(2)?;
            let (off, b) = mem_operand(ops[1], line)?;
            a.load(w, s, reg(ops[0], line)?, b, off);
            Ok(())
        };
        let store = |a: &mut Asm, w: MemWidth| -> Result<(), ParseError> {
            need(2)?;
            let (off, b) = mem_operand(ops[1], line)?;
            a.store(w, reg(ops[0], line)?, b, off);
            Ok(())
        };
        let branch = |a: &mut Asm, c: BranchCond| -> Result<(), ParseError> {
            need(3)?;
            a.branch(c, reg(ops[0], line)?, reg(ops[1], line)?, ops[2]);
            Ok(())
        };

        match mnem {
            "add" => alu3(&mut a, AluOp::Add)?,
            "sub" => alu3(&mut a, AluOp::Sub)?,
            "sll" => alu3(&mut a, AluOp::Sll)?,
            "slt" => alu3(&mut a, AluOp::Slt)?,
            "sltu" => alu3(&mut a, AluOp::Sltu)?,
            "xor" => alu3(&mut a, AluOp::Xor)?,
            "srl" => alu3(&mut a, AluOp::Srl)?,
            "sra" => alu3(&mut a, AluOp::Sra)?,
            "or" => alu3(&mut a, AluOp::Or)?,
            "and" => alu3(&mut a, AluOp::And)?,
            "mul" => alu3(&mut a, AluOp::Mul)?,
            "div" => alu3(&mut a, AluOp::Div)?,
            "divu" => alu3(&mut a, AluOp::Divu)?,
            "rem" => alu3(&mut a, AluOp::Rem)?,
            "remu" => alu3(&mut a, AluOp::Remu)?,
            "addw" => alu3(&mut a, AluOp::Addw)?,
            "subw" => alu3(&mut a, AluOp::Subw)?,
            "mulw" => alu3(&mut a, AluOp::Mulw)?,
            "sllw" => alu3(&mut a, AluOp::Sllw)?,
            "addi" => alui(&mut a, AluOp::Add)?,
            "slli" => alui(&mut a, AluOp::Sll)?,
            "srli" => alui(&mut a, AluOp::Srl)?,
            "srai" => alui(&mut a, AluOp::Sra)?,
            "andi" => alui(&mut a, AluOp::And)?,
            "ori" => alui(&mut a, AluOp::Or)?,
            "xori" => alui(&mut a, AluOp::Xor)?,
            "slti" => alui(&mut a, AluOp::Slt)?,
            "li" => {
                need(2)?;
                a.li(reg(ops[0], line)?, imm(ops[1], line)?);
            }
            "mv" => {
                need(2)?;
                a.mv(reg(ops[0], line)?, reg(ops[1], line)?);
            }
            "nop" => {
                need(0)?;
                a.nop();
            }
            "ld" => load(&mut a, MemWidth::D, true)?,
            "lw" => load(&mut a, MemWidth::W, true)?,
            "lwu" => load(&mut a, MemWidth::W, false)?,
            "lh" => load(&mut a, MemWidth::H, true)?,
            "lhu" => load(&mut a, MemWidth::H, false)?,
            "lb" => load(&mut a, MemWidth::B, true)?,
            "lbu" => load(&mut a, MemWidth::B, false)?,
            "sd" => store(&mut a, MemWidth::D)?,
            "sw" => store(&mut a, MemWidth::W)?,
            "sh" => store(&mut a, MemWidth::H)?,
            "sb" => store(&mut a, MemWidth::B)?,
            "beq" => branch(&mut a, BranchCond::Eq)?,
            "bne" => branch(&mut a, BranchCond::Ne)?,
            "blt" => branch(&mut a, BranchCond::Lt)?,
            "bge" => branch(&mut a, BranchCond::Ge)?,
            "bltu" => branch(&mut a, BranchCond::Ltu)?,
            "bgeu" => branch(&mut a, BranchCond::Geu)?,
            "j" => {
                need(1)?;
                a.j(ops[0]);
            }
            "call" => {
                need(1)?;
                a.call(ops[0]);
            }
            "ret" => {
                need(0)?;
                a.ret();
            }
            "jalr" => {
                need(2)?;
                let (off, b) = mem_operand(ops[1], line)?;
                a.jalr(reg(ops[0], line)?, b, off);
            }
            "halt" => {
                need(0)?;
                a.halt();
            }
            other => {
                return Err(ParseError {
                    line,
                    message: format!("unknown mnemonic `{other}`"),
                })
            }
        }
    }
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cpu;

    #[test]
    fn parses_and_runs_a_program() {
        let asm = parse_asm(
            "# doubles a0 three times
             li a0, 5
             li a1, 3
             loop:
                 add a0, a0, a0   // double
                 addi a1, a1, -1
                 bne a1, zero, loop
             halt",
            0x1000,
        )
        .unwrap();
        let mut cpu = Cpu::new(asm.assemble().unwrap());
        cpu.run(1000).unwrap();
        assert!(cpu.is_halted());
        assert_eq!(cpu.reg(Reg::A0), 40);
    }

    #[test]
    fn memory_operands() {
        let asm = parse_asm(
            "li a0, 0x8000
             li a1, -3
             sd a1, 8(a0)
             ld a2, 8(a0)
             lwu a3, 8(a0)
             halt",
            0,
        )
        .unwrap();
        let mut cpu = Cpu::new(asm.assemble().unwrap());
        cpu.run(100).unwrap();
        assert_eq!(cpu.reg(Reg::A2), (-3i64) as u64);
        assert_eq!(cpu.reg(Reg::A3), 0xffff_fffd);
    }

    #[test]
    fn x_names_and_abi_names_mix() {
        let asm = parse_asm("add x10, x11, a2\nhalt", 0).unwrap();
        let p = asm.assemble().unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn call_and_ret() {
        let asm = parse_asm(
            "li a0, 7
             call f
             halt
             f:
                 add a0, a0, a0
                 ret",
            0,
        )
        .unwrap();
        let mut cpu = Cpu::new(asm.assemble().unwrap());
        cpu.run(100).unwrap();
        assert_eq!(cpu.reg(Reg::A0), 14);
    }

    #[test]
    fn error_reports_line_numbers() {
        let e = parse_asm("nop\nfrobnicate a0\n", 0).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("frobnicate"));

        let e = parse_asm("add a0, a1\n", 0).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("3 operands"));

        let e = parse_asm("ld a0, a1\n", 0).unwrap_err();
        assert!(e.message.contains("off(base)"));

        let e = parse_asm("li q7, 3\n", 0).unwrap_err();
        assert!(e.message.contains("unknown register"));
    }

    #[test]
    fn display_output_reparses_for_alu_and_mem() {
        // Round-trip through Display for PC-independent instructions.
        use crate::{AluOp, Inst, MemWidth};
        let insts = [
            Inst::Alu {
                op: AluOp::Xor,
                rd: Reg::A0,
                rs1: Reg::T1,
                rs2: Reg::S3,
            },
            Inst::AluImm {
                op: AluOp::Add,
                rd: Reg::A1,
                rs1: Reg::A1,
                imm: -7,
            },
            Inst::Load {
                width: MemWidth::W,
                signed: true,
                rd: Reg::T0,
                base: Reg::SP,
                offset: 16,
            },
            Inst::Store {
                width: MemWidth::D,
                base: Reg::A0,
                src: Reg::A2,
                offset: -8,
            },
            Inst::Halt,
        ];
        let text: String = insts.iter().map(|i| format!("{i}\n")).collect();
        let asm = parse_asm(&text, 0x2000).unwrap();
        let p = asm.assemble().unwrap();
        for (got, want) in p.iter().map(|(_, i)| *i).zip(insts) {
            assert_eq!(got, want);
        }
    }
}
