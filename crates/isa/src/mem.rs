//! Sparse, paged guest memory.
//!
//! Guest programs address a flat 64-bit byte space. Pages are allocated
//! lazily on first touch and zero-filled, so workloads can scatter data
//! structures anywhere without preallocation. Accesses may straddle page
//! boundaries.

use std::collections::HashMap;

use crate::MemWidth;

const PAGE_SHIFT: u64 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

/// Size in bytes of one guest memory page.
pub const PAGE_BYTES: usize = PAGE_SIZE;

/// Sparse byte-addressable memory with 4 KiB lazily-allocated pages.
///
/// # Examples
///
/// ```
/// use phelps_isa::{Memory, MemWidth};
///
/// let mut mem = Memory::new();
/// mem.write(0x1000, MemWidth::D, 0xdead_beef_cafe_f00d);
/// assert_eq!(mem.read(0x1000, MemWidth::D, false), 0xdead_beef_cafe_f00d);
/// assert_eq!(mem.read(0x1000, MemWidth::B, false), 0x0d); // little-endian
/// ```
#[derive(Clone, Default, Debug)]
pub struct Memory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
}

impl Memory {
    /// Creates an empty memory; all bytes read as zero until written.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of resident (touched) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Total bytes held by resident pages. This is the footprint a
    /// serialized snapshot of this memory pays, and the unit checkpoint
    /// restore is linear in — not the (sparse) addressed range.
    pub fn resident_bytes(&self) -> usize {
        self.pages.len() * PAGE_SIZE
    }

    /// Iterates resident pages as `(base_addr, contents)` in ascending
    /// address order. The order is deterministic so serializers and
    /// content hashes built on top are stable across runs and platforms.
    ///
    /// Touched-but-zero pages are yielded like any other; callers that
    /// want semantic (zeros-elided) output must filter them.
    pub fn iter_pages(&self) -> impl Iterator<Item = (u64, &[u8; PAGE_BYTES])> {
        let mut ids: Vec<u64> = self.pages.keys().copied().collect();
        ids.sort_unstable();
        ids.into_iter()
            .map(move |id| (id << PAGE_SHIFT, &**self.pages.get(&id).unwrap()))
    }

    /// Rebuilds a memory from `(base_addr, contents)` pairs as yielded by
    /// [`Memory::iter_pages`]. Base addresses must be page-aligned; later
    /// duplicates overwrite earlier ones.
    ///
    /// # Panics
    ///
    /// Panics if a base address is not a multiple of [`PAGE_BYTES`].
    pub fn from_pages<I>(pages: I) -> Memory
    where
        I: IntoIterator<Item = (u64, Box<[u8; PAGE_BYTES]>)>,
    {
        let mut mem = Memory::new();
        for (base, page) in pages {
            assert_eq!(base & PAGE_MASK, 0, "page base {base:#x} not aligned");
            mem.pages.insert(base >> PAGE_SHIFT, page);
        }
        mem
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte, allocating the page if needed.
    pub fn write_u8(&mut self, addr: u64, value: u8) {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        page[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads `width` bytes at `addr` (little-endian), zero- or sign-extending
    /// to 64 bits according to `signed`.
    pub fn read(&self, addr: u64, width: MemWidth, signed: bool) -> u64 {
        let n = width.bytes();
        let mut raw: u64 = 0;
        for i in 0..n {
            raw |= (self.read_u8(addr.wrapping_add(i)) as u64) << (8 * i);
        }
        if signed {
            let bits = 8 * n as u32;
            if bits < 64 {
                let shift = 64 - bits;
                return (((raw << shift) as i64) >> shift) as u64;
            }
        }
        raw
    }

    /// Writes the low `width` bytes of `value` at `addr` (little-endian).
    pub fn write(&mut self, addr: u64, width: MemWidth, value: u64) {
        for i in 0..width.bytes() {
            self.write_u8(addr.wrapping_add(i), (value >> (8 * i)) as u8);
        }
    }

    /// Convenience: read a 64-bit doubleword.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read(addr, MemWidth::D, false)
    }

    /// Convenience: write a 64-bit doubleword.
    pub fn write_u64(&mut self, addr: u64, value: u64) {
        self.write(addr, MemWidth::D, value);
    }

    /// Copies a byte slice into memory starting at `addr`.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u64), *b);
        }
    }

    /// Address and differing bytes `(addr, self_byte, other_byte)` of the
    /// lowest-addressed difference between two memories, or `None` if they
    /// hold identical contents.
    ///
    /// Pages resident in only one memory compare against zeros, so two
    /// memories differing only in *touched-but-zero* pages are equal —
    /// semantic equality, not representational.
    ///
    /// # Examples
    ///
    /// ```
    /// use phelps_isa::Memory;
    /// let mut a = Memory::new();
    /// let b = Memory::new();
    /// a.write_u8(0x2001, 0); // touched but still zero
    /// assert_eq!(a.first_difference(&b), None);
    /// a.write_u8(0x2001, 7);
    /// assert_eq!(a.first_difference(&b), Some((0x2001, 7, 0)));
    /// ```
    pub fn first_difference(&self, other: &Memory) -> Option<(u64, u8, u8)> {
        let mut page_ids: Vec<u64> = self
            .pages
            .keys()
            .chain(other.pages.keys())
            .copied()
            .collect();
        page_ids.sort_unstable();
        page_ids.dedup();
        const ZEROS: [u8; PAGE_SIZE] = [0u8; PAGE_SIZE];
        for id in page_ids {
            let a = self.pages.get(&id).map(|p| &p[..]).unwrap_or(&ZEROS);
            let b = other.pages.get(&id).map(|p| &p[..]).unwrap_or(&ZEROS);
            if let Some(off) = (0..PAGE_SIZE).find(|&i| a[i] != b[i]) {
                return Some(((id << PAGE_SHIFT) + off as u64, a[off], b[off]));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let mem = Memory::new();
        assert_eq!(mem.read(0, MemWidth::D, false), 0);
        assert_eq!(mem.read(0xffff_ffff_ffff_fff0, MemWidth::D, false), 0);
        assert_eq!(mem.resident_pages(), 0);
    }

    #[test]
    fn roundtrip_all_widths() {
        let mut mem = Memory::new();
        mem.write(0x100, MemWidth::B, 0xab);
        mem.write(0x200, MemWidth::H, 0xabcd);
        mem.write(0x300, MemWidth::W, 0xdead_beef);
        mem.write(0x400, MemWidth::D, 0x0123_4567_89ab_cdef);
        assert_eq!(mem.read(0x100, MemWidth::B, false), 0xab);
        assert_eq!(mem.read(0x200, MemWidth::H, false), 0xabcd);
        assert_eq!(mem.read(0x300, MemWidth::W, false), 0xdead_beef);
        assert_eq!(mem.read(0x400, MemWidth::D, false), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn sign_extension() {
        let mut mem = Memory::new();
        mem.write(0x10, MemWidth::B, 0x80);
        assert_eq!(mem.read(0x10, MemWidth::B, true), 0xffff_ffff_ffff_ff80);
        assert_eq!(mem.read(0x10, MemWidth::B, false), 0x80);
        mem.write(0x20, MemWidth::W, 0x8000_0000);
        assert_eq!(mem.read(0x20, MemWidth::W, true), 0xffff_ffff_8000_0000);
    }

    #[test]
    fn little_endian_layout() {
        let mut mem = Memory::new();
        mem.write(0x40, MemWidth::W, 0x0403_0201);
        assert_eq!(mem.read_u8(0x40), 0x01);
        assert_eq!(mem.read_u8(0x41), 0x02);
        assert_eq!(mem.read_u8(0x42), 0x03);
        assert_eq!(mem.read_u8(0x43), 0x04);
    }

    #[test]
    fn cross_page_access() {
        let mut mem = Memory::new();
        let addr = 0x1000 - 4; // straddles page 0 and page 1
        mem.write(addr, MemWidth::D, 0x1122_3344_5566_7788);
        assert_eq!(mem.read(addr, MemWidth::D, false), 0x1122_3344_5566_7788);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn write_bytes_copies_slice() {
        let mut mem = Memory::new();
        mem.write_bytes(0x500, &[1, 2, 3, 4]);
        assert_eq!(mem.read(0x500, MemWidth::W, false), 0x0403_0201);
    }

    #[test]
    fn first_difference_finds_lowest_addressed_byte() {
        let mut a = Memory::new();
        let mut b = Memory::new();
        assert_eq!(a.first_difference(&b), None);
        a.write_u64(0x9000, 0x0102_0304_0506_0708);
        b.write_u64(0x9000, 0x0102_0304_0506_0708);
        assert_eq!(a.first_difference(&b), None);
        // Differ in two places; the lower address wins.
        b.write_u8(0x9003, 0xaa);
        a.write_u8(0xf000, 1);
        assert_eq!(a.first_difference(&b), Some((0x9003, 0x05, 0xaa)));
        assert_eq!(b.first_difference(&a), Some((0x9003, 0xaa, 0x05)));
    }

    #[test]
    fn first_difference_treats_absent_pages_as_zero() {
        let mut a = Memory::new();
        let b = Memory::new();
        a.write_u8(0x5000, 0); // resident page, all zeros
        assert_eq!(a.first_difference(&b), None);
        assert_eq!(b.first_difference(&a), None);
        a.write_u8(0x5001, 3);
        assert_eq!(b.first_difference(&a), Some((0x5001, 0, 3)));
    }

    #[test]
    fn iter_pages_is_sorted_and_roundtrips() {
        let mut mem = Memory::new();
        // Touch pages out of address order, including a straddling write.
        mem.write_u64(0x9000, 0xdead_beef);
        mem.write_u8(0x2fff, 0x42); // last byte of page 2
        mem.write(0x4ffc, MemWidth::D, 0x1122_3344_5566_7788); // straddles 4/5
        let bases: Vec<u64> = mem.iter_pages().map(|(b, _)| b).collect();
        assert_eq!(bases, vec![0x2000, 0x4000, 0x5000, 0x9000]);
        assert_eq!(mem.resident_bytes(), 4 * PAGE_BYTES);

        let back = Memory::from_pages(mem.iter_pages().map(|(b, p)| (b, Box::new(*p))));
        assert_eq!(mem.first_difference(&back), None);
        assert_eq!(back.read_u8(0x2fff), 0x42);
        assert_eq!(back.read(0x4ffc, MemWidth::D, false), 0x1122_3344_5566_7788);
        assert_eq!(back.resident_pages(), 4);
    }

    #[test]
    fn zero_page_roundtrip_preserves_semantics() {
        let mut mem = Memory::new();
        mem.write_u8(0x7000, 0); // resident but all-zero
        mem.write_u8(0x8008, 9);
        assert_eq!(mem.resident_pages(), 2);

        // Representational round-trip keeps the zero page resident...
        let full = Memory::from_pages(mem.iter_pages().map(|(b, p)| (b, Box::new(*p))));
        assert_eq!(full.resident_pages(), 2);
        assert_eq!(mem.first_difference(&full), None);

        // ...while a zeros-elided round-trip is still semantically equal.
        let elided = Memory::from_pages(
            mem.iter_pages()
                .filter(|(_, p)| p.iter().any(|&b| b != 0))
                .map(|(b, p)| (b, Box::new(*p))),
        );
        assert_eq!(elided.resident_pages(), 1);
        assert_eq!(mem.first_difference(&elided), None);
        assert_eq!(elided.read_u8(0x8008), 9);
    }

    #[test]
    #[should_panic(expected = "not aligned")]
    fn from_pages_rejects_unaligned_base() {
        let _ = Memory::from_pages([(0x123u64, Box::new([0u8; PAGE_BYTES]))]);
    }

    #[test]
    fn partial_overwrite_preserves_neighbors() {
        let mut mem = Memory::new();
        mem.write(0x600, MemWidth::D, u64::MAX);
        mem.write(0x602, MemWidth::B, 0);
        assert_eq!(mem.read(0x600, MemWidth::D, false), 0xffff_ffff_ff00_ffff);
    }
}
