//! Guest instruction set.
//!
//! The guest ISA is a pragmatic RV64IM subset: integer ALU operations
//! (register and immediate forms), loads/stores of 1/2/4/8 bytes,
//! conditional branches, direct and indirect jumps, `lui`-style immediate
//! materialization, and a `halt` marker that ends a program.
//!
//! Branch and `jal` targets are stored as **absolute PCs** (the assembler
//! resolves labels), which keeps every consumer — emulator, timing model,
//! helper-thread construction — free of PC-relative arithmetic.

use crate::Reg;
use std::fmt;

/// Integer ALU operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    /// Addition (wrapping).
    Add,
    /// Subtraction (wrapping). Not available in immediate form (use `addi` with a negative immediate).
    Sub,
    /// Logical left shift (by low 6 bits of rhs).
    Sll,
    /// Signed less-than, producing 0 or 1.
    Slt,
    /// Unsigned less-than, producing 0 or 1.
    Sltu,
    /// Bitwise exclusive or.
    Xor,
    /// Logical right shift (by low 6 bits of rhs).
    Srl,
    /// Arithmetic right shift (by low 6 bits of rhs).
    Sra,
    /// Bitwise or.
    Or,
    /// Bitwise and.
    And,
    /// 64-bit multiplication (low half, wrapping).
    Mul,
    /// Signed division (RISC-V semantics: x/0 = -1, overflow wraps).
    Div,
    /// Unsigned division (x/0 = all ones).
    Divu,
    /// Signed remainder (x%0 = x).
    Rem,
    /// Unsigned remainder (x%0 = x).
    Remu,
    /// 32-bit addition with sign extension (`addw`).
    Addw,
    /// 32-bit subtraction with sign extension (`subw`).
    Subw,
    /// 32-bit multiplication with sign extension (`mulw`).
    Mulw,
    /// 32-bit logical left shift with sign extension (`sllw`).
    Sllw,
}

impl AluOp {
    /// Every ALU operation, for exhaustive enumeration (instruction
    /// generators, encoders, coverage checks).
    pub const ALL: [AluOp; 19] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Sll,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Xor,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Or,
        AluOp::And,
        AluOp::Mul,
        AluOp::Div,
        AluOp::Divu,
        AluOp::Rem,
        AluOp::Remu,
        AluOp::Addw,
        AluOp::Subw,
        AluOp::Mulw,
        AluOp::Sllw,
    ];

    /// Execution latency of the operation in cycles, used by the timing
    /// model ("simple ALU" vs. "complex ALU" lanes).
    pub fn latency(self) -> u32 {
        match self {
            AluOp::Mul | AluOp::Mulw => 3,
            AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu => 12,
            _ => 1,
        }
    }

    /// Whether the operation must issue to a complex-ALU lane.
    pub fn is_complex(self) -> bool {
        matches!(
            self,
            AluOp::Mul | AluOp::Mulw | AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu
        )
    }

    /// Evaluates the operation on two 64-bit operands with RISC-V semantics.
    ///
    /// # Examples
    ///
    /// ```
    /// use phelps_isa::AluOp;
    /// assert_eq!(AluOp::Add.eval(2, 3), 5);
    /// assert_eq!(AluOp::Slt.eval(u64::MAX, 0), 1); // -1 < 0 signed
    /// assert_eq!(AluOp::Div.eval(7, 0), u64::MAX); // RISC-V x/0 == -1
    /// ```
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Sll => a.wrapping_shl((b & 0x3f) as u32),
            AluOp::Slt => ((a as i64) < (b as i64)) as u64,
            AluOp::Sltu => (a < b) as u64,
            AluOp::Xor => a ^ b,
            AluOp::Srl => a.wrapping_shr((b & 0x3f) as u32),
            AluOp::Sra => ((a as i64).wrapping_shr((b & 0x3f) as u32)) as u64,
            AluOp::Or => a | b,
            AluOp::And => a & b,
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    u64::MAX
                } else {
                    (a as i64).wrapping_div(b as i64) as u64
                }
            }
            AluOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
            AluOp::Rem => {
                if b == 0 {
                    a
                } else {
                    (a as i64).wrapping_rem(b as i64) as u64
                }
            }
            AluOp::Remu => a.checked_rem(b).unwrap_or(a),
            AluOp::Addw => (a as i32).wrapping_add(b as i32) as i64 as u64,
            AluOp::Subw => (a as i32).wrapping_sub(b as i32) as i64 as u64,
            AluOp::Mulw => (a as i32).wrapping_mul(b as i32) as i64 as u64,
            AluOp::Sllw => ((a as i32).wrapping_shl((b & 0x1f) as u32)) as i64 as u64,
        }
    }
}

/// Access width of a load or store.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemWidth {
    /// 1 byte.
    B,
    /// 2 bytes.
    H,
    /// 4 bytes.
    W,
    /// 8 bytes.
    D,
}

impl MemWidth {
    /// Every access width, for exhaustive enumeration.
    pub const ALL: [MemWidth; 4] = [MemWidth::B, MemWidth::H, MemWidth::W, MemWidth::D];

    /// The access size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::B => 1,
            MemWidth::H => 2,
            MemWidth::W => 4,
            MemWidth::D => 8,
        }
    }
}

/// Condition of a conditional branch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BranchCond {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if signed less-than.
    Lt,
    /// Branch if signed greater-or-equal.
    Ge,
    /// Branch if unsigned less-than.
    Ltu,
    /// Branch if unsigned greater-or-equal.
    Geu,
}

impl BranchCond {
    /// Every branch condition, for exhaustive enumeration.
    pub const ALL: [BranchCond; 6] = [
        BranchCond::Eq,
        BranchCond::Ne,
        BranchCond::Lt,
        BranchCond::Ge,
        BranchCond::Ltu,
        BranchCond::Geu,
    ];

    /// Evaluates the condition on two 64-bit operands.
    ///
    /// # Examples
    ///
    /// ```
    /// use phelps_isa::BranchCond;
    /// assert!(BranchCond::Lt.eval(u64::MAX, 0)); // -1 < 0 signed
    /// assert!(!BranchCond::Ltu.eval(u64::MAX, 0));
    /// ```
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i64) < (b as i64),
            BranchCond::Ge => (a as i64) >= (b as i64),
            BranchCond::Ltu => a < b,
            BranchCond::Geu => a >= b,
        }
    }
}

/// A decoded guest instruction.
///
/// Control-transfer targets are absolute PCs (resolved by the
/// [assembler](crate::Asm)).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Inst {
    /// Register-register ALU operation: `rd = op(rs1, rs2)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
    },
    /// Register-immediate ALU operation: `rd = op(rs1, imm)`.
    AluImm {
        /// Operation (subtract is expressed as `Add` of a negative immediate).
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Left operand.
        rs1: Reg,
        /// Sign-extended immediate.
        imm: i32,
    },
    /// Materialize a constant: `rd = imm` (covers `lui`/`li` idioms).
    Li {
        /// Destination.
        rd: Reg,
        /// Value.
        imm: i64,
    },
    /// Memory load: `rd = mem[rs1 + offset]`.
    Load {
        /// Access width.
        width: MemWidth,
        /// Whether the loaded value is sign-extended.
        signed: bool,
        /// Destination.
        rd: Reg,
        /// Base address register.
        base: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// Memory store: `mem[base + offset] = src`.
    Store {
        /// Access width.
        width: MemWidth,
        /// Base address register.
        base: Reg,
        /// Data register.
        src: Reg,
        /// Byte offset.
        offset: i32,
    },
    /// Conditional branch to absolute `target` if `cond(rs1, rs2)`.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// Left operand.
        rs1: Reg,
        /// Right operand.
        rs2: Reg,
        /// Absolute target PC.
        target: u64,
    },
    /// Unconditional direct jump; `rd` receives the return address.
    Jal {
        /// Link register (`Reg::ZERO` for a plain jump).
        rd: Reg,
        /// Absolute target PC.
        target: u64,
    },
    /// Indirect jump to `rs1 + offset`; `rd` receives the return address.
    Jalr {
        /// Link register (`Reg::ZERO` for a plain indirect jump).
        rd: Reg,
        /// Base register holding the target.
        base: Reg,
        /// Byte offset added to the base.
        offset: i32,
    },
    /// Terminates the program.
    Halt,
}

impl Inst {
    /// The destination register, if the instruction writes one.
    ///
    /// Writes to `x0` are reported as `None` since they are architecturally
    /// discarded.
    pub fn dst(&self) -> Option<Reg> {
        let rd = match *self {
            Inst::Alu { rd, .. }
            | Inst::AluImm { rd, .. }
            | Inst::Li { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::Jal { rd, .. }
            | Inst::Jalr { rd, .. } => rd,
            Inst::Store { .. } | Inst::Branch { .. } | Inst::Halt => return None,
        };
        if rd.is_zero() {
            None
        } else {
            Some(rd)
        }
    }

    /// Source registers, in operand order. Reads of `x0` are included (they
    /// are always ready).
    pub fn srcs(&self) -> SrcRegs {
        let mut s = SrcRegs::default();
        match *self {
            Inst::Alu { rs1, rs2, .. } => {
                s.push(rs1);
                s.push(rs2);
            }
            Inst::AluImm { rs1, .. } => s.push(rs1),
            Inst::Li { .. } => {}
            Inst::Load { base, .. } => s.push(base),
            Inst::Store { base, src, .. } => {
                s.push(base);
                s.push(src);
            }
            Inst::Branch { rs1, rs2, .. } => {
                s.push(rs1);
                s.push(rs2);
            }
            Inst::Jal { .. } => {}
            Inst::Jalr { base, .. } => s.push(base),
            Inst::Halt => {}
        }
        s
    }

    /// Whether this is a conditional branch.
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Inst::Branch { .. })
    }

    /// Whether this is any control transfer (branch, jal, jalr).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Branch { .. } | Inst::Jal { .. } | Inst::Jalr { .. }
        )
    }

    /// Whether this is a memory load.
    pub fn is_load(&self) -> bool {
        matches!(self, Inst::Load { .. })
    }

    /// Whether this is a memory store.
    pub fn is_store(&self) -> bool {
        matches!(self, Inst::Store { .. })
    }
}

/// Small inline vector of at most two source registers.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct SrcRegs {
    regs: [Option<Reg>; 2],
    len: u8,
}

impl SrcRegs {
    fn push(&mut self, r: Reg) {
        self.regs[self.len as usize] = Some(r);
        self.len += 1;
    }

    /// Number of source registers (0..=2).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether there are no source registers.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterator over the source registers.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.regs.iter().take(self.len as usize).map(|r| r.unwrap())
    }
}

impl IntoIterator for SrcRegs {
    type Item = Reg;
    type IntoIter = std::iter::Flatten<std::array::IntoIter<Option<Reg>, 2>>;

    fn into_iter(self) -> Self::IntoIter {
        self.regs.into_iter().flatten()
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", alu_name(op))
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                write!(f, "{}i {rd}, {rs1}, {imm}", alu_name(op))
            }
            Inst::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Inst::Load {
                width,
                signed,
                rd,
                base,
                offset,
            } => {
                let u = if signed { "" } else { "u" };
                write!(f, "l{}{u} {rd}, {offset}({base})", width_name(width))
            }
            Inst::Store {
                width,
                base,
                src,
                offset,
            } => write!(f, "s{} {src}, {offset}({base})", width_name(width)),
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let c = match cond {
                    BranchCond::Eq => "beq",
                    BranchCond::Ne => "bne",
                    BranchCond::Lt => "blt",
                    BranchCond::Ge => "bge",
                    BranchCond::Ltu => "bltu",
                    BranchCond::Geu => "bgeu",
                };
                write!(f, "{c} {rs1}, {rs2}, {target:#x}")
            }
            Inst::Jal { rd, target } => write!(f, "jal {rd}, {target:#x}"),
            Inst::Jalr { rd, base, offset } => write!(f, "jalr {rd}, {offset}({base})"),
            Inst::Halt => f.write_str("halt"),
        }
    }
}

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Sll => "sll",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
        AluOp::Xor => "xor",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Or => "or",
        AluOp::And => "and",
        AluOp::Mul => "mul",
        AluOp::Div => "div",
        AluOp::Divu => "divu",
        AluOp::Rem => "rem",
        AluOp::Remu => "remu",
        AluOp::Addw => "addw",
        AluOp::Subw => "subw",
        AluOp::Mulw => "mulw",
        AluOp::Sllw => "sllw",
    }
}

fn width_name(w: MemWidth) -> &'static str {
    match w {
        MemWidth::B => "b",
        MemWidth::H => "h",
        MemWidth::W => "w",
        MemWidth::D => "d",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_eval_basics() {
        assert_eq!(AluOp::Add.eval(2, 3), 5);
        assert_eq!(AluOp::Sub.eval(2, 3), u64::MAX); // wraps
        assert_eq!(AluOp::Slt.eval(1, 2), 1);
        assert_eq!(AluOp::Slt.eval(2, 1), 0);
        assert_eq!(AluOp::Slt.eval(u64::MAX, 0), 1);
        assert_eq!(AluOp::Sltu.eval(u64::MAX, 0), 0);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Sra.eval((-8i64) as u64, 1), (-4i64) as u64);
        assert_eq!(AluOp::Srl.eval(8, 1), 4);
    }

    #[test]
    fn alu_eval_division_by_zero_riscv_semantics() {
        assert_eq!(AluOp::Div.eval(7, 0), u64::MAX);
        assert_eq!(AluOp::Divu.eval(7, 0), u64::MAX);
        assert_eq!(AluOp::Rem.eval(7, 0), 7);
        assert_eq!(AluOp::Remu.eval(7, 0), 7);
    }

    #[test]
    fn alu_eval_word_ops_sign_extend() {
        assert_eq!(
            AluOp::Addw.eval(0x7fff_ffff, 1),
            0xffff_ffff_8000_0000u64,
            "addw overflow sign-extends"
        );
        assert_eq!(AluOp::Subw.eval(0, 1), u64::MAX);
    }

    #[test]
    fn shift_amount_masks_to_six_bits() {
        assert_eq!(AluOp::Sll.eval(1, 64), 1); // 64 & 0x3f == 0
        assert_eq!(AluOp::Sll.eval(1, 65), 2);
    }

    #[test]
    fn branch_cond_eval() {
        assert!(BranchCond::Eq.eval(5, 5));
        assert!(BranchCond::Ne.eval(5, 6));
        assert!(BranchCond::Lt.eval(u64::MAX, 0));
        assert!(BranchCond::Ge.eval(0, u64::MAX));
        assert!(BranchCond::Ltu.eval(0, u64::MAX));
        assert!(BranchCond::Geu.eval(u64::MAX, 0));
    }

    #[test]
    fn dst_hides_x0_writes() {
        let i = Inst::Jal {
            rd: Reg::ZERO,
            target: 0x100,
        };
        assert_eq!(i.dst(), None);
        let i = Inst::Jal {
            rd: Reg::RA,
            target: 0x100,
        };
        assert_eq!(i.dst(), Some(Reg::RA));
    }

    #[test]
    fn srcs_enumerate_operands() {
        let i = Inst::Store {
            width: MemWidth::D,
            base: Reg::A0,
            src: Reg::A1,
            offset: 8,
        };
        let srcs: Vec<Reg> = i.srcs().into_iter().collect();
        assert_eq!(srcs, vec![Reg::A0, Reg::A1]);

        let i = Inst::Li {
            rd: Reg::A0,
            imm: 1,
        };
        assert!(i.srcs().is_empty());
    }

    #[test]
    fn classification_predicates() {
        let b = Inst::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::A0,
            rs2: Reg::ZERO,
            target: 0,
        };
        assert!(b.is_cond_branch());
        assert!(b.is_control());
        assert!(!b.is_load());
        let j = Inst::Jal {
            rd: Reg::ZERO,
            target: 0,
        };
        assert!(!j.is_cond_branch());
        assert!(j.is_control());
    }

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::B.bytes(), 1);
        assert_eq!(MemWidth::H.bytes(), 2);
        assert_eq!(MemWidth::W.bytes(), 4);
        assert_eq!(MemWidth::D.bytes(), 8);
    }

    #[test]
    fn display_formats_reasonably() {
        let i = Inst::Load {
            width: MemWidth::W,
            signed: true,
            rd: Reg::A0,
            base: Reg::SP,
            offset: -4,
        };
        assert_eq!(i.to_string(), "lw a0, -4(sp)");
        let i = Inst::Alu {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        };
        assert_eq!(i.to_string(), "add a0, a1, a2");
    }

    #[test]
    fn latency_classes() {
        assert_eq!(AluOp::Add.latency(), 1);
        assert!(AluOp::Mul.latency() > 1);
        assert!(AluOp::Div.latency() > AluOp::Mul.latency());
        assert!(AluOp::Div.is_complex());
        assert!(!AluOp::And.is_complex());
    }
}
