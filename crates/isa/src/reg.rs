//! Logical integer registers of the guest ISA.
//!
//! The guest ISA uses the 32 integer registers of RV64 with the standard ABI
//! mnemonics. [`Reg`] is a validated newtype: a `Reg` always holds an index
//! in `0..32`, so downstream tables (rename maps, last-producer tables, ...)
//! can index arrays with it without bounds anxiety.

use std::fmt;

/// Number of logical integer registers in the guest ISA.
pub const NUM_REGS: usize = 32;

/// A logical integer register (`x0`..`x31`).
///
/// `x0` is hard-wired to zero, exactly as in RISC-V: writes are discarded and
/// reads return zero. The emulator and the timing model both honor this.
///
/// # Examples
///
/// ```
/// use phelps_isa::Reg;
///
/// let r = Reg::new(10).unwrap();
/// assert_eq!(r, Reg::A0);
/// assert_eq!(r.index(), 10);
/// assert_eq!(r.to_string(), "a0");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hard-wired zero register `x0`.
    pub const ZERO: Reg = Reg(0);
    /// Return address register `x1`.
    pub const RA: Reg = Reg(1);
    /// Stack pointer `x2`.
    pub const SP: Reg = Reg(2);
    /// Global pointer `x3`.
    pub const GP: Reg = Reg(3);
    /// Thread pointer `x4`.
    pub const TP: Reg = Reg(4);
    /// Temporary `t0` (`x5`).
    pub const T0: Reg = Reg(5);
    /// Temporary `t1` (`x6`).
    pub const T1: Reg = Reg(6);
    /// Temporary `t2` (`x7`).
    pub const T2: Reg = Reg(7);
    /// Saved register / frame pointer `s0` (`x8`).
    pub const S0: Reg = Reg(8);
    /// Saved register `s1` (`x9`).
    pub const S1: Reg = Reg(9);
    /// Argument/return register `a0` (`x10`).
    pub const A0: Reg = Reg(10);
    /// Argument/return register `a1` (`x11`).
    pub const A1: Reg = Reg(11);
    /// Argument register `a2` (`x12`).
    pub const A2: Reg = Reg(12);
    /// Argument register `a3` (`x13`).
    pub const A3: Reg = Reg(13);
    /// Argument register `a4` (`x14`).
    pub const A4: Reg = Reg(14);
    /// Argument register `a5` (`x15`).
    pub const A5: Reg = Reg(15);
    /// Argument register `a6` (`x16`).
    pub const A6: Reg = Reg(16);
    /// Argument register `a7` (`x17`).
    pub const A7: Reg = Reg(17);
    /// Saved register `s2` (`x18`).
    pub const S2: Reg = Reg(18);
    /// Saved register `s3` (`x19`).
    pub const S3: Reg = Reg(19);
    /// Saved register `s4` (`x20`).
    pub const S4: Reg = Reg(20);
    /// Saved register `s5` (`x21`).
    pub const S5: Reg = Reg(21);
    /// Saved register `s6` (`x22`).
    pub const S6: Reg = Reg(22);
    /// Saved register `s7` (`x23`).
    pub const S7: Reg = Reg(23);
    /// Saved register `s8` (`x24`).
    pub const S8: Reg = Reg(24);
    /// Saved register `s9` (`x25`).
    pub const S9: Reg = Reg(25);
    /// Saved register `s10` (`x26`).
    pub const S10: Reg = Reg(26);
    /// Saved register `s11` (`x27`).
    pub const S11: Reg = Reg(27);
    /// Temporary `t3` (`x28`).
    pub const T3: Reg = Reg(28);
    /// Temporary `t4` (`x29`).
    pub const T4: Reg = Reg(29);
    /// Temporary `t5` (`x30`).
    pub const T5: Reg = Reg(30);
    /// Temporary `t6` (`x31`).
    pub const T6: Reg = Reg(31);

    /// Creates a register from a raw index.
    ///
    /// Returns `None` if `index >= 32`.
    ///
    /// # Examples
    ///
    /// ```
    /// use phelps_isa::Reg;
    /// assert!(Reg::new(31).is_some());
    /// assert!(Reg::new(32).is_none());
    /// ```
    pub fn new(index: u8) -> Option<Reg> {
        if (index as usize) < NUM_REGS {
            Some(Reg(index))
        } else {
            None
        }
    }

    /// The raw register index in `0..32`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hard-wired zero register `x0`.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterator over all 32 logical registers, `x0` first.
    ///
    /// # Examples
    ///
    /// ```
    /// use phelps_isa::Reg;
    /// assert_eq!(Reg::all().count(), 32);
    /// ```
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_REGS as u8).map(Reg)
    }

    /// The standard ABI mnemonic for this register (e.g. `"a0"`).
    pub fn abi_name(self) -> &'static str {
        const NAMES: [&str; NUM_REGS] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        NAMES[self.index()]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reg({})", self.abi_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_range() {
        assert_eq!(Reg::new(0), Some(Reg::ZERO));
        assert_eq!(Reg::new(10), Some(Reg::A0));
        assert_eq!(Reg::new(31), Some(Reg::T6));
        assert_eq!(Reg::new(32), None);
        assert_eq!(Reg::new(255), None);
    }

    #[test]
    fn zero_is_zero() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::A0.is_zero());
    }

    #[test]
    fn all_yields_each_register_once() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), NUM_REGS);
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn abi_names_match_convention() {
        assert_eq!(Reg::ZERO.abi_name(), "zero");
        assert_eq!(Reg::SP.abi_name(), "sp");
        assert_eq!(Reg::A7.abi_name(), "a7");
        assert_eq!(Reg::S11.abi_name(), "s11");
        assert_eq!(Reg::T6.abi_name(), "t6");
    }

    #[test]
    fn display_uses_abi_name() {
        assert_eq!(Reg::A0.to_string(), "a0");
        assert_eq!(format!("{:?}", Reg::A0), "Reg(a0)");
    }
}
