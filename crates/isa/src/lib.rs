//! # phelps-isa
//!
//! Guest instruction set for the Phelps reproduction: a pragmatic RV64IM
//! subset with a label-based [assembler](Asm), [sparse memory](Memory), and
//! a [functional emulator](Cpu) that produces per-instruction
//! [`ExecRecord`]s for trace-driven timing simulation.
//!
//! The crate is freestanding — workloads are written directly against it —
//! and every downstream crate (the cycle-level core, the Phelps machinery,
//! the Branch Runahead baseline) consumes its types.
//!
//! ## Quick tour
//!
//! ```
//! use phelps_isa::{Asm, Cpu, Reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Assemble: a0 = popcount-ish loop counting down from 16.
//! let mut a = Asm::new(0x1000);
//! a.li(Reg::A0, 0);
//! a.li(Reg::A1, 16);
//! a.label("loop");
//! a.addi(Reg::A0, Reg::A0, 2);
//! a.addi(Reg::A1, Reg::A1, -1);
//! a.bne(Reg::A1, Reg::ZERO, "loop");
//! a.halt();
//! let prog = a.assemble()?;
//!
//! // Execute functionally.
//! let mut cpu = Cpu::new(prog);
//! while !cpu.is_halted() {
//!     let record = cpu.step()?; // one ExecRecord per dynamic instruction
//!     let _ = record.next_pc;
//! }
//! assert_eq!(cpu.reg(Reg::A0), 32);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod asm;
mod emu;
mod encode;
mod inst;
mod mem;
mod parse;
mod program;
mod reg;

pub use asm::{Asm, AsmError};
pub use emu::{Cpu, CpuState, EmuError, ExecRecord};
pub use encode::{decode, encode, DecodeError, EncodeError};
pub use inst::{AluOp, BranchCond, Inst, MemWidth, SrcRegs};
pub use mem::{Memory, PAGE_BYTES};
pub use parse::{parse_asm, ParseError};
pub use program::{Program, INST_BYTES};
pub use reg::{Reg, NUM_REGS};
