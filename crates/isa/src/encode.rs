//! Binary instruction encoding.
//!
//! Guest instructions encode to fixed 32-bit words in a RISC-V-flavored
//! layout (7-bit opcode in bits 6:0, register specifiers in the standard
//! rd/rs1/rs2 positions). Because [`Inst`] stores control-flow targets as
//! absolute PCs, [`encode`] takes the instruction's own PC and emits a
//! PC-relative offset; [`decode`] reverses it. The round-trip is exact for
//! every encodable instruction — property-tested in the crate's test
//! suite — and the paper-relevant consequence is honored: fixed-length
//! words mean helper-thread storage (HTC rows) can be costed per
//! instruction, as Table II does.
//!
//! Range limits (offsets/immediates that fit the field widths) are
//! enforced by [`encode`] returning [`EncodeError`] rather than silently
//! truncating. The `Li` pseudo-instruction carries up to 20 signed bits
//! (`lui`-class material); larger constants must be composed.

use crate::{AluOp, BranchCond, Inst, MemWidth, Reg};
use std::error::Error;
use std::fmt;

/// Error returned by [`encode`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EncodeError {
    /// A branch/jump target is out of PC-relative range for the field.
    OffsetOutOfRange {
        /// The offending byte offset.
        offset: i64,
    },
    /// An immediate exceeds its field width.
    ImmOutOfRange {
        /// The offending immediate.
        imm: i64,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::OffsetOutOfRange { offset } => {
                write!(f, "branch offset {offset} out of range")
            }
            EncodeError::ImmOutOfRange { imm } => write!(f, "immediate {imm} out of range"),
        }
    }
}

impl Error for EncodeError {}

/// Error returned by [`decode`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// The unrecognizable word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode word {:#010x}", self.word)
    }
}

impl Error for DecodeError {}

// Opcodes (bits 6:0).
const OP_ALU: u32 = 0x33;
const OP_ALUI: u32 = 0x13;
/// Immediate ALU ops whose funct has bit 3 set (Or/And...): second opcode,
/// freeing every operand bit position.
const OP_ALUI_HI: u32 = 0x1b;
const OP_LI: u32 = 0x37; // lui-class: 20-bit upper + sign trick below
const OP_LOAD: u32 = 0x03;
const OP_STORE: u32 = 0x23;
const OP_BRANCH: u32 = 0x63;
const OP_JAL: u32 = 0x6f;
const OP_JALR: u32 = 0x67;
const OP_HALT: u32 = 0x7f;

fn funct_of_alu(op: AluOp) -> u32 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::Sll => 2,
        AluOp::Slt => 3,
        AluOp::Sltu => 4,
        AluOp::Xor => 5,
        AluOp::Srl => 6,
        AluOp::Sra => 7,
        AluOp::Or => 8,
        AluOp::And => 9,
        AluOp::Mul => 10,
        AluOp::Div => 11,
        AluOp::Divu => 12,
        AluOp::Rem => 13,
        AluOp::Remu => 14,
        AluOp::Addw => 15,
        AluOp::Subw => 16,
        AluOp::Mulw => 17,
        AluOp::Sllw => 18,
    }
}

fn alu_of_funct(f: u32) -> Option<AluOp> {
    Some(match f {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::Sll,
        3 => AluOp::Slt,
        4 => AluOp::Sltu,
        5 => AluOp::Xor,
        6 => AluOp::Srl,
        7 => AluOp::Sra,
        8 => AluOp::Or,
        9 => AluOp::And,
        10 => AluOp::Mul,
        11 => AluOp::Div,
        12 => AluOp::Divu,
        13 => AluOp::Rem,
        14 => AluOp::Remu,
        15 => AluOp::Addw,
        16 => AluOp::Subw,
        17 => AluOp::Mulw,
        18 => AluOp::Sllw,
        _ => return None,
    })
}

fn funct_of_cond(c: BranchCond) -> u32 {
    match c {
        BranchCond::Eq => 0,
        BranchCond::Ne => 1,
        BranchCond::Lt => 2,
        BranchCond::Ge => 3,
        BranchCond::Ltu => 4,
        BranchCond::Geu => 5,
    }
}

fn cond_of_funct(f: u32) -> Option<BranchCond> {
    Some(match f {
        0 => BranchCond::Eq,
        1 => BranchCond::Ne,
        2 => BranchCond::Lt,
        3 => BranchCond::Ge,
        4 => BranchCond::Ltu,
        5 => BranchCond::Geu,
        _ => return None,
    })
}

fn funct_of_mem(w: MemWidth, signed: bool) -> u32 {
    let base = match w {
        MemWidth::B => 0,
        MemWidth::H => 1,
        MemWidth::W => 2,
        MemWidth::D => 3,
    };
    base | ((!signed as u32) << 2)
}

fn mem_of_funct(f: u32) -> Option<(MemWidth, bool)> {
    let w = match f & 3 {
        0 => MemWidth::B,
        1 => MemWidth::H,
        2 => MemWidth::W,
        _ => MemWidth::D,
    };
    Some((w, (f >> 2) & 1 == 0))
}

fn fits_signed(v: i64, bits: u32) -> bool {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    (min..=max).contains(&v)
}

fn rd(word: u32) -> Option<Reg> {
    Reg::new(((word >> 7) & 0x1f) as u8)
}

fn rs1(word: u32) -> Option<Reg> {
    Reg::new(((word >> 15) & 0x1f) as u8)
}

fn rs2(word: u32) -> Option<Reg> {
    Reg::new(((word >> 20) & 0x1f) as u8)
}

/// Encodes `inst`, located at `pc`, into a 32-bit word.
///
/// # Errors
///
/// [`EncodeError::OffsetOutOfRange`] when a PC-relative target does not
/// fit its field (±2^12 bytes for branches, ±2^20 halfwords for `jal`);
/// [`EncodeError::ImmOutOfRange`] when an immediate exceeds 12 bits
/// (loads/stores/ALU) or 20 bits (`li`).
pub fn encode(inst: &Inst, pc: u64) -> Result<u32, EncodeError> {
    Ok(match *inst {
        Inst::Alu { op, rd, rs1, rs2 } => {
            OP_ALU
                | ((rd.index() as u32) << 7)
                | ((funct_of_alu(op) & 0x7) << 12)
                | ((rs1.index() as u32) << 15)
                | ((rs2.index() as u32) << 20)
                // funct bits 3.. spill into bits 25..31.
                | ((funct_of_alu(op) >> 3) << 25)
        }
        Inst::AluImm { op, rd, rs1, imm } => {
            if !fits_signed(imm as i64, 12) {
                return Err(EncodeError::ImmOutOfRange { imm: imm as i64 });
            }
            // funct bit 3 selects between the two immediate opcodes; the
            // low 3 funct bits sit at 12..14 and the immediate at 20..31.
            let opcode = if funct_of_alu(op) & 0x8 != 0 {
                OP_ALUI_HI
            } else {
                OP_ALUI
            };
            opcode
                | ((rd.index() as u32) << 7)
                | ((funct_of_alu(op) & 0x7) << 12)
                | ((rs1.index() as u32) << 15)
                | (((imm as u32) & 0xfff) << 20)
        }
        Inst::Li { rd, imm } => {
            if !fits_signed(imm, 20) {
                return Err(EncodeError::ImmOutOfRange { imm });
            }
            OP_LI | ((rd.index() as u32) << 7) | (((imm as u32) & 0xf_ffff) << 12)
        }
        Inst::Load {
            width,
            signed,
            rd,
            base,
            offset,
        } => {
            if !fits_signed(offset as i64, 12) {
                return Err(EncodeError::ImmOutOfRange { imm: offset as i64 });
            }
            OP_LOAD
                | ((rd.index() as u32) << 7)
                | (funct_of_mem(width, signed) << 12)
                | ((base.index() as u32) << 15)
                | (((offset as u32) & 0xfff) << 20)
        }
        Inst::Store {
            width,
            base,
            src,
            offset,
        } => {
            if !fits_signed(offset as i64, 12) {
                return Err(EncodeError::ImmOutOfRange { imm: offset as i64 });
            }
            // Store offset split: low 5 bits in rd slot, high 7 in 25..31.
            let off = (offset as u32) & 0xfff;
            OP_STORE
                | ((off & 0x1f) << 7)
                | (funct_of_mem(width, true) << 12)
                | ((base.index() as u32) << 15)
                | ((src.index() as u32) << 20)
                | (((off >> 5) & 0x7f) << 25)
        }
        Inst::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            // ±2048 halfwords of PC-relative range: 12 offset bits split
            // across the rd slot (low 5) and bits 25..31 (high 7), exactly
            // like the store immediate.
            let offset = target as i64 - pc as i64;
            if offset % 2 != 0 || !fits_signed(offset / 2, 12) {
                return Err(EncodeError::OffsetOutOfRange { offset });
            }
            let offset_field = ((offset / 2) as u32) & 0xfff;
            OP_BRANCH
                | ((offset_field & 0x1f) << 7)
                | (funct_of_cond(cond) << 12)
                | ((rs1.index() as u32) << 15)
                | ((rs2.index() as u32) << 20)
                | (((offset_field >> 5) & 0x7f) << 25)
        }
        Inst::Jal { rd, target } => {
            let offset = target as i64 - pc as i64;
            if offset % 2 != 0 || !fits_signed(offset / 2, 20) {
                return Err(EncodeError::OffsetOutOfRange { offset });
            }
            OP_JAL | ((rd.index() as u32) << 7) | ((((offset / 2) as u32) & 0xf_ffff) << 12)
        }
        Inst::Jalr { rd, base, offset } => {
            if !fits_signed(offset as i64, 12) {
                return Err(EncodeError::ImmOutOfRange { imm: offset as i64 });
            }
            OP_JALR
                | ((rd.index() as u32) << 7)
                | ((base.index() as u32) << 15)
                | (((offset as u32) & 0xfff) << 20)
        }
        Inst::Halt => OP_HALT,
    })
}

fn sext(v: u32, bits: u32) -> i64 {
    let shift = 64 - bits;
    ((v as i64) << shift) >> shift
}

/// Decodes a 32-bit word located at `pc` back into an [`Inst`].
///
/// # Errors
///
/// [`DecodeError`] when the opcode or a function field is unrecognized.
pub fn decode(word: u32, pc: u64) -> Result<Inst, DecodeError> {
    let err = DecodeError { word };
    let opcode = word & 0x7f;
    Ok(match opcode {
        OP_ALU => {
            let funct = ((word >> 12) & 0x7) | (((word >> 25) & 0x7f) << 3);
            Inst::Alu {
                op: alu_of_funct(funct).ok_or(err)?,
                rd: rd(word).ok_or(err)?,
                rs1: rs1(word).ok_or(err)?,
                rs2: rs2(word).ok_or(err)?,
            }
        }
        OP_ALUI | OP_ALUI_HI => {
            let hi = (opcode == OP_ALUI_HI) as u32;
            let funct = ((word >> 12) & 0x7) | (hi << 3);
            Inst::AluImm {
                op: alu_of_funct(funct).ok_or(err)?,
                rd: rd(word).ok_or(err)?,
                rs1: rs1(word).ok_or(err)?,
                imm: sext((word >> 20) & 0xfff, 12) as i32,
            }
        }
        OP_LI => Inst::Li {
            rd: rd(word).ok_or(err)?,
            imm: sext((word >> 12) & 0xf_ffff, 20),
        },
        OP_LOAD => {
            let (width, signed) = mem_of_funct((word >> 12) & 0x7).ok_or(err)?;
            Inst::Load {
                width,
                signed,
                rd: rd(word).ok_or(err)?,
                base: rs1(word).ok_or(err)?,
                offset: sext((word >> 20) & 0xfff, 12) as i32,
            }
        }
        OP_STORE => {
            let (width, _) = mem_of_funct((word >> 12) & 0x7).ok_or(err)?;
            let off = ((word >> 7) & 0x1f) | (((word >> 25) & 0x7f) << 5);
            Inst::Store {
                width,
                base: rs1(word).ok_or(err)?,
                src: rs2(word).ok_or(err)?,
                offset: sext(off, 12) as i32,
            }
        }
        OP_BRANCH => {
            let off_field = ((word >> 7) & 0x1f) | (((word >> 25) & 0x7f) << 5);
            let offset = sext(off_field, 12) * 2;
            Inst::Branch {
                cond: cond_of_funct((word >> 12) & 0x7).ok_or(err)?,
                rs1: rs1(word).ok_or(err)?,
                rs2: rs2(word).ok_or(err)?,
                target: (pc as i64 + offset) as u64,
            }
        }
        OP_JAL => {
            let offset = sext((word >> 12) & 0xf_ffff, 20) * 2;
            Inst::Jal {
                rd: rd(word).ok_or(err)?,
                target: (pc as i64 + offset) as u64,
            }
        }
        OP_JALR => Inst::Jalr {
            rd: rd(word).ok_or(err)?,
            base: rs1(word).ok_or(err)?,
            offset: sext((word >> 20) & 0xfff, 12) as i32,
        },
        OP_HALT => Inst::Halt,
        _ => return Err(err),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(inst: Inst, pc: u64) {
        let word = encode(&inst, pc).expect("encodes");
        let back = decode(word, pc).expect("decodes");
        assert_eq!(inst, back, "word {word:#010x}");
    }

    #[test]
    fn alu_roundtrips_every_op() {
        for f in 0..32 {
            if let Some(op) = alu_of_funct(f) {
                roundtrip(
                    Inst::Alu {
                        op,
                        rd: Reg::A0,
                        rs1: Reg::T3,
                        rs2: Reg::S11,
                    },
                    0x1000,
                );
            }
        }
    }

    #[test]
    fn alui_roundtrips_extremes() {
        for imm in [-2048, -1, 0, 1, 2047] {
            roundtrip(
                Inst::AluImm {
                    op: AluOp::Add,
                    rd: Reg::T0,
                    rs1: Reg::T1,
                    imm,
                },
                0,
            );
        }
        roundtrip(
            Inst::AluImm {
                op: AluOp::Or,
                rd: Reg::T0,
                rs1: Reg::T1,
                imm: 255,
            },
            0,
        );
    }

    #[test]
    fn alui_rejects_oversized_immediates() {
        let e = encode(
            &Inst::AluImm {
                op: AluOp::Add,
                rd: Reg::T0,
                rs1: Reg::T1,
                imm: 4096,
            },
            0,
        );
        assert_eq!(e, Err(EncodeError::ImmOutOfRange { imm: 4096 }));
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        for (w, s) in [
            (MemWidth::B, true),
            (MemWidth::B, false),
            (MemWidth::H, true),
            (MemWidth::W, false),
            (MemWidth::D, true),
        ] {
            roundtrip(
                Inst::Load {
                    width: w,
                    signed: s,
                    rd: Reg::A5,
                    base: Reg::SP,
                    offset: -8,
                },
                0x40,
            );
        }
        roundtrip(
            Inst::Store {
                width: MemWidth::D,
                base: Reg::S0,
                src: Reg::A1,
                offset: 2047,
            },
            0x40,
        );
        roundtrip(
            Inst::Store {
                width: MemWidth::W,
                base: Reg::S0,
                src: Reg::A1,
                offset: -2048,
            },
            0x40,
        );
    }

    #[test]
    fn branches_are_pc_relative() {
        for target in [0x1000u64, 0x800, 0x1ffe, 0x1004] {
            roundtrip(
                Inst::Branch {
                    cond: BranchCond::Ltu,
                    rs1: Reg::A0,
                    rs2: Reg::A1,
                    target,
                },
                0x1000,
            );
        }
        // Same instruction encodes differently at different PCs.
        let b = Inst::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::A0,
            rs2: Reg::A1,
            target: 0x1900,
        };
        assert_ne!(encode(&b, 0x1000).unwrap(), encode(&b, 0x1400).unwrap());
    }

    #[test]
    fn branch_range_enforced() {
        let b = Inst::Branch {
            cond: BranchCond::Eq,
            rs1: Reg::A0,
            rs2: Reg::A1,
            target: 0x10_0000,
        };
        assert!(matches!(
            encode(&b, 0),
            Err(EncodeError::OffsetOutOfRange { .. })
        ));
    }

    #[test]
    fn jal_and_jalr_roundtrip() {
        roundtrip(
            Inst::Jal {
                rd: Reg::RA,
                target: 0x4_0000,
            },
            0x1000,
        );
        roundtrip(
            Inst::Jalr {
                rd: Reg::ZERO,
                base: Reg::RA,
                offset: 0,
            },
            0,
        );
    }

    #[test]
    fn li_range() {
        roundtrip(
            Inst::Li {
                rd: Reg::A0,
                imm: 524_287,
            },
            0,
        );
        roundtrip(
            Inst::Li {
                rd: Reg::A0,
                imm: -524_288,
            },
            0,
        );
        assert!(matches!(
            encode(
                &Inst::Li {
                    rd: Reg::A0,
                    imm: 1 << 20
                },
                0
            ),
            Err(EncodeError::ImmOutOfRange { .. })
        ));
    }

    #[test]
    fn halt_roundtrips() {
        roundtrip(Inst::Halt, 0);
    }

    #[test]
    fn garbage_words_rejected() {
        assert!(decode(0x0000_0000, 0).is_err());
        assert!(decode(!0x7f | 0x5a, 0).is_err());
    }
}
