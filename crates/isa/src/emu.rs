//! Functional emulator.
//!
//! [`Cpu`] executes a [`Program`] one instruction at a time, producing an
//! [`ExecRecord`] per step. The record carries everything a trace-driven
//! timing model needs: the instruction, its control-flow resolution, the
//! value written, and the memory address/data touched.

use crate::{Inst, Memory, Program, Reg, INST_BYTES, NUM_REGS};
use std::error::Error;
use std::fmt;

/// Error raised by [`Cpu::step`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EmuError {
    /// The PC left the program's instruction range.
    PcOutOfRange {
        /// The offending PC.
        pc: u64,
    },
    /// `step` was called after the program halted.
    Halted,
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::PcOutOfRange { pc } => write!(f, "pc {pc:#x} outside program"),
            EmuError::Halted => f.write_str("program has halted"),
        }
    }
}

impl Error for EmuError {}

/// The result of executing one dynamic instruction.
///
/// This is the unit of the dynamic trace consumed by the timing model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExecRecord {
    /// PC of the instruction.
    pub pc: u64,
    /// The (static) instruction.
    pub inst: Inst,
    /// PC of the next instruction on the correct path.
    pub next_pc: u64,
    /// For conditional branches: whether the branch was taken.
    pub taken: bool,
    /// Value written to the destination register (0 if none).
    pub rd_value: u64,
    /// Effective address for loads/stores (0 otherwise).
    pub mem_addr: u64,
    /// Data written by stores (0 otherwise).
    pub store_data: u64,
}

impl ExecRecord {
    /// Whether the instruction transfers control away from `pc + 4`.
    pub fn redirects(&self) -> bool {
        self.next_pc != self.pc.wrapping_add(INST_BYTES)
    }
}

/// A snapshot of everything architectural about a [`Cpu`], *excluding* the
/// (immutable) program text: PC, register file, sparse memory, retired
/// count, and the halted flag.
///
/// Restoring a state into a `Cpu` running the same program puts it in a
/// position indistinguishable from having executed the first
/// `retired` instructions — the substrate for checkpoint/restore.
#[derive(Clone, Debug)]
pub struct CpuState {
    /// PC at the snapshot point.
    pub pc: u64,
    /// Architectural register file.
    pub regs: [u64; NUM_REGS],
    /// Guest memory contents.
    pub mem: Memory,
    /// Whether the program had halted.
    pub halted: bool,
    /// Instructions retired when the snapshot was taken.
    pub retired: u64,
}

/// Functional CPU: architectural registers, memory, and a PC.
///
/// # Examples
///
/// ```
/// use phelps_isa::{Asm, Cpu, Reg};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut a = Asm::new(0);
/// a.li(Reg::A0, 6);
/// a.li(Reg::A1, 7);
/// a.mul(Reg::A0, Reg::A0, Reg::A1);
/// a.halt();
/// let prog = a.assemble()?;
///
/// let mut cpu = Cpu::new(prog);
/// cpu.run(100)?;
/// assert_eq!(cpu.reg(Reg::A0), 42);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Cpu {
    program: Program,
    pc: u64,
    regs: [u64; NUM_REGS],
    /// Guest data memory. Public so harnesses can initialize data structures
    /// before running and inspect them after.
    pub mem: Memory,
    halted: bool,
    retired: u64,
}

impl Cpu {
    /// Creates a CPU at the program's base PC with zeroed registers and
    /// empty memory.
    pub fn new(program: Program) -> Cpu {
        let pc = program.base();
        Cpu {
            program,
            pc,
            regs: [0; NUM_REGS],
            mem: Memory::new(),
            halted: false,
            retired: 0,
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Current PC.
    pub fn pc(&self) -> u64 {
        self.pc
    }

    /// Redirects execution to `pc` (e.g. to start at a label).
    pub fn set_pc(&mut self, pc: u64) {
        self.pc = pc;
    }

    /// Reads an architectural register.
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes an architectural register (writes to `x0` are discarded).
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// Whether the program has executed `halt`.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Captures the full architectural state (everything except the
    /// program text, which is immutable).
    pub fn capture_state(&self) -> CpuState {
        CpuState {
            pc: self.pc,
            regs: self.regs,
            mem: self.mem.clone(),
            halted: self.halted,
            retired: self.retired,
        }
    }

    /// Overwrites this CPU's architectural state with a snapshot.
    ///
    /// The caller is responsible for ensuring the snapshot was captured
    /// from a CPU running the same program; nothing here can check that.
    pub fn restore_state(&mut self, state: &CpuState) {
        self.pc = state.pc;
        self.regs = state.regs;
        self.mem = state.mem.clone();
        self.halted = state.halted;
        self.retired = state.retired;
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// [`EmuError::Halted`] if the program already halted, and
    /// [`EmuError::PcOutOfRange`] if the PC wandered outside the program
    /// (e.g. an indirect jump through a corrupted register).
    pub fn step(&mut self) -> Result<ExecRecord, EmuError> {
        if self.halted {
            return Err(EmuError::Halted);
        }
        let pc = self.pc;
        let inst = *self
            .program
            .fetch(pc)
            .ok_or(EmuError::PcOutOfRange { pc })?;

        let mut rec = ExecRecord {
            pc,
            inst,
            next_pc: pc.wrapping_add(INST_BYTES),
            taken: false,
            rd_value: 0,
            mem_addr: 0,
            store_data: 0,
        };

        match inst {
            Inst::Alu { op, rd, rs1, rs2 } => {
                let v = op.eval(self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
                rec.rd_value = v;
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                let v = op.eval(self.reg(rs1), imm as i64 as u64);
                self.set_reg(rd, v);
                rec.rd_value = v;
            }
            Inst::Li { rd, imm } => {
                self.set_reg(rd, imm as u64);
                rec.rd_value = imm as u64;
            }
            Inst::Load {
                width,
                signed,
                rd,
                base,
                offset,
            } => {
                let addr = self.reg(base).wrapping_add(offset as i64 as u64);
                let v = self.mem.read(addr, width, signed);
                self.set_reg(rd, v);
                rec.mem_addr = addr;
                rec.rd_value = v;
            }
            Inst::Store {
                width,
                base,
                src,
                offset,
            } => {
                let addr = self.reg(base).wrapping_add(offset as i64 as u64);
                let data = self.reg(src);
                self.mem.write(addr, width, data);
                rec.mem_addr = addr;
                rec.store_data = data;
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let taken = cond.eval(self.reg(rs1), self.reg(rs2));
                rec.taken = taken;
                if taken {
                    rec.next_pc = target;
                }
            }
            Inst::Jal { rd, target } => {
                let link = pc.wrapping_add(INST_BYTES);
                self.set_reg(rd, link);
                rec.rd_value = link;
                rec.next_pc = target;
            }
            Inst::Jalr { rd, base, offset } => {
                let target = self.reg(base).wrapping_add(offset as i64 as u64) & !1;
                let link = pc.wrapping_add(INST_BYTES);
                self.set_reg(rd, link);
                rec.rd_value = link;
                rec.next_pc = target;
            }
            Inst::Halt => {
                self.halted = true;
                rec.next_pc = pc;
            }
        }

        self.pc = rec.next_pc;
        self.retired += 1;
        Ok(rec)
    }

    /// Runs until `halt` or until `max_insts` instructions retire, returning
    /// the number of instructions retired by this call.
    ///
    /// # Errors
    ///
    /// Propagates [`EmuError::PcOutOfRange`]. Reaching `halt` is success.
    pub fn run(&mut self, max_insts: u64) -> Result<u64, EmuError> {
        let mut n = 0;
        while !self.halted && n < max_insts {
            self.step()?;
            n += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Asm;

    fn run_prog(build: impl FnOnce(&mut Asm)) -> Cpu {
        let mut a = Asm::new(0x1000);
        build(&mut a);
        let mut cpu = Cpu::new(a.assemble().unwrap());
        cpu.run(1_000_000).unwrap();
        assert!(cpu.is_halted(), "program did not halt");
        cpu
    }

    #[test]
    fn arithmetic_loop_sums() {
        // sum 1..=10
        let cpu = run_prog(|a| {
            a.li(Reg::A0, 0); // sum
            a.li(Reg::A1, 10); // i
            a.label("loop");
            a.add(Reg::A0, Reg::A0, Reg::A1);
            a.addi(Reg::A1, Reg::A1, -1);
            a.bne(Reg::A1, Reg::ZERO, "loop");
            a.halt();
        });
        assert_eq!(cpu.reg(Reg::A0), 55);
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let cpu = run_prog(|a| {
            a.li(Reg::A0, 0x8000);
            a.li(Reg::A1, -2); // 0xfff...fe
            a.sw(Reg::A1, Reg::A0, 0);
            a.lw(Reg::A2, Reg::A0, 0); // sign-extended
            a.lwu(Reg::A3, Reg::A0, 0); // zero-extended
            a.halt();
        });
        assert_eq!(cpu.reg(Reg::A2), (-2i64) as u64);
        assert_eq!(cpu.reg(Reg::A3), 0xffff_fffe);
    }

    #[test]
    fn call_and_return() {
        let cpu = run_prog(|a| {
            a.li(Reg::A0, 5);
            a.call("double");
            a.call("double");
            a.halt();
            a.label("double");
            a.add(Reg::A0, Reg::A0, Reg::A0);
            a.ret();
        });
        assert_eq!(cpu.reg(Reg::A0), 20);
    }

    #[test]
    fn branch_records_taken_and_target() {
        let mut a = Asm::new(0);
        a.li(Reg::A0, 1);
        a.bne(Reg::A0, Reg::ZERO, "t");
        a.halt();
        a.label("t");
        a.halt();
        let mut cpu = Cpu::new(a.assemble().unwrap());
        cpu.step().unwrap();
        let rec = cpu.step().unwrap();
        assert!(rec.taken);
        assert!(rec.redirects());
        assert_eq!(rec.next_pc, 12);
    }

    #[test]
    fn not_taken_branch_falls_through() {
        let mut a = Asm::new(0);
        a.li(Reg::A0, 0);
        a.bne(Reg::A0, Reg::ZERO, "t");
        a.halt();
        a.label("t");
        a.halt();
        let mut cpu = Cpu::new(a.assemble().unwrap());
        cpu.step().unwrap();
        let rec = cpu.step().unwrap();
        assert!(!rec.taken);
        assert!(!rec.redirects());
        assert_eq!(rec.next_pc, 8);
    }

    #[test]
    fn halt_stops_and_further_steps_error() {
        let mut a = Asm::new(0);
        a.halt();
        let mut cpu = Cpu::new(a.assemble().unwrap());
        let rec = cpu.step().unwrap();
        assert_eq!(rec.inst, Inst::Halt);
        assert!(cpu.is_halted());
        assert_eq!(cpu.step().unwrap_err(), EmuError::Halted);
    }

    #[test]
    fn pc_out_of_range_detected() {
        let mut a = Asm::new(0);
        a.li(Reg::A0, 0x9999);
        a.jalr(Reg::ZERO, Reg::A0, 0);
        a.halt();
        let mut cpu = Cpu::new(a.assemble().unwrap());
        cpu.step().unwrap();
        cpu.step().unwrap();
        assert_eq!(
            cpu.step().unwrap_err(),
            EmuError::PcOutOfRange { pc: 0x9998 } // jalr clears bit 0
        );
    }

    #[test]
    fn x0_is_never_written() {
        let cpu = run_prog(|a| {
            a.li(Reg::ZERO, 42);
            a.addi(Reg::ZERO, Reg::ZERO, 1);
            a.halt();
        });
        assert_eq!(cpu.reg(Reg::ZERO), 0);
    }

    #[test]
    fn store_record_carries_addr_and_data() {
        let mut a = Asm::new(0);
        a.li(Reg::A0, 0x4000);
        a.li(Reg::A1, 77);
        a.sd(Reg::A1, Reg::A0, 16);
        a.halt();
        let mut cpu = Cpu::new(a.assemble().unwrap());
        cpu.step().unwrap();
        cpu.step().unwrap();
        let rec = cpu.step().unwrap();
        assert_eq!(rec.mem_addr, 0x4010);
        assert_eq!(rec.store_data, 77);
    }

    #[test]
    fn capture_restore_resumes_identically() {
        // sum 1..=20, snapshot mid-loop, and check the restored CPU
        // retires the exact same record stream as the original.
        let mut a = Asm::new(0x1000);
        a.li(Reg::A0, 0);
        a.li(Reg::A1, 20);
        a.li(Reg::A2, 0x8000);
        a.label("loop");
        a.add(Reg::A0, Reg::A0, Reg::A1);
        a.sd(Reg::A0, Reg::A2, 0);
        a.addi(Reg::A1, Reg::A1, -1);
        a.bne(Reg::A1, Reg::ZERO, "loop");
        a.halt();
        let prog = a.assemble().unwrap();

        let mut cpu = Cpu::new(prog.clone());
        cpu.run(37).unwrap();
        let snap = cpu.capture_state();
        assert_eq!(snap.retired, 37);

        let mut resumed = Cpu::new(prog);
        resumed.restore_state(&snap);
        assert_eq!(resumed.pc(), cpu.pc());
        loop {
            let a = cpu.step();
            let b = resumed.step();
            assert_eq!(a, b);
            if a.is_err() || cpu.is_halted() {
                break;
            }
        }
        assert_eq!(resumed.reg(Reg::A0), 210);
        assert_eq!(resumed.mem.first_difference(&cpu.mem), None);
        assert_eq!(resumed.retired(), cpu.retired());
    }

    #[test]
    fn run_respects_max_insts() {
        let mut a = Asm::new(0);
        a.label("spin");
        a.j("spin");
        let mut cpu = Cpu::new(a.assemble().unwrap());
        let n = cpu.run(100).unwrap();
        assert_eq!(n, 100);
        assert!(!cpu.is_halted());
    }
}
