//! Assembled guest programs.

use crate::Inst;
use std::collections::HashMap;
use std::fmt;

/// Size of every guest instruction in bytes (fixed-length encoding).
pub const INST_BYTES: u64 = 4;

/// An assembled guest program: a contiguous run of instructions at a base
/// PC, plus the label map produced by the assembler.
///
/// Produced by [`Asm::assemble`](crate::Asm::assemble).
#[derive(Clone, Debug)]
pub struct Program {
    base: u64,
    insts: Vec<Inst>,
    labels: HashMap<String, u64>,
}

impl Program {
    pub(crate) fn new(base: u64, insts: Vec<Inst>, labels: HashMap<String, u64>) -> Program {
        Program {
            base,
            insts,
            labels,
        }
    }

    /// The PC of the first instruction.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// One-past-the-end PC.
    pub fn end(&self) -> u64 {
        self.base + INST_BYTES * self.insts.len() as u64
    }

    /// Fetches the instruction at `pc`, or `None` if `pc` is outside the
    /// program or misaligned.
    pub fn fetch(&self, pc: u64) -> Option<&Inst> {
        if pc < self.base || !(pc - self.base).is_multiple_of(INST_BYTES) {
            return None;
        }
        self.insts.get(((pc - self.base) / INST_BYTES) as usize)
    }

    /// The PC a label resolved to, if the label exists.
    pub fn label(&self, name: &str) -> Option<u64> {
        self.labels.get(name).copied()
    }

    /// Iterator over `(pc, inst)` pairs in program order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Inst)> {
        self.insts
            .iter()
            .enumerate()
            .map(move |(i, inst)| (self.base + INST_BYTES * i as u64, inst))
    }
}

impl fmt::Display for Program {
    /// A full disassembly listing, one instruction per line with its PC.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (pc, inst) in self.iter() {
            writeln!(f, "{pc:#08x}: {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Asm, Reg};

    fn tiny() -> Program {
        let mut a = Asm::new(0x1000);
        a.li(Reg::A0, 7);
        a.label("mid");
        a.addi(Reg::A0, Reg::A0, -1);
        a.bne(Reg::A0, Reg::ZERO, "mid");
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn fetch_by_pc() {
        let p = tiny();
        assert_eq!(p.base(), 0x1000);
        assert_eq!(p.len(), 4);
        assert_eq!(p.end(), 0x1010);
        assert!(p.fetch(0x1000).is_some());
        assert!(p.fetch(0x100c).is_some());
        assert!(p.fetch(0x1010).is_none(), "end is exclusive");
        assert!(p.fetch(0x0ffc).is_none(), "below base");
        assert!(p.fetch(0x1002).is_none(), "misaligned");
    }

    #[test]
    fn labels_resolve() {
        let p = tiny();
        assert_eq!(p.label("mid"), Some(0x1004));
        assert_eq!(p.label("nope"), None);
    }

    #[test]
    fn iter_walks_in_order() {
        let p = tiny();
        let pcs: Vec<u64> = p.iter().map(|(pc, _)| pc).collect();
        assert_eq!(pcs, vec![0x1000, 0x1004, 0x1008, 0x100c]);
    }

    #[test]
    fn display_lists_every_instruction() {
        let p = tiny();
        let listing = p.to_string();
        assert_eq!(listing.lines().count(), 4);
        assert!(listing.contains("halt"));
    }
}
