//! Label-based assembler for guest programs.
//!
//! [`Asm`] is a builder: emit instructions through mnemonic methods, mark
//! positions with [`Asm::label`], and reference labels by name from branches
//! and jumps. [`Asm::assemble`] resolves every reference to an absolute PC
//! and returns the finished [`Program`].
//!
//! # Examples
//!
//! A count-down loop:
//!
//! ```
//! use phelps_isa::{Asm, Reg};
//!
//! # fn main() -> Result<(), phelps_isa::AsmError> {
//! let mut a = Asm::new(0x1000);
//! a.li(Reg::A0, 10);
//! a.label("loop");
//! a.addi(Reg::A0, Reg::A0, -1);
//! a.bne(Reg::A0, Reg::ZERO, "loop");
//! a.halt();
//! let prog = a.assemble()?;
//! assert_eq!(prog.label("loop"), Some(0x1004));
//! # Ok(())
//! # }
//! ```

use crate::{AluOp, BranchCond, Inst, MemWidth, Program, Reg, INST_BYTES};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error produced by [`Asm::assemble`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AsmError {
    /// A branch or jump referenced a label that was never defined.
    UndefinedLabel(String),
    /// The same label was defined twice.
    DuplicateLabel(String),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl Error for AsmError {}

enum Slot {
    Done(Inst),
    BranchTo(BranchCond, Reg, Reg, String),
    JalTo(Reg, String),
}

/// Builder that assembles guest programs from mnemonic calls and labels.
///
/// See the module-level documentation for an example.
pub struct Asm {
    base: u64,
    slots: Vec<Slot>,
    labels: HashMap<String, u64>,
}

impl fmt::Debug for Asm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Asm")
            .field("base", &self.base)
            .field("len", &self.slots.len())
            .field("labels", &self.labels.len())
            .finish()
    }
}

impl Asm {
    /// Creates an assembler whose first instruction will live at `base`.
    pub fn new(base: u64) -> Asm {
        Asm {
            base,
            slots: Vec::new(),
            labels: HashMap::new(),
        }
    }

    /// The PC the next emitted instruction will receive.
    pub fn here(&self) -> u64 {
        self.base + INST_BYTES * self.slots.len() as u64
    }

    /// Defines `name` at the current position.
    ///
    /// # Panics
    ///
    /// Does not panic; duplicate definitions are reported by
    /// [`Asm::assemble`].
    pub fn label(&mut self, name: &str) -> &mut Asm {
        // Record the first definition; a duplicate is detected at assemble
        // time by keeping a shadow count in the map via a sentinel.
        if self.labels.insert(name.to_string(), self.here()).is_some() {
            // Mark duplicates by re-inserting with an impossible PC; the
            // assembler checks parity below.
            self.labels.insert(format!("\u{0}dup:{name}"), 0);
        }
        self
    }

    fn push(&mut self, inst: Inst) -> &mut Asm {
        self.slots.push(Slot::Done(inst));
        self
    }

    // ---- register-register ALU ----

    /// `rd = rs1 + rs2`
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Add, rd, rs1, rs2)
    }
    /// `rd = rs1 - rs2`
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Sub, rd, rs1, rs2)
    }
    /// `rd = rs1 << rs2`
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Sll, rd, rs1, rs2)
    }
    /// `rd = rs1 & rs2`
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::And, rd, rs1, rs2)
    }
    /// `rd = rs1 | rs2`
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Or, rd, rs1, rs2)
    }
    /// `rd = rs1 ^ rs2`
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Xor, rd, rs1, rs2)
    }
    /// `rd = (rs1 < rs2) ? 1 : 0` (signed)
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Slt, rd, rs1, rs2)
    }
    /// `rd = (rs1 < rs2) ? 1 : 0` (unsigned)
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Sltu, rd, rs1, rs2)
    }
    /// `rd = rs1 * rs2`
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Mul, rd, rs1, rs2)
    }
    /// `rd = rs1 / rs2` (signed)
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Div, rd, rs1, rs2)
    }
    /// `rd = rs1 % rs2` (unsigned)
    pub fn remu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.alu(AluOp::Remu, rd, rs1, rs2)
    }

    /// Emits an arbitrary register-register ALU operation.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Asm {
        self.push(Inst::Alu { op, rd, rs1, rs2 })
    }

    // ---- register-immediate ALU ----

    /// `rd = rs1 + imm`
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.alui(AluOp::Add, rd, rs1, imm)
    }
    /// `rd = rs1 << imm`
    pub fn slli(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.alui(AluOp::Sll, rd, rs1, imm)
    }
    /// `rd = rs1 >> imm` (logical)
    pub fn srli(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.alui(AluOp::Srl, rd, rs1, imm)
    }
    /// `rd = rs1 & imm`
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.alui(AluOp::And, rd, rs1, imm)
    }
    /// `rd = rs1 | imm`
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.alui(AluOp::Or, rd, rs1, imm)
    }
    /// `rd = rs1 ^ imm`
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.alui(AluOp::Xor, rd, rs1, imm)
    }
    /// `rd = (rs1 < imm) ? 1 : 0` (signed)
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.alui(AluOp::Slt, rd, rs1, imm)
    }

    /// Emits an arbitrary register-immediate ALU operation.
    pub fn alui(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i32) -> &mut Asm {
        self.push(Inst::AluImm { op, rd, rs1, imm })
    }

    /// `rd = rs1` (pseudo-instruction: `addi rd, rs1, 0`).
    pub fn mv(&mut self, rd: Reg, rs1: Reg) -> &mut Asm {
        self.addi(rd, rs1, 0)
    }

    /// Materializes a 64-bit constant in `rd`.
    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Asm {
        self.push(Inst::Li { rd, imm })
    }

    // ---- memory ----

    /// Load doubleword: `rd = mem64[base + offset]`.
    pub fn ld(&mut self, rd: Reg, base: Reg, offset: i32) -> &mut Asm {
        self.load(MemWidth::D, true, rd, base, offset)
    }
    /// Load word, sign-extended.
    pub fn lw(&mut self, rd: Reg, base: Reg, offset: i32) -> &mut Asm {
        self.load(MemWidth::W, true, rd, base, offset)
    }
    /// Load word, zero-extended.
    pub fn lwu(&mut self, rd: Reg, base: Reg, offset: i32) -> &mut Asm {
        self.load(MemWidth::W, false, rd, base, offset)
    }
    /// Load halfword, sign-extended.
    pub fn lh(&mut self, rd: Reg, base: Reg, offset: i32) -> &mut Asm {
        self.load(MemWidth::H, true, rd, base, offset)
    }
    /// Load byte, sign-extended.
    pub fn lb(&mut self, rd: Reg, base: Reg, offset: i32) -> &mut Asm {
        self.load(MemWidth::B, true, rd, base, offset)
    }
    /// Load byte, zero-extended.
    pub fn lbu(&mut self, rd: Reg, base: Reg, offset: i32) -> &mut Asm {
        self.load(MemWidth::B, false, rd, base, offset)
    }

    /// Emits an arbitrary load.
    pub fn load(
        &mut self,
        width: MemWidth,
        signed: bool,
        rd: Reg,
        base: Reg,
        offset: i32,
    ) -> &mut Asm {
        self.push(Inst::Load {
            width,
            signed,
            rd,
            base,
            offset,
        })
    }

    /// Store doubleword: `mem64[base + offset] = src`.
    pub fn sd(&mut self, src: Reg, base: Reg, offset: i32) -> &mut Asm {
        self.store(MemWidth::D, src, base, offset)
    }
    /// Store word.
    pub fn sw(&mut self, src: Reg, base: Reg, offset: i32) -> &mut Asm {
        self.store(MemWidth::W, src, base, offset)
    }
    /// Store halfword.
    pub fn sh(&mut self, src: Reg, base: Reg, offset: i32) -> &mut Asm {
        self.store(MemWidth::H, src, base, offset)
    }
    /// Store byte.
    pub fn sb(&mut self, src: Reg, base: Reg, offset: i32) -> &mut Asm {
        self.store(MemWidth::B, src, base, offset)
    }

    /// Emits an arbitrary store.
    pub fn store(&mut self, width: MemWidth, src: Reg, base: Reg, offset: i32) -> &mut Asm {
        self.push(Inst::Store {
            width,
            base,
            src,
            offset,
        })
    }

    // ---- control transfer ----

    /// Branch to `label` if `rs1 == rs2`.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Asm {
        self.branch(BranchCond::Eq, rs1, rs2, label)
    }
    /// Branch to `label` if `rs1 != rs2`.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Asm {
        self.branch(BranchCond::Ne, rs1, rs2, label)
    }
    /// Branch to `label` if `rs1 < rs2` (signed).
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Asm {
        self.branch(BranchCond::Lt, rs1, rs2, label)
    }
    /// Branch to `label` if `rs1 >= rs2` (signed).
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Asm {
        self.branch(BranchCond::Ge, rs1, rs2, label)
    }
    /// Branch to `label` if `rs1 < rs2` (unsigned).
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Asm {
        self.branch(BranchCond::Ltu, rs1, rs2, label)
    }
    /// Branch to `label` if `rs1 >= rs2` (unsigned).
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Asm {
        self.branch(BranchCond::Geu, rs1, rs2, label)
    }

    /// Emits an arbitrary conditional branch to a label.
    pub fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, label: &str) -> &mut Asm {
        self.slots
            .push(Slot::BranchTo(cond, rs1, rs2, label.to_string()));
        self
    }

    /// Unconditional jump to `label` (pseudo: `jal zero, label`).
    pub fn j(&mut self, label: &str) -> &mut Asm {
        self.slots.push(Slot::JalTo(Reg::ZERO, label.to_string()));
        self
    }

    /// Call `label`, linking in `ra`.
    pub fn call(&mut self, label: &str) -> &mut Asm {
        self.slots.push(Slot::JalTo(Reg::RA, label.to_string()));
        self
    }

    /// Return through `ra` (pseudo: `jalr zero, 0(ra)`).
    pub fn ret(&mut self) -> &mut Asm {
        self.push(Inst::Jalr {
            rd: Reg::ZERO,
            base: Reg::RA,
            offset: 0,
        })
    }

    /// Indirect jump: `jalr rd, offset(base)`.
    pub fn jalr(&mut self, rd: Reg, base: Reg, offset: i32) -> &mut Asm {
        self.push(Inst::Jalr { rd, base, offset })
    }

    /// No-op (`addi zero, zero, 0`).
    pub fn nop(&mut self) -> &mut Asm {
        self.addi(Reg::ZERO, Reg::ZERO, 0)
    }

    /// Terminates the program.
    pub fn halt(&mut self) -> &mut Asm {
        self.push(Inst::Halt)
    }

    /// Resolves all label references and produces the program.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UndefinedLabel`] if any branch/jump references a
    /// label that was never defined, and [`AsmError::DuplicateLabel`] if a
    /// label was defined more than once.
    pub fn assemble(self) -> Result<Program, AsmError> {
        for key in self.labels.keys() {
            if let Some(dup) = key.strip_prefix("\u{0}dup:") {
                return Err(AsmError::DuplicateLabel(dup.to_string()));
            }
        }
        let resolve = |name: &str| -> Result<u64, AsmError> {
            self.labels
                .get(name)
                .copied()
                .ok_or_else(|| AsmError::UndefinedLabel(name.to_string()))
        };
        let mut insts = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            insts.push(match slot {
                Slot::Done(inst) => *inst,
                Slot::BranchTo(cond, rs1, rs2, label) => Inst::Branch {
                    cond: *cond,
                    rs1: *rs1,
                    rs2: *rs2,
                    target: resolve(label)?,
                },
                Slot::JalTo(rd, label) => Inst::Jal {
                    rd: *rd,
                    target: resolve(label)?,
                },
            });
        }
        let labels = self
            .labels
            .into_iter()
            .filter(|(k, _)| !k.starts_with('\u{0}'))
            .collect();
        Ok(Program::new(self.base, insts, labels))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels() {
        let mut a = Asm::new(0);
        a.label("top");
        a.beq(Reg::A0, Reg::ZERO, "done"); // forward
        a.addi(Reg::A0, Reg::A0, -1);
        a.j("top"); // backward
        a.label("done");
        a.halt();
        let p = a.assemble().unwrap();
        match p.fetch(0).unwrap() {
            Inst::Branch { target, .. } => assert_eq!(*target, p.label("done").unwrap()),
            other => panic!("unexpected {other:?}"),
        }
        match p.fetch(8).unwrap() {
            Inst::Jal { target, .. } => assert_eq!(*target, 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Asm::new(0);
        a.j("nowhere");
        assert_eq!(
            a.assemble().unwrap_err(),
            AsmError::UndefinedLabel("nowhere".to_string())
        );
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut a = Asm::new(0);
        a.label("x");
        a.nop();
        a.label("x");
        a.halt();
        assert_eq!(
            a.assemble().unwrap_err(),
            AsmError::DuplicateLabel("x".to_string())
        );
    }

    #[test]
    fn here_tracks_position() {
        let mut a = Asm::new(0x2000);
        assert_eq!(a.here(), 0x2000);
        a.nop();
        assert_eq!(a.here(), 0x2004);
    }

    #[test]
    fn pseudo_instructions_expand() {
        let mut a = Asm::new(0);
        a.mv(Reg::A0, Reg::A1);
        a.nop();
        a.ret();
        let p = a.assemble().unwrap();
        assert_eq!(
            *p.fetch(0).unwrap(),
            Inst::AluImm {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::A1,
                imm: 0
            }
        );
        assert_eq!(
            *p.fetch(8).unwrap(),
            Inst::Jalr {
                rd: Reg::ZERO,
                base: Reg::RA,
                offset: 0
            }
        );
    }

    #[test]
    fn call_links_ra() {
        let mut a = Asm::new(0);
        a.call("f");
        a.halt();
        a.label("f");
        a.ret();
        let p = a.assemble().unwrap();
        match p.fetch(0).unwrap() {
            Inst::Jal { rd, target } => {
                assert_eq!(*rd, Reg::RA);
                assert_eq!(*target, 8);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
