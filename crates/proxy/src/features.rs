//! Fixed-width feature vectors for the proxy model.
//!
//! A feature vector describes one sweep cell as *anchor telemetry* plus
//! *configuration knobs*:
//!
//! * Slots `0..TELEMETRY_SLOTS` summarize the behaviour of the cell's
//!   **anchor** — the baseline run of the same workload/region — and are
//!   computable two ways: from a finished run's [`SimStats`]
//!   ([`anchor_slots_from_stats`]) or from a *prefix* of its per-epoch
//!   telemetry series ([`anchor_slots_from_epoch_rows`]), so a short
//!   probe run can stand in for a full measurement.
//! * Slots `TELEMETRY_SLOTS..FEATURE_DIM` are parsed out of the cell's
//!   cache key — the `Debug` rendering of its full `RunConfig` (plus the
//!   Branch Runahead variant suffix when present). The key is the same
//!   string that fingerprints the result cache, so features can be
//!   derived for any cached or about-to-run cell without touching the
//!   simulator ([`config_slots`]).
//!
//! Every extractor is total: degenerate inputs (zero cycles, zero
//! retired, missing knobs) produce `0.0`, never `NaN`/`inf`, which the
//! model layer relies on.

use phelps_telemetry::EPOCH_FEATURES;
use phelps_uarch::stats::SimStats;

/// Anchor-telemetry slots; matches
/// [`phelps_telemetry::EPOCH_FEATURES`] column-for-column.
pub const TELEMETRY_SLOTS: usize = EPOCH_FEATURES;

/// Configuration-knob slots parsed from the cache key.
pub const CONFIG_SLOTS: usize = 13;

/// Total feature-vector width.
pub const FEATURE_DIM: usize = TELEMETRY_SLOTS + CONFIG_SLOTS;

/// Feature names, index-aligned with the vectors this module produces
/// (the first [`TELEMETRY_SLOTS`] mirror
/// [`phelps_telemetry::EPOCH_FEATURE_NAMES`] with an `anchor_` prefix).
pub const FEATURE_NAMES: [&str; FEATURE_DIM] = [
    "anchor_ipc",
    "anchor_mpki",
    "anchor_triggers_pki",
    "anchor_pred_hits_pki",
    "anchor_mem_pki",
    "anchor_ifetch_stall_frac",
    "mode_baseline",
    "mode_perfect_bp",
    "mode_partition_only",
    "mode_phelps",
    "phelps_stores",
    "phelps_guarded",
    "br",
    "br_spec",
    "br_wide",
    "log2_region",
    "core_width",
    "queue_columns",
    "store_cache_sets",
];

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

fn per_kilo(num: u64, retired: u64) -> f64 {
    if retired == 0 {
        0.0
    } else {
        1000.0 * num as f64 / retired as f64
    }
}

/// Anchor slots from a finished run's whole-run counters. Column order
/// matches [`phelps_telemetry::EPOCH_FEATURE_NAMES`].
pub fn anchor_slots_from_stats(s: &SimStats) -> [f64; TELEMETRY_SLOTS] {
    [
        s.ipc(),
        s.mpki(),
        per_kilo(s.triggers, s.mt_retired),
        per_kilo(s.preds_from_queue, s.mt_retired),
        per_kilo(s.l3_misses, s.mt_retired),
        ratio(s.mt_fetch_stall_ifetch, s.cycles),
    ]
}

/// Anchor slots from a *prefix* of a per-epoch feature series
/// (`Report::epoch_feature_rows`): the unweighted mean of the first
/// `prefix` rows (`0` means all rows). An empty series yields all
/// zeros. This is the probe-run path: simulate a short window, average
/// its epochs, and predict the full run.
pub fn anchor_slots_from_epoch_rows(
    rows: &[[f64; EPOCH_FEATURES]],
    prefix: usize,
) -> [f64; TELEMETRY_SLOTS] {
    let take = if prefix == 0 {
        rows.len()
    } else {
        prefix.min(rows.len())
    };
    let mut out = [0.0; TELEMETRY_SLOTS];
    if take == 0 {
        return out;
    }
    for row in &rows[..take] {
        for (slot, v) in out.iter_mut().zip(row.iter()) {
            *slot += v;
        }
    }
    for slot in &mut out {
        *slot /= take as f64;
    }
    out
}

/// First integer following `tag` in `key`, if any.
fn field_u64(key: &str, tag: &str) -> Option<u64> {
    let rest = &key[key.find(tag)? + tag.len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

fn flag(on: bool) -> f64 {
    if on {
        1.0
    } else {
        0.0
    }
}

/// Configuration slots parsed from a cell's cache key (the `Debug`
/// rendering of its `RunConfig`, with optional `|NonSpeculative` /
/// `|Speculative` / `|TwelveWide` Branch Runahead suffix and optional
/// `|shards=N` suffix). Unknown or missing knobs parse as `0.0`; the
/// parse never fails.
pub fn config_slots(key: &str) -> [f64; CONFIG_SLOTS] {
    let br = key.contains("|NonSpeculative")
        || key.contains("|Speculative")
        || key.contains("|TwelveWide");
    let region = field_u64(key, "max_mt_insts: ").unwrap_or(0);
    [
        // Branch Runahead cells run the runahead engine on a baseline
        // core, so the `mode:` field alone would alias them with the
        // true baseline; `br` disambiguates.
        flag(key.contains("mode: Baseline") && !br),
        flag(key.contains("mode: PerfectBp")),
        flag(key.contains("mode: PartitionOnly")),
        flag(key.contains("mode: Phelps(")),
        flag(key.contains("include_stores: true")),
        flag(key.contains("preexec_guarded_branches: true")),
        flag(br),
        flag(key.contains("|Speculative") || key.contains("|TwelveWide")),
        flag(key.contains("|TwelveWide")),
        if region == 0 {
            0.0
        } else {
            (region as f64).log2()
        },
        field_u64(key, "width: ").unwrap_or(0) as f64,
        field_u64(key, "queue_columns: ").unwrap_or(0) as f64,
        field_u64(key, "store_cache_sets: ").unwrap_or(0) as f64,
    ]
}

/// Full feature vector: anchor telemetry slots followed by the cell's
/// own configuration slots.
pub fn feature_vector(anchor: &[f64; TELEMETRY_SLOTS], key: &str) -> [f64; FEATURE_DIM] {
    let mut out = [0.0; FEATURE_DIM];
    out[..TELEMETRY_SLOTS].copy_from_slice(anchor);
    out[TELEMETRY_SLOTS..].copy_from_slice(&config_slots(key));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_slots_guard_zero_denominators() {
        let s = SimStats::default();
        assert_eq!(anchor_slots_from_stats(&s), [0.0; TELEMETRY_SLOTS]);
    }

    #[test]
    fn stats_slots_compute_rates() {
        let s = SimStats {
            cycles: 1_000,
            mt_retired: 2_000,
            mt_mispredicts: 40,
            triggers: 10,
            preds_from_queue: 30,
            l3_misses: 8,
            mt_fetch_stall_ifetch: 100,
            ..SimStats::default()
        };
        let f = anchor_slots_from_stats(&s);
        assert!((f[0] - 2.0).abs() < 1e-12);
        assert!((f[1] - 20.0).abs() < 1e-12);
        assert!((f[2] - 5.0).abs() < 1e-12);
        assert!((f[3] - 15.0).abs() < 1e-12);
        assert!((f[4] - 4.0).abs() < 1e-12);
        assert!((f[5] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn epoch_prefix_is_mean_of_first_rows() {
        let rows = vec![
            [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            [3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
            [100.0, 100.0, 100.0, 100.0, 100.0, 100.0],
        ];
        let f = anchor_slots_from_epoch_rows(&rows, 2);
        assert_eq!(f, [2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(
            anchor_slots_from_epoch_rows(&rows, 0),
            anchor_slots_from_epoch_rows(&rows, 3)
        );
        assert_eq!(anchor_slots_from_epoch_rows(&[], 4), [0.0; TELEMETRY_SLOTS]);
    }

    #[test]
    fn config_slots_parse_modes_and_knobs() {
        let key = "RunConfig { core: CoreConfig { width: 8, ... }, mode: Phelps(PhelpsFeatures \
                   { include_stores: true, preexec_guarded_branches: false }), max_mt_insts: \
                   1048576, epoch_len: 10000, queue_columns: 32, store_cache_sets: 16 }";
        let f = config_slots(key);
        assert_eq!(&f[..4], &[0.0, 0.0, 0.0, 1.0], "mode one-hot");
        assert_eq!(f[4], 1.0, "stores");
        assert_eq!(f[5], 0.0, "guarded");
        assert_eq!(&f[6..9], &[0.0, 0.0, 0.0], "not BR");
        assert!((f[9] - 20.0).abs() < 1e-12, "log2 region");
        assert_eq!(f[10], 8.0);
        assert_eq!(f[11], 32.0);
        assert_eq!(f[12], 16.0);
    }

    #[test]
    fn config_slots_distinguish_br_from_baseline() {
        let base = "RunConfig { width: 8, mode: Baseline, max_mt_insts: 2000000 }";
        let br = "RunConfig { width: 8, mode: Baseline, max_mt_insts: 2000000 }|Speculative";
        let fb = config_slots(base);
        let fr = config_slots(br);
        assert_eq!(fb[0], 1.0);
        assert_eq!(fb[6], 0.0);
        assert_eq!(fr[0], 0.0, "BR cells are not the baseline");
        assert_eq!(fr[6], 1.0);
        assert_eq!(fr[7], 1.0);
        assert_eq!(fr[8], 0.0);
        assert_eq!(config_slots("k|TwelveWide")[8], 1.0);
    }

    #[test]
    fn config_slots_are_total_on_garbage() {
        for key in ["", "max_mt_insts: ", "width: x", "mode: "] {
            for v in config_slots(key) {
                assert!(v.is_finite());
            }
        }
    }

    #[test]
    fn feature_vector_concatenates() {
        let anchor = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let f = feature_vector(&anchor, "mode: Baseline");
        assert_eq!(&f[..TELEMETRY_SLOTS], &anchor);
        assert_eq!(f[TELEMETRY_SLOTS], 1.0);
        assert_eq!(FEATURE_NAMES.len(), FEATURE_DIM);
    }
}
