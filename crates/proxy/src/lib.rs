//! Learned fast-path IPC/MPKI proxy for sweep triage.
//!
//! Cycle-accurate fidelity is too expensive to spend on every design
//! point of a sweep (NeuroScalar, TAO). This crate trains a small,
//! dependency-free regression ensemble on the result cache the bench
//! runner already maintains, and predicts a cell's whole-run IPC and
//! MPKI from (a) the measured telemetry of its *anchor* — the baseline
//! run of the same workload and region — and (b) the cell's
//! configuration knobs parsed from its cache key. An uncertainty
//! estimate from k-fold sub-models decides which cells are safe to
//! predict and which must still be simulated.
//!
//! The pipeline:
//!
//! 1. [`dataset`] scans `results/cache/`, groups cells into anchor
//!    groups, and emits labelled examples;
//! 2. [`features`] turns anchor telemetry + a cache key into a
//!    fixed-width vector (prefix-window epoch features let a short
//!    probe run stand in for a full anchor measurement);
//! 3. [`model`] fits the seeded, deterministic ridge + boosted-stump
//!    ensemble and serializes it as versioned JSON with exact
//!    bit-pattern floats under `results/proxy/`.
//!
//! Consumers: the `phelps-proxy` CLI (`train` / `eval` / `predict`),
//! the bench runner's `PHELPS_PROXY=off|triage|strict` sweep triage,
//! and the `phelps-serve` daemon's predicted fast path.

pub mod dataset;
pub mod features;
pub mod model;

pub use dataset::{build_examples, scan, BuildSummary, CachedCell, Example};
pub use features::{
    anchor_slots_from_epoch_rows, anchor_slots_from_stats, config_slots, feature_vector,
    CONFIG_SLOTS, FEATURE_DIM, FEATURE_NAMES, TELEMETRY_SLOTS,
};
pub use model::{Prediction, ProxyModel, MIN_EXAMPLES, MODEL_SCHEMA};

use phelps_uarch::stats::SimStats;

/// Trains a model from a slice of examples (thin wrapper aligning the
/// dataset and model layers).
pub fn train_from_examples(
    examples: &[Example],
    seed: u64,
    folds: usize,
) -> Result<ProxyModel, String> {
    let xs: Vec<[f64; FEATURE_DIM]> = examples.iter().map(|e| e.features).collect();
    let ipc: Vec<f64> = examples.iter().map(|e| e.ipc).collect();
    let mpki: Vec<f64> = examples.iter().map(|e| e.mpki).collect();
    ProxyModel::train(&xs, &ipc, &mpki, seed, folds)
}

/// Synthesizes whole-run counters for a *predicted* cell from its
/// anchor's measured counters plus the predicted IPC/MPKI.
///
/// Only the counters that feed the figure tables' derived rates are
/// populated: retirement totals carry over from the anchor (the region
/// length is identical by construction), cycles and mispredicts are
/// derived from the predictions, and everything else stays zero — a
/// predicted cell deliberately does not fabricate cache or
/// helper-thread counters it has no estimate for.
pub fn synthesize_stats(anchor: &SimStats, ipc: f64, mpki: f64) -> SimStats {
    let retired = anchor.mt_retired;
    let ipc = ipc.max(1e-6);
    SimStats {
        mt_retired: retired,
        mt_cond_branches: anchor.mt_cond_branches,
        cycles: (retired as f64 / ipc).round().max(1.0) as u64,
        mt_mispredicts: (mpki.max(0.0) * retired as f64 / 1000.0).round() as u64,
        ..SimStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesized_stats_reproduce_predicted_rates() {
        let anchor = SimStats {
            cycles: 1_000_000,
            mt_retired: 2_000_000,
            mt_cond_branches: 400_000,
            ..SimStats::default()
        };
        let s = synthesize_stats(&anchor, 1.6, 12.5);
        assert!((s.ipc() - 1.6).abs() < 1e-3);
        assert!((s.mpki() - 12.5).abs() < 1e-3);
        assert_eq!(s.mt_retired, 2_000_000);
        assert_eq!(s.mt_cond_branches, 400_000);
        assert_eq!(s.l3_misses, 0, "no fabricated memory counters");
    }

    #[test]
    fn synthesized_stats_survive_degenerate_predictions() {
        let s = synthesize_stats(&SimStats::default(), 0.0, -3.0);
        assert_eq!(s.mt_mispredicts, 0);
        assert!(s.ipc().is_finite());
    }
}
