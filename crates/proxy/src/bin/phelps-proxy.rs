//! `phelps-proxy` — train, evaluate, and query the learned IPC proxy.
//!
//! ```text
//! phelps-proxy train   [--cache-dir=D] [--out=P] [--seed=N] [--folds=K] [--max-mae=X]
//! phelps-proxy eval    [--cache-dir=D] [--model=P] [--max-mae=X]
//! phelps-proxy predict [--cache-dir=D] [--model=P] [--only=SUBSTR]
//! ```
//!
//! All three read the bench runner's content-hashed result cache
//! (`results/cache/` or `PHELPS_CACHE_DIR`). `train` fits the model and
//! writes it (default `results/proxy/model.json`, or
//! `PHELPS_PROXY_MODEL`); `eval` re-derives the example set and reports
//! aggregate predicted-vs-measured error; `predict` prints one line per
//! cached cell with its prediction, uncertainty, and measured truth.
//! `--max-mae` turns the cross-validated IPC MAE into an exit status,
//! which is how ci.sh gates model quality.

use phelps_proxy::{build_examples, scan, train_from_examples, Example, ProxyModel};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    cmd: String,
    cache_dir: PathBuf,
    model: PathBuf,
    seed: u64,
    folds: usize,
    max_mae: Option<f64>,
    only: Option<String>,
}

fn env_path(name: &str, default: &str) -> PathBuf {
    std::env::var(name)
        .ok()
        .filter(|s| !s.is_empty())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(default))
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: phelps-proxy <train|eval|predict> [--cache-dir=D] [--model=P] [--out=P]\n\
         \x20                 [--seed=N] [--folds=K] [--max-mae=X] [--only=SUBSTR]"
    );
    ExitCode::FAILURE
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = std::env::args().skip(1);
    let Some(cmd) = args.next() else {
        return Err(usage());
    };
    let mut parsed = Args {
        cmd,
        cache_dir: env_path("PHELPS_CACHE_DIR", "results/cache"),
        model: env_path("PHELPS_PROXY_MODEL", "results/proxy/model.json"),
        seed: 42,
        folds: 4,
        max_mae: None,
        only: None,
    };
    for a in args {
        let bad = |what: &str| {
            eprintln!("phelps-proxy: bad {what} in {a:?}");
            ExitCode::FAILURE
        };
        if let Some(v) = a.strip_prefix("--cache-dir=") {
            parsed.cache_dir = PathBuf::from(v);
        } else if let Some(v) = a.strip_prefix("--model=").or(a.strip_prefix("--out=")) {
            parsed.model = PathBuf::from(v);
        } else if let Some(v) = a.strip_prefix("--seed=") {
            parsed.seed = v.parse().map_err(|_| bad("seed"))?;
        } else if let Some(v) = a.strip_prefix("--folds=") {
            parsed.folds = v.parse().map_err(|_| bad("fold count"))?;
        } else if let Some(v) = a.strip_prefix("--max-mae=") {
            parsed.max_mae = Some(v.parse().map_err(|_| bad("MAE bound"))?);
        } else if let Some(v) = a.strip_prefix("--only=") {
            parsed.only = Some(v.to_string());
        } else {
            eprintln!("phelps-proxy: unknown argument {a:?}");
            return Err(usage());
        }
    }
    Ok(parsed)
}

fn load_examples(args: &Args) -> Result<Vec<Example>, ExitCode> {
    let cells = scan(&args.cache_dir);
    let (examples, summary) = build_examples(&cells);
    println!(
        "[proxy] cache {}: {} cells, {} examples from {} anchor groups \
         ({} unanchored, {} degenerate)",
        args.cache_dir.display(),
        cells.len(),
        examples.len(),
        summary.groups,
        summary.unanchored,
        summary.degenerate
    );
    if examples.is_empty() {
        eprintln!(
            "phelps-proxy: no usable examples in {} (populate the cache by \
             running figure binaries first)",
            args.cache_dir.display()
        );
        return Err(ExitCode::FAILURE);
    }
    Ok(examples)
}

/// Aggregate predicted-vs-measured error of `model` over `examples`.
fn report_errors(model: &ProxyModel, examples: &[Example]) -> (f64, f64) {
    let (mut mae, mut max) = (0.0f64, 0.0f64);
    for e in examples {
        let err = (model.predict(&e.features).ipc - e.ipc).abs();
        mae += err;
        max = max.max(err);
    }
    (mae / examples.len() as f64, max)
}

fn gate(label: &str, mae: f64, bound: Option<f64>) -> ExitCode {
    if let Some(bound) = bound {
        if mae > bound {
            eprintln!("phelps-proxy: {label} IPC MAE {mae:.4} exceeds bound {bound:.4}");
            return ExitCode::FAILURE;
        }
        println!("[proxy] {label} IPC MAE {mae:.4} within bound {bound:.4}");
    }
    ExitCode::SUCCESS
}

fn cmd_train(args: &Args) -> ExitCode {
    let examples = match load_examples(args) {
        Ok(e) => e,
        Err(code) => return code,
    };
    let model = match train_from_examples(&examples, args.seed, args.folds) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("phelps-proxy: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "[proxy] trained on {} examples (seed={} folds={}): \
         cv IPC mae={:.4} max={:.4}; cv MPKI mae={:.3} max={:.3}; tau={:.4}",
        model.examples,
        model.seed,
        model.folds,
        model.ipc.cv_mae,
        model.ipc.cv_max,
        model.mpki.cv_mae,
        model.mpki.cv_max,
        model.tau_ipc()
    );
    if let Err(e) = model.save(&args.model) {
        eprintln!("phelps-proxy: cannot write {}: {e}", args.model.display());
        return ExitCode::FAILURE;
    }
    println!("[proxy] model written to {}", args.model.display());
    gate("cross-validated", model.ipc.cv_mae, args.max_mae)
}

fn cmd_eval(args: &Args) -> ExitCode {
    let model = match ProxyModel::load(&args.model) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("phelps-proxy: {e}");
            return ExitCode::FAILURE;
        }
    };
    let examples = match load_examples(args) {
        Ok(e) => e,
        Err(code) => return code,
    };
    let (mae, max) = report_errors(&model, &examples);
    println!(
        "[proxy] eval over {} examples: IPC mae={mae:.4} max={max:.4} \
         (model cv mae={:.4}, tau={:.4})",
        examples.len(),
        model.ipc.cv_mae,
        model.tau_ipc()
    );
    gate("eval", mae, args.max_mae)
}

fn cmd_predict(args: &Args) -> ExitCode {
    let model = match ProxyModel::load(&args.model) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("phelps-proxy: {e}");
            return ExitCode::FAILURE;
        }
    };
    let examples = match load_examples(args) {
        Ok(e) => e,
        Err(code) => return code,
    };
    let needle = args.only.as_deref().map(str::to_lowercase);
    println!(
        "{:<24} {:>9} {:>9} {:>8} {:>9} {:>9}  triage",
        "cell", "pred_ipc", "meas_ipc", "unc", "pred_mpki", "meas_mpki"
    );
    let tau = model.tau_ipc();
    let mut shown = 0usize;
    for e in &examples {
        let name = format!("{}/{}", e.workload, e.config);
        if needle
            .as_ref()
            .is_some_and(|n| !name.to_lowercase().contains(n))
        {
            continue;
        }
        let p = model.predict(&e.features);
        println!(
            "{name:<24} {:>9.3} {:>9.3} {:>8.4} {:>9.2} {:>9.2}  {}",
            p.ipc,
            e.ipc,
            p.ipc_uncertainty,
            p.mpki,
            e.mpki,
            if p.ipc_uncertainty <= tau {
                "predict"
            } else {
                "simulate"
            }
        );
        shown += 1;
    }
    if shown == 0 {
        eprintln!("phelps-proxy: --only filter matched no cached cells");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    match args.cmd.as_str() {
        "train" => cmd_train(&args),
        "eval" => cmd_eval(&args),
        "predict" => cmd_predict(&args),
        _ => usage(),
    }
}
