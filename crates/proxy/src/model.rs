//! Deterministic regression ensemble with uncertainty estimates.
//!
//! One [`ProxyModel`] carries two [`Head`]s — IPC and MPKI — each a
//! ridge baseline plus gradient-boosted depth-1 stumps fit to the ridge
//! residuals. Uncertainty comes from k-fold sub-models: alongside the
//! full-data regressor, each head keeps `K` regressors trained with one
//! fold held out. A prediction's uncertainty is the held-out models'
//! spread around the full model, floored at the cross-validated MAE, so
//! it is never optimistically below the model's own measured error.
//!
//! # Determinism
//!
//! Everything is seeded and order-stable: fold assignment is a seeded
//! Fisher–Yates shuffle of the example indices, stump splits break ties
//! by (feature, threshold) order, and no step consults the clock, a
//! hash map, or platform randomness. The same seed and the same example
//! sequence produce a bit-identical model — the JSON format encodes
//! every `f64` as its exact IEEE-754 bit pattern (`"0x3ff0..."`)
//! precisely so that save → load → save is byte-identical and
//! predictions cannot drift through a decimal round-trip.

use crate::features::{FEATURE_DIM, FEATURE_NAMES};
use phelps_telemetry::{parse_json, JsonValue, JsonWriter};
use std::path::Path;

/// Versioned schema tag embedded in every model file.
pub const MODEL_SCHEMA: &str = "phelps-proxy-model/1";

/// Minimum training-set size; below this the k-fold error estimate is
/// meaningless and training refuses to produce a model.
pub const MIN_EXAMPLES: usize = 8;

/// Boosting rounds per head.
const BOOST_ROUNDS: usize = 48;
/// Boosting learning rate (folded into the stored leaf values).
const BOOST_LR: f64 = 0.3;
/// Ridge penalty on standardized features.
const RIDGE_LAMBDA: f64 = 1.0;
/// Stop boosting when the best split's SSE gain falls below this.
const MIN_GAIN: f64 = 1e-9;

/// SplitMix64: tiny, seedable, and identical on every platform.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One depth-1 regression tree: `x[feature] <= threshold ? left : right`
/// (leaf values already scaled by the learning rate).
#[derive(Clone, Debug, PartialEq)]
struct Stump {
    feature: usize,
    threshold: f64,
    left: f64,
    right: f64,
}

impl Stump {
    fn predict(&self, x: &[f64; FEATURE_DIM]) -> f64 {
        if x[self.feature] <= self.threshold {
            self.left
        } else {
            self.right
        }
    }
}

/// Ridge baseline + boosted stumps over standardized features.
#[derive(Clone, Debug, PartialEq)]
struct Regressor {
    mean: [f64; FEATURE_DIM],
    scale: [f64; FEATURE_DIM],
    weights: [f64; FEATURE_DIM],
    intercept: f64,
    stumps: Vec<Stump>,
}

impl Regressor {
    fn predict(&self, x: &[f64; FEATURE_DIM]) -> f64 {
        let mut y = self.intercept;
        for (((w, v), m), s) in self.weights.iter().zip(x).zip(&self.mean).zip(&self.scale) {
            y += w * (v - m) / s;
        }
        for s in &self.stumps {
            y += s.predict(x);
        }
        if y.is_finite() {
            y
        } else {
            self.intercept
        }
    }

    /// Fits ridge + boosted stumps on `(xs[i], ys[i])` for `i` in `idx`.
    #[allow(clippy::needless_range_loop)] // matrix assembly reads clearer indexed
    fn fit(xs: &[[f64; FEATURE_DIM]], ys: &[f64], idx: &[usize]) -> Regressor {
        let n = idx.len();
        let nf = n as f64;

        // Standardization over the training subset. A constant feature
        // gets scale 1.0: its centered value is 0 everywhere, so its
        // weight is irrelevant but the division stays finite.
        let mut mean = [0.0; FEATURE_DIM];
        for &i in idx {
            for f in 0..FEATURE_DIM {
                mean[f] += xs[i][f];
            }
        }
        for m in &mut mean {
            *m /= nf;
        }
        let mut scale = [0.0; FEATURE_DIM];
        for &i in idx {
            for f in 0..FEATURE_DIM {
                let d = xs[i][f] - mean[f];
                scale[f] += d * d;
            }
        }
        for s in &mut scale {
            *s = (*s / nf).sqrt();
            if s.is_nan() || *s <= 1e-12 {
                *s = 1.0;
            }
        }

        let intercept = idx.iter().map(|&i| ys[i]).sum::<f64>() / nf;

        // Ridge normal equations on standardized X and centered y:
        // (Z'Z + lambda*I) w = Z'yc, solved by Gaussian elimination with
        // partial pivoting (FEATURE_DIM x FEATURE_DIM, tiny).
        let z = |i: usize, f: usize| (xs[i][f] - mean[f]) / scale[f];
        let mut a = [[0.0; FEATURE_DIM + 1]; FEATURE_DIM];
        for &i in idx {
            let yc = ys[i] - intercept;
            for r in 0..FEATURE_DIM {
                let zr = z(i, r);
                for c in r..FEATURE_DIM {
                    a[r][c] += zr * z(i, c);
                }
                a[r][FEATURE_DIM] += zr * yc;
            }
        }
        for r in 0..FEATURE_DIM {
            for c in 0..r {
                a[r][c] = a[c][r];
            }
            a[r][r] += RIDGE_LAMBDA;
        }
        let mut weights = [0.0; FEATURE_DIM];
        if solve_in_place(&mut a, &mut weights) {
            if weights.iter().any(|w| !w.is_finite()) {
                weights = [0.0; FEATURE_DIM];
            }
        } else {
            weights = [0.0; FEATURE_DIM];
        }

        let mut reg = Regressor {
            mean,
            scale,
            weights,
            intercept,
            stumps: Vec::new(),
        };

        // Boost stumps on the residuals.
        let mut resid: Vec<f64> = idx.iter().map(|&i| ys[i] - reg.predict(&xs[i])).collect();
        for _ in 0..BOOST_ROUNDS {
            let Some(stump) = best_stump(xs, &resid, idx) else {
                break;
            };
            for (r, &i) in resid.iter_mut().zip(idx) {
                *r -= stump.predict(&xs[i]);
            }
            reg.stumps.push(stump);
        }
        reg
    }
}

/// Gaussian elimination with partial pivoting on the augmented system
/// `a` (last column is the RHS); returns false when singular.
#[allow(clippy::needless_range_loop)] // elimination reads clearer indexed
fn solve_in_place(
    a: &mut [[f64; FEATURE_DIM + 1]; FEATURE_DIM],
    out: &mut [f64; FEATURE_DIM],
) -> bool {
    let n = FEATURE_DIM;
    for col in 0..n {
        let mut pivot = col;
        for r in col + 1..n {
            if a[r][col].abs() > a[pivot][col].abs() {
                pivot = r;
            }
        }
        if a[pivot][col].abs() < 1e-12 {
            return false;
        }
        a.swap(col, pivot);
        for r in col + 1..n {
            let factor = a[r][col] / a[col][col];
            for c in col..=n {
                a[r][c] -= factor * a[col][c];
            }
        }
    }
    for col in (0..n).rev() {
        let mut v = a[col][n];
        for c in col + 1..n {
            v -= a[col][c] * out[c];
        }
        out[col] = v / a[col][col];
    }
    true
}

/// Exhaustive best-SSE-gain depth-1 split over the subset `idx`, with
/// deterministic tie-breaking: strictly better gain wins, otherwise the
/// lower feature index, otherwise the lower threshold. Thresholds are
/// midpoints between consecutive distinct feature values; leaf values
/// are residual means scaled by the learning rate. Returns `None` when
/// no split clears [`MIN_GAIN`].
#[allow(clippy::needless_range_loop)] // `f` indexes a column across two arrays
fn best_stump(xs: &[[f64; FEATURE_DIM]], resid: &[f64], idx: &[usize]) -> Option<Stump> {
    let n = idx.len();
    if n < 2 {
        return None;
    }
    let total: f64 = resid.iter().sum();
    let mut best: Option<(f64, Stump)> = None;
    let mut order: Vec<usize> = (0..n).collect();
    for f in 0..FEATURE_DIM {
        // Sort subset positions by feature value; positions (stable
        // within the already-deterministic idx order) break value ties.
        order.sort_by(|&a, &b| {
            xs[idx[a]][f]
                .partial_cmp(&xs[idx[b]][f])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut left_sum = 0.0;
        for (k, &p) in order.iter().enumerate().take(n - 1) {
            left_sum += resid[p];
            let a = xs[idx[p]][f];
            let b = xs[idx[order[k + 1]]][f];
            if a == b {
                continue; // can't split between equal values
            }
            let left_n = (k + 1) as f64;
            let right_n = (n - k - 1) as f64;
            let right_sum = total - left_sum;
            // SSE reduction of a mean-valued two-leaf split.
            let gain = left_sum * left_sum / left_n + right_sum * right_sum / right_n
                - total * total / n as f64;
            let better = match &best {
                Some((g, s)) => {
                    gain > *g + 1e-15
                        || ((gain - *g).abs() <= 1e-15
                            && (f, (a + b) / 2.0) < (s.feature, s.threshold))
                }
                None => gain > MIN_GAIN,
            };
            if better && gain > MIN_GAIN {
                best = Some((
                    gain,
                    Stump {
                        feature: f,
                        threshold: (a + b) / 2.0,
                        left: BOOST_LR * left_sum / left_n,
                        right: BOOST_LR * right_sum / right_n,
                    },
                ));
            }
        }
    }
    best.map(|(_, s)| s)
}

/// One prediction target (IPC or MPKI): the full-data regressor, the
/// k-fold sub-models behind the uncertainty estimate, the
/// cross-validated error, and the clamp range.
#[derive(Clone, Debug, PartialEq)]
pub struct Head {
    full: Regressor,
    folds: Vec<Regressor>,
    /// Mean absolute held-out error across the k folds.
    pub cv_mae: f64,
    /// Worst held-out absolute error.
    pub cv_max: f64,
    lo: f64,
    hi: f64,
}

impl Head {
    /// Predicted value (clamped to the training range, widened) and its
    /// uncertainty (fold spread floored at the cross-validated MAE).
    pub fn predict(&self, x: &[f64; FEATURE_DIM]) -> (f64, f64) {
        let y = self.full.predict(x);
        let mut spread = 0.0f64;
        for fold in &self.folds {
            spread = spread.max((fold.predict(x) - y).abs());
        }
        (y.clamp(self.lo, self.hi), spread.max(self.cv_mae))
    }

    fn train(xs: &[[f64; FEATURE_DIM]], ys: &[f64], fold_of: &[usize], k: usize) -> Head {
        let all: Vec<usize> = (0..xs.len()).collect();
        let full = Regressor::fit(xs, ys, &all);
        let mut folds = Vec::with_capacity(k);
        let mut abs_errs: Vec<f64> = Vec::with_capacity(xs.len());
        for fold in 0..k {
            let train_idx: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&i| fold_of[i] != fold)
                .collect();
            let reg = Regressor::fit(xs, ys, &train_idx);
            for &i in all.iter().filter(|&&i| fold_of[i] == fold) {
                abs_errs.push((reg.predict(&xs[i]) - ys[i]).abs());
            }
            folds.push(reg);
        }
        let cv_mae = abs_errs.iter().sum::<f64>() / abs_errs.len().max(1) as f64;
        let cv_max = abs_errs.iter().fold(0.0f64, |m, &e| m.max(e));
        let lo = ys.iter().fold(f64::INFINITY, |m, &y| m.min(y));
        let hi = ys.iter().fold(0.0f64, |m, &y| m.max(y));
        Head {
            full,
            folds,
            cv_mae,
            cv_max,
            // Clamp to the training range widened by half: targets are
            // physical rates, so an extrapolation far outside what was
            // ever measured is a model failure, not a discovery.
            lo: (lo * 0.5).max(0.0),
            hi: hi * 1.5 + 1e-9,
        }
    }
}

/// A cell's predicted targets and their uncertainties.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Prediction {
    /// Predicted instructions per cycle.
    pub ipc: f64,
    /// Predicted mispredicts per kilo-instruction.
    pub mpki: f64,
    /// IPC uncertainty (same unit as IPC).
    pub ipc_uncertainty: f64,
    /// MPKI uncertainty (same unit as MPKI).
    pub mpki_uncertainty: f64,
}

/// The trained proxy: versioned, seeded, and fully deterministic.
#[derive(Clone, Debug, PartialEq)]
pub struct ProxyModel {
    /// Training seed (fold shuffling).
    pub seed: u64,
    /// Fold count used for the error estimate.
    pub folds: usize,
    /// Training-set size.
    pub examples: usize,
    /// IPC head.
    pub ipc: Head,
    /// MPKI head.
    pub mpki: Head,
}

impl ProxyModel {
    /// Trains both heads on parallel slices. Fails below
    /// [`MIN_EXAMPLES`] or when any input is non-finite.
    pub fn train(
        xs: &[[f64; FEATURE_DIM]],
        ipc_ys: &[f64],
        mpki_ys: &[f64],
        seed: u64,
        folds: usize,
    ) -> Result<ProxyModel, String> {
        let n = xs.len();
        if n < MIN_EXAMPLES {
            return Err(format!(
                "need at least {MIN_EXAMPLES} training examples, have {n} \
                 (run more sweeps into the result cache first)"
            ));
        }
        assert_eq!(ipc_ys.len(), n);
        assert_eq!(mpki_ys.len(), n);
        for (i, x) in xs.iter().enumerate() {
            if x.iter().any(|v| !v.is_finite()) || !ipc_ys[i].is_finite() || !mpki_ys[i].is_finite()
            {
                return Err(format!("example {i} contains a non-finite value"));
            }
        }
        let k = folds.clamp(2, n);
        // Seeded Fisher–Yates permutation of the example indices; fold
        // of example `perm[p]` is `p % k`. Depends only on (seed, n).
        let mut perm: Vec<usize> = (0..n).collect();
        let mut state = seed;
        for i in (1..n).rev() {
            let j = (splitmix64(&mut state) % (i as u64 + 1)) as usize;
            perm.swap(i, j);
        }
        let mut fold_of = vec![0usize; n];
        for (p, &i) in perm.iter().enumerate() {
            fold_of[i] = p % k;
        }
        Ok(ProxyModel {
            seed,
            folds: k,
            examples: n,
            ipc: Head::train(xs, ipc_ys, &fold_of, k),
            mpki: Head::train(xs, mpki_ys, &fold_of, k),
        })
    }

    /// Predicts both targets for one feature vector. Always finite.
    pub fn predict(&self, x: &[f64; FEATURE_DIM]) -> Prediction {
        let (ipc, ipc_u) = self.ipc.predict(x);
        let (mpki, mpki_u) = self.mpki.predict(x);
        Prediction {
            ipc: ipc.max(1e-6),
            mpki: mpki.max(0.0),
            ipc_uncertainty: ipc_u,
            mpki_uncertainty: mpki_u,
        }
    }

    /// IPC uncertainty threshold below which a prediction may replace a
    /// simulation: 1.5x the cross-validated MAE. Cells whose fold
    /// ensemble disagrees by more than the model's own measured error
    /// band land on the simulate side of the triage.
    pub fn tau_ipc(&self) -> f64 {
        1.5 * self.ipc.cv_mae
    }

    /// Serializes to the versioned JSON format. Floats are IEEE-754 bit
    /// patterns in hex strings, so the encoding is exact and the
    /// round-trip bit-identical.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("schema");
        w.string(MODEL_SCHEMA);
        w.key("seed");
        w.string(&self.seed.to_string());
        w.key("folds");
        w.uint(self.folds as u64);
        w.key("examples");
        w.uint(self.examples as u64);
        w.key("feature_names");
        w.begin_array();
        for name in FEATURE_NAMES {
            w.string(name);
        }
        w.end_array();
        w.key("heads");
        w.begin_object();
        for (name, head) in [("ipc", &self.ipc), ("mpki", &self.mpki)] {
            w.key(name);
            head_to_json(&mut w, head);
        }
        w.end_object();
        w.end_object();
        let mut text = w.finish();
        text.push('\n');
        text
    }

    /// Parses the versioned JSON format; any structural problem or
    /// schema mismatch is an error, never a silently-partial model.
    pub fn from_json(text: &str) -> Result<ProxyModel, String> {
        let v = parse_json(text)?;
        let schema = v
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or("missing schema")?;
        if schema != MODEL_SCHEMA {
            return Err(format!(
                "unsupported model schema {schema:?} (want {MODEL_SCHEMA:?})"
            ));
        }
        let names = v
            .get("feature_names")
            .and_then(JsonValue::as_array)
            .ok_or("missing feature_names")?;
        if names.len() != FEATURE_DIM {
            return Err(format!(
                "model was trained on {} features, this build extracts {FEATURE_DIM}",
                names.len()
            ));
        }
        let heads = v.get("heads").ok_or("missing heads")?;
        Ok(ProxyModel {
            seed: v
                .get("seed")
                .and_then(JsonValue::as_str)
                .and_then(|s| s.parse().ok())
                .ok_or("missing seed")?,
            folds: v
                .get("folds")
                .and_then(JsonValue::as_u64)
                .ok_or("missing folds")? as usize,
            examples: v
                .get("examples")
                .and_then(JsonValue::as_u64)
                .ok_or("missing examples")? as usize,
            ipc: head_from_json(heads.get("ipc").ok_or("missing ipc head")?)?,
            mpki: head_from_json(heads.get("mpki").ok_or("missing mpki head")?)?,
        })
    }

    /// Writes the model atomically (tmp + rename), creating parents.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        std::fs::write(&tmp, self.to_json())?;
        std::fs::rename(&tmp, path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }

    /// Loads and parses a model file.
    pub fn load(path: &Path) -> Result<ProxyModel, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        ProxyModel::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// Exact f64 encoding: the IEEE-754 bit pattern as a hex string.
fn fbits(v: f64) -> String {
    format!("0x{:016x}", v.to_bits())
}

fn f_from_json(v: &JsonValue) -> Result<f64, String> {
    let s = v.as_str().ok_or("float field is not a bit string")?;
    let hex = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("bad float encoding {s:?}"))?;
    u64::from_str_radix(hex, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad float encoding {s:?}: {e}"))
}

fn farray_to_json(w: &mut JsonWriter, key: &str, vals: &[f64]) {
    w.key(key);
    w.begin_array();
    for &v in vals {
        w.string(&fbits(v));
    }
    w.end_array();
}

fn farray_from_json(v: &JsonValue, key: &str) -> Result<[f64; FEATURE_DIM], String> {
    let arr = v
        .get(key)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("missing {key}"))?;
    if arr.len() != FEATURE_DIM {
        return Err(format!(
            "{key} has {} entries, want {FEATURE_DIM}",
            arr.len()
        ));
    }
    let mut out = [0.0; FEATURE_DIM];
    for (slot, item) in out.iter_mut().zip(arr) {
        *slot = f_from_json(item)?;
    }
    Ok(out)
}

fn regressor_to_json(w: &mut JsonWriter, r: &Regressor) {
    w.begin_object();
    farray_to_json(w, "mean", &r.mean);
    farray_to_json(w, "scale", &r.scale);
    farray_to_json(w, "weights", &r.weights);
    w.key("intercept");
    w.string(&fbits(r.intercept));
    w.key("stumps");
    w.begin_array();
    for s in &r.stumps {
        w.begin_object();
        w.key("f");
        w.uint(s.feature as u64);
        w.key("t");
        w.string(&fbits(s.threshold));
        w.key("l");
        w.string(&fbits(s.left));
        w.key("r");
        w.string(&fbits(s.right));
        w.end_object();
    }
    w.end_array();
    w.end_object();
}

fn regressor_from_json(v: &JsonValue) -> Result<Regressor, String> {
    let mut stumps = Vec::new();
    for s in v
        .get("stumps")
        .and_then(JsonValue::as_array)
        .ok_or("missing stumps")?
    {
        let feature = s
            .get("f")
            .and_then(JsonValue::as_u64)
            .ok_or("missing stump feature")? as usize;
        if feature >= FEATURE_DIM {
            return Err(format!("stump feature {feature} out of range"));
        }
        stumps.push(Stump {
            feature,
            threshold: f_from_json(s.get("t").ok_or("missing stump threshold")?)?,
            left: f_from_json(s.get("l").ok_or("missing stump left")?)?,
            right: f_from_json(s.get("r").ok_or("missing stump right")?)?,
        });
    }
    Ok(Regressor {
        mean: farray_from_json(v, "mean")?,
        scale: farray_from_json(v, "scale")?,
        weights: farray_from_json(v, "weights")?,
        intercept: f_from_json(v.get("intercept").ok_or("missing intercept")?)?,
        stumps,
    })
}

fn head_to_json(w: &mut JsonWriter, h: &Head) {
    w.begin_object();
    for (k, v) in [
        ("cv_mae", h.cv_mae),
        ("cv_max", h.cv_max),
        ("lo", h.lo),
        ("hi", h.hi),
    ] {
        w.key(k);
        w.string(&fbits(v));
    }
    w.key("full");
    regressor_to_json(w, &h.full);
    w.key("folds");
    w.begin_array();
    for fold in &h.folds {
        regressor_to_json(w, fold);
    }
    w.end_array();
    w.end_object();
}

fn head_from_json(v: &JsonValue) -> Result<Head, String> {
    let mut folds = Vec::new();
    for fold in v
        .get("folds")
        .and_then(JsonValue::as_array)
        .ok_or("missing folds")?
    {
        folds.push(regressor_from_json(fold)?);
    }
    Ok(Head {
        full: regressor_from_json(v.get("full").ok_or("missing full regressor")?)?,
        folds,
        cv_mae: f_from_json(v.get("cv_mae").ok_or("missing cv_mae")?)?,
        cv_max: f_from_json(v.get("cv_max").ok_or("missing cv_max")?)?,
        lo: f_from_json(v.get("lo").ok_or("missing lo")?)?,
        hi: f_from_json(v.get("hi").ok_or("missing hi")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic but structured data: ipc is a noisy-free linear+step
    /// function of two features, mpki an affine one.
    fn dataset(n: usize) -> (Vec<[f64; FEATURE_DIM]>, Vec<f64>, Vec<f64>) {
        let mut xs = Vec::with_capacity(n);
        let mut ipc = Vec::with_capacity(n);
        let mut mpki = Vec::with_capacity(n);
        let mut state = 7u64;
        for _ in 0..n {
            let mut x = [0.0; FEATURE_DIM];
            for slot in x.iter_mut() {
                *slot = (splitmix64(&mut state) % 1000) as f64 / 500.0;
            }
            let step = if x[2] > 1.0 { 0.5 } else { 0.0 };
            ipc.push(0.8 + 0.6 * x[0] + step);
            mpki.push(20.0 - 4.0 * x[1]);
            xs.push(x);
        }
        (xs, ipc, mpki)
    }

    #[test]
    fn refuses_tiny_datasets() {
        let (xs, i, m) = dataset(MIN_EXAMPLES - 1);
        assert!(ProxyModel::train(&xs, &i, &m, 1, 4).is_err());
    }

    #[test]
    fn refuses_non_finite_inputs() {
        let (mut xs, i, m) = dataset(12);
        xs[3][0] = f64::NAN;
        assert!(ProxyModel::train(&xs, &i, &m, 1, 4).is_err());
    }

    #[test]
    fn learns_structured_targets() {
        let (xs, i, m) = dataset(64);
        let model = ProxyModel::train(&xs, &i, &m, 42, 4).unwrap();
        assert!(model.ipc.cv_mae < 0.15, "ipc cv_mae {}", model.ipc.cv_mae);
        assert!(model.mpki.cv_mae < 1.5, "mpki cv_mae {}", model.mpki.cv_mae);
        let p = model.predict(&xs[0]);
        assert!((p.ipc - i[0]).abs() < 0.3);
        assert!((p.mpki - m[0]).abs() < 3.0);
        assert!(
            p.ipc_uncertainty >= model.ipc.cv_mae,
            "MAE floors uncertainty"
        );
    }

    #[test]
    fn training_is_deterministic_and_seed_sensitive() {
        let (xs, i, m) = dataset(32);
        let a = ProxyModel::train(&xs, &i, &m, 9, 4).unwrap();
        let b = ProxyModel::train(&xs, &i, &m, 9, 4).unwrap();
        assert_eq!(a.to_json(), b.to_json(), "bit-identical across runs");
        let c = ProxyModel::train(&xs, &i, &m, 10, 4).unwrap();
        assert_ne!(a.to_json(), c.to_json(), "seed changes the folds");
    }

    #[test]
    fn json_roundtrip_is_bit_identical() {
        let (xs, i, m) = dataset(24);
        let model = ProxyModel::train(&xs, &i, &m, 3, 3).unwrap();
        let text = model.to_json();
        let back = ProxyModel::from_json(&text).unwrap();
        assert_eq!(model, back);
        assert_eq!(text, back.to_json());
    }

    #[test]
    fn rejects_wrong_schema_and_width() {
        assert!(ProxyModel::from_json("{\"schema\":\"other/9\"}").is_err());
        let (xs, i, m) = dataset(16);
        let text = ProxyModel::train(&xs, &i, &m, 1, 2).unwrap().to_json();
        let truncated = text.replace("\"anchor_ipc\",", "");
        assert!(ProxyModel::from_json(&truncated).is_err());
    }

    #[test]
    fn predictions_are_finite_even_for_extreme_inputs() {
        let (xs, i, m) = dataset(20);
        let model = ProxyModel::train(&xs, &i, &m, 5, 4).unwrap();
        for x in [
            [f64::MAX; FEATURE_DIM],
            [f64::MIN_POSITIVE; FEATURE_DIM],
            [-1e300; FEATURE_DIM],
        ] {
            let p = model.predict(&x);
            assert!(p.ipc.is_finite() && p.ipc > 0.0);
            assert!(p.mpki.is_finite() && p.mpki >= 0.0);
            assert!(p.ipc_uncertainty.is_finite());
        }
    }
}
