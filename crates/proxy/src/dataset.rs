//! Training examples from the on-disk result cache.
//!
//! The bench runner fingerprints every cell as
//! `experiment|workload|config|key|vVERSION` and stores its whole-run
//! counters under `results/cache/<fnv1a>.json` with the fingerprint
//! embedded. That makes the cache a free, already-labelled training
//! set: this module scans it, groups cells into *anchor groups* — one
//! workload, one region length, one input variant — and emits one
//! example per cell whose features combine the group's **baseline**
//! telemetry with the cell's own configuration knobs. Targets are the
//! cell's measured IPC and MPKI.
//!
//! Groups without a baseline cell are skipped (there is no anchor to
//! extract telemetry slots from), as are cells with zero cycles or
//! zero retired instructions.
//!
//! # Determinism
//!
//! `read_dir` order is platform- and filesystem-dependent, so the scan
//! sorts by fingerprint before anything else; every downstream
//! consumer (training, evaluation, the CLI) sees one canonical order.

use crate::features::{anchor_slots_from_stats, feature_vector, FEATURE_DIM, TELEMETRY_SLOTS};
use phelps_telemetry::{parse_json, JsonValue};
use phelps_uarch::stats::SimStats;
use std::path::Path;

/// One parsed cache file: fingerprint components plus the counters the
/// feature extractor and targets need.
#[derive(Clone, Debug)]
pub struct CachedCell {
    /// Full embedded fingerprint (sort key).
    pub fingerprint: String,
    /// Experiment (figure/table or service) name.
    pub experiment: String,
    /// Row (workload) label.
    pub workload: String,
    /// Column (configuration) label.
    pub config: String,
    /// The `RunConfig` debug rendering plus any variant suffixes.
    pub key: String,
    /// Whole-run counters (only the cached subset is populated).
    pub stats: SimStats,
}

/// Splits a cache fingerprint into its four identity components,
/// stripping the trailing `|v<version>` segment. The key itself may
/// contain `|` (shard and Branch Runahead suffixes), so the version is
/// taken from the right.
pub fn split_fingerprint(fp: &str) -> Option<(&str, &str, &str, &str)> {
    let mut it = fp.splitn(4, '|');
    let experiment = it.next()?;
    let workload = it.next()?;
    let config = it.next()?;
    let rest = it.next()?;
    let (key, version) = rest.rsplit_once('|')?;
    if !version.starts_with('v') || key.is_empty() {
        return None;
    }
    Some((experiment, workload, config, key))
}

fn stats_from_cache_json(v: &JsonValue) -> Option<SimStats> {
    let s = v.get("stats")?;
    let field = |name: &str| s.get(name).and_then(JsonValue::as_u64);
    // Only the counters the features/targets consume; absent fields in
    // a future cache schema degrade to a skipped cell, not a panic.
    Some(SimStats {
        cycles: field("cycles")?,
        mt_retired: field("mt_retired")?,
        mt_cond_branches: field("mt_cond_branches")?,
        mt_mispredicts: field("mt_mispredicts")?,
        preds_from_queue: field("preds_from_queue")?,
        triggers: field("triggers")?,
        l3_misses: field("l3_misses")?,
        mt_fetch_stall_ifetch: field("mt_fetch_stall_ifetch")?,
        ..SimStats::default()
    })
}

/// Scans a cache directory into parsed cells, sorted by fingerprint.
/// Unreadable or structurally alien files are skipped silently — the
/// cache is shared and may contain entries from other schema versions.
pub fn scan(dir: &Path) -> Vec<CachedCell> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let Ok(v) = parse_json(&text) else {
            continue;
        };
        let Some(fp) = v.get("fingerprint").and_then(JsonValue::as_str) else {
            continue;
        };
        let Some((experiment, workload, config, key)) = split_fingerprint(fp) else {
            continue;
        };
        let Some(stats) = stats_from_cache_json(&v) else {
            continue;
        };
        out.push(CachedCell {
            fingerprint: fp.to_string(),
            experiment: experiment.to_string(),
            workload: workload.to_string(),
            config: config.to_string(),
            key: key.to_string(),
            stats,
        });
    }
    out.sort_by(|a, b| a.fingerprint.cmp(&b.fingerprint));
    out
}

/// A cell is an anchor candidate when it is a plain baseline run: the
/// `mode: Baseline` core with no Branch Runahead variant suffix.
pub fn is_anchor_key(key: &str) -> bool {
    key.contains("mode: Baseline")
        && !key.contains("|NonSpeculative")
        && !key.contains("|Speculative")
        && !key.contains("|TwelveWide")
}

/// The anchor-group identity of a cell: workload, region length, and
/// the input-variant tag (the `@suffix` some experiments append to the
/// config label to distinguish graph inputs on the same workload).
pub fn group_parts(workload: &str, config: &str, key: &str) -> (String, String, String) {
    let region = key
        .split("max_mt_insts: ")
        .nth(1)
        .map(|rest| {
            rest.chars()
                .take_while(char::is_ascii_digit)
                .collect::<String>()
        })
        .unwrap_or_default();
    let input_tag = config
        .split_once('@')
        .map(|(_, tag)| tag.to_string())
        .unwrap_or_default();
    (workload.to_string(), region, input_tag)
}

/// [`group_parts`] of one scanned cell.
pub fn group_id(cell: &CachedCell) -> (String, String, String) {
    group_parts(&cell.workload, &cell.config, &cell.key)
}

/// One training example: features, targets, and provenance labels.
#[derive(Clone, Debug)]
pub struct Example {
    /// Source cell fingerprint.
    pub fingerprint: String,
    /// Row (workload) label.
    pub workload: String,
    /// Column (configuration) label.
    pub config: String,
    /// Feature vector (anchor telemetry + config knobs).
    pub features: [f64; FEATURE_DIM],
    /// Measured instructions per cycle.
    pub ipc: f64,
    /// Measured mispredicts per kilo-instruction.
    pub mpki: f64,
}

/// Dataset construction summary alongside the examples.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BuildSummary {
    /// Anchor groups that contributed examples.
    pub groups: usize,
    /// Cells skipped because their group has no baseline anchor.
    pub unanchored: usize,
    /// Cells skipped for degenerate counters (zero cycles/retired).
    pub degenerate: usize,
}

/// Builds examples from scanned cells. Cells are grouped by
/// [`group_id`]; each group's anchor is its lexicographically-first
/// baseline cell (fingerprint order, so ties are stable), and every
/// usable cell in an anchored group — including the anchor itself —
/// becomes one example.
pub fn build_examples(cells: &[CachedCell]) -> (Vec<Example>, BuildSummary) {
    use std::collections::BTreeMap;
    let mut groups: BTreeMap<(String, String, String), Vec<&CachedCell>> = BTreeMap::new();
    for cell in cells {
        groups.entry(group_id(cell)).or_default().push(cell);
    }
    let mut examples = Vec::new();
    let mut summary = BuildSummary::default();
    for members in groups.values() {
        // `cells` is fingerprint-sorted, so the first match is the
        // lexicographically-first baseline cell of the group.
        let Some(anchor) = members.iter().find(|c| is_anchor_key(&c.key)) else {
            summary.unanchored += members.len();
            continue;
        };
        let slots: [f64; TELEMETRY_SLOTS] = anchor_slots_from_stats(&anchor.stats);
        summary.groups += 1;
        for cell in members {
            if cell.stats.cycles == 0 || cell.stats.mt_retired == 0 {
                summary.degenerate += 1;
                continue;
            }
            examples.push(Example {
                fingerprint: cell.fingerprint.clone(),
                workload: cell.workload.clone(),
                config: cell.config.clone(),
                features: feature_vector(&slots, &cell.key),
                ipc: cell.stats.ipc(),
                mpki: cell.stats.mpki(),
            });
        }
    }
    (examples, summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_splits_around_piped_keys() {
        let fp = "fig11|astar|BR-spec|RunConfig { mode: Baseline }|Speculative|v0.1.0";
        let (e, w, c, k) = split_fingerprint(fp).unwrap();
        assert_eq!(e, "fig11");
        assert_eq!(w, "astar");
        assert_eq!(c, "BR-spec");
        assert_eq!(k, "RunConfig { mode: Baseline }|Speculative");
        assert!(split_fingerprint("too|few|parts").is_none());
        assert!(split_fingerprint("a|b|c|key-without-version").is_none());
    }

    fn cell(workload: &str, config: &str, key: &str, cycles: u64, retired: u64) -> CachedCell {
        CachedCell {
            fingerprint: format!("exp|{workload}|{config}|{key}|v0"),
            experiment: "exp".into(),
            workload: workload.into(),
            config: config.into(),
            key: key.into(),
            stats: SimStats {
                cycles,
                mt_retired: retired,
                mt_mispredicts: retired / 100,
                ..SimStats::default()
            },
        }
    }

    #[test]
    fn groups_need_an_anchor() {
        let base = "RunConfig { mode: Baseline, max_mt_insts: 1000 }";
        let phelps = "RunConfig { mode: Phelps(..), max_mt_insts: 1000 }";
        let cells = vec![
            cell("astar", "baseline", base, 100, 1000),
            cell("astar", "phelps", phelps, 60, 1000),
            cell("mcf", "phelps", phelps, 80, 1000), // no anchor
        ];
        let (ex, summary) = build_examples(&cells);
        assert_eq!(ex.len(), 2, "anchored group contributes both cells");
        assert_eq!(summary.groups, 1);
        assert_eq!(summary.unanchored, 1);
        assert!((ex[0].ipc - 10.0).abs() < 1e-12);
    }

    #[test]
    fn br_cells_are_not_anchors() {
        let br = "RunConfig { mode: Baseline, max_mt_insts: 1000 }|Speculative";
        let (ex, summary) = build_examples(&[cell("astar", "BR-spec", br, 100, 1000)]);
        assert!(ex.is_empty());
        assert_eq!(summary.unanchored, 1);
    }

    #[test]
    fn input_variants_get_their_own_anchor() {
        let base = "RunConfig { mode: Baseline, max_mt_insts: 1000 }";
        let phelps_key = base.replace("Baseline", "Phelps(x");
        let a = cell("bfs", "base@uniform", base, 100, 1000);
        let b = cell("bfs", "phelps@uniform", &phelps_key, 50, 1000);
        let c = cell("bfs", "phelps@scale", &phelps_key, 50, 1000);
        let (ex, summary) = build_examples(&[a, b, c]);
        assert_eq!(summary.groups, 1, "only @uniform has an anchor");
        assert_eq!(summary.unanchored, 1, "@scale group skipped");
        assert_eq!(ex.len(), 2);
    }

    #[test]
    fn degenerate_counters_are_skipped() {
        let base = "RunConfig { mode: Baseline, max_mt_insts: 1000 }";
        let cells = vec![
            cell("astar", "baseline", base, 100, 1000),
            cell(
                "astar",
                "dead",
                "RunConfig { mode: PerfectBp, max_mt_insts: 1000 }",
                0,
                0,
            ),
        ];
        let (ex, summary) = build_examples(&cells);
        assert_eq!(ex.len(), 1);
        assert_eq!(summary.degenerate, 1);
    }

    #[test]
    fn scan_reads_runner_cache_files_and_sorts() {
        let dir = std::env::temp_dir().join(format!("phelps-proxy-scan-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // Two minimal but format-faithful cache files plus garbage.
        for (name, fp, cycles) in [
            ("b.json", "exp|w|base|RunConfig { mode: Baseline }|v0", 10),
            ("a.json", "exp|w|aaa|RunConfig { mode: PerfectBp }|v0", 20),
        ] {
            std::fs::write(
                dir.join(name),
                format!(
                    "{{\"fingerprint\":\"{fp}\",\"stats\":{{\"cycles\":{cycles},\
                     \"mt_retired\":100,\"mt_cond_branches\":10,\"mt_mispredicts\":1,\
                     \"preds_from_queue\":0,\"triggers\":0,\"l3_misses\":2,\
                     \"mt_fetch_stall_ifetch\":3}},\"breakdown\":{{}}}}"
                ),
            )
            .unwrap();
        }
        std::fs::write(dir.join("junk.json"), "{not json").unwrap();
        std::fs::write(dir.join("other.txt"), "ignored").unwrap();
        let cells = scan(&dir);
        assert_eq!(cells.len(), 2);
        assert!(cells[0].fingerprint < cells[1].fingerprint, "sorted");
        assert_eq!(cells[0].stats.cycles, 20);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
