//! Property tests for the proxy math: seeded training is
//! deterministic, predictions stay finite for arbitrary finite
//! features, and the model JSON round-trips bit-identically.

use phelps_proxy::{ProxyModel, FEATURE_DIM};
use proptest::prelude::*;

/// A finite f64 spanning several orders of magnitude, including exact
/// zeros (constant features) and negatives.
fn any_finite() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(0.0),
        (-1_000_000i64..1_000_000).prop_map(|v| v as f64 / 1024.0),
        (1u64..1 << 40).prop_map(|v| v as f64),
        (1u64..1 << 40).prop_map(|v| 1.0 / v as f64),
    ]
}

fn any_features() -> impl Strategy<Value = [f64; FEATURE_DIM]> {
    proptest::collection::vec(any_finite(), FEATURE_DIM..FEATURE_DIM + 1)
        .prop_map(|v| v.try_into().expect("exact length"))
}

/// A small but trainable dataset: 12..32 examples with bounded,
/// finite features and physical (non-negative) targets.
fn any_dataset() -> impl Strategy<Value = (Vec<[f64; FEATURE_DIM]>, Vec<f64>, Vec<f64>)> {
    (12usize..32, any::<u64>()).prop_map(|(n, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            (z ^ (z >> 31)) % 4096
        };
        let mut xs = Vec::with_capacity(n);
        let mut ipc = Vec::with_capacity(n);
        let mut mpki = Vec::with_capacity(n);
        for _ in 0..n {
            let mut x = [0.0; FEATURE_DIM];
            for slot in x.iter_mut() {
                *slot = next() as f64 / 512.0;
            }
            ipc.push(0.1 + x[0] * 0.5 + next() as f64 / 8192.0);
            mpki.push(x[1] * 3.0 + next() as f64 / 1024.0);
            xs.push(x);
        }
        (xs, ipc, mpki)
    })
}

proptest! {
    #[test]
    fn training_is_deterministic_under_a_fixed_seed(
        data in any_dataset(),
        seed in any::<u64>(),
    ) {
        let (xs, ipc, mpki) = data;
        let a = ProxyModel::train(&xs, &ipc, &mpki, seed, 4).expect("trains");
        let b = ProxyModel::train(&xs, &ipc, &mpki, seed, 4).expect("trains");
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn predictions_are_finite_for_arbitrary_finite_features(
        data in any_dataset(),
        probe in any_features(),
    ) {
        let (xs, ipc, mpki) = data;
        let model = ProxyModel::train(&xs, &ipc, &mpki, 7, 4).expect("trains");
        let p = model.predict(&probe);
        prop_assert!(p.ipc.is_finite() && p.ipc > 0.0, "ipc {}", p.ipc);
        prop_assert!(p.mpki.is_finite() && p.mpki >= 0.0, "mpki {}", p.mpki);
        prop_assert!(p.ipc_uncertainty.is_finite() && p.ipc_uncertainty >= 0.0);
        prop_assert!(p.mpki_uncertainty.is_finite() && p.mpki_uncertainty >= 0.0);
    }

    #[test]
    fn model_json_roundtrips_bit_identically(
        data in any_dataset(),
        seed in any::<u64>(),
        probe in any_features(),
    ) {
        let (xs, ipc, mpki) = data;
        let model = ProxyModel::train(&xs, &ipc, &mpki, seed, 3).expect("trains");
        let text = model.to_json();
        let back = ProxyModel::from_json(&text).expect("parses");
        prop_assert_eq!(&model, &back, "structural equality");
        prop_assert_eq!(&text, &back.to_json(), "byte-identical re-encoding");
        // Bit-identical models make bit-identical predictions.
        let (a, b) = (model.predict(&probe), back.predict(&probe));
        prop_assert_eq!(a.ipc.to_bits(), b.ipc.to_bits());
        prop_assert_eq!(a.mpki.to_bits(), b.mpki.to_bits());
        prop_assert_eq!(a.ipc_uncertainty.to_bits(), b.ipc_uncertainty.to_bits());
    }
}
