//! The Branch Runahead pre-execution engine (core-only version, paper §VI).
//!
//! Differences from Phelps, mirrored here:
//!
//! * **Pop-based per-branch outcome queues** instead of iteration-lockstep
//!   columns: the main thread pops the head entry when it fetches the
//!   branch; there is no notion of "ignored" outcomes, so extra or missing
//!   deposits misalign the queue until a rollback resynchronizes it.
//! * **Deposits at execute** (chains are dataflow; no program-order retire
//!   is required), enabled by the pipeline's loose-retire mode.
//! * **Guarded branches are not unconditionally pre-executed.** A child
//!   chain deposits only when its parent's direction (speculated by a
//!   bimodal predictor in BR-spec, or awaited in BR-non-spec) matches its
//!   trigger direction. Wrong speculation repairs the queue late and
//!   rollbacks discard unconsumed entries of the whole chain group
//!   (Fig. 10b).
//! * **Stores are excluded** (the paper's §VI methodology for BR).
//! * The frontend/PRF/LQ partition is held for the **full run**.

use crate::chains::ChainSet;
use phelps::classify::MispredictClass;
use phelps::construct::{ConstructionTarget, Constructor, ConstructorConfig};
use phelps::delinq::{build_loop_table, Dbt, LoopBounds};
use phelps::htc::HtKind;
use phelps::predicate::PredSource;
use phelps::sim::{
    EngineCkpt, EngineCmd, ExecInfo, PreExecEngine, QueueLookup, SideAction, SideInst, SideKind,
    HT_A,
};
use phelps_isa::{ExecRecord, Inst, Reg, NUM_REGS};
use phelps_telemetry as tlm;
use phelps_uarch::bpred::{Bimodal, DirectionPredictor};
use phelps_uarch::config::ActiveThreads;
use std::collections::HashMap;

/// Maximum iterations the chain engine may run ahead of the main thread.
const MAX_LEAD: u64 = 32;

/// One branch's outcome queue, **slot-indexed by chain-engine
/// iteration**: the deposit for iteration `j` lives in slot `j`, so wrong
/// or missing speculative deposits cost accuracy or timeliness for that
/// instance only — they can never shift later instances (the alignment
/// role that parent-direction triggering plays in real Branch Runahead).
///
/// Unguarded (group-root) queues consume at their own cursor, advanced on
/// every fetch of the branch — including empty (untimely) slots. Guarded
/// (child) queues are consumed at their group root's last-consumed
/// instance, so a recovery that restores the root cursor replays the whole
/// group.
#[derive(Clone, Debug, Default)]
struct OutcomeQueue {
    /// Slot per iteration; `None` = not (yet) deposited.
    slots: Vec<Option<bool>>,
    /// Iteration index of `slots[0]`.
    base: u64,
    /// Consumption cursor (group roots only), in iteration units.
    cursor: u64,
}

impl OutcomeQueue {
    fn slot_mut(&mut self, iter: u64) -> Option<&mut Option<bool>> {
        let idx = iter.checked_sub(self.base)? as usize;
        if idx >= self.slots.len() {
            self.slots.resize(idx + 1, None);
        }
        self.slots.get_mut(idx)
    }

    fn deposit(&mut self, iter: u64, taken: bool) {
        if let Some(s) = self.slot_mut(iter) {
            *s = Some(taken);
        }
    }

    /// Removes the deposit for `iter` (wrong speculative trigger repair).
    fn remove(&mut self, iter: u64) {
        if let Some(s) = self.slot_mut(iter) {
            *s = None;
        }
    }

    fn peek(&self, iter: u64) -> Option<bool> {
        let idx = iter.checked_sub(self.base)? as usize;
        self.slots.get(idx).copied().flatten()
    }

    /// Root consumption: read slot `cursor`, advance the cursor
    /// unconditionally (an empty slot is an untimely instance predicted by
    /// the default predictor; its late deposit simply dies in place).
    fn consume_root(&mut self) -> Option<bool> {
        let v = self.peek(self.cursor);
        self.cursor += 1;
        self.prune();
        v
    }

    fn prune(&mut self) {
        if self.cursor.saturating_sub(self.base) > 512 && self.slots.len() > 256 {
            let drop = ((self.cursor - self.base) as usize)
                .saturating_sub(256)
                .min(self.slots.len());
            self.slots.drain(0..drop);
            self.base += drop as u64;
        }
    }
}

/// Live state of a triggered chain region.
#[derive(Clone, Debug)]
struct ActiveChains {
    bounds: LoopBounds,
    chains: ChainSet,
    /// Per-branch outcome queues, in `chains.branch_pcs()` order.
    queues: Vec<(u64, OutcomeQueue)>,
    /// Sequencer: position within the per-iteration body.
    idx: usize,
    iteration: u64,
    /// Pending live-in moves.
    moves: Vec<SideInst>,
    stopped: bool,
    /// Iterations of the loop the main thread has retired since trigger.
    mt_iters: u64,
    /// Per-(iteration, branch) record of speculation and execution.
    iter_recs: HashMap<(u64, u64), IterRec>,
}

#[derive(Clone, Copy, Debug, Default)]
struct IterRec {
    /// Child: whether we speculatively deposited.
    deposited: bool,
    /// Parent: resolved outcome.
    resolved: Option<bool>,
    /// Child: executed outcome (for late deposits).
    outcome: Option<bool>,
}

/// Configuration of the Branch Runahead engine.
#[derive(Clone, Copy, Debug)]
pub struct BrConfig {
    /// Speculative triggering of child chains via a bimodal predictor
    /// (BR-spec); `false` serializes children behind parent resolution
    /// (BR-non-spec).
    pub speculative: bool,
    /// Epoch length in retired instructions (delinquency measurement).
    pub epoch_len: u64,
    /// Delinquency threshold in mispredictions per epoch.
    pub delinq_threshold: u64,
}

impl BrConfig {
    /// BR-spec at the given epoch scale.
    pub fn speculative(epoch_len: u64, delinq_threshold: u64) -> BrConfig {
        BrConfig {
            speculative: true,
            epoch_len,
            delinq_threshold,
        }
    }

    /// BR-non-spec at the given epoch scale.
    pub fn non_speculative(epoch_len: u64, delinq_threshold: u64) -> BrConfig {
        BrConfig {
            speculative: false,
            epoch_len,
            delinq_threshold,
        }
    }
}

/// The Branch Runahead engine. Plug into
/// [`phelps::sim::simulate_with_engine`] (see [`crate::simulate_runahead`]).
#[derive(Debug)]
pub struct BrEngine {
    cfg: BrConfig,
    dbt: Dbt,
    epoch_insts: u64,
    epoch: u64,
    constructor: Option<Constructor>,
    /// Built chain sets by loop start PC.
    cached: HashMap<u64, (LoopBounds, ChainSet)>,
    bimodal: Bimodal,
    mt_regs: [u64; NUM_REGS],
    active: Option<ActiveChains>,
}

impl BrEngine {
    /// Creates a BR engine.
    pub fn new(cfg: BrConfig) -> BrEngine {
        BrEngine {
            cfg,
            dbt: Dbt::new(256, 32),
            epoch_insts: 0,
            epoch: 0,
            constructor: None,
            cached: HashMap::new(),
            bimodal: Bimodal::new(8192),
            mt_regs: [0; NUM_REGS],
            active: None,
        }
    }

    /// Seeds the main-thread register shadow with pre-run state.
    pub fn seed_mt_regs(&mut self, regs: [u64; NUM_REGS]) {
        self.mt_regs = regs;
    }

    /// Number of loops with built chains.
    pub fn cached_regions(&self) -> usize {
        self.cached.len()
    }

    fn end_epoch(&mut self) {
        if let Some(c) = self.constructor.take() {
            let bounds = c.target().bounds;
            if let Ok(entry) = c.finalize(self.epoch) {
                let thread = entry.inner;
                let chains = ChainSet::from_helper_thread(&thread);
                if !chains.chains.is_empty() {
                    self.cached.insert(bounds.target_pc, (bounds, chains));
                }
            }
        }
        let lt = build_loop_table(&self.dbt, self.cfg.delinq_threshold, 8);
        for e in &lt {
            if self.cached.contains_key(&e.bounds.target_pc) {
                continue;
            }
            // BR is not loop-gated: permissive limits, flattened region
            // (no dual threads), stores dropped afterwards.
            self.constructor = Some(Constructor::with_config(
                ConstructionTarget {
                    bounds: e.bounds,
                    inner: None,
                    delinquent: e.branches.clone(),
                },
                ConstructorConfig {
                    max_ht_fraction: 1.0,
                    min_iters_per_visit: 0.0,
                    max_mt_live_ins: 16,
                    ..ConstructorConfig::default()
                },
            ));
            break;
        }
        self.dbt.reset_epoch();
        self.epoch += 1;
        self.epoch_insts = 0;
    }

    fn start_run(&mut self, start_pc: u64) {
        let (bounds, chains) = self.cached[&start_pc].clone();
        let queues = chains
            .branch_pcs()
            .iter()
            .map(|&pc| (pc, OutcomeQueue::default()))
            .collect();
        // Live-in moves from the MT shadow.
        let live_ins: Vec<Reg> = self
            .cached
            .get(&start_pc)
            .map(|_| Vec::new())
            .unwrap_or_default();
        let _ = live_ins;
        let moves = build_moves(&chains_live_ins(&chains), &self.mt_regs);
        self.active = Some(ActiveChains {
            bounds,
            chains,
            queues,
            idx: 0,
            iteration: 0,
            moves,
            stopped: false,
            mt_iters: 0,
            iter_recs: HashMap::new(),
        });
    }

    /// Rolls back the chain group containing `pc` after a wrong consumed
    /// outcome: invalidate the group's slots at the offending instance so
    /// the replay after recovery falls back to the default predictor
    /// instead of re-consuming the same wrong value.
    fn rollback_group(&mut self, pc: u64) {
        tlm::count(tlm::Counter::ChainRollbacks);
        let Some(run) = self.active.as_mut() else {
            return;
        };
        let Some(group) = run.chains.chain(pc).map(|c| c.group) else {
            return;
        };
        let root = group_root(&run.chains, pc);
        let instance = run
            .queues
            .iter()
            .find(|(p, _)| *p == root)
            .map(|(_, q)| q.cursor.saturating_sub(1));
        let members: Vec<u64> = run
            .chains
            .chains
            .iter()
            .filter(|c| c.group == group)
            .map(|c| c.branch_pc)
            .collect();
        if let Some(i) = instance {
            for (qpc, q) in run.queues.iter_mut() {
                if members.contains(qpc) {
                    q.remove(i);
                }
            }
        }
    }
}

/// The group-root branch PC of `pc`'s chain.
fn group_root(chains: &ChainSet, pc: u64) -> u64 {
    let mut root = pc;
    let mut hops = 0;
    while let Some(chain) = chains.chain(root) {
        match chain.parent {
            Some((p, _)) if hops < 64 => {
                root = p;
                hops += 1;
            }
            _ => break,
        }
    }
    root
}

fn chains_live_ins(chains: &ChainSet) -> Vec<Reg> {
    // Union of registers read before written in the body (upward-exposed),
    // conservative: any source register not produced earlier in the body.
    let mut written: Vec<Reg> = Vec::new();
    let mut live: Vec<Reg> = Vec::new();
    for i in &chains.body {
        for s in i.inst.srcs() {
            if !s.is_zero() && !written.contains(&s) && !live.contains(&s) {
                live.push(s);
            }
        }
        if let Some(d) = i.inst.dst() {
            if !written.contains(&d) {
                written.push(d);
            }
        }
    }
    // Loop-carried registers also need the first copy.
    for i in &chains.body {
        for s in i.inst.srcs() {
            if !s.is_zero() && !live.contains(&s) {
                live.push(s);
            }
        }
    }
    live
}

fn build_moves(regs: &[Reg], mt_regs: &[u64; NUM_REGS]) -> Vec<SideInst> {
    let mut moves: Vec<SideInst> = regs
        .iter()
        .map(|&r| SideInst {
            pc: 0,
            inst: Inst::Li {
                rd: r,
                imm: mt_regs[r.index()] as i64,
            },
            kind: SideKind::LiveInMove,
            pred_src: PredSource::Always,
            live_in_value: mt_regs[r.index()],
            mt_release: false,
            tag: 0,
        })
        .collect();
    if moves.is_empty() {
        moves.push(SideInst {
            pc: 0,
            inst: Inst::Li {
                rd: Reg::ZERO,
                imm: 0,
            },
            kind: SideKind::LiveInMove,
            pred_src: PredSource::Always,
            live_in_value: 0,
            mt_release: false,
            tag: 0,
        });
    }
    moves.last_mut().expect("nonempty").mt_release = true;
    moves
}

impl PreExecEngine for BrEngine {
    fn queue_lookup(&mut self, pc: u64) -> QueueLookup {
        let Some(run) = self.active.as_mut() else {
            return QueueLookup::NoRow;
        };
        let Some(chain) = run.chains.chain(pc).cloned() else {
            return QueueLookup::NoRow;
        };
        // Children align to their group root's last-consumed instance.
        let result = if chain.parent.is_none() {
            run.queues
                .iter_mut()
                .find(|(p, _)| *p == pc)
                .and_then(|(_, q)| q.consume_root())
        } else {
            let root = group_root(&run.chains, pc);
            let idx = run
                .queues
                .iter()
                .find(|(p, _)| *p == root)
                .map(|(_, q)| q.cursor.saturating_sub(1));
            match idx {
                Some(i) => run
                    .queues
                    .iter()
                    .find(|(p, _)| *p == pc)
                    .and_then(|(_, q)| q.peek(i)),
                None => None,
            }
        };
        match result {
            Some(v) => QueueLookup::Hit(v),
            None => QueueLookup::Untimely,
        }
    }

    fn on_mt_branch_fetched(&mut self, _pc: u64, _predicted_taken: bool) {}

    fn checkpoint(&self) -> EngineCkpt {
        match self.active.as_ref() {
            Some(run) => EngineCkpt {
                a: 0,
                b: 0,
                cursors: run.queues.iter().map(|(_, q)| q.cursor).collect(),
            },
            None => EngineCkpt::default(),
        }
    }

    fn restore(&mut self, ckpt: &EngineCkpt) {
        if let Some(run) = self.active.as_mut() {
            for (i, (_, q)) in run.queues.iter_mut().enumerate() {
                let target = ckpt.cursors.get(i).copied().unwrap_or(0);
                q.cursor = target.max(q.base);
            }
        }
    }

    fn on_mt_retire(&mut self, rec: &ExecRecord, default_wrong: bool, _cycle: u64) -> EngineCmd {
        if let Some(dst) = rec.inst.dst() {
            self.mt_regs[dst.index()] = rec.rd_value;
        }
        if let Inst::Branch { target, .. } = rec.inst {
            self.dbt.on_cond_branch_retire(rec.pc, default_wrong);
            if target < rec.pc {
                self.dbt.on_backward_branch(rec.pc, target);
            }
        }
        if let Some(c) = self.constructor.as_mut() {
            c.on_retire(rec);
        }
        self.epoch_insts += 1;
        if self.epoch_insts >= self.cfg.epoch_len {
            self.end_epoch();
        }

        if let Some(run) = self.active.as_mut() {
            if rec.pc == run.bounds.branch_pc {
                run.mt_iters += 1;
            }
            if !run.bounds.contains(rec.pc) {
                return EngineCmd::Terminate;
            }
            // Hopelessly behind: restart with fresh state.
            if run.mt_iters > run.iteration + 4 * MAX_LEAD {
                return EngineCmd::Terminate;
            }
            return EngineCmd::None;
        }

        if self.cached.contains_key(&rec.pc) {
            self.start_run(rec.pc);
            return EngineCmd::Trigger(ActiveThreads::MainPlusIto);
        }
        EngineCmd::None
    }

    fn classify(
        &mut self,
        pc: u64,
        from_queue: bool,
        mispredicted: bool,
        default_wrong: bool,
    ) -> MispredictClass {
        if mispredicted && from_queue {
            // Wrong chain outcome consumed: roll the chain group back.
            self.rollback_group(pc);
            return MispredictClass::HtWrongOutcome;
        }
        if !mispredicted {
            return if from_queue && default_wrong {
                MispredictClass::Eliminated
            } else {
                MispredictClass::NotDelinquent
            };
        }
        if self
            .active
            .as_ref()
            .is_some_and(|run| run.chains.chain(pc).is_some())
        {
            return MispredictClass::HtUntimely;
        }
        MispredictClass::NotDelinquent
    }

    fn active_threads(&self) -> ActiveThreads {
        if self.active.is_some() {
            ActiveThreads::MainPlusIto
        } else {
            ActiveThreads::MainOnly
        }
    }

    fn side_fetch(&mut self, tid: usize, _cycle: u64) -> Option<SideInst> {
        if tid != HT_A {
            return None;
        }
        let speculative = self.cfg.speculative;
        // Bimodal speculation needs `&mut self.bimodal` alongside the run;
        // split the borrow.
        let run = self.active.as_mut()?;
        if run.stopped {
            return None;
        }
        if !run.moves.is_empty() {
            return Some(run.moves.remove(0));
        }
        // Lead gating.
        if run.idx == 0 && run.iteration.saturating_sub(run.mt_iters) >= MAX_LEAD {
            return None;
        }
        let ht = run.chains.body[run.idx];
        let iter = run.iteration;
        let mut side = SideInst {
            pc: ht.pc,
            inst: ht.inst,
            kind: match ht.kind {
                HtKind::PredicateProducer { dest } => SideKind::PredProducer { dest },
                other => other.into(),
            },
            pred_src: if speculative {
                // BR-spec: children issue in parallel; triggering is
                // speculative and repaired at parent resolution.
                PredSource::Always
            } else {
                ht.pred_src
            },
            live_in_value: 0,
            mt_release: false,
            tag: iter,
        };
        // Record the speculative trigger decision for guarded chains.
        if speculative {
            if let Some(chain) = run.chains.chain(ht.pc) {
                if let Some((parent_pc, dir)) = chain.parent {
                    let parent_rec = run.iter_recs.get(&(iter, parent_pc)).copied();
                    let triggered = match parent_rec.and_then(|r| r.resolved) {
                        Some(actual) => actual == dir, // parent already resolved: exact
                        None => self.bimodal.predict(parent_pc) == dir,
                    };
                    let rec = run.iter_recs.entry((iter, ht.pc)).or_default();
                    rec.deposited = triggered;
                }
            }
        }
        // Tag SideInst with iteration for group-kill support.
        side.tag = iter;
        if run.idx + 1 >= run.chains.body.len() {
            run.idx = 0;
            run.iteration += 1;
            // Prune old per-iteration records.
            if run.iteration % 64 == 0 {
                let min = run.iteration.saturating_sub(2 * MAX_LEAD);
                run.iter_recs.retain(|(i, _), _| *i >= min);
            }
        } else {
            run.idx += 1;
        }
        Some(side)
    }

    fn side_executed(&mut self, _tid: usize, inst: &SideInst, info: &ExecInfo, _cycle: u64) {
        let speculative = self.cfg.speculative;
        let Some(run) = self.active.as_mut() else {
            return;
        };
        let iter = inst.tag;
        match inst.kind {
            SideKind::PredProducer { .. } | SideKind::HeaderBranch => {
                let pc = inst.pc;
                let chain = run.chains.chain(pc).cloned();
                let Some(chain) = chain else { return };
                if speculative {
                    // Record resolution; train the trigger predictor.
                    {
                        let rec = run.iter_recs.entry((iter, pc)).or_default();
                        rec.resolved = Some(info.taken);
                        rec.outcome = Some(info.taken);
                    }
                    self.bimodal.update(pc, info.taken, info.taken);

                    // Deposit this chain's outcome if it was (or should
                    // have been) triggered.
                    let should_deposit = match chain.parent {
                        None => true,
                        Some((parent_pc, dir)) => {
                            let parent = run.iter_recs.get(&(iter, parent_pc)).copied();
                            match parent.and_then(|r| r.resolved) {
                                Some(actual) => actual == dir,
                                None => run
                                    .iter_recs
                                    .get(&(iter, pc))
                                    .map(|r| r.deposited)
                                    .unwrap_or(false),
                            }
                        }
                    };
                    let was_speculated = run
                        .iter_recs
                        .get(&(iter, pc))
                        .map(|r| r.deposited)
                        .unwrap_or(true);
                    if should_deposit {
                        if let Some((_, q)) = run.queues.iter_mut().find(|(p, _)| *p == pc) {
                            q.deposit(iter, info.taken);
                            tlm::count(tlm::Counter::ChainDeposits);
                        }
                    }
                    let _ = was_speculated;

                    // Parent resolution repairs children speculated the
                    // wrong way: remove wrong deposits, add missed ones.
                    let children: Vec<(u64, bool)> = run
                        .chains
                        .chains
                        .iter()
                        .filter_map(|c| {
                            c.parent
                                .filter(|(p, _)| *p == pc)
                                .map(|(_, d)| (c.branch_pc, d))
                        })
                        .collect();
                    for (child_pc, dir) in children {
                        let should = info.taken == dir;
                        let child_rec = run.iter_recs.get(&(iter, child_pc)).copied();
                        if let Some(cr) = child_rec {
                            if cr.deposited && !should {
                                if let Some((_, q)) =
                                    run.queues.iter_mut().find(|(p, _)| *p == child_pc)
                                {
                                    q.remove(iter);
                                }
                                if let Some(r) = run.iter_recs.get_mut(&(iter, child_pc)) {
                                    r.deposited = false;
                                }
                            } else if !cr.deposited && should {
                                if let Some(outcome) = cr.outcome {
                                    if let Some((_, q)) =
                                        run.queues.iter_mut().find(|(p, _)| *p == child_pc)
                                    {
                                        q.deposit(iter, outcome);
                                        tlm::count(tlm::Counter::ChainDeposits);
                                    }
                                    if let Some(r) = run.iter_recs.get_mut(&(iter, child_pc)) {
                                        r.deposited = true;
                                    }
                                }
                            }
                        }
                    }
                } else {
                    // Non-spec: deposit when predication enabled (the
                    // parent's direction matched), which the pipeline has
                    // already evaluated.
                    let guarded = chain.parent.is_some();
                    if !guarded || info.enabled {
                        if let Some((_, q)) = run.queues.iter_mut().find(|(p, _)| *p == pc) {
                            q.deposit(iter, info.taken);
                            tlm::count(tlm::Counter::ChainDeposits);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn side_branch_resolved(&mut self, _tid: usize, inst: &SideInst, taken: bool) -> SideAction {
        if inst.kind == SideKind::LoopBranch && !taken {
            if let Some(run) = self.active.as_mut() {
                run.stopped = true;
            }
            return SideAction::Terminate;
        }
        SideAction::Continue
    }

    fn side_retired(&mut self, _tid: usize, _inst: &SideInst, _info: &ExecInfo, _cycle: u64) {}

    fn on_terminated(&mut self) {
        self.active = None;
    }

    fn loose_retire(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_queue_deposit_and_root_consume() {
        let mut q = OutcomeQueue::default();
        q.deposit(0, true);
        q.deposit(1, false);
        assert_eq!(q.consume_root(), Some(true));
        assert_eq!(q.consume_root(), Some(false));
        assert_eq!(q.consume_root(), None, "empty slot is untimely");
    }

    #[test]
    fn empty_consume_does_not_shift_later_instances() {
        let mut q = OutcomeQueue::default();
        // Instance 0 deposited late (after consumption), instance 1 on time.
        assert_eq!(q.consume_root(), None);
        q.deposit(0, true); // late: dies in place
        q.deposit(1, false);
        assert_eq!(q.consume_root(), Some(false), "instance 1 unshifted");
    }

    #[test]
    fn rollback_replays_via_cursor() {
        let mut q = OutcomeQueue::default();
        for i in 0..4 {
            q.deposit(i, i % 2 == 0);
        }
        let ckpt = q.cursor;
        assert_eq!(q.consume_root(), Some(true));
        assert_eq!(q.consume_root(), Some(false));
        q.cursor = ckpt;
        assert_eq!(q.consume_root(), Some(true), "replay after rollback");
    }

    #[test]
    fn remove_repairs_wrong_speculation() {
        let mut q = OutcomeQueue::default();
        q.deposit(0, true);
        q.deposit(1, false); // wrongly speculated deposit for iteration 1
        q.remove(1);
        assert_eq!(q.consume_root(), Some(true));
        assert_eq!(q.consume_root(), None);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = OutcomeQueue::default();
        q.deposit(0, true);
        assert_eq!(q.peek(0), Some(true));
        assert_eq!(q.peek(0), Some(true));
        assert_eq!(q.peek(5), None);
        assert_eq!(q.cursor, 0);
    }

    #[test]
    fn engine_starts_idle() {
        let mut e = BrEngine::new(BrConfig::speculative(10_000, 5));
        assert_eq!(e.cached_regions(), 0);
        assert_eq!(e.queue_lookup(0x40), QueueLookup::NoRow);
        assert_eq!(e.active_threads(), ActiveThreads::MainOnly);
        assert!(e.loose_retire());
    }

    #[test]
    fn classification_paths() {
        let mut e = BrEngine::new(BrConfig::speculative(10_000, 5));
        assert_eq!(
            e.classify(0x40, true, true, true),
            MispredictClass::HtWrongOutcome
        );
        assert_eq!(
            e.classify(0x40, true, false, true),
            MispredictClass::Eliminated
        );
        assert_eq!(
            e.classify(0x40, false, true, true),
            MispredictClass::NotDelinquent
        );
    }
}
