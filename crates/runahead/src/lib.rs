//! # phelps-runahead
//!
//! The Branch Runahead baseline: chain-based branch pre-execution with
//! speculative or non-speculative child-chain triggering, plugged into the
//! same multi-thread pipeline as Phelps through
//! [`phelps::sim::PreExecEngine`].
//!
//! Two run configurations mirror the paper:
//!
//! * **BR** — the main thread keeps half the frontend width, LQ, and PRF
//!   for the full run (but the whole ROB and SQ); chains run in the other
//!   half with loose (dataflow) retirement.
//! * **BR-12w** — a 12-wide core where the main thread keeps full baseline
//!   resources and the chains get a 4-wide engine of their own (Fig. 12a).
//!
//! ```no_run
//! use phelps::sim::{Mode, RunConfig};
//! use phelps_runahead::{simulate_runahead, BrVariant};
//! use phelps_workloads::suite;
//!
//! let cfg = RunConfig::scaled(Mode::Baseline);
//! let result = simulate_runahead(suite::astar().cpu, &cfg, BrVariant::Speculative);
//! println!("BR-spec IPC: {:.3}", result.stats.ipc());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chains;
pub mod engine;

pub use chains::{Chain, ChainSet};
pub use engine::{BrConfig, BrEngine};

use phelps::sim::{Pipeline, RunConfig, SimResult, ThreadQuota};
use phelps_isa::Cpu;
use phelps_uarch::config::CoreConfig;

/// Which Branch Runahead configuration to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BrVariant {
    /// Speculative child-chain triggering (BR-spec).
    Speculative,
    /// Non-speculative triggering (BR-non-spec).
    NonSpeculative,
    /// Speculative triggering on the 12-wide core (BR-12w).
    TwelveWide,
}

/// Runs a workload under Branch Runahead.
///
/// The partition is held for the full run (the paper's §VI methodology):
/// the main thread gets half the frontend width, LQ and PRF but the whole
/// ROB and SQ; BR-12w gives the main thread full baseline resources on a
/// 12-wide core.
pub fn simulate_runahead(cpu: Cpu, cfg: &RunConfig, variant: BrVariant) -> SimResult {
    let base = CoreConfig::paper_default();
    let (core, mt_quota) = match variant {
        BrVariant::TwelveWide => (
            CoreConfig::br_12_wide(),
            ThreadQuota {
                width: base.width,
                rob: base.rob,
                lq: base.lq,
                sq: base.sq,
                prf: base.prf,
            },
        ),
        _ => (
            base.clone(),
            ThreadQuota {
                width: base.width / 2,
                rob: base.rob, // whole ROB to the main thread
                lq: base.lq / 2,
                sq: base.sq, // whole SQ to the main thread
                prf: base.prf / 2,
            },
        ),
    };
    let side_quota = ThreadQuota {
        width: base.width / 2,
        rob: base.rob / 2, // usage-counter budget for chains
        lq: base.lq / 2,
        sq: 8,
        prf: base.prf / 2,
    };

    let speculative = variant != BrVariant::NonSpeculative;
    let mut engine = BrEngine::new(BrConfig {
        speculative,
        epoch_len: cfg.epoch_len,
        delinq_threshold: cfg.delinq_threshold(),
    });
    let mut regs = [0u64; phelps_isa::NUM_REGS];
    for r in phelps_isa::Reg::all() {
        regs[r.index()] = cpu.reg(r);
    }
    engine.seed_mt_regs(regs);

    let mode = phelps::sim::Mode::Baseline;
    let mut pipeline = Pipeline::new(cpu, core, &mode, Some(engine), cfg.max_mt_insts);
    pipeline.set_quotas(mt_quota, side_quota);
    pipeline.run()
}
