//! Chain extraction and chain-group structure (paper §II and §VI).
//!
//! Branch Runahead builds one or more *chains* per delinquent branch:
//! backward slices with no internal control flow, terminated at a guarding
//! branch, an affector branch, or the prior instance of the branch itself.
//! Chains link parent→child: a parent's outcome (in the triggering
//! direction) launches its children. A *chain group* is a top-level
//! (self-dependent) chain plus all its descendants; order is respected
//! within a group but not across groups — astar's `makebound2` yields
//! eight independent `{b_odd, b_even}` groups (paper Fig. 10a).
//!
//! We reuse the Phelps constructor's slicing output (a loop-flattened
//! instruction sequence with learned immediate guards) and re-interpret it
//! chain-wise: each predicate producer is a chain terminal; its guard
//! chain, when present, is its parent; stores are excluded (the paper's
//! methodology excludes stores from BR to avoid merging the groups).

use phelps::htc::{HelperThread, HtInst, HtKind};
use phelps::predicate::PredSource;
use std::collections::HashMap;

/// One delinquent branch's chain metadata.
#[derive(Clone, Debug)]
pub struct Chain {
    /// The branch PC this chain resolves.
    pub branch_pc: u64,
    /// Parent chain's branch PC and the direction that triggers this chain.
    pub parent: Option<(u64, bool)>,
    /// Index of the chain group this chain belongs to.
    pub group: usize,
}

/// The full chain structure for a loop region.
#[derive(Clone, Debug)]
pub struct ChainSet {
    /// Chains by branch PC.
    pub chains: Vec<Chain>,
    /// Number of independent chain groups.
    pub groups: usize,
    /// The loop-flattened instruction sequence executed per iteration
    /// (stores removed; predicate producers are chain terminals).
    pub body: Vec<HtInst>,
}

impl ChainSet {
    /// Derives the chain structure from a constructed helper thread.
    ///
    /// Stores are dropped (paper §VI: "we excluded stores from BR");
    /// predicate-producer guard links become parent→child chain edges;
    /// unguarded producers found the chain groups.
    pub fn from_helper_thread(thread: &HelperThread) -> ChainSet {
        let body: Vec<HtInst> = thread
            .insts
            .iter()
            .filter(|i| i.kind != HtKind::Store)
            .copied()
            .collect();

        // Map predicate register -> producing branch PC.
        let pred_owner: HashMap<u8, u64> = body
            .iter()
            .filter_map(|i| match i.kind {
                HtKind::PredicateProducer { dest } => Some((dest, i.pc)),
                _ => None,
            })
            .collect();

        let mut chains: Vec<Chain> = body
            .iter()
            .filter_map(|i| match i.kind {
                HtKind::PredicateProducer { .. } | HtKind::HeaderBranch => {
                    let parent = match i.pred_src {
                        PredSource::Guarded { reg, direction } => {
                            pred_owner.get(&reg).map(|&pc| (pc, direction))
                        }
                        // Branch Runahead has no OR-trigger concept; treat
                        // the first source as the parent (the other path's
                        // trigger is simply missed — a BR limitation).
                        PredSource::GuardedOr { a, .. } => {
                            pred_owner.get(&a.0).map(|&pc| (pc, a.1))
                        }
                        PredSource::Always => None,
                    };
                    Some(Chain {
                        branch_pc: i.pc,
                        parent,
                        group: usize::MAX,
                    })
                }
                _ => None,
            })
            .collect();

        // Group assignment: walk each chain to its root.
        let mut groups = 0usize;
        let parent_of: HashMap<u64, Option<(u64, bool)>> =
            chains.iter().map(|c| (c.branch_pc, c.parent)).collect();
        let mut root_group: HashMap<u64, usize> = HashMap::new();
        for c in &mut chains {
            let mut root = c.branch_pc;
            let mut hops = 0;
            while let Some(Some((p, _))) = parent_of.get(&root) {
                root = *p;
                hops += 1;
                if hops > 64 {
                    break; // defensive: malformed guard cycle
                }
            }
            let g = *root_group.entry(root).or_insert_with(|| {
                let g = groups;
                groups += 1;
                g
            });
            c.group = g;
        }

        ChainSet {
            chains,
            groups,
            body,
        }
    }

    /// The chain for `pc`, if any.
    pub fn chain(&self, pc: u64) -> Option<&Chain> {
        self.chains.iter().find(|c| c.branch_pc == pc)
    }

    /// All branch PCs with chains (the outcome-queue tags).
    pub fn branch_pcs(&self) -> Vec<u64> {
        self.chains.iter().map(|c| c.branch_pc).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phelps::htc::ThreadKind;
    use phelps_isa::{AluOp, BranchCond, Inst, Reg};

    fn producer(pc: u64, dest: u8, pred_src: PredSource) -> HtInst {
        HtInst {
            pc,
            inst: Inst::Branch {
                cond: BranchCond::Eq,
                rs1: Reg::T0,
                rs2: Reg::ZERO,
                target: pc + 8,
            },
            kind: HtKind::PredicateProducer { dest },
            pred_src,
        }
    }

    fn plain(pc: u64) -> HtInst {
        HtInst {
            pc,
            inst: Inst::AluImm {
                op: AluOp::Add,
                rd: Reg::T0,
                rs1: Reg::T0,
                imm: 1,
            },
            kind: HtKind::Plain,
            pred_src: PredSource::Always,
        }
    }

    fn store(pc: u64, pred_src: PredSource) -> HtInst {
        HtInst {
            pc,
            inst: Inst::Store {
                width: phelps_isa::MemWidth::D,
                base: Reg::T1,
                src: Reg::T0,
                offset: 0,
            },
            kind: HtKind::Store,
            pred_src,
        }
    }

    fn loop_branch(pc: u64) -> HtInst {
        HtInst {
            pc,
            inst: Inst::Branch {
                cond: BranchCond::Ne,
                rs1: Reg::A0,
                rs2: Reg::A1,
                target: 0x100,
            },
            kind: HtKind::LoopBranch,
            pred_src: PredSource::Always,
        }
    }

    /// astar-shaped thread: two independent pairs b1→b2 and b3→b4.
    fn astar_like_thread() -> HelperThread {
        HelperThread {
            kind: ThreadKind::InnerOnly,
            insts: vec![
                plain(0x100),
                producer(0x104, 1, PredSource::Always), // b1
                producer(
                    0x108,
                    2,
                    PredSource::Guarded {
                        reg: 1,
                        direction: false,
                    },
                ), // b2 guarded by b1
                store(
                    0x10c,
                    PredSource::Guarded {
                        reg: 2,
                        direction: false,
                    },
                ), // s1
                plain(0x110),
                producer(0x114, 3, PredSource::Always), // b3
                producer(
                    0x118,
                    4,
                    PredSource::Guarded {
                        reg: 3,
                        direction: false,
                    },
                ), // b4 guarded by b3
                loop_branch(0x11c),
            ],
            live_ins_mt: vec![Reg::A0],
            live_ins_ot: vec![],
            queue_rows: vec![0x104, 0x108, 0x114, 0x118],
        }
    }

    #[test]
    fn stores_are_excluded() {
        let cs = ChainSet::from_helper_thread(&astar_like_thread());
        assert!(cs.body.iter().all(|i| i.kind != HtKind::Store));
        assert_eq!(cs.body.len(), 7, "8 insts minus the store");
    }

    #[test]
    fn guard_links_become_parent_edges() {
        let cs = ChainSet::from_helper_thread(&astar_like_thread());
        assert_eq!(cs.chain(0x104).unwrap().parent, None);
        assert_eq!(cs.chain(0x108).unwrap().parent, Some((0x104, false)));
        assert_eq!(cs.chain(0x114).unwrap().parent, None);
        assert_eq!(cs.chain(0x118).unwrap().parent, Some((0x114, false)));
    }

    #[test]
    fn independent_pairs_form_separate_groups() {
        let cs = ChainSet::from_helper_thread(&astar_like_thread());
        assert_eq!(cs.groups, 2, "two chain groups, as in Fig. 10a");
        assert_eq!(
            cs.chain(0x104).unwrap().group,
            cs.chain(0x108).unwrap().group
        );
        assert_eq!(
            cs.chain(0x114).unwrap().group,
            cs.chain(0x118).unwrap().group
        );
        assert_ne!(
            cs.chain(0x104).unwrap().group,
            cs.chain(0x114).unwrap().group
        );
    }

    #[test]
    fn branch_pcs_enumerate_queue_tags() {
        let cs = ChainSet::from_helper_thread(&astar_like_thread());
        let mut pcs = cs.branch_pcs();
        pcs.sort_unstable();
        assert_eq!(pcs, vec![0x104, 0x108, 0x114, 0x118]);
    }
}
