//! phelps-serve: simulation-as-a-service for the Phelps reproduction.
//!
//! A std-only TCP daemon that accepts experiment cells — the same
//! (workload × `RunConfig`) shape the batch runner executes — over a
//! newline-delimited JSON protocol, runs them on a bounded worker pool,
//! and streams per-epoch telemetry ([`EpochSample`] IPC/MPKI/stall
//! series) to the submitting client *while the simulation runs*,
//! followed by the final stats + misprediction breakdown.
//!
//! Identical cells are deduplicated at three levels (in-flight
//! subscription, daemon session memory, the shared on-disk result
//! cache), so N clients asking for the same cell cost one simulation.
//! See [`server`] for the life cycle and shutdown-drain semantics,
//! [`protocol`] for the wire format, and [`client`] for the blocking
//! client the CLI and tests use.
//!
//! [`EpochSample`]: phelps_telemetry::EpochSample

pub mod client;
pub mod codec;
pub mod protocol;
pub mod server;

pub use client::{Client, JobOutcome};
pub use protocol::{Dedup, Request, Response, ServerStats, Submit};
pub use server::{default_cache_dir, serve_on, spawn, ServeConfig, ServeReport, ServerHandle};
