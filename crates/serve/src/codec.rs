//! Newline-delimited framing over any byte stream.
//!
//! [`FrameReader`] is deliberately stateful: the daemon's per-connection
//! readers poll with a socket read timeout so they can notice shutdown,
//! and a frame that arrives split across a timeout boundary must not
//! lose its first half. Partial bytes stay buffered in the reader across
//! `WouldBlock`/`TimedOut` errors; only complete lines are surfaced.

use std::io::{self, Read, Write};

/// Upper bound on one frame (one JSON line), newline excluded. Requests
/// are tiny and responses are bounded by the stats/breakdown body, so
/// anything larger is a protocol violation, not a big message.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

/// Incremental line reader with a persistent partial-frame buffer.
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    inner: R,
    pending: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> FrameReader<R> {
        FrameReader {
            inner,
            pending: Vec::new(),
        }
    }

    /// Reads the next frame. `Ok(None)` means clean EOF. Timeout errors
    /// (`WouldBlock`/`TimedOut`) propagate with any partial frame kept
    /// buffered, so the caller can simply retry.
    pub fn read_frame(&mut self) -> io::Result<Option<String>> {
        loop {
            if let Some(i) = self.pending.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.pending.drain(..=i).collect();
                line.pop();
                return Self::finish_line(line).map(Some);
            }
            if self.pending.len() > MAX_FRAME_BYTES {
                self.pending.clear();
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("frame exceeds {MAX_FRAME_BYTES} bytes"),
                ));
            }
            let mut chunk = [0u8; 4096];
            let n = self.inner.read(&mut chunk)?;
            if n == 0 {
                if self.pending.is_empty() {
                    return Ok(None);
                }
                // EOF with trailing bytes: surface them as a final
                // (unterminated) frame rather than dropping them.
                let line = std::mem::take(&mut self.pending);
                return Self::finish_line(line).map(Some);
            }
            self.pending.extend_from_slice(&chunk[..n]);
        }
    }

    fn finish_line(mut line: Vec<u8>) -> io::Result<String> {
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        String::from_utf8(line).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("non-UTF-8 frame: {e}"))
        })
    }
}

/// Writes one frame (the line must not itself contain a newline) and
/// flushes, so the peer sees it immediately.
pub fn write_frame(w: &mut impl Write, line: &str) -> io::Result<()> {
    if line.as_bytes().contains(&b'\n') {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame contains an embedded newline",
        ));
    }
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A reader that yields its scripted chunks one `read` at a time,
    /// mimicking TCP segmentation.
    struct Chunked {
        chunks: Vec<Vec<u8>>,
    }

    impl Read for Chunked {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.chunks.is_empty() {
                return Ok(0);
            }
            let chunk = self.chunks.remove(0);
            buf[..chunk.len()].copy_from_slice(&chunk);
            Ok(chunk.len())
        }
    }

    #[test]
    fn frames_split_across_reads_reassemble() {
        let mut r = FrameReader::new(Chunked {
            chunks: vec![b"{\"a\":".to_vec(), b"1}\n{\"b\":2}\n".to_vec()],
        });
        assert_eq!(r.read_frame().unwrap().as_deref(), Some("{\"a\":1}"));
        assert_eq!(r.read_frame().unwrap().as_deref(), Some("{\"b\":2}"));
        assert_eq!(r.read_frame().unwrap(), None);
    }

    #[test]
    fn crlf_and_unterminated_tail_are_tolerated() {
        let mut r = FrameReader::new(Cursor::new(b"one\r\ntwo".to_vec()));
        assert_eq!(r.read_frame().unwrap().as_deref(), Some("one"));
        assert_eq!(r.read_frame().unwrap().as_deref(), Some("two"));
        assert_eq!(r.read_frame().unwrap(), None);
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let big = vec![b'x'; MAX_FRAME_BYTES + 2];
        let mut r = FrameReader::new(Cursor::new(big));
        let err = r.read_frame().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn write_frame_rejects_embedded_newline() {
        let mut out = Vec::new();
        assert!(write_frame(&mut out, "a\nb").is_err());
        write_frame(&mut out, "ok").unwrap();
        assert_eq!(out, b"ok\n");
    }
}
