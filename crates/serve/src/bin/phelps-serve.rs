//! CLI front end: `phelps-serve serve|submit|stats|ping|shutdown`.
//!
//! `serve` runs the daemon in the foreground until a `shutdown` request
//! drains it. The other subcommands are thin clients; `submit` prints
//! every received frame as a raw JSON line (greppable by scripts) and
//! exits 0 on a result, 3 on busy, 1 on error.

use phelps_serve::{protocol, Client, Request, ServeConfig, Submit};
use std::io::Write;
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;

/// Prints one frame line; `false` means stdout is gone (e.g. piped to
/// `head`), which a stream-printing CLI must treat as a normal exit,
/// not a panic.
fn print_frame(line: &str) -> bool {
    writeln!(std::io::stdout(), "{line}").is_ok()
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: phelps-serve <command> [options]\n\
         \n\
         commands:\n\
         \x20 serve     [--addr=HOST:PORT] [--workers=N] [--queue-cap=N]\n\
         \x20           [--cache-dir=PATH] [--no-cache] [--session-cap=N]\n\
         \x20           [--proxy-model=PATH] [--no-proxy]\n\
         \x20 submit    --port=N --workload=NAME [--mode=LABEL]\n\
         \x20           [--region=N] [--epoch=N] [--id=STRING]\n\
         \x20           [--corun=NAME]  (co-schedule against a baseline neighbor)\n\
         \x20 stats     --port=N\n\
         \x20 ping      --port=N\n\
         \x20 shutdown  --port=N\n\
         \n\
         modes: {}",
        protocol::mode_names().join(", ")
    );
    ExitCode::from(2)
}

struct Opts {
    flags: Vec<(String, String)>,
}

impl Opts {
    fn parse(args: &[String]) -> Option<Opts> {
        let mut flags = Vec::new();
        for a in args {
            let body = a.strip_prefix("--")?;
            match body.split_once('=') {
                Some((k, v)) => flags.push((k.to_string(), v.to_string())),
                None => flags.push((body.to_string(), String::new())),
            }
        }
        Some(Opts { flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_u64(&self, key: &str) -> Result<Option<u64>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("--{key} must be a non-negative integer")),
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let Some(opts) = Opts::parse(rest) else {
        return usage();
    };
    let run = match cmd.as_str() {
        "serve" => cmd_serve(&opts),
        "submit" => cmd_submit(&opts),
        "stats" => cmd_simple(&opts, Request::Stats),
        "ping" => cmd_simple(&opts, Request::Ping),
        "shutdown" => cmd_simple(&opts, Request::Shutdown),
        _ => return usage(),
    };
    match run {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_serve(opts: &Opts) -> Result<ExitCode, String> {
    let mut cfg = ServeConfig {
        addr: opts.get("addr").unwrap_or("127.0.0.1:0").to_string(),
        ..ServeConfig::default()
    };
    if let Some(w) = opts.get_u64("workers")? {
        cfg.workers = w as usize;
    }
    if let Some(q) = opts.get_u64("queue-cap")? {
        cfg.queue_capacity = (q as usize).max(1);
    }
    if let Some(s) = opts.get_u64("session-cap")? {
        cfg.session_capacity = s as usize;
    }
    if opts.get("no-cache").is_some() {
        cfg.cache_dir = None;
    } else if let Some(dir) = opts.get("cache-dir") {
        cfg.cache_dir = Some(PathBuf::from(dir));
    }
    if opts.get("no-proxy").is_some() {
        cfg.proxy_model = None;
    } else if let Some(model) = opts.get("proxy-model") {
        cfg.proxy_model = Some(PathBuf::from(model));
    }
    if let Some(dir) = &cfg.cache_dir {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create cache dir {}: {e}", dir.display()))?;
    }
    let listener =
        TcpListener::bind(&cfg.addr).map_err(|e| format!("cannot bind {}: {e}", cfg.addr))?;
    let report = phelps_serve::serve_on(listener, cfg).map_err(|e| e.to_string())?;
    eprintln!(
        "[serve] {} simulated, {} dedup (in-flight {}, session {}, disk {}), \
         {} predicted, {} busy",
        report.stats.simulated,
        report.stats.dedup_in_flight + report.stats.session_hits + report.stats.disk_hits,
        report.stats.dedup_in_flight,
        report.stats.session_hits,
        report.stats.disk_hits,
        report.stats.proxy_predicted,
        report.stats.busy_rejections,
    );
    Ok(ExitCode::SUCCESS)
}

fn connect(opts: &Opts) -> Result<Client, String> {
    let port = opts
        .get_u64("port")?
        .ok_or("missing --port=N")?
        .try_into()
        .map_err(|_| "--port out of range".to_string())?;
    Client::connect_local(port).map_err(|e| format!("cannot connect to 127.0.0.1:{port}: {e}"))
}

fn cmd_simple(opts: &Opts, req: Request) -> Result<ExitCode, String> {
    let mut client = connect(opts)?;
    client.send(&req).map_err(|e| e.to_string())?;
    let resp = client.recv().map_err(|e| e.to_string())?;
    print_frame(&protocol::encode_response(&resp));
    Ok(ExitCode::SUCCESS)
}

fn cmd_submit(opts: &Opts) -> Result<ExitCode, String> {
    let workload = opts.get("workload").ok_or("missing --workload=NAME")?;
    let submit = Submit {
        id: opts.get("id").unwrap_or("cli").to_string(),
        workload: workload.to_string(),
        mode: opts.get("mode").unwrap_or("baseline").to_string(),
        region: opts.get_u64("region")?,
        epoch: opts.get_u64("epoch")?,
        corun: opts.get("corun").map(str::to_string),
    };
    let id = submit.id.clone();
    let mut client = connect(opts)?;
    client
        .send(&Request::Submit(submit))
        .map_err(|e| e.to_string())?;
    // Print raw frames as they stream so callers can watch/grep live.
    loop {
        let resp = client.recv().map_err(|e| e.to_string())?;
        if !print_frame(&protocol::encode_response(&resp)) {
            return Ok(ExitCode::SUCCESS);
        }
        match &resp {
            phelps_serve::Response::Result { id: rid, .. } if *rid == id => {
                return Ok(ExitCode::SUCCESS)
            }
            phelps_serve::Response::Busy { id: rid, .. } if *rid == id => {
                return Ok(ExitCode::from(3))
            }
            phelps_serve::Response::Error { id: rid, .. } if *rid == id || rid.is_empty() => {
                return Ok(ExitCode::FAILURE)
            }
            _ => {}
        }
    }
}
