//! The daemon: accept loop, per-connection reader/writer threads, the
//! bounded submission queue, and the worker pool.
//!
//! ## Job life cycle
//!
//! A `submit` frame is resolved against the job table in order:
//!
//! 1. **session** — an identical cell completed earlier in this daemon's
//!    lifetime: its epoch samples are replayed (`"replay":true`) and the
//!    result frame answers immediately.
//! 2. **in-flight** — an identical cell is executing right now: the
//!    epochs streamed so far are replayed, then the subscriber rides the
//!    live stream to the shared result.
//! 3. **cached** — the shared on-disk result cache (the same files the
//!    batch runner reads/writes) already holds the cell.
//! 4. **predicted** — with a proxy model loaded (`PHELPS_PROXY`), a
//!    non-baseline cell whose baseline *anchor* is already known (in
//!    session memory or the disk cache) and whose prediction clears the
//!    model's confidence gate answers immediately with synthesized
//!    counters (`"dedup":"predicted"`); predicted results never enter
//!    the cache or session memory.
//! 5. **fresh** — the cell is pushed onto the bounded submission queue;
//!    a full queue answers `busy` instead of stalling the accept loop.
//!
//! Workers pop the queue and execute through the same
//! [`execute_cell`] entry point as the batch runner, with a telemetry
//! [`SampleSink`] that broadcasts each closing epoch to every
//! subscriber. A client that disconnects mid-stream loses nothing but
//! its own copy: the job runs to completion and the result still lands
//! in the cache and the session table.
//!
//! ## Shutdown
//!
//! `shutdown` sets a flag, wakes the queue and the accept loop (via a
//! self-connection), and then *drains*: queued and executing jobs
//! complete and their frames are delivered. Every thread — workers,
//! readers, writers — lives inside one [`std::thread::scope`], so the
//! daemon cannot exit with a leaked thread; a non-empty queue or job
//! table after the scope joins is reported as an error.
//!
//! [`SampleSink`]: phelps_telemetry::SampleSink

use crate::codec::{self, FrameReader};
use crate::protocol::{
    encode_response, parse_mode, parse_request, Dedup, Request, Response, ServerStats, Submit,
};
use phelps::sim::{simulate_corun_pair, Mode, RunConfig, SimResult};
use phelps_bench::ckpt_support::CkptPolicy;
use phelps_bench::exec::{execute_cell_prepared, CellOutcome, CellRequest, ExecPolicy};
use phelps_bench::runner::cache;
use phelps_bench::shard;
use phelps_bench::trace;
use phelps_telemetry as tlm;
use phelps_workloads::suite;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::Duration;

/// How often blocked reads re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker-pool size; 0 = `PHELPS_JOBS` or available parallelism.
    pub workers: usize,
    /// Bounded submission-queue capacity; a full queue answers `busy`.
    pub queue_capacity: usize,
    /// Shared result cache; `None` disables read-through/write-through.
    pub cache_dir: Option<PathBuf>,
    /// Backoff hint carried on `busy` responses.
    pub retry_after_ms: u64,
    /// Completed jobs kept in session memory for epoch replay.
    pub session_capacity: usize,
    /// Proxy model for the predicted fast path; `None` disables it.
    pub proxy_model: Option<PathBuf>,
    /// Suppress the listening/shutdown log lines.
    pub quiet: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            queue_capacity: 64,
            cache_dir: default_cache_dir(),
            retry_after_ms: 100,
            session_capacity: 256,
            proxy_model: default_proxy_model(),
            quiet: false,
        }
    }
}

/// The batch runner's cache-directory policy, shared verbatim:
/// `PHELPS_CACHE_DIR` overrides `results/cache/`; `PHELPS_NO_CACHE=1`
/// disables the cache entirely.
pub fn default_cache_dir() -> Option<PathBuf> {
    if std::env::var("PHELPS_NO_CACHE").is_ok_and(|v| v != "0") {
        return None;
    }
    Some(
        std::env::var("PHELPS_CACHE_DIR")
            .ok()
            .filter(|s| !s.is_empty())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("results/cache")),
    )
}

/// The batch runner's proxy policy, shared verbatim: a predicted fast
/// path only when `PHELPS_PROXY` asks for one (`triage`/`strict`), with
/// the model at `PHELPS_PROXY_MODEL` (default `results/proxy/model.json`).
pub fn default_proxy_model() -> Option<PathBuf> {
    match phelps_bench::proxy_mode() {
        phelps_bench::ProxyMode::Off => None,
        _ => Some(phelps_bench::proxy_model_path()),
    }
}

/// What the daemon reports after a clean shutdown.
#[derive(Clone, Copy, Debug)]
pub struct ServeReport {
    /// Final counter snapshot.
    pub stats: ServerStats,
    /// Worker-pool size that ran.
    pub workers: usize,
}

/// A daemon running on a background thread (tests and embedding).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    thread: thread::JoinHandle<io::Result<ServeReport>>,
}

impl ServerHandle {
    /// The bound address (the ephemeral port is resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// Waits for the daemon to exit (something must send `shutdown`).
    pub fn join(self) -> io::Result<ServeReport> {
        self.thread
            .join()
            .unwrap_or_else(|_| Err(io::Error::other("server thread panicked")))
    }
}

/// Binds `cfg.addr` and runs the daemon on a background thread.
pub fn spawn(cfg: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let thread = thread::Builder::new()
        .name("phelps-serve".to_string())
        .spawn(move || serve_on(listener, cfg))?;
    Ok(ServerHandle { addr, thread })
}

/// One queued cell.
struct Job {
    fingerprint: String,
    request: CellRequest,
    run_cfg: RunConfig,
    workload: String,
    mode_label: String,
    /// Shard decomposition captured at submit time (`PHELPS_SHARDS`),
    /// so a mid-session environment change can't split one fingerprint
    /// across two decompositions.
    shards: usize,
    /// Co-run neighbor workload; `Some` routes execution through the
    /// two-tenant shared-uncore engine (monolithic — co-run timing is a
    /// cross-tenant interleaving and cannot be checkpoint-sharded).
    corun: Option<String>,
}

/// A client subscribed to one job's frame stream.
struct Sub {
    id: String,
    tx: mpsc::Sender<String>,
}

/// A completed job kept in session memory for replay.
struct DoneRecord {
    epochs: Vec<tlm::EpochSample>,
    result: phelps::sim::SimResult,
}

enum JobEntry {
    InFlight {
        backlog: Vec<tlm::EpochSample>,
        subs: Vec<Sub>,
    },
    Done(Box<DoneRecord>),
}

#[derive(Default)]
struct JobTable {
    entries: HashMap<String, JobEntry>,
    /// Completion order of `Done` entries, for session eviction.
    done_order: VecDeque<String>,
}

struct Shared {
    cfg: ServeConfig,
    addr: SocketAddr,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    jobs: Mutex<JobTable>,
    shutdown: AtomicBool,
    accepted: AtomicU64,
    simulated: AtomicU64,
    dedup_in_flight: AtomicU64,
    session_hits: AtomicU64,
    disk_hits: AtomicU64,
    proxy_predicted: AtomicU64,
    busy_rejections: AtomicU64,
    malformed: AtomicU64,
    /// Proxy model for the predicted fast path, loaded once at startup.
    proxy: Option<phelps_proxy::ProxyModel>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Shared {
    fn new(cfg: ServeConfig, addr: SocketAddr) -> Shared {
        let proxy =
            cfg.proxy_model.as_deref().and_then(|path| {
                match phelps_proxy::ProxyModel::load(path) {
                    Ok(m) => Some(m),
                    Err(e) => {
                        eprintln!("warning: proxy fast path disabled: {e}");
                        None
                    }
                }
            });
        Shared {
            cfg,
            addr,
            proxy,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            jobs: Mutex::new(JobTable::default()),
            shutdown: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            simulated: AtomicU64::new(0),
            dedup_in_flight: AtomicU64::new(0),
            session_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            proxy_predicted: AtomicU64::new(0),
            busy_rejections: AtomicU64::new(0),
            malformed: AtomicU64::new(0),
        }
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Sets the shutdown flag, wakes idle workers, and unblocks the
    /// accept loop with a throwaway self-connection.
    fn initiate_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.queue_cv.notify_all();
        let _ = TcpStream::connect(self.addr);
    }

    fn snapshot(&self) -> ServerStats {
        let queue_depth = lock(&self.queue).len() as u64;
        let in_flight = lock(&self.jobs)
            .entries
            .values()
            .filter(|e| matches!(e, JobEntry::InFlight { .. }))
            .count() as u64;
        ServerStats {
            accepted: self.accepted.load(Ordering::SeqCst),
            simulated: self.simulated.load(Ordering::SeqCst),
            dedup_in_flight: self.dedup_in_flight.load(Ordering::SeqCst),
            session_hits: self.session_hits.load(Ordering::SeqCst),
            disk_hits: self.disk_hits.load(Ordering::SeqCst),
            proxy_predicted: self.proxy_predicted.load(Ordering::SeqCst),
            busy_rejections: self.busy_rejections.load(Ordering::SeqCst),
            malformed: self.malformed.load(Ordering::SeqCst),
            queue_depth,
            in_flight,
        }
    }
}

fn effective_workers(cfg: &ServeConfig) -> usize {
    if cfg.workers > 0 {
        return cfg.workers;
    }
    match std::env::var("PHELPS_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    }
}

/// Runs the daemon on an already-bound listener until a `shutdown`
/// request drains it. This is the blocking entry point; [`spawn`] wraps
/// it for embedding.
pub fn serve_on(listener: TcpListener, cfg: ServeConfig) -> io::Result<ServeReport> {
    let addr = listener.local_addr()?;
    let workers = effective_workers(&cfg);
    let quiet = cfg.quiet;
    let shared = Arc::new(Shared::new(cfg, addr));
    if !quiet {
        println!("[serve] listening on {addr} ({workers} workers)");
        use std::io::Write;
        let _ = io::stdout().flush();
    }

    thread::scope(|s| {
        for _ in 0..workers {
            let shared = Arc::clone(&shared);
            s.spawn(move || worker_loop(&shared));
        }
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if shared.shutting_down() {
                        break; // the self-connection (or a straggler)
                    }
                    let shared = Arc::clone(&shared);
                    s.spawn(move || connection(s, &shared, stream));
                }
                Err(_) => {
                    if shared.shutting_down() {
                        break;
                    }
                }
            }
        }
    });

    // Every worker, reader, and writer has joined. Anything left in the
    // queue or the job table means the drain logic is broken.
    let leftover = lock(&shared.queue).len();
    let open = lock(&shared.jobs)
        .entries
        .values()
        .filter(|e| matches!(e, JobEntry::InFlight { .. }))
        .count();
    if leftover > 0 || open > 0 {
        return Err(io::Error::other(format!(
            "unclean shutdown: {leftover} queued, {open} in-flight jobs leaked"
        )));
    }
    if !quiet {
        println!("[serve] shutdown clean");
    }
    Ok(ServeReport {
        stats: shared.snapshot(),
        workers,
    })
}

/// One client connection: a polling reader (this thread) plus a writer
/// thread draining an unbounded frame channel. Job broadcasts clone the
/// channel sender, so result frames outlive the reader if the client is
/// merely slow — and are dropped harmlessly if it disconnected.
fn connection<'scope>(
    s: &'scope thread::Scope<'scope, '_>,
    shared: &Arc<Shared>,
    stream: TcpStream,
) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let Ok(mut write_half) = stream.try_clone() else {
        return;
    };
    let (tx, rx) = mpsc::channel::<String>();
    s.spawn(move || {
        for frame in rx {
            if codec::write_frame(&mut write_half, &frame).is_err() {
                break; // peer gone; remaining frames drop with the channel
            }
        }
    });

    let mut reader = FrameReader::new(stream);
    loop {
        match reader.read_frame() {
            Ok(None) => break, // client EOF
            Ok(Some(line)) => handle_frame(shared, &line, &tx),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutting_down() {
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Oversized or non-UTF-8 frame: the rest of the stream
                // is unframeable, so answer and hang up.
                shared.malformed.fetch_add(1, Ordering::SeqCst);
                let _ = tx.send(encode_response(&Response::Error {
                    id: String::new(),
                    reason: e.to_string(),
                }));
                break;
            }
            Err(_) => break,
        }
    }
}

fn handle_frame(shared: &Arc<Shared>, line: &str, tx: &mpsc::Sender<String>) {
    let send = |resp: &Response| {
        let _ = tx.send(encode_response(resp));
    };
    match parse_request(line) {
        Err(reason) => {
            // Malformed JSON on an intact framing layer: report and keep
            // the connection alive.
            shared.malformed.fetch_add(1, Ordering::SeqCst);
            send(&Response::Error {
                id: String::new(),
                reason,
            });
        }
        Ok(Request::Ping) => send(&Response::Pong),
        Ok(Request::Stats) => send(&Response::Stats(shared.snapshot())),
        Ok(Request::Shutdown) => {
            send(&Response::ShutdownAck);
            shared.initiate_shutdown();
        }
        Ok(Request::Submit(sub)) => handle_submit(shared, sub, tx),
    }
}

fn reject(shared: &Shared, tx: &mpsc::Sender<String>, id: &str, reason: String) {
    shared.malformed.fetch_add(1, Ordering::SeqCst);
    let _ = tx.send(encode_response(&Response::Error {
        id: id.to_string(),
        reason,
    }));
}

fn known_workload(name: &str) -> bool {
    // The name lists cover the figure sweeps; the factory probe also
    // admits extras like `bfs_uniform` (the co-run neighbor input).
    suite::gap_names().contains(&name)
        || suite::spec_names().contains(&name)
        || suite::gap_workload(name).is_some()
}

fn handle_submit(shared: &Arc<Shared>, sub: Submit, tx: &mpsc::Sender<String>) {
    let send = |resp: &Response| {
        let _ = tx.send(encode_response(resp));
    };
    if shared.shutting_down() {
        let _ = tx.send(encode_response(&Response::Error {
            id: sub.id,
            reason: "daemon is shutting down".to_string(),
        }));
        return;
    }
    let Some(mode) = parse_mode(&sub.mode) else {
        reject(
            shared,
            tx,
            &sub.id,
            format!(
                "unknown mode {:?} (expected one of {})",
                sub.mode,
                crate::protocol::mode_names().join(", ")
            ),
        );
        return;
    };
    if !known_workload(&sub.workload) {
        reject(
            shared,
            tx,
            &sub.id,
            format!("unknown workload {:?}", sub.workload),
        );
        return;
    }
    if let Some(peer) = &sub.corun {
        if !known_workload(peer) {
            reject(
                shared,
                tx,
                &sub.id,
                format!("unknown corun workload {peer:?}"),
            );
            return;
        }
    }
    let region = sub.region.unwrap_or_else(phelps_bench::region_len).max(1);
    let epoch = sub.epoch.unwrap_or_else(phelps_bench::epoch_len).max(1);
    let run_cfg = RunConfig::quick(mode, region, epoch);
    // The shard decomposition is part of the result's identity (an
    // N-shard run is a sampling approximation of the monolithic run),
    // so it joins the fingerprint — but only when sharding is actually
    // on, keeping historical unsharded cache entries valid. Co-run cells
    // instead carry the neighbor's identity (the batch runner's
    // `corun_cell` key shape) and always run monolithic.
    let shards = shard::shard_count();
    let key = if let Some(peer) = &sub.corun {
        let peer_cfg = RunConfig::quick(Mode::Baseline, region, epoch);
        format!("{run_cfg:?}|peer={peer_cfg:?}|corun={peer}")
    } else if shards > 1 {
        format!("{run_cfg:?}|shards={shards}")
    } else {
        format!("{run_cfg:?}")
    };
    let request = CellRequest {
        experiment: "serve".to_string(),
        workload: sub.workload.clone(),
        config: sub.mode.clone(),
        key,
    };
    let fingerprint = request.fingerprint();
    let accepted = Response::Accepted {
        id: sub.id.clone(),
        fingerprint: fingerprint.clone(),
    };

    let mut jobs = lock(&shared.jobs);
    match jobs.entries.get_mut(&fingerprint) {
        Some(JobEntry::Done(rec)) => {
            shared.session_hits.fetch_add(1, Ordering::SeqCst);
            send(&accepted);
            for sample in &rec.epochs {
                send(&Response::Epoch {
                    id: sub.id.clone(),
                    replay: true,
                    sample: sample.clone(),
                });
            }
            send(&Response::Result {
                id: sub.id,
                dedup: Dedup::Session,
                result: Box::new(rec.result.clone()),
            });
        }
        Some(JobEntry::InFlight { backlog, subs }) => {
            shared.dedup_in_flight.fetch_add(1, Ordering::SeqCst);
            send(&accepted);
            // Late subscriber: replay what the simulation already
            // streamed, then ride the live stream with everyone else.
            for sample in backlog.iter() {
                send(&Response::Epoch {
                    id: sub.id.clone(),
                    replay: true,
                    sample: sample.clone(),
                });
            }
            subs.push(Sub {
                id: sub.id,
                tx: tx.clone(),
            });
        }
        None => {
            if let Some(dir) = &shared.cfg.cache_dir {
                if let Some(result) = cache::load(dir, &fingerprint) {
                    shared.disk_hits.fetch_add(1, Ordering::SeqCst);
                    send(&accepted);
                    send(&Response::Result {
                        id: sub.id,
                        dedup: Dedup::Cached,
                        result: Box::new(result),
                    });
                    return;
                }
            }
            if let Some(result) = proxy_predict(shared, &jobs, &sub, &run_cfg, &request.key, shards)
            {
                shared.proxy_predicted.fetch_add(1, Ordering::SeqCst);
                send(&accepted);
                send(&Response::Result {
                    id: sub.id,
                    dedup: Dedup::Predicted,
                    result: Box::new(result),
                });
                return;
            }
            // Fresh cell: admit it only if the bounded queue has room.
            // The job-table entry is created under the same `jobs` lock
            // that workers take to publish epochs/results, so a worker
            // cannot observe the job before its entry exists.
            let mut queue = lock(&shared.queue);
            if queue.len() >= shared.cfg.queue_capacity {
                shared.busy_rejections.fetch_add(1, Ordering::SeqCst);
                send(&Response::Busy {
                    id: sub.id,
                    retry_after_ms: shared.cfg.retry_after_ms,
                });
                return;
            }
            queue.push_back(Job {
                fingerprint: fingerprint.clone(),
                request,
                run_cfg,
                workload: sub.workload,
                mode_label: sub.mode,
                shards,
                corun: sub.corun,
            });
            shared.queue_cv.notify_one();
            drop(queue);
            jobs.entries.insert(
                fingerprint,
                JobEntry::InFlight {
                    backlog: Vec::new(),
                    subs: vec![Sub {
                        id: sub.id,
                        tx: tx.clone(),
                    }],
                },
            );
            shared.accepted.fetch_add(1, Ordering::SeqCst);
            send(&accepted);
        }
    }
}

/// The proxy fast path: predicts a non-baseline cell from its baseline
/// anchor's measured counters, mirroring the batch runner's triage.
/// Returns `None` — falling through to fresh simulation — unless a
/// model is loaded, an anchor measurement already exists (session
/// memory or the disk cache), and the prediction clears the model's
/// confidence gate (IPC uncertainty within `tau`). Predicted results
/// are estimates: they are never cached, never stored in session
/// memory, and stream no epoch frames.
fn proxy_predict(
    shared: &Shared,
    jobs: &JobTable,
    sub: &Submit,
    run_cfg: &RunConfig,
    key: &str,
    shards: usize,
) -> Option<SimResult> {
    let model = shared.proxy.as_ref()?;
    if sub.mode == "baseline" {
        return None; // anchors always simulate for real
    }
    if sub.corun.is_some() {
        return None; // the model is trained on solo anchors only
    }
    // The anchor is the baseline cell of the same workload, region, and
    // shard decomposition, fingerprinted exactly as a submission would be.
    let anchor_cfg = RunConfig::quick(Mode::Baseline, run_cfg.max_mt_insts, run_cfg.epoch_len);
    let anchor_key = if shards > 1 {
        format!("{anchor_cfg:?}|shards={shards}")
    } else {
        format!("{anchor_cfg:?}")
    };
    let anchor_fp = CellRequest {
        experiment: "serve".to_string(),
        workload: sub.workload.clone(),
        config: "baseline".to_string(),
        key: anchor_key,
    }
    .fingerprint();
    let anchor = match jobs.entries.get(&anchor_fp) {
        Some(JobEntry::Done(rec)) => Some(rec.result.clone()),
        _ => shared
            .cfg
            .cache_dir
            .as_ref()
            .and_then(|dir| cache::load(dir, &anchor_fp)),
    }?;
    if anchor.stats.cycles == 0 || anchor.stats.mt_retired == 0 {
        return None;
    }
    let x =
        phelps_proxy::feature_vector(&phelps_proxy::anchor_slots_from_stats(&anchor.stats), key);
    let p = model.predict(&x);
    if !p.ipc.is_finite() || !p.mpki.is_finite() || p.ipc_uncertainty > model.tau_ipc() {
        return None;
    }
    let mut breakdown = phelps::classify::MispredictBreakdown::new();
    breakdown.retired = anchor.breakdown.retired;
    Some(SimResult {
        stats: phelps_proxy::synthesize_stats(&anchor.stats, p.ipc, p.mpki),
        breakdown,
        telemetry: None,
        retire_log: None,
        final_state: None,
    })
}

/// Worker: pop → execute → publish, until shutdown *and* an empty queue
/// (queued jobs drain; nothing admitted after the flag is set).
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let popped = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    // Reserve the trace ticket under the queue lock so
                    // PHELPS_TRACE output stays in submission order no
                    // matter which worker finishes first.
                    let ticket = trace::global().map(|sink| sink.reserve());
                    break Some((job, ticket));
                }
                if shared.shutting_down() {
                    break None;
                }
                queue = shared
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some((job, ticket)) = popped else {
            return;
        };
        run_job(shared, job, ticket);
    }
}

fn run_job(shared: &Arc<Shared>, job: Job, ticket: Option<u64>) {
    let sink = {
        let shared = Arc::clone(shared);
        let fingerprint = job.fingerprint.clone();
        // Runs inside `close_epoch` on this worker thread; it only
        // encodes and channel-sends (no telemetry re-entry).
        tlm::SampleSink::new(move |sample| broadcast_epoch(&shared, &fingerprint, sample))
    };
    let policy = ExecPolicy {
        cache_dir: shared.cfg.cache_dir.clone(),
        read_cache: true,
        write_cache: true,
        telemetry: Some(tlm::Config {
            epoch_len: job.run_cfg.epoch_len,
            label: format!("serve/{}/{}", job.workload, job.mode_label),
            epoch_sink: Some(sink),
            ..tlm::Config::default()
        }),
    };
    // Route through the sharded engine: with `shards <= 1` it degrades
    // to the historical install-then-simulate path on this thread; with
    // more it fans the run out over the `PHELPS_JOBS` pool, each shard
    // installing its own registry clone — the shared `SampleSink` then
    // interleaves per-shard epochs into the live stream.
    let outcome = execute_cell_prepared(&job.request, &policy, {
        let workload = job.workload.clone();
        let run_cfg = job.run_cfg.clone();
        let shards = job.shards;
        let corun = job.corun.clone();
        move |tlm_cfg| {
            let w = suite::gap_workload(&workload).or_else(|| suite::spec_workload(&workload))?;
            if let Some(peer) = &corun {
                // Two-tenant co-schedule on a shared uncore: monolithic
                // on this worker thread (the interleaving cannot be
                // sharded), streaming the machine-wide telemetry the
                // primary tenant harvests. The neighbor always runs
                // baseline — it is load, not an experiment arm.
                let p = suite::gap_workload(peer).or_else(|| suite::spec_workload(peer))?;
                let peer_cfg =
                    RunConfig::quick(Mode::Baseline, run_cfg.max_mt_insts, run_cfg.epoch_len);
                if let Some(t) = tlm_cfg.as_ref() {
                    tlm::install(t.clone());
                }
                let [primary, _] = simulate_corun_pair(w.cpu, &run_cfg, p.cpu, &peer_cfg);
                return Some(primary);
            }
            shard::run_sharded_with(
                &CkptPolicy::from_env(),
                phelps_bench::resolved_jobs(),
                shards,
                &workload,
                w.cpu,
                &run_cfg,
                tlm_cfg.as_ref(),
            )
        }
    });

    if let Some(sink) = trace::global() {
        if let Some(seq) = ticket {
            match outcome.result.as_ref().and_then(|r| r.telemetry.as_deref()) {
                Some(report) if !outcome.from_cache => sink.submit(seq, report.clone()),
                _ => sink.skip(seq),
            }
        }
    }
    if outcome.from_cache {
        // Lost a key-lock race against another process writing the same
        // cell (the runner, or another daemon) — still a disk hit.
        shared.disk_hits.fetch_add(1, Ordering::SeqCst);
    } else if outcome.result.is_some() {
        shared.simulated.fetch_add(1, Ordering::SeqCst);
    }
    complete(shared, &job.fingerprint, outcome);
}

/// Streams one closing epoch to every subscriber and appends it to the
/// backlog replayed to late subscribers.
fn broadcast_epoch(shared: &Shared, fingerprint: &str, sample: &tlm::EpochSample) {
    let mut jobs = lock(&shared.jobs);
    if let Some(JobEntry::InFlight { backlog, subs }) = jobs.entries.get_mut(fingerprint) {
        backlog.push(sample.clone());
        for sub in subs.iter() {
            let _ = sub.tx.send(encode_response(&Response::Epoch {
                id: sub.id.clone(),
                replay: false,
                sample: sample.clone(),
            }));
        }
    }
}

/// Publishes a finished job: result frames to every subscriber, then a
/// session-memory record so identical future submissions replay instead
/// of re-simulating.
fn complete(shared: &Shared, fingerprint: &str, outcome: CellOutcome) {
    let mut jobs = lock(&shared.jobs);
    let (backlog, subs) = match jobs.entries.remove(fingerprint) {
        Some(JobEntry::InFlight { backlog, subs }) => (backlog, subs),
        other => {
            // Unreachable by construction; restore whatever was there.
            if let Some(entry) = other {
                jobs.entries.insert(fingerprint.to_string(), entry);
            }
            (Vec::new(), Vec::new())
        }
    };
    match outcome.result {
        Some(mut result) => {
            // Telemetry already streamed epoch-by-epoch; the bulky
            // payloads have no business in session memory or on the wire.
            result.telemetry = None;
            result.retire_log = None;
            result.final_state = None;
            let dedup = if outcome.from_cache {
                Dedup::Cached
            } else {
                Dedup::Simulated
            };
            for sub in &subs {
                let _ = sub.tx.send(encode_response(&Response::Result {
                    id: sub.id.clone(),
                    dedup,
                    result: Box::new(result.clone()),
                }));
            }
            jobs.entries.insert(
                fingerprint.to_string(),
                JobEntry::Done(Box::new(DoneRecord {
                    epochs: backlog,
                    result,
                })),
            );
            jobs.done_order.push_back(fingerprint.to_string());
            while jobs.done_order.len() > shared.cfg.session_capacity {
                if let Some(old) = jobs.done_order.pop_front() {
                    jobs.entries.remove(&old);
                }
            }
        }
        None => {
            for sub in &subs {
                let _ = sub.tx.send(encode_response(&Response::Error {
                    id: sub.id.clone(),
                    reason: "simulation failed".to_string(),
                }));
            }
        }
    }
}
