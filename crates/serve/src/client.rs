//! Blocking client for the daemon, used by the CLI subcommands and the
//! integration tests.

use crate::codec::{self, FrameReader};
use crate::protocol::{
    encode_request, parse_response, Dedup, Request, Response, ServerStats, Submit,
};
use phelps::sim::SimResult;
use phelps_telemetry::EpochSample;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One connection to a phelps-serve daemon.
#[derive(Debug)]
pub struct Client {
    reader: FrameReader<TcpStream>,
    writer: TcpStream,
}

/// Everything a `submit` produced, in arrival order. Exactly one of
/// `result`, `busy`, `error` is set.
#[derive(Debug, Default)]
pub struct JobOutcome {
    /// The cell's cache fingerprint (from the `accepted` frame).
    pub fingerprint: Option<String>,
    /// Epoch samples in arrival order, `(replayed, sample)`.
    pub epochs: Vec<(bool, EpochSample)>,
    /// Final result and how the daemon obtained it.
    pub result: Option<(Dedup, SimResult)>,
    /// Backoff hint, when the queue was full.
    pub busy: Option<u64>,
    /// Failure reason, when the submission was rejected.
    pub error: Option<String>,
}

impl JobOutcome {
    /// Samples streamed live (not replayed from a backlog).
    pub fn live_epochs(&self) -> usize {
        self.epochs.iter().filter(|(replay, _)| !replay).count()
    }
}

impl Client {
    /// Connects to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = FrameReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Connects to a daemon on localhost.
    pub fn connect_local(port: u16) -> io::Result<Client> {
        Client::connect(("127.0.0.1", port))
    }

    /// Bounds every subsequent `recv` (`None` blocks indefinitely).
    pub fn set_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// Sends one request frame.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        codec::write_frame(&mut self.writer, &encode_request(req))
    }

    /// Sends one raw line, bypassing the encoder (protocol tests).
    pub fn send_raw(&mut self, line: &str) -> io::Result<()> {
        codec::write_frame(&mut self.writer, line)
    }

    /// Receives one response frame.
    pub fn recv(&mut self) -> io::Result<Response> {
        match self.reader.read_frame()? {
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            Some(line) => {
                parse_response(&line).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
            }
        }
    }

    /// Sends a request and returns the next frame (single-frame calls:
    /// ping, stats, shutdown).
    pub fn request(&mut self, req: &Request) -> io::Result<Response> {
        self.send(req)?;
        self.recv()
    }

    /// Fetches the daemon's counter snapshot.
    pub fn stats(&mut self) -> io::Result<ServerStats> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Submits one cell and collects its whole frame stream: accepted,
    /// streamed/replayed epochs, and the final result (or busy/error).
    /// Frames for other ids (interleaved jobs) are ignored.
    pub fn submit(&mut self, submit: Submit) -> io::Result<JobOutcome> {
        let id = submit.id.clone();
        self.send(&Request::Submit(submit))?;
        let mut outcome = JobOutcome::default();
        loop {
            match self.recv()? {
                Response::Accepted {
                    id: rid,
                    fingerprint,
                } if rid == id => {
                    outcome.fingerprint = Some(fingerprint);
                }
                Response::Busy {
                    id: rid,
                    retry_after_ms,
                } if rid == id => {
                    outcome.busy = Some(retry_after_ms);
                    return Ok(outcome);
                }
                Response::Error { id: rid, reason } if rid == id || rid.is_empty() => {
                    outcome.error = Some(reason);
                    return Ok(outcome);
                }
                Response::Epoch {
                    id: rid,
                    replay,
                    sample,
                } if rid == id => {
                    outcome.epochs.push((replay, sample));
                }
                Response::Result {
                    id: rid,
                    dedup,
                    result,
                } if rid == id => {
                    outcome.result = Some((dedup, *result));
                    return Ok(outcome);
                }
                _ => {}
            }
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("expected a {wanted} frame, got {got:?}"),
    )
}
