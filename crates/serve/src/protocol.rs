//! The phelps-serve wire protocol: newline-delimited JSON.
//!
//! One JSON object per line in both directions, encoded with the
//! workspace's hand-rolled [`JsonWriter`] and decoded with
//! [`parse_json`] — no external serialization dependency, matching the
//! vendored-offline build. Requests are [`Request`]; the daemon answers
//! with a stream of [`Response`] frames:
//!
//! * `submit` → `accepted` (or `busy`/`error`), then zero or more
//!   `epoch` frames streamed live as the simulation closes telemetry
//!   epochs, then exactly one `result` frame.
//! * `stats` → one `stats` frame of daemon counters.
//! * `ping` → `pong`; `shutdown` → `shutdown_ack`.
//!
//! The `result` frame embeds the same `"stats"`/`"breakdown"` body the
//! on-disk result cache stores ([`cache::result_body_json`]), so the
//! wire format and the cache format can never drift apart.
//!
//! [`cache::result_body_json`]: phelps_bench::runner::cache::result_body_json

use phelps::sim::{Mode, PhelpsFeatures, SimResult};
use phelps_bench::runner::cache;
use phelps_telemetry::{parse_json, EpochSample, JsonValue, JsonWriter};

/// Client → daemon messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Run (or dedup) one experiment cell and stream its telemetry.
    Submit(Submit),
    /// Ask for the daemon's counter snapshot.
    Stats,
    /// Liveness probe.
    Ping,
    /// Drain in-flight jobs and exit.
    Shutdown,
}

/// One experiment cell: the same (workload × configuration) shape the
/// batch runner executes.
#[derive(Clone, Debug, PartialEq)]
pub struct Submit {
    /// Client-chosen correlation id, echoed on every frame of the job.
    pub id: String,
    /// Workload name (`suite::gap_names()` / `suite::spec_names()`).
    pub workload: String,
    /// Configuration label; see [`parse_mode`] for the vocabulary.
    pub mode: String,
    /// Region length in retired instructions (daemon default when absent).
    pub region: Option<u64>,
    /// Telemetry/construction epoch length (daemon default when absent).
    pub epoch: Option<u64>,
    /// Co-run neighbor workload: when present, the cell runs tenant 0 of
    /// a deterministic two-tenant co-schedule against this workload
    /// (baseline mode, same region/epoch) on a shared uncore, and the
    /// streamed result is the primary tenant's. Absent = solo.
    pub corun: Option<String>,
}

/// How the daemon satisfied a submission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dedup {
    /// Freshly simulated by a worker.
    Simulated,
    /// Attached to an identical job already executing.
    InFlight,
    /// Replayed from the daemon's completed-job session memory.
    Session,
    /// Served from the shared on-disk result cache.
    Cached,
    /// Synthesized by the proxy model from the cell's anchor telemetry
    /// (`PHELPS_PROXY`): the counters are estimates, not measurements.
    Predicted,
}

impl Dedup {
    /// The wire label.
    pub fn label(self) -> &'static str {
        match self {
            Dedup::Simulated => "simulated",
            Dedup::InFlight => "in_flight",
            Dedup::Session => "session",
            Dedup::Cached => "cached",
            Dedup::Predicted => "predicted",
        }
    }

    /// Parses a wire label.
    pub fn parse(s: &str) -> Option<Dedup> {
        Some(match s {
            "simulated" => Dedup::Simulated,
            "in_flight" => Dedup::InFlight,
            "session" => Dedup::Session,
            "cached" => Dedup::Cached,
            "predicted" => Dedup::Predicted,
            _ => return None,
        })
    }
}

/// Daemon counter snapshot (the `stats` response).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Submissions enqueued for fresh simulation.
    pub accepted: u64,
    /// Cells actually simulated by a worker.
    pub simulated: u64,
    /// Submissions attached to an already-executing identical cell.
    pub dedup_in_flight: u64,
    /// Submissions replayed from completed-job session memory.
    pub session_hits: u64,
    /// Submissions served from the on-disk result cache.
    pub disk_hits: u64,
    /// Submissions answered by the proxy model's predicted fast path.
    pub proxy_predicted: u64,
    /// Submissions rejected because the queue was full.
    pub busy_rejections: u64,
    /// Frames that failed to parse or validate.
    pub malformed: u64,
    /// Jobs currently waiting in the submission queue.
    pub queue_depth: u64,
    /// Jobs currently executing or queued (open job-table entries).
    pub in_flight: u64,
}

/// Daemon → client messages.
#[derive(Clone, Debug)]
pub enum Response {
    /// The submission was admitted; frames for `id` follow.
    Accepted {
        /// Echo of the submission id.
        id: String,
        /// The cell's cache fingerprint (also its dedup key).
        fingerprint: String,
    },
    /// The submission queue is full; retry later.
    Busy {
        /// Echo of the submission id.
        id: String,
        /// Suggested client backoff.
        retry_after_ms: u64,
    },
    /// The request failed (echoes the id when one was parsed).
    Error {
        /// Offending submission id, or `""` for unattributable frames.
        id: String,
        /// Human-readable cause.
        reason: String,
    },
    /// One telemetry epoch of the job, streamed as it closes.
    Epoch {
        /// Echo of the submission id.
        id: String,
        /// `true` when replayed from a backlog (late subscriber),
        /// `false` when delivered live from the running simulation.
        replay: bool,
        /// The sample itself.
        sample: EpochSample,
    },
    /// The job's final result; last frame for `id`.
    Result {
        /// Echo of the submission id.
        id: String,
        /// How the result was obtained.
        dedup: Dedup,
        /// Stats + misprediction breakdown (telemetry rides separately
        /// in the epoch stream and is not repeated here). Boxed to keep
        /// the enum small — every other frame type is a few words.
        result: Box<SimResult>,
    },
    /// Liveness reply.
    Pong,
    /// Counter snapshot.
    Stats(ServerStats),
    /// Shutdown acknowledged; the daemon drains and exits.
    ShutdownAck,
}

/// Maps a wire mode label to a simulation [`Mode`].
pub fn parse_mode(s: &str) -> Option<Mode> {
    Some(match s {
        "baseline" => Mode::Baseline,
        "perfect_bp" => Mode::PerfectBp,
        "partition_only" => Mode::PartitionOnly,
        "phelps" => Mode::Phelps(PhelpsFeatures::full()),
        "phelps:b1" => Mode::Phelps(PhelpsFeatures::b1_only()),
        "phelps:b1b2" => Mode::Phelps(PhelpsFeatures::no_stores()),
        "phelps:b1s1" => Mode::Phelps(PhelpsFeatures::b1_with_stores()),
        _ => return None,
    })
}

/// The accepted mode labels, for error messages and CLI help.
pub fn mode_names() -> &'static [&'static str] {
    &[
        "baseline",
        "perfect_bp",
        "partition_only",
        "phelps",
        "phelps:b1",
        "phelps:b1b2",
        "phelps:b1s1",
    ]
}

/// Encodes one request as a single JSON line (no trailing newline).
pub fn encode_request(req: &Request) -> String {
    let mut j = JsonWriter::new();
    j.begin_object();
    j.key("type");
    match req {
        Request::Submit(s) => {
            j.string("submit");
            j.key("id");
            j.string(&s.id);
            j.key("workload");
            j.string(&s.workload);
            j.key("mode");
            j.string(&s.mode);
            if let Some(r) = s.region {
                j.key("region");
                j.uint(r);
            }
            if let Some(e) = s.epoch {
                j.key("epoch");
                j.uint(e);
            }
            if let Some(p) = &s.corun {
                j.key("corun");
                j.string(p);
            }
        }
        Request::Stats => j.string("stats"),
        Request::Ping => j.string("ping"),
        Request::Shutdown => j.string("shutdown"),
    }
    j.end_object();
    j.finish()
}

fn req_str<'v>(v: &'v JsonValue, key: &str, ty: &str) -> Result<&'v str, String> {
    v.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| format!("{ty}: missing or non-string \"{key}\""))
}

fn opt_u64(v: &JsonValue, key: &str, ty: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("{ty}: \"{key}\" must be a non-negative integer")),
    }
}

fn opt_str(v: &JsonValue, key: &str, ty: &str) -> Result<Option<String>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(x) => x
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| format!("{ty}: \"{key}\" must be a string")),
    }
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse_json(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let ty = v
        .get("type")
        .and_then(JsonValue::as_str)
        .ok_or("missing or non-string \"type\"")?;
    match ty {
        "submit" => Ok(Request::Submit(Submit {
            id: req_str(&v, "id", "submit")?.to_string(),
            workload: req_str(&v, "workload", "submit")?.to_string(),
            mode: req_str(&v, "mode", "submit")?.to_string(),
            region: opt_u64(&v, "region", "submit")?,
            epoch: opt_u64(&v, "epoch", "submit")?,
            corun: opt_str(&v, "corun", "submit")?,
        })),
        "stats" => Ok(Request::Stats),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown request type {other:?}")),
    }
}

/// The epoch-sample wire fields, in emission order. Kept in one place
/// so the encoder, the decoder, and the golden tests agree.
const SAMPLE_U64_FIELDS: [&str; 8] = [
    "epoch",
    "end_cycle",
    "cycles",
    "retired",
    "mispredicts",
    "triggers",
    "pred_hits",
    "dram_accesses",
];

fn sample_u64(s: &EpochSample, key: &str) -> u64 {
    match key {
        "epoch" => s.epoch,
        "end_cycle" => s.end_cycle,
        "cycles" => s.cycles,
        "retired" => s.retired,
        "mispredicts" => s.mispredicts,
        "triggers" => s.triggers,
        "pred_hits" => s.pred_hits,
        "dram_accesses" => s.dram_accesses,
        _ => unreachable!("unknown sample field {key}"),
    }
}

fn encode_sample(j: &mut JsonWriter, s: &EpochSample) {
    for key in SAMPLE_U64_FIELDS {
        j.key(key);
        j.uint(sample_u64(s, key));
    }
    j.key("ifetch_stalls");
    j.uint(s.ifetch_stalls);
    j.key("ipc");
    j.float(s.ipc);
    j.key("mpki");
    j.float(s.mpki);
    j.key("avg_rob");
    j.float(s.avg_rob);
    j.key("avg_pred_queue");
    j.float(s.avg_pred_queue);
}

fn sample_from_json(v: &JsonValue) -> Option<EpochSample> {
    let u = |k: &str| v.get(k).and_then(JsonValue::as_u64);
    let f = |k: &str| v.get(k).and_then(JsonValue::as_f64);
    Some(EpochSample {
        epoch: u("epoch")?,
        end_cycle: u("end_cycle")?,
        cycles: u("cycles")?,
        retired: u("retired")?,
        ipc: f("ipc")?,
        mispredicts: u("mispredicts")?,
        mpki: f("mpki")?,
        triggers: u("triggers")?,
        pred_hits: u("pred_hits")?,
        dram_accesses: u("dram_accesses")?,
        ifetch_stalls: u("ifetch_stalls")?,
        avg_rob: f("avg_rob")?,
        avg_pred_queue: f("avg_pred_queue")?,
    })
}

/// Encodes one response as a single JSON line (no trailing newline).
pub fn encode_response(resp: &Response) -> String {
    let mut j = JsonWriter::new();
    j.begin_object();
    j.key("type");
    match resp {
        Response::Accepted { id, fingerprint } => {
            j.string("accepted");
            j.key("id");
            j.string(id);
            j.key("fingerprint");
            j.string(fingerprint);
        }
        Response::Busy { id, retry_after_ms } => {
            j.string("busy");
            j.key("id");
            j.string(id);
            j.key("retry_after_ms");
            j.uint(*retry_after_ms);
        }
        Response::Error { id, reason } => {
            j.string("error");
            j.key("id");
            j.string(id);
            j.key("reason");
            j.string(reason);
        }
        Response::Epoch { id, replay, sample } => {
            j.string("epoch");
            j.key("id");
            j.string(id);
            j.key("replay");
            j.bool(*replay);
            encode_sample(&mut j, sample);
        }
        Response::Result { id, dedup, result } => {
            j.string("result");
            j.key("id");
            j.string(id);
            j.key("dedup");
            j.string(dedup.label());
            j.end_object();
            // Splice in the cache body fragment ("stats":{...},
            // "breakdown":{...}) so the wire result and the on-disk
            // cache entry share one codec.
            let mut text = j.finish();
            text.pop();
            text.push(',');
            text.push_str(&cache::result_body_json(result));
            text.push('}');
            return text;
        }
        Response::Pong => j.string("pong"),
        Response::Stats(s) => {
            j.string("stats");
            for (key, value) in stats_fields(s) {
                j.key(key);
                j.uint(value);
            }
        }
        Response::ShutdownAck => j.string("shutdown_ack"),
    }
    j.end_object();
    j.finish()
}

fn stats_fields(s: &ServerStats) -> [(&'static str, u64); 10] {
    [
        ("accepted", s.accepted),
        ("simulated", s.simulated),
        ("dedup_in_flight", s.dedup_in_flight),
        ("session_hits", s.session_hits),
        ("disk_hits", s.disk_hits),
        ("proxy_predicted", s.proxy_predicted),
        ("busy_rejections", s.busy_rejections),
        ("malformed", s.malformed),
        ("queue_depth", s.queue_depth),
        ("in_flight", s.in_flight),
    ]
}

/// Parses one response line.
pub fn parse_response(line: &str) -> Result<Response, String> {
    let v = parse_json(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let ty = v
        .get("type")
        .and_then(JsonValue::as_str)
        .ok_or("missing or non-string \"type\"")?;
    let id = || req_str(&v, "id", ty).map(str::to_string);
    match ty {
        "accepted" => Ok(Response::Accepted {
            id: id()?,
            fingerprint: req_str(&v, "fingerprint", ty)?.to_string(),
        }),
        "busy" => Ok(Response::Busy {
            id: id()?,
            retry_after_ms: opt_u64(&v, "retry_after_ms", ty)?.unwrap_or(0),
        }),
        "error" => Ok(Response::Error {
            id: id()?,
            reason: req_str(&v, "reason", ty)?.to_string(),
        }),
        "epoch" => Ok(Response::Epoch {
            id: id()?,
            replay: matches!(v.get("replay"), Some(JsonValue::Bool(true))),
            sample: sample_from_json(&v).ok_or("epoch: bad or missing sample fields")?,
        }),
        "result" => Ok(Response::Result {
            id: id()?,
            dedup: Dedup::parse(req_str(&v, "dedup", ty)?).ok_or("result: unknown dedup label")?,
            result: Box::new(
                cache::result_from_body(&v).ok_or("result: bad stats/breakdown body")?,
            ),
        }),
        "pong" => Ok(Response::Pong),
        "stats" => {
            let u = |k: &str| {
                v.get(k)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("stats: missing counter \"{k}\""))
            };
            Ok(Response::Stats(ServerStats {
                accepted: u("accepted")?,
                simulated: u("simulated")?,
                dedup_in_flight: u("dedup_in_flight")?,
                session_hits: u("session_hits")?,
                disk_hits: u("disk_hits")?,
                proxy_predicted: u("proxy_predicted")?,
                busy_rejections: u("busy_rejections")?,
                malformed: u("malformed")?,
                queue_depth: u("queue_depth")?,
                in_flight: u("in_flight")?,
            }))
        }
        "shutdown_ack" => Ok(Response::ShutdownAck),
        other => Err(format!("unknown response type {other:?}")),
    }
}
