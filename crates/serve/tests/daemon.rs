//! End-to-end daemon tests over real localhost TCP: concurrent clients
//! with overlapping cell matrices, backpressure under a saturated
//! queue, malformed-frame survival, disconnect-mid-stream durability,
//! and clean drain-on-shutdown.

use phelps_serve::{server, Client, Dedup, JobOutcome, Request, Response, ServeConfig, Submit};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Generous bound so a wedged daemon fails the test instead of hanging it.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(300);

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("phelps-serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn daemon(workers: usize, queue_capacity: usize, cache_dir: &Path) -> server::ServerHandle {
    daemon_with_proxy(workers, queue_capacity, cache_dir, None)
}

fn daemon_with_proxy(
    workers: usize,
    queue_capacity: usize,
    cache_dir: &Path,
    proxy_model: Option<PathBuf>,
) -> server::ServerHandle {
    server::spawn(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_capacity,
        cache_dir: Some(cache_dir.to_path_buf()),
        retry_after_ms: 50,
        session_capacity: 32,
        proxy_model,
        quiet: true,
    })
    .expect("bind daemon")
}

fn client(handle: &server::ServerHandle) -> Client {
    let c = Client::connect_local(handle.port()).expect("connect");
    c.set_timeout(Some(CLIENT_TIMEOUT)).unwrap();
    c
}

fn cell(id: &str, workload: &str, mode: &str, region: u64, epoch: u64) -> Submit {
    Submit {
        id: id.to_string(),
        workload: workload.to_string(),
        mode: mode.to_string(),
        region: Some(region),
        epoch: Some(epoch),
        corun: None,
    }
}

/// Requests shutdown, waits for the drain, and asserts nothing leaked.
fn shutdown(handle: server::ServerHandle) -> server::ServeReport {
    let mut c = client(&handle);
    match c.request(&Request::Shutdown).expect("shutdown rpc") {
        Response::ShutdownAck => {}
        other => panic!("expected shutdown_ack, got {other:?}"),
    }
    let report = handle.join().expect("clean shutdown");
    assert_eq!(report.stats.queue_depth, 0, "queue drained");
    assert_eq!(report.stats.in_flight, 0, "no leaked jobs");
    report
}

/// The acceptance scenario: four concurrent clients submit overlapping
/// 4-cell matrices (in rotated order, to force every dedup path);
/// identical cells execute exactly once, every client sees live epoch
/// samples before its final result, and all clients agree on both the
/// epoch series and the final stats of each cell.
#[test]
fn four_clients_share_one_simulation_per_cell() {
    let dir = scratch("matrix");
    let handle = daemon(3, 64, &dir);
    let cells = [
        ("bfs", "baseline"),
        ("bfs", "phelps"),
        ("astar", "baseline"),
        ("astar", "phelps"),
    ];

    let outcomes: Vec<Vec<(usize, JobOutcome)>> = std::thread::scope(|s| {
        let handle = &handle;
        let threads: Vec<_> = (0..4)
            .map(|c| {
                s.spawn(move || {
                    let mut cl = client(handle);
                    (0..cells.len())
                        .map(|k| {
                            let idx = (c + k) % cells.len();
                            let (w, m) = cells[idx];
                            let out = cl
                                .submit(cell(&format!("c{c}-{idx}"), w, m, 12_000, 2_000))
                                .expect("submit");
                            (idx, out)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        threads.into_iter().map(|t| t.join().unwrap()).collect()
    });

    let mut per_cell: Vec<Vec<&JobOutcome>> = vec![Vec::new(); cells.len()];
    for client_outcomes in &outcomes {
        for (idx, out) in client_outcomes {
            assert!(
                out.busy.is_none() && out.error.is_none(),
                "cell {idx}: busy={:?} error={:?}",
                out.busy,
                out.error
            );
            assert!(out.result.is_some(), "cell {idx}: missing result");
            assert!(
                !out.epochs.is_empty(),
                "cell {idx}: every client must receive epoch samples before its result"
            );
            per_cell[*idx].push(out);
        }
    }
    for (idx, outs) in per_cell.iter().enumerate() {
        assert_eq!(outs.len(), 4, "cell {idx} answered for every client");
        let stats0 = format!("{:?}", outs[0].result.as_ref().unwrap().1.stats);
        let epochs0: Vec<_> = outs[0].epochs.iter().map(|(_, s)| s.clone()).collect();
        for out in outs {
            assert_eq!(
                format!("{:?}", out.result.as_ref().unwrap().1.stats),
                stats0,
                "cell {idx}: all clients see identical stats"
            );
            let series: Vec<_> = out.epochs.iter().map(|(_, s)| s.clone()).collect();
            assert_eq!(
                series, epochs0,
                "cell {idx}: all clients see the same epoch series"
            );
        }
    }

    let mut c = client(&handle);
    let stats = c.stats().unwrap();
    assert_eq!(
        stats.simulated, 4,
        "each distinct cell simulated exactly once"
    );
    assert_eq!(stats.accepted, 4);
    assert_eq!(
        stats.dedup_in_flight + stats.session_hits,
        12,
        "the other 12 submissions deduplicated"
    );
    assert_eq!(stats.disk_hits, 0, "fresh cache dir: no disk hits");
    assert_eq!(stats.busy_rejections, 0);
    drop(c);

    let report = shutdown(handle);
    assert_eq!(report.stats.simulated, 4);
    let _ = std::fs::remove_dir_all(&dir);
}

/// With one worker and a one-slot queue, a burst of distinct cells gets
/// explicit `busy` rejections — and the accept loop keeps answering new
/// connections while the worker is saturated.
#[test]
fn saturated_queue_answers_busy_without_stalling_the_daemon() {
    let dir = scratch("busy");
    let handle = daemon(1, 1, &dir);
    let mut submitter = client(&handle);
    for i in 0..4u64 {
        submitter
            .send(&Request::Submit(cell(
                &format!("b{i}"),
                "bfs",
                "baseline",
                600_000 + i,
                500_000,
            )))
            .unwrap();
    }
    // First verdict per id (accepted or busy), skipping interleaved
    // epoch/result frames from the jobs that were admitted.
    let mut verdicts: HashMap<String, &'static str> = HashMap::new();
    while verdicts.len() < 4 {
        match submitter.recv().unwrap() {
            Response::Accepted { id, .. } => {
                verdicts.entry(id).or_insert("accepted");
            }
            Response::Busy { id, retry_after_ms } => {
                assert_eq!(retry_after_ms, 50, "configured backoff hint");
                verdicts.entry(id).or_insert("busy");
            }
            Response::Error { id, reason } => panic!("unexpected error for {id:?}: {reason}"),
            _ => {}
        }
    }
    let busy = verdicts.values().filter(|v| **v == "busy").count();
    assert!(
        (1..=3).contains(&busy),
        "queue_cap=1 must reject part of the burst: {verdicts:?}"
    );

    // Fresh connection while saturated: control plane still answers.
    let mut prober = client(&handle);
    match prober.request(&Request::Ping).unwrap() {
        Response::Pong => {}
        other => panic!("expected pong, got {other:?}"),
    }
    assert!(prober.stats().unwrap().busy_rejections >= 1);
    drop(prober);

    let report = shutdown(handle);
    assert!(report.stats.busy_rejections >= 1);
    assert_eq!(
        report.stats.simulated as usize,
        4 - busy,
        "admitted jobs drained through shutdown"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Malformed frames get an error response and the connection (and
/// daemon) keep working.
#[test]
fn malformed_frames_are_rejected_and_the_connection_survives() {
    let dir = scratch("malformed");
    let handle = daemon(1, 4, &dir);
    let mut cl = client(&handle);
    for (raw, expect_id) in [
        ("this is not json", ""),
        (
            r#"{"type":"submit","id":"w1","workload":"not_a_workload","mode":"baseline"}"#,
            "w1",
        ),
        (
            r#"{"type":"submit","id":"w2","workload":"bfs","mode":"warp"}"#,
            "w2",
        ),
    ] {
        cl.send_raw(raw).unwrap();
        match cl.recv().unwrap() {
            Response::Error { id, reason } => {
                assert_eq!(id, expect_id, "for frame {raw:?}");
                assert!(!reason.is_empty());
            }
            other => panic!("expected error for {raw:?}, got {other:?}"),
        }
    }
    match cl.request(&Request::Ping).unwrap() {
        Response::Pong => {}
        other => panic!("connection must survive malformed frames, got {other:?}"),
    }
    let stats = cl.stats().unwrap();
    assert_eq!(stats.malformed, 3);
    assert_eq!(stats.simulated, 0);
    drop(cl);
    shutdown(handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A client that vanishes mid-stream costs nothing but its own copy:
/// the job completes, the result lands in the shared on-disk cache, and
/// a later client gets it without a second simulation.
#[test]
fn disconnect_mid_stream_still_completes_and_caches() {
    let dir = scratch("disconnect");
    let handle = daemon(1, 8, &dir);
    let fingerprint = {
        let mut cl = client(&handle);
        cl.send(&Request::Submit(cell(
            "gone", "bfs", "baseline", 600_000, 30_000,
        )))
        .unwrap();
        let fp = match cl.recv().unwrap() {
            Response::Accepted { fingerprint, .. } => fingerprint,
            other => panic!("expected accepted, got {other:?}"),
        };
        // Wait for one *live* epoch so the disconnect is genuinely
        // mid-stream, then drop the connection.
        match cl.recv().unwrap() {
            Response::Epoch { replay, .. } => assert!(!replay),
            Response::Result { .. } => panic!("result arrived before any epoch"),
            other => panic!("unexpected frame {other:?}"),
        }
        fp
    };

    let path = phelps_bench::runner::cache::cell_path(&dir, &fingerprint);
    let deadline = std::time::Instant::now() + Duration::from_secs(240);
    while !path.exists() {
        assert!(
            std::time::Instant::now() < deadline,
            "abandoned job never reached the cache at {}",
            path.display()
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let mut cl = client(&handle);
    let out = cl
        .submit(cell("again", "bfs", "baseline", 600_000, 30_000))
        .unwrap();
    let (_, result) = out.result.as_ref().expect("second client gets the result");
    assert!(result.stats.mt_retired >= 600_000);
    assert!(
        !out.epochs.is_empty(),
        "epoch series replays for the second client"
    );
    let stats = cl.stats().unwrap();
    assert_eq!(stats.simulated, 1, "no second simulation");
    assert_eq!(stats.dedup_in_flight + stats.session_hits, 1);
    drop(cl);
    shutdown(handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Repeat submissions replay the recorded epoch series from session
/// memory, and a daemon restart serves the same cell from the on-disk
/// cache instead of re-simulating.
#[test]
fn repeat_submissions_hit_session_memory_then_disk_cache() {
    let dir = scratch("session");
    let handle = daemon(1, 4, &dir);
    let mut cl = client(&handle);

    let first = cl
        .submit(cell("one", "astar", "phelps", 12_000, 2_000))
        .unwrap();
    let (d1, r1) = first.result.as_ref().expect("first result");
    assert_eq!(*d1, Dedup::Simulated);
    assert!(first.live_epochs() >= 1, "first submission streams live");
    assert!(first.epochs.iter().all(|(replay, _)| !replay));

    let second = cl
        .submit(cell("two", "astar", "phelps", 12_000, 2_000))
        .unwrap();
    let (d2, r2) = second.result.as_ref().expect("second result");
    assert_eq!(*d2, Dedup::Session);
    assert!(second.epochs.iter().all(|(replay, _)| *replay));
    let live: Vec<_> = first.epochs.iter().map(|(_, s)| s.clone()).collect();
    let replayed: Vec<_> = second.epochs.iter().map(|(_, s)| s.clone()).collect();
    assert_eq!(live, replayed, "replay matches the live series exactly");
    assert_eq!(format!("{:?}", r1.stats), format!("{:?}", r2.stats));
    let stats = cl.stats().unwrap();
    assert_eq!(stats.simulated, 1);
    assert_eq!(stats.session_hits, 1);
    drop(cl);
    shutdown(handle);

    // New daemon, same cache dir: the cell is a disk hit.
    let handle = daemon(1, 4, &dir);
    let mut cl = client(&handle);
    let third = cl
        .submit(cell("three", "astar", "phelps", 12_000, 2_000))
        .unwrap();
    let (d3, r3) = third.result.as_ref().expect("third result");
    assert_eq!(*d3, Dedup::Cached);
    assert_eq!(format!("{:?}", r3.stats), format!("{:?}", r1.stats));
    let stats = cl.stats().unwrap();
    assert_eq!(stats.simulated, 0);
    assert_eq!(stats.disk_hits, 1);
    drop(cl);
    shutdown(handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Co-run submissions: a cell with a `corun` neighbor fingerprints
/// separately from its solo twin, simulates for real (through the
/// two-tenant shared-uncore engine), can only lose cycles to the
/// contending neighbor, and an unknown neighbor is rejected up front.
#[test]
fn corun_submissions_simulate_against_a_neighbor() {
    const REGION: u64 = 12_000;
    const EPOCH: u64 = 2_000;
    let dir = scratch("corun");
    let handle = daemon(1, 8, &dir);
    let mut cl = client(&handle);

    let solo = cl
        .submit(cell("solo", "bfs", "baseline", REGION, EPOCH))
        .unwrap();
    let (_, solo_result) = solo.result.as_ref().expect("solo result");

    let mut corun_cell = cell("pair", "bfs", "baseline", REGION, EPOCH);
    corun_cell.corun = Some("bfs_uniform".to_string());
    let corun = cl.submit(corun_cell.clone()).unwrap();
    let (dedup, corun_result) = corun.result.as_ref().expect("corun result");
    assert_eq!(*dedup, Dedup::Simulated);
    assert_ne!(
        solo.fingerprint, corun.fingerprint,
        "the neighbor is part of the cell's identity"
    );
    assert_eq!(corun_result.stats.mt_retired, solo_result.stats.mt_retired);
    assert!(
        corun_result.stats.cycles >= solo_result.stats.cycles,
        "a contending neighbor cannot speed the primary tenant up: \
         corun {} vs solo {} cycles",
        corun_result.stats.cycles,
        solo_result.stats.cycles
    );
    assert!(
        !corun.epochs.is_empty(),
        "co-run jobs stream telemetry epochs like any other cell"
    );

    // Identical resubmission replays from session memory.
    corun_cell.id = "pair-2".to_string();
    let again = cl.submit(corun_cell).unwrap();
    assert_eq!(again.result.as_ref().unwrap().0, Dedup::Session);

    // An unknown neighbor is rejected before anything queues.
    let mut bad = cell("bad", "bfs", "baseline", REGION, EPOCH);
    bad.corun = Some("not_a_workload".to_string());
    let rejected = cl.submit(bad).unwrap();
    let reason = rejected.error.expect("unknown corun workload rejects");
    assert!(
        reason.contains("corun"),
        "reason names the corun field: {reason}"
    );

    let stats = cl.stats().unwrap();
    assert_eq!(stats.simulated, 2, "solo + corun each simulated once");
    assert_eq!(stats.session_hits, 1);
    drop(cl);
    shutdown(handle);
    let _ = std::fs::remove_dir_all(&dir);
}

/// With a proxy model loaded, a non-baseline cell whose baseline anchor
/// already ran answers from the predicted fast path: no simulation, no
/// epoch stream, `"dedup":"predicted"` — and the synthesized result is
/// never cached or stored in session memory.
#[test]
fn proxy_model_answers_confident_cells_without_simulating() {
    const REGION: u64 = 12_000;
    const EPOCH: u64 = 2_000;
    let modes = [
        "baseline",
        "perfect_bp",
        "partition_only",
        "phelps",
        "phelps:b1",
        "phelps:b1b2",
        "phelps:b1s1",
    ];

    // Phase 1: fully simulate the training matrix into a cache.
    let train_dir = scratch("proxy-train");
    let handle = daemon(2, 64, &train_dir);
    let mut cl = client(&handle);
    for workload in ["astar", "bfs"] {
        for mode in modes {
            let out = cl
                .submit(cell(
                    &format!("t-{workload}-{mode}"),
                    workload,
                    mode,
                    REGION,
                    EPOCH,
                ))
                .unwrap();
            assert!(out.result.is_some(), "training cell {workload}/{mode} ran");
        }
    }
    drop(cl);
    shutdown(handle);

    // Phase 2: train a model from that cache.
    let cells = phelps_proxy::scan(&train_dir);
    assert_eq!(cells.len(), 14, "one cache entry per training cell");
    let (examples, _) = phelps_proxy::build_examples(&cells);
    let model = phelps_proxy::train_from_examples(&examples, 42, 4).expect("trainable");
    let model_path = train_dir.join("model.json");
    model.save(&model_path).expect("model saves");

    // Phase 3: fresh cache, proxy-enabled daemon. The anchor simulates;
    // the dependent cell answers from the fast path.
    let dir = scratch("proxy-serve");
    let handle = daemon_with_proxy(1, 8, &dir, Some(model_path));
    let mut cl = client(&handle);
    let anchor = cl
        .submit(cell("anchor", "astar", "baseline", REGION, EPOCH))
        .unwrap();
    let (da, ra) = anchor.result.as_ref().expect("anchor result");
    assert_eq!(*da, Dedup::Simulated, "the anchor always simulates");

    let predicted = cl
        .submit(cell("fast", "astar", "phelps", REGION, EPOCH))
        .unwrap();
    let (dp, rp) = predicted.result.as_ref().expect("predicted result");
    assert_eq!(*dp, Dedup::Predicted);
    assert!(predicted.epochs.is_empty(), "no epoch stream for estimates");
    assert!(rp.stats.ipc().is_finite() && rp.stats.ipc() > 0.0);
    assert_eq!(rp.stats.mt_retired, ra.stats.mt_retired);

    // A repeat answers from the fast path again (predictions never
    // enter session memory), bit-identically.
    let again = cl
        .submit(cell("fast-2", "astar", "phelps", REGION, EPOCH))
        .unwrap();
    let (dq, rq) = again.result.as_ref().expect("repeat result");
    assert_eq!(*dq, Dedup::Predicted);
    assert_eq!(format!("{:?}", rq.stats), format!("{:?}", rp.stats));

    let stats = cl.stats().unwrap();
    assert_eq!(stats.simulated, 1, "only the anchor simulated");
    assert_eq!(stats.proxy_predicted, 2);
    assert_eq!(
        std::fs::read_dir(&dir).unwrap().count(),
        1,
        "predicted results never reach the on-disk cache"
    );
    drop(cl);
    shutdown(handle);
    let _ = std::fs::remove_dir_all(&train_dir);
    let _ = std::fs::remove_dir_all(&dir);
}
