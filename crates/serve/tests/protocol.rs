//! Wire-protocol coverage: golden frame encodings, round-trips through
//! the real encoder/decoder pair, and malformed-frame rejection.

use phelps::classify::{MispredictBreakdown, MispredictClass};
use phelps::sim::SimResult;
use phelps_serve::protocol::{
    encode_request, encode_response, parse_mode, parse_request, parse_response, Dedup, Request,
    Response, ServerStats, Submit,
};
use phelps_telemetry::EpochSample;
use phelps_uarch::stats::SimStats;

fn sample() -> EpochSample {
    EpochSample {
        epoch: 3,
        end_cycle: 40_000,
        cycles: 10_000,
        retired: 8_000,
        ipc: 0.8,
        mispredicts: 90,
        mpki: 11.25,
        triggers: 7,
        pred_hits: 5,
        dram_accesses: 42,
        ifetch_stalls: 120,
        avg_rob: 96.5,
        avg_pred_queue: 3.25,
    }
}

fn result() -> SimResult {
    let stats = SimStats {
        cycles: 51_326,
        mt_retired: 50_000,
        mt_cond_branches: 9_100,
        ..SimStats::default()
    };
    let mut breakdown = MispredictBreakdown::new();
    breakdown.retired = 50_000;
    breakdown.record(MispredictClass::Eliminated);
    breakdown.record(MispredictClass::NotDelinquent);
    SimResult {
        stats,
        breakdown,
        telemetry: None,
        retire_log: None,
        final_state: None,
    }
}

#[test]
fn golden_request_encodings() {
    let submit = Request::Submit(Submit {
        id: "job-1".to_string(),
        workload: "bfs".to_string(),
        mode: "phelps".to_string(),
        region: Some(20_000),
        epoch: Some(2_000),
        corun: None,
    });
    assert_eq!(
        encode_request(&submit),
        r#"{"type":"submit","id":"job-1","workload":"bfs","mode":"phelps","region":20000,"epoch":2000}"#
    );
    let corun = Request::Submit(Submit {
        id: "job-2".to_string(),
        workload: "bfs".to_string(),
        mode: "phelps".to_string(),
        region: Some(20_000),
        epoch: Some(2_000),
        corun: Some("bfs_uniform".to_string()),
    });
    assert_eq!(
        encode_request(&corun),
        r#"{"type":"submit","id":"job-2","workload":"bfs","mode":"phelps","region":20000,"epoch":2000,"corun":"bfs_uniform"}"#
    );
    assert_eq!(encode_request(&Request::Ping), r#"{"type":"ping"}"#);
    assert_eq!(encode_request(&Request::Stats), r#"{"type":"stats"}"#);
    assert_eq!(encode_request(&Request::Shutdown), r#"{"type":"shutdown"}"#);
}

#[test]
fn requests_round_trip() {
    let originals = [
        Request::Submit(Submit {
            id: "weird \"id\" \\ with escapes".to_string(),
            workload: "astar".to_string(),
            mode: "phelps:b1b2".to_string(),
            region: None,
            epoch: Some(1),
            corun: None,
        }),
        Request::Submit(Submit {
            id: "corun".to_string(),
            workload: "bc".to_string(),
            mode: "baseline".to_string(),
            region: Some(5_000),
            epoch: None,
            corun: Some("bfs_uniform".to_string()),
        }),
        Request::Stats,
        Request::Ping,
        Request::Shutdown,
    ];
    for req in originals {
        let line = encode_request(&req);
        assert_eq!(parse_request(&line).unwrap(), req, "frame: {line}");
    }
}

#[test]
fn epoch_response_round_trips() {
    let resp = Response::Epoch {
        id: "e".to_string(),
        replay: true,
        sample: sample(),
    };
    let line = encode_response(&resp);
    match parse_response(&line).unwrap() {
        Response::Epoch {
            id,
            replay,
            sample: s,
        } => {
            assert_eq!(id, "e");
            assert!(replay);
            assert_eq!(s, sample());
        }
        other => panic!("expected epoch, got {other:?}"),
    }
}

#[test]
fn result_response_round_trips_via_cache_body() {
    let original = result();
    let line = encode_response(&Response::Result {
        id: "r".to_string(),
        dedup: Dedup::Session,
        result: Box::new(original.clone()),
    });
    assert!(line.starts_with(r#"{"type":"result","id":"r","dedup":"session","stats":{"#));
    match parse_response(&line).unwrap() {
        Response::Result { id, dedup, result } => {
            assert_eq!(id, "r");
            assert_eq!(dedup, Dedup::Session);
            assert_eq!(result.stats, original.stats);
            assert_eq!(
                result.breakdown.count(MispredictClass::Eliminated),
                original.breakdown.count(MispredictClass::Eliminated)
            );
        }
        other => panic!("expected result, got {other:?}"),
    }
}

#[test]
fn control_responses_round_trip() {
    let stats = ServerStats {
        accepted: 4,
        simulated: 4,
        dedup_in_flight: 5,
        session_hits: 7,
        disk_hits: 1,
        proxy_predicted: 6,
        busy_rejections: 2,
        malformed: 3,
        queue_depth: 1,
        in_flight: 2,
    };
    for (line, check) in [
        (
            encode_response(&Response::Accepted {
                id: "a".to_string(),
                fingerprint: "fp|x|v0".to_string(),
            }),
            "accepted",
        ),
        (
            encode_response(&Response::Busy {
                id: "b".to_string(),
                retry_after_ms: 150,
            }),
            "busy",
        ),
        (
            encode_response(&Response::Error {
                id: String::new(),
                reason: "nope".to_string(),
            }),
            "error",
        ),
        (encode_response(&Response::Pong), "pong"),
        (encode_response(&Response::Stats(stats)), "stats"),
        (encode_response(&Response::ShutdownAck), "shutdown_ack"),
    ] {
        let parsed = parse_response(&line).unwrap();
        match (&parsed, check) {
            (Response::Accepted { id, fingerprint }, "accepted") => {
                assert_eq!(id, "a");
                assert_eq!(fingerprint, "fp|x|v0");
            }
            (Response::Busy { retry_after_ms, .. }, "busy") => assert_eq!(*retry_after_ms, 150),
            (Response::Error { id, reason }, "error") => {
                assert!(id.is_empty());
                assert_eq!(reason, "nope");
            }
            (Response::Pong, "pong") | (Response::ShutdownAck, "shutdown_ack") => {}
            (Response::Stats(s), "stats") => assert_eq!(*s, stats),
            (got, want) => panic!("expected {want}, got {got:?}"),
        }
    }
}

#[test]
fn malformed_requests_are_rejected_with_reasons() {
    for (line, needle) in [
        ("not json at all", "invalid JSON"),
        ("{\"no\":\"type\"}", "\"type\""),
        ("{\"type\":\"warp\"}", "unknown request type"),
        ("{\"type\":\"submit\"}", "missing or non-string \"id\""),
        (
            "{\"type\":\"submit\",\"id\":\"x\",\"workload\":\"bfs\",\"mode\":\"phelps\",\"region\":-4}",
            "\"region\"",
        ),
        (
            "{\"type\":\"submit\",\"id\":\"x\",\"workload\":\"bfs\",\"mode\":\"phelps\",\"corun\":7}",
            "\"corun\" must be a string",
        ),
        ("[1,2,3]", "\"type\""),
    ] {
        let err = parse_request(line).unwrap_err();
        assert!(
            err.contains(needle),
            "for {line:?}: expected {needle:?} in {err:?}"
        );
    }
}

#[test]
fn mode_vocabulary_is_complete() {
    for name in phelps_serve::protocol::mode_names() {
        assert!(parse_mode(name).is_some(), "mode {name} must parse");
    }
    assert!(parse_mode("warp_drive").is_none());
    assert_eq!(Dedup::parse("cached"), Some(Dedup::Cached));
    assert_eq!(Dedup::parse("bogus"), None);
    for d in [
        Dedup::Simulated,
        Dedup::InFlight,
        Dedup::Session,
        Dedup::Cached,
        Dedup::Predicted,
    ] {
        assert_eq!(Dedup::parse(d.label()), Some(d));
    }
}
