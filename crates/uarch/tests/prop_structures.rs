//! Property tests on the microarchitectural structures: cache containment
//! invariants, predictor history recovery, and partition arithmetic.

use phelps_uarch::bpred::{DirectionPredictor, TageScL};
use phelps_uarch::config::{CacheConfig, PartitionPlan};
use phelps_uarch::mem::{Cache, Probe};
use proptest::prelude::*;

fn small_cache() -> Cache {
    Cache::new(CacheConfig {
        size_bytes: 2048,
        ways: 2,
        block_bytes: 64,
        latency: 3,
        mshrs: 4,
        ports: 0,
    })
}

proptest! {
    /// Cache contents are always a subset of the fill history, and a hit
    /// never evicts another resident block.
    #[test]
    fn cache_contents_subset_of_fills(addrs in prop::collection::vec(0u64..(1 << 16), 1..300)) {
        let mut c = small_cache();
        let mut filled = std::collections::HashSet::new();
        for (i, a) in addrs.iter().enumerate() {
            match c.probe(*a, i as u64) {
                Probe::Hit { .. } => {
                    prop_assert!(filled.contains(&(a / 64)), "hit only on filled block");
                }
                Probe::Miss => {
                    c.fill(*a, false, i as u64);
                    filled.insert(a / 64);
                }
            }
        }
        // Every resident block was filled at some point.
        for a in &addrs {
            if c.contains(*a) {
                prop_assert!(filled.contains(&(a / 64)));
            }
        }
    }

    /// Repeated accesses to a working set within one way-set worth of
    /// blocks always hit after the first touch (LRU never evicts the
    /// active set).
    #[test]
    fn small_working_set_never_thrashes(rounds in 2usize..12) {
        let mut c = small_cache(); // 16 sets x 2 ways
        // Two blocks in the same set (stride = sets * block).
        let a = 0u64;
        let b = 16 * 64;
        let _ = c.probe(a, 0);
        c.fill(a, false, 0);
        let _ = c.probe(b, 0);
        c.fill(b, false, 0);
        for r in 0..rounds {
            let hit_a = matches!(c.probe(a, r as u64), Probe::Hit { .. });
            let hit_b = matches!(c.probe(b, r as u64), Probe::Hit { .. });
            prop_assert!(hit_a, "block a resident");
            prop_assert!(hit_b, "block b resident");
        }
    }

    /// Predictor speculative history: checkpoint/recover restores the
    /// exact prediction for any speculation suffix.
    #[test]
    fn predictor_recovery_is_exact(
        prefix in prop::collection::vec(any::<bool>(), 0..100),
        suffix in prop::collection::vec(any::<bool>(), 1..50),
    ) {
        let mut p = TageScL::small();
        for (i, t) in prefix.iter().enumerate() {
            p.speculate(0x40 + 4 * (i as u64 % 7), *t);
        }
        let ckpt = p.checkpoint();
        let before = p.predict(0x1234);
        for (i, t) in suffix.iter().enumerate() {
            p.speculate(0x80 + 4 * (i as u64 % 5), *t);
        }
        p.recover(&ckpt);
        prop_assert_eq!(p.predict(0x1234), before);
    }

    /// Partition shares sum to at most the full resource and never give a
    /// zero allocation for a non-zero share.
    #[test]
    fn partition_shares_are_sound(resource in 8u32..4096) {
        for plan in [PartitionPlan::MT_ITO, PartitionPlan::MT_OT_IT, PartitionPlan::MT_ONLY] {
            let total = plan.mt(resource) + plan.ot(resource) + plan.it(resource);
            prop_assert!(total <= resource + 2, "rounding never oversubscribes by much");
            if plan.ot_eighths > 0 {
                prop_assert!(plan.ot(resource) >= 1);
            }
        }
    }
}
