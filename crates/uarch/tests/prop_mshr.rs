//! Property tests for MSHR bookkeeping, driven against a reference model:
//! a random stream of misses, merges, and time advances must never
//! double-count an allocation, never exceed the configured capacity, and
//! never let a merged access complete before the miss it merged onto.

use phelps_uarch::config::{CacheConfig, CoreConfig};
use phelps_uarch::mem::{AccessLevel, Cache, MemRequest, MemoryHierarchy};
use proptest::prelude::*;

const MSHRS: usize = 4;
const BLOCK: u64 = 64;

fn small_cache() -> Cache {
    Cache::new(CacheConfig {
        size_bytes: 1024,
        ways: 2,
        block_bytes: BLOCK,
        latency: 2,
        mshrs: MSHRS as u32,
        ports: 0,
    })
}

/// One step of the random MSHR workout: which block to touch, the fill
/// latency a new miss would take, and how far time advances first.
type Step = (u64, u64, u64);

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec((0u64..12, 1u64..50, 0u64..8), 1..200)
}

proptest! {
    /// The cache's MSHR file tracked against a shadow model: one entry
    /// per in-flight block, expiring when its fill completes. Allocation
    /// must succeed exactly when the model says there is room (or an
    /// entry to merge into), occupancy must match the model exactly
    /// (no double-counting, no leaked release), and capacity is a hard
    /// ceiling.
    #[test]
    fn mshr_file_matches_shadow_model(ops in steps()) {
        let mut c = small_cache();
        // Shadow model: (block, done_cycle) of each in-flight miss.
        let mut model: Vec<(u64, u64)> = Vec::new();
        let mut now = 0u64;
        for (blk_sel, lat, advance) in ops {
            now += advance;
            model.retain(|&(_, done)| done > now);
            let addr = blk_sel * BLOCK + (blk_sel % BLOCK);

            if let Some((done, _level)) = c.mshr_pending(addr, now) {
                // Merge: the completion time is the *original* miss's.
                let modeled = model.iter().find(|&&(b, _)| b == blk_sel);
                prop_assert_eq!(modeled.map(|&(_, d)| d), Some(done));
                prop_assert!(done > now, "expired entry surfaced as pending");
            } else {
                prop_assert!(
                    !model.iter().any(|&(b, _)| b == blk_sel),
                    "model has an entry the cache lost"
                );
                let done = now + lat;
                let ok = c.mshr_allocate(addr, now, done, AccessLevel::L2);
                prop_assert_eq!(ok, model.len() < MSHRS, "allocate success mismatch");
                if ok {
                    model.push((blk_sel, done));
                }
            }

            let in_use = c.mshrs_in_use(now);
            prop_assert_eq!(in_use, model.len(), "occupancy double-count or leak");
            prop_assert!(in_use <= MSHRS, "capacity exceeded");
        }
    }

    /// Re-allocating a block that is already in flight merges instead of
    /// consuming a second MSHR, and the merged entry keeps the original
    /// completion cycle (a merge can never finish earlier than the miss
    /// it joined).
    #[test]
    fn merge_keeps_original_completion_and_occupancy(
        lat_a in 5u64..60,
        lat_b in 1u64..60,
        gap in 0u64..4,
    ) {
        let mut c = small_cache();
        let done_a = gap + lat_a;
        prop_assert!(c.mshr_allocate(0x1000, gap, done_a, AccessLevel::L3));
        let before = c.mshrs_in_use(gap);
        // Second allocation to the same block, possibly with a shorter
        // latency: merged, not double-counted.
        prop_assert!(c.mshr_allocate(0x1000 + BLOCK / 2, gap, gap + lat_b, AccessLevel::L2));
        prop_assert_eq!(c.mshrs_in_use(gap), before);
        let (done, level) = c.mshr_pending(0x1000, gap).expect("still in flight");
        prop_assert_eq!(done, done_a, "merge rewrote the completion cycle");
        prop_assert_eq!(level, AccessLevel::L3);
    }

    /// End-to-end through the hierarchy: a load that lands on a block
    /// with an in-flight miss completes exactly when the original miss
    /// does — never earlier, regardless of how late it arrives.
    #[test]
    fn merged_hierarchy_loads_never_complete_early(
        blk in 0u64..64,
        delta in 1u64..12,
    ) {
        let mut m = MemoryHierarchy::new(&CoreConfig::paper_default().ideal_memory());
        let addr = 0x10_0000 + blk * BLOCK;
        let first = m.request(MemRequest::load(0, 0x40, addr, 10));
        prop_assert!(first.done_cycle > 10, "cold load must miss");
        let at = 10 + delta % (first.done_cycle - 10).max(1);
        let merged = m.request(MemRequest::load(0, 0x44, addr + BLOCK / 2, at));
        prop_assert_eq!(merged.done_cycle, first.done_cycle);
        prop_assert!(merged.done_cycle >= at);
    }
}
