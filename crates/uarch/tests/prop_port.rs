//! Property tests on the bandwidth-limited admission port: the
//! arbitration primitive the shared uncore's determinism rests on.
//!
//! Two properties carry the co-run engine's correctness argument:
//! *monotonicity* (for monotone request cycles the admission cycle
//! never decreases, so the fixed tenant-step order yields a fixed
//! arbitration order) and *work conservation* (a delayed request only
//! ever waits behind a genuinely full port — no bubbles — so finite
//! bandwidth models contention, never deadlock or starvation).

use phelps_uarch::mem::Port;
use proptest::prelude::*;
use std::collections::HashMap;

/// A monotone request stream: positive deltas produce strictly ordered
/// cycles, zeros produce same-cycle bursts.
fn monotone_cycles(deltas: &[u64]) -> Vec<u64> {
    let mut cycles = Vec::with_capacity(deltas.len());
    let mut c = 0u64;
    for d in deltas {
        c += d;
        cycles.push(c);
    }
    cycles
}

proptest! {
    /// For monotone request cycles, admission cycles are monotone, never
    /// early, and the port's stall counter is exactly the summed delay.
    #[test]
    fn admission_is_monotone_and_accounts_stalls(
        width in 1u32..5,
        deltas in prop::collection::vec(0u64..4, 1..200),
    ) {
        let mut p = Port::new(width);
        let mut last = 0u64;
        let mut delay_sum = 0u64;
        for c in monotone_cycles(&deltas) {
            let a = p.admit(c);
            prop_assert!(a >= c, "admitted at {a} before request cycle {c}");
            prop_assert!(a >= last, "admission went backwards: {a} after {last}");
            last = a;
            delay_sum += a - c;
        }
        prop_assert_eq!(p.stall_cycles(), delay_sum);
    }

    /// Work conservation: a request delayed from `c` to `a` only waits
    /// because every cycle in `[c, a)` is already full — the port never
    /// leaves a bubble a waiting request could have used — and no cycle
    /// ever admits more than `width` requests.
    #[test]
    fn admission_is_work_conserving(
        width in 1u32..5,
        deltas in prop::collection::vec(0u64..4, 1..200),
    ) {
        let mut p = Port::new(width);
        let mut admitted_per_cycle: HashMap<u64, u32> = HashMap::new();
        for c in monotone_cycles(&deltas) {
            let a = p.admit(c);
            let n = admitted_per_cycle.entry(a).or_insert(0);
            *n += 1;
            prop_assert!(*n <= width, "cycle {a} admitted {n} > width {width}");
            for skipped in c..a {
                prop_assert_eq!(
                    admitted_per_cycle.get(&skipped).copied().unwrap_or(0),
                    width,
                    "request waited past cycle {} which still had a free slot",
                    skipped
                );
            }
        }
    }

    /// A width-0 (unlimited) port is fully transparent — every request
    /// admits at its own cycle with zero accumulated stall, even for
    /// arbitrary non-monotone request streams.
    #[test]
    fn unlimited_port_never_stalls(
        cycles in prop::collection::vec(any::<u64>(), 1..200),
    ) {
        let mut p = Port::new(0);
        for c in &cycles {
            prop_assert_eq!(p.admit(*c), *c);
        }
        prop_assert_eq!(p.stall_cycles(), 0);
    }
}
