//! Merge-law property tests for [`SimStats::merge`].
//!
//! Checkpoint-sharded simulation folds per-shard stats through `merge`
//! in shard order and relies on the result being independent of how the
//! folds associate (worker count must never change the merged bytes).
//! That requires the merge to be associative and commutative with
//! `SimStats::default()` as identity — pinned here over the full `u64`
//! range, including values near `u64::MAX` so the saturating-sum path is
//! exercised.

use phelps_uarch::stats::SimStats;
use proptest::prelude::*;

/// Number of counter fields in [`SimStats`]; `from_fields` and `fields`
/// destructure exhaustively, so adding a field breaks this test until
/// the new field gets a merge decision *and* coverage here.
const NFIELDS: usize = 29;

fn from_fields(v: &[u64; NFIELDS]) -> SimStats {
    let [cycles, mt_retired, ht_retired, mt_cond_branches, mt_mispredicts, mispredicts_from_queue, preds_from_queue, queue_untimely, load_violations, triggers, terminations, l1i_accesses, l1i_misses, l1d_accesses, l1d_misses, l1d_store_accesses, l1d_store_misses, l2_misses, l3_misses, prefetches_issued, prefetch_hits, mt_fetch_stall_mispredict, mt_fetch_stall_trigger, mt_fetch_stall_ifetch, l1i_port_stalls, l1d_port_stalls, l2_port_stalls, l3_port_stalls, dram_queue_stalls] =
        *v;
    SimStats {
        cycles,
        mt_retired,
        ht_retired,
        mt_cond_branches,
        mt_mispredicts,
        mispredicts_from_queue,
        preds_from_queue,
        queue_untimely,
        load_violations,
        triggers,
        terminations,
        l1i_accesses,
        l1i_misses,
        l1d_accesses,
        l1d_misses,
        l1d_store_accesses,
        l1d_store_misses,
        l2_misses,
        l3_misses,
        prefetches_issued,
        prefetch_hits,
        mt_fetch_stall_mispredict,
        mt_fetch_stall_trigger,
        mt_fetch_stall_ifetch,
        l1i_port_stalls,
        l1d_port_stalls,
        l2_port_stalls,
        l3_port_stalls,
        dram_queue_stalls,
    }
}

fn fields(s: &SimStats) -> [u64; NFIELDS] {
    let SimStats {
        cycles,
        mt_retired,
        ht_retired,
        mt_cond_branches,
        mt_mispredicts,
        mispredicts_from_queue,
        preds_from_queue,
        queue_untimely,
        load_violations,
        triggers,
        terminations,
        l1i_accesses,
        l1i_misses,
        l1d_accesses,
        l1d_misses,
        l1d_store_accesses,
        l1d_store_misses,
        l2_misses,
        l3_misses,
        prefetches_issued,
        prefetch_hits,
        mt_fetch_stall_mispredict,
        mt_fetch_stall_trigger,
        mt_fetch_stall_ifetch,
        l1i_port_stalls,
        l1d_port_stalls,
        l2_port_stalls,
        l3_port_stalls,
        dram_queue_stalls,
    } = s.clone();
    [
        cycles,
        mt_retired,
        ht_retired,
        mt_cond_branches,
        mt_mispredicts,
        mispredicts_from_queue,
        preds_from_queue,
        queue_untimely,
        load_violations,
        triggers,
        terminations,
        l1i_accesses,
        l1i_misses,
        l1d_accesses,
        l1d_misses,
        l1d_store_accesses,
        l1d_store_misses,
        l2_misses,
        l3_misses,
        prefetches_issued,
        prefetch_hits,
        mt_fetch_stall_mispredict,
        mt_fetch_stall_trigger,
        mt_fetch_stall_ifetch,
        l1i_port_stalls,
        l1d_port_stalls,
        l2_port_stalls,
        l3_port_stalls,
        dram_queue_stalls,
    ]
}

/// Counter values spanning the interesting range: ordinary magnitudes
/// plus values close enough to `u64::MAX` that two or three of them
/// saturate when summed.
fn counter_value() -> impl Strategy<Value = u64> {
    prop_oneof![0u64..1_000_000, (u64::MAX - 1_000)..=u64::MAX, any::<u64>(),]
}

fn stats() -> impl Strategy<Value = SimStats> {
    prop::collection::vec(counter_value(), NFIELDS..NFIELDS + 1).prop_map(|v| {
        let mut a = [0u64; NFIELDS];
        a.copy_from_slice(&v);
        from_fields(&a)
    })
}

fn merged(a: &SimStats, b: &SimStats) -> SimStats {
    let mut m = a.clone();
    m.merge(b);
    m
}

proptest! {
    #[test]
    fn merge_is_per_field_saturating_sum(a in stats(), b in stats()) {
        let m = fields(&merged(&a, &b));
        let (fa, fb) = (fields(&a), fields(&b));
        for i in 0..NFIELDS {
            prop_assert_eq!(m[i], fa[i].saturating_add(fb[i]), "field {}", i);
        }
    }

    #[test]
    fn default_is_identity(a in stats()) {
        prop_assert_eq!(merged(&a, &SimStats::default()), a.clone());
        prop_assert_eq!(merged(&SimStats::default(), &a), a);
    }

    #[test]
    fn merge_commutes(a in stats(), b in stats()) {
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    #[test]
    fn merge_associates(a in stats(), b in stats(), c in stats()) {
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }
}
