//! Core and memory-hierarchy configuration.
//!
//! [`CoreConfig::paper_default`] reproduces Table III of the paper: an
//! 8-wide, 11-stage superscalar with a 632-entry ROB, 64KB-class TAGE-SC-L
//! branch prediction, and a three-level cache hierarchy. [`PartitionPlan`]
//! reproduces Table I: the fractional allocation of frontend width and
//! resources among the main thread (MT), outer-thread (OT), inner-thread
//! (IT), and inner-thread-only (ITO).

use std::fmt;

/// Which hardware thread contexts are active.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ActiveThreads {
    /// Main thread only (no pre-execution) with full resources.
    MainOnly,
    /// Main thread only, but resources partitioned as if a helper thread
    /// were active (the Fig. 13c isolation experiment).
    MainPartitioned,
    /// Main thread + inner-thread-only helper (non-nested loop).
    MainPlusIto,
    /// Main thread + outer-thread + inner-thread (nested loop).
    MainPlusOtIt,
}

/// Per-thread resource shares for one partitioning scenario (Table I).
///
/// Shares are expressed in eighths so the paper's 1/2, 1/8 and 3/8 fractions
/// are exact.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PartitionPlan {
    /// Main-thread share, in eighths.
    pub mt_eighths: u32,
    /// Outer-thread share, in eighths (0 when not running).
    pub ot_eighths: u32,
    /// Inner-thread (or inner-thread-only) share, in eighths.
    pub it_eighths: u32,
}

impl PartitionPlan {
    /// Table I, row `MT + ITO`: 1/2 main thread, 1/2 inner-thread-only.
    pub const MT_ITO: PartitionPlan = PartitionPlan {
        mt_eighths: 4,
        ot_eighths: 0,
        it_eighths: 4,
    };

    /// Table I, row `MT + OT + IT`: 1/2 main, 1/8 outer, 3/8 inner.
    pub const MT_OT_IT: PartitionPlan = PartitionPlan {
        mt_eighths: 4,
        ot_eighths: 1,
        it_eighths: 3,
    };

    /// The whole machine for the main thread.
    pub const MT_ONLY: PartitionPlan = PartitionPlan {
        mt_eighths: 8,
        ot_eighths: 0,
        it_eighths: 0,
    };

    /// The plan for a given set of active threads.
    pub fn for_threads(active: ActiveThreads) -> PartitionPlan {
        match active {
            ActiveThreads::MainOnly => PartitionPlan::MT_ONLY,
            ActiveThreads::MainPartitioned => PartitionPlan {
                mt_eighths: 4,
                ot_eighths: 0,
                it_eighths: 0,
            },
            ActiveThreads::MainPlusIto => PartitionPlan::MT_ITO,
            ActiveThreads::MainPlusOtIt => PartitionPlan::MT_OT_IT,
        }
    }

    /// Applies a share (in eighths) to a resource count, rounding down but
    /// never below 1 when the share is non-zero.
    pub fn scale(resource: u32, eighths: u32) -> u32 {
        if eighths == 0 {
            return 0;
        }
        ((resource * eighths) / 8).max(1)
    }

    /// Main-thread allocation of `resource`.
    pub fn mt(&self, resource: u32) -> u32 {
        PartitionPlan::scale(resource, self.mt_eighths)
    }

    /// Outer-thread allocation of `resource`.
    pub fn ot(&self, resource: u32) -> u32 {
        PartitionPlan::scale(resource, self.ot_eighths)
    }

    /// Inner-thread allocation of `resource`.
    pub fn it(&self, resource: u32) -> u32 {
        PartitionPlan::scale(resource, self.it_eighths)
    }
}

/// One cache level's geometry and latency.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways).
    pub ways: u32,
    /// Cache block size in bytes.
    pub block_bytes: u64,
    /// Access (hit) latency in cycles.
    pub latency: u32,
    /// Number of miss status holding registers.
    pub mshrs: u32,
    /// Requests admitted per cycle at this level's port; `0` means
    /// unlimited bandwidth (the pre-port synchronous model).
    pub ports: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.ways as u64 * self.block_bytes)
    }
}

/// Full core + memory-hierarchy configuration (Table III).
#[derive(Clone, PartialEq, Debug)]
pub struct CoreConfig {
    /// Frontend/retire superscalar width (instructions per cycle).
    pub width: u32,
    /// Fetch-to-retire depth in stages. Determines the misprediction
    /// re-fill penalty.
    pub pipeline_stages: u32,
    /// Reorder buffer entries.
    pub rob: u32,
    /// Physical register file size (free-list-governed rename stall).
    pub prf: u32,
    /// Load queue entries.
    pub lq: u32,
    /// Store queue entries.
    pub sq: u32,
    /// Issue queue (scheduler) entries, shared among threads.
    pub iq: u32,
    /// Simple-ALU lanes (also execute branches).
    pub lanes_alu: u32,
    /// Load/store lanes.
    pub lanes_mem: u32,
    /// Complex-ALU lanes (mul/div).
    pub lanes_complex: u32,
    /// L1 instruction cache fronting the fetch stage. A `size_bytes` of
    /// `0` disables instruction-fetch modeling entirely (ideal
    /// instruction supply, the pre-port behavior).
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// L2 unified cache.
    pub l2: CacheConfig,
    /// L3 last-level cache.
    pub l3: CacheConfig,
    /// Main-memory latency in cycles.
    pub dram_latency: u32,
    /// Requests the DRAM queue accepts per cycle; `0` means unlimited.
    pub dram_queue_width: u32,
    /// Enable the IPCP-style L1D prefetcher.
    pub l1d_prefetcher: bool,
    /// Enable the VLDP-style L2 prefetcher.
    pub l2_prefetcher: bool,
}

impl CoreConfig {
    /// The principal configuration of the paper (Table III): 8-wide,
    /// 11-stage, ROB/PRF/LQ/SQ/IQ = 632/696/144/144/128, 32KB L1I (2
    /// cycles), 48KB L1D (3 cycles), 1.25MB L2 (15 cycles), 3MB L3 (40
    /// cycles), 100-cycle DRAM. Port widths model finite bandwidth: two
    /// L1I and two L1D requests per cycle (matching the fetch-group/
    /// `lanes_mem` rate), one request per cycle into each of L2, L3 and
    /// the DRAM queue.
    pub fn paper_default() -> CoreConfig {
        CoreConfig {
            width: 8,
            pipeline_stages: 11,
            rob: 632,
            prf: 696,
            lq: 144,
            sq: 144,
            iq: 128,
            lanes_alu: 4,
            lanes_mem: 2,
            lanes_complex: 2,
            l1i: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                block_bytes: 64,
                latency: 2,
                mshrs: 8,
                ports: 2,
            },
            l1d: CacheConfig {
                size_bytes: 48 * 1024,
                ways: 12,
                block_bytes: 64,
                latency: 3,
                mshrs: 16,
                ports: 2,
            },
            l2: CacheConfig {
                size_bytes: 1280 * 1024,
                ways: 20,
                block_bytes: 64,
                latency: 15,
                mshrs: 32,
                ports: 1,
            },
            l3: CacheConfig {
                size_bytes: 3 * 1024 * 1024,
                ways: 12,
                block_bytes: 64,
                latency: 40,
                mshrs: 64,
                ports: 1,
            },
            dram_latency: 100,
            dram_queue_width: 1,
            l1d_prefetcher: true,
            l2_prefetcher: true,
        }
    }

    /// Effectively-infinite memory bandwidth and instruction supply:
    /// unlimited ports at every level, no DRAM queue limit, and the L1I
    /// disabled (`size_bytes = 0`, i.e. ideal fetch). This reproduces the
    /// pre-port timing model and is used by the golden-compatibility
    /// tests and A/B bandwidth experiments.
    pub fn ideal_memory(mut self) -> CoreConfig {
        self.l1i.size_bytes = 0;
        self.l1i.ports = 0;
        self.l1d.ports = 0;
        self.l2.ports = 0;
        self.l3.ports = 0;
        self.dram_queue_width = 0;
        self
    }

    /// The BR-12w configuration of Fig. 12a: a 12-wide core where the main
    /// thread keeps the full baseline frontend width and resources while the
    /// pre-execution engine gets a 4-wide frontend of its own, with 4 extra
    /// execution lanes.
    pub fn br_12_wide() -> CoreConfig {
        let mut cfg = CoreConfig::paper_default();
        cfg.width = 12;
        cfg.lanes_alu = 6;
        cfg.lanes_mem = 3;
        cfg.lanes_complex = 3;
        cfg
    }

    /// Scales the window (ROB and, commensurately, PRF/LQ/SQ/IQ) to
    /// `rob` entries, for the Fig. 15a sensitivity study.
    pub fn with_window(mut self, rob: u32) -> CoreConfig {
        let base = self.rob.max(1);
        let ratio = |v: u32| ((v as u64 * rob as u64) / base as u64).max(8) as u32;
        self.prf = ratio(self.prf);
        self.lq = ratio(self.lq);
        self.sq = ratio(self.sq);
        self.iq = ratio(self.iq);
        self.rob = rob;
        self
    }

    /// Sets the fetch-to-retire depth (Fig. 15a varies 11, 15, 19).
    pub fn with_pipeline_stages(mut self, stages: u32) -> CoreConfig {
        self.pipeline_stages = stages;
        self
    }

    /// Frontend stages between fetch and dispatch, derived from the total
    /// depth. With the paper's 11 stages this is 7; it grows one-for-one
    /// with total depth.
    pub fn frontend_stages(&self) -> u32 {
        self.pipeline_stages.saturating_sub(4).max(1)
    }

    /// Cycles of fetch bubble charged when a mispredicted branch resolves
    /// (frontend re-fill).
    pub fn redirect_penalty(&self) -> u32 {
        self.frontend_stages()
    }

    /// Total issue width across lane classes.
    pub fn issue_width(&self) -> u32 {
        self.lanes_alu + self.lanes_mem + self.lanes_complex
    }
}

impl fmt::Display for CoreConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-wide {}-stage ROB={} PRF={} LQ={} SQ={} IQ={}",
            self.width, self.pipeline_stages, self.rob, self.prf, self.lq, self.sq, self.iq
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table_iii() {
        let c = CoreConfig::paper_default();
        assert_eq!(c.width, 8);
        assert_eq!(c.pipeline_stages, 11);
        assert_eq!((c.rob, c.prf, c.lq, c.sq, c.iq), (632, 696, 144, 144, 128));
        assert_eq!(c.lanes_alu + c.lanes_mem + c.lanes_complex, 8);
        assert_eq!(c.l1i.size_bytes, 32 * 1024);
        assert_eq!(c.l1i.latency, 2);
        assert_eq!(c.l1d.size_bytes, 48 * 1024);
        assert_eq!(c.l1d.ways, 12);
        assert_eq!(c.l1d.latency, 3);
        assert_eq!(c.l2.latency, 15);
        assert_eq!(c.l3.latency, 40);
        assert_eq!(c.dram_latency, 100);
        // Finite bandwidth is the paper default; L1 ports track the
        // fetch/AGU rate while the shared levels take one per cycle.
        assert_eq!((c.l1i.ports, c.l1d.ports), (2, 2));
        assert_eq!((c.l2.ports, c.l3.ports, c.dram_queue_width), (1, 1, 1));
    }

    #[test]
    fn ideal_memory_removes_every_bandwidth_limit() {
        let c = CoreConfig::paper_default().ideal_memory();
        assert_eq!(c.l1i.size_bytes, 0, "ideal fetch disables the L1I");
        assert_eq!(
            (
                c.l1i.ports,
                c.l1d.ports,
                c.l2.ports,
                c.l3.ports,
                c.dram_queue_width
            ),
            (0, 0, 0, 0, 0)
        );
        // Everything else stays at the paper default.
        assert_eq!(c.l1d.size_bytes, 48 * 1024);
        assert_eq!(c.rob, 632);
    }

    #[test]
    fn cache_sets_geometry() {
        let c = CoreConfig::paper_default();
        assert_eq!(c.l1d.sets(), 48 * 1024 / (12 * 64));
        assert_eq!(c.l2.sets(), 1280 * 1024 / (20 * 64));
    }

    #[test]
    fn table_i_fractions() {
        // MT + ITO: both halves.
        let p = PartitionPlan::for_threads(ActiveThreads::MainPlusIto);
        assert_eq!(p.mt(8), 4);
        assert_eq!(p.it(8), 4);
        assert_eq!(p.ot(8), 0);
        assert_eq!(p.mt(632), 316);
        assert_eq!(p.it(144), 72);

        // MT + OT + IT: 1/2, 1/8, 3/8.
        let p = PartitionPlan::for_threads(ActiveThreads::MainPlusOtIt);
        assert_eq!(p.mt(8), 4);
        assert_eq!(p.ot(8), 1);
        assert_eq!(p.it(8), 3);
        assert_eq!(p.ot(632), 79);
        assert_eq!(p.it(632), 237);
    }

    #[test]
    fn partition_scale_never_zero_for_nonzero_share() {
        assert_eq!(PartitionPlan::scale(4, 1), 1, "rounds down to at least 1");
        assert_eq!(PartitionPlan::scale(100, 0), 0);
    }

    #[test]
    fn window_scaling_is_commensurate() {
        let c = CoreConfig::paper_default().with_window(1024);
        assert_eq!(c.rob, 1024);
        assert!(c.prf > 1024, "PRF scales with ROB: {}", c.prf);
        assert_eq!(c.lq, 144 * 1024 / 632);
        let c = CoreConfig::paper_default().with_window(316);
        assert_eq!(c.rob, 316);
        assert_eq!(c.lq, 144 * 316 / 632);
    }

    #[test]
    fn deeper_pipelines_pay_larger_redirect_penalty() {
        let d11 = CoreConfig::paper_default().redirect_penalty();
        let d15 = CoreConfig::paper_default()
            .with_pipeline_stages(15)
            .redirect_penalty();
        let d19 = CoreConfig::paper_default()
            .with_pipeline_stages(19)
            .redirect_penalty();
        assert!(d11 < d15 && d15 < d19);
    }

    #[test]
    fn br12w_keeps_mt_at_baseline() {
        let c = CoreConfig::br_12_wide();
        assert_eq!(c.width, 12);
        assert_eq!(c.rob, 632);
        assert_eq!(c.issue_width(), 12);
    }
}
