//! Simulation statistics.
//!
//! [`SimStats`] is a passive counter bundle filled in by the timing model
//! and read by the experiment harness. Derived quantities (IPC, MPKI,
//! speedups) are computed on demand so the raw counters stay authoritative.

/// Where a conditional-branch prediction consumed by the fetch unit came
/// from.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PredSource {
    /// The core's default (TAGE-SC-L-class) predictor.
    DefaultPredictor,
    /// A Phelps prediction queue (or a Branch Runahead outcome queue).
    PreExecQueue,
    /// Oracle prediction (perfect-BP configuration).
    Oracle,
}

/// Aggregate counters for one simulation run.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Instructions retired by the main thread.
    pub mt_retired: u64,
    /// Instructions retired by helper threads / pre-execution engines.
    pub ht_retired: u64,
    /// Conditional branches retired by the main thread.
    pub mt_cond_branches: u64,
    /// Main-thread conditional-branch mispredictions (fetch-time prediction
    /// wrong, regardless of source).
    pub mt_mispredicts: u64,
    /// Mispredictions whose consumed prediction came from a pre-execution
    /// queue.
    pub mispredicts_from_queue: u64,
    /// Conditional-branch predictions consumed from a pre-execution queue.
    pub preds_from_queue: u64,
    /// Conditional-branch predictions from the default predictor while a
    /// queue was expected but empty/untimely.
    pub queue_untimely: u64,
    /// Pipeline squashes due to load-store ordering violations.
    pub load_violations: u64,
    /// Helper-thread trigger events (pre-execution started).
    pub triggers: u64,
    /// Helper-thread termination events.
    pub terminations: u64,
    /// L1I instruction-fetch accesses (one per fetched cache block).
    pub l1i_accesses: u64,
    /// L1I instruction-fetch misses.
    pub l1i_misses: u64,
    /// L1D accesses / misses (demand loads only).
    pub l1d_accesses: u64,
    /// L1D demand-load misses.
    pub l1d_misses: u64,
    /// L1D retired-store accesses (write-buffer refill traffic), counted
    /// apart from demand loads so they never inflate load-MPKI.
    pub l1d_store_accesses: u64,
    /// L1D retired-store misses.
    pub l1d_store_misses: u64,
    /// L2 demand misses.
    pub l2_misses: u64,
    /// L3 demand misses.
    pub l3_misses: u64,
    /// Prefetches issued (all levels).
    pub prefetches_issued: u64,
    /// Demand hits on prefetched blocks.
    pub prefetch_hits: u64,
    /// Cycles the main thread's fetch stalled behind an unresolved
    /// misprediction.
    pub mt_fetch_stall_mispredict: u64,
    /// Cycles the main thread's fetch stalled on live-in move injection.
    pub mt_fetch_stall_trigger: u64,
    /// Cycles the main thread's fetch stalled on an in-flight L1I miss.
    pub mt_fetch_stall_ifetch: u64,
    /// Cycles of admission delay imposed by the L1I port.
    pub l1i_port_stalls: u64,
    /// Cycles of admission delay imposed by the L1D port.
    pub l1d_port_stalls: u64,
    /// Cycles of admission delay imposed by the L2 port.
    pub l2_port_stalls: u64,
    /// Cycles of admission delay imposed by the L3 port.
    pub l3_port_stalls: u64,
    /// Cycles of admission delay imposed by the DRAM queue.
    pub dram_queue_stalls: u64,
}

impl SimStats {
    /// Creates a zeroed counter bundle.
    pub fn new() -> SimStats {
        SimStats::default()
    }

    /// Main-thread instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.mt_retired as f64 / self.cycles as f64
        }
    }

    /// Main-thread mispredictions per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        if self.mt_retired == 0 {
            0.0
        } else {
            1000.0 * self.mt_mispredicts as f64 / self.mt_retired as f64
        }
    }

    /// Branch-prediction accuracy over retired conditional branches.
    pub fn branch_accuracy(&self) -> f64 {
        if self.mt_cond_branches == 0 {
            1.0
        } else {
            1.0 - self.mt_mispredicts as f64 / self.mt_cond_branches as f64
        }
    }

    /// Helper-thread instruction overhead, normalized to main-thread
    /// instructions (Fig. 13b is expressed per 100M retired).
    pub fn ht_overhead_ratio(&self) -> f64 {
        if self.mt_retired == 0 {
            0.0
        } else {
            self.ht_retired as f64 / self.mt_retired as f64
        }
    }
}

/// Speedup of `test` over `baseline` by IPC.
pub fn speedup(baseline: &SimStats, test: &SimStats) -> f64 {
    if baseline.ipc() == 0.0 {
        0.0
    } else {
        test.ipc() / baseline.ipc()
    }
}

/// Weighted harmonic mean of IPCs, the paper's SimPoint aggregation.
///
/// `points` are `(weight, ipc)` pairs; weights need not sum to one.
///
/// # Examples
///
/// ```
/// use phelps_uarch::stats::weighted_harmonic_mean_ipc;
/// let ipc = weighted_harmonic_mean_ipc(&[(1.0, 2.0), (1.0, 4.0)]);
/// assert!((ipc - 8.0 / 3.0).abs() < 1e-12);
/// ```
pub fn weighted_harmonic_mean_ipc(points: &[(f64, f64)]) -> f64 {
    let total_w: f64 = points.iter().map(|(w, _)| w).sum();
    if total_w == 0.0 {
        return 0.0;
    }
    let denom: f64 = points
        .iter()
        .filter(|(_, ipc)| *ipc > 0.0)
        .map(|(w, ipc)| w / ipc)
        .sum();
    if denom == 0.0 {
        0.0
    } else {
        total_w / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_mpki() {
        let s = SimStats {
            cycles: 1000,
            mt_retired: 2500,
            mt_cond_branches: 500,
            mt_mispredicts: 25,
            ..SimStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.mpki() - 10.0).abs() < 1e-12);
        assert!((s.branch_accuracy() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let s = SimStats::new();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mpki(), 0.0);
        assert_eq!(s.branch_accuracy(), 1.0);
        assert_eq!(s.ht_overhead_ratio(), 0.0);
    }

    #[test]
    fn speedup_ratio() {
        let base = SimStats {
            cycles: 1000,
            mt_retired: 1000,
            ..SimStats::default()
        };
        let fast = SimStats {
            cycles: 500,
            mt_retired: 1000,
            ..SimStats::default()
        };
        assert!((speedup(&base, &fast) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_dominated_by_slow_points() {
        let m = weighted_harmonic_mean_ipc(&[(0.9, 1.0), (0.1, 100.0)]);
        assert!(m < 2.0, "harmonic mean stays near the dominant slow point");
    }

    #[test]
    fn harmonic_mean_single_point_is_identity() {
        assert!((weighted_harmonic_mean_ipc(&[(0.37, 3.2)]) - 3.2).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_empty_is_zero() {
        assert_eq!(weighted_harmonic_mean_ipc(&[]), 0.0);
    }

    #[test]
    fn speedup_of_identical_stats_is_one() {
        let s = SimStats {
            cycles: 777,
            mt_retired: 1234,
            ..SimStats::default()
        };
        assert!((speedup(&s, &s.clone()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_against_stalled_baseline_is_zero() {
        // Zero-IPC baseline (no retired instructions): the ratio is
        // undefined; the guard reports 0 rather than inf/NaN.
        let base = SimStats {
            cycles: 1000,
            ..SimStats::default()
        };
        let fast = SimStats {
            cycles: 500,
            mt_retired: 1000,
            ..SimStats::default()
        };
        assert_eq!(speedup(&base, &fast), 0.0);
    }

    #[test]
    fn ipc_with_retired_but_no_cycles_is_zero() {
        // Degenerate bundle (filled mid-run before cycles were set).
        let s = SimStats {
            mt_retired: 10,
            ..SimStats::default()
        };
        assert_eq!(s.ipc(), 0.0);
    }

    #[test]
    fn mpki_with_mispredicts_but_no_retired_is_zero() {
        let s = SimStats {
            mt_mispredicts: 5,
            ..SimStats::default()
        };
        assert_eq!(s.mpki(), 0.0);
    }

    #[test]
    fn branch_accuracy_fully_wrong_is_zero() {
        let s = SimStats {
            mt_cond_branches: 8,
            mt_mispredicts: 8,
            ..SimStats::default()
        };
        assert!(s.branch_accuracy().abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_zero_weights_is_zero() {
        assert_eq!(weighted_harmonic_mean_ipc(&[(0.0, 2.0), (0.0, 4.0)]), 0.0);
    }

    #[test]
    fn harmonic_mean_skips_zero_ipc_points() {
        // A zero-IPC point cannot contribute 1/0; it is excluded from the
        // denominator rather than poisoning the mean.
        let m = weighted_harmonic_mean_ipc(&[(0.5, 0.0), (0.5, 2.0)]);
        assert!(m.is_finite());
        assert!(m > 0.0);
    }

    #[test]
    fn ht_overhead_matches_fig13b_units() {
        let s = SimStats {
            mt_retired: 100_000_000,
            ht_retired: 34_700_000,
            ..SimStats::default()
        };
        assert!((s.ht_overhead_ratio() - 0.347).abs() < 1e-12);
    }
}
