//! Simulation statistics.
//!
//! [`SimStats`] is a passive counter bundle filled in by the timing model
//! and read by the experiment harness. Derived quantities (IPC, MPKI,
//! speedups) are computed on demand so the raw counters stay authoritative.

/// Where a conditional-branch prediction consumed by the fetch unit came
/// from.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PredSource {
    /// The core's default (TAGE-SC-L-class) predictor.
    DefaultPredictor,
    /// A Phelps prediction queue (or a Branch Runahead outcome queue).
    PreExecQueue,
    /// Oracle prediction (perfect-BP configuration).
    Oracle,
}

/// Aggregate counters for one simulation run.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Instructions retired by the main thread.
    pub mt_retired: u64,
    /// Instructions retired by helper threads / pre-execution engines.
    pub ht_retired: u64,
    /// Conditional branches retired by the main thread.
    pub mt_cond_branches: u64,
    /// Main-thread conditional-branch mispredictions (fetch-time prediction
    /// wrong, regardless of source).
    pub mt_mispredicts: u64,
    /// Mispredictions whose consumed prediction came from a pre-execution
    /// queue.
    pub mispredicts_from_queue: u64,
    /// Conditional-branch predictions consumed from a pre-execution queue.
    pub preds_from_queue: u64,
    /// Conditional-branch predictions from the default predictor while a
    /// queue was expected but empty/untimely.
    pub queue_untimely: u64,
    /// Pipeline squashes due to load-store ordering violations.
    pub load_violations: u64,
    /// Helper-thread trigger events (pre-execution started).
    pub triggers: u64,
    /// Helper-thread termination events.
    pub terminations: u64,
    /// L1I instruction-fetch accesses (one per fetched cache block).
    pub l1i_accesses: u64,
    /// L1I instruction-fetch misses.
    pub l1i_misses: u64,
    /// L1D accesses / misses (demand loads only).
    pub l1d_accesses: u64,
    /// L1D demand-load misses.
    pub l1d_misses: u64,
    /// L1D retired-store accesses (write-buffer refill traffic), counted
    /// apart from demand loads so they never inflate load-MPKI.
    pub l1d_store_accesses: u64,
    /// L1D retired-store misses.
    pub l1d_store_misses: u64,
    /// L2 demand misses.
    pub l2_misses: u64,
    /// L3 demand misses.
    pub l3_misses: u64,
    /// Prefetches issued (all levels).
    pub prefetches_issued: u64,
    /// Demand hits on prefetched blocks.
    pub prefetch_hits: u64,
    /// Cycles the main thread's fetch stalled behind an unresolved
    /// misprediction.
    pub mt_fetch_stall_mispredict: u64,
    /// Cycles the main thread's fetch stalled on live-in move injection.
    pub mt_fetch_stall_trigger: u64,
    /// Cycles the main thread's fetch stalled on an in-flight L1I miss.
    pub mt_fetch_stall_ifetch: u64,
    /// Cycles of admission delay imposed by the L1I port.
    pub l1i_port_stalls: u64,
    /// Cycles of admission delay imposed by the L1D port.
    pub l1d_port_stalls: u64,
    /// Cycles of admission delay imposed by the L2 port.
    pub l2_port_stalls: u64,
    /// Cycles of admission delay imposed by the L3 port.
    pub l3_port_stalls: u64,
    /// Cycles of admission delay imposed by the DRAM queue.
    pub dram_queue_stalls: u64,
}

impl SimStats {
    /// Creates a zeroed counter bundle.
    pub fn new() -> SimStats {
        SimStats::default()
    }

    /// Folds another run's counters into this one.
    ///
    /// Every field of [`SimStats`] is a pure event count, so the merge is
    /// a per-field saturating sum — associative and commutative, with
    /// `SimStats::default()` as the identity (the merge-law property
    /// tests in `tests/prop_stats_merge.rs` pin all three). Derived
    /// quantities (IPC, MPKI, accuracy, overhead ratios) are *methods*
    /// computed from the raw counters at read time, never stored, so
    /// merging can never average a ratio; the audit note below keeps it
    /// that way.
    ///
    /// This is the aggregation primitive behind checkpoint-sharded
    /// simulation: per-shard stats fold into one bundle whose derived
    /// ratios are then exactly the whole-run ratios.
    ///
    /// **Field audit (enforced by convention):** any future field must be
    /// a monotonic event/cycle count. Ratios, averages, and
    /// last-writer-wins scalars (e.g. "final queue depth") are not
    /// mergeable and belong in derived methods or the telemetry gauges
    /// (which store sum + sample-count precisely so *their* merge stays
    /// associative).
    pub fn merge(&mut self, other: &SimStats) {
        let SimStats {
            cycles,
            mt_retired,
            ht_retired,
            mt_cond_branches,
            mt_mispredicts,
            mispredicts_from_queue,
            preds_from_queue,
            queue_untimely,
            load_violations,
            triggers,
            terminations,
            l1i_accesses,
            l1i_misses,
            l1d_accesses,
            l1d_misses,
            l1d_store_accesses,
            l1d_store_misses,
            l2_misses,
            l3_misses,
            prefetches_issued,
            prefetch_hits,
            mt_fetch_stall_mispredict,
            mt_fetch_stall_trigger,
            mt_fetch_stall_ifetch,
            l1i_port_stalls,
            l1d_port_stalls,
            l2_port_stalls,
            l3_port_stalls,
            dram_queue_stalls,
        } = other;
        // Exhaustive destructuring: adding a SimStats field without
        // deciding its merge behavior fails to compile here.
        self.cycles = self.cycles.saturating_add(*cycles);
        self.mt_retired = self.mt_retired.saturating_add(*mt_retired);
        self.ht_retired = self.ht_retired.saturating_add(*ht_retired);
        self.mt_cond_branches = self.mt_cond_branches.saturating_add(*mt_cond_branches);
        self.mt_mispredicts = self.mt_mispredicts.saturating_add(*mt_mispredicts);
        self.mispredicts_from_queue = self
            .mispredicts_from_queue
            .saturating_add(*mispredicts_from_queue);
        self.preds_from_queue = self.preds_from_queue.saturating_add(*preds_from_queue);
        self.queue_untimely = self.queue_untimely.saturating_add(*queue_untimely);
        self.load_violations = self.load_violations.saturating_add(*load_violations);
        self.triggers = self.triggers.saturating_add(*triggers);
        self.terminations = self.terminations.saturating_add(*terminations);
        self.l1i_accesses = self.l1i_accesses.saturating_add(*l1i_accesses);
        self.l1i_misses = self.l1i_misses.saturating_add(*l1i_misses);
        self.l1d_accesses = self.l1d_accesses.saturating_add(*l1d_accesses);
        self.l1d_misses = self.l1d_misses.saturating_add(*l1d_misses);
        self.l1d_store_accesses = self.l1d_store_accesses.saturating_add(*l1d_store_accesses);
        self.l1d_store_misses = self.l1d_store_misses.saturating_add(*l1d_store_misses);
        self.l2_misses = self.l2_misses.saturating_add(*l2_misses);
        self.l3_misses = self.l3_misses.saturating_add(*l3_misses);
        self.prefetches_issued = self.prefetches_issued.saturating_add(*prefetches_issued);
        self.prefetch_hits = self.prefetch_hits.saturating_add(*prefetch_hits);
        self.mt_fetch_stall_mispredict = self
            .mt_fetch_stall_mispredict
            .saturating_add(*mt_fetch_stall_mispredict);
        self.mt_fetch_stall_trigger = self
            .mt_fetch_stall_trigger
            .saturating_add(*mt_fetch_stall_trigger);
        self.mt_fetch_stall_ifetch = self
            .mt_fetch_stall_ifetch
            .saturating_add(*mt_fetch_stall_ifetch);
        self.l1i_port_stalls = self.l1i_port_stalls.saturating_add(*l1i_port_stalls);
        self.l1d_port_stalls = self.l1d_port_stalls.saturating_add(*l1d_port_stalls);
        self.l2_port_stalls = self.l2_port_stalls.saturating_add(*l2_port_stalls);
        self.l3_port_stalls = self.l3_port_stalls.saturating_add(*l3_port_stalls);
        self.dram_queue_stalls = self.dram_queue_stalls.saturating_add(*dram_queue_stalls);
    }

    /// Main-thread instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.mt_retired as f64 / self.cycles as f64
        }
    }

    /// Main-thread mispredictions per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        if self.mt_retired == 0 {
            0.0
        } else {
            1000.0 * self.mt_mispredicts as f64 / self.mt_retired as f64
        }
    }

    /// Branch-prediction accuracy over retired conditional branches.
    pub fn branch_accuracy(&self) -> f64 {
        if self.mt_cond_branches == 0 {
            1.0
        } else {
            1.0 - self.mt_mispredicts as f64 / self.mt_cond_branches as f64
        }
    }

    /// Helper-thread instruction overhead, normalized to main-thread
    /// instructions (Fig. 13b is expressed per 100M retired).
    pub fn ht_overhead_ratio(&self) -> f64 {
        if self.mt_retired == 0 {
            0.0
        } else {
            self.ht_retired as f64 / self.mt_retired as f64
        }
    }
}

/// Speedup of `test` over `baseline` by IPC.
pub fn speedup(baseline: &SimStats, test: &SimStats) -> f64 {
    if baseline.ipc() == 0.0 {
        0.0
    } else {
        test.ipc() / baseline.ipc()
    }
}

/// Weighted harmonic mean of IPCs, the paper's SimPoint aggregation.
///
/// `points` are `(weight, ipc)` pairs; weights need not sum to one.
///
/// # Examples
///
/// ```
/// use phelps_uarch::stats::weighted_harmonic_mean_ipc;
/// let ipc = weighted_harmonic_mean_ipc(&[(1.0, 2.0), (1.0, 4.0)]);
/// assert!((ipc - 8.0 / 3.0).abs() < 1e-12);
/// ```
pub fn weighted_harmonic_mean_ipc(points: &[(f64, f64)]) -> f64 {
    let mut total_w = 0.0_f64;
    let mut denom = 0.0_f64;
    for &(w, ipc) in points {
        // Non-finite or negative inputs would silently poison the whole
        // mean (NaN propagates through sums); drop the point with a
        // warning instead so figure output stays numeric.
        if !w.is_finite() || !ipc.is_finite() || w < 0.0 || ipc < 0.0 {
            eprintln!(
                "warning: weighted_harmonic_mean_ipc: ignoring degenerate \
                 point (weight {w}, ipc {ipc})"
            );
            continue;
        }
        total_w += w;
        if ipc > 0.0 {
            denom += w / ipc;
        }
    }
    if total_w == 0.0 {
        if !points.is_empty() {
            eprintln!("warning: weighted_harmonic_mean_ipc: zero total weight; reporting 0.0");
        }
        return 0.0;
    }
    if denom == 0.0 {
        0.0
    } else {
        total_w / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_mpki() {
        let s = SimStats {
            cycles: 1000,
            mt_retired: 2500,
            mt_cond_branches: 500,
            mt_mispredicts: 25,
            ..SimStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.mpki() - 10.0).abs() < 1e-12);
        assert!((s.branch_accuracy() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn zero_division_guards() {
        let s = SimStats::new();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.mpki(), 0.0);
        assert_eq!(s.branch_accuracy(), 1.0);
        assert_eq!(s.ht_overhead_ratio(), 0.0);
    }

    #[test]
    fn speedup_ratio() {
        let base = SimStats {
            cycles: 1000,
            mt_retired: 1000,
            ..SimStats::default()
        };
        let fast = SimStats {
            cycles: 500,
            mt_retired: 1000,
            ..SimStats::default()
        };
        assert!((speedup(&base, &fast) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_dominated_by_slow_points() {
        let m = weighted_harmonic_mean_ipc(&[(0.9, 1.0), (0.1, 100.0)]);
        assert!(m < 2.0, "harmonic mean stays near the dominant slow point");
    }

    #[test]
    fn harmonic_mean_single_point_is_identity() {
        assert!((weighted_harmonic_mean_ipc(&[(0.37, 3.2)]) - 3.2).abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_empty_is_zero() {
        assert_eq!(weighted_harmonic_mean_ipc(&[]), 0.0);
    }

    #[test]
    fn speedup_of_identical_stats_is_one() {
        let s = SimStats {
            cycles: 777,
            mt_retired: 1234,
            ..SimStats::default()
        };
        assert!((speedup(&s, &s.clone()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_against_stalled_baseline_is_zero() {
        // Zero-IPC baseline (no retired instructions): the ratio is
        // undefined; the guard reports 0 rather than inf/NaN.
        let base = SimStats {
            cycles: 1000,
            ..SimStats::default()
        };
        let fast = SimStats {
            cycles: 500,
            mt_retired: 1000,
            ..SimStats::default()
        };
        assert_eq!(speedup(&base, &fast), 0.0);
    }

    #[test]
    fn ipc_with_retired_but_no_cycles_is_zero() {
        // Degenerate bundle (filled mid-run before cycles were set).
        let s = SimStats {
            mt_retired: 10,
            ..SimStats::default()
        };
        assert_eq!(s.ipc(), 0.0);
    }

    #[test]
    fn mpki_with_mispredicts_but_no_retired_is_zero() {
        let s = SimStats {
            mt_mispredicts: 5,
            ..SimStats::default()
        };
        assert_eq!(s.mpki(), 0.0);
    }

    #[test]
    fn branch_accuracy_fully_wrong_is_zero() {
        let s = SimStats {
            mt_cond_branches: 8,
            mt_mispredicts: 8,
            ..SimStats::default()
        };
        assert!(s.branch_accuracy().abs() < 1e-12);
    }

    #[test]
    fn harmonic_mean_zero_weights_is_zero() {
        assert_eq!(weighted_harmonic_mean_ipc(&[(0.0, 2.0), (0.0, 4.0)]), 0.0);
    }

    #[test]
    fn harmonic_mean_skips_zero_ipc_points() {
        // A zero-IPC point cannot contribute 1/0; it is excluded from the
        // denominator rather than poisoning the mean.
        let m = weighted_harmonic_mean_ipc(&[(0.5, 0.0), (0.5, 2.0)]);
        assert!(m.is_finite());
        assert!(m > 0.0);
    }

    #[test]
    fn harmonic_mean_ignores_non_finite_points() {
        let m = weighted_harmonic_mean_ipc(&[(f64::NAN, 2.0), (1.0, f64::INFINITY), (1.0, 2.0)]);
        assert!((m - 2.0).abs() < 1e-12, "finite point survives: {m}");
        assert_eq!(weighted_harmonic_mean_ipc(&[(f64::NAN, 1.0)]), 0.0);
        assert_eq!(weighted_harmonic_mean_ipc(&[(1.0, f64::NAN)]), 0.0);
    }

    #[test]
    fn merge_sums_counters_and_preserves_derived_ratios() {
        let a = SimStats {
            cycles: 1000,
            mt_retired: 2000,
            mt_cond_branches: 100,
            mt_mispredicts: 10,
            ..SimStats::default()
        };
        let b = SimStats {
            cycles: 3000,
            mt_retired: 3000,
            mt_cond_branches: 300,
            mt_mispredicts: 30,
            ..SimStats::default()
        };
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.cycles, 4000);
        assert_eq!(m.mt_retired, 5000);
        // The merged IPC is the whole-run IPC (total insts / total
        // cycles), not the average of the two per-shard IPCs.
        assert!((m.ipc() - 5000.0 / 4000.0).abs() < 1e-12);
        assert!((m.mpki() - 1000.0 * 40.0 / 5000.0).abs() < 1e-12);
    }

    #[test]
    fn merge_with_default_is_identity() {
        let a = SimStats {
            cycles: 123,
            mt_retired: 456,
            l3_misses: 7,
            ..SimStats::default()
        };
        let mut left = SimStats::default();
        left.merge(&a);
        assert_eq!(left, a);
        let mut right = a.clone();
        right.merge(&SimStats::default());
        assert_eq!(right, a);
    }

    #[test]
    fn merge_saturates_instead_of_overflowing() {
        let mut a = SimStats {
            cycles: u64::MAX - 1,
            ..SimStats::default()
        };
        a.merge(&SimStats {
            cycles: 5,
            ..SimStats::default()
        });
        assert_eq!(a.cycles, u64::MAX);
    }

    #[test]
    fn ht_overhead_matches_fig13b_units() {
        let s = SimStats {
            mt_retired: 100_000_000,
            ht_retired: 34_700_000,
            ..SimStats::default()
        };
        assert!((s.ht_overhead_ratio() - 0.347).abs() < 1e-12);
    }
}
