//! Conditional branch direction predictors.
//!
//! The paper's core uses a 64KB TAGE-SC-L predictor. We implement a
//! TAGE-SC-L-class composite — [`TageScL`] — from three cooperating parts:
//!
//! * [`Tage`]: a bimodal base table plus tagged geometric-history tables,
//! * [`LoopPredictor`]: a side predictor for loops with stable trip counts,
//! * a statistical-corrector-style confidence vote that arbitrates between
//!   the TAGE provider and its alternate prediction.
//!
//! All predictors implement [`DirectionPredictor`], so the timing model can
//! also run with a plain [`Bimodal`] (used by Branch Runahead for chain
//! triggering) or with oracle prediction.

mod bimodal;
mod loop_pred;
mod tage;
mod tagescl;

pub use bimodal::Bimodal;
pub use loop_pred::LoopPredictor;
pub use tage::{Tage, TageConfig};
pub use tagescl::TageScL;

/// A conditional-branch direction predictor.
///
/// The contract mirrors hardware: `predict` is called at fetch with only
/// the branch PC (history is internal speculative state), `update` is
/// called at retire with the actual outcome, and `recover_history` is
/// called on a pipeline squash to rewind speculative history to the state
/// captured at the mispredicted branch.
pub trait DirectionPredictor {
    /// Predicts the direction of the conditional branch at `pc`.
    fn predict(&mut self, pc: u64) -> bool;

    /// Trains the predictor with the retired outcome of `pc`.
    ///
    /// `predicted` is the direction that was predicted for this dynamic
    /// instance at fetch (whatever its source), so the predictor can
    /// allocate on mispredictions.
    fn update(&mut self, pc: u64, taken: bool, predicted: bool);

    /// Appends `taken` to the speculative global history at fetch time.
    ///
    /// Separated from [`DirectionPredictor::predict`] so the fetch unit can
    /// record history for branches whose prediction came from elsewhere
    /// (prediction queues), keeping the default predictor's history
    /// consistent.
    fn speculate(&mut self, pc: u64, taken: bool);

    /// Captures an opaque checkpoint of speculative history.
    fn checkpoint(&self) -> HistoryCheckpoint;

    /// Rewinds speculative history to `ckpt` (misprediction recovery).
    fn recover(&mut self, ckpt: &HistoryCheckpoint);

    /// Functional warming: trains on one retired branch outcome outside any
    /// timing context (checkpoint warmup replay). Equivalent to the
    /// in-order fetch→retire sequence of a perfectly predicted pipeline:
    /// predict, append the true outcome to history, train on it.
    fn warm(&mut self, pc: u64, taken: bool) {
        let predicted = self.predict(pc);
        self.speculate(pc, taken);
        self.update(pc, taken, predicted);
    }
}

/// Opaque speculative-history checkpoint.
///
/// Cheap to clone; taken at every in-flight conditional branch.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct HistoryCheckpoint {
    /// Global history length at the checkpoint (the predictors rewind by
    /// truncating to this length).
    pub ghist_len: u64,
}

/// Saturating n-bit counter helper.
///
/// `Counter::<3>` is a 3-bit counter in `-4..=3`; taken-ness is the sign.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Counter<const BITS: u32>(i8);

impl<const BITS: u32> Counter<BITS> {
    const MAX: i8 = (1 << (BITS - 1)) - 1;
    const MIN: i8 = -(1 << (BITS - 1));

    /// A weakly-not-taken counter.
    pub fn weakly_not_taken() -> Counter<BITS> {
        Counter(-1)
    }

    /// A weakly-taken counter.
    pub fn weakly_taken() -> Counter<BITS> {
        Counter(0)
    }

    /// Predicted direction: counter >= 0 means taken.
    pub fn taken(self) -> bool {
        self.0 >= 0
    }

    /// Confidence: counter at either saturation extreme.
    pub fn is_saturated(self) -> bool {
        self.0 == Self::MAX || self.0 == Self::MIN
    }

    /// Raw value.
    pub fn value(self) -> i8 {
        self.0
    }

    /// Moves the counter toward `taken`.
    pub fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(Self::MAX);
        } else {
            self.0 = (self.0 - 1).max(Self::MIN);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_trains_like_retired_outcomes() {
        // Warming an alternating pattern should leave the predictor as
        // trained as the explicit predict/speculate/update sequence does.
        let mut warmed = TageScL::large();
        let mut trained = TageScL::large();
        let pat = |i: u64| (i / 2).is_multiple_of(2);
        for i in 0..200 {
            warmed.warm(0x40, pat(i));
            let p = trained.predict(0x40);
            trained.speculate(0x40, pat(i));
            trained.update(0x40, pat(i), p);
        }
        for i in 200..220 {
            assert_eq!(warmed.predict(0x40), trained.predict(0x40));
            warmed.warm(0x40, pat(i));
            let p = trained.predict(0x40);
            trained.speculate(0x40, pat(i));
            trained.update(0x40, pat(i), p);
        }
    }

    #[test]
    fn counter_saturates_both_directions() {
        let mut c = Counter::<2>::weakly_taken();
        for _ in 0..10 {
            c.update(true);
        }
        assert!(c.taken());
        assert!(c.is_saturated());
        assert_eq!(c.value(), 1);
        for _ in 0..10 {
            c.update(false);
        }
        assert!(!c.taken());
        assert_eq!(c.value(), -2);
    }

    #[test]
    fn counter_hysteresis() {
        let mut c = Counter::<2>::weakly_taken();
        c.update(true); // strongly taken
        c.update(false); // weakly taken
        assert!(c.taken(), "one not-taken does not flip a strong counter");
        c.update(false);
        assert!(!c.taken());
    }

    #[test]
    fn three_bit_range() {
        let mut c = Counter::<3>::weakly_not_taken();
        for _ in 0..20 {
            c.update(false);
        }
        assert_eq!(c.value(), -4);
        for _ in 0..20 {
            c.update(true);
        }
        assert_eq!(c.value(), 3);
    }
}
