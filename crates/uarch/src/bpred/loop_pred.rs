//! Loop predictor: side predictor for loops with stable trip counts.
//!
//! The "L" in TAGE-SC-L. Each entry tracks the trip count of a backward
//! branch; once the same trip count is observed several times in a row, the
//! loop predictor overrides TAGE for that branch, predicting "taken" for
//! the body iterations and "not-taken" exactly at the trip count.
//!
//! Trip counts are *trained* at retire ([`LoopPredictor::update`]) but
//! *predicted* with a speculative per-entry iteration count advanced at
//! fetch ([`LoopPredictor::speculate`]) — essential for short loops that
//! fit in the pipeline several times over, where the retire-time count
//! lags fetch by multiple whole passes. On a misprediction recovery the
//! speculative counts resync to the retired ones
//! ([`LoopPredictor::resync`]).

/// Confidence threshold before a loop entry is allowed to predict.
const CONF_MAX: u8 = 3;

#[derive(Clone, Copy, Debug, Default)]
struct LoopEntry {
    tag: u32,
    trip: u32,
    /// Retire-time iteration count.
    current: u32,
    /// Fetch-time (speculative) iteration count; advanced in
    /// [`LoopPredictor::speculate`], resynced to `current` on recovery.
    spec_current: u32,
    confidence: u8,
    valid: bool,
}

/// Loop trip-count predictor.
///
/// # Examples
///
/// ```
/// use phelps_uarch::bpred::LoopPredictor;
///
/// let mut lp = LoopPredictor::new(64);
/// // A loop at pc 0x40 that always runs 5 iterations (4 taken, 1 not).
/// for _ in 0..8 {
///     for i in 0..5 {
///         lp.speculate(0x40, i < 4);
///         lp.update(0x40, i < 4);
///     }
/// }
/// // Confident now: predicts not-taken exactly at the 5th iteration.
/// for i in 0..5 {
///     let pred = lp.predict(0x40);
///     assert_eq!(pred, Some(i < 4));
///     lp.speculate(0x40, i < 4);
///     lp.update(0x40, i < 4);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct LoopPredictor {
    entries: Vec<LoopEntry>,
    mask: u64,
}

impl LoopPredictor {
    /// Creates a loop predictor with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> LoopPredictor {
        assert!(entries.is_power_of_two(), "loop entries must be 2^n");
        LoopPredictor {
            entries: vec![LoopEntry::default(); entries],
            mask: entries as u64 - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    fn tag(&self, pc: u64) -> u32 {
        ((pc >> 2) >> self.mask.count_ones()) as u32 & 0x3fff
    }

    /// Predicts the branch at `pc`, or `None` when the entry is absent or
    /// not yet confident. Uses the speculative (fetch-time) iteration
    /// count.
    pub fn predict(&self, pc: u64) -> Option<bool> {
        let e = &self.entries[self.index(pc)];
        if e.valid && e.tag == self.tag(pc) && e.confidence >= CONF_MAX && e.trip > 0 {
            Some(e.spec_current.saturating_add(1) < e.trip)
        } else {
            None
        }
    }

    /// Advances the speculative iteration count at fetch.
    pub fn speculate(&mut self, pc: u64, taken: bool) {
        let tag = self.tag(pc);
        let idx = self.index(pc);
        let e = &mut self.entries[idx];
        if e.valid && e.tag == tag {
            if taken {
                e.spec_current = e.spec_current.saturating_add(1);
            } else {
                e.spec_current = 0;
            }
        }
    }

    /// Resyncs all speculative counts to the retired counts (misprediction
    /// recovery).
    pub fn resync(&mut self) {
        for e in &mut self.entries {
            e.spec_current = e.current;
        }
    }

    /// Whether the entry for `pc` is confident (prediction would be used).
    pub fn confident(&self, pc: u64) -> bool {
        self.predict(pc).is_some()
    }

    /// Trains with the retired outcome of the branch at `pc`.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let tag = self.tag(pc);
        let idx = self.index(pc);
        let e = &mut self.entries[idx];
        if !e.valid || e.tag != tag {
            // Allocate only at a loop exit so counts start aligned.
            if !taken {
                *e = LoopEntry {
                    tag,
                    trip: 0,
                    current: 0,
                    spec_current: 0,
                    confidence: 0,
                    valid: true,
                };
            }
            return;
        }
        if taken {
            // Saturating: a pathologically long-running loop (no exit ever
            // observed) must not wrap — or panic in debug builds — at 2^32
            // iterations.
            e.current = e.current.saturating_add(1);
            // A loop that exceeds the learned trip count invalidates it.
            if e.trip > 0 && e.current >= e.trip {
                e.confidence = 0;
                e.trip = 0;
            }
            return;
        }
        // Loop exit: compare observed trip count with learned.
        let observed = e.current.saturating_add(1);
        if e.trip == observed {
            e.confidence = (e.confidence + 1).min(CONF_MAX);
        } else {
            e.trip = observed;
            e.confidence = 0;
        }
        e.current = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_loop(lp: &mut LoopPredictor, pc: u64, trip: u32) {
        for i in 0..trip {
            // Fetch-then-retire, as the pipeline drives it.
            lp.speculate(pc, i + 1 < trip);
            lp.update(pc, i + 1 < trip);
        }
    }

    #[test]
    fn fixed_trip_count_becomes_confident() {
        let mut lp = LoopPredictor::new(64);
        for _ in 0..6 {
            run_loop(&mut lp, 0x100, 7);
        }
        assert!(lp.confident(0x100));
        // Predict one full pass correctly.
        for i in 0..7u32 {
            assert_eq!(lp.predict(0x100), Some(i + 1 < 7), "iteration {i}");
            lp.speculate(0x100, i + 1 < 7);
            lp.update(0x100, i + 1 < 7);
        }
    }

    #[test]
    fn speculative_count_runs_ahead_of_retire() {
        // A pipeline fetches several iterations before any retire: the
        // speculative count must carry the prediction.
        let mut lp = LoopPredictor::new(64);
        for _ in 0..6 {
            run_loop(&mut lp, 0x500, 5);
        }
        assert!(lp.confident(0x500));
        // Fetch a whole pass without retiring anything.
        for i in 0..5u32 {
            assert_eq!(lp.predict(0x500), Some(i + 1 < 5), "fetch {i}");
            lp.speculate(0x500, i + 1 < 5);
        }
        // Recovery resyncs to the retired count (0 here: nothing retired
        // since the last exit).
        lp.resync();
        assert_eq!(lp.predict(0x500), Some(true));
    }

    #[test]
    fn variable_trip_count_never_confident() {
        let mut lp = LoopPredictor::new(64);
        for t in [3u32, 5, 4, 6, 3, 7, 5, 4, 6, 8] {
            run_loop(&mut lp, 0x200, t);
        }
        assert!(!lp.confident(0x200), "unstable trips stay unconfident");
    }

    #[test]
    fn trip_count_change_resets_confidence() {
        let mut lp = LoopPredictor::new(64);
        for _ in 0..6 {
            run_loop(&mut lp, 0x300, 4);
        }
        assert!(lp.confident(0x300));
        run_loop(&mut lp, 0x300, 9);
        assert!(!lp.confident(0x300), "new trip count retrains");
    }

    #[test]
    fn unallocated_pc_predicts_none() {
        let lp = LoopPredictor::new(64);
        assert_eq!(lp.predict(0xdead0), None);
    }

    #[test]
    fn pathologically_long_loop_saturates_instead_of_overflowing() {
        // A loop that never exits within the run keeps taking its backward
        // branch; the retired iteration count must saturate, not wrap (a
        // wrapping `+ 1` panics in debug builds at 2^32 iterations).
        let mut lp = LoopPredictor::new(64);
        let pc = 0x40u64;
        lp.update(pc, false); // allocate the entry at a loop exit
        let idx = lp.index(pc);
        lp.entries[idx].current = u32::MAX - 1;
        lp.entries[idx].spec_current = u32::MAX - 1;
        lp.update(pc, true); // reaches u32::MAX
        lp.update(pc, true); // would overflow without saturation
        assert_eq!(lp.entries[idx].current, u32::MAX);
        // The speculative path (and prediction off it) saturates too.
        lp.speculate(pc, true);
        lp.speculate(pc, true);
        assert_eq!(lp.entries[idx].spec_current, u32::MAX);
        lp.entries[idx].trip = 7;
        lp.entries[idx].confidence = CONF_MAX;
        assert_eq!(lp.predict(pc), Some(false), "saturated count exits");
        // A real exit still retrains cleanly from the saturated state.
        lp.update(pc, false);
        assert_eq!(lp.entries[idx].current, 0);
        assert_eq!(lp.entries[idx].trip, u32::MAX, "observed trip saturates");
    }

    #[test]
    fn trip_one_loop() {
        // A "loop" that never iterates (always exits immediately).
        let mut lp = LoopPredictor::new(64);
        for _ in 0..8 {
            lp.speculate(0x400, false);
            lp.update(0x400, false);
        }
        assert_eq!(lp.predict(0x400), Some(false));
    }
}
