//! TAGE: tagged geometric-history-length predictor.
//!
//! A clean-room implementation of the TAGE family: a bimodal base table
//! plus `N` tagged tables indexed by hashes of the branch PC and
//! geometrically increasing slices of global history. The longest-history
//! hit provides the prediction; a newly-allocated weak provider defers to
//! the alternate prediction; usefulness counters arbitrate allocation.
//!
//! Two global histories are kept:
//!
//! * a **speculative** history, appended at fetch ([`Tage::speculate`]) and
//!   rewound on pipeline squash ([`Tage::recover`]);
//! * a **retired** history, appended at retire inside [`Tage::update`].
//!
//! Because updates arrive in retire order, the retired history at update
//! time equals the speculative history the branch saw at fetch, so table
//! indices recompute exactly without carrying metadata through the
//! pipeline.
//!
//! History folding is **incremental**, as in hardware: each table keeps
//! circularly-folded registers of its history window, updated in O(1) per
//! appended bit. A recovery truncates the raw bit history and replays only
//! the surviving window to rebuild the folds.

use super::{Bimodal, Counter, DirectionPredictor, HistoryCheckpoint};

/// Geometry of a [`Tage`] predictor.
#[derive(Clone, Debug)]
pub struct TageConfig {
    /// log2 of the number of entries in each tagged table.
    pub table_bits: u32,
    /// Tag width in bits.
    pub tag_bits: u32,
    /// History length per tagged table, shortest first.
    pub history_lengths: Vec<u32>,
    /// log2 of bimodal base-table entries.
    pub base_bits: u32,
    /// Period (in updates) of the usefulness-counter aging reset.
    pub useful_reset_period: u64,
}

impl TageConfig {
    /// A 64KB-class configuration: 8 tagged tables with geometric history
    /// lengths from 4 to 256, 4K entries each, 11-bit tags, 16K-entry base.
    pub fn large() -> TageConfig {
        TageConfig {
            table_bits: 12,
            tag_bits: 11,
            history_lengths: vec![4, 7, 12, 20, 34, 60, 110, 256],
            base_bits: 14,
            useful_reset_period: 256 * 1024,
        }
    }

    /// A small configuration for fast tests.
    pub fn small() -> TageConfig {
        TageConfig {
            table_bits: 9,
            tag_bits: 8,
            history_lengths: vec![4, 8, 16, 32],
            base_bits: 10,
            useful_reset_period: 16 * 1024,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct TageEntry {
    tag: u32,
    ctr: Counter<3>,
    useful: u8,
}

impl TageEntry {
    fn empty() -> TageEntry {
        TageEntry {
            tag: u32::MAX,
            ctr: Counter::weakly_not_taken(),
            useful: 0,
        }
    }
}

/// One circularly-folded register: `width`-bit XOR-fold of the most recent
/// `hist_len` history bits, maintained incrementally.
#[derive(Clone, Copy, Debug)]
struct Fold {
    value: u32,
    width: u32,
    hist_len: u32,
}

impl Fold {
    fn new(width: u32, hist_len: u32) -> Fold {
        Fold {
            value: 0,
            width: width.max(1),
            hist_len,
        }
    }

    /// Pushes `inbit`; `outbit` is the bit leaving the window.
    fn push(&mut self, inbit: bool, outbit: bool) {
        let w = self.width;
        let mut f = (self.value << 1) | inbit as u32;
        // Wrap the carry bit (circular rotation of a w-bit register).
        f ^= (f >> w) & 1;
        // Remove the exiting bit at its accumulated rotation. hist_len % w
        // is < w, so this can never set the carry bit again.
        f ^= (outbit as u32) << (self.hist_len % w);
        self.value = f & ((1u32 << w) - 1);
    }
}

/// Append-only bit history with truncation-based recovery and per-table
/// incremental folds.
#[derive(Clone, Debug)]
struct FoldedHistory {
    bits: Vec<bool>,
    /// Absolute position of `bits[0]` (compaction offset).
    base: u64,
    /// Per table: (index fold, tag fold 1, tag fold 2).
    folds: Vec<(Fold, Fold, Fold)>,
    max_hist: u32,
}

impl FoldedHistory {
    fn new(cfg: &TageConfig) -> FoldedHistory {
        let folds = cfg
            .history_lengths
            .iter()
            .map(|&hl| {
                (
                    Fold::new(cfg.table_bits, hl),
                    Fold::new(cfg.tag_bits, hl),
                    Fold::new(cfg.tag_bits.saturating_sub(1).max(1), hl),
                )
            })
            .collect();
        FoldedHistory {
            bits: Vec::new(),
            base: 0,
            folds,
            max_hist: cfg.history_lengths.iter().copied().max().unwrap_or(1),
        }
    }

    fn len(&self) -> u64 {
        self.base + self.bits.len() as u64
    }

    fn bit_at(&self, abs: u64) -> bool {
        abs.checked_sub(self.base)
            .and_then(|i| self.bits.get(i as usize).copied())
            .unwrap_or(false)
    }

    fn push(&mut self, b: bool) {
        let len = self.len();
        for f in self.folds.iter_mut() {
            let hl = f.0.hist_len as u64;
            // Bit leaving this table's window (absolute position len - hl).
            let out = if len >= hl {
                (len - hl)
                    .checked_sub(self.base)
                    .and_then(|idx| self.bits.get(idx as usize).copied())
                    .unwrap_or(false)
            } else {
                false
            };
            f.0.push(b, out);
            f.1.push(b, out);
            f.2.push(b, out);
        }
        self.bits.push(b);
        // Compact: keep a window comfortably larger than the deepest
        // history plus any in-flight rollback depth.
        if self.bits.len() > (1 << 20) {
            let keep = (self.max_hist as usize + 4096).min(self.bits.len());
            let drop = self.bits.len() - keep;
            self.bits.drain(0..drop);
            self.base += drop as u64;
        }
    }

    /// Truncates to absolute length `to` and rebuilds the folds by
    /// replaying the surviving window (recovery path; rare).
    fn truncate(&mut self, to: u64) {
        if to < self.base {
            // Rolled back past the compaction window (cannot happen for
            // in-flight checkpoints; defensive for direct API use).
            self.base = to;
            self.bits.clear();
        }
        let keep = to.saturating_sub(self.base) as usize;
        self.bits.truncate(keep.min(self.bits.len()));
        let len = self.bits.len();
        for f in self.folds.iter_mut() {
            let hl = f.0.hist_len as usize;
            f.0.value = 0;
            f.1.value = 0;
            f.2.value = 0;
            let start = len.saturating_sub(hl);
            for i in start..len {
                let b = self.bits[i];
                // Nothing exits during a from-zero window replay.
                f.0.push(b, false);
                f.1.push(b, false);
                f.2.push(b, false);
            }
        }
        let _ = self.bit_at(0);
    }

    fn idx_fold(&self, table: usize) -> u64 {
        self.folds[table].0.value as u64
    }

    fn tag_fold(&self, table: usize) -> (u64, u64) {
        (
            self.folds[table].1.value as u64,
            self.folds[table].2.value as u64,
        )
    }
}

/// The TAGE predictor.
///
/// # Examples
///
/// ```
/// use phelps_uarch::bpred::{DirectionPredictor, Tage, TageConfig};
///
/// let mut t = Tage::new(TageConfig::small());
/// // A branch alternating T/NT is learned through history correlation.
/// // (Speculating with the actual outcome models the repaired history a
/// // pipeline restores after each misprediction recovery.)
/// let mut correct = 0;
/// for i in 0..2000u32 {
///     let actual = i % 2 == 0;
///     let pred = t.predict(0x400);
///     t.speculate(0x400, actual);
///     if pred == actual { correct += 1; }
///     t.update(0x400, actual, pred);
/// }
/// assert!(correct > 1800, "learned the alternation: {correct}");
/// ```
#[derive(Clone, Debug)]
pub struct Tage {
    cfg: TageConfig,
    base: Bimodal,
    tables: Vec<Vec<TageEntry>>,
    spec_hist: FoldedHistory,
    ret_hist: FoldedHistory,
    updates: u64,
    rng: u64,
}

impl Tage {
    /// Creates a TAGE predictor with the given geometry.
    pub fn new(cfg: TageConfig) -> Tage {
        let entries = 1usize << cfg.table_bits;
        let tables = vec![vec![TageEntry::empty(); entries]; cfg.history_lengths.len()];
        Tage {
            base: Bimodal::new(1 << cfg.base_bits),
            tables,
            spec_hist: FoldedHistory::new(&cfg),
            ret_hist: FoldedHistory::new(&cfg),
            updates: 0,
            cfg,
            rng: 0x9e3779b97f4a7c15,
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    fn index(&self, hist: &FoldedHistory, pc: u64, table: usize) -> usize {
        let folded = hist.idx_fold(table);
        let pc_part = (pc >> 2) ^ (pc >> (2 + self.cfg.table_bits as u64));
        ((pc_part ^ folded ^ ((table as u64) << 3)) & ((1 << self.cfg.table_bits) - 1)) as usize
    }

    fn tag(&self, hist: &FoldedHistory, pc: u64, table: usize) -> u32 {
        let (f1, f2) = hist.tag_fold(table);
        (((pc >> 2) as u32) ^ (f1 as u32) ^ ((f2 as u32) << 1)) & ((1 << self.cfg.tag_bits) - 1)
    }

    /// (provider_table, provider_pred, alt_pred) using `hist`.
    fn lookup(&self, hist: &FoldedHistory, pc: u64) -> Lookup {
        let mut provider = None;
        let mut alt = None;
        for t in (0..self.tables.len()).rev() {
            let idx = self.index(hist, pc, t);
            let e = &self.tables[t][idx];
            if e.tag == self.tag(hist, pc, t) {
                if provider.is_none() {
                    provider = Some((t, idx));
                } else {
                    alt = Some((t, idx));
                    break;
                }
            }
        }
        let base_pred = self.base.counter(pc).taken();
        let alt_pred = alt
            .map(|(t, i)| self.tables[t][i].ctr.taken())
            .unwrap_or(base_pred);
        match provider {
            Some((t, i)) => {
                let e = &self.tables[t][i];
                let weak =
                    !e.ctr.is_saturated() && e.ctr.value().unsigned_abs() <= 1 && e.useful == 0;
                let pred = if weak { alt_pred } else { e.ctr.taken() };
                Lookup {
                    provider: Some((t, i)),
                    pred,
                    alt_pred,
                    provider_pred: e.ctr.taken(),
                }
            }
            None => Lookup {
                provider: None,
                pred: base_pred,
                alt_pred: base_pred,
                provider_pred: base_pred,
            },
        }
    }

    /// Prediction recomputed with the retired history, used by composite
    /// predictors at update time to reconstruct the fetch-time decision.
    pub fn predict_with_retired(&self, pc: u64) -> bool {
        self.lookup(&self.ret_hist, pc).pred
    }

    /// Provider confidence of the current speculative lookup: `true` when
    /// the providing counter is saturated (used by the SC stage).
    pub fn confident(&self, pc: u64) -> bool {
        let l = self.lookup(&self.spec_hist, pc);
        match l.provider {
            Some((t, i)) => self.tables[t][i].ctr.is_saturated(),
            None => self.base.counter(pc).is_saturated(),
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Lookup {
    provider: Option<(usize, usize)>,
    pred: bool,
    alt_pred: bool,
    provider_pred: bool,
}

impl DirectionPredictor for Tage {
    fn predict(&mut self, pc: u64) -> bool {
        self.lookup(&self.spec_hist, pc).pred
    }

    fn update(&mut self, pc: u64, taken: bool, _predicted: bool) {
        self.updates += 1;
        // Recompute with retired history == fetch-time speculative history.
        let l = self.lookup(&self.ret_hist, pc);

        // Train provider (or base).
        match l.provider {
            Some((t, i)) => {
                // Usefulness: provider distinct from alt and correct.
                if l.provider_pred != l.alt_pred {
                    let e = &mut self.tables[t][i];
                    if l.provider_pred == taken {
                        e.useful = (e.useful + 1).min(3);
                    } else {
                        e.useful = e.useful.saturating_sub(1);
                    }
                }
                self.tables[t][i].ctr.update(taken);
                // Also train base when provider was weak (alt used).
                if l.pred != l.provider_pred {
                    self.base.update(pc, taken, l.pred);
                }
            }
            None => self.base.update(pc, taken, l.pred),
        }

        // Allocate on a mispredicting lookup, in a longer-history table.
        if l.pred != taken {
            let start = l.provider.map(|(t, _)| t + 1).unwrap_or(0);
            if start < self.tables.len() {
                // Choose among tables with u==0; prefer shorter history,
                // with some randomization to avoid ping-pong.
                let mut candidates: Vec<usize> = Vec::new();
                for t in start..self.tables.len() {
                    let idx = self.index(&self.ret_hist, pc, t);
                    if self.tables[t][idx].useful == 0 {
                        candidates.push(t);
                    }
                }
                if candidates.is_empty() {
                    // Decay usefulness along the way.
                    for t in start..self.tables.len() {
                        let idx = self.index(&self.ret_hist, pc, t);
                        let e = &mut self.tables[t][idx];
                        e.useful = e.useful.saturating_sub(1);
                    }
                } else {
                    let pick = if candidates.len() > 1 && self.next_rand() & 3 == 0 {
                        candidates[1]
                    } else {
                        candidates[0]
                    };
                    let idx = self.index(&self.ret_hist, pc, pick);
                    let tag = self.tag(&self.ret_hist, pc, pick);
                    self.tables[pick][idx] = TageEntry {
                        tag,
                        ctr: if taken {
                            Counter::weakly_taken()
                        } else {
                            Counter::weakly_not_taken()
                        },
                        useful: 0,
                    };
                }
            }
        }

        // Periodic graceful aging of usefulness bits.
        if self.updates.is_multiple_of(self.cfg.useful_reset_period) {
            for table in &mut self.tables {
                for e in table.iter_mut() {
                    e.useful /= 2;
                }
            }
        }

        self.ret_hist.push(taken);
    }

    fn speculate(&mut self, _pc: u64, taken: bool) {
        self.spec_hist.push(taken);
    }

    fn checkpoint(&self) -> HistoryCheckpoint {
        HistoryCheckpoint {
            ghist_len: self.spec_hist.len(),
        }
    }

    fn recover(&mut self, ckpt: &HistoryCheckpoint) {
        self.spec_hist.truncate(ckpt.ghist_len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train_stream(t: &mut Tage, stream: &[(u64, bool)]) -> usize {
        let mut correct = 0;
        for &(pc, actual) in stream {
            let pred = t.predict(pc);
            // Speculate with the actual outcome: a pipeline repairs the
            // speculative history on every misprediction recovery, so the
            // steady-state history a branch sees is the actual one.
            t.speculate(pc, actual);
            if pred == actual {
                correct += 1;
            }
            t.update(pc, actual, pred);
        }
        correct
    }

    #[test]
    fn learns_strong_bias() {
        let mut t = Tage::new(TageConfig::small());
        let stream: Vec<(u64, bool)> = (0..1000).map(|_| (0x40, true)).collect();
        let correct = train_stream(&mut t, &stream);
        assert!(correct > 980, "biased branch nearly perfect: {correct}");
    }

    #[test]
    fn learns_period_four_pattern() {
        let mut t = Tage::new(TageConfig::small());
        let stream: Vec<(u64, bool)> = (0..4000).map(|i| (0x80, i % 4 == 0)).collect();
        let correct = train_stream(&mut t, &stream);
        assert!(
            correct > 3600,
            "periodic pattern learned via history tables: {correct}"
        );
    }

    #[test]
    fn random_data_dependent_branch_stays_hard() {
        // A pseudo-random 50/50 branch (delinquent by construction) must
        // NOT be learnable — this is what makes MPKI meaningful.
        let mut t = Tage::new(TageConfig::small());
        let mut x: u64 = 12345;
        let stream: Vec<(u64, bool)> = (0..8000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (0xc0, (x >> 33) & 1 == 1)
            })
            .collect();
        let correct = train_stream(&mut t, &stream);
        let acc = correct as f64 / stream.len() as f64;
        assert!(
            acc < 0.65,
            "random branch should hover near chance, got {acc}"
        );
    }

    #[test]
    fn correlated_branches_exploit_global_history() {
        // b2 at 0x200 always equals the last outcome of b1 at 0x100.
        let mut t = Tage::new(TageConfig::small());
        let mut x: u64 = 99;
        let mut correct_b2 = 0;
        let mut total_b2 = 0;
        for i in 0..6000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b1 = (x >> 33) & 1 == 1;
            let p1 = t.predict(0x100);
            t.speculate(0x100, b1);
            t.update(0x100, b1, p1);

            let p2 = t.predict(0x200);
            t.speculate(0x200, b1);
            if i > 2000 {
                total_b2 += 1;
                if p2 == b1 {
                    correct_b2 += 1;
                }
            }
            t.update(0x200, b1, p2);
        }
        let acc = correct_b2 as f64 / total_b2 as f64;
        assert!(acc > 0.9, "correlated branch learned via history: {acc}");
    }

    #[test]
    fn checkpoint_recover_rewinds_history() {
        let mut t = Tage::new(TageConfig::small());
        for i in 0..100 {
            t.speculate(0x10, i % 2 == 0);
        }
        let ckpt = t.checkpoint();
        let before = t.predict(0x40);
        for _ in 0..50 {
            t.speculate(0x10, true);
        }
        t.recover(&ckpt);
        assert_eq!(
            t.predict(0x40),
            before,
            "prediction identical after history rewind"
        );
    }

    #[test]
    fn incremental_folds_match_replay() {
        // The incremental fold after N pushes equals a from-zero replay of
        // the last `hist_len` bits (the recovery path) — push a random
        // stream, then truncate-to-same-length must be a no-op.
        let cfg = TageConfig::small();
        let mut h = FoldedHistory::new(&cfg);
        let mut x = 7u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.push((x >> 40) & 1 == 1);
        }
        let before: Vec<u64> = (0..cfg.history_lengths.len())
            .map(|t| h.idx_fold(t) ^ (h.tag_fold(t).0 << 20) ^ (h.tag_fold(t).1 << 40))
            .collect();
        let len = h.len();
        h.truncate(len);
        let after: Vec<u64> = (0..cfg.history_lengths.len())
            .map(|t| h.idx_fold(t) ^ (h.tag_fold(t).0 << 20) ^ (h.tag_fold(t).1 << 40))
            .collect();
        assert_eq!(before, after, "truncate-to-self preserves folds");
    }

    #[test]
    fn fold_distinguishes_histories() {
        let cfg = TageConfig::small();
        let mut h1 = FoldedHistory::new(&cfg);
        let mut h2 = FoldedHistory::new(&cfg);
        for i in 0..32 {
            h1.push(i % 2 == 0);
            h2.push(i % 3 == 0);
        }
        assert_ne!(h1.idx_fold(2), h2.idx_fold(2));
    }

    #[test]
    fn truncate_below_base_is_safe() {
        let cfg = TageConfig::small();
        let mut h = FoldedHistory::new(&cfg);
        for i in 0..100 {
            h.push(i % 2 == 0);
        }
        h.truncate(0);
        assert_eq!(h.len(), 0);
        h.push(true); // still functional
        assert_eq!(h.len(), 1);
    }
}
