//! PC-indexed bimodal predictor.

use super::{Counter, DirectionPredictor, HistoryCheckpoint};

/// A classic bimodal predictor: a table of 2-bit saturating counters
/// indexed by branch PC.
///
/// Used standalone by Branch Runahead to speculatively trigger child chains
/// (the paper's §II), and as the base table inside [`Tage`](super::Tage).
///
/// # Examples
///
/// ```
/// use phelps_uarch::bpred::{Bimodal, DirectionPredictor};
///
/// let mut p = Bimodal::new(1024);
/// // Train a strongly-taken branch.
/// for _ in 0..4 {
///     let pred = p.predict(0x40);
///     p.update(0x40, true, pred);
/// }
/// assert!(p.predict(0x40));
/// ```
#[derive(Clone, Debug)]
pub struct Bimodal {
    table: Vec<Counter<2>>,
    mask: u64,
}

impl Bimodal {
    /// Creates a bimodal table with `entries` counters.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Bimodal {
        assert!(entries.is_power_of_two(), "bimodal entries must be 2^n");
        Bimodal {
            table: vec![Counter::weakly_not_taken(); entries],
            mask: entries as u64 - 1,
        }
    }

    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    /// The raw counter for `pc`, exposed for confidence checks.
    pub fn counter(&self, pc: u64) -> Counter<2> {
        self.table[self.index(pc)]
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&mut self, pc: u64) -> bool {
        self.table[self.index(pc)].taken()
    }

    fn update(&mut self, pc: u64, taken: bool, _predicted: bool) {
        let idx = self.index(pc);
        self.table[idx].update(taken);
    }

    fn speculate(&mut self, _pc: u64, _taken: bool) {}

    fn checkpoint(&self) -> HistoryCheckpoint {
        HistoryCheckpoint::default()
    }

    fn recover(&mut self, _ckpt: &HistoryCheckpoint) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branches() {
        let mut p = Bimodal::new(256);
        for _ in 0..10 {
            p.update(0x100, true, false);
        }
        assert!(p.predict(0x100));
        for _ in 0..10 {
            p.update(0x104, false, true);
        }
        assert!(!p.predict(0x104));
    }

    #[test]
    fn initial_prediction_is_not_taken() {
        let mut p = Bimodal::new(256);
        assert!(!p.predict(0x0));
    }

    #[test]
    fn distinct_pcs_use_distinct_counters() {
        let mut p = Bimodal::new(256);
        for _ in 0..4 {
            p.update(0x10, true, false);
            p.update(0x14, false, true);
        }
        assert!(p.predict(0x10));
        assert!(!p.predict(0x14));
    }

    #[test]
    fn aliasing_wraps_by_table_size() {
        let mut p = Bimodal::new(16);
        for _ in 0..4 {
            p.update(0x0, true, false);
        }
        // 16 entries, pc>>2 indexing: pc = 16*4 aliases to index 0.
        assert!(p.predict(64));
    }

    #[test]
    #[should_panic(expected = "2^n")]
    fn non_power_of_two_rejected() {
        let _ = Bimodal::new(100);
    }

    #[test]
    fn cannot_flip_on_single_outcome_when_saturated() {
        let mut p = Bimodal::new(64);
        for _ in 0..4 {
            p.update(0x8, true, false);
        }
        p.update(0x8, false, true);
        assert!(
            p.predict(0x8),
            "hysteresis holds after one opposite outcome"
        );
    }
}
