//! TAGE-SC-L composite predictor.
//!
//! Combines [`Tage`], a [`LoopPredictor`], and a lightweight statistical
//! corrector. Arbitration follows the family's spirit:
//!
//! 1. a confident loop-predictor entry overrides everything;
//! 2. otherwise the statistical corrector may flip a low-confidence TAGE
//!    prediction when its own history-indexed counters vote strongly the
//!    other way;
//! 3. otherwise TAGE provides the prediction.

use super::{Counter, DirectionPredictor, HistoryCheckpoint, LoopPredictor, Tage, TageConfig};

/// Number of statistical-corrector tables.
const SC_TABLES: usize = 3;
/// History lengths of the corrector tables.
const SC_HIST: [u32; SC_TABLES] = [0, 8, 24];
/// log2 entries per corrector table.
const SC_BITS: u32 = 11;

/// The 64KB-class default predictor of the simulated core.
///
/// # Examples
///
/// ```
/// use phelps_uarch::bpred::{DirectionPredictor, TageScL};
///
/// let mut p = TageScL::large();
/// for _ in 0..200 {
///     let pred = p.predict(0x1000);
///     p.speculate(0x1000, true);
///     p.update(0x1000, true, pred);
/// }
/// assert!(p.predict(0x1000));
/// ```
#[derive(Clone, Debug)]
pub struct TageScL {
    tage: Tage,
    loop_pred: LoopPredictor,
    sc: Vec<Vec<Counter<5>>>,
    /// Retired history mirror for SC indexing (kept alongside TAGE's).
    sc_ret_hist: u64,
    sc_spec_hist: u64,
    use_sc: Counter<5>,
}

impl TageScL {
    /// Full-size configuration (the paper's 64KB-class predictor).
    pub fn large() -> TageScL {
        TageScL::with_config(TageConfig::large(), 256)
    }

    /// Small configuration for fast tests.
    pub fn small() -> TageScL {
        TageScL::with_config(TageConfig::small(), 64)
    }

    /// Builds a composite from an explicit TAGE geometry and loop-table size.
    pub fn with_config(cfg: TageConfig, loop_entries: usize) -> TageScL {
        TageScL {
            tage: Tage::new(cfg),
            loop_pred: LoopPredictor::new(loop_entries),
            sc: vec![vec![Counter::weakly_not_taken(); 1 << SC_BITS]; SC_TABLES],
            sc_ret_hist: 0,
            sc_spec_hist: 0,
            use_sc: Counter::weakly_taken(),
        }
    }

    fn sc_index(pc: u64, hist: u64, table: usize) -> usize {
        let hl = SC_HIST[table];
        let h = if hl == 0 {
            0
        } else {
            hist & ((1u64 << hl) - 1)
        };
        let mixed = (pc >> 2) ^ h ^ (h >> 7) ^ ((table as u64) << 5);
        (mixed & ((1 << SC_BITS) - 1)) as usize
    }

    fn sc_sum(&self, pc: u64, hist: u64) -> i32 {
        (0..SC_TABLES)
            .map(|t| self.sc[t][TageScL::sc_index(pc, hist, t)].value() as i32)
            .sum()
    }
}

impl DirectionPredictor for TageScL {
    fn predict(&mut self, pc: u64) -> bool {
        if let Some(p) = self.loop_pred.predict(pc) {
            return p;
        }
        let tage_pred = self.tage.predict(pc);
        if self.use_sc.taken() && !self.tage.confident(pc) {
            let sum = self.sc_sum(pc, self.sc_spec_hist);
            // Only flip on a strong corrector vote.
            if sum.abs() >= 8 {
                return sum >= 0;
            }
        }
        tage_pred
    }

    fn update(&mut self, pc: u64, taken: bool, predicted: bool) {
        phelps_telemetry::count(phelps_telemetry::Counter::BpredUpdates);
        if predicted != taken {
            phelps_telemetry::count(phelps_telemetry::Counter::BpredWrong);
        }
        self.loop_pred.update(pc, taken);
        // Judge the SC on whether flipping would have helped, using the
        // retired history (matches the fetch-time index; see Tage docs).
        let sum = self.sc_sum(pc, self.sc_ret_hist);
        let sc_dir = sum >= 0;
        let tage_dir = self.tage.predict_with_retired(pc);
        if sc_dir != tage_dir && sum.abs() >= 8 {
            self.use_sc.update(sc_dir == taken);
        }
        for t in 0..SC_TABLES {
            let idx = TageScL::sc_index(pc, self.sc_ret_hist, t);
            self.sc[t][idx].update(taken);
        }
        self.sc_ret_hist = (self.sc_ret_hist << 1) | taken as u64;
        self.tage.update(pc, taken, predicted);
    }

    fn speculate(&mut self, pc: u64, taken: bool) {
        self.sc_spec_hist = (self.sc_spec_hist << 1) | taken as u64;
        self.loop_pred.speculate(pc, taken);
        self.tage.speculate(pc, taken);
    }

    fn checkpoint(&self) -> HistoryCheckpoint {
        self.tage.checkpoint()
    }

    fn recover(&mut self, ckpt: &HistoryCheckpoint) {
        self.tage.recover(ckpt);
        // The SC's short spec history and the loop predictor's speculative
        // counts are approximate after recovery; re-sync them from the
        // retired state (bounded staleness, self-corrects).
        self.sc_spec_hist = self.sc_ret_hist;
        self.loop_pred.resync();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(p: &mut TageScL, pc: u64, outcomes: impl Iterator<Item = bool>) -> (usize, usize) {
        let mut correct = 0;
        let mut total = 0;
        for actual in outcomes {
            let pred = p.predict(pc);
            p.speculate(pc, actual);
            total += 1;
            if pred == actual {
                correct += 1;
            }
            p.update(pc, actual, pred);
        }
        (correct, total)
    }

    #[test]
    fn biased_branch_near_perfect() {
        let mut p = TageScL::small();
        let (c, t) = drive(&mut p, 0x40, (0..1000).map(|_| true));
        assert!(c as f64 / t as f64 > 0.97, "{c}/{t}");
    }

    #[test]
    fn stable_loop_trip_count_predicted_by_loop_component() {
        let mut p = TageScL::small();
        // 23-iteration loop: beyond the small TAGE histories, the loop
        // predictor carries it.
        let outcomes = (0..40).flat_map(|_| (0..23).map(|i| i < 22));
        let (c, t) = drive(&mut p, 0x80, outcomes);
        assert!(c as f64 / t as f64 > 0.95, "{c}/{t}");
    }

    #[test]
    fn random_branch_stays_delinquent() {
        let mut p = TageScL::small();
        let mut x = 7u64;
        let outcomes = (0..6000).map(move |_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            (x >> 40) & 1 == 1
        });
        let (c, t) = drive(&mut p, 0xc0, outcomes);
        let acc = c as f64 / t as f64;
        assert!(acc < 0.65, "random branch near chance: {acc}");
    }

    #[test]
    fn recover_is_safe_and_deterministic() {
        let mut p = TageScL::small();
        for i in 0..200 {
            let o = i % 3 == 0;
            let pred = p.predict(0x10);
            p.speculate(0x10, o);
            p.update(0x10, o, pred);
        }
        let ckpt = p.checkpoint();
        p.speculate(0x10, true);
        p.speculate(0x10, true);
        p.recover(&ckpt);
        // No panic and predictions still functional.
        let _ = p.predict(0x10);
    }
}
