//! # phelps-uarch
//!
//! Cycle-level superscalar core *components* for the Phelps reproduction:
//!
//! * [`config`] — the paper's core configuration (Table III) and the
//!   thread-partitioning plans (Table I);
//! * [`bpred`] — the default branch predictor family (TAGE-SC-L class),
//!   plus bimodal (used by the Branch Runahead baseline);
//! * [`mem`] — set-associative caches with MSHRs, IPCP/VLDP-style
//!   prefetchers, and the composed three-level hierarchy;
//! * [`stats`] — counters and derived metrics (IPC, MPKI, weighted
//!   harmonic means for SimPoint aggregation).
//!
//! The pipeline itself (fetch/rename/issue/execute/retire with helper
//! threads) lives in the `phelps` crate, which binds these components to
//! the paper's mechanisms.
//!
//! ```
//! use phelps_uarch::config::CoreConfig;
//! use phelps_uarch::bpred::{DirectionPredictor, TageScL};
//!
//! let cfg = CoreConfig::paper_default();
//! assert_eq!(cfg.rob, 632);
//!
//! let mut bp = TageScL::small();
//! let pred = bp.predict(0x1000);
//! bp.speculate(0x1000, pred);
//! bp.update(0x1000, true, pred);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bpred;
pub mod config;
pub mod mem;
pub mod stats;

pub use config::{ActiveThreads, CacheConfig, CoreConfig, PartitionPlan};
pub use stats::SimStats;
