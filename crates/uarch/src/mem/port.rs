//! Bandwidth-limited request ports.
//!
//! Every piece of traffic entering the memory system — instruction
//! fetches, demand loads, retired stores, prefetch fills — is expressed
//! as a [`MemRequest`] and admitted through a [`Port`] at each level it
//! touches. A port admits at most `width` requests per cycle; excess
//! requests are pushed to the next cycle with free slots, modeling finite
//! cache and DRAM-queue bandwidth without ever rejecting a request (the
//! delay simply lengthens the access latency the caller observes).
//!
//! A `width` of `0` means unlimited bandwidth — the port is a no-op and
//! the pre-port timing model is reproduced exactly at that level.

/// What kind of traffic a [`MemRequest`] carries.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ReqKind {
    /// Instruction fetch (enters at the L1I).
    IFetch,
    /// Demand data load (enters at the L1D).
    Load,
    /// Retired store (enters at the L1D through the same MSHR/fill path
    /// as loads; write-buffer semantics, so retire itself never blocks).
    Store,
    /// Prefetch fill targeting the L1D (charged bandwidth, no demand
    /// counters).
    Prefetch,
}

/// One request into the memory system.
#[derive(Clone, Copy, Debug)]
pub struct MemRequest {
    /// Traffic class.
    pub kind: ReqKind,
    /// Hardware thread slot that issued the request (MT = 0).
    pub thread: usize,
    /// PC of the requesting instruction (trains the PC-indexed L1
    /// prefetcher; for [`ReqKind::IFetch`] it equals `addr`).
    pub pc: u64,
    /// Effective address accessed.
    pub addr: u64,
    /// Cycle the request is issued.
    pub cycle: u64,
    /// Core (tenant) that issued the request. A solo run is tenant 0;
    /// the co-run driver tags each core's traffic so the shared
    /// [`crate::mem::Uncore`] can attribute contention per tenant. The
    /// constructors default to 0 — the hierarchy re-stamps the field
    /// with its own tenant id on entry, so pipeline call sites never
    /// need to thread it through.
    pub tenant: usize,
}

impl MemRequest {
    /// An instruction-fetch request for the block containing `pc`.
    pub fn ifetch(thread: usize, pc: u64, cycle: u64) -> MemRequest {
        MemRequest {
            kind: ReqKind::IFetch,
            thread,
            pc,
            addr: pc,
            cycle,
            tenant: 0,
        }
    }

    /// A demand-load request.
    pub fn load(thread: usize, pc: u64, addr: u64, cycle: u64) -> MemRequest {
        MemRequest {
            kind: ReqKind::Load,
            thread,
            pc,
            addr,
            cycle,
            tenant: 0,
        }
    }

    /// A retired-store request.
    pub fn store(thread: usize, pc: u64, addr: u64, cycle: u64) -> MemRequest {
        MemRequest {
            kind: ReqKind::Store,
            thread,
            pc,
            addr,
            cycle,
            tenant: 0,
        }
    }

    /// A prefetch request targeting the L1D.
    pub fn prefetch(thread: usize, pc: u64, addr: u64, cycle: u64) -> MemRequest {
        MemRequest {
            kind: ReqKind::Prefetch,
            thread,
            pc,
            addr,
            cycle,
            tenant: 0,
        }
    }

    /// The same request re-tagged with `tenant`.
    pub fn with_tenant(mut self, tenant: usize) -> MemRequest {
        self.tenant = tenant;
        self
    }
}

/// A per-level admission port with per-cycle bandwidth `width`.
///
/// [`Port::admit`] returns the cycle the request actually enters the
/// level: the requested cycle when a slot is free, or the first later
/// cycle with a free slot otherwise. Admission cycles are monotone for
/// monotone request cycles, so the simulator's in-cycle stage order
/// (retire → issue → fetch, all at the same cycle) gives deterministic
/// arbitration: earlier stages get the slots first.
///
/// # Examples
///
/// ```
/// use phelps_uarch::mem::Port;
///
/// let mut p = Port::new(2);
/// assert_eq!(p.admit(10), 10);
/// assert_eq!(p.admit(10), 10);
/// assert_eq!(p.admit(10), 11, "third same-cycle request spills over");
/// assert_eq!(p.stall_cycles(), 1);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Port {
    /// Requests admitted per cycle; `0` = unlimited.
    width: u32,
    /// Cycle the port is currently filling.
    cur_cycle: u64,
    /// Slots used in `cur_cycle`.
    used: u32,
    /// Total cycles of admission delay imposed on requests.
    stalls: u64,
}

impl Port {
    /// Creates a port admitting `width` requests per cycle (`0` =
    /// unlimited).
    pub fn new(width: u32) -> Port {
        Port {
            width,
            cur_cycle: 0,
            used: 0,
            stalls: 0,
        }
    }

    /// Admits one request issued at `cycle`; returns the cycle it enters
    /// the level (>= `cycle`). Delay is accumulated into
    /// [`Port::stall_cycles`].
    pub fn admit(&mut self, cycle: u64) -> u64 {
        if self.width == 0 {
            return cycle;
        }
        if cycle > self.cur_cycle {
            self.cur_cycle = cycle;
            self.used = 0;
        }
        while self.used >= self.width {
            self.cur_cycle += 1;
            self.used = 0;
        }
        self.used += 1;
        self.stalls += self.cur_cycle.saturating_sub(cycle);
        self.cur_cycle
    }

    /// Total cycles of admission delay imposed so far (sum over all
    /// delayed requests).
    pub fn stall_cycles(&self) -> u64 {
        self.stalls
    }

    /// The configured per-cycle bandwidth (`0` = unlimited).
    pub fn width(&self) -> u32 {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_port_is_transparent() {
        let mut p = Port::new(0);
        for c in [5u64, 5, 5, 5, 9, 9] {
            assert_eq!(p.admit(c), c);
        }
        assert_eq!(p.stall_cycles(), 0);
    }

    #[test]
    fn width_one_serializes_same_cycle_requests() {
        let mut p = Port::new(1);
        assert_eq!(p.admit(3), 3);
        assert_eq!(p.admit(3), 4);
        assert_eq!(p.admit(3), 5);
        assert_eq!(p.stall_cycles(), 1 + 2);
    }

    #[test]
    fn later_request_resets_the_window() {
        let mut p = Port::new(1);
        assert_eq!(p.admit(0), 0);
        assert_eq!(p.admit(10), 10, "idle cycles do not carry over");
        assert_eq!(p.stall_cycles(), 0);
    }

    #[test]
    fn backlog_carries_into_future_cycles() {
        let mut p = Port::new(1);
        for _ in 0..4 {
            p.admit(0);
        }
        // Port is busy through cycle 3; a request at cycle 2 queues behind.
        assert_eq!(p.admit(2), 4);
    }

    #[test]
    fn admission_is_monotone_for_monotone_requests() {
        let mut p = Port::new(2);
        let mut last = 0;
        for c in [0u64, 0, 0, 1, 1, 1, 1, 2, 5, 5, 5] {
            let a = p.admit(c);
            assert!(a >= c, "admitted before requested");
            assert!(a >= last, "admission went backwards");
            last = a;
        }
    }

    #[test]
    fn request_constructors_tag_kinds() {
        assert_eq!(MemRequest::ifetch(0, 0x40, 1).kind, ReqKind::IFetch);
        assert_eq!(MemRequest::load(0, 0x40, 0x80, 1).kind, ReqKind::Load);
        assert_eq!(MemRequest::store(0, 0x40, 0x80, 1).kind, ReqKind::Store);
        assert_eq!(MemRequest::prefetch(0, 0, 0x80, 1).kind, ReqKind::Prefetch);
        let r = MemRequest::ifetch(2, 0x1000, 7);
        assert_eq!((r.thread, r.pc, r.addr, r.cycle), (2, 0x1000, 0x1000, 7));
        assert_eq!(r.tenant, 0, "constructors default to tenant 0");
        assert_eq!(r.with_tenant(1).tenant, 1);
    }
}
