//! Hardware prefetchers.
//!
//! Two prefetchers in the spirit of the paper's configuration (Table III):
//!
//! * [`IpcpPrefetcher`] — an IPCP-style L1D prefetcher that classifies each
//!   load IP (constant-stride vs. complex) and issues stride prefetches with
//!   a confidence-scaled degree.
//! * [`VldpPrefetcher`] — a VLDP-style L2 prefetcher that keeps a history of
//!   recent block deltas per page and predicts the next delta from delta
//!   pattern tables.
//!
//! Both produce candidate prefetch addresses; the hierarchy decides whether
//! to fill (filtering blocks already present).

use std::collections::HashMap;

/// A prefetch candidate produced by a prefetcher.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PrefetchRequest {
    /// Target address (any byte within the target block).
    pub addr: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct IpEntry {
    last_addr: u64,
    stride: i64,
    confidence: u8,
    valid: bool,
}

/// IPCP-style per-IP stride prefetcher for the L1 data cache.
///
/// Classification is implicit in the confidence counter: an IP whose
/// consecutive accesses repeat the same stride gains confidence and issues
/// deeper prefetches; irregular IPs issue nothing.
///
/// # Examples
///
/// ```
/// use phelps_uarch::mem::IpcpPrefetcher;
///
/// let mut pf = IpcpPrefetcher::new(256);
/// let mut reqs = Vec::new();
/// for i in 0..8u64 {
///     reqs = pf.train(0x40, 0x1000 + i * 64);
/// }
/// assert!(!reqs.is_empty(), "constant stride detected");
/// ```
#[derive(Clone, Debug)]
pub struct IpcpPrefetcher {
    table: Vec<IpEntry>,
    mask: u64,
}

impl IpcpPrefetcher {
    /// Creates a prefetcher with `entries` IP-table slots (power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> IpcpPrefetcher {
        assert!(entries.is_power_of_two());
        IpcpPrefetcher {
            table: vec![IpEntry::default(); entries],
            mask: entries as u64 - 1,
        }
    }

    /// Trains on a demand access by load `pc` to `addr` and returns
    /// prefetch candidates.
    pub fn train(&mut self, pc: u64, addr: u64) -> Vec<PrefetchRequest> {
        let e = &mut self.table[((pc >> 2) & self.mask) as usize];
        let mut out = Vec::new();
        if e.valid {
            let stride = addr as i64 - e.last_addr as i64;
            if stride == e.stride && stride != 0 {
                e.confidence = (e.confidence + 1).min(3);
            } else {
                e.confidence = e.confidence.saturating_sub(1);
                if e.confidence == 0 {
                    e.stride = stride;
                }
            }
            if e.confidence >= 2 && e.stride != 0 {
                // Degree scales with confidence (2 → depth 2, 3 → depth 4).
                let degree = if e.confidence == 3 { 4 } else { 2 };
                for d in 1..=degree {
                    let target = addr as i64 + e.stride * d;
                    if target > 0 {
                        out.push(PrefetchRequest {
                            addr: target as u64,
                        });
                    }
                }
            }
        } else {
            e.valid = true;
            e.stride = 0;
            e.confidence = 0;
        }
        e.last_addr = addr;
        out
    }
}

const VLDP_HISTORY: usize = 3;

#[derive(Clone, Debug)]
struct PageEntry {
    last_block: u64,
    deltas: [i64; VLDP_HISTORY],
    n_deltas: usize,
    /// Train-order stamp of the last access, for deterministic LRU
    /// eviction (hash-map iteration order varies per process and must
    /// never influence simulated timing).
    last_use: u64,
}

/// VLDP-style variable-length delta prefetcher for the L2 cache.
///
/// Per 4KB page, tracks the last few block-granularity deltas; delta
/// pattern tables map a history of 1 or 2 recent deltas to the most likely
/// next delta. Longer-history matches take precedence.
#[derive(Clone, Debug)]
pub struct VldpPrefetcher {
    pages: HashMap<u64, PageEntry>,
    /// DPT-1: last delta -> predicted next delta (with confidence).
    dpt1: HashMap<i64, (i64, u8)>,
    /// DPT-2: (delta[-2], delta[-1]) -> predicted next delta.
    dpt2: HashMap<(i64, i64), (i64, u8)>,
    block_bytes: u64,
    max_pages: usize,
    /// Monotonic train counter backing the LRU stamps.
    train_tick: u64,
}

impl VldpPrefetcher {
    /// Creates a VLDP prefetcher operating on `block_bytes` blocks.
    pub fn new(block_bytes: u64) -> VldpPrefetcher {
        VldpPrefetcher {
            pages: HashMap::new(),
            dpt1: HashMap::new(),
            dpt2: HashMap::new(),
            block_bytes,
            max_pages: 64,
            train_tick: 0,
        }
    }

    fn learn(map_entry: &mut (i64, u8), next: i64) {
        if map_entry.0 == next {
            map_entry.1 = (map_entry.1 + 1).min(3);
        } else if map_entry.1 == 0 {
            *map_entry = (next, 1);
        } else {
            map_entry.1 -= 1;
        }
    }

    /// Trains on an L2 demand access and returns prefetch candidates.
    pub fn train(&mut self, addr: u64) -> Vec<PrefetchRequest> {
        let page = addr >> 12;
        let block = addr / self.block_bytes;
        let mut out = Vec::new();

        if self.pages.len() > self.max_pages && !self.pages.contains_key(&page) {
            // Evict the least-recently-trained page to bound state
            // (hardware keeps a small page table too). The victim must be
            // chosen deterministically — picking an arbitrary hash-map key
            // would make timing depend on the process's hash seed.
            if let Some(&victim) = self
                .pages
                .iter()
                .min_by_key(|(p, e)| (e.last_use, **p))
                .map(|(p, _)| p)
            {
                self.pages.remove(&victim);
            }
        }

        self.train_tick += 1;
        let tick = self.train_tick;
        let e = self.pages.entry(page).or_insert(PageEntry {
            last_block: block,
            deltas: [0; VLDP_HISTORY],
            n_deltas: 0,
            last_use: tick,
        });
        e.last_use = tick;

        let delta = block as i64 - e.last_block as i64;
        if delta != 0 {
            // Train DPTs with the observed transition.
            if e.n_deltas >= 1 {
                let d1 = e.deltas[0];
                VldpPrefetcher::learn(self.dpt1.entry(d1).or_insert((delta, 0)), delta);
                if e.n_deltas >= 2 {
                    let d2 = e.deltas[1];
                    VldpPrefetcher::learn(self.dpt2.entry((d2, d1)).or_insert((delta, 0)), delta);
                }
            }
            // Shift history.
            for i in (1..VLDP_HISTORY).rev() {
                e.deltas[i] = e.deltas[i - 1];
            }
            e.deltas[0] = delta;
            e.n_deltas = (e.n_deltas + 1).min(VLDP_HISTORY);
            e.last_block = block;

            // Predict: prefer the 2-delta table.
            let pred = if e.n_deltas >= 2 {
                self.dpt2
                    .get(&(e.deltas[1], e.deltas[0]))
                    .filter(|(_, c)| *c >= 1)
                    .map(|(d, _)| *d)
                    .or_else(|| {
                        self.dpt1
                            .get(&e.deltas[0])
                            .filter(|(_, c)| *c >= 1)
                            .map(|(d, _)| *d)
                    })
            } else {
                self.dpt1
                    .get(&e.deltas[0])
                    .filter(|(_, c)| *c >= 1)
                    .map(|(d, _)| *d)
            };
            if let Some(d) = pred {
                let target = (block as i64 + d) * self.block_bytes as i64;
                if target > 0 {
                    out.push(PrefetchRequest {
                        addr: target as u64,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipcp_learns_constant_stride() {
        let mut pf = IpcpPrefetcher::new(64);
        let mut last = Vec::new();
        for i in 0..6u64 {
            last = pf.train(0x10, 0x8000 + i * 128);
        }
        assert!(!last.is_empty());
        assert_eq!(last[0].addr, 0x8000 + 5 * 128 + 128);
    }

    #[test]
    fn ipcp_irregular_stream_issues_nothing() {
        let mut pf = IpcpPrefetcher::new(64);
        let addrs = [0x100u64, 0x9000, 0x44, 0x7770, 0x2345, 0xfff0];
        let mut total = 0;
        for a in addrs {
            total += pf.train(0x20, a).len();
        }
        assert_eq!(total, 0, "no confidence on random addresses");
    }

    #[test]
    fn ipcp_confidence_scales_degree() {
        let mut pf = IpcpPrefetcher::new(64);
        let mut reqs = Vec::new();
        for i in 0..12u64 {
            reqs = pf.train(0x30, 0x4000 + i * 64);
        }
        assert_eq!(reqs.len(), 4, "saturated confidence issues degree 4");
    }

    #[test]
    fn ipcp_separate_ips_tracked_independently() {
        let mut pf = IpcpPrefetcher::new(64);
        for i in 0..8u64 {
            let r1 = pf.train(0x40, 0x1000 + i * 64);
            let r2 = pf.train(0x44, 0x9000 + i * 256);
            if i == 7 {
                assert!(!r1.is_empty() && !r2.is_empty());
                assert_eq!(r1[0].addr, 0x1000 + 7 * 64 + 64);
                assert_eq!(r2[0].addr, 0x9000 + 7 * 256 + 256);
            }
        }
    }

    #[test]
    fn vldp_learns_repeating_delta_pattern() {
        let mut pf = VldpPrefetcher::new(64);
        // Pattern of block deltas within a page: +1, +3, +1, +3, ...
        let mut block = 0u64;
        let mut predicted_right = 0;
        let mut total = 0;
        for i in 0..40 {
            let delta = if i % 2 == 0 { 1 } else { 3 };
            block += delta;
            let reqs = pf.train(block * 64);
            if i > 10 {
                total += 1;
                let next = block + if (i + 1) % 2 == 0 { 1 } else { 3 };
                if reqs.iter().any(|r| r.addr / 64 == next) {
                    predicted_right += 1;
                }
            }
        }
        assert!(
            predicted_right * 2 > total,
            "{predicted_right}/{total} pattern predictions"
        );
    }

    #[test]
    fn vldp_same_block_rereference_is_ignored() {
        let mut pf = VldpPrefetcher::new(64);
        let _ = pf.train(0x1000);
        let reqs = pf.train(0x1008); // same block
        assert!(reqs.is_empty());
    }

    #[test]
    fn vldp_page_state_bounded() {
        let mut pf = VldpPrefetcher::new(64);
        for p in 0..1000u64 {
            let _ = pf.train(p << 12);
        }
        assert!(
            pf.pages.len() <= 66,
            "page table bounded: {}",
            pf.pages.len()
        );
    }
}
