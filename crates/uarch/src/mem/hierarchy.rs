//! Three-level memory hierarchy behind bandwidth-limited ports.
//!
//! [`MemoryHierarchy`] is one core's view of the memory system: the
//! core-private tier (L1I/L1D [`Cache`]s with their MSHRs, the L1
//! prefetcher, per-core admission [`Port`]s) plus an owned shared tier
//! ([`Uncore`]: L2/L3, their ports, the DRAM queue and the L2
//! prefetcher). Every piece of traffic — instruction fetches, demand
//! loads, retired stores, prefetches — is a [`MemRequest`] handed to
//! [`MemoryHierarchy::request`], which admits it through the ports of
//! each level it touches, performs fills on the way back, trains the
//! prefetchers, and returns the cycle at which the data is available.
//! Requests that miss the private tier are re-stamped with this core's
//! tenant id and handed to the uncore, which attributes shared-level
//! contention per tenant.
//!
//! A solo run keeps the owned uncore in place and is bit-identical to
//! the pre-split hierarchy. A co-run driver instead maintains one
//! external `Uncore` and swaps it in around each core's cycle step
//! ([`MemoryHierarchy::swap_uncore`]), so N cores share one L2/L3/DRAM
//! while each keeps its private tier.
//!
//! Port admission models finite bandwidth: a level with `ports = N`
//! accepts N requests per cycle and pushes the rest to later cycles, so
//! helper-thread traffic is charged for the L2/L3/DRAM contention it
//! creates. `ports = 0` disables the limit at that level.

use crate::config::CoreConfig;
use crate::mem::{Cache, IpcpPrefetcher, MemRequest, Port, Probe, ReqKind, Uncore};
use phelps_telemetry as tlm;

/// Outcome of a demand access, for statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessLevel {
    /// Hit in the L1 cache the request entered at (L1I or L1D).
    L1,
    /// Hit in the L2.
    L2,
    /// Hit in the L3.
    L3,
    /// Served from DRAM.
    Dram,
}

/// Result of [`MemoryHierarchy::request`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessResult {
    /// Cycle at which the value is available to dependents.
    pub done_cycle: u64,
    /// Deepest level the access had to travel to.
    pub level: AccessLevel,
    /// Whether the L1 hit was the first demand touch of a prefetched block.
    pub l1_prefetch_hit: bool,
}

/// The simulated cache hierarchy (fetch + demand paths, ports,
/// prefetchers).
///
/// # Examples
///
/// ```
/// use phelps_uarch::config::CoreConfig;
/// use phelps_uarch::mem::{AccessLevel, MemRequest, MemoryHierarchy};
///
/// let mut mh = MemoryHierarchy::new(&CoreConfig::paper_default());
/// let first = mh.request(MemRequest::load(0, 0x400, 0x10_000, 0));
/// assert_eq!(first.level, AccessLevel::Dram);
/// let again = mh.request(MemRequest::load(0, 0x400, 0x10_000, first.done_cycle));
/// assert_eq!(again.level, AccessLevel::L1);
/// ```
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    /// `None` when `cfg.l1i.size_bytes == 0`: ideal instruction supply,
    /// every [`ReqKind::IFetch`] completes instantly.
    l1i: Option<Cache>,
    l1d: Cache,
    l1i_port: Port,
    l1d_port: Port,
    ipcp: Option<IpcpPrefetcher>,
    /// L1-targeted prefetch fills issued by this core (after in-cache
    /// filtering). Shared-tier (VLDP) prefetches live in the uncore.
    core_prefetches: u64,
    /// Tenant id stamped onto every request handed to the shared tier.
    tenant: usize,
    /// The shared tier. Solo runs use this owned instance; a co-run
    /// driver swaps a communal one in and out around each cycle step.
    uncore: Uncore,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from a core configuration.
    pub fn new(cfg: &CoreConfig) -> MemoryHierarchy {
        MemoryHierarchy {
            l1i: (cfg.l1i.size_bytes > 0).then(|| Cache::new(cfg.l1i)),
            l1d: Cache::new(cfg.l1d),
            l1i_port: Port::new(cfg.l1i.ports),
            l1d_port: Port::new(cfg.l1d.ports),
            ipcp: cfg.l1d_prefetcher.then(|| IpcpPrefetcher::new(256)),
            core_prefetches: 0,
            tenant: 0,
            uncore: Uncore::new(cfg),
        }
    }

    /// Sets the tenant id stamped onto requests entering the shared tier
    /// (solo runs keep the default 0).
    pub fn set_tenant(&mut self, tenant: usize) {
        self.tenant = tenant;
    }

    /// The tenant id this core stamps onto shared-tier requests.
    pub fn tenant(&self) -> usize {
        self.tenant
    }

    /// Exchanges the shared tier with `uncore`. A co-run driver keeps
    /// one communal [`Uncore`] and swaps it in before each core's cycle
    /// step and back out after, so every core's misses land in the same
    /// L2/L3/DRAM while the cores themselves stay independently owned.
    pub fn swap_uncore(&mut self, uncore: &mut Uncore) {
        std::mem::swap(&mut self.uncore, uncore);
    }

    /// The currently-installed shared tier.
    pub fn uncore(&self) -> &Uncore {
        &self.uncore
    }

    /// L1I instruction-fetch statistics: (accesses, misses). Both zero
    /// when the L1I is disabled.
    pub fn l1i_stats(&self) -> (u64, u64) {
        self.l1i.as_ref().map_or((0, 0), |c| (c.accesses, c.misses))
    }

    /// L1D demand-load statistics: (accesses, misses, prefetch hits).
    pub fn l1d_stats(&self) -> (u64, u64, u64) {
        (self.l1d.accesses, self.l1d.misses, self.l1d.prefetch_hits)
    }

    /// L1D retired-store statistics: (accesses, misses). Kept separate from
    /// [`MemoryHierarchy::l1d_stats`] so store refill traffic does not
    /// inflate the demand counters that feed load-MPKI.
    pub fn l1d_store_stats(&self) -> (u64, u64) {
        (self.l1d.store_accesses, self.l1d.store_misses)
    }

    /// L2 demand misses (machine-wide: all tenants of the installed
    /// uncore).
    pub fn l2_misses(&self) -> u64 {
        self.uncore.l2_misses()
    }

    /// L3 demand misses (machine-wide: all tenants of the installed
    /// uncore).
    pub fn l3_misses(&self) -> u64 {
        self.uncore.l3_misses()
    }

    /// Prefetches issued on this core's behalf: L1-targeted fills plus
    /// the shared prefetcher's fills attributed to this tenant. In a solo
    /// run this equals the pre-split hierarchy's single counter.
    pub fn prefetches_issued(&self) -> u64 {
        self.core_prefetches + self.uncore.tenant_stats(self.tenant).prefetches_issued
    }

    /// Per-level port admission-stall cycles:
    /// `(l1i, l1d, l2, l3, dram queue)`. Each value is the total delay the
    /// level's port imposed on requests over the run; the shared-tier
    /// values are machine-wide (all tenants of the installed uncore).
    pub fn port_stalls(&self) -> (u64, u64, u64, u64, u64) {
        let (l2, l3, dram) = self.uncore.port_stalls();
        (
            self.l1i_port.stall_cycles(),
            self.l1d_port.stall_cycles(),
            l2,
            l3,
            dram,
        )
    }

    /// Admits through `port`, recording any imposed delay into `c`.
    fn admit(port: &mut Port, c: tlm::Counter, cycle: u64) -> u64 {
        let at = port.admit(cycle);
        if at > cycle {
            tlm::add(c, at - cycle);
        }
        at
    }

    /// Routes one request into the hierarchy: admits it through the ports
    /// of every level it touches, fills caches on the way back, trains
    /// the prefetchers, and returns when (and from where) it completes.
    ///
    /// MSHR exhaustion at the entry level adds a retry penalty rather than
    /// blocking the caller, keeping the interface non-blocking while still
    /// bounding effective MLP.
    pub fn request(&mut self, req: MemRequest) -> AccessResult {
        match req.kind {
            ReqKind::Load => self.demand_load(req),
            ReqKind::Store => self.store(req),
            ReqKind::IFetch => self.ifetch(req),
            ReqKind::Prefetch => self.prefetch_request(req),
        }
    }

    /// A demand load entering at the L1D.
    fn demand_load(&mut self, req: MemRequest) -> AccessResult {
        let cycle = Self::admit(&mut self.l1d_port, tlm::Counter::L1dPortStalls, req.cycle);
        // A miss to this block already in flight: merge onto it. Fills are
        // applied to the tag array eagerly, so this check must precede the
        // probe to charge the merged access the true fill latency. The
        // merged access reports the level the in-flight fill is headed to
        // and still trains the L1 prefetcher below — it is a demand access
        // like any other.
        let (mut done, level, l1_prefetch_hit);
        if let Some((fill, inflight_level)) = self.l1d.mshr_pending(req.addr, cycle) {
            self.l1d.accesses += 1;
            tlm::count(tlm::Counter::MshrMerges);
            done = fill.max(cycle + self.l1d.latency() as u64);
            level = inflight_level;
            l1_prefetch_hit = false;
            // Merged accesses still observed a miss latency; record it so
            // the MissLatency histogram is not biased toward the subset of
            // misses that happened to allocate their own MSHR.
            tlm::hist(tlm::Hist::MissLatency, done.saturating_sub(req.cycle));
            #[cfg(feature = "debug-invariants")]
            assert_ne!(
                level,
                AccessLevel::L1,
                "MSHR invariant: an in-flight miss cannot be L1-bound"
            );
        } else {
            match self.l1d.probe(req.addr, cycle) {
                Probe::Hit { first_prefetch_hit } => {
                    done = cycle + self.l1d.latency() as u64;
                    level = AccessLevel::L1;
                    l1_prefetch_hit = first_prefetch_hit;
                }
                Probe::Miss => {
                    l1_prefetch_hit = false;
                    let (lower_done, lower_level) = self.access_lower(req, cycle);
                    done = lower_done;
                    level = lower_level;
                    if !self.l1d.mshr_allocate(req.addr, cycle, done, level) {
                        // All MSHRs busy: retry after a fixed backoff.
                        done += 4;
                        tlm::count(tlm::Counter::MshrFullRetries);
                        tlm::event(tlm::EventKind::MshrFull, cycle, req.pc, req.addr);
                    }
                    self.l1d.fill(req.addr, false, done);
                    if tlm::enabled() {
                        tlm::count(tlm::Counter::L1dMisses);
                        tlm::hist(tlm::Hist::MissLatency, done.saturating_sub(req.cycle));
                        tlm::gauge(
                            tlm::Gauge::MshrOccupancy,
                            self.l1d.mshrs_in_use(cycle) as u64,
                        );
                        if level == AccessLevel::Dram {
                            tlm::event(tlm::EventKind::DramMiss, cycle, req.pc, done - cycle);
                        }
                    }
                }
            }
        }

        // Train the L1 prefetcher on every demand access (merged or not).
        if let Some(ipcp) = &mut self.ipcp {
            let reqs = ipcp.train(req.pc, req.addr);
            for r in reqs {
                self.prefetch_fill_l1d(r.addr, cycle);
            }
        }

        AccessResult {
            done_cycle: done,
            level,
            l1_prefetch_hit,
        }
    }

    /// A store's write at retire: enters the L1D through the same
    /// MSHR-merge/fill path as loads, so a store miss occupies an MSHR and
    /// later loads to the block merge onto the in-flight fill instead of
    /// hitting the eagerly-filled tag. The returned completion cycle is
    /// write-buffer drain time — retire itself never blocks on it. Counts
    /// into the dedicated store counters
    /// ([`MemoryHierarchy::l1d_store_stats`]) rather than the demand
    /// counters, so retired stores do not inflate load-MPKI.
    fn store(&mut self, req: MemRequest) -> AccessResult {
        tlm::count(tlm::Counter::StoresRetired);
        let cycle = Self::admit(&mut self.l1d_port, tlm::Counter::L1dPortStalls, req.cycle);
        let l1_lat = self.l1d.latency() as u64;
        if let Some((fill, level)) = self.l1d.mshr_pending(req.addr, cycle) {
            self.l1d.store_accesses += 1;
            tlm::count(tlm::Counter::MshrMerges);
            let done = fill.max(cycle + l1_lat);
            tlm::hist(tlm::Hist::MissLatency, done.saturating_sub(req.cycle));
            return AccessResult {
                done_cycle: done,
                level,
                l1_prefetch_hit: false,
            };
        }
        match self.l1d.probe_store(req.addr, cycle) {
            Probe::Hit { .. } => AccessResult {
                done_cycle: cycle + l1_lat,
                level: AccessLevel::L1,
                l1_prefetch_hit: false,
            },
            Probe::Miss => {
                let (mut done, level) = self.access_lower(req, cycle);
                if !self.l1d.mshr_allocate(req.addr, cycle, done, level) {
                    done += 4;
                    tlm::count(tlm::Counter::MshrFullRetries);
                    tlm::event(tlm::EventKind::MshrFull, cycle, req.pc, req.addr);
                }
                self.l1d.fill(req.addr, false, done);
                tlm::hist(tlm::Hist::MissLatency, done.saturating_sub(req.cycle));
                AccessResult {
                    done_cycle: done,
                    level,
                    l1_prefetch_hit: false,
                }
            }
        }
    }

    /// An instruction fetch entering at the L1I. With the L1I disabled
    /// (`size_bytes = 0`) this is ideal: it completes instantly at level
    /// L1 and touches no port.
    fn ifetch(&mut self, req: MemRequest) -> AccessResult {
        let Some(mut l1i) = self.l1i.take() else {
            return AccessResult {
                done_cycle: req.cycle,
                level: AccessLevel::L1,
                l1_prefetch_hit: false,
            };
        };
        let cycle = Self::admit(&mut self.l1i_port, tlm::Counter::L1iPortStalls, req.cycle);
        let lat = l1i.latency() as u64;
        let result = if let Some((fill, level)) = l1i.mshr_pending(req.addr, cycle) {
            l1i.accesses += 1;
            tlm::count(tlm::Counter::MshrMerges);
            let done = fill.max(cycle + lat);
            tlm::hist(tlm::Hist::MissLatency, done.saturating_sub(req.cycle));
            AccessResult {
                done_cycle: done,
                level,
                l1_prefetch_hit: false,
            }
        } else {
            match l1i.probe(req.addr, cycle) {
                Probe::Hit { .. } => AccessResult {
                    done_cycle: cycle + lat,
                    level: AccessLevel::L1,
                    l1_prefetch_hit: false,
                },
                Probe::Miss => {
                    let (mut done, level) = self.access_lower(req, cycle);
                    if !l1i.mshr_allocate(req.addr, cycle, done, level) {
                        done += 4;
                        tlm::count(tlm::Counter::MshrFullRetries);
                        tlm::event(tlm::EventKind::MshrFull, cycle, req.pc, req.addr);
                    }
                    l1i.fill(req.addr, false, done);
                    if tlm::enabled() {
                        tlm::count(tlm::Counter::L1iMisses);
                        tlm::hist(tlm::Hist::MissLatency, done.saturating_sub(req.cycle));
                    }
                    AccessResult {
                        done_cycle: done,
                        level,
                        l1_prefetch_hit: false,
                    }
                }
            }
        };
        self.l1i = Some(l1i);
        result
    }

    /// An externally-issued prefetch targeting the L1D: fills from
    /// wherever the block lives, charged port bandwidth but no demand
    /// counters. The internal L1 prefetcher uses the same path.
    fn prefetch_request(&mut self, req: MemRequest) -> AccessResult {
        let filled = self.prefetch_fill_l1d(req.addr, req.cycle);
        AccessResult {
            done_cycle: req.cycle + self.l1d.latency() as u64,
            level: if filled {
                AccessLevel::L2
            } else {
                AccessLevel::L1
            },
            l1_prefetch_hit: false,
        }
    }

    /// Fills `addr` into the L1D (and L2 if missing) as prefetch data,
    /// charging L1D/L2 port bandwidth. Skipped (returning `false`) when
    /// the block is already L1-resident.
    fn prefetch_fill_l1d(&mut self, addr: u64, cycle: u64) -> bool {
        if self.l1d.contains(addr) {
            return false;
        }
        self.core_prefetches += 1;
        let at = Self::admit(&mut self.l1d_port, tlm::Counter::L1dPortStalls, cycle);
        if !self.uncore.l2_contains(addr, self.tenant) {
            self.uncore.prefetch_fill_l2(addr, at, self.tenant);
        }
        self.l1d.fill(addr, true, at);
        true
    }

    /// Hands a private-tier miss to the shared uncore, re-stamped with
    /// this core's tenant id and the post-L1-port cycle.
    fn access_lower(&mut self, req: MemRequest, cycle: u64) -> (u64, AccessLevel) {
        self.uncore
            .access(MemRequest { cycle, ..req }.with_tenant(self.tenant))
    }

    /// Functional warming: replays one memory reference through the tag
    /// arrays only. Mirrors the demand fill path (miss at a level fills
    /// that level and everything above) but charges no latency or port
    /// bandwidth, trains no prefetcher, allocates no MSHR, and perturbs no
    /// statistics — the point is that a checkpoint-restored region starts
    /// with plausibly warm caches while its counters still read zero.
    pub fn warm_access(&mut self, addr: u64) {
        if self.l1d.warm_touch(addr) {
            return;
        }
        self.uncore.warm(addr, self.tenant);
        self.l1d.warm_insert(addr);
    }

    /// Functional warming of the instruction-fetch path: like
    /// [`MemoryHierarchy::warm_access`] but entering at the L1I. A no-op
    /// when the L1I is disabled.
    pub fn warm_ifetch(&mut self, pc: u64) {
        let Some(l1i) = self.l1i.as_mut() else {
            return;
        };
        if l1i.warm_touch(pc) {
            return;
        }
        self.uncore.warm(pc, self.tenant);
        if let Some(l1i) = self.l1i.as_mut() {
            l1i.warm_insert(pc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mh() -> MemoryHierarchy {
        MemoryHierarchy::new(&CoreConfig::paper_default())
    }

    /// Paper config with unlimited ports and no prefetchers, so latency
    /// tests see the raw ladder.
    fn quiet_cfg() -> CoreConfig {
        CoreConfig {
            l1d_prefetcher: false,
            l2_prefetcher: false,
            ..CoreConfig::paper_default().ideal_memory()
        }
    }

    fn load(m: &mut MemoryHierarchy, pc: u64, addr: u64, cycle: u64) -> AccessResult {
        m.request(MemRequest::load(0, pc, addr, cycle))
    }

    #[test]
    fn latency_ladder() {
        let cfg = CoreConfig::paper_default();
        let mut m = mh();
        // Cold: DRAM.
        let r = load(&mut m, 0x0, 0x80_0000, 0);
        assert_eq!(r.level, AccessLevel::Dram);
        assert_eq!(
            r.done_cycle,
            (cfg.l3.latency + cfg.dram_latency) as u64,
            "L3 lookup + DRAM"
        );
        // Warm: L1.
        let r = load(&mut m, 0x0, 0x80_0000, 1000);
        assert_eq!(r.level, AccessLevel::L1);
        assert_eq!(r.done_cycle, 1000 + cfg.l1d.latency as u64);
    }

    #[test]
    fn ifetch_latency_ladder() {
        let cfg = CoreConfig::paper_default();
        let mut m = mh();
        let r = m.request(MemRequest::ifetch(0, 0x40_0000, 0));
        assert_eq!(r.level, AccessLevel::Dram, "cold code block");
        assert_eq!(r.done_cycle, (cfg.l3.latency + cfg.dram_latency) as u64);
        let r = m.request(MemRequest::ifetch(0, 0x40_0000, 1000));
        assert_eq!(r.level, AccessLevel::L1);
        assert_eq!(r.done_cycle, 1000 + cfg.l1i.latency as u64);
        assert_eq!(m.l1i_stats(), (2, 1));
        // Instruction and data L1s are disjoint: the same block misses L1D
        // but is caught by the shared L2.
        let r = load(&mut m, 0x0, 0x40_0000, 2000);
        assert_eq!(r.level, AccessLevel::L2);
    }

    #[test]
    fn disabled_l1i_is_ideal() {
        let mut m = MemoryHierarchy::new(&CoreConfig::paper_default().ideal_memory());
        let r = m.request(MemRequest::ifetch(0, 0x40_0000, 7));
        assert_eq!(r.level, AccessLevel::L1);
        assert_eq!(r.done_cycle, 7, "no latency, no stall");
        assert_eq!(m.l1i_stats(), (0, 0));
        assert_eq!((m.l2_misses(), m.l3_misses()), (0, 0), "no L2 traffic");
    }

    #[test]
    fn ifetch_merges_onto_inflight_code_miss() {
        let mut m = MemoryHierarchy::new(&CoreConfig {
            l1d_prefetcher: false,
            l2_prefetcher: false,
            ..CoreConfig::paper_default()
        });
        let first = m.request(MemRequest::ifetch(0, 0x40_0000, 0));
        let merged = m.request(MemRequest::ifetch(0, 0x40_0008, 1));
        assert_eq!(merged.done_cycle, first.done_cycle);
        assert_eq!(merged.level, AccessLevel::Dram);
    }

    #[test]
    fn l1d_port_serializes_same_cycle_loads() {
        let mut cfg = CoreConfig {
            l1d_prefetcher: false,
            l2_prefetcher: false,
            ..CoreConfig::paper_default().ideal_memory()
        };
        cfg.l1d.ports = 1;
        let mut m = MemoryHierarchy::new(&cfg);
        // Warm two distinct blocks.
        let _ = load(&mut m, 0x0, 0x0, 0);
        let _ = load(&mut m, 0x0, 0x40, 0);
        // Both hit L1, but the second is admitted a cycle later.
        let a = load(&mut m, 0x0, 0x0, 1000);
        let b = load(&mut m, 0x0, 0x40, 1000);
        assert_eq!(a.done_cycle, 1000 + cfg.l1d.latency as u64);
        assert_eq!(b.done_cycle, 1001 + cfg.l1d.latency as u64);
        let (_, l1d_stalls, _, _, _) = m.port_stalls();
        assert!(l1d_stalls > 0, "admission delay is accounted");
    }

    #[test]
    fn dram_queue_serializes_concurrent_misses() {
        let mut cfg = CoreConfig {
            l1d_prefetcher: false,
            l2_prefetcher: false,
            ..CoreConfig::paper_default().ideal_memory()
        };
        cfg.dram_queue_width = 1;
        let mut m = MemoryHierarchy::new(&cfg);
        // Two cold misses to different blocks in the same cycle: both go
        // to DRAM, but the queue admits one per cycle.
        let a = load(&mut m, 0x0, 0x100_0000, 0);
        let b = load(&mut m, 0x0, 0x200_0000, 0);
        assert_eq!(a.level, AccessLevel::Dram);
        assert_eq!(b.level, AccessLevel::Dram);
        assert_eq!(b.done_cycle, a.done_cycle + 1);
        let (_, _, _, _, dram_stalls) = m.port_stalls();
        assert_eq!(dram_stalls, 1);
    }

    #[test]
    fn unlimited_ports_impose_no_stalls() {
        let mut m = MemoryHierarchy::new(&quiet_cfg());
        for i in 0..16u64 {
            let _ = load(&mut m, 0x0, i * 0x1_0000, 0);
        }
        assert_eq!(m.port_stalls(), (0, 0, 0, 0, 0));
    }

    #[test]
    fn l2_hit_after_l1_eviction_pressure() {
        let mut m = MemoryHierarchy::new(&CoreConfig {
            l1d_prefetcher: false,
            l2_prefetcher: false,
            ..CoreConfig::paper_default()
        });
        // Fill a block, then blow the L1 with conflicting blocks.
        let _ = load(&mut m, 0x0, 0x0, 0);
        let cfg = CoreConfig::paper_default();
        let sets = cfg.l1d.sets();
        for w in 1..=cfg.l1d.ways as u64 + 2 {
            let _ = load(&mut m, 0x0, w * sets * 64, 0);
        }
        let r = load(&mut m, 0x0, 0x0, 10_000);
        assert_eq!(r.level, AccessLevel::L2, "victim caught by L2");
    }

    #[test]
    fn stride_stream_gets_prefetched() {
        let mut m = mh();
        let mut dram_late = 0;
        for i in 0..64u64 {
            let r = load(&mut m, 0x40, 0x100_0000 + i * 64, i * 200);
            if i >= 16 && r.level == AccessLevel::Dram {
                dram_late += 1;
            }
        }
        assert!(
            dram_late < 8,
            "stride prefetcher hides most DRAM accesses late in the stream: {dram_late}"
        );
        assert!(m.prefetches_issued() > 0);
    }

    #[test]
    fn prefetch_request_fills_l1d_without_demand_counters() {
        let mut m = MemoryHierarchy::new(&quiet_cfg());
        let r = m.request(MemRequest::prefetch(0, 0, 0x55_0000, 0));
        assert_eq!(r.level, AccessLevel::L2, "cold prefetch did a fill");
        assert_eq!(m.prefetches_issued(), 1);
        let (acc, miss, _) = m.l1d_stats();
        assert_eq!((acc, miss), (0, 0), "no demand traffic from prefetches");
        let hit = load(&mut m, 0x0, 0x55_0000, 100);
        assert_eq!(hit.level, AccessLevel::L1);
        assert!(hit.l1_prefetch_hit, "first demand touch of prefetched data");
        // A redundant prefetch to resident data is filtered.
        let r = m.request(MemRequest::prefetch(0, 0, 0x55_0000, 200));
        assert_eq!(r.level, AccessLevel::L1);
        assert_eq!(m.prefetches_issued(), 1);
    }

    #[test]
    fn store_fill_serves_later_loads() {
        let mut m = mh();
        let st = m.request(MemRequest::store(0, 0x0, 0x55_0000, 0));
        assert_eq!(st.level, AccessLevel::Dram, "cold store miss");
        // A load while the store's fill is still in flight merges onto it
        // (stores share the MSHR path), observing the true fill latency.
        let merged = load(&mut m, 0x0, 0x55_0000, 100);
        assert_eq!(merged.level, AccessLevel::Dram);
        assert_eq!(merged.done_cycle, st.done_cycle);
        // After the fill lands, loads hit L1.
        let r = load(&mut m, 0x0, 0x55_0000, st.done_cycle + 1);
        assert_eq!(r.level, AccessLevel::L1, "store brought the block in");
    }

    #[test]
    fn store_merges_onto_inflight_load_miss() {
        let mut m = MemoryHierarchy::new(&CoreConfig {
            l1d_prefetcher: false,
            l2_prefetcher: false,
            ..CoreConfig::paper_default()
        });
        let ld = load(&mut m, 0x0, 0x77_0000, 0);
        let st = m.request(MemRequest::store(0, 0x0, 0x77_0008, 1));
        assert_eq!(st.done_cycle, ld.done_cycle, "store merged onto the miss");
        assert_eq!(m.l1d_store_stats(), (1, 0), "merge is not a store miss");
    }

    #[test]
    fn mshr_merge_returns_inflight_fill_time() {
        let mut m = MemoryHierarchy::new(&CoreConfig {
            l1d_prefetcher: false,
            l2_prefetcher: false,
            ..CoreConfig::paper_default()
        });
        let first = load(&mut m, 0x0, 0x77_0000, 0);
        // Second access to the same block before the fill completes merges.
        let second = load(&mut m, 0x0, 0x77_0040 - 0x40, 1);
        assert_eq!(second.done_cycle, first.done_cycle);
    }

    #[test]
    fn mshr_merge_on_dram_bound_miss_reports_dram() {
        // Regression: the merge path used to hardcode `AccessLevel::L2`
        // for every merged miss; it must report the level the in-flight
        // fill is actually headed to.
        let mut m = MemoryHierarchy::new(&CoreConfig {
            l1d_prefetcher: false,
            l2_prefetcher: false,
            ..CoreConfig::paper_default()
        });
        let first = load(&mut m, 0x0, 0x99_0000, 0);
        assert_eq!(first.level, AccessLevel::Dram, "cold miss goes to DRAM");
        let merged = load(&mut m, 0x0, 0x99_0008, 1);
        assert_eq!(merged.done_cycle, first.done_cycle);
        assert_eq!(merged.level, AccessLevel::Dram, "merge reports true level");
    }

    #[test]
    fn mshr_merge_on_l2_bound_miss_reports_l2() {
        let cfg = CoreConfig {
            l1d_prefetcher: false,
            l2_prefetcher: false,
            ..CoreConfig::paper_default()
        };
        let mut m = MemoryHierarchy::new(&cfg);
        // Warm the L2, then evict the block from the L1 with conflicting
        // accesses so a fresh L1 miss is L2-bound.
        let warm = load(&mut m, 0x0, 0x0, 0);
        let sets = cfg.l1d.sets();
        let t0 = warm.done_cycle + 1000;
        for w in 1..=cfg.l1d.ways as u64 + 2 {
            let r = load(&mut m, 0x0, w * sets * 64, t0);
            assert!(r.done_cycle > t0);
        }
        let miss = load(&mut m, 0x0, 0x0, t0 + 10_000);
        assert_eq!(miss.level, AccessLevel::L2, "victim caught by L2");
        let merged = load(&mut m, 0x0, 0x8, t0 + 10_001);
        assert_eq!(merged.level, AccessLevel::L2);
        assert_eq!(merged.done_cycle, miss.done_cycle);
    }

    #[test]
    fn mshr_merge_trains_l1_prefetcher() {
        // Regression: the merge early-return used to skip IPCP training,
        // so a load PC whose accesses always merge onto another PC's
        // in-flight misses never built stride confidence. Here pc 0x84
        // walks a perfect +64 stride but every access is a merge (pc 0x80
        // touched the block one cycle earlier); pc 0x80 itself alternates
        // between two far-apart streams so it never gains confidence. Only
        // merge-path training can produce prefetches in this pattern.
        let mut m = MemoryHierarchy::new(&CoreConfig {
            l2_prefetcher: false,
            ..CoreConfig::paper_default()
        });
        let base = 0x300_0000u64;
        let far = base + 100 * 64;
        let mut merges = 0u64;
        let mut t = 0u64;
        for i in 0..32u64 {
            let a = load(&mut m, 0x80, base + i * 64, t);
            let b = load(&mut m, 0x84, base + i * 64 + 8, t + 1);
            if a.level != AccessLevel::L1 && b.done_cycle == a.done_cycle {
                merges += 1;
            }
            // Scramble pc 0x80's stride (+6400, -6336, ...).
            let _ = load(&mut m, 0x80, far + i * 64, t + 2);
            t += 24;
        }
        assert!(merges >= 3, "stream produced MSHR merges: {merges}");
        assert!(
            m.prefetches_issued() > 0,
            "IPCP trained on merged accesses issues prefetches"
        );
    }

    #[test]
    fn warm_access_fills_all_levels_without_stats() {
        let mut m = mh();
        m.warm_access(0x44_0000);
        let (acc, miss, pf) = m.l1d_stats();
        assert_eq!((acc, miss, pf), (0, 0, 0));
        assert_eq!((m.l2_misses(), m.l3_misses()), (0, 0));
        assert_eq!(m.prefetches_issued(), 0, "warming trains no prefetcher");
        assert_eq!(m.port_stalls(), (0, 0, 0, 0, 0), "warming charges no port");
        // The block is genuinely resident: the first demand access hits L1.
        let r = load(&mut m, 0x0, 0x44_0000, 100);
        assert_eq!(r.level, AccessLevel::L1);
    }

    #[test]
    fn warm_access_is_idempotent_on_resident_blocks() {
        let mut m = mh();
        m.warm_access(0x44_0000);
        m.warm_access(0x44_0008); // same block, L1 warm hit
        let r = load(&mut m, 0x0, 0x44_0000, 0);
        assert_eq!(r.level, AccessLevel::L1);
        let (acc, miss, _) = m.l1d_stats();
        assert_eq!((acc, miss), (1, 0));
    }

    #[test]
    fn warm_ifetch_fills_the_instruction_path() {
        let mut m = mh();
        m.warm_ifetch(0x40_0000);
        assert_eq!(m.l1i_stats(), (0, 0), "warming perturbs no stats");
        let r = m.request(MemRequest::ifetch(0, 0x40_0000, 100));
        assert_eq!(r.level, AccessLevel::L1, "warmed code block hits");
        // Warming with the L1I disabled is a no-op.
        let mut ideal = MemoryHierarchy::new(&CoreConfig::paper_default().ideal_memory());
        ideal.warm_ifetch(0x40_0000);
        assert_eq!(ideal.l1i_stats(), (0, 0));
    }

    #[test]
    fn store_retired_counts_separately_from_demand() {
        // Regression: the store path used to call the demand `probe`,
        // inflating the accesses/misses counters that feed load-MPKI.
        let mut m = mh();
        let first = m.request(MemRequest::store(0, 0x0, 0x66_0000, 0));
        // Second store after the fill lands hits L1.
        let _ = m.request(MemRequest::store(0, 0x0, 0x66_0000, first.done_cycle + 1));
        let (acc, miss, _) = m.l1d_stats();
        assert_eq!((acc, miss), (0, 0), "no demand traffic from stores");
        assert_eq!(m.l1d_store_stats(), (2, 1));
        // Demand loads still count into the demand counters.
        let _ = load(&mut m, 0x0, 0x66_0000, first.done_cycle + 2);
        let (acc, miss, _) = m.l1d_stats();
        assert_eq!((acc, miss), (1, 0), "store fill serves the load");
        assert_eq!(m.l1d_store_stats(), (2, 1), "unchanged by loads");
    }
}
