//! Three-level memory hierarchy.
//!
//! [`MemoryHierarchy`] binds the L1D/L2/L3 [`Cache`]s, the DRAM latency,
//! and the two prefetchers into a single "access" interface used by the
//! timing model: given a load's PC, address and issue cycle, it returns
//! the cycle at which the data is available, performing fills and training
//! prefetchers along the way.

use crate::config::CoreConfig;
use crate::mem::{Cache, IpcpPrefetcher, Probe, VldpPrefetcher};
use phelps_telemetry as tlm;

/// Outcome of a demand access, for statistics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessLevel {
    /// Hit in the L1 data cache.
    L1,
    /// Hit in the L2.
    L2,
    /// Hit in the L3.
    L3,
    /// Served from DRAM.
    Dram,
}

/// Result of [`MemoryHierarchy::access`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessResult {
    /// Cycle at which the value is available to dependents.
    pub done_cycle: u64,
    /// Deepest level the access had to travel to.
    pub level: AccessLevel,
    /// Whether the L1 hit was the first demand touch of a prefetched block.
    pub l1_prefetch_hit: bool,
}

/// The simulated cache hierarchy (demand path + prefetchers).
///
/// # Examples
///
/// ```
/// use phelps_uarch::config::CoreConfig;
/// use phelps_uarch::mem::{AccessLevel, MemoryHierarchy};
///
/// let mut mh = MemoryHierarchy::new(&CoreConfig::paper_default());
/// let first = mh.access(0x400, 0x10_000, 0);
/// assert_eq!(first.level, AccessLevel::Dram);
/// let again = mh.access(0x400, 0x10_000, first.done_cycle);
/// assert_eq!(again.level, AccessLevel::L1);
/// ```
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    l1d: Cache,
    l2: Cache,
    l3: Cache,
    dram_latency: u32,
    ipcp: Option<IpcpPrefetcher>,
    vldp: Option<VldpPrefetcher>,
    /// Prefetches issued (after in-cache filtering).
    pub prefetches_issued: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy from a core configuration.
    pub fn new(cfg: &CoreConfig) -> MemoryHierarchy {
        MemoryHierarchy {
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            l3: Cache::new(cfg.l3),
            dram_latency: cfg.dram_latency,
            ipcp: cfg.l1d_prefetcher.then(|| IpcpPrefetcher::new(256)),
            vldp: cfg
                .l2_prefetcher
                .then(|| VldpPrefetcher::new(cfg.l2.block_bytes)),
            prefetches_issued: 0,
        }
    }

    /// L1D demand-load statistics: (accesses, misses, prefetch hits).
    pub fn l1d_stats(&self) -> (u64, u64, u64) {
        (self.l1d.accesses, self.l1d.misses, self.l1d.prefetch_hits)
    }

    /// L1D retired-store statistics: (accesses, misses). Kept separate from
    /// [`MemoryHierarchy::l1d_stats`] so store refill traffic does not
    /// inflate the demand counters that feed load-MPKI.
    pub fn l1d_store_stats(&self) -> (u64, u64) {
        (self.l1d.store_accesses, self.l1d.store_misses)
    }

    /// L2 demand misses.
    pub fn l2_misses(&self) -> u64 {
        self.l2.misses
    }

    /// L3 demand misses.
    pub fn l3_misses(&self) -> u64 {
        self.l3.misses
    }

    /// Performs a demand access by instruction `pc` to `addr` issued at
    /// `cycle`, filling caches on the way back and training prefetchers.
    ///
    /// MSHR exhaustion at the L1 adds a retry penalty rather than blocking
    /// the caller, keeping the interface non-blocking while still bounding
    /// effective MLP.
    pub fn access(&mut self, pc: u64, addr: u64, cycle: u64) -> AccessResult {
        // A miss to this block already in flight: merge onto it. Fills are
        // applied to the tag array eagerly, so this check must precede the
        // probe to charge the merged access the true fill latency. The
        // merged access reports the level the in-flight fill is headed to
        // and still trains the L1 prefetcher below — it is a demand access
        // like any other.
        let (mut done, level, l1_prefetch_hit);
        if let Some((fill, inflight_level)) = self.l1d.mshr_pending(addr, cycle) {
            self.l1d.accesses += 1;
            tlm::count(tlm::Counter::MshrMerges);
            done = fill.max(cycle + self.l1d.latency() as u64);
            level = inflight_level;
            l1_prefetch_hit = false;
            #[cfg(feature = "debug-invariants")]
            assert_ne!(
                level,
                AccessLevel::L1,
                "MSHR invariant: an in-flight miss cannot be L1-bound"
            );
        } else {
            match self.l1d.probe(addr, cycle) {
                Probe::Hit { first_prefetch_hit } => {
                    done = cycle + self.l1d.latency() as u64;
                    level = AccessLevel::L1;
                    l1_prefetch_hit = first_prefetch_hit;
                }
                Probe::Miss => {
                    l1_prefetch_hit = false;
                    let (lower_done, lower_level) = self.access_l2(addr, cycle, false);
                    done = lower_done;
                    level = lower_level;
                    if !self.l1d.mshr_allocate(addr, cycle, done, level) {
                        // All MSHRs busy: retry after a fixed backoff.
                        done += 4;
                        tlm::count(tlm::Counter::MshrFullRetries);
                        tlm::event(tlm::EventKind::MshrFull, cycle, pc, addr);
                    }
                    self.l1d.fill(addr, false, done);
                    if tlm::enabled() {
                        tlm::count(tlm::Counter::L1dMisses);
                        tlm::hist(tlm::Hist::MissLatency, done.saturating_sub(cycle));
                        tlm::gauge(
                            tlm::Gauge::MshrOccupancy,
                            self.l1d.mshrs_in_use(cycle) as u64,
                        );
                        if level == AccessLevel::Dram {
                            tlm::event(tlm::EventKind::DramMiss, cycle, pc, done - cycle);
                        }
                    }
                }
            }
        }

        // Train the L1 prefetcher on every demand access (merged or not).
        if let Some(ipcp) = &mut self.ipcp {
            let reqs = ipcp.train(pc, addr);
            for r in reqs {
                if !self.l1d.contains(r.addr) {
                    self.prefetches_issued += 1;
                    // Prefetch data comes from wherever it lives; fill both
                    // L1 and (if missing) L2 without charging the demand path.
                    if !self.l2.contains(r.addr) {
                        self.l2.fill(r.addr, true, cycle);
                    }
                    self.l1d.fill(r.addr, true, cycle);
                }
            }
        }

        AccessResult {
            done_cycle: done,
            level,
            l1_prefetch_hit,
        }
    }

    fn access_l2(&mut self, addr: u64, cycle: u64, is_prefetch: bool) -> (u64, AccessLevel) {
        let l2_lat = self.l2.latency() as u64;
        let result = match self.l2.probe(addr, cycle) {
            Probe::Hit { .. } => (cycle + l2_lat, AccessLevel::L2),
            Probe::Miss => {
                tlm::count(tlm::Counter::L2Misses);
                let (done, level) = match self.l3.probe(addr, cycle) {
                    Probe::Hit { .. } => (cycle + self.l3.latency() as u64, AccessLevel::L3),
                    Probe::Miss => {
                        tlm::count(tlm::Counter::L3Misses);
                        tlm::count(tlm::Counter::DramAccesses);
                        let done = cycle + self.l3.latency() as u64 + self.dram_latency as u64;
                        self.l3.fill(addr, false, done);
                        (done, AccessLevel::Dram)
                    }
                };
                self.l2.fill(addr, is_prefetch, done);
                (done, level)
            }
        };
        // Train the L2 delta prefetcher on demand traffic reaching L2.
        if !is_prefetch {
            if let Some(vldp) = &mut self.vldp {
                let reqs = vldp.train(addr);
                for r in reqs {
                    if !self.l2.contains(r.addr) {
                        self.prefetches_issued += 1;
                        if matches!(self.l3.probe(r.addr, cycle), Probe::Miss) {
                            self.l3.fill(r.addr, true, cycle);
                        }
                        self.l2.fill(r.addr, true, cycle);
                    }
                }
            }
        }
        result
    }

    /// Functional warming: replays one memory reference through the tag
    /// arrays only. Mirrors the demand fill path (miss at a level fills
    /// that level and everything above) but charges no latency, trains no
    /// prefetcher, allocates no MSHR, and perturbs no statistics — the
    /// point is that a checkpoint-restored region starts with plausibly
    /// warm caches while its counters still read zero.
    pub fn warm_access(&mut self, addr: u64) {
        if self.l1d.warm_touch(addr) {
            return;
        }
        if !self.l2.warm_touch(addr) {
            if !self.l3.warm_touch(addr) {
                self.l3.warm_insert(addr);
            }
            self.l2.warm_insert(addr);
        }
        self.l1d.warm_insert(addr);
    }

    /// A store's write at retire: touches the hierarchy for inclusion but
    /// charges no latency to the retire stage (write-buffer semantics).
    /// Counts into the dedicated store counters
    /// ([`MemoryHierarchy::l1d_store_stats`]) rather than the demand
    /// counters, so retired stores do not inflate load-MPKI.
    pub fn store_retired(&mut self, addr: u64, cycle: u64) {
        tlm::count(tlm::Counter::StoresRetired);
        if let Probe::Miss = self.l1d.probe_store(addr, cycle) {
            let (done, _) = self.access_l2(addr, cycle, false);
            self.l1d.fill(addr, false, done);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mh() -> MemoryHierarchy {
        MemoryHierarchy::new(&CoreConfig::paper_default())
    }

    #[test]
    fn latency_ladder() {
        let cfg = CoreConfig::paper_default();
        let mut m = mh();
        // Cold: DRAM.
        let r = m.access(0x0, 0x80_0000, 0);
        assert_eq!(r.level, AccessLevel::Dram);
        assert_eq!(
            r.done_cycle,
            (cfg.l3.latency + cfg.dram_latency) as u64,
            "L3 lookup + DRAM"
        );
        // Warm: L1.
        let r = m.access(0x0, 0x80_0000, 1000);
        assert_eq!(r.level, AccessLevel::L1);
        assert_eq!(r.done_cycle, 1000 + cfg.l1d.latency as u64);
    }

    #[test]
    fn l2_hit_after_l1_eviction_pressure() {
        let mut m = MemoryHierarchy::new(&CoreConfig {
            l1d_prefetcher: false,
            l2_prefetcher: false,
            ..CoreConfig::paper_default()
        });
        // Fill a block, then blow the L1 with conflicting blocks.
        let _ = m.access(0x0, 0x0, 0);
        let cfg = CoreConfig::paper_default();
        let sets = cfg.l1d.sets();
        for w in 1..=cfg.l1d.ways as u64 + 2 {
            let _ = m.access(0x0, w * sets * 64, 0);
        }
        let r = m.access(0x0, 0x0, 10_000);
        assert_eq!(r.level, AccessLevel::L2, "victim caught by L2");
    }

    #[test]
    fn stride_stream_gets_prefetched() {
        let mut m = mh();
        let mut dram_late = 0;
        for i in 0..64u64 {
            let r = m.access(0x40, 0x100_0000 + i * 64, i * 200);
            if i >= 16 && r.level == AccessLevel::Dram {
                dram_late += 1;
            }
        }
        assert!(
            dram_late < 8,
            "stride prefetcher hides most DRAM accesses late in the stream: {dram_late}"
        );
        assert!(m.prefetches_issued > 0);
    }

    #[test]
    fn store_retired_fills_without_blocking() {
        let mut m = mh();
        m.store_retired(0x55_0000, 0);
        let r = m.access(0x0, 0x55_0000, 100);
        assert_eq!(r.level, AccessLevel::L1, "store brought the block in");
    }

    #[test]
    fn mshr_merge_returns_inflight_fill_time() {
        let mut m = MemoryHierarchy::new(&CoreConfig {
            l1d_prefetcher: false,
            l2_prefetcher: false,
            ..CoreConfig::paper_default()
        });
        let first = m.access(0x0, 0x77_0000, 0);
        // Second access to the same block before the fill completes merges.
        let second = m.access(0x0, 0x77_0040 - 0x40, 1);
        assert_eq!(second.done_cycle, first.done_cycle);
    }

    #[test]
    fn mshr_merge_on_dram_bound_miss_reports_dram() {
        // Regression: the merge path used to hardcode `AccessLevel::L2`
        // for every merged miss; it must report the level the in-flight
        // fill is actually headed to.
        let mut m = MemoryHierarchy::new(&CoreConfig {
            l1d_prefetcher: false,
            l2_prefetcher: false,
            ..CoreConfig::paper_default()
        });
        let first = m.access(0x0, 0x99_0000, 0);
        assert_eq!(first.level, AccessLevel::Dram, "cold miss goes to DRAM");
        let merged = m.access(0x0, 0x99_0008, 1);
        assert_eq!(merged.done_cycle, first.done_cycle);
        assert_eq!(merged.level, AccessLevel::Dram, "merge reports true level");
    }

    #[test]
    fn mshr_merge_on_l2_bound_miss_reports_l2() {
        let cfg = CoreConfig {
            l1d_prefetcher: false,
            l2_prefetcher: false,
            ..CoreConfig::paper_default()
        };
        let mut m = MemoryHierarchy::new(&cfg);
        // Warm the L2, then evict the block from the L1 with conflicting
        // accesses so a fresh L1 miss is L2-bound.
        let warm = m.access(0x0, 0x0, 0);
        let sets = cfg.l1d.sets();
        let t0 = warm.done_cycle + 1000;
        for w in 1..=cfg.l1d.ways as u64 + 2 {
            let r = m.access(0x0, w * sets * 64, t0);
            assert!(r.done_cycle > t0);
        }
        let miss = m.access(0x0, 0x0, t0 + 10_000);
        assert_eq!(miss.level, AccessLevel::L2, "victim caught by L2");
        let merged = m.access(0x0, 0x8, t0 + 10_001);
        assert_eq!(merged.level, AccessLevel::L2);
        assert_eq!(merged.done_cycle, miss.done_cycle);
    }

    #[test]
    fn mshr_merge_trains_l1_prefetcher() {
        // Regression: the merge early-return used to skip IPCP training,
        // so a load PC whose accesses always merge onto another PC's
        // in-flight misses never built stride confidence. Here pc 0x84
        // walks a perfect +64 stride but every access is a merge (pc 0x80
        // touched the block one cycle earlier); pc 0x80 itself alternates
        // between two far-apart streams so it never gains confidence. Only
        // merge-path training can produce prefetches in this pattern.
        let mut m = MemoryHierarchy::new(&CoreConfig {
            l2_prefetcher: false,
            ..CoreConfig::paper_default()
        });
        let base = 0x300_0000u64;
        let far = base + 100 * 64;
        let mut merges = 0u64;
        let mut t = 0u64;
        for i in 0..32u64 {
            let a = m.access(0x80, base + i * 64, t);
            let b = m.access(0x84, base + i * 64 + 8, t + 1);
            if a.level != AccessLevel::L1 && b.done_cycle == a.done_cycle {
                merges += 1;
            }
            // Scramble pc 0x80's stride (+6400, -6336, ...).
            let _ = m.access(0x80, far + i * 64, t + 2);
            t += 24;
        }
        assert!(merges >= 3, "stream produced MSHR merges: {merges}");
        assert!(
            m.prefetches_issued > 0,
            "IPCP trained on merged accesses issues prefetches"
        );
    }

    #[test]
    fn warm_access_fills_all_levels_without_stats() {
        let mut m = mh();
        m.warm_access(0x44_0000);
        let (acc, miss, pf) = m.l1d_stats();
        assert_eq!((acc, miss, pf), (0, 0, 0));
        assert_eq!((m.l2_misses(), m.l3_misses()), (0, 0));
        assert_eq!(m.prefetches_issued, 0, "warming trains no prefetcher");
        // The block is genuinely resident: the first demand access hits L1.
        let r = m.access(0x0, 0x44_0000, 100);
        assert_eq!(r.level, AccessLevel::L1);
    }

    #[test]
    fn warm_access_is_idempotent_on_resident_blocks() {
        let mut m = mh();
        m.warm_access(0x44_0000);
        m.warm_access(0x44_0008); // same block, L1 warm hit
        let r = m.access(0x0, 0x44_0000, 0);
        assert_eq!(r.level, AccessLevel::L1);
        let (acc, miss, _) = m.l1d_stats();
        assert_eq!((acc, miss), (1, 0));
    }

    #[test]
    fn store_retired_counts_separately_from_demand() {
        // Regression: `store_retired` used to call the demand `probe`,
        // inflating the accesses/misses counters that feed load-MPKI.
        let mut m = mh();
        m.store_retired(0x66_0000, 0);
        m.store_retired(0x66_0000, 100); // second store hits
        let (acc, miss, _) = m.l1d_stats();
        assert_eq!((acc, miss), (0, 0), "no demand traffic from stores");
        assert_eq!(m.l1d_store_stats(), (2, 1));
        // Demand loads still count into the demand counters.
        let _ = m.access(0x0, 0x66_0000, 200);
        let (acc, miss, _) = m.l1d_stats();
        assert_eq!((acc, miss), (1, 0), "store fill serves the load");
        assert_eq!(m.l1d_store_stats(), (2, 1), "unchanged by loads");
    }
}
