//! The shared uncore: L2/L3 caches, their admission ports, and the DRAM
//! queue, factored out of [`crate::mem::MemoryHierarchy`] so N core-private
//! tiers can share one instance.
//!
//! Every request arriving here is tenant-tagged (see
//! [`MemRequest::tenant`]); the uncore attributes the misses, DRAM
//! accesses, and port/queue admission delay it charges to the issuing
//! tenant in [`UncoreStats`], while the underlying [`Cache`] and [`Port`]
//! counters keep the machine-wide totals the solo path has always
//! reported. A solo run is tenant 0 throughout, so the single-tenant
//! numbers are bit-identical to the pre-split hierarchy.
//!
//! Cross-core arbitration is deterministic: the co-run driver steps the
//! cores in fixed tenant-id order within each simulated cycle, and
//! [`Port::admit`] hands out same-cycle slots in arrival order — so on a
//! same-cycle conflict the lower tenant id always wins the slot.

use crate::config::CoreConfig;
use crate::mem::{AccessLevel, Cache, MemRequest, Port, Probe, VldpPrefetcher};
use phelps_telemetry as tlm;

/// Per-tenant attribution of the shared-level traffic and contention.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UncoreStats {
    /// L2 demand misses issued by this tenant.
    pub l2_misses: u64,
    /// L3 demand misses issued by this tenant.
    pub l3_misses: u64,
    /// DRAM accesses issued by this tenant.
    pub dram_accesses: u64,
    /// Cycles of L2-port admission delay imposed on this tenant.
    pub l2_port_stalls: u64,
    /// Cycles of L3-port admission delay imposed on this tenant.
    pub l3_port_stalls: u64,
    /// Cycles of DRAM-queue admission delay imposed on this tenant.
    pub dram_queue_stalls: u64,
    /// L2 prefetch fills issued by the shared VLDP prefetcher while
    /// training on this tenant's demand stream.
    pub prefetches_issued: u64,
}

impl UncoreStats {
    /// Combined shared-port (L2 + L3) admission delay.
    pub fn shared_port_stalls(&self) -> u64 {
        self.l2_port_stalls + self.l3_port_stalls
    }
}

/// The shared memory-system tier: L2/L3 + ports + DRAM queue + the L2
/// delta prefetcher, with per-tenant contention attribution.
#[derive(Clone, Debug)]
pub struct Uncore {
    l2: Cache,
    l3: Cache,
    l2_port: Port,
    l3_port: Port,
    dram_queue: Port,
    dram_latency: u32,
    vldp: Option<VldpPrefetcher>,
    /// Per-tenant attribution, grown on demand as tenants appear.
    tenants: Vec<UncoreStats>,
}

impl Uncore {
    /// Builds the shared tier from a core configuration (the uncore
    /// portion of [`CoreConfig`]: L2, L3, DRAM latency and queue width,
    /// L2 prefetcher toggle).
    pub fn new(cfg: &CoreConfig) -> Uncore {
        Uncore {
            l2: Cache::new(cfg.l2),
            l3: Cache::new(cfg.l3),
            l2_port: Port::new(cfg.l2.ports),
            l3_port: Port::new(cfg.l3.ports),
            dram_queue: Port::new(cfg.dram_queue_width),
            dram_latency: cfg.dram_latency,
            vldp: cfg
                .l2_prefetcher
                .then(|| VldpPrefetcher::new(cfg.l2.block_bytes)),
            tenants: Vec::new(),
        }
    }

    fn stat_mut(&mut self, tenant: usize) -> &mut UncoreStats {
        if tenant >= self.tenants.len() {
            self.tenants.resize(tenant + 1, UncoreStats::default());
        }
        &mut self.tenants[tenant]
    }

    /// This tenant's attribution so far (zeros when it never issued).
    pub fn tenant_stats(&self, tenant: usize) -> UncoreStats {
        self.tenants.get(tenant).copied().unwrap_or_default()
    }

    /// Number of tenants that have issued at least one request.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Records tenant-split admission delay into the telemetry stream
    /// (tenants beyond the two co-run slots are counted only in
    /// [`UncoreStats`]).
    fn tlm_split(tenant: usize, t0: tlm::Counter, t1: tlm::Counter, delay: u64) {
        match tenant {
            0 => tlm::add(t0, delay),
            1 => tlm::add(t1, delay),
            _ => {}
        }
    }

    fn admit_l2(&mut self, cycle: u64, tenant: usize) -> u64 {
        let at = self.l2_port.admit(cycle);
        if at > cycle {
            let d = at - cycle;
            tlm::add(tlm::Counter::L2PortStalls, d);
            Self::tlm_split(
                tenant,
                tlm::Counter::SharedPortStallsT0,
                tlm::Counter::SharedPortStallsT1,
                d,
            );
            self.stat_mut(tenant).l2_port_stalls += d;
        }
        at
    }

    fn admit_l3(&mut self, cycle: u64, tenant: usize) -> u64 {
        let at = self.l3_port.admit(cycle);
        if at > cycle {
            let d = at - cycle;
            tlm::add(tlm::Counter::L3PortStalls, d);
            Self::tlm_split(
                tenant,
                tlm::Counter::SharedPortStallsT0,
                tlm::Counter::SharedPortStallsT1,
                d,
            );
            self.stat_mut(tenant).l3_port_stalls += d;
        }
        at
    }

    fn admit_dram(&mut self, cycle: u64, tenant: usize) -> u64 {
        let at = self.dram_queue.admit(cycle);
        if at > cycle {
            let d = at - cycle;
            tlm::add(tlm::Counter::DramQueueStalls, d);
            Self::tlm_split(
                tenant,
                tlm::Counter::DramQueueStallsT0,
                tlm::Counter::DramQueueStallsT1,
                d,
            );
            self.stat_mut(tenant).dram_queue_stalls += d;
        }
        at
    }

    /// Namespaces a tenant's guest address before it touches a shared tag
    /// array: co-running programs are distinct address spaces, so equal
    /// guest addresses must not alias to one shared block (that would
    /// make a neighbor a constructive prefetcher). Tenant 0 maps to
    /// itself, keeping the solo path bit-identical to the pre-split
    /// hierarchy.
    fn color(addr: u64, tenant: usize) -> u64 {
        addr ^ ((tenant as u64) << 48)
    }

    /// One tenant-tagged demand access that missed a core-private L1:
    /// admits through the L2 port, walks the L2 → L3 → DRAM ladder
    /// (filling on the way back), trains the shared L2 prefetcher, and
    /// returns when and from where the data arrives. `req.cycle` is the
    /// post-L1-port cycle the request leaves the private tier.
    pub fn access(&mut self, req: MemRequest) -> (u64, AccessLevel) {
        let tenant = req.tenant;
        let addr = Self::color(req.addr, tenant);
        let cycle = self.admit_l2(req.cycle, tenant);
        let l2_lat = self.l2.latency() as u64;
        let result = match self.l2.probe(addr, cycle) {
            Probe::Hit { .. } => (cycle + l2_lat, AccessLevel::L2),
            Probe::Miss => {
                tlm::count(tlm::Counter::L2Misses);
                self.stat_mut(tenant).l2_misses += 1;
                let at3 = self.admit_l3(cycle, tenant);
                let (done, level) = match self.l3.probe(addr, at3) {
                    Probe::Hit { .. } => (at3 + self.l3.latency() as u64, AccessLevel::L3),
                    Probe::Miss => {
                        tlm::count(tlm::Counter::L3Misses);
                        tlm::count(tlm::Counter::DramAccesses);
                        let s = self.stat_mut(tenant);
                        s.l3_misses += 1;
                        s.dram_accesses += 1;
                        let atq = self.admit_dram(at3, tenant);
                        let done = atq + self.l3.latency() as u64 + self.dram_latency as u64;
                        self.l3.fill(addr, false, done);
                        (done, AccessLevel::Dram)
                    }
                };
                self.l2.fill(addr, false, done);
                (done, level)
            }
        };
        // Train the L2 delta prefetcher on demand traffic reaching L2; its
        // fills are charged L2/L3 port bandwidth like any other traffic.
        let reqs = match &mut self.vldp {
            Some(vldp) => vldp.train(addr),
            None => Vec::new(),
        };
        for r in reqs {
            if !self.l2.contains(r.addr) {
                self.stat_mut(tenant).prefetches_issued += 1;
                let at2 = self.admit_l2(cycle, tenant);
                if matches!(self.l3.probe(r.addr, at2), Probe::Miss) {
                    let at3 = self.admit_l3(at2, tenant);
                    self.l3.fill(r.addr, true, at3);
                }
                self.l2.fill(r.addr, true, at2);
            }
        }
        result
    }

    /// Whether `tenant`'s block at `addr` is L2-resident (prefetch
    /// filtering; no counters, no recency update).
    pub fn l2_contains(&self, addr: u64, tenant: usize) -> bool {
        self.l2.contains(Self::color(addr, tenant))
    }

    /// Backing fill for an L1-targeted prefetch whose block is not yet
    /// L2-resident: admits through the L2 port at `cycle` and fills the
    /// L2 as prefetch data. The caller owns the prefetch-issue counting.
    pub fn prefetch_fill_l2(&mut self, addr: u64, cycle: u64, tenant: usize) {
        let addr = Self::color(addr, tenant);
        let at2 = self.admit_l2(cycle, tenant);
        self.l2.fill(addr, true, at2);
    }

    /// Functional warming of the shared tier: the L2/L3 warm ladder
    /// under either L1 (no statistics, no ports, no prefetcher training).
    pub fn warm(&mut self, addr: u64, tenant: usize) {
        let addr = Self::color(addr, tenant);
        if !self.l2.warm_touch(addr) {
            if !self.l3.warm_touch(addr) {
                self.l3.warm_insert(addr);
            }
            self.l2.warm_insert(addr);
        }
    }

    /// Machine-wide L2 demand misses (all tenants).
    pub fn l2_misses(&self) -> u64 {
        self.l2.misses
    }

    /// Machine-wide L3 demand misses (all tenants).
    pub fn l3_misses(&self) -> u64 {
        self.l3.misses
    }

    /// Machine-wide shared-tier admission-stall cycles:
    /// `(l2, l3, dram queue)`.
    pub fn port_stalls(&self) -> (u64, u64, u64) {
        (
            self.l2_port.stall_cycles(),
            self.l3_port.stall_cycles(),
            self.dram_queue.stall_cycles(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uncore() -> Uncore {
        Uncore::new(&CoreConfig {
            l2_prefetcher: false,
            ..CoreConfig::paper_default()
        })
    }

    fn req(addr: u64, cycle: u64, tenant: usize) -> MemRequest {
        MemRequest::load(0, 0x40, addr, cycle).with_tenant(tenant)
    }

    #[test]
    fn per_tenant_attribution_sums_to_machine_totals() {
        let mut u = uncore();
        // Two tenants, disjoint cold blocks: every miss goes to DRAM.
        for i in 0..8u64 {
            let _ = u.access(req(0x100_0000 + i * 0x1_0000, i * 400, 0));
            let _ = u.access(req(0x900_0000 + i * 0x1_0000, i * 400, 1));
        }
        let t0 = u.tenant_stats(0);
        let t1 = u.tenant_stats(1);
        assert_eq!(t0.l2_misses + t1.l2_misses, u.l2_misses());
        assert_eq!(t0.l3_misses + t1.l3_misses, u.l3_misses());
        let (l2_p, l3_p, dram_p) = u.port_stalls();
        assert_eq!(t0.l2_port_stalls + t1.l2_port_stalls, l2_p);
        assert_eq!(t0.l3_port_stalls + t1.l3_port_stalls, l3_p);
        assert_eq!(t0.dram_queue_stalls + t1.dram_queue_stalls, dram_p);
    }

    #[test]
    fn same_cycle_conflict_resolves_to_lower_tenant_first() {
        // Width-1 DRAM queue, two cold misses in the same cycle: the
        // tenant admitted first (the driver steps tenant 0 first) gets
        // the slot, the other queues one cycle behind.
        let mut cfg = CoreConfig {
            l2_prefetcher: false,
            ..CoreConfig::paper_default().ideal_memory()
        };
        cfg.dram_queue_width = 1;
        let mut u = Uncore::new(&cfg);
        let (a_done, a_level) = u.access(req(0x100_0000, 0, 0));
        let (b_done, b_level) = u.access(req(0x200_0000, 0, 1));
        assert_eq!(a_level, AccessLevel::Dram);
        assert_eq!(b_level, AccessLevel::Dram);
        assert_eq!(b_done, a_done + 1, "tenant 1 queues behind tenant 0");
        assert_eq!(u.tenant_stats(0).dram_queue_stalls, 0);
        assert_eq!(u.tenant_stats(1).dram_queue_stalls, 1);
    }

    #[test]
    fn unused_tenant_reads_zero_stats() {
        let u = uncore();
        assert_eq!(u.tenant_stats(5), UncoreStats::default());
        assert_eq!(u.tenant_count(), 0);
    }
}
