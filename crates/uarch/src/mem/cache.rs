//! Set-associative cache model with MSHRs.
//!
//! [`Cache`] models tags only (data values live in the simulator's memory
//! images): LRU replacement, fill/evict bookkeeping, and a bounded set of
//! miss-status holding registers that merge concurrent misses to the same
//! block and bound memory-level parallelism.

use crate::config::CacheConfig;
use crate::mem::AccessLevel;

/// Result of probing one cache level.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Probe {
    /// Block present; access completes at this level's latency.
    Hit {
        /// Whether the block was brought in by a prefetch and this is the
        /// first demand touch.
        first_prefetch_hit: bool,
    },
    /// Block absent; the access must go to the next level.
    Miss,
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    valid: bool,
    /// LRU stamp: larger is more recent.
    lru: u64,
    /// Filled by prefetch and not yet demand-touched.
    prefetched: bool,
}

impl Line {
    fn invalid() -> Line {
        Line {
            tag: 0,
            valid: false,
            lru: 0,
            prefetched: false,
        }
    }
}

/// An outstanding miss tracked by an MSHR.
#[derive(Clone, Copy, Debug)]
struct Mshr {
    block: u64,
    /// Cycle at which the fill completes and the MSHR frees.
    done_cycle: u64,
    /// Deepest level the in-flight fill travels to; merged accesses report
    /// this level rather than guessing.
    level: AccessLevel,
}

/// One cache level.
///
/// # Examples
///
/// ```
/// use phelps_uarch::config::CacheConfig;
/// use phelps_uarch::mem::{Cache, Probe};
///
/// let cfg = CacheConfig { size_bytes: 1024, ways: 2, block_bytes: 64, latency: 3, mshrs: 4, ports: 0 };
/// let mut c = Cache::new(cfg);
/// assert_eq!(c.probe(0x40, 0), Probe::Miss);
/// c.fill(0x40, false, 0);
/// assert!(matches!(c.probe(0x40, 1), Probe::Hit { .. }));
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    mshrs: Vec<Mshr>,
    stamp: u64,
    /// Demand (load) accesses observed.
    pub accesses: u64,
    /// Demand (load) misses observed.
    pub misses: u64,
    /// Retired-store accesses observed (write-buffer refill traffic);
    /// separate from `accesses` so load-MPKI is not inflated by stores.
    pub store_accesses: u64,
    /// Retired-store misses observed; separate from `misses`.
    pub store_misses: u64,
    /// Demand hits on prefetched blocks (first touch).
    pub prefetch_hits: u64,
    /// Fills performed.
    pub fills: u64,
}

impl Cache {
    /// Creates a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry implies zero sets or a non-power-of-two set
    /// count.
    pub fn new(cfg: CacheConfig) -> Cache {
        let sets = cfg.sets();
        assert!(sets > 0, "cache must have at least one set");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets: vec![vec![Line::invalid(); cfg.ways as usize]; sets as usize],
            mshrs: Vec::new(),
            stamp: 0,
            accesses: 0,
            misses: 0,
            store_accesses: 0,
            store_misses: 0,
            prefetch_hits: 0,
            fills: 0,
            cfg,
        }
    }

    /// This level's hit latency.
    pub fn latency(&self) -> u32 {
        self.cfg.latency
    }

    /// The configured block size.
    pub fn block_bytes(&self) -> u64 {
        self.cfg.block_bytes
    }

    fn block_of(&self, addr: u64) -> u64 {
        addr / self.cfg.block_bytes
    }

    fn set_of(&self, block: u64) -> usize {
        (block & (self.sets.len() as u64 - 1)) as usize
    }

    /// Probes for a demand (load) access at `cycle`; counts statistics and
    /// updates recency on a hit. Does **not** fill — the hierarchy calls
    /// [`Cache::fill`] when the miss returns.
    pub fn probe(&mut self, addr: u64, cycle: u64) -> Probe {
        self.probe_kind(addr, cycle, false)
    }

    /// Probes for a retired store. Identical tag-array behavior (recency
    /// update, prefetched-flag clearing) to [`Cache::probe`], but counts
    /// into `store_accesses`/`store_misses` so store refill traffic does
    /// not inflate the demand counters that feed load-MPKI.
    pub fn probe_store(&mut self, addr: u64, cycle: u64) -> Probe {
        self.probe_kind(addr, cycle, true)
    }

    fn probe_kind(&mut self, addr: u64, cycle: u64, store: bool) -> Probe {
        let _ = cycle;
        if store {
            self.store_accesses += 1;
        } else {
            self.accesses += 1;
        }
        let block = self.block_of(addr);
        let set = self.set_of(block);
        self.stamp += 1;
        for line in &mut self.sets[set] {
            if line.valid && line.tag == block {
                line.lru = self.stamp;
                let first = line.prefetched;
                if first {
                    self.prefetch_hits += 1;
                    line.prefetched = false;
                }
                return Probe::Hit {
                    first_prefetch_hit: first,
                };
            }
        }
        if store {
            self.store_misses += 1;
        } else {
            self.misses += 1;
        }
        Probe::Miss
    }

    /// Functional-warming touch: behaves like a demand probe for the tag
    /// array (recency refresh on hit) but perturbs **no** statistics and
    /// leaves the `prefetched` flag alone, so a warmed cache starts a
    /// measured region with realistic contents and zeroed counters.
    /// Returns whether the block was present.
    pub fn warm_touch(&mut self, addr: u64) -> bool {
        let block = self.block_of(addr);
        let set = self.set_of(block);
        self.stamp += 1;
        for line in &mut self.sets[set] {
            if line.valid && line.tag == block {
                line.lru = self.stamp;
                return true;
            }
        }
        false
    }

    /// Functional-warming fill: inserts the block (evicting LRU) exactly
    /// like [`Cache::fill`] but without counting into `fills`.
    pub fn warm_insert(&mut self, addr: u64) {
        let block = self.block_of(addr);
        let set = self.set_of(block);
        self.stamp += 1;
        if let Some(line) = self.sets[set]
            .iter_mut()
            .find(|l| l.valid && l.tag == block)
        {
            line.lru = self.stamp;
            return;
        }
        let victim = self.sets[set]
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("ways >= 1");
        *victim = Line {
            tag: block,
            valid: true,
            lru: self.stamp,
            prefetched: false,
        };
    }

    /// Probes without counting or recency update (used by prefetchers to
    /// filter redundant prefetches).
    pub fn contains(&self, addr: u64) -> bool {
        let block = self.block_of(addr);
        let set = self.set_of(block);
        self.sets[set].iter().any(|l| l.valid && l.tag == block)
    }

    /// Fills the block containing `addr`, evicting LRU if needed.
    /// `prefetched` marks prefetch fills for usefulness accounting.
    pub fn fill(&mut self, addr: u64, prefetched: bool, cycle: u64) {
        let _ = cycle;
        let block = self.block_of(addr);
        let set = self.set_of(block);
        self.stamp += 1;
        self.fills += 1;
        // Already present (e.g. merged fill): refresh.
        if let Some(line) = self.sets[set]
            .iter_mut()
            .find(|l| l.valid && l.tag == block)
        {
            line.lru = self.stamp;
            return;
        }
        let victim = self.sets[set]
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("ways >= 1");
        *victim = Line {
            tag: block,
            valid: true,
            lru: self.stamp,
            prefetched,
        };
    }

    /// Tries to allocate (or merge into) an MSHR for a miss on `addr` whose
    /// fill completes at `done_cycle` from `level`. Returns `false` when
    /// all MSHRs are busy — the access must retry later, modeling bounded
    /// MLP.
    pub fn mshr_allocate(
        &mut self,
        addr: u64,
        now: u64,
        done_cycle: u64,
        level: AccessLevel,
    ) -> bool {
        self.mshrs.retain(|m| m.done_cycle > now);
        let block = self.block_of(addr);
        if self.mshrs.iter().any(|m| m.block == block) {
            return true; // merged
        }
        if self.mshrs.len() >= self.cfg.mshrs as usize {
            return false;
        }
        self.mshrs.push(Mshr {
            block,
            done_cycle,
            level,
        });
        #[cfg(feature = "debug-invariants")]
        assert!(
            self.mshrs.len() <= self.cfg.mshrs as usize,
            "MSHR invariant: {} in flight exceeds configured {}",
            self.mshrs.len(),
            self.cfg.mshrs
        );
        true
    }

    /// If a miss to `addr`'s block is already outstanding, the cycle its
    /// fill completes and the level it is being served from (for merging
    /// loads onto an in-flight miss).
    pub fn mshr_pending(&mut self, addr: u64, now: u64) -> Option<(u64, AccessLevel)> {
        self.mshrs.retain(|m| m.done_cycle > now);
        let block = self.block_of(addr);
        self.mshrs
            .iter()
            .find(|m| m.block == block)
            .map(|m| (m.done_cycle, m.level))
    }

    /// Number of MSHRs currently in use.
    pub fn mshrs_in_use(&mut self, now: u64) -> usize {
        self.mshrs.retain(|m| m.done_cycle > now);
        self.mshrs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheConfig {
            size_bytes: 512,
            ways: 2,
            block_bytes: 64,
            latency: 3,
            mshrs: 2,
            ports: 0,
        })
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        assert_eq!(c.probe(0x100, 0), Probe::Miss);
        c.fill(0x100, false, 0);
        assert!(matches!(c.probe(0x100, 1), Probe::Hit { .. }));
        assert_eq!(c.accesses, 2);
        assert_eq!(c.misses, 1);
    }

    #[test]
    fn same_block_different_offset_hits() {
        let mut c = small();
        c.fill(0x100, false, 0);
        assert!(matches!(c.probe(0x13f, 0), Probe::Hit { .. }));
        assert_eq!(c.probe(0x140, 0), Probe::Miss, "next block misses");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small(); // 4 sets, 2 ways
                             // Three blocks mapping to the same set (stride = sets * block = 256).
        c.fill(0x000, false, 0);
        c.fill(0x100, false, 0);
        let _ = c.probe(0x000, 1); // make 0x000 most recent
        c.fill(0x200, false, 2); // evicts 0x100
        assert!(c.contains(0x000));
        assert!(!c.contains(0x100));
        assert!(c.contains(0x200));
    }

    #[test]
    fn a_hit_never_evicts() {
        let mut c = small();
        c.fill(0x000, false, 0);
        c.fill(0x100, false, 0);
        for _ in 0..10 {
            let _ = c.probe(0x000, 0);
            let _ = c.probe(0x100, 0);
        }
        assert!(c.contains(0x000) && c.contains(0x100));
    }

    #[test]
    fn prefetch_hit_counted_once() {
        let mut c = small();
        c.fill(0x300, true, 0);
        assert_eq!(
            c.probe(0x300, 1),
            Probe::Hit {
                first_prefetch_hit: true
            }
        );
        assert_eq!(
            c.probe(0x300, 2),
            Probe::Hit {
                first_prefetch_hit: false
            }
        );
        assert_eq!(c.prefetch_hits, 1);
    }

    #[test]
    fn mshrs_bound_outstanding_misses() {
        let mut c = small(); // 2 MSHRs
        assert!(c.mshr_allocate(0x000, 0, 100, AccessLevel::L2));
        assert!(c.mshr_allocate(0x040, 0, 100, AccessLevel::L2));
        assert!(
            !c.mshr_allocate(0x080, 0, 100, AccessLevel::L2),
            "third miss blocked"
        );
        // Same-block miss merges without a new MSHR.
        assert!(c.mshr_allocate(0x001, 0, 100, AccessLevel::L2));
        // After fills complete, MSHRs free.
        assert!(c.mshr_allocate(0x080, 101, 200, AccessLevel::L2));
    }

    #[test]
    fn mshr_pending_reports_fill_time_and_level() {
        let mut c = small();
        assert!(c.mshr_allocate(0x40, 0, 77, AccessLevel::Dram));
        assert_eq!(c.mshr_pending(0x40, 1), Some((77, AccessLevel::Dram)));
        assert_eq!(c.mshr_pending(0x40, 78), None);
        assert_eq!(c.mshr_pending(0x80, 1), None);
    }

    #[test]
    fn store_probe_counts_separately_but_behaves_identically() {
        let mut c = small();
        assert_eq!(c.probe_store(0x100, 0), Probe::Miss);
        c.fill(0x100, false, 0);
        assert!(matches!(c.probe_store(0x100, 1), Probe::Hit { .. }));
        assert_eq!((c.accesses, c.misses), (0, 0), "demand counters untouched");
        assert_eq!((c.store_accesses, c.store_misses), (2, 1));
        // A store touch still refreshes recency: 0x100 survives the next
        // same-set fill pair while the untouched block is evicted.
        c.fill(0x200, false, 2);
        let _ = c.probe_store(0x100, 3);
        c.fill(0x300, false, 4); // evicts LRU = 0x200
        assert!(c.contains(0x100) && !c.contains(0x200));
    }

    #[test]
    fn warm_ops_leave_all_counters_at_zero() {
        let mut c = small();
        assert!(!c.warm_touch(0x100));
        c.warm_insert(0x100);
        assert!(c.warm_touch(0x100));
        assert!(c.contains(0x100));
        assert_eq!(
            (
                c.accesses,
                c.misses,
                c.store_accesses,
                c.store_misses,
                c.prefetch_hits,
                c.fills
            ),
            (0, 0, 0, 0, 0, 0)
        );
    }

    #[test]
    fn warm_touch_refreshes_recency_like_a_demand_probe() {
        let mut c = small();
        c.fill(0x000, false, 0);
        c.fill(0x100, false, 0);
        assert!(c.warm_touch(0x000)); // 0x000 most recent
        c.warm_insert(0x200); // evicts LRU = 0x100
        assert!(c.contains(0x000) && !c.contains(0x100) && c.contains(0x200));
    }

    #[test]
    fn warm_touch_preserves_prefetched_flag() {
        // A warm touch must not consume the first-demand-touch credit.
        let mut c = small();
        c.fill(0x300, true, 0);
        assert!(c.warm_touch(0x300));
        assert_eq!(c.prefetch_hits, 0);
        assert_eq!(
            c.probe(0x300, 1),
            Probe::Hit {
                first_prefetch_hit: true
            }
        );
    }

    #[test]
    fn refill_of_present_block_does_not_duplicate() {
        let mut c = small();
        c.fill(0x100, false, 0);
        c.fill(0x100, false, 1);
        // Still exactly one copy: filling two more same-set blocks evicts
        // at most two distinct blocks.
        c.fill(0x200, false, 2);
        c.fill(0x300, false, 3);
        let present = [0x100u64, 0x200, 0x300]
            .iter()
            .filter(|&&a| c.contains(a))
            .count();
        assert_eq!(present, 2, "2-way set holds exactly two blocks");
    }
}
