//! Memory-hierarchy models: caches, MSHRs, prefetchers, and the composed
//! three-level hierarchy.

mod cache;
mod hierarchy;
mod prefetch;

pub use cache::{Cache, Probe};
pub use hierarchy::{AccessLevel, AccessResult, MemoryHierarchy};
pub use prefetch::{IpcpPrefetcher, PrefetchRequest, VldpPrefetcher};
