//! Memory-hierarchy models: caches, MSHRs, prefetchers, bandwidth-limited
//! request ports, and the composed hierarchy.

mod cache;
mod hierarchy;
mod port;
mod prefetch;
mod uncore;

pub use cache::{Cache, Probe};
pub use hierarchy::{AccessLevel, AccessResult, MemoryHierarchy};
pub use port::{MemRequest, Port, ReqKind};
pub use prefetch::{IpcpPrefetcher, PrefetchRequest, VldpPrefetcher};
pub use uncore::{Uncore, UncoreStats};
