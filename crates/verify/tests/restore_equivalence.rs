//! Fixed-seed restore-equivalence sweep: for each generated program,
//! checkpoint-restoring at mid-execution must be indistinguishable from
//! functionally fast-forwarding there — architecturally and through a
//! full region run in all four pipeline modes (see
//! `phelps_verify::restore`). CI runs this as the restore oracle.

use phelps_verify::diff::reference_trace;
use phelps_verify::restore::check_restore;
use phelps_verify::{gen, DEFAULT_SEED};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("phelps-restore-seeds-{}-{tag}", std::process::id()))
}

fn sweep(tag: &str, warm: u64, seeds: impl Iterator<Item = u64>) {
    let dir = tmpdir(tag);
    for seed in seeds {
        let cpu = gen::build(&gen::generate(seed));
        // Mid-execution offset: deep enough that state has diverged from
        // the initial image, shallow enough that a region remains.
        let halt_len = reference_trace(&cpu).0.len() as u64;
        let skip = halt_len / 2;
        if let Err(m) = check_restore(&format!("seed{seed:#x}"), &cpu, skip, warm, &dir) {
            panic!(
                "restore oracle failed (seed {seed:#x}, skip {skip}, W={warm}): {m}\n\
                 replay: PHELPS_FUZZ_SEED={seed:#x}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fixed_seeds_restore_cold() {
    sweep("cold", 0, (0..8).map(|i| DEFAULT_SEED.wrapping_add(i)));
}

#[test]
fn fixed_seeds_restore_warmed() {
    sweep(
        "warm",
        128,
        (0..4).map(|i| DEFAULT_SEED.wrapping_add(100 + i)),
    );
}
