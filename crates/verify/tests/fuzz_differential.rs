//! Differential co-simulation fuzzing: seeded sweep plus proptest-driven
//! random seeds. Each seed's generated program is run through the
//! functional emulator and the cycle-level pipeline in every mode, with
//! the retired record stream, final register file, and final memory
//! compared exactly (see `phelps_verify::diff`).
//!
//! To replay a seed printed by a failing run:
//! `PHELPS_FUZZ_SEED=0x... cargo test -p phelps-verify --test fuzz_differential replay`

use phelps_verify::{env_seed, run_seed, DEFAULT_SEED};
use proptest::prelude::*;

/// The fixed CI seed block must always agree (a regression here points at
/// the pipeline's replay/squash machinery or retire-time state handling).
#[test]
fn default_seed_block_agrees() {
    for i in 0..4u64 {
        let seed = DEFAULT_SEED.wrapping_add(i);
        if let Err(f) = run_seed(seed) {
            panic!("{}", f.report());
        }
    }
}

/// Small-seed programs agree (small seeds make the most readable
/// reproducers, so keep them permanently green).
#[test]
fn low_seeds_agree() {
    for seed in 0..4u64 {
        if let Err(f) = run_seed(seed) {
            panic!("{}", f.report());
        }
    }
}

/// Replays `PHELPS_FUZZ_SEED` when set (no-op otherwise), so a failure
/// printed by `phelps-fuzz` can be rerun under the test harness.
#[test]
fn replay_env_seed() {
    if let Some(seed) = env_seed() {
        if let Err(f) = run_seed(seed) {
            panic!("{}", f.report());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Arbitrary seeds agree across every mode.
    #[test]
    fn random_seeds_agree(seed in any::<u64>()) {
        if let Err(f) = run_seed(seed) {
            prop_assert!(false, "{}", f.report());
        }
    }
}
