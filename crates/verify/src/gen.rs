//! Seeded random guest-program generator.
//!
//! A [`ProgramSpec`] is a small tree of [`GenOp`]s plus the seed-derived
//! initial register/memory contents; [`build`] lowers it to a prepared
//! [`Cpu`]. Every generated program is **guaranteed to halt**: the only
//! backward branches are the outer counted loop on `s0` and inner counted
//! loops on `s1`, and random operations can never write the structural
//! registers (the operand pool excludes them), so the counters always
//! reach zero.
//!
//! The generator covers the full ISA subset the pipeline models: every
//! [`AluOp`] (including the W-forms and the RISC-V-total divide/remainder
//! ops), loads and stores of every [`MemWidth`] with both extensions,
//! every [`BranchCond`], `jal` (both as `j` over never-taken code and as
//! `call`), and `jalr` (as `ret` from leaf functions).

use phelps_isa::{AluOp, Asm, BranchCond, Cpu, MemWidth, Reg};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Base address of the data region all generated loads/stores hit.
pub const DATA_BASE: u64 = 0x10_0000;
/// Size of the data region in bytes (power of two; used as an address mask).
pub const DATA_SIZE: u64 = 0x1000;

/// Registers random operations draw operands and destinations from.
///
/// The structural registers are excluded so random writes can never derail
/// the control skeleton: `s0` (outer-loop counter), `s1` (inner-loop
/// counter), `s11` (data-region base), `t6` (address temporary), `ra`
/// (link register for generated calls).
pub const POOL: [Reg; 16] = [
    Reg::T0,
    Reg::T1,
    Reg::T2,
    Reg::T3,
    Reg::T4,
    Reg::A0,
    Reg::A1,
    Reg::A2,
    Reg::A3,
    Reg::A4,
    Reg::A5,
    Reg::A6,
    Reg::A7,
    Reg::S2,
    Reg::S3,
    Reg::S4,
];

/// Immediate-form ALU operations the generator emits. `Sub` has no
/// immediate form in RV64 (negative `addi` covers it); the divide and
/// remainder families are register-register only.
pub const IMM_OPS: [AluOp; 11] = [
    AluOp::Add,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Addw,
    AluOp::Sllw,
];

/// One generator operation. Register fields are indices into [`POOL`];
/// `op`/`width`/`cond` fields index [`AluOp::ALL`], [`IMM_OPS`],
/// [`MemWidth::ALL`] and [`BranchCond::ALL`] respectively, which keeps
/// every possible field value valid — the shrinker never has to re-check
/// well-formedness.
#[derive(Clone, Debug)]
pub enum GenOp {
    /// Register-register ALU operation over the pool.
    Alu {
        /// Index into [`AluOp::ALL`].
        op: u8,
        /// Destination pool index.
        rd: u8,
        /// First source pool index.
        rs1: u8,
        /// Second source pool index.
        rs2: u8,
    },
    /// Register-immediate ALU operation over the pool.
    AluImm {
        /// Index into [`IMM_OPS`].
        op: u8,
        /// Destination pool index.
        rd: u8,
        /// Source pool index.
        rs1: u8,
        /// Immediate (shift ops: `0..=63`; others: 12-bit signed range).
        imm: i32,
    },
    /// Materialize a random 64-bit constant.
    Li {
        /// Destination pool index.
        rd: u8,
        /// The constant.
        imm: i64,
    },
    /// Masked, aligned load from the data region (expands to an address
    /// computation into `t6` plus the load itself).
    Load {
        /// Index into [`MemWidth::ALL`].
        width: u8,
        /// Sign- vs. zero-extending.
        signed: bool,
        /// Destination pool index.
        rd: u8,
        /// Pool index of the register supplying address entropy.
        addr: u8,
    },
    /// Masked, aligned store to the data region.
    Store {
        /// Index into [`MemWidth::ALL`].
        width: u8,
        /// Pool index of the data source.
        src: u8,
        /// Pool index of the register supplying address entropy.
        addr: u8,
    },
    /// Forward conditional branch over `body` (data-dependent, so it
    /// exercises the branch predictor and squash paths).
    Skip {
        /// Index into [`BranchCond::ALL`].
        cond: u8,
        /// First compare source (pool index).
        rs1: u8,
        /// Second compare source (pool index).
        rs2: u8,
        /// Ops skipped when the branch is taken.
        body: Vec<GenOp>,
    },
    /// Unconditional forward jump over `body` (`jal zero`; the body is
    /// fetched speculatively but never executed).
    Jump {
        /// The never-executed ops.
        body: Vec<GenOp>,
    },
    /// Counted loop on `s1`. Generated only outside functions and outside
    /// other inner loops, so the counter is never clobbered.
    InnerLoop {
        /// Trip count (`1..=6`).
        trips: u8,
        /// The loop body.
        body: Vec<GenOp>,
    },
    /// Call to a leaf function emitted past the `halt` (`jal ra` +
    /// `jalr` return). Function bodies contain no calls or inner loops.
    Call {
        /// The function body.
        body: Vec<GenOp>,
    },
}

/// A complete generated program: seed (for memory-image derivation and
/// replay reporting), outer-loop trip count, initial pool-register values,
/// and the operation tree.
#[derive(Clone, Debug)]
pub struct ProgramSpec {
    /// The seed this spec was generated from.
    pub seed: u64,
    /// Outer-loop trip count (`1..=16`).
    pub outer_iters: u8,
    /// Initial values `li`-ed into the pool registers by the prologue.
    pub init: [u64; POOL.len()],
    /// Top-level operations, executed once per outer iteration.
    pub ops: Vec<GenOp>,
}

/// Structural context during generation, enforcing the halting and
/// register-discipline constraints.
#[derive(Clone, Copy)]
struct Ctx {
    /// Forward-branch nesting depth (capped at 2).
    depth: u8,
    /// Inside a leaf-function body (no calls, no inner loops).
    in_fn: bool,
    /// Inside an inner loop (no nested inner loops — `s1` is shared).
    in_loop: bool,
}

fn gen_body(rng: &mut SmallRng, ctx: Ctx) -> Vec<GenOp> {
    let n = rng.gen_range(1usize..=4);
    (0..n).map(|_| gen_op(rng, ctx)).collect()
}

fn gen_op(rng: &mut SmallRng, ctx: Ctx) -> GenOp {
    let reg = |rng: &mut SmallRng| rng.gen_range(0u8..POOL.len() as u8);
    loop {
        match rng.gen_range(0u8..12) {
            0 | 1 => {
                return GenOp::Alu {
                    op: rng.gen_range(0..AluOp::ALL.len() as u8),
                    rd: reg(rng),
                    rs1: reg(rng),
                    rs2: reg(rng),
                }
            }
            2 => {
                let op = rng.gen_range(0..IMM_OPS.len() as u8);
                let imm = match IMM_OPS[op as usize] {
                    AluOp::Sll | AluOp::Srl | AluOp::Sra | AluOp::Sllw => rng.gen_range(0..=63),
                    _ => rng.gen_range(-2048..=2047),
                };
                return GenOp::AluImm {
                    op,
                    rd: reg(rng),
                    rs1: reg(rng),
                    imm,
                };
            }
            3 => {
                return GenOp::Li {
                    rd: reg(rng),
                    imm: rng.gen(),
                }
            }
            4 | 5 => {
                return GenOp::Load {
                    width: rng.gen_range(0..MemWidth::ALL.len() as u8),
                    signed: rng.gen_bool(0.5),
                    rd: reg(rng),
                    addr: reg(rng),
                }
            }
            6 => {
                return GenOp::Store {
                    width: rng.gen_range(0..MemWidth::ALL.len() as u8),
                    src: reg(rng),
                    addr: reg(rng),
                }
            }
            7 | 8 if ctx.depth < 2 => {
                return GenOp::Skip {
                    cond: rng.gen_range(0..BranchCond::ALL.len() as u8),
                    rs1: reg(rng),
                    rs2: reg(rng),
                    body: gen_body(
                        rng,
                        Ctx {
                            depth: ctx.depth + 1,
                            ..ctx
                        },
                    ),
                }
            }
            9 if ctx.depth < 2 => {
                return GenOp::Jump {
                    body: gen_body(
                        rng,
                        Ctx {
                            depth: ctx.depth + 1,
                            ..ctx
                        },
                    ),
                }
            }
            10 if ctx.depth == 0 && !ctx.in_fn && !ctx.in_loop => {
                return GenOp::InnerLoop {
                    trips: rng.gen_range(1..=6),
                    body: gen_body(
                        rng,
                        Ctx {
                            in_loop: true,
                            ..ctx
                        },
                    ),
                }
            }
            11 if !ctx.in_fn => {
                return GenOp::Call {
                    body: gen_body(
                        rng,
                        Ctx {
                            depth: 0,
                            in_fn: true,
                            in_loop: ctx.in_loop,
                        },
                    ),
                }
            }
            _ => {} // variant not allowed in this context; redraw
        }
    }
}

/// Generates the program spec for `seed`, deterministically.
pub fn generate(seed: u64) -> ProgramSpec {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut init = [0u64; POOL.len()];
    for v in init.iter_mut() {
        *v = rng.gen();
    }
    let n = rng.gen_range(4usize..=12);
    let ctx = Ctx {
        depth: 0,
        in_fn: false,
        in_loop: false,
    };
    let ops = (0..n).map(|_| gen_op(&mut rng, ctx)).collect();
    ProgramSpec {
        seed,
        outer_iters: rng.gen_range(1..=16),
        init,
        ops,
    }
}

/// Assembly emitter: lowers [`GenOp`]s, allocating fresh labels and
/// deferring leaf-function bodies until after the `halt`.
struct Emitter {
    label: u32,
    fns: Vec<(String, Vec<GenOp>)>,
}

impl Emitter {
    fn fresh(&mut self, stem: &str) -> String {
        self.label += 1;
        format!("{stem}{}", self.label)
    }

    /// `t6 = DATA_BASE + (pool[src] & region_mask & width_alignment)`.
    fn addr_into_t6(&mut self, a: &mut Asm, src: u8, w: MemWidth) {
        let mask = (DATA_SIZE - 1) as i32 & !((w.bytes() - 1) as i32);
        a.andi(Reg::T6, POOL[src as usize], mask);
        a.add(Reg::T6, Reg::S11, Reg::T6);
    }

    fn emit(&mut self, a: &mut Asm, op: &GenOp) {
        match op {
            GenOp::Alu { op, rd, rs1, rs2 } => {
                a.alu(
                    AluOp::ALL[*op as usize],
                    POOL[*rd as usize],
                    POOL[*rs1 as usize],
                    POOL[*rs2 as usize],
                );
            }
            GenOp::AluImm { op, rd, rs1, imm } => {
                a.alui(
                    IMM_OPS[*op as usize],
                    POOL[*rd as usize],
                    POOL[*rs1 as usize],
                    *imm,
                );
            }
            GenOp::Li { rd, imm } => {
                a.li(POOL[*rd as usize], *imm);
            }
            GenOp::Load {
                width,
                signed,
                rd,
                addr,
            } => {
                let w = MemWidth::ALL[*width as usize];
                self.addr_into_t6(a, *addr, w);
                a.load(w, *signed, POOL[*rd as usize], Reg::T6, 0);
            }
            GenOp::Store { width, src, addr } => {
                let w = MemWidth::ALL[*width as usize];
                self.addr_into_t6(a, *addr, w);
                a.store(w, POOL[*src as usize], Reg::T6, 0);
            }
            GenOp::Skip {
                cond,
                rs1,
                rs2,
                body,
            } => {
                let l = self.fresh("skip");
                a.branch(
                    BranchCond::ALL[*cond as usize],
                    POOL[*rs1 as usize],
                    POOL[*rs2 as usize],
                    &l,
                );
                for op in body {
                    self.emit(a, op);
                }
                a.label(&l);
            }
            GenOp::Jump { body } => {
                let l = self.fresh("jump");
                a.j(&l);
                for op in body {
                    self.emit(a, op);
                }
                a.label(&l);
            }
            GenOp::InnerLoop { trips, body } => {
                let l = self.fresh("loop");
                a.li(Reg::S1, *trips as i64);
                a.label(&l);
                for op in body {
                    self.emit(a, op);
                }
                a.addi(Reg::S1, Reg::S1, -1);
                a.bne(Reg::S1, Reg::ZERO, &l);
            }
            GenOp::Call { body } => {
                let f = self.fresh("fn");
                a.call(&f);
                self.fns.push((f, body.clone()));
            }
        }
    }
}

/// Lowers a spec to a prepared [`Cpu`]: assembled program plus the
/// seed-derived data-region contents. Registers are initialized by the
/// emitted `li` prologue (not by `set_reg`), so the pipeline's retire-time
/// register file is comparable against the emulator's over all 32
/// registers.
pub fn build(spec: &ProgramSpec) -> Cpu {
    let mut a = Asm::new(0x1000);
    let mut e = Emitter {
        label: 0,
        fns: Vec::new(),
    };
    a.li(Reg::S11, DATA_BASE as i64);
    for (i, r) in POOL.iter().enumerate() {
        a.li(*r, spec.init[i] as i64);
    }
    a.li(Reg::S0, spec.outer_iters as i64);
    a.label("outer");
    for op in &spec.ops {
        e.emit(&mut a, op);
    }
    a.addi(Reg::S0, Reg::S0, -1);
    a.bne(Reg::S0, Reg::ZERO, "outer");
    a.halt();
    // Leaf functions live past the halt. Their bodies cannot contain
    // further calls, so this loop never grows `fns` while draining it.
    let fns = std::mem::take(&mut e.fns);
    for (name, body) in &fns {
        a.label(name);
        for op in body {
            e.emit(&mut a, op);
        }
        a.ret();
    }
    assert!(e.fns.is_empty(), "leaf function emitted a nested call");
    let mut cpu = Cpu::new(a.assemble().expect("generated program assembles"));
    let mut mrng = SmallRng::seed_from_u64(spec.seed ^ 0x5bf0_3635_9ab1_e021);
    for i in 0..(DATA_SIZE / 8) {
        cpu.mem.write_u64(DATA_BASE + i * 8, mrng.gen());
    }
    cpu
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..32u64 {
            let a = generate(seed);
            let b = generate(seed);
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}");
            assert_eq!(
                build(&a).program().len(),
                build(&b).program().len(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn every_generated_program_halts() {
        for seed in 0..64u64 {
            let mut cpu = build(&generate(seed));
            cpu.run(crate::diff::EMU_BOUND).expect("no emulator fault");
            assert!(cpu.is_halted(), "seed {seed}: program did not halt");
        }
    }

    /// Walks the op tree collecting which ISA features a spec exercises.
    fn coverage(
        ops: &[GenOp],
        alu: &mut [bool; 19],
        widths: &mut [bool; 4],
        conds: &mut [bool; 6],
    ) {
        for op in ops {
            match op {
                GenOp::Alu { op, .. } => alu[*op as usize] = true,
                GenOp::Load { width, .. } | GenOp::Store { width, .. } => {
                    widths[*width as usize] = true
                }
                GenOp::Skip { cond, body, .. } => {
                    conds[*cond as usize] = true;
                    coverage(body, alu, widths, conds);
                }
                GenOp::Jump { body } | GenOp::InnerLoop { body, .. } | GenOp::Call { body } => {
                    coverage(body, alu, widths, conds)
                }
                _ => {}
            }
        }
    }

    #[test]
    fn seed_sweep_covers_the_full_isa_subset() {
        let (mut alu, mut widths, mut conds) = ([false; 19], [false; 4], [false; 6]);
        let (mut calls, mut loops) = (false, false);
        for seed in 0..300u64 {
            let spec = generate(seed);
            coverage(&spec.ops, &mut alu, &mut widths, &mut conds);
            fn walk(ops: &[GenOp], calls: &mut bool, loops: &mut bool) {
                for op in ops {
                    match op {
                        GenOp::Call { body } => {
                            *calls = true;
                            walk(body, calls, loops);
                        }
                        GenOp::InnerLoop { body, .. } => {
                            *loops = true;
                            walk(body, calls, loops);
                        }
                        GenOp::Skip { body, .. } | GenOp::Jump { body } => walk(body, calls, loops),
                        _ => {}
                    }
                }
            }
            walk(&spec.ops, &mut calls, &mut loops);
        }
        assert!(alu.iter().all(|c| *c), "ALU op coverage gap: {alu:?}");
        assert!(widths.iter().all(|c| *c), "width coverage gap: {widths:?}");
        assert!(conds.iter().all(|c| *c), "cond coverage gap: {conds:?}");
        assert!(calls, "no calls generated across the sweep");
        assert!(loops, "no inner loops generated across the sweep");
    }

    #[test]
    fn loads_and_stores_stay_inside_the_data_region() {
        for seed in 0..32u64 {
            let mut cpu = build(&generate(seed));
            while !cpu.is_halted() {
                let rec = cpu.step().expect("no emulator fault");
                if rec.inst.is_load() || rec.inst.is_store() {
                    assert!(
                        (DATA_BASE..DATA_BASE + DATA_SIZE).contains(&rec.mem_addr),
                        "seed {seed}: access at {:#x} escapes the data region",
                        rec.mem_addr
                    );
                    let bytes = match rec.inst {
                        phelps_isa::Inst::Load { width, .. }
                        | phelps_isa::Inst::Store { width, .. } => width.bytes(),
                        _ => unreachable!(),
                    };
                    assert_eq!(rec.mem_addr % bytes, 0, "seed {seed}: misaligned access");
                }
            }
        }
    }
}
