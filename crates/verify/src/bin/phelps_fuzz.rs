//! CI fuzzing driver: checks N random guest programs (default 200)
//! differentially across every pipeline mode.
//!
//! Usage: `phelps-fuzz [count]`. The base seed comes from
//! `PHELPS_FUZZ_SEED` (decimal or 0x-hex) when set, so a failing seed
//! printed by a previous run replays exactly; otherwise a fixed default
//! keeps CI deterministic. Exits 1 on the first divergence, after
//! printing the minimized reproducer and its replay line.

use phelps_verify::{diff, env_seed, fuzz, DEFAULT_SEED};

fn main() {
    let count: u64 = match std::env::args().nth(1) {
        Some(arg) => arg
            .parse()
            .unwrap_or_else(|_| panic!("usage: phelps-fuzz [count]; got {arg:?}")),
        None => 200,
    };
    let base = env_seed().unwrap_or(DEFAULT_SEED);
    eprintln!(
        "phelps-fuzz: checking {count} program(s) from base seed {base:#x} across {} modes{}",
        diff::modes().len(),
        if cfg!(feature = "debug-invariants") {
            " (debug-invariants on)"
        } else {
            ""
        }
    );
    match fuzz(base, count) {
        Ok(n) => eprintln!("phelps-fuzz: all {n} program(s) agree with the reference emulator"),
        Err(failure) => {
            eprintln!("{}", failure.report());
            std::process::exit(1);
        }
    }
}
