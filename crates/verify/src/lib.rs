//! # phelps-verify
//!
//! Differential co-simulation fuzzing harness for the Phelps
//! reproduction. Random guest programs (see [`gen`]) run lock-step
//! through the functional emulator and the cycle-level pipeline in every
//! mode, and the retired record streams plus final architectural state
//! must agree exactly (see [`diff`]). Failures are minimized by a
//! delta-debugging shrinker (see [`shrink`]) and reported with a
//! `PHELPS_FUZZ_SEED=<seed>` replay line.
//!
//! Build with `--features debug-invariants` to additionally compile the
//! pipeline's per-cycle microarchitectural assertions (in-order retire,
//! LSQ age ordering, resource-counter and rename-map consistency, MSHR
//! occupancy) into the fuzzed runs — CI does.
//!
//! Entry points: the `phelps-fuzz` binary (CI), the
//! `tests/fuzz_differential.rs` integration test (seeded sweep +
//! proptest-driven random seeds), and [`fuzz`]/[`run_seed`] for
//! programmatic use.

#![warn(missing_docs)]

pub mod diff;
pub mod gen;
pub mod restore;
pub mod shrink;

/// Base seed used when `PHELPS_FUZZ_SEED` is not set. Fixed so CI runs
/// are reproducible run-to-run.
pub const DEFAULT_SEED: u64 = 0x0be1_be11_eca5_7d1e;

/// A minimized fuzzing failure, ready to report.
#[derive(Debug)]
pub struct Failure {
    /// The seed whose program diverged.
    pub seed: u64,
    /// The divergence of the *minimized* program.
    pub mismatch: diff::Mismatch,
    /// The minimized spec.
    pub minimized: gen::ProgramSpec,
}

impl Failure {
    /// Full failure report: divergence, replay line, minimized program.
    pub fn report(&self) -> String {
        format!(
            "differential mismatch (seed {seed:#x}): {mismatch}\n\
             replay: PHELPS_FUZZ_SEED={seed:#x} cargo run -p phelps-verify \
             --features debug-invariants --bin phelps-fuzz -- 1\n\
             minimized program ({n} ops, {iters} outer iteration(s)):\n{spec:#?}",
            seed = self.seed,
            mismatch = self.mismatch,
            n = shrink::size(&self.minimized.ops),
            iters = self.minimized.outer_iters,
            spec = self.minimized.ops,
        )
    }
}

/// Generates, builds and differentially checks the program for one seed;
/// on divergence the failing program is shrunk before reporting.
pub fn run_seed(seed: u64) -> Result<(), Box<Failure>> {
    let spec = gen::generate(seed);
    match diff::check_cpu(&gen::build(&spec)) {
        Ok(()) => Ok(()),
        Err(first) => {
            let minimized = shrink::shrink(&spec);
            // Re-derive the mismatch from the minimized program (the
            // shrinker only guarantees *some* divergence remains).
            let mismatch = diff::check_cpu(&gen::build(&minimized))
                .err()
                .unwrap_or(first);
            Err(Box::new(Failure {
                seed,
                mismatch,
                minimized,
            }))
        }
    }
}

/// Checks `count` consecutive seeds starting at `base_seed`, stopping at
/// the first failure. Returns the number of programs verified.
pub fn fuzz(base_seed: u64, count: u64) -> Result<u64, Box<Failure>> {
    for i in 0..count {
        run_seed(base_seed.wrapping_add(i))?;
    }
    Ok(count)
}

/// The replay seed from the `PHELPS_FUZZ_SEED` environment variable
/// (decimal or `0x`-prefixed hex), if set and well-formed.
pub fn env_seed() -> Option<u64> {
    let raw = std::env::var("PHELPS_FUZZ_SEED").ok()?;
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    match parsed {
        Ok(seed) => Some(seed),
        Err(_) => {
            eprintln!("warning: ignoring malformed PHELPS_FUZZ_SEED={raw:?}");
            None
        }
    }
}
