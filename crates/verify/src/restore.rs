//! Checkpoint restore-equivalence oracle.
//!
//! The guarantee under test (`phelps-ckpt`, DESIGN.md §9): a region run
//! started from a checkpoint restore is indistinguishable from one
//! started by functionally fast-forwarding to the same offset. The
//! oracle drives both paths on the same program:
//!
//! 1. *Reference*: clone the CPU and `run(skip)`.
//! 2. *Checkpoint*: capture a snapshot of a second clone, round-trip it
//!    through an on-disk [`CheckpointStore`] (exercising the serializer,
//!    CRC and content-hash validation), and [`resume`] with warm window W.
//!
//! The restored CPU must match the fast-forwarded one architecturally
//! (PC, registers, retired count, halt flag, full memory image), and a
//! pipeline region run from each must retire an identical record stream
//! and final state in all four modes. With W=0 the `SimStats` must also
//! be bit-identical — warming is the only sanctioned perturbation.

use crate::diff::{modes, Mismatch};
use phelps::sim::{simulate_observed_warmed, RunConfig};
use phelps_ckpt::{capture_snapshots, region_key, resume, CheckpointStore};
use phelps_isa::{Cpu, Reg};
use std::path::Path;

/// Retired-instruction budget for the oracle's region runs: enough for
/// the generated programs to reach halt, small enough to stay fast.
const REGION_BOUND: u64 = 50_000;

/// Checks restore equivalence for one prepared CPU at region offset
/// `skip` with warm window `warm`, staging the checkpoint in `dir`.
///
/// # Errors
///
/// Returns the first divergence between the fast-forwarded and the
/// checkpoint-restored path.
pub fn check_restore(
    label: &str,
    cpu: &Cpu,
    skip: u64,
    warm: u64,
    dir: &Path,
) -> Result<(), Mismatch> {
    let fail = |what: String| {
        Err(Mismatch {
            mode: "restore",
            what,
        })
    };

    // Reference path: plain functional fast-forward.
    let mut ff = cpu.clone();
    if let Err(e) = ff.run(skip) {
        return fail(format!("reference fast-forward faulted: {e}"));
    }

    // Checkpoint path: capture → save → load → resume, all through the
    // real on-disk store so serialization is part of the oracle.
    let key = region_key(label, cpu, skip);
    let store = CheckpointStore::new(dir);
    let snap = {
        let mut c = cpu.clone();
        match capture_snapshots(&mut c, &[skip], warm) {
            Ok(mut s) => s.pop().expect("one start yields one snapshot"),
            Err(e) => return fail(format!("capture faulted: {e}")),
        }
    };
    store.save(&key, &snap);
    let Some(loaded) = store.load(&key) else {
        return fail("checkpoint did not survive the store round-trip".to_string());
    };
    let restored = match resume(cpu.clone(), &loaded, warm) {
        Ok(r) => r,
        Err(e) => return fail(format!("resume faulted: {e}")),
    };

    // Architectural equality of the two starting points.
    let r = &restored.cpu;
    if r.pc() != ff.pc() || r.retired() != ff.retired() || r.is_halted() != ff.is_halted() {
        return fail(format!(
            "restored position diverges: pc {:#x}/{:#x}, retired {}/{}, halted {}/{}",
            r.pc(),
            ff.pc(),
            r.retired(),
            ff.retired(),
            r.is_halted(),
            ff.is_halted()
        ));
    }
    for reg in Reg::all() {
        if r.reg(reg) != ff.reg(reg) {
            return fail(format!(
                "restored register {reg} diverges: want {:#x}, got {:#x}",
                ff.reg(reg),
                r.reg(reg)
            ));
        }
    }
    if let Some((addr, got, want)) = r.mem.first_difference(&ff.mem) {
        return fail(format!(
            "restored memory diverges at {addr:#x}: want {want:#x}, got {got:#x}"
        ));
    }
    let expected_warm = warm.min(snap.lead());
    if !ff.is_halted() && restored.warm.len() as u64 != expected_warm {
        return fail(format!(
            "warm replay returned {} records, expected {expected_warm}",
            restored.warm.len()
        ));
    }

    // Timing equivalence: a region run from either start must retire the
    // same stream and land in the same final state, in every mode.
    for (name, mode) in modes() {
        let cfg = RunConfig::quick(mode, REGION_BOUND, 2_000);
        let a = simulate_observed_warmed(ff.clone(), &cfg, &[]);
        let b = simulate_observed_warmed(restored.cpu.clone(), &cfg, &restored.warm);
        compare_region(name, skip, warm, &a, &b)?;
    }
    Ok(())
}

fn compare_region(
    mode: &'static str,
    skip: u64,
    warm: u64,
    ff: &phelps::sim::SimResult,
    restored: &phelps::sim::SimResult,
) -> Result<(), Mismatch> {
    let err = |what: String| Err(Mismatch { mode, what });
    let want = ff.retire_log.as_ref().expect("retire log was requested");
    let got = restored
        .retire_log
        .as_ref()
        .expect("retire log was requested");
    for (i, (w, g)) in want.iter().zip(got.iter()).enumerate() {
        if w != g {
            return err(format!(
                "restored region record {i} (skip {skip}) diverges:\n  want: {w:?}\n  got:  {g:?}"
            ));
        }
    }
    if want.len() != got.len() {
        return err(format!(
            "restored region (skip {skip}) retired {} records, fast-forwarded retired {}",
            got.len(),
            want.len()
        ));
    }
    let wf = ff.final_state.as_ref().expect("final state was requested");
    let gf = restored
        .final_state
        .as_ref()
        .expect("final state was requested");
    for reg in Reg::all() {
        let (w, g) = (wf.mt_regs[reg.index()], gf.mt_regs[reg.index()]);
        if w != g {
            return err(format!(
                "final register {reg} diverges after restore: want {w:#x}, got {g:#x}"
            ));
        }
    }
    if let Some((addr, g, w)) = gf.mem.first_difference(&wf.mem) {
        return err(format!(
            "final memory diverges after restore at {addr:#x}: want {w:#x}, got {g:#x}"
        ));
    }
    if warm == 0 && ff.stats != restored.stats {
        return err(format!(
            "W=0 stats diverge (skip {skip}): cycles {} vs {}, l1d misses {} vs {}",
            ff.stats.cycles, restored.stats.cycles, ff.stats.l1d_misses, restored.stats.l1d_misses
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use phelps_isa::Asm;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("phelps-restore-{}-{tag}", std::process::id()))
    }

    #[test]
    fn handwritten_loop_restores_equivalently() {
        let mut a = Asm::new(0x1000);
        a.li(Reg::A0, 400);
        a.li(Reg::A1, 0x8000);
        a.label("l");
        a.sd(Reg::A0, Reg::A1, 0);
        a.ld(Reg::A2, Reg::A1, 0);
        a.addi(Reg::A0, Reg::A0, -1);
        a.bne(Reg::A0, Reg::ZERO, "l");
        a.halt();
        let cpu = Cpu::new(a.assemble().unwrap());
        let dir = tmpdir("loop");
        for warm in [0, 64] {
            check_restore("loop", &cpu, 600, warm, &dir)
                .unwrap_or_else(|m| panic!("restore oracle failed: {m}"));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn skip_past_halt_restores_equivalently() {
        let mut a = Asm::new(0x1000);
        a.li(Reg::A0, 7);
        a.halt();
        let cpu = Cpu::new(a.assemble().unwrap());
        let dir = tmpdir("halted");
        check_restore("halted", &cpu, 1_000, 16, &dir)
            .unwrap_or_else(|m| panic!("restore oracle failed: {m}"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
