//! Lock-step differential co-simulation oracle.
//!
//! The reference is the functional emulator ([`phelps_isa::Cpu`]) run to
//! halt. Each checked mode then runs the *same* prepared CPU through the
//! cycle-level pipeline with retire logging on, and the retired
//! main-thread record stream plus the final timing-architectural state
//! must match the reference exactly:
//!
//! * every retired [`ExecRecord`] (PC, next-PC, taken flag, destination
//!   value, memory address, store data) in retirement order;
//! * the final register file over all 32 registers (generated programs
//!   initialize registers via an emitted `li` prologue, so retire-time
//!   state is comparable without a written-set carve-out);
//! * the full final memory image (the pipeline's retire-time memory is
//!   seeded from guest memory and written only by retired stores, so
//!   semantic equality is exact, via [`Memory::first_difference`]).
//!
//! Any divergence means the replay/squash machinery dropped, duplicated
//! or reordered a record, or retire-time state application went wrong.

use phelps::sim::{simulate_observed, Mode, PhelpsFeatures, RunConfig};
use phelps_isa::{Cpu, ExecRecord, Reg};
use std::fmt;

/// Dynamic-instruction bound for the reference run. Generated programs
/// are statically guaranteed to halt far below this; hitting it means the
/// generator itself is broken.
pub const EMU_BOUND: u64 = 2_000_000;

/// A divergence between the pipeline and the reference emulator.
#[derive(Clone, Debug)]
pub struct Mismatch {
    /// The pipeline mode that diverged.
    pub mode: &'static str,
    /// Human-readable description of the first divergence.
    pub what: String,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.mode, self.what)
    }
}

/// The pipeline modes every program is checked under.
pub fn modes() -> [(&'static str, Mode); 4] {
    [
        ("baseline", Mode::Baseline),
        ("perfect-bp", Mode::PerfectBp),
        ("partition-only", Mode::PartitionOnly),
        ("phelps", Mode::Phelps(PhelpsFeatures::full())),
    ]
}

/// Runs the reference emulator to halt, returning the full record stream
/// (including the final `halt` record) and the halted CPU.
pub fn reference_trace(cpu: &Cpu) -> (Vec<ExecRecord>, Cpu) {
    let mut emu = cpu.clone();
    let mut recs = Vec::new();
    while !emu.is_halted() {
        assert!(
            (recs.len() as u64) < EMU_BOUND,
            "generated program exceeded {EMU_BOUND} instructions without halting"
        );
        recs.push(emu.step().expect("reference emulator fault"));
    }
    (recs, emu)
}

fn describe(rec: &ExecRecord) -> String {
    format!(
        "pc={:#x} {:?} next={:#x} taken={} rd={:#x} addr={:#x} data={:#x}",
        rec.pc, rec.inst, rec.next_pc, rec.taken, rec.rd_value, rec.mem_addr, rec.store_data
    )
}

fn compare_mode(
    mode: &'static str,
    cpu: &Cpu,
    cfg: &RunConfig,
    want: &[ExecRecord],
    emu: &Cpu,
) -> Result<(), Mismatch> {
    let err = |what: String| Err(Mismatch { mode, what });
    let r = simulate_observed(cpu.clone(), cfg);
    let got = r.retire_log.expect("retire log was requested");
    for (i, (w, g)) in want.iter().zip(got.iter()).enumerate() {
        if w != g {
            return err(format!(
                "retired record {i} diverges\n  want: {}\n  got:  {}",
                describe(w),
                describe(g)
            ));
        }
    }
    if want.len() != got.len() {
        return err(format!(
            "retired {} records, reference retired {} (first extra: {})",
            got.len(),
            want.len(),
            if got.len() > want.len() {
                describe(&got[want.len()])
            } else {
                "<pipeline stopped early>".to_string()
            }
        ));
    }
    let fin = r.final_state.expect("final state was requested");
    for reg in Reg::all() {
        let (w, g) = (emu.reg(reg), fin.mt_regs[reg.index()]);
        if w != g {
            return err(format!(
                "final register {reg} diverges: want {w:#x}, got {g:#x}"
            ));
        }
    }
    if let Some((addr, g, w)) = fin.mem.first_difference(&emu.mem) {
        return err(format!(
            "final memory diverges at {addr:#x}: want {w:#x}, got {g:#x}"
        ));
    }
    Ok(())
}

/// Checks one prepared CPU across every mode in [`modes`], returning the
/// first divergence found.
pub fn check_cpu(cpu: &Cpu) -> Result<(), Mismatch> {
    let (want, emu) = reference_trace(cpu);
    for (name, mode) in modes() {
        // Margin above the reference length: a duplication bug retires
        // extra records (caught by the length check) instead of tripping
        // the instruction cap exactly at the reference length. Short
        // epochs so the Phelps engine gets a chance to trigger on the
        // small generated programs.
        let cfg = RunConfig::quick(mode, want.len() as u64 + 8, 2_000);
        compare_mode(name, cpu, &cfg, &want, &emu)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use phelps_isa::Asm;

    #[test]
    fn reference_trace_includes_the_halt_record() {
        let mut a = Asm::new(0x1000);
        a.li(Reg::A0, 3);
        a.label("l");
        a.addi(Reg::A0, Reg::A0, -1);
        a.bne(Reg::A0, Reg::ZERO, "l");
        a.halt();
        let (recs, emu) = reference_trace(&Cpu::new(a.assemble().unwrap()));
        assert!(emu.is_halted());
        assert_eq!(recs.len(), 8); // li + 3*(addi, bne) + halt
        assert!(matches!(recs.last().unwrap().inst, phelps_isa::Inst::Halt));
    }

    #[test]
    fn a_handwritten_loop_passes_every_mode() {
        let mut a = Asm::new(0x1000);
        a.li(Reg::A0, 200);
        a.li(Reg::A1, 0);
        a.label("l");
        a.add(Reg::A1, Reg::A1, Reg::A0);
        a.addi(Reg::A0, Reg::A0, -1);
        a.bne(Reg::A0, Reg::ZERO, "l");
        a.halt();
        check_cpu(&Cpu::new(a.assemble().unwrap())).expect("differential check passes");
    }
}
