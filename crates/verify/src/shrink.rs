//! Delta-debugging shrinker for failing [`ProgramSpec`]s.
//!
//! The vendored `proptest` stub has no shrinking, so minimization is done
//! here, directly on the generator's op tree. Every shrink move preserves
//! the generator's structural invariants (counted loops only, pool-only
//! operands, leaf functions), so every candidate is still guaranteed to
//! halt and only needs re-checking against the differential oracle:
//!
//! * reduce the outer-loop trip count to 1;
//! * remove contiguous chunks of top-level ops (classic ddmin halving);
//! * anywhere in the tree: reduce an inner loop's trip count to 1, or
//!   replace a compound op (`Skip`/`Jump`/`InnerLoop`/`Call`) with its
//!   body spliced inline.
//!
//! Passes repeat until a fixpoint or until the evaluation budget runs
//! out; the result is the smallest still-failing spec found.

use crate::diff::check_cpu;
use crate::gen::{build, GenOp, ProgramSpec};

/// Maximum number of candidate evaluations (each one re-runs the full
/// differential check); bounds shrink time on pathological failures.
const BUDGET: usize = 400;

fn still_fails(spec: &ProgramSpec, budget: &mut usize) -> bool {
    if *budget == 0 {
        return false;
    }
    *budget -= 1;
    check_cpu(&build(spec)).is_err()
}

/// Applies the `target`-th structural simplification in a pre-order walk
/// of the tree; returns whether a site was found and rewritten.
fn simplify_in(ops: &mut Vec<GenOp>, k: &mut usize, target: usize) -> bool {
    let mut i = 0;
    while i < ops.len() {
        let compound = matches!(
            ops[i],
            GenOp::Skip { .. } | GenOp::Jump { .. } | GenOp::InnerLoop { .. } | GenOp::Call { .. }
        );
        if compound {
            if *k == target {
                match ops.remove(i) {
                    GenOp::InnerLoop { trips, body } if trips > 1 => {
                        ops.insert(i, GenOp::InnerLoop { trips: 1, body });
                    }
                    GenOp::Skip { body, .. }
                    | GenOp::Jump { body }
                    | GenOp::InnerLoop { body, .. }
                    | GenOp::Call { body } => {
                        for (j, b) in body.into_iter().enumerate() {
                            ops.insert(i + j, b);
                        }
                    }
                    _ => unreachable!("matched compound above"),
                }
                return true;
            }
            *k += 1;
            let body = match &mut ops[i] {
                GenOp::Skip { body, .. }
                | GenOp::Jump { body }
                | GenOp::InnerLoop { body, .. }
                | GenOp::Call { body } => body,
                _ => unreachable!("matched compound above"),
            };
            if simplify_in(body, k, target) {
                return true;
            }
        }
        i += 1;
    }
    false
}

fn count_sites(ops: &[GenOp]) -> usize {
    ops.iter()
        .map(|op| match op {
            GenOp::Skip { body, .. }
            | GenOp::Jump { body }
            | GenOp::InnerLoop { body, .. }
            | GenOp::Call { body } => 1 + count_sites(body),
            _ => 0,
        })
        .sum()
}

/// Total op count, for reporting and progress checks.
pub fn size(ops: &[GenOp]) -> usize {
    ops.iter()
        .map(|op| match op {
            GenOp::Skip { body, .. }
            | GenOp::Jump { body }
            | GenOp::InnerLoop { body, .. }
            | GenOp::Call { body } => 1 + size(body),
            _ => 1,
        })
        .sum()
}

/// Minimizes a failing spec. The input must fail [`check_cpu`]; the
/// output is a (usually much smaller) spec that still fails it.
pub fn shrink(spec: &ProgramSpec) -> ProgramSpec {
    let mut cur = spec.clone();
    let mut budget = BUDGET;
    loop {
        let mut progressed = false;
        if cur.outer_iters > 1 {
            let mut c = cur.clone();
            c.outer_iters = 1;
            if still_fails(&c, &mut budget) {
                cur = c;
                progressed = true;
            }
        }
        // ddmin over top-level ops: halve the chunk size until singletons.
        let mut chunk = (cur.ops.len() / 2).max(1);
        loop {
            let mut i = 0;
            while i < cur.ops.len() {
                let mut c = cur.clone();
                let end = (i + chunk).min(c.ops.len());
                c.ops.drain(i..end);
                if !c.ops.is_empty() && still_fails(&c, &mut budget) {
                    cur = c;
                    progressed = true;
                } else {
                    i += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        // Structural simplifications anywhere in the tree. Sites shift as
        // rewrites land, so re-enumerate from the current spec each time.
        let mut target = 0;
        while target < count_sites(&cur.ops) {
            let mut c = cur.clone();
            let mut k = 0;
            if simplify_in(&mut c.ops, &mut k, target) && still_fails(&c, &mut budget) {
                cur = c;
                progressed = true;
            } else {
                target += 1;
            }
        }
        if !progressed || budget == 0 {
            return cur;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::reference_trace;
    use crate::gen::generate;

    /// Every structural simplification of a generated spec must itself be
    /// a valid, halting program — shrink moves can never leave the
    /// generator's language.
    #[test]
    fn every_simplification_candidate_still_halts() {
        for seed in 0..24u64 {
            let spec = generate(seed);
            let sites = count_sites(&spec.ops);
            for target in 0..sites {
                let mut c = spec.clone();
                let mut k = 0;
                assert!(
                    simplify_in(&mut c.ops, &mut k, target),
                    "seed {seed}: site {target} of {sites} not found"
                );
                let (_, emu) = reference_trace(&build(&c)); // asserts halt
                assert!(emu.is_halted());
            }
        }
    }

    #[test]
    fn simplification_never_grows_the_tree() {
        for seed in 0..24u64 {
            let spec = generate(seed);
            for target in 0..count_sites(&spec.ops) {
                let mut c = spec.clone();
                let mut k = 0;
                simplify_in(&mut c.ops, &mut k, target);
                assert!(
                    size(&c.ops) <= size(&spec.ops),
                    "seed {seed}: site {target} grew the tree"
                );
            }
        }
    }

    #[test]
    fn chunk_removal_preserves_halting() {
        for seed in 0..12u64 {
            let spec = generate(seed);
            if spec.ops.len() < 2 {
                continue;
            }
            let mut c = spec.clone();
            c.ops.drain(0..spec.ops.len() / 2);
            let (_, emu) = reference_trace(&build(&c));
            assert!(emu.is_halted());
        }
    }
}
