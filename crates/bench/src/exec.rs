//! The single cell-execution entry point shared by every front door.
//!
//! A *cell* — one (workload, configuration) pair with a content
//! fingerprint — can arrive from the batch experiment [`runner`] or from
//! the `phelps-serve` daemon's worker pool. Both paths converge here, so
//! cache-read policy, the per-key dedup lock, telemetry installation,
//! and the atomic cache write behave identically no matter who asked
//! for the simulation.
//!
//! The sequence for one cell:
//!
//! 1. acquire the cell's fingerprint lock ([`cache::key_locks`]) so a
//!    concurrent identical cell serializes behind us,
//! 2. re-check the on-disk cache (the thread that raced us may have just
//!    stored the result — this turns the race into a hit),
//! 3. install a thread-local telemetry registry when requested (with an
//!    optional live [`SampleSink`] for streaming consumers),
//! 4. run the simulation thunk,
//! 5. store the result atomically (tmp + rename) and release the lock.
//!
//! [`runner`]: crate::runner
//! [`SampleSink`]: phelps_telemetry::SampleSink

use crate::runner::cache;
use phelps::sim::SimResult;
use phelps_telemetry as tlm;
use std::path::PathBuf;

/// Identity of one cell: the four components of its cache fingerprint.
#[derive(Clone, Debug)]
pub struct CellRequest {
    /// Experiment (figure/table or service) name.
    pub experiment: String,
    /// Row (workload) label.
    pub workload: String,
    /// Column (configuration) label.
    pub config: String,
    /// Everything else that determines the result (typically the `Debug`
    /// rendering of the full `RunConfig`).
    pub key: String,
}

impl CellRequest {
    /// The full content fingerprint embedded in (and verified against)
    /// the cell's cache file.
    pub fn fingerprint(&self) -> String {
        format!(
            "{}|{}|{}|{}|v{}",
            self.experiment,
            self.workload,
            self.config,
            self.key,
            env!("CARGO_PKG_VERSION")
        )
    }
}

/// Execution policy for one cell: where the cache lives and whether to
/// consult it, plus an optional telemetry registry to install.
#[derive(Clone, Debug, Default)]
pub struct ExecPolicy {
    /// Cache directory; `None` disables both reads and writes.
    pub cache_dir: Option<PathBuf>,
    /// Serve the cell from the cache when present.
    pub read_cache: bool,
    /// Persist a fresh result into the cache.
    pub write_cache: bool,
    /// Telemetry registry to install on this thread before simulating
    /// (the harvested report rides back on the [`SimResult`]).
    pub telemetry: Option<tlm::Config>,
}

/// The outcome of one cell execution.
#[derive(Debug)]
pub struct CellOutcome {
    /// The result; `None` when the thunk failed (it has already warned).
    pub result: Option<SimResult>,
    /// Whether the result was served from the on-disk cache.
    pub from_cache: bool,
}

/// Executes one cell under `policy`. See the module docs for the exact
/// sequence; this is the only place in the workspace that pairs a cache
/// lookup with a simulation, so dedup semantics cannot drift between
/// the batch runner and the daemon.
pub fn execute_cell(
    req: &CellRequest,
    policy: &ExecPolicy,
    job: impl FnOnce() -> Option<SimResult>,
) -> CellOutcome {
    execute_cell_prepared(req, policy, |tlm_cfg| {
        if let Some(cfg) = tlm_cfg {
            tlm::install(cfg);
        }
        job()
    })
}

/// [`execute_cell`] for jobs that own their telemetry installation.
///
/// The plain entry point installs the policy's registry on the calling
/// thread before running the job — correct for a single-threaded
/// simulation, wrong for a sharded one, where each shard needs its own
/// thread-local registry installed *after* checkpoint positioning (so
/// nondeterministic restore wall-clock counters stay out of the merged
/// report). Here the job receives the policy's telemetry config and
/// decides where and when to install it; everything else (key lock,
/// cache re-check, atomic store) is identical.
pub fn execute_cell_prepared(
    req: &CellRequest,
    policy: &ExecPolicy,
    job: impl FnOnce(Option<tlm::Config>) -> Option<SimResult>,
) -> CellOutcome {
    let fingerprint = req.fingerprint();
    let dir = policy
        .cache_dir
        .as_deref()
        .filter(|_| policy.read_cache || policy.write_cache);
    // Hold the cell's key for the whole load → simulate → store span:
    // an identical concurrent cell blocks here and then finds our write.
    let _guard = dir.map(|_| cache::key_locks().lock(&fingerprint));
    if policy.read_cache {
        if let Some(dir) = dir {
            if let Some(result) = cache::load(dir, &fingerprint) {
                return CellOutcome {
                    result: Some(result),
                    from_cache: true,
                };
            }
        }
    }
    let result = job(policy.telemetry.clone());
    if policy.write_cache {
        if let (Some(dir), Some(r)) = (dir, result.as_ref()) {
            cache::store(dir, &fingerprint, r);
        }
    }
    CellOutcome {
        result,
        from_cache: false,
    }
}

/// Runs `job(0..n)` on a pool of `workers` scoped threads and returns
/// the results in index order — the shard-dispatch primitive shared by
/// sharded single runs and the SimPoint driver.
///
/// Work is claimed from an atomic index, so any worker count yields the
/// same index→result mapping; with `workers == 1` the indices execute
/// strictly in order. Each worker is a fresh thread, so thread-local
/// telemetry registries installed by one shard can never leak into
/// another (or into the caller).
pub fn run_indexed<T: Send>(n: usize, workers: usize, job: impl Fn(usize) -> T + Sync) -> Vec<T> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = job(i);
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phelps::sim::{simulate, Mode, RunConfig};
    use phelps_isa::{Asm, Cpu, Reg};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tiny_loop() -> Cpu {
        let mut a = Asm::new(0x1000);
        a.li(Reg::A0, 2_000);
        a.label("loop");
        a.addi(Reg::A0, Reg::A0, -1);
        a.bne(Reg::A0, Reg::ZERO, "loop");
        a.halt();
        Cpu::new(a.assemble().unwrap())
    }

    fn req(tag: &str) -> CellRequest {
        CellRequest {
            experiment: "exec-test".into(),
            workload: tag.into(),
            config: "baseline".into(),
            key: "k".into(),
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("phelps-exec-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn concurrent_identical_cells_simulate_once() {
        let dir = scratch("dedup");
        let runs = AtomicUsize::new(0);
        let policy = ExecPolicy {
            cache_dir: Some(dir.clone()),
            read_cache: true,
            write_cache: true,
            telemetry: None,
        };
        let outcomes: Vec<CellOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        execute_cell(&req("dedup"), &policy, || {
                            runs.fetch_add(1, Ordering::SeqCst);
                            let cfg = RunConfig::quick(Mode::Baseline, 5_000, 1_000);
                            Some(simulate(tiny_loop(), &cfg))
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly one simulation");
        assert_eq!(
            outcomes.iter().filter(|o| o.from_cache).count(),
            3,
            "the other three are cache hits"
        );
        let stats: Vec<String> = outcomes
            .iter()
            .map(|o| format!("{:?}", o.result.as_ref().unwrap().stats))
            .collect();
        assert!(stats.iter().all(|s| s == &stats[0]), "identical results");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_cache_dir_always_simulates() {
        let runs = AtomicUsize::new(0);
        let policy = ExecPolicy::default();
        for _ in 0..2 {
            let o = execute_cell(&req("nocache"), &policy, || {
                runs.fetch_add(1, Ordering::SeqCst);
                let cfg = RunConfig::quick(Mode::Baseline, 5_000, 1_000);
                Some(simulate(tiny_loop(), &cfg))
            });
            assert!(!o.from_cache);
        }
        assert_eq!(runs.load(Ordering::SeqCst), 2);
    }
}
