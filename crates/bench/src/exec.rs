//! The single cell-execution entry point shared by every front door.
//!
//! A *cell* — one (workload, configuration) pair with a content
//! fingerprint — can arrive from the batch experiment [`runner`] or from
//! the `phelps-serve` daemon's worker pool. Both paths converge here, so
//! cache-read policy, the per-key dedup lock, telemetry installation,
//! and the atomic cache write behave identically no matter who asked
//! for the simulation.
//!
//! The sequence for one cell:
//!
//! 1. acquire the cell's fingerprint lock ([`cache::key_locks`]) so a
//!    concurrent identical cell serializes behind us,
//! 2. re-check the on-disk cache (the thread that raced us may have just
//!    stored the result — this turns the race into a hit),
//! 3. install a thread-local telemetry registry when requested (with an
//!    optional live [`SampleSink`] for streaming consumers),
//! 4. run the simulation thunk,
//! 5. store the result atomically (tmp + rename) and release the lock.
//!
//! [`runner`]: crate::runner
//! [`SampleSink`]: phelps_telemetry::SampleSink

use crate::runner::cache;
use phelps::sim::SimResult;
use phelps_telemetry as tlm;
use std::path::PathBuf;

/// Identity of one cell: the four components of its cache fingerprint.
#[derive(Clone, Debug)]
pub struct CellRequest {
    /// Experiment (figure/table or service) name.
    pub experiment: String,
    /// Row (workload) label.
    pub workload: String,
    /// Column (configuration) label.
    pub config: String,
    /// Everything else that determines the result (typically the `Debug`
    /// rendering of the full `RunConfig`).
    pub key: String,
}

impl CellRequest {
    /// The full content fingerprint embedded in (and verified against)
    /// the cell's cache file.
    pub fn fingerprint(&self) -> String {
        format!(
            "{}|{}|{}|{}|v{}",
            self.experiment,
            self.workload,
            self.config,
            self.key,
            env!("CARGO_PKG_VERSION")
        )
    }
}

/// Execution policy for one cell: where the cache lives and whether to
/// consult it, plus an optional telemetry registry to install.
#[derive(Clone, Debug, Default)]
pub struct ExecPolicy {
    /// Cache directory; `None` disables both reads and writes.
    pub cache_dir: Option<PathBuf>,
    /// Serve the cell from the cache when present.
    pub read_cache: bool,
    /// Persist a fresh result into the cache.
    pub write_cache: bool,
    /// Telemetry registry to install on this thread before simulating
    /// (the harvested report rides back on the [`SimResult`]).
    pub telemetry: Option<tlm::Config>,
}

/// The outcome of one cell execution.
#[derive(Debug)]
pub struct CellOutcome {
    /// The result; `None` when the thunk failed (it has already warned).
    pub result: Option<SimResult>,
    /// Whether the result was served from the on-disk cache.
    pub from_cache: bool,
}

/// Executes one cell under `policy`. See the module docs for the exact
/// sequence; this is the only place in the workspace that pairs a cache
/// lookup with a simulation, so dedup semantics cannot drift between
/// the batch runner and the daemon.
pub fn execute_cell(
    req: &CellRequest,
    policy: &ExecPolicy,
    job: impl FnOnce() -> Option<SimResult>,
) -> CellOutcome {
    let fingerprint = req.fingerprint();
    let dir = policy
        .cache_dir
        .as_deref()
        .filter(|_| policy.read_cache || policy.write_cache);
    // Hold the cell's key for the whole load → simulate → store span:
    // an identical concurrent cell blocks here and then finds our write.
    let _guard = dir.map(|_| cache::key_locks().lock(&fingerprint));
    if policy.read_cache {
        if let Some(dir) = dir {
            if let Some(result) = cache::load(dir, &fingerprint) {
                return CellOutcome {
                    result: Some(result),
                    from_cache: true,
                };
            }
        }
    }
    if let Some(cfg) = &policy.telemetry {
        tlm::install(cfg.clone());
    }
    let result = job();
    if policy.write_cache {
        if let (Some(dir), Some(r)) = (dir, result.as_ref()) {
            cache::store(dir, &fingerprint, r);
        }
    }
    CellOutcome {
        result,
        from_cache: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phelps::sim::{simulate, Mode, RunConfig};
    use phelps_isa::{Asm, Cpu, Reg};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tiny_loop() -> Cpu {
        let mut a = Asm::new(0x1000);
        a.li(Reg::A0, 2_000);
        a.label("loop");
        a.addi(Reg::A0, Reg::A0, -1);
        a.bne(Reg::A0, Reg::ZERO, "loop");
        a.halt();
        Cpu::new(a.assemble().unwrap())
    }

    fn req(tag: &str) -> CellRequest {
        CellRequest {
            experiment: "exec-test".into(),
            workload: tag.into(),
            config: "baseline".into(),
            key: "k".into(),
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("phelps-exec-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn concurrent_identical_cells_simulate_once() {
        let dir = scratch("dedup");
        let runs = AtomicUsize::new(0);
        let policy = ExecPolicy {
            cache_dir: Some(dir.clone()),
            read_cache: true,
            write_cache: true,
            telemetry: None,
        };
        let outcomes: Vec<CellOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        execute_cell(&req("dedup"), &policy, || {
                            runs.fetch_add(1, Ordering::SeqCst);
                            let cfg = RunConfig::quick(Mode::Baseline, 5_000, 1_000);
                            Some(simulate(tiny_loop(), &cfg))
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(runs.load(Ordering::SeqCst), 1, "exactly one simulation");
        assert_eq!(
            outcomes.iter().filter(|o| o.from_cache).count(),
            3,
            "the other three are cache hits"
        );
        let stats: Vec<String> = outcomes
            .iter()
            .map(|o| format!("{:?}", o.result.as_ref().unwrap().stats))
            .collect();
        assert!(stats.iter().all(|s| s == &stats[0]), "identical results");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_cache_dir_always_simulates() {
        let runs = AtomicUsize::new(0);
        let policy = ExecPolicy::default();
        for _ in 0..2 {
            let o = execute_cell(&req("nocache"), &policy, || {
                runs.fetch_add(1, Ordering::SeqCst);
                let cfg = RunConfig::quick(Mode::Baseline, 5_000, 1_000);
                Some(simulate(tiny_loop(), &cfg))
            });
            assert!(!o.from_cache);
        }
        assert_eq!(runs.load(Ordering::SeqCst), 2);
    }
}
