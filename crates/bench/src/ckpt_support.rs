//! Checkpoint-backed region starts for the experiment harness.
//!
//! The SimPoint methodology fast-forwards every region run from
//! instruction 0 to `start_inst` before timing begins — the dominant
//! wall-clock cost of the figure matrix, and one the PR-2 result cache
//! cannot amortize when configurations change. This module routes region
//! starts through [`phelps_ckpt`]: the first run of a (workload,
//! `start_inst`) pair captures an architectural checkpoint under
//! `results/ckpt/`, and every later run — any mode, any configuration —
//! restores it in O(resident pages) instead of re-executing
//! O(`start_inst`) instructions.
//!
//! ## Environment variables
//!
//! * `PHELPS_NO_CKPT=1` (or `PHELPS_CKPT=0`) — disable checkpointing and
//!   fast-forward functionally, exactly as before this module existed;
//! * `PHELPS_CKPT_DIR` — checkpoint directory (default `results/ckpt`);
//! * `PHELPS_CKPT_WARM` — functional-warming window W (default 0): the
//!   last W pre-region instructions are replayed through the cache
//!   hierarchy and branch predictor only. W=0 reproduces the cold
//!   fast-forward path bit-for-bit.
//!
//! ## Accounting
//!
//! Every save/restore/fast-forward is timed into a process-global
//! [`Totals`] (printed as a one-line `[ckpt]` stderr summary by
//! [`print_summary`]) and mirrored into the [`phelps_telemetry`]
//! counters `ckpt_hits` / `ckpt_misses` / `ckpt_save_ns` /
//! `ckpt_restore_ns` / `ckpt_skipped_insts` when a registry is
//! installed.

use phelps_ckpt::{self as ckpt, CheckpointStore, RegionKey, Snapshot};
use phelps_isa::{Cpu, EmuError, ExecRecord};
use phelps_telemetry as tlm;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

/// Resolved checkpointing policy. Normally built [`from_env`]; tests pass
/// explicit policies to avoid process-global env-var races.
///
/// [`from_env`]: CkptPolicy::from_env
#[derive(Clone, Debug)]
pub struct CkptPolicy {
    /// Checkpointing on? When off, region starts fast-forward functionally.
    pub enabled: bool,
    /// Checkpoint directory (created lazily on first save).
    pub dir: PathBuf,
    /// Functional-warming window W in instructions (0 = cold restore).
    pub warm: u64,
}

impl CkptPolicy {
    /// Reads `PHELPS_CKPT` / `PHELPS_NO_CKPT` / `PHELPS_CKPT_DIR` /
    /// `PHELPS_CKPT_WARM`.
    pub fn from_env() -> CkptPolicy {
        let off = std::env::var("PHELPS_NO_CKPT").is_ok_and(|v| v != "0")
            || std::env::var("PHELPS_CKPT").is_ok_and(|v| v == "0");
        CkptPolicy {
            enabled: !off,
            dir: std::env::var("PHELPS_CKPT_DIR")
                .ok()
                .filter(|s| !s.is_empty())
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("results/ckpt")),
            warm: crate::env_u64("PHELPS_CKPT_WARM", 0),
        }
    }
}

/// Cumulative checkpoint accounting for this process, across every
/// experiment and worker thread.
#[derive(Clone, Copy, Default, Debug)]
pub struct Totals {
    /// Region starts served by restoring a stored checkpoint.
    pub hits: u64,
    /// Region starts that had to fast-forward (no usable checkpoint).
    pub misses: u64,
    /// Checkpoint files written.
    pub saves: u64,
    /// Instructions *not* re-executed thanks to restores.
    pub skipped_insts: u64,
    /// Instructions executed by functional fast-forward.
    pub ff_insts: u64,
    /// Wall-clock nanoseconds spent fast-forwarding.
    pub ff_ns: u64,
    /// Wall-clock nanoseconds spent serializing checkpoints.
    pub save_ns: u64,
    /// Wall-clock nanoseconds spent restoring (including warm replay).
    pub restore_ns: u64,
}

static TOTALS: Mutex<Totals> = Mutex::new(Totals {
    hits: 0,
    misses: 0,
    saves: 0,
    skipped_insts: 0,
    ff_insts: 0,
    ff_ns: 0,
    save_ns: 0,
    restore_ns: 0,
});

fn with_totals(f: impl FnOnce(&mut Totals)) {
    f(&mut TOTALS.lock().unwrap_or_else(|e| e.into_inner()));
}

/// A copy of the process-global checkpoint accounting.
pub fn totals() -> Totals {
    *TOTALS.lock().unwrap_or_else(|e| e.into_inner())
}

/// Prints the one-line `[ckpt]` summary to stderr — silent when no
/// region start went through this module.
pub fn print_summary() {
    let t = totals();
    if t.hits + t.misses + t.saves == 0 {
        return;
    }
    eprintln!(
        "[ckpt] hits={} misses={} saves={} skipped_insts={} ff_insts={} \
         ff_ns={} save_ns={} restore_ns={}",
        t.hits, t.misses, t.saves, t.skipped_insts, t.ff_insts, t.ff_ns, t.save_ns, t.restore_ns
    );
}

fn elapsed_ns(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Positions `cpu` at retired-instruction offset `skip`, through the
/// checkpoint store when the policy allows, and returns it together with
/// the warm-replay records (the last `min(W, skip)` pre-region
/// instructions; empty when W=0 or checkpointing is off).
///
/// Misses fall back to a functional fast-forward that captures and saves
/// a checkpoint on the way, so the next run — under any mode — hits. A
/// stored checkpoint whose warm lead is shorter than the requested W is
/// recaptured rather than partially warmed, keeping runs with the same
/// settings deterministic.
///
/// # Errors
///
/// Propagates [`EmuError`] from the underlying fast-forward or replay
/// (bad region offset, workload shorter than `skip`).
pub fn region_cpu_with(
    policy: &CkptPolicy,
    label: &str,
    mut cpu: Cpu,
    skip: u64,
) -> Result<(Cpu, Vec<ExecRecord>), EmuError> {
    if skip == 0 {
        return Ok((cpu, Vec::new()));
    }
    if !policy.enabled {
        let t = Instant::now();
        cpu.run(skip)?;
        let ns = elapsed_ns(t);
        with_totals(|tot| {
            tot.ff_ns += ns;
            tot.ff_insts += skip;
        });
        return Ok((cpu, Vec::new()));
    }

    let store = CheckpointStore::new(&policy.dir);
    let key = ckpt::region_key(label, &cpu, skip);
    if let Some(snap) = store.load(&key) {
        if snap.lead() >= policy.warm.min(skip) {
            let t = Instant::now();
            let restored = ckpt::resume(cpu, &snap, policy.warm)?;
            let ns = elapsed_ns(t);
            with_totals(|tot| {
                tot.hits += 1;
                tot.restore_ns += ns;
                tot.skipped_insts += snap.state.retired;
            });
            tlm::count(tlm::Counter::CkptHits);
            tlm::add(tlm::Counter::CkptRestoreNs, ns);
            tlm::add(tlm::Counter::CkptSkippedInsts, snap.state.retired);
            return Ok((restored.cpu, restored.warm));
        }
        eprintln!(
            "note: recapturing checkpoint for {label}@{skip}: stored warm lead {} < requested {}",
            snap.lead(),
            policy.warm.min(skip)
        );
    }

    // Miss: fast-forward (capturing W early), persist, then replay the
    // warm window so this run behaves exactly like a future hit.
    with_totals(|tot| tot.misses += 1);
    tlm::count(tlm::Counter::CkptMisses);
    let t = Instant::now();
    let snap = capture_one(&mut cpu, skip, policy.warm)?;
    let mut ff_ns = elapsed_ns(t);
    let t = Instant::now();
    store.save(&key, &snap);
    let save_ns = elapsed_ns(t);
    let t = Instant::now();
    let restored = ckpt::resume(cpu, &snap, policy.warm)?;
    ff_ns += elapsed_ns(t);
    with_totals(|tot| {
        tot.saves += 1;
        tot.save_ns += save_ns;
        tot.ff_ns += ff_ns;
        tot.ff_insts += skip;
    });
    tlm::add(tlm::Counter::CkptSaveNs, save_ns);
    Ok((restored.cpu, restored.warm))
}

fn capture_one(cpu: &mut Cpu, skip: u64, warm: u64) -> Result<Snapshot, EmuError> {
    Ok(ckpt::capture_snapshots(cpu, &[skip], warm)?
        .pop()
        .expect("one start yields one snapshot"))
}

/// [`region_cpu_with`] under the environment policy.
///
/// # Errors
///
/// Propagates [`EmuError`] from the fast-forward or replay.
pub fn region_cpu(label: &str, cpu: Cpu, skip: u64) -> Result<(Cpu, Vec<ExecRecord>), EmuError> {
    region_cpu_with(&CkptPolicy::from_env(), label, cpu, skip)
}

/// Captures every missing checkpoint among `starts` in one forward pass
/// over `cpu` (a fresh workload instance), so N region cells pay one
/// fast-forward instead of N. Present-and-usable checkpoints are left
/// alone; `start == 0` needs no checkpoint and is ignored.
///
/// # Errors
///
/// Propagates [`EmuError`] when the single-pass fast-forward faults; the
/// per-region path will rediscover (and re-warn about) the same fault.
pub fn ensure_region_checkpoints_with(
    policy: &CkptPolicy,
    label: &str,
    mut cpu: Cpu,
    starts: &[u64],
) -> Result<(), EmuError> {
    if !policy.enabled {
        return Ok(());
    }
    let mut wanted: Vec<u64> = starts.iter().copied().filter(|&s| s > 0).collect();
    wanted.sort_unstable();
    wanted.dedup();
    let store = CheckpointStore::new(&policy.dir);
    let missing: Vec<(u64, RegionKey)> = wanted
        .into_iter()
        .map(|s| (s, ckpt::region_key(label, &cpu, s)))
        .filter(|(s, k)| {
            store
                .load(k)
                .is_none_or(|snap| snap.lead() < policy.warm.min(*s))
        })
        .collect();
    if missing.is_empty() {
        return Ok(());
    }
    let starts_only: Vec<u64> = missing.iter().map(|(s, _)| *s).collect();
    let t = Instant::now();
    let snaps = ckpt::capture_snapshots(&mut cpu, &starts_only, policy.warm)?;
    let ff_ns = elapsed_ns(t);
    let ff_insts = snaps.last().map_or(0, |s| s.state.retired);
    let t = Instant::now();
    for ((_, key), snap) in missing.iter().zip(&snaps) {
        store.save(key, snap);
    }
    let save_ns = elapsed_ns(t);
    let n = snaps.len() as u64;
    with_totals(|tot| {
        tot.saves += n;
        tot.save_ns += save_ns;
        tot.ff_ns += ff_ns;
        tot.ff_insts += ff_insts;
    });
    tlm::add(tlm::Counter::CkptSaveNs, save_ns);
    Ok(())
}

/// [`ensure_region_checkpoints_with`] under the environment policy.
///
/// # Errors
///
/// Propagates [`EmuError`] when the single-pass fast-forward faults.
pub fn ensure_region_checkpoints(label: &str, cpu: Cpu, starts: &[u64]) -> Result<(), EmuError> {
    ensure_region_checkpoints_with(&CkptPolicy::from_env(), label, cpu, starts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use phelps_isa::{Asm, Reg};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn looping_cpu() -> Cpu {
        let mut a = Asm::new(0x1000);
        a.li(Reg::A0, 0);
        a.li(Reg::A1, 0x8000);
        a.label("loop");
        a.addi(Reg::A0, Reg::A0, 1);
        a.sd(Reg::A0, Reg::A1, 0);
        a.ld(Reg::A2, Reg::A1, 0);
        a.j("loop");
        Cpu::new(a.assemble().unwrap())
    }

    fn policy(tag: &str, warm: u64) -> CkptPolicy {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "phelps-ckpt-support-{}-{}-{tag}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        CkptPolicy {
            enabled: true,
            dir,
            warm,
        }
    }

    fn assert_same_arch(a: &Cpu, b: &Cpu) {
        assert_eq!(a.pc(), b.pc());
        assert_eq!(a.retired(), b.retired());
        for r in Reg::all() {
            assert_eq!(a.reg(r), b.reg(r), "register {r:?}");
        }
    }

    #[test]
    fn miss_then_hit_match_plain_fast_forward() {
        let p = policy("roundtrip", 0);
        let mut plain = looping_cpu();
        plain.run(500).unwrap();

        let (missed, warm0) = region_cpu_with(&p, "wl", looping_cpu(), 500).unwrap();
        assert_same_arch(&missed, &plain);
        assert!(warm0.is_empty(), "W=0 yields no warm records");

        let (hit, warm1) = region_cpu_with(&p, "wl", looping_cpu(), 500).unwrap();
        assert_same_arch(&hit, &plain);
        assert!(warm1.is_empty());
        let _ = std::fs::remove_dir_all(&p.dir);
    }

    #[test]
    fn disabled_policy_is_plain_fast_forward() {
        let mut p = policy("disabled", 0);
        p.enabled = false;
        let (cpu, warm) = region_cpu_with(&p, "wl", looping_cpu(), 300).unwrap();
        let mut plain = looping_cpu();
        plain.run(300).unwrap();
        assert_same_arch(&cpu, &plain);
        assert!(warm.is_empty());
        assert!(!p.dir.exists(), "no checkpoint directory when disabled");
    }

    #[test]
    fn warm_window_returns_trailing_records_on_hit() {
        let p = policy("warm", 64);
        let (_, warm_miss) = region_cpu_with(&p, "wl", looping_cpu(), 500).unwrap();
        assert_eq!(warm_miss.len(), 64);
        let (cpu, warm_hit) = region_cpu_with(&p, "wl", looping_cpu(), 500).unwrap();
        assert_eq!(warm_hit.len(), 64);
        assert_eq!(cpu.retired(), 500);
        // Identical replay both times: the warm trace is deterministic.
        for (a, b) in warm_miss.iter().zip(&warm_hit) {
            assert_eq!(a.pc, b.pc);
            assert_eq!(a.mem_addr, b.mem_addr);
        }
        let _ = std::fs::remove_dir_all(&p.dir);
    }

    #[test]
    fn short_lead_checkpoint_is_recaptured_for_larger_window() {
        let cold = policy("grow", 0);
        let (_, w) = region_cpu_with(&cold, "wl", looping_cpu(), 400).unwrap();
        assert!(w.is_empty());
        let grown = CkptPolicy {
            warm: 32,
            ..cold.clone()
        };
        let (cpu, warm) = region_cpu_with(&grown, "wl", looping_cpu(), 400).unwrap();
        assert_eq!(warm.len(), 32, "recaptured with the larger lead");
        assert_eq!(cpu.retired(), 400);
        let _ = std::fs::remove_dir_all(&cold.dir);
    }

    #[test]
    fn ensure_pass_precaptures_every_start() {
        let p = policy("ensure", 0);
        ensure_region_checkpoints_with(&p, "wl", looping_cpu(), &[600, 0, 200, 200]).unwrap();
        let store = CheckpointStore::new(&p.dir);
        for s in [200, 600] {
            let key = ckpt::region_key("wl", &looping_cpu(), s);
            assert!(store.load(&key).is_some(), "start {s} captured");
        }
        // The per-region path now hits without growing the store.
        let files = || std::fs::read_dir(&p.dir).unwrap().count();
        let before = files();
        let (cpu, _) = region_cpu_with(&p, "wl", looping_cpu(), 600).unwrap();
        assert_eq!(cpu.retired(), 600);
        assert_eq!(files(), before);
        let _ = std::fs::remove_dir_all(&p.dir);
    }

    #[test]
    fn zero_skip_is_untouched() {
        let p = policy("zero", 16);
        let (cpu, warm) = region_cpu_with(&p, "wl", looping_cpu(), 0).unwrap();
        assert_eq!(cpu.retired(), 0);
        assert!(warm.is_empty());
        assert!(!p.dir.exists());
    }
}
