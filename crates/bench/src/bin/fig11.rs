//! Fig. 11 — Phelps and Branch Runahead on astar's top-weighted region.
//!
//! Reproduces the bar chart comparing, on the astar kernel alone:
//! BR-non-spec, BR-spec, and four Phelps variants (full `b1→b2→s1`,
//! `b1→b2`, `b1`, `b1→s1`). The paper's text additionally reports MPKI for
//! the ablations: 29.5 baseline → 2.68 (full), 13.4 (b1→b2), 22.9 (b1),
//! 24.5 (b1->s1), and speedups of 47% (Phelps) vs 29% (BR-spec).

use phelps::sim::{Mode, PhelpsFeatures};
use phelps_bench::runner::{parse_cli, Experiment};
use phelps_bench::{pct, print_table};
use phelps_runahead::BrVariant;
use phelps_uarch::stats::speedup;
use phelps_workloads::suite;

fn main() {
    let opts = parse_cli();
    let mut exp = Experiment::new("fig11").with_cli(&opts);
    let astar = || suite::astar().cpu;
    exp.sim_cell("astar", "baseline", Mode::Baseline, astar);
    exp.br_cell("astar", "BR-non-spec", BrVariant::NonSpeculative, astar);
    exp.br_cell("astar", "BR-spec", BrVariant::Speculative, astar);
    exp.sim_cell(
        "astar",
        "Phelps:b1",
        Mode::Phelps(PhelpsFeatures::b1_only()),
        astar,
    );
    exp.sim_cell(
        "astar",
        "Phelps:b1->s1",
        Mode::Phelps(PhelpsFeatures::b1_with_stores()),
        astar,
    );
    exp.sim_cell(
        "astar",
        "Phelps:b1->b2",
        Mode::Phelps(PhelpsFeatures::no_stores()),
        astar,
    );
    exp.sim_cell(
        "astar",
        "Phelps:b1->b2->s1",
        Mode::Phelps(PhelpsFeatures::full()),
        astar,
    );
    let res = exp.run();
    if opts.list {
        return;
    }

    let base = res.get("astar", "baseline");
    if let Some(b) = base {
        println!(
            "baseline: IPC {:.3}, MPKI {:.1}",
            b.stats.ipc(),
            b.stats.mpki()
        );
    }
    let mut rows = Vec::new();
    for config in [
        "BR-non-spec",
        "BR-spec",
        "Phelps:b1",
        "Phelps:b1->s1",
        "Phelps:b1->b2",
        "Phelps:b1->b2->s1",
    ] {
        let Some(r) = res.get("astar", config) else {
            continue;
        };
        // `~` marks proxy-predicted cells (PHELPS_PROXY).
        let mark = res.mark("astar", config);
        rows.push(vec![
            config.to_string(),
            format!("{:.3}{mark}", r.stats.ipc()),
            base.map_or_else(|| "n/a".into(), |b| pct(speedup(&b.stats, &r.stats))),
            format!("{:.1}{mark}", r.stats.mpki()),
        ]);
    }
    print_table(
        "Fig. 11: astar top region — Phelps vs Branch Runahead",
        &["config", "IPC", "speedup", "MPKI"],
        &rows,
    );
    println!(
        "\npaper shape: full Phelps > BR-spec > BR-non-spec; ablation MPKI\n\
         ordering full < b1->b2 < b1 ~ b1->s1 (29.5 -> 2.68/13.4/22.9/24.5)."
    );
}
