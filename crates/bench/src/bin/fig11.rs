//! Fig. 11 — Phelps and Branch Runahead on astar's top-weighted region.
//!
//! Reproduces the bar chart comparing, on the astar kernel alone:
//! BR-non-spec, BR-spec, and four Phelps variants (full `b1→b2→s1`,
//! `b1→b2`, `b1`, `b1→s1`). The paper's text additionally reports MPKI for
//! the ablations: 29.5 baseline → 2.68 (full), 13.4 (b1→b2), 22.9 (b1),
//! 24.5 (b1→s1), and speedups of 47% (Phelps) vs 29% (BR-spec).

use phelps::sim::{Mode, PhelpsFeatures};
use phelps_bench::{pct, print_table, run, run_br, ConfigSet};
use phelps_runahead::BrVariant;
use phelps_uarch::stats::speedup;
use phelps_workloads::suite;

fn main() {
    let base = run(suite::astar().cpu, Mode::Baseline);
    println!(
        "baseline: IPC {:.3}, MPKI {:.1}",
        base.stats.ipc(),
        base.stats.mpki()
    );

    let configs: ConfigSet = vec![
        (
            "BR-non-spec",
            Box::new(|| run_br(suite::astar().cpu, BrVariant::NonSpeculative)),
        ),
        (
            "BR-spec",
            Box::new(|| run_br(suite::astar().cpu, BrVariant::Speculative)),
        ),
        (
            "Phelps:b1",
            Box::new(|| run(suite::astar().cpu, Mode::Phelps(PhelpsFeatures::b1_only()))),
        ),
        (
            "Phelps:b1->s1",
            Box::new(|| {
                run(
                    suite::astar().cpu,
                    Mode::Phelps(PhelpsFeatures::b1_with_stores()),
                )
            }),
        ),
        (
            "Phelps:b1->b2",
            Box::new(|| {
                run(
                    suite::astar().cpu,
                    Mode::Phelps(PhelpsFeatures::no_stores()),
                )
            }),
        ),
        (
            "Phelps:b1->b2->s1",
            Box::new(|| run(suite::astar().cpu, Mode::Phelps(PhelpsFeatures::full()))),
        ),
    ];

    let mut rows = Vec::new();
    for (name, f) in configs {
        let r = f();
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", r.stats.ipc()),
            pct(speedup(&base.stats, &r.stats)),
            format!("{:.1}", r.stats.mpki()),
        ]);
    }
    print_table(
        "Fig. 11: astar top region — Phelps vs Branch Runahead",
        &["config", "IPC", "speedup", "MPKI"],
        &rows,
    );
    println!(
        "\npaper shape: full Phelps > BR-spec > BR-non-spec; ablation MPKI\n\
         ordering full < b1->b2 < b1 ~ b1->s1 (29.5 -> 2.68/13.4/22.9/24.5)."
    );
}
