//! Fig. 15 — (a) Sensitivity to window size and pipeline depth;
//! (b) bfs speedups on different inputs.
//!
//! Paper shape: (a) bc and bfs show even higher speedups at ROB 1024
//! (which the baseline cannot utilize due to frequent squashes), and
//! speedups grow with pipeline depth (astar 15/22/27%, bfs 64/70/74%,
//! bc 63/71/79% at depths 11/15/19); (b) the road-network input benefits
//! most; inputs with ineligible phases benefit less.

use phelps::sim::{Mode, PhelpsFeatures};
use phelps_bench::runner::{parse_cli, Experiment, MatrixResults};
use phelps_bench::{pct, print_table};
use phelps_uarch::config::CoreConfig;
use phelps_uarch::stats::speedup;
use phelps_workloads::graph::GraphKind;
use phelps_workloads::suite;

const BENCHES: [&str; 3] = ["bc", "bfs", "astar"];

fn sweep_rows(res: &MatrixResults, tags: &[String]) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for name in BENCHES {
        let mut row = vec![name.to_string()];
        let mut any = false;
        for tag in tags {
            let base = res.get(name, &format!("base@{tag}"));
            let ph = res.get(name, &format!("phelps@{tag}"));
            any |= base.is_some() || ph.is_some();
            // `~` marks proxy-predicted cells (PHELPS_PROXY).
            row.push(match (base, ph) {
                (Some(b), Some(p)) => format!(
                    "{}{}",
                    pct(speedup(&b.stats, &p.stats)),
                    res.mark(name, &format!("phelps@{tag}"))
                ),
                _ => "n/a".into(),
            });
        }
        if any {
            rows.push(row);
        }
    }
    rows
}

fn main() {
    let opts = parse_cli();
    let mut exp = Experiment::new("fig15").with_cli(&opts);

    // (a1) Window-size sweep; (a2) pipeline-depth sweep.
    for name in BENCHES {
        let make = move || suite::gap_workload(name).expect("known workload").cpu;
        for rob in [316u32, 632, 1024] {
            let core = CoreConfig::paper_default().with_window(rob);
            exp.core_cell(
                name,
                &format!("base@rob{rob}"),
                Mode::Baseline,
                core.clone(),
                make,
            );
            exp.core_cell(
                name,
                &format!("phelps@rob{rob}"),
                Mode::Phelps(PhelpsFeatures::full()),
                core,
                make,
            );
        }
        for depth in [11u32, 15, 19] {
            let core = CoreConfig::paper_default().with_pipeline_stages(depth);
            exp.core_cell(
                name,
                &format!("base@depth{depth}"),
                Mode::Baseline,
                core.clone(),
                make,
            );
            exp.core_cell(
                name,
                &format!("phelps@depth{depth}"),
                Mode::Phelps(PhelpsFeatures::full()),
                core,
                make,
            );
        }
    }

    // (b) bfs inputs.
    let inputs = [
        ("road-net", GraphKind::RoadNetwork),
        ("power-law", GraphKind::PowerLaw),
        ("uniform", GraphKind::Uniform),
    ];
    for (label, kind) in inputs {
        let make = move || suite::bfs_on(kind, suite::GAP_VERTICES).cpu;
        let wl = format!("bfs:{label}");
        exp.sim_cell(&wl, "baseline", Mode::Baseline, make);
        exp.sim_cell(&wl, "phelps", Mode::Phelps(PhelpsFeatures::full()), make);
    }

    let res = exp.run();
    if opts.list {
        return;
    }

    let tags: Vec<String> = [316u32, 632, 1024]
        .iter()
        .map(|r| format!("rob{r}"))
        .collect();
    print_table(
        "Fig. 15a (window): Phelps speedup at ROB 316 / 632 / 1024",
        &["bench", "ROB=316", "ROB=632", "ROB=1024"],
        &sweep_rows(&res, &tags),
    );

    let tags: Vec<String> = [11u32, 15, 19]
        .iter()
        .map(|d| format!("depth{d}"))
        .collect();
    print_table(
        "Fig. 15a (depth): Phelps speedup at 11 / 15 / 19 stages",
        &["bench", "depth=11", "depth=15", "depth=19"],
        &sweep_rows(&res, &tags),
    );

    let mut rows = Vec::new();
    for (label, _) in inputs {
        let wl = format!("bfs:{label}");
        let (Some(base), Some(ph)) = (res.get(&wl, "baseline"), res.get(&wl, "phelps")) else {
            continue;
        };
        rows.push(vec![
            label.to_string(),
            format!("{:.1}{}", base.stats.mpki(), res.mark(&wl, "baseline")),
            format!(
                "{}{}",
                pct(speedup(&base.stats, &ph.stats)),
                res.mark(&wl, "phelps")
            ),
        ]);
    }
    print_table(
        "Fig. 15b: bfs on different inputs",
        &["input", "base MPKI", "Phelps speedup"],
        &rows,
    );
}
