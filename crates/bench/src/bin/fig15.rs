//! Fig. 15 — (a) Sensitivity to window size and pipeline depth;
//! (b) bfs speedups on different inputs.
//!
//! Paper shape: (a) bc and bfs show even higher speedups at ROB 1024
//! (which the baseline cannot utilize due to frequent squashes), and
//! speedups grow with pipeline depth (astar 15/22/27%, bfs 64/70/74%,
//! bc 63/71/79% at depths 11/15/19); (b) the road-network input benefits
//! most; inputs with ineligible phases benefit less.

use phelps::sim::{Mode, PhelpsFeatures};
use phelps_bench::{pct, print_table, run_with_core, WorkloadSet};
use phelps_uarch::config::CoreConfig;
use phelps_uarch::stats::speedup;
use phelps_workloads::graph::GraphKind;
use phelps_workloads::suite;

fn main() {
    let benches: WorkloadSet = vec![
        ("bc", Box::new(suite::bc)),
        ("bfs", Box::new(suite::bfs)),
        ("astar", Box::new(suite::astar)),
    ];

    // (a1) Window-size sweep.
    let mut rows = Vec::new();
    for (name, make) in &benches {
        let mut row = vec![name.to_string()];
        for rob in [316u32, 632, 1024] {
            let core = CoreConfig::paper_default().with_window(rob);
            let base = run_with_core(make().cpu, Mode::Baseline, core.clone());
            let ph = run_with_core(make().cpu, Mode::Phelps(PhelpsFeatures::full()), core);
            row.push(pct(speedup(&base.stats, &ph.stats)));
        }
        rows.push(row);
    }
    print_table(
        "Fig. 15a (window): Phelps speedup at ROB 316 / 632 / 1024",
        &["bench", "ROB=316", "ROB=632", "ROB=1024"],
        &rows,
    );

    // (a2) Pipeline-depth sweep.
    let mut rows = Vec::new();
    for (name, make) in &benches {
        let mut row = vec![name.to_string()];
        for depth in [11u32, 15, 19] {
            let core = CoreConfig::paper_default().with_pipeline_stages(depth);
            let base = run_with_core(make().cpu, Mode::Baseline, core.clone());
            let ph = run_with_core(make().cpu, Mode::Phelps(PhelpsFeatures::full()), core);
            row.push(pct(speedup(&base.stats, &ph.stats)));
        }
        rows.push(row);
    }
    print_table(
        "Fig. 15a (depth): Phelps speedup at 11 / 15 / 19 stages",
        &["bench", "depth=11", "depth=15", "depth=19"],
        &rows,
    );

    // (b) bfs inputs.
    let inputs = [
        ("road-net", GraphKind::RoadNetwork),
        ("power-law", GraphKind::PowerLaw),
        ("uniform", GraphKind::Uniform),
    ];
    let mut rows = Vec::new();
    for (name, kind) in inputs {
        let make = || suite::bfs_on(kind, suite::GAP_VERTICES);
        let base = run_with_core(make().cpu, Mode::Baseline, CoreConfig::paper_default());
        let ph = run_with_core(
            make().cpu,
            Mode::Phelps(PhelpsFeatures::full()),
            CoreConfig::paper_default(),
        );
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", base.stats.mpki()),
            pct(speedup(&base.stats, &ph.stats)),
        ]);
    }
    print_table(
        "Fig. 15b: bfs on different inputs",
        &["input", "base MPKI", "Phelps speedup"],
        &rows,
    );
}
