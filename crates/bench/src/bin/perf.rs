//! Simulator-throughput trajectory: simulated MIPS per mode on
//! representative workloads, written as `BENCH_perf.json` so every PR's
//! speed impact is visible in CI (ROADMAP item 2's baseline, and the
//! denominator behind `phelps-serve` throughput claims).
//!
//! Usage: `perf [--out=PATH]`. Region/epoch scale via `PHELPS_REGION` /
//! `PHELPS_EPOCH` as everywhere else. The cell set is fixed and small —
//! one graph kernel (bfs), the paper's running example (astar), and one
//! SPEC idiom (mcf) — under the three headline engines (baseline,
//! Phelps, Branch Runahead), plus one checkpoint-sharded baseline run
//! (`shards=4` on 4 workers) so the wall-clock payoff of splitting a
//! single run is tracked PR-to-PR against its unsharded sibling, and one
//! two-tenant co-run cell (bfs vs. the uniform-graph neighbor) tracking
//! the shared-uncore engine's throughput.

use phelps::sim::{simulate_corun_pair, Mode, PhelpsFeatures, RunConfig, SimResult};
use phelps_bench::runner::Experiment;
use phelps_bench::shard::run_sharded_with;
use phelps_bench::{ckpt_support, exp_config, print_table, run, run_br, ProxyMode};
use phelps_isa::Cpu;
use phelps_runahead::BrVariant;
use phelps_workloads::suite;
use std::path::PathBuf;
use std::time::Instant;

const WORKLOADS: [&str; 3] = ["bfs", "astar", "mcf"];
const MODES: [&str; 3] = ["baseline", "phelps", "br"];
/// Shard decomposition and worker count for the sharded trajectory cell.
const SHARDED: usize = 4;

fn workload(name: &str) -> Cpu {
    suite::gap_workload(name)
        .or_else(|| suite::spec_workload(name))
        .expect("known workload")
        .cpu
}

fn simulate_mode(mode: &str, cpu: Cpu) -> SimResult {
    match mode {
        "baseline" => run(cpu, Mode::Baseline),
        "phelps" => run(cpu, Mode::Phelps(PhelpsFeatures::full())),
        "br" => run_br(cpu, BrVariant::Speculative),
        other => unreachable!("unknown mode {other}"),
    }
}

struct Cell {
    workload: String,
    mode: String,
    shards: usize,
    insts: u64,
    cycles: u64,
    wall_ms: f64,
    mips: f64,
}

/// The proxy-triage trajectory cell: how much of a fig11-shaped matrix
/// the learned proxy lets the runner skip, and the wall-clock payoff.
struct TriageCell {
    cells: usize,
    simulated: usize,
    predicted: usize,
    full_wall_ms: f64,
    triage_wall_ms: f64,
}

/// Region/epoch for the triage trajectory matrix: fixed and small so
/// the cell tracks triage overhead, not simulation throughput (the MIPS
/// cells above already track that).
const TRIAGE_REGION: u64 = 60_000;
const TRIAGE_EPOCH: u64 = 15_000;

/// The fig11 column set (one anchor + six candidates) on tiny regions.
fn triage_matrix(workloads: &[&'static str], cache: PathBuf) -> Experiment {
    let mut exp = Experiment::new("perf-proxy")
        .cache_dir(Some(cache))
        .quiet(true);
    let modes = [
        ("baseline", Mode::Baseline),
        ("perfbp", Mode::PerfectBp),
        ("partition", Mode::PartitionOnly),
        ("phelps-b1", Mode::Phelps(PhelpsFeatures::b1_only())),
        (
            "phelps-b1s1",
            Mode::Phelps(PhelpsFeatures::b1_with_stores()),
        ),
        ("phelps-b1b2", Mode::Phelps(PhelpsFeatures::no_stores())),
        ("phelps-full", Mode::Phelps(PhelpsFeatures::full())),
    ];
    for &name in workloads {
        let make = move || suite::gap_workload(name).expect("known workload").cpu;
        for (config, mode) in modes.clone() {
            exp.cfg_cell(
                name,
                config,
                RunConfig::quick(mode, TRIAGE_REGION, TRIAGE_EPOCH),
                make,
            );
        }
    }
    exp
}

/// Simulates the training matrix, trains a proxy model from its cache,
/// then re-runs the astar fig11 subset under `ProxyMode::Triage`
/// against a cold cache. Returns `None` (omitting the trajectory cell)
/// if anything in the pipeline degrades — the MIPS cells must survive.
fn triage_cell() -> Option<TriageCell> {
    let scratch = std::env::temp_dir().join(format!("phelps-perf-proxy-{}", std::process::id()));
    let warm = scratch.join("warm");
    let cold = scratch.join("cold");
    let _ = std::fs::remove_dir_all(&scratch);

    // Full pass over the astar subset (timed) plus bfs (training data).
    let t0 = Instant::now();
    let full = triage_matrix(&["astar"], warm.clone()).run();
    let full_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    triage_matrix(&["bfs"], warm.clone()).run();

    let (examples, _) = phelps_proxy::build_examples(&phelps_proxy::scan(&warm));
    let model = match phelps_proxy::train_from_examples(&examples, 42, 4) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("warning: perf proxy cell skipped: {e}");
            let _ = std::fs::remove_dir_all(&scratch);
            return None;
        }
    };
    let model_path = scratch.join("model.json");
    if let Err(e) = model.save(&model_path) {
        eprintln!("warning: perf proxy cell skipped: {e}");
        let _ = std::fs::remove_dir_all(&scratch);
        return None;
    }

    let t0 = Instant::now();
    let triaged = triage_matrix(&["astar"], cold)
        .proxy(ProxyMode::Triage, model_path)
        .run();
    let triage_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let _ = std::fs::remove_dir_all(&scratch);
    Some(TriageCell {
        cells: full.cells.len(),
        simulated: triaged.simulated,
        predicted: triaged.predicted,
        full_wall_ms,
        triage_wall_ms,
    })
}

fn cell(workload: &str, mode: &str, shards: usize, r: &SimResult, secs: f64) -> Cell {
    let insts = r.stats.mt_retired;
    Cell {
        workload: workload.to_string(),
        mode: mode.to_string(),
        shards,
        insts,
        cycles: r.stats.cycles,
        wall_ms: secs * 1e3,
        mips: if secs > 0.0 {
            insts as f64 / 1e6 / secs
        } else {
            0.0
        },
    }
}

fn main() {
    let mut out_path = String::from("BENCH_perf.json");
    for a in std::env::args().skip(1) {
        if let Some(v) = a.strip_prefix("--out=") {
            out_path = v.to_string();
        }
    }

    let mut cells = Vec::new();
    let wall = Instant::now();
    for w in WORKLOADS {
        for mode in MODES {
            // Workload construction (functional emulation) is untimed:
            // the trajectory tracks the cycle-level engine, not setup.
            let cpu = workload(w);
            let t0 = Instant::now();
            let r = simulate_mode(mode, cpu);
            cells.push(cell(w, mode, 1, &r, t0.elapsed().as_secs_f64()));
        }
    }

    // Sharded cell: the same bfs/baseline run split into SHARDED
    // checkpoint shards on SHARDED workers. Checkpoint capture is
    // untimed (it is a one-off per store, amortized across every later
    // run), so the timed span is restore + parallel simulate + merge —
    // the steady-state cost. Compare against the unsharded bfs/baseline
    // row for the wall-clock speedup.
    {
        let cfg = exp_config(Mode::Baseline);
        let ckpt = ckpt_support::CkptPolicy::from_env();
        let cpu = workload("bfs");
        let starts: Vec<u64> = phelps_bench::shard::shard_plan(cfg.max_mt_insts, SHARDED)
            .iter()
            .map(|s| s.skip)
            .collect();
        if let Err(e) =
            ckpt_support::ensure_region_checkpoints_with(&ckpt, "bfs", cpu.clone(), &starts)
        {
            eprintln!("warning: perf shard pre-capture failed: {e}");
        }
        let t0 = Instant::now();
        let r = run_sharded_with(&ckpt, SHARDED, SHARDED, "bfs", cpu, &cfg, None);
        let secs = t0.elapsed().as_secs_f64();
        match r {
            Some(r) => cells.push(cell("bfs", "baseline", SHARDED, &r, secs)),
            None => eprintln!("warning: sharded perf cell failed; omitting it"),
        }
    }

    // Co-run cell: the two-tenant shared-uncore engine stepping bfs
    // against the uniform-graph neighbor, both baseline. The MIPS
    // numerator counts both tenants' retired instructions (the engine
    // simulates two cores per wall-clock second), and the cycle count is
    // the pair's makespan. Keyed (bfs, corun, 1) in the drift check.
    {
        let cfg = exp_config(Mode::Baseline);
        let peer_cfg = exp_config(Mode::Baseline);
        let cpu = workload("bfs");
        let peer = suite::uniform_bfs(suite::GAP_VERTICES, 0xc0417).cpu;
        let t0 = Instant::now();
        let [primary, neighbor] = simulate_corun_pair(cpu, &cfg, peer, &peer_cfg);
        let secs = t0.elapsed().as_secs_f64();
        let insts = primary.stats.mt_retired + neighbor.stats.mt_retired;
        cells.push(Cell {
            workload: "bfs".to_string(),
            mode: "corun".to_string(),
            shards: 1,
            insts,
            cycles: primary.stats.cycles.max(neighbor.stats.cycles),
            wall_ms: secs * 1e3,
            mips: if secs > 0.0 {
                insts as f64 / 1e6 / secs
            } else {
                0.0
            },
        });
    }

    let proxy = triage_cell();

    let mut json = phelps_telemetry::JsonWriter::new();
    json.begin_object();
    json.key("schema");
    json.string("phelps-bench-perf/4");
    json.key("region");
    json.uint(phelps_bench::region_len());
    json.key("epoch");
    json.uint(phelps_bench::epoch_len());
    json.key("cells");
    json.begin_array();
    let mut rows = Vec::new();
    for c in &cells {
        json.begin_object();
        json.key("workload");
        json.string(&c.workload);
        json.key("mode");
        json.string(&c.mode);
        json.key("shards");
        json.uint(c.shards as u64);
        json.key("insts");
        json.uint(c.insts);
        json.key("cycles");
        json.uint(c.cycles);
        json.key("wall_ms");
        json.float(c.wall_ms);
        json.key("mips");
        json.float(c.mips);
        json.end_object();
        rows.push(vec![
            c.workload.clone(),
            c.mode.clone(),
            c.shards.to_string(),
            c.insts.to_string(),
            format!("{:.1}", c.wall_ms),
            format!("{:.3}", c.mips),
        ]);
    }
    json.end_array();
    if let Some(t) = &proxy {
        json.key("proxy");
        json.begin_object();
        json.key("cells");
        json.uint(t.cells as u64);
        json.key("simulated");
        json.uint(t.simulated as u64);
        json.key("predicted");
        json.uint(t.predicted as u64);
        json.key("full_wall_ms");
        json.float(t.full_wall_ms);
        json.key("triage_wall_ms");
        json.float(t.triage_wall_ms);
        json.end_object();
    }
    json.key("total_wall_ms");
    json.float(wall.elapsed().as_secs_f64() * 1e3);
    json.end_object();

    let text = json.finish();
    phelps_telemetry::parse_json(&text).expect("perf JSON must be well-formed");
    if let Err(e) = std::fs::write(&out_path, &text) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    print_table(
        "simulator throughput (simulated MIPS)",
        &["workload", "mode", "shards", "insts", "wall_ms", "mips"],
        &rows,
    );
    if let Some(t) = &proxy {
        println!(
            "proxy triage (fig11 subset): simulated {}/{} cells \
             ({} predicted; full {:.1}ms -> triage {:.1}ms)",
            t.simulated, t.cells, t.predicted, t.full_wall_ms, t.triage_wall_ms
        );
    }
    println!("[perf] wrote {out_path}");
}
