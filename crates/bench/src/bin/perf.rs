//! Simulator-throughput trajectory: simulated MIPS per mode on
//! representative workloads, written as `BENCH_perf.json` so every PR's
//! speed impact is visible in CI (ROADMAP item 2's baseline, and the
//! denominator behind `phelps-serve` throughput claims).
//!
//! Usage: `perf [--out=PATH]`. Region/epoch scale via `PHELPS_REGION` /
//! `PHELPS_EPOCH` as everywhere else. The cell set is fixed and small —
//! one graph kernel (bfs), the paper's running example (astar), and one
//! SPEC idiom (mcf) — under the three headline engines (baseline,
//! Phelps, Branch Runahead), so the numbers are comparable PR-to-PR.

use phelps::sim::{Mode, PhelpsFeatures, SimResult};
use phelps_bench::{print_table, run, run_br};
use phelps_isa::Cpu;
use phelps_runahead::BrVariant;
use phelps_workloads::suite;
use std::time::Instant;

const WORKLOADS: [&str; 3] = ["bfs", "astar", "mcf"];
const MODES: [&str; 3] = ["baseline", "phelps", "br"];

fn workload(name: &str) -> Cpu {
    suite::gap_workload(name)
        .or_else(|| suite::spec_workload(name))
        .expect("known workload")
        .cpu
}

fn simulate_mode(mode: &str, cpu: Cpu) -> SimResult {
    match mode {
        "baseline" => run(cpu, Mode::Baseline),
        "phelps" => run(cpu, Mode::Phelps(PhelpsFeatures::full())),
        "br" => run_br(cpu, BrVariant::Speculative),
        other => unreachable!("unknown mode {other}"),
    }
}

fn main() {
    let mut out_path = String::from("BENCH_perf.json");
    for a in std::env::args().skip(1) {
        if let Some(v) = a.strip_prefix("--out=") {
            out_path = v.to_string();
        }
    }

    let mut json = phelps_telemetry::JsonWriter::new();
    json.begin_object();
    json.key("schema");
    json.string("phelps-bench-perf/1");
    json.key("region");
    json.uint(phelps_bench::region_len());
    json.key("epoch");
    json.uint(phelps_bench::epoch_len());
    json.key("cells");
    json.begin_array();

    let mut rows = Vec::new();
    let wall = Instant::now();
    for w in WORKLOADS {
        for mode in MODES {
            // Workload construction (functional emulation) is untimed:
            // the trajectory tracks the cycle-level engine, not setup.
            let cpu = workload(w);
            let t0 = Instant::now();
            let r = simulate_mode(mode, cpu);
            let secs = t0.elapsed().as_secs_f64();
            let insts = r.stats.mt_retired;
            let mips = if secs > 0.0 {
                insts as f64 / 1e6 / secs
            } else {
                0.0
            };
            json.begin_object();
            json.key("workload");
            json.string(w);
            json.key("mode");
            json.string(mode);
            json.key("insts");
            json.uint(insts);
            json.key("cycles");
            json.uint(r.stats.cycles);
            json.key("wall_ms");
            json.float(secs * 1e3);
            json.key("mips");
            json.float(mips);
            json.end_object();
            rows.push(vec![
                w.to_string(),
                mode.to_string(),
                insts.to_string(),
                format!("{:.1}", secs * 1e3),
                format!("{mips:.3}"),
            ]);
        }
    }
    json.end_array();
    json.key("total_wall_ms");
    json.float(wall.elapsed().as_secs_f64() * 1e3);
    json.end_object();

    let text = json.finish();
    phelps_telemetry::parse_json(&text).expect("perf JSON must be well-formed");
    if let Err(e) = std::fs::write(&out_path, &text) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    print_table(
        "simulator throughput (simulated MIPS)",
        &["workload", "mode", "insts", "wall_ms", "mips"],
        &rows,
    );
    println!("[perf] wrote {out_path}");
}
