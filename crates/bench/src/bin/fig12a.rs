//! Fig. 12a — Speedups of perfect branch prediction, Phelps, Branch
//! Runahead, and BR-12w over the baseline, across GAP + astar and the
//! SPEC2017-like kernels.
//!
//! Paper shape: Phelps yields large speedups on bc/bfs and a solid one on
//! astar; BR shows mostly slowdowns except astar; BR-12w turns things
//! around; SPEC2017-like kernels see little activation.

use phelps_bench::runner::{parse_cli, Experiment, MatrixResults};
use phelps_bench::{pct, print_table, Config12a};
use phelps_uarch::stats::speedup;
use phelps_workloads::suite;

fn speedup_rows(res: &MatrixResults, names: &[&str], configs: &[Config12a]) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for name in names {
        let base = res.get(name, Config12a::Baseline.label());
        let mut row = vec![
            name.to_string(),
            base.map_or_else(
                || "n/a".into(),
                // `~` marks proxy-predicted cells (PHELPS_PROXY).
                |b| {
                    format!(
                        "{:.3}{}",
                        b.stats.ipc(),
                        res.mark(name, Config12a::Baseline.label())
                    )
                },
            ),
        ];
        let mut any = base.is_some();
        for cfg in configs {
            let cell = res.get(name, cfg.label());
            any |= cell.is_some();
            row.push(match (base, cell) {
                (Some(b), Some(r)) => format!(
                    "{}{}",
                    pct(speedup(&b.stats, &r.stats)),
                    res.mark(name, cfg.label())
                ),
                _ => "n/a".into(),
            });
        }
        if any {
            rows.push(row);
        }
    }
    rows
}

fn main() {
    let opts = parse_cli();
    let mut exp = Experiment::new("fig12a").with_cli(&opts);
    // Per-cell workload factories: each cell builds exactly the one
    // workload it runs (no per-config suite rebuild).
    for name in suite::gap_names() {
        let make = move || suite::gap_workload(name).expect("known workload").cpu;
        for cfg in [
            Config12a::Baseline,
            Config12a::PerfBp,
            Config12a::Phelps,
            Config12a::Br,
            Config12a::Br12w,
        ] {
            cfg.add_cell(&mut exp, name, make);
        }
    }
    for name in suite::spec_names() {
        let make = move || suite::spec_workload(name).expect("known workload").cpu;
        for cfg in [Config12a::Baseline, Config12a::PerfBp, Config12a::Phelps] {
            cfg.add_cell(&mut exp, name, make);
        }
    }
    let res = exp.run();
    if opts.list {
        return;
    }

    let rows = speedup_rows(
        &res,
        suite::gap_names(),
        &[
            Config12a::PerfBp,
            Config12a::Phelps,
            Config12a::Br,
            Config12a::Br12w,
        ],
    );
    let headers = ["bench", "base IPC", "perfBP", "Phelps", "BR", "BR-12w"];
    print_table(
        "Fig. 12a (GAP + astar): speedups over baseline",
        &headers,
        &rows,
    );
    phelps_bench::write_csv("fig12a_gap", &headers, &rows);

    let rows = speedup_rows(
        &res,
        suite::spec_names(),
        &[Config12a::PerfBp, Config12a::Phelps],
    );
    print_table(
        "Fig. 12a (SPEC2017-like): speedups over baseline",
        &["bench", "base IPC", "perfBP", "Phelps"],
        &rows,
    );
    println!("\npaper shape: Phelps rarely activates on SPEC2017 (see fig14).");
}
