//! Fig. 12a — Speedups of perfect branch prediction, Phelps, Branch
//! Runahead, and BR-12w over the baseline, across GAP + astar and the
//! SPEC2017-like kernels.
//!
//! Paper shape: Phelps yields large speedups on bc/bfs and a solid one on
//! astar; BR shows mostly slowdowns except astar; BR-12w turns things
//! around; SPEC2017-like kernels see little activation.

use phelps_bench::{pct, print_table, Config12a, WorkloadSet};
use phelps_uarch::stats::speedup;
use phelps_workloads::{suite, Workload};

fn bench(make: &dyn Fn() -> Workload, rows: &mut Vec<Vec<String>>) {
    let name = make().name;
    let base = Config12a::Baseline.run(make().cpu);
    let mut row = vec![name.to_string(), format!("{:.3}", base.stats.ipc())];
    for cfg in [
        Config12a::PerfBp,
        Config12a::Phelps,
        Config12a::Br,
        Config12a::Br12w,
    ] {
        let r = cfg.run(make().cpu);
        row.push(pct(speedup(&base.stats, &r.stats)));
    }
    rows.push(row);
}

fn main() {
    let gap: WorkloadSet = vec![
        ("bc", Box::new(suite::bc)),
        ("bfs", Box::new(suite::bfs)),
        ("pr", Box::new(suite::pr)),
        ("cc", Box::new(suite::cc)),
        ("cc_sv", Box::new(suite::cc_sv)),
        ("sssp", Box::new(suite::sssp)),
        ("tc", Box::new(suite::tc)),
        ("astar", Box::new(suite::astar)),
    ];
    let mut rows = Vec::new();
    for (_, make) in &gap {
        bench(make.as_ref(), &mut rows);
    }
    let headers = ["bench", "base IPC", "perfBP", "Phelps", "BR", "BR-12w"];
    print_table(
        "Fig. 12a (GAP + astar): speedups over baseline",
        &headers,
        &rows,
    );
    phelps_bench::write_csv("fig12a_gap", &headers, &rows);

    let mut rows = Vec::new();
    for w in suite::spec_suite() {
        let name = w.name;
        // Rebuild per config: prepared CPUs are single-use.
        let rebuild = || {
            suite::spec_suite()
                .into_iter()
                .find(|x| x.name == name)
                .expect("known workload")
        };
        let base = Config12a::Baseline.run(rebuild().cpu);
        let mut row = vec![name.to_string(), format!("{:.3}", base.stats.ipc())];
        for cfg in [Config12a::PerfBp, Config12a::Phelps] {
            let r = cfg.run(rebuild().cpu);
            row.push(pct(speedup(&base.stats, &r.stats)));
        }
        rows.push(row);
    }
    print_table(
        "Fig. 12a (SPEC2017-like): speedups over baseline",
        &["bench", "base IPC", "perfBP", "Phelps"],
        &rows,
    );
    println!("\npaper shape: Phelps rarely activates on SPEC2017 (see fig14).");
}
