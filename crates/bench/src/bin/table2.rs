//! Table II — storage costs of Phelps' new components.
//!
//! Regenerates the paper's cost table from the component parameters; the
//! paper's total is 10.82 KB. The table is purely analytic (no
//! simulation), so the experiment matrix is empty — the binary still
//! accepts the standard runner flags (`--list`, `--only`) for interface
//! uniformity with the other figure binaries.

use phelps::budget::{cost_breakdown, total_cost_bytes, ComponentParams};
use phelps_bench::print_table;
use phelps_bench::runner::{parse_cli, Experiment};

fn main() {
    let opts = parse_cli();
    let exp = Experiment::new("table2").with_cli(&opts).quiet(true);
    let _ = exp.run();
    if opts.list {
        return;
    }

    let params = ComponentParams::paper_default();
    let rows: Vec<Vec<String>> = cost_breakdown(&params)
        .into_iter()
        .map(|l| vec![l.component.to_string(), format!("{} B", l.bytes)])
        .collect();
    print_table("Table II: new components", &["component", "cost"], &rows);
    let total = total_cost_bytes(&params);
    println!(
        "\ntotal: {} B = {:.2} KB (paper: 10.82 KB)",
        total,
        total as f64 / 1024.0
    );
}
