//! Fig. 15-style co-run study — Phelps under a contending neighbor.
//!
//! The paper's helper threads steal shared L2/L3/DRAM bandwidth from
//! their own main thread; this experiment asks the cross-core version of
//! that question: how much of Phelps' pre-execution win survives when a
//! memory-intensive neighbor tenant contends for the same uncore?
//!
//! Each benchmark runs solo and co-scheduled (shared L2/L3 ports + DRAM
//! queue, deterministic tenant-id arbitration) against bfs on a seeded
//! uniform-random graph — the input whose lack of locality makes it the
//! most aggressive bandwidth consumer in the suite. Reported per
//! benchmark: baseline and Phelps co-run slowdowns vs. their solo runs,
//! the Phelps-over-baseline speedup in both settings, and the primary
//! tenant's attributed share of DRAM-queue contention.

use phelps::sim::{Mode, PhelpsFeatures};
use phelps_bench::runner::{parse_cli, Experiment, MatrixResults};
use phelps_bench::{exp_config, pct, print_table, write_csv};
use phelps_uarch::stats::speedup;
use phelps_workloads::suite;

const BENCHES: [&str; 3] = ["bfs", "bc", "astar"];
/// The contending neighbor: decorrelated from the suite seed so the
/// tenants never walk correlated address streams.
const PEER_SEED: u64 = 0xc0417;

fn peer_name() -> &'static str {
    "bfs_uniform"
}

fn make_peer() -> phelps_isa::Cpu {
    suite::uniform_bfs(suite::GAP_VERTICES, PEER_SEED).cpu
}

fn rows(res: &MatrixResults) -> Vec<Vec<String>> {
    let mut out = Vec::new();
    for name in BENCHES {
        let cells = (
            res.get(name, "base-solo"),
            res.get(name, "base-corun"),
            res.get(name, "phelps-solo"),
            res.get(name, "phelps-corun"),
        );
        let (Some(bs), Some(bc), Some(ps), Some(pc)) = cells else {
            continue;
        };
        out.push(vec![
            name.to_string(),
            format!("{:.3}", bs.stats.ipc()),
            pct(speedup(&bc.stats, &bs.stats)),
            pct(speedup(&pc.stats, &ps.stats)),
            pct(speedup(&bs.stats, &ps.stats)),
            format!(
                "{}{}",
                pct(speedup(&bc.stats, &pc.stats)),
                res.mark(name, "phelps-corun")
            ),
            format!(
                "{}",
                pc.stats.l2_port_stalls + pc.stats.l3_port_stalls + pc.stats.dram_queue_stalls
            ),
        ]);
    }
    out
}

fn main() {
    let opts = parse_cli();
    let mut exp = Experiment::new("fig_corun").with_cli(&opts);

    for name in BENCHES {
        let make = move || suite::gap_workload(name).expect("known workload").cpu;
        // Solo cells share their cache entries with the other figures.
        exp.sim_cell(name, "base-solo", Mode::Baseline, make);
        exp.sim_cell(
            name,
            "phelps-solo",
            Mode::Phelps(PhelpsFeatures::full()),
            make,
        );
        let peer_cfg = exp_config(Mode::Baseline);
        exp.corun_cell(
            name,
            "base-corun",
            exp_config(Mode::Baseline),
            make,
            peer_name(),
            peer_cfg.clone(),
            make_peer,
        );
        exp.corun_cell(
            name,
            "phelps-corun",
            exp_config(Mode::Phelps(PhelpsFeatures::full())),
            make,
            peer_name(),
            peer_cfg,
            make_peer,
        );
    }

    let res = exp.run();
    if opts.list {
        return;
    }

    let headers = [
        "bench",
        "solo IPC",
        "base slowdown",
        "Phelps slowdown",
        "Phelps solo",
        "Phelps corun",
        "uncore stalls",
    ];
    let rows = rows(&res);
    print_table(
        &format!("Co-run vs. {} neighbor (shared uncore)", peer_name()),
        &headers,
        &rows,
    );
    println!(
        "\nslowdown columns: cycles lost co-running vs. the same config solo \
         (positive = the neighbor cost throughput); Phelps solo/corun: \
         speedup over the baseline in the same setting; uncore stalls: \
         shared-port + DRAM-queue delay cycles attributed to the primary \
         tenant."
    );
    write_csv("fig_corun", &headers, &rows);
}
