//! Fig. 12b — Phelps with and without helper-thread stores.
//!
//! Paper shape: predicated stores are critical on bc and astar (stores
//! both influence and are control-dependent on delinquent branches); bfs
//! loses a little accuracy without stores but gains timeliness.

use phelps::sim::{Mode, PhelpsFeatures};
use phelps_bench::runner::{parse_cli, Experiment};
use phelps_bench::{pct, print_table};
use phelps_uarch::stats::speedup;
use phelps_workloads::suite;

fn main() {
    let opts = parse_cli();
    let mut exp = Experiment::new("fig12b").with_cli(&opts);
    for name in suite::gap_names() {
        let make = move || suite::gap_workload(name).expect("known workload").cpu;
        exp.sim_cell(name, "baseline", Mode::Baseline, make);
        exp.sim_cell(
            name,
            "with-stores",
            Mode::Phelps(PhelpsFeatures::full()),
            make,
        );
        exp.sim_cell(
            name,
            "no-stores",
            Mode::Phelps(PhelpsFeatures::no_stores()),
            make,
        );
    }
    let res = exp.run();
    if opts.list {
        return;
    }

    let mut rows = Vec::new();
    for name in suite::gap_names() {
        let (Some(base), Some(with), Some(without)) = (
            res.get(name, "baseline"),
            res.get(name, "with-stores"),
            res.get(name, "no-stores"),
        ) else {
            continue;
        };
        // `~` marks proxy-predicted cells (PHELPS_PROXY).
        rows.push(vec![
            name.to_string(),
            format!(
                "{}{}",
                pct(speedup(&base.stats, &with.stats)),
                res.mark(name, "with-stores")
            ),
            format!(
                "{}{}",
                pct(speedup(&base.stats, &without.stats)),
                res.mark(name, "no-stores")
            ),
        ]);
    }
    print_table(
        "Fig. 12b: Phelps speedup with / without stores",
        &["bench", "with stores", "without stores"],
        &rows,
    );
}
