//! Fig. 12b — Phelps with and without helper-thread stores.
//!
//! Paper shape: predicated stores are critical on bc and astar (stores
//! both influence and are control-dependent on delinquent branches); bfs
//! loses a little accuracy without stores but gains timeliness.

use phelps::sim::{Mode, PhelpsFeatures};
use phelps_bench::{pct, print_table, run, WorkloadSet};
use phelps_uarch::stats::speedup;
use phelps_workloads::suite;

fn main() {
    let benches: WorkloadSet = vec![
        ("bc", Box::new(suite::bc)),
        ("bfs", Box::new(suite::bfs)),
        ("pr", Box::new(suite::pr)),
        ("cc", Box::new(suite::cc)),
        ("cc_sv", Box::new(suite::cc_sv)),
        ("sssp", Box::new(suite::sssp)),
        ("tc", Box::new(suite::tc)),
        ("astar", Box::new(suite::astar)),
    ];
    let mut rows = Vec::new();
    for (name, make) in &benches {
        let base = run(make().cpu, Mode::Baseline);
        let with = run(make().cpu, Mode::Phelps(PhelpsFeatures::full()));
        let without = run(make().cpu, Mode::Phelps(PhelpsFeatures::no_stores()));
        rows.push(vec![
            name.to_string(),
            pct(speedup(&base.stats, &with.stats)),
            pct(speedup(&base.stats, &without.stats)),
        ]);
    }
    print_table(
        "Fig. 12b: Phelps speedup with / without stores",
        &["bench", "with stores", "without stores"],
        &rows,
    );
}
