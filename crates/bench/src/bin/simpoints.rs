//! SimPoint methodology demo (paper §VI): profile a benchmark, select up
//! to five representative regions, simulate each region as a shard on the
//! `PHELPS_JOBS` thread pool, and aggregate with the weighted harmonic
//! mean of IPCs — the paper's per-benchmark reporting method.
//!
//! The whole evaluation runs through [`phelps_bench::run_simpoints_with`]:
//! profiling and checkpoint pre-capture happen sequentially up front, the
//! per-region timing simulations fan out as shards, and the per-point
//! results fold through the associative merges into one stitched
//! `SimResult` per (workload, mode).
//!
//! Output is deterministic in `PHELPS_JOBS` — stdout and the
//! `--merged-out` JSON are byte-identical for any worker count. CI
//! enforces this (see `scripts/ci.sh`).

use phelps::sim::{Mode, PhelpsFeatures};
use phelps_bench::runner::cache;
use phelps_bench::{
    ckpt_support, epoch_len, exp_config, print_table, resolved_jobs, run_simpoints_with,
    SimPointRun,
};
use phelps_telemetry as tlm;
use phelps_workloads::simpoints::SimPointConfig;
use phelps_workloads::suite;

fn make_workload(workload: &str) -> phelps_isa::Cpu {
    match workload {
        "astar" => suite::astar().cpu,
        _ => suite::bfs().cpu,
    }
}

/// One evaluated (workload, mode) pair, kept for the `--merged-out` dump.
struct EvalRun {
    workload: &'static str,
    mode_label: &'static str,
    run: SimPointRun,
}

/// Serializes every merged run as one JSON document: per-run
/// weighted-hmean IPC, the merged stats/breakdown (cache body format),
/// and the merged telemetry report. Byte-identical across worker counts
/// by construction — the sharded-equals-sequential CI check diffs two of
/// these files.
fn merged_json(runs: &[EvalRun]) -> String {
    let mut j = String::from("{\"schema\":\"phelps-simpoints-merged/1\",\"runs\":[");
    let mut first = true;
    for er in runs {
        let Some(merged) = er.run.merged.as_ref() else {
            continue;
        };
        if !first {
            j.push(',');
        }
        first = false;
        j.push_str(&format!(
            "{{\"workload\":\"{}\",\"mode\":\"{}\",\"points\":{},\"hmean_ipc\":{:.6},{}",
            er.workload,
            er.mode_label,
            er.run.points.len(),
            er.run.hmean_ipc,
            cache::result_body_json(merged)
        ));
        if let Some(report) = merged.telemetry.as_deref() {
            j.push_str(&format!(",\"telemetry\":{}", report.to_json()));
        }
        j.push('}');
    }
    j.push_str("]}");
    j
}

fn main() {
    let mut merged_out: Option<String> = None;
    for arg in std::env::args().skip(1) {
        if let Some(path) = arg.strip_prefix("--merged-out=") {
            merged_out = Some(path.to_string());
        } else {
            eprintln!("usage: simpoints [--merged-out=PATH]");
            std::process::exit(2);
        }
    }

    let spcfg = SimPointConfig {
        interval_len: 200_000,
        max_points: 5,
        kmeans_iters: 12,
    };
    let profile = 4_000_000;
    let ckpt = ckpt_support::CkptPolicy::from_env();
    let workers = resolved_jobs();

    let modes: [(&'static str, Mode); 2] = [
        ("baseline", Mode::Baseline),
        ("phelps", Mode::Phelps(PhelpsFeatures::full())),
    ];
    let mut runs: Vec<EvalRun> = Vec::new();
    for name in ["astar", "bfs"] {
        for (mode_label, mode) in &modes {
            // A per-(workload, mode) telemetry label so the merged
            // reports in --merged-out are distinguishable; installed per
            // shard by the engine, after checkpoint positioning.
            let telemetry = merged_out.as_ref().map(|_| tlm::Config {
                epoch_len: epoch_len(),
                label: format!("simpoints/{name}/{mode_label}"),
                ..tlm::Config::default()
            });
            let run = run_simpoints_with(
                name,
                make_workload(name),
                &exp_config(mode.clone()),
                profile,
                &spcfg,
                &ckpt,
                workers,
                telemetry.as_ref(),
            );
            runs.push(EvalRun {
                workload: name,
                mode_label,
                run,
            });
        }
    }

    for pair in runs.chunks(2) {
        let [base, ph] = pair else { continue };
        let name = base.workload;
        let rows: Vec<Vec<String>> = base
            .run
            .points
            .iter()
            .map(|(p, r)| {
                vec![
                    format!("{}", p.phase),
                    format!("{}", p.start_inst),
                    format!("{:.3}", p.weight),
                    format!("{:.3}", r.stats.ipc()),
                ]
            })
            .collect();
        if rows.is_empty() && ph.run.points.is_empty() {
            continue;
        }
        print_table(
            &format!("{name}: SimPoints (baseline)"),
            &["phase", "start", "weight", "IPC"],
            &rows,
        );
        println!(
            "{name}: weighted-hmean IPC baseline {:.3}, Phelps {:.3} ({:+.1}%)",
            base.run.hmean_ipc,
            ph.run.hmean_ipc,
            (ph.run.hmean_ipc / base.run.hmean_ipc - 1.0) * 100.0
        );
    }

    if let Some(path) = merged_out {
        let json = merged_json(&runs);
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("error: writing {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("[simpoints] merged results -> {path}");
    }
    ckpt_support::print_summary();
}
