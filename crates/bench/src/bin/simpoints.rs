//! SimPoint methodology demo (paper §VI): profile a benchmark, select up
//! to five representative regions, simulate each under baseline and
//! Phelps, and aggregate with the weighted harmonic mean of IPCs — the
//! paper's per-benchmark reporting method.

use phelps::sim::{Mode, PhelpsFeatures};
use phelps_bench::{print_table, run_simpoints};
use phelps_workloads::simpoints::SimPointConfig;
use phelps_workloads::suite;

fn main() {
    let spcfg = SimPointConfig {
        interval_len: 200_000,
        max_points: 5,
        kmeans_iters: 12,
    };
    let profile = 4_000_000;

    for (name, make) in [
        (
            "astar",
            Box::new(|| suite::astar().cpu) as Box<dyn Fn() -> phelps_isa::Cpu>,
        ),
        ("bfs", Box::new(|| suite::bfs().cpu)),
    ] {
        let (base_ipc, base_pts) = run_simpoints(make.as_ref(), Mode::Baseline, profile, &spcfg);
        let (ph_ipc, _) = run_simpoints(
            make.as_ref(),
            Mode::Phelps(PhelpsFeatures::full()),
            profile,
            &spcfg,
        );
        let rows: Vec<Vec<String>> = base_pts
            .iter()
            .map(|(p, r)| {
                vec![
                    format!("{}", p.phase),
                    format!("{}", p.start_inst),
                    format!("{:.3}", p.weight),
                    format!("{:.3}", r.stats.ipc()),
                ]
            })
            .collect();
        print_table(
            &format!("{name}: SimPoints (baseline)"),
            &["phase", "start", "weight", "IPC"],
            &rows,
        );
        println!(
            "{name}: weighted-hmean IPC baseline {:.3}, Phelps {:.3} ({:+.1}%)",
            base_ipc,
            ph_ipc,
            (ph_ipc / base_ipc - 1.0) * 100.0
        );
    }
}
