//! SimPoint methodology demo (paper §VI): profile a benchmark, select up
//! to five representative regions, simulate each under baseline and
//! Phelps, and aggregate with the weighted harmonic mean of IPCs — the
//! paper's per-benchmark reporting method.
//!
//! Profiling (functional emulation + clustering) runs sequentially up
//! front; the per-region timing simulations then fan out as runner cells.

use phelps::sim::{Mode, PhelpsFeatures};
use phelps_bench::runner::{parse_cli, Experiment};
use phelps_bench::{ckpt_support, exp_config, print_table, run_simpoint_region};
use phelps_workloads::simpoints::{select_simpoints, SimPoint, SimPointConfig};
use phelps_workloads::suite;

fn make_workload(workload: &str) -> phelps_isa::Cpu {
    match workload {
        "astar" => suite::astar().cpu,
        _ => suite::bfs().cpu,
    }
}

fn region_cell(
    exp: &mut Experiment,
    workload: &'static str,
    prefix: &str,
    index: usize,
    p: SimPoint,
    mode: Mode,
) {
    let cfg = exp_config(mode.clone());
    exp.cell(
        workload,
        &format!("{prefix}@p{index}"),
        format!("{cfg:?}|skip={}", p.start_inst),
        move || run_simpoint_region(workload, make_workload(workload), &p, mode),
    );
}

fn main() {
    let opts = parse_cli();
    let spcfg = SimPointConfig {
        interval_len: 200_000,
        max_points: 5,
        kmeans_iters: 12,
    };
    let profile = 4_000_000;

    // Sequential profiling pass: pick each workload's regions, then
    // capture any missing region checkpoints in one forward pass per
    // workload so the parallel timing cells restore instead of each
    // re-fast-forwarding from instruction 0.
    let mut points: Vec<(&'static str, Vec<SimPoint>)> = Vec::new();
    for name in ["astar", "bfs"] {
        let pts = select_simpoints(make_workload(name), profile, &spcfg);
        let starts: Vec<u64> = pts.iter().map(|p| p.start_inst).collect();
        if let Err(e) = ckpt_support::ensure_region_checkpoints(name, make_workload(name), &starts)
        {
            eprintln!("warning: checkpoint pre-capture for {name} failed: {e}");
        }
        points.push((name, pts));
    }

    // Parallel timing pass: one cell per (workload, region, mode).
    let mut exp = Experiment::new("simpoints").with_cli(&opts);
    for (name, pts) in &points {
        for (i, p) in pts.iter().enumerate() {
            region_cell(&mut exp, name, "baseline", i, *p, Mode::Baseline);
            region_cell(
                &mut exp,
                name,
                "phelps",
                i,
                *p,
                Mode::Phelps(PhelpsFeatures::full()),
            );
        }
    }
    let res = exp.run();
    if opts.list {
        return;
    }

    for (name, pts) in &points {
        let mut rows = Vec::new();
        let mut base_ipcs = Vec::new();
        let mut ph_ipcs = Vec::new();
        for (i, p) in pts.iter().enumerate() {
            if let Some(r) = res.get(name, &format!("baseline@p{i}")) {
                base_ipcs.push((p.weight, r.stats.ipc()));
                rows.push(vec![
                    format!("{}", p.phase),
                    format!("{}", p.start_inst),
                    format!("{:.3}", p.weight),
                    format!("{:.3}", r.stats.ipc()),
                ]);
            }
            if let Some(r) = res.get(name, &format!("phelps@p{i}")) {
                ph_ipcs.push((p.weight, r.stats.ipc()));
            }
        }
        if rows.is_empty() && ph_ipcs.is_empty() {
            continue;
        }
        print_table(
            &format!("{name}: SimPoints (baseline)"),
            &["phase", "start", "weight", "IPC"],
            &rows,
        );
        let base_ipc = phelps_uarch::stats::weighted_harmonic_mean_ipc(&base_ipcs);
        let ph_ipc = phelps_uarch::stats::weighted_harmonic_mean_ipc(&ph_ipcs);
        println!(
            "{name}: weighted-hmean IPC baseline {:.3}, Phelps {:.3} ({:+.1}%)",
            base_ipc,
            ph_ipc,
            (ph_ipc / base_ipc - 1.0) * 100.0
        );
    }
    ckpt_support::print_summary();
}
