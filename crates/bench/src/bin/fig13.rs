//! Fig. 13 — (a) MPKI reduction with/without stores, (b) retired
//! helper-thread instructions per 100M main-thread instructions, and
//! (c) the isolated impact of partitioning on the main thread.
//!
//! Paper shape: (a) 72–91% MPKI reductions on four of six benchmarks;
//! (b) a mean overhead around 34.7M helper instructions per 100M retired;
//! (c) partitioning alone costs 4.1% (pr) to 12.8% (bc).

use phelps::sim::{Mode, PhelpsFeatures};
use phelps_bench::print_table;
use phelps_bench::runner::{parse_cli, Experiment};
use phelps_uarch::stats::speedup;
use phelps_workloads::suite;

fn main() {
    let opts = parse_cli();
    let mut exp = Experiment::new("fig13").with_cli(&opts);
    for name in suite::gap_names() {
        let make = move || suite::gap_workload(name).expect("known workload").cpu;
        exp.sim_cell(name, "baseline", Mode::Baseline, make);
        exp.sim_cell(name, "phelps", Mode::Phelps(PhelpsFeatures::full()), make);
        exp.sim_cell(
            name,
            "no-stores",
            Mode::Phelps(PhelpsFeatures::no_stores()),
            make,
        );
        exp.sim_cell(name, "partition", Mode::PartitionOnly, make);
    }
    let res = exp.run();
    if opts.list {
        return;
    }

    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    let mut rows_c = Vec::new();
    for name in suite::gap_names() {
        let (Some(base), Some(ph), Some(ph_ns), Some(part)) = (
            res.get(name, "baseline"),
            res.get(name, "phelps"),
            res.get(name, "no-stores"),
            res.get(name, "partition"),
        ) else {
            continue;
        };

        let red = |r: &phelps::sim::SimResult| {
            if base.stats.mpki() > 0.0 {
                format!("{:.0}%", 100.0 * (1.0 - r.stats.mpki() / base.stats.mpki()))
            } else {
                "n/a".to_string()
            }
        };
        // `~` marks proxy-predicted cells (PHELPS_PROXY).
        rows_a.push(vec![
            name.to_string(),
            format!("{:.1}{}", base.stats.mpki(), res.mark(name, "baseline")),
            format!("{:.1}{}", ph.stats.mpki(), res.mark(name, "phelps")),
            red(ph),
            format!("{:.1}{}", ph_ns.stats.mpki(), res.mark(name, "no-stores")),
            red(ph_ns),
        ]);
        // Fig. 13b units: helper instructions per 100M main-thread retired.
        rows_b.push(vec![
            name.to_string(),
            format!("{:.1}M", ph.stats.ht_overhead_ratio() * 100.0),
        ]);
        let slowdown = 100.0 * (1.0 - speedup(&base.stats, &part.stats));
        rows_c.push(vec![
            name.to_string(),
            format!("{:.3}{}", base.stats.ipc(), res.mark(name, "baseline")),
            format!("{:.3}{}", part.stats.ipc(), res.mark(name, "partition")),
            format!("{:.1}%", slowdown),
        ]);
    }
    print_table(
        "Fig. 13a: MPKI and reduction, with / without stores",
        &["bench", "base", "Phelps", "red.", "no-stores", "red."],
        &rows_a,
    );
    print_table(
        "Fig. 13b: helper-thread instructions retired per 100M main-thread",
        &["bench", "HT insts"],
        &rows_b,
    );
    print_table(
        "Fig. 13c: main-thread-only IPC, full vs partitioned resources",
        &["bench", "full", "partitioned", "slowdown"],
        &rows_c,
    );
}
