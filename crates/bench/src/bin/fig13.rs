//! Fig. 13 — (a) MPKI reduction with/without stores, (b) retired
//! helper-thread instructions per 100M main-thread instructions, and
//! (c) the isolated impact of partitioning on the main thread.
//!
//! Paper shape: (a) 72–91% MPKI reductions on four of six benchmarks;
//! (b) a mean overhead around 34.7M helper instructions per 100M retired;
//! (c) partitioning alone costs 4.1% (pr) to 12.8% (bc).

use phelps::sim::{Mode, PhelpsFeatures};
use phelps_bench::{print_table, run, WorkloadSet};
use phelps_uarch::stats::speedup;
use phelps_workloads::suite;

fn main() {
    let benches: WorkloadSet = vec![
        ("bc", Box::new(suite::bc)),
        ("bfs", Box::new(suite::bfs)),
        ("pr", Box::new(suite::pr)),
        ("cc", Box::new(suite::cc)),
        ("cc_sv", Box::new(suite::cc_sv)),
        ("sssp", Box::new(suite::sssp)),
        ("tc", Box::new(suite::tc)),
        ("astar", Box::new(suite::astar)),
    ];

    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    let mut rows_c = Vec::new();
    for (name, make) in &benches {
        let base = run(make().cpu, Mode::Baseline);
        let ph = run(make().cpu, Mode::Phelps(PhelpsFeatures::full()));
        let ph_ns = run(make().cpu, Mode::Phelps(PhelpsFeatures::no_stores()));
        let part = run(make().cpu, Mode::PartitionOnly);

        let red = |r: &phelps::sim::SimResult| {
            if base.stats.mpki() > 0.0 {
                format!("{:.0}%", 100.0 * (1.0 - r.stats.mpki() / base.stats.mpki()))
            } else {
                "n/a".to_string()
            }
        };
        rows_a.push(vec![
            name.to_string(),
            format!("{:.1}", base.stats.mpki()),
            format!("{:.1}", ph.stats.mpki()),
            red(&ph),
            format!("{:.1}", ph_ns.stats.mpki()),
            red(&ph_ns),
        ]);
        // Fig. 13b units: helper instructions per 100M main-thread retired.
        rows_b.push(vec![
            name.to_string(),
            format!("{:.1}M", ph.stats.ht_overhead_ratio() * 100.0),
        ]);
        let slowdown = 100.0 * (1.0 - speedup(&base.stats, &part.stats));
        rows_c.push(vec![
            name.to_string(),
            format!("{:.3}", base.stats.ipc()),
            format!("{:.3}", part.stats.ipc()),
            format!("{:.1}%", slowdown),
        ]);
    }
    print_table(
        "Fig. 13a: MPKI and reduction, with / without stores",
        &["bench", "base", "Phelps", "red.", "no-stores", "red."],
        &rows_a,
    );
    print_table(
        "Fig. 13b: helper-thread instructions retired per 100M main-thread",
        &["bench", "HT insts"],
        &rows_b,
    );
    print_table(
        "Fig. 13c: main-thread-only IPC, full vs partitioned resources",
        &["bench", "full", "partitioned", "slowdown"],
        &rows_c,
    );
}
