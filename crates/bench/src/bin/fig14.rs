//! Fig. 14 — Characterization of main-thread mispredictions under Phelps.
//!
//! For each benchmark, every retired misprediction is attributed to one
//! bin (eliminated / gathering delinquency / being constructed / not
//! constructed / too big / not in loop / not iterating enough / not
//! delinquent / wrong or untimely helper outcome), expressed in MPKI.
//!
//! Paper shape: Phelps eliminates most mispredictions in bc, bfs, pr, cc,
//! astar; mcf's are "not in loop" (non-inlined callee); leela's are
//! spread thin ("not delinquent"); gcc thrashes the DBT ("gathering");
//! xz's loops don't iterate enough; omnetpp's helper thread is too big.

use phelps::classify::MispredictClass;
use phelps::sim::{Mode, PhelpsFeatures};
use phelps_bench::print_table;
use phelps_bench::runner::{parse_cli, Experiment};
use phelps_workloads::suite;

fn main() {
    let opts = parse_cli();
    let mut exp = Experiment::new("fig14").with_cli(&opts);
    // One cell per benchmark; per-cell factories build only their own
    // workload (the GAP and SPEC suites are never rebuilt per config).
    for name in suite::gap_names() {
        let make = move || suite::gap_workload(name).expect("known workload").cpu;
        exp.sim_cell(name, "phelps", Mode::Phelps(PhelpsFeatures::full()), make);
    }
    for name in suite::spec_names() {
        let make = move || suite::spec_workload(name).expect("known workload").cpu;
        exp.sim_cell(name, "phelps", Mode::Phelps(PhelpsFeatures::full()), make);
    }
    let res = exp.run();
    if opts.list {
        return;
    }

    let classes = MispredictClass::all();
    let mut rows = Vec::new();
    for name in suite::gap_names().iter().chain(suite::spec_names()) {
        let Some(r) = res.get(name, "phelps") else {
            continue;
        };
        // `~` marks proxy-predicted cells (PHELPS_PROXY).
        let mut row = vec![format!("{}{}", name, res.mark(name, "phelps"))];
        for c in classes {
            row.push(format!("{:.2}", r.breakdown.mpki(c)));
        }
        rows.push(row);
    }
    let mut headers: Vec<&str> = vec!["bench"];
    headers.extend(classes.iter().map(|c| c.label()));
    print_table(
        "Fig. 14: misprediction characterization (MPKI by bin)",
        &headers,
        &rows,
    );
}
