//! Fig. 14 — Characterization of main-thread mispredictions under Phelps.
//!
//! For each benchmark, every retired misprediction is attributed to one
//! bin (eliminated / gathering delinquency / being constructed / not
//! constructed / too big / not in loop / not iterating enough / not
//! delinquent / wrong or untimely helper outcome), expressed in MPKI.
//!
//! Paper shape: Phelps eliminates most mispredictions in bc, bfs, pr, cc,
//! astar; mcf's are "not in loop" (non-inlined callee); leela's are
//! spread thin ("not delinquent"); gcc thrashes the DBT ("gathering");
//! xz's loops don't iterate enough; omnetpp's helper thread is too big.

use phelps::classify::MispredictClass;
use phelps::sim::{Mode, PhelpsFeatures};
use phelps_bench::{print_table, run, WorkloadSet};
use phelps_workloads::suite;

fn main() {
    let mut benches: WorkloadSet = vec![
        ("bc", Box::new(suite::bc)),
        ("bfs", Box::new(suite::bfs)),
        ("pr", Box::new(suite::pr)),
        ("cc", Box::new(suite::cc)),
        ("cc_sv", Box::new(suite::cc_sv)),
        ("sssp", Box::new(suite::sssp)),
        ("tc", Box::new(suite::tc)),
        ("astar", Box::new(suite::astar)),
    ];
    for w in suite::spec_suite() {
        let name = w.name;
        benches.push((
            name,
            Box::new(move || {
                suite::spec_suite()
                    .into_iter()
                    .find(|x| x.name == name)
                    .expect("known workload")
            }),
        ));
    }

    let classes = MispredictClass::all();
    let mut rows = Vec::new();
    for (name, make) in &benches {
        let r = run(make().cpu, Mode::Phelps(PhelpsFeatures::full()));
        let mut row = vec![name.to_string()];
        for c in classes {
            row.push(format!("{:.2}", r.breakdown.mpki(c)));
        }
        rows.push(row);
    }
    let mut headers: Vec<&str> = vec!["bench"];
    headers.extend(classes.iter().map(|c| c.label()));
    print_table(
        "Fig. 14: misprediction characterization (MPKI by bin)",
        &headers,
        &rows,
    );
}
