//! Design-choice ablations for the structures DESIGN.md calls out:
//!
//! * prediction-queue depth (the paper chooses 32 iterations/columns) —
//!   shallower queues throttle the helper thread's lead; deeper ones
//!   don't help once the lead covers the main thread's stall shadow;
//! * helper-thread store-cache capacity (the paper chooses 16 sets × 2
//!   ways = 32 doublewords) — too small loses in-window store→load
//!   dependences, costing outcome accuracy on store-coupled kernels.

use phelps::sim::{Mode, PhelpsFeatures};
use phelps_bench::runner::{parse_cli, Experiment};
use phelps_bench::{exp_config, pct, print_table};
use phelps_uarch::stats::speedup;
use phelps_workloads::suite;

const QUEUE_COLUMNS: [usize; 4] = [8, 16, 32, 64];
const STORE_SETS: [usize; 5] = [4, 8, 16, 32, 64];

fn main() {
    let opts = parse_cli();
    let mut exp = Experiment::new("ablate").with_cli(&opts);
    let astar = || suite::astar().cpu;
    exp.sim_cell("astar", "baseline", Mode::Baseline, astar);
    for columns in QUEUE_COLUMNS {
        let mut cfg = exp_config(Mode::Phelps(PhelpsFeatures::full()));
        cfg.queue_columns = columns;
        exp.cfg_cell("astar", &format!("qcols{columns}"), cfg, astar);
    }
    for sets in STORE_SETS {
        let mut cfg = exp_config(Mode::Phelps(PhelpsFeatures::full()));
        cfg.store_cache_sets = sets;
        exp.cfg_cell("astar", &format!("scsets{sets}"), cfg, astar);
    }
    let res = exp.run();
    if opts.list {
        return;
    }

    let base = res.get("astar", "baseline");
    if let Some(b) = base {
        println!(
            "astar baseline: IPC {:.3}, MPKI {:.1}",
            b.stats.ipc(),
            b.stats.mpki()
        );
    }

    let mut rows = Vec::new();
    for columns in QUEUE_COLUMNS {
        let Some(r) = res.get("astar", &format!("qcols{columns}")) else {
            continue;
        };
        // `~` marks proxy-predicted cells (PHELPS_PROXY).
        let mark = res.mark("astar", &format!("qcols{columns}"));
        rows.push(vec![
            columns.to_string(),
            base.map_or_else(|| "n/a".into(), |b| pct(speedup(&b.stats, &r.stats))),
            format!("{:.1}{mark}", r.stats.mpki()),
            r.stats.queue_untimely.to_string(),
        ]);
    }
    print_table(
        "Ablation: prediction-queue depth (paper: 32 columns)",
        &["columns", "speedup", "MPKI", "untimely"],
        &rows,
    );

    let mut rows = Vec::new();
    for sets in STORE_SETS {
        let Some(r) = res.get("astar", &format!("scsets{sets}")) else {
            continue;
        };
        let mark = res.mark("astar", &format!("scsets{sets}"));
        rows.push(vec![
            format!("{} ({} DWs)", sets, sets * 2),
            base.map_or_else(|| "n/a".into(), |b| pct(speedup(&b.stats, &r.stats))),
            format!("{:.1}{mark}", r.stats.mpki()),
            r.stats.mispredicts_from_queue.to_string(),
        ]);
    }
    print_table(
        "Ablation: helper-thread store cache (paper: 16 sets / 32 DWs)",
        &["sets", "speedup", "MPKI", "wrong outcomes"],
        &rows,
    );
}
