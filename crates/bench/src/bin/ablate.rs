//! Design-choice ablations for the structures DESIGN.md calls out:
//!
//! * prediction-queue depth (the paper chooses 32 iterations/columns) —
//!   shallower queues throttle the helper thread's lead; deeper ones
//!   don't help once the lead covers the main thread's stall shadow;
//! * helper-thread store-cache capacity (the paper chooses 16 sets × 2
//!   ways = 32 doublewords) — too small loses in-window store→load
//!   dependences, costing outcome accuracy on store-coupled kernels.

use phelps::sim::{Mode, PhelpsFeatures};
use phelps_bench::{exp_config, pct, print_table};
use phelps_uarch::stats::speedup;
use phelps_workloads::suite;

fn main() {
    let base = phelps_bench::run(suite::astar().cpu, Mode::Baseline);
    println!(
        "astar baseline: IPC {:.3}, MPKI {:.1}",
        base.stats.ipc(),
        base.stats.mpki()
    );

    let mut rows = Vec::new();
    for columns in [8usize, 16, 32, 64] {
        let mut cfg = exp_config(Mode::Phelps(PhelpsFeatures::full()));
        cfg.queue_columns = columns;
        let r = phelps::sim::simulate(suite::astar().cpu, &cfg);
        rows.push(vec![
            columns.to_string(),
            pct(speedup(&base.stats, &r.stats)),
            format!("{:.1}", r.stats.mpki()),
            r.stats.queue_untimely.to_string(),
        ]);
    }
    print_table(
        "Ablation: prediction-queue depth (paper: 32 columns)",
        &["columns", "speedup", "MPKI", "untimely"],
        &rows,
    );

    let mut rows = Vec::new();
    for sets in [4usize, 8, 16, 32, 64] {
        let mut cfg = exp_config(Mode::Phelps(PhelpsFeatures::full()));
        cfg.store_cache_sets = sets;
        let r = phelps::sim::simulate(suite::astar().cpu, &cfg);
        rows.push(vec![
            format!("{} ({} DWs)", sets, sets * 2),
            pct(speedup(&base.stats, &r.stats)),
            format!("{:.1}", r.stats.mpki()),
            r.stats.mispredicts_from_queue.to_string(),
        ]);
    }
    print_table(
        "Ablation: helper-thread store cache (paper: 16 sets / 32 DWs)",
        &["sets", "speedup", "MPKI", "wrong outcomes"],
        &rows,
    );
}
