//! Checkpoint-sharded execution of a single run.
//!
//! A long run is split into `PHELPS_SHARDS` contiguous
//! retired-instruction regions. Each shard positions a fresh CPU at its
//! region start through the checkpoint store ([`crate::ckpt_support`]),
//! simulates its slice independently on the `PHELPS_JOBS` thread pool,
//! and the per-shard `(SimStats, Report)` pairs fold through the
//! associative merges (`SimStats::merge`, `Report::merge`,
//! `SimResult::merge`) into one stitched result.
//!
//! ## Determinism
//!
//! The shard *decomposition* (`PHELPS_SHARDS`) is part of the result's
//! identity: an `N`-shard run is a sampling approximation of the
//! monolithic run (each shard restarts the timing model cold at its
//! region boundary), so its cache fingerprint carries `|shards=N`. The
//! *worker count* (`PHELPS_JOBS`) is pure execution parallelism and
//! must never affect the bytes of the merged result: shards are
//! independent (own CPU clone, own thread-local telemetry registry,
//! deterministic simulator) and always fold in shard-index order, so
//! `PHELPS_JOBS=1` and `PHELPS_JOBS=64` produce byte-identical merged
//! stats and telemetry. CI enforces this (see `scripts/ci.sh`).
//!
//! Telemetry install ordering matters: the checkpoint layer records
//! wall-clock nanosecond counters (`ckpt_save_ns`, `ckpt_restore_ns`)
//! when a registry is installed, and wall-clock is not deterministic.
//! [`run_shard`] therefore positions the CPU *first* and installs the
//! shard's registry only for the timed region, keeping merged reports
//! byte-stable.

use crate::ckpt_support::{self, CkptPolicy};
use crate::exec;
use phelps::sim::{simulate, simulate_warmed, RunConfig, SimResult};
use phelps_isa::{Cpu, EmuError};
use phelps_telemetry as tlm;

/// Shard count for splitting a single run: `PHELPS_SHARDS`, default 1
/// (unsharded). Values below 1 warn and fall back to 1.
pub fn shard_count() -> usize {
    match crate::env_u64("PHELPS_SHARDS", 1) {
        0 => {
            crate::warn_env_once(
                "PHELPS_SHARDS",
                format_args!("PHELPS_SHARDS must be >= 1; using 1"),
            );
            1
        }
        n => usize::try_from(n).unwrap_or(usize::MAX),
    }
}

/// One shard of a split run: skip `skip` retired instructions, then
/// simulate `len`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// Retired instructions to skip before timing starts.
    pub skip: u64,
    /// Retired-instruction budget of the timed region.
    pub len: u64,
}

/// Splits `total` retired instructions into at most `shards` contiguous
/// regions: every shard gets `total / shards`, and the first
/// `total % shards` shards get one extra, so the plan tiles the run
/// exactly. Never returns an empty plan (a zero-length run yields one
/// empty shard), and never returns more shards than instructions.
pub fn shard_plan(total: u64, shards: usize) -> Vec<ShardSpec> {
    let shards = (shards.max(1) as u64).min(total.max(1));
    let base = total / shards;
    let rem = total % shards;
    let mut plan = Vec::with_capacity(shards as usize);
    let mut skip = 0;
    for i in 0..shards {
        let len = base + u64::from(i < rem);
        plan.push(ShardSpec { skip, len });
        skip += len;
    }
    plan
}

/// Runs one shard: position at `skip` through the checkpoint store,
/// install the telemetry registry (after positioning — see the module
/// docs), and simulate under `cfg`. Used for both whole-run shards and
/// SimPoint regions; call it on a dedicated thread so the installed
/// registry stays shard-private.
///
/// # Errors
///
/// Propagates [`EmuError`] when the pre-region positioning faults.
pub fn run_shard(
    ckpt: &CkptPolicy,
    label: &str,
    cpu: Cpu,
    skip: u64,
    cfg: &RunConfig,
    telemetry: Option<&tlm::Config>,
) -> Result<SimResult, EmuError> {
    let (cpu, warm) = ckpt_support::region_cpu_with(ckpt, label, cpu, skip)?;
    if let Some(t) = telemetry {
        tlm::install(t.clone());
    }
    Ok(simulate_warmed(cpu, cfg, &warm))
}

/// Simulates `cfg.max_mt_insts` instructions of `cpu` split across
/// `shards` checkpoint shards on `workers` threads, returning the merged
/// result (`None` when every shard failed; partial failures warn and
/// merge the survivors).
///
/// Missing region checkpoints are captured in one pre-pass, so shard
/// starts restore instead of each fast-forwarding from instruction 0.
/// With `shards <= 1` this is a plain single-threaded simulation
/// (telemetry installed on the calling thread), byte-identical to the
/// historical unsharded path.
pub fn run_sharded_with(
    ckpt: &CkptPolicy,
    workers: usize,
    shards: usize,
    label: &str,
    cpu: Cpu,
    cfg: &RunConfig,
    telemetry: Option<&tlm::Config>,
) -> Option<SimResult> {
    let plan = shard_plan(cfg.max_mt_insts, shards);
    if plan.len() <= 1 {
        if let Some(t) = telemetry {
            tlm::install(t.clone());
        }
        return Some(simulate(cpu, cfg));
    }
    let starts: Vec<u64> = plan.iter().map(|s| s.skip).collect();
    if let Err(e) = ckpt_support::ensure_region_checkpoints_with(ckpt, label, cpu.clone(), &starts)
    {
        eprintln!("warning: shard pre-capture for {label} failed: {e}");
    }
    let shard_results = exec::run_indexed(plan.len(), workers, |i| {
        let spec = plan[i];
        let mut shard_cfg = cfg.clone();
        shard_cfg.max_mt_insts = spec.len;
        match run_shard(ckpt, label, cpu.clone(), spec.skip, &shard_cfg, telemetry) {
            Ok(r) => Some(r),
            Err(e) => {
                eprintln!(
                    "warning: shard {i} of {label} (skip {}) failed: {e}",
                    spec.skip
                );
                None
            }
        }
    });
    fold_merge(label, shard_results)
}

/// [`run_sharded_with`] under the environment policy: `PHELPS_SHARDS`
/// shards on `PHELPS_JOBS` workers with the `PHELPS_CKPT_*` checkpoint
/// settings.
pub fn run_sharded(
    label: &str,
    cpu: Cpu,
    cfg: &RunConfig,
    telemetry: Option<&tlm::Config>,
) -> Option<SimResult> {
    run_sharded_with(
        &CkptPolicy::from_env(),
        crate::resolved_jobs(),
        shard_count(),
        label,
        cpu,
        cfg,
        telemetry,
    )
}

/// Folds per-shard results through [`SimResult::merge`] in shard-index
/// order (the order half of the determinism guarantee). `None` entries
/// are failed shards; the survivors still merge, with a warning that the
/// stitched result is partial.
pub(crate) fn fold_merge(label: &str, results: Vec<Option<SimResult>>) -> Option<SimResult> {
    let failed = results.iter().filter(|r| r.is_none()).count();
    if failed > 0 {
        eprintln!(
            "warning: {label}: {failed} of {} shards failed; merged result covers the survivors",
            results.len()
        );
    }
    let mut merged: Option<SimResult> = None;
    for r in results.into_iter().flatten() {
        match merged.as_mut() {
            Some(m) => m.merge(&r),
            None => merged = Some(r),
        }
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_tiles_exactly() {
        let plan = shard_plan(10, 3);
        assert_eq!(
            plan,
            vec![
                ShardSpec { skip: 0, len: 4 },
                ShardSpec { skip: 4, len: 3 },
                ShardSpec { skip: 7, len: 3 },
            ]
        );
        let total: u64 = plan.iter().map(|s| s.len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn plan_never_empty_and_never_overshards() {
        assert_eq!(shard_plan(0, 4).len(), 1);
        assert_eq!(shard_plan(3, 8).len(), 3);
        assert_eq!(shard_plan(100, 0), shard_plan(100, 1));
        assert_eq!(shard_plan(100, 1), vec![ShardSpec { skip: 0, len: 100 }]);
    }

    #[test]
    fn plan_shards_are_contiguous() {
        for (total, shards) in [(1_000_000, 7), (17, 5), (64, 64)] {
            let plan = shard_plan(total, shards);
            let mut expect_skip = 0;
            for s in &plan {
                assert_eq!(s.skip, expect_skip);
                expect_skip += s.len;
            }
            assert_eq!(expect_skip, total);
        }
    }
}
