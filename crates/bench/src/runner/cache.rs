//! On-disk result cache for experiment cells.
//!
//! Each cell is fingerprinted by its experiment name, workload name,
//! configuration label, the `Debug` rendering of its full [`RunConfig`]
//! (which folds in `PHELPS_REGION`/`PHELPS_EPOCH` and every core
//! parameter), and the crate version. The FNV-1a hash of that string
//! names a JSON file under the cache directory holding the run's
//! [`SimStats`] and misprediction breakdown. On load the embedded
//! fingerprint is compared against the full expected string, so a hash
//! collision or a stale schema degrades to a miss, never a wrong result.
//!
//! # Concurrency
//!
//! The cache directory is shared: parallel runner workers, multiple
//! figure binaries, and every tenant of the `phelps-serve` daemon read
//! and write it concurrently. Two mechanisms keep that safe:
//!
//! * [`store`] writes to a unique temporary file and renames it into
//!   place (the same pattern as `phelps-ckpt`'s `CheckpointStore`), so a
//!   concurrent [`load`] never observes a torn write — it sees either
//!   the old complete file or the new complete file.
//! * [`key_locks`] is a process-wide per-fingerprint lock table. Callers
//!   computing a cell hold its key lock across the load → simulate →
//!   store sequence, so two threads racing on the *same* cell produce
//!   one simulation, one write, and one cache hit instead of duplicate
//!   work (`phelps_bench::exec` wires this up for both front doors).
//!
//! Telemetry reports are *not* cached: they are large and only wanted
//! under `PHELPS_TRACE`, which disables cache reads entirely.
//!
//! [`RunConfig`]: phelps::sim::RunConfig

use phelps::classify::{MispredictBreakdown, MispredictClass};
use phelps::sim::SimResult;
use phelps_telemetry::{parse_json, JsonValue};
use phelps_uarch::stats::SimStats;
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// 64-bit FNV-1a; stable across platforms and good enough to name files
/// (correctness never depends on it thanks to the embedded fingerprint).
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The cache file path for a fingerprint string.
pub fn cell_path(dir: &Path, fingerprint: &str) -> PathBuf {
    dir.join(format!("{:016x}.json", fnv1a(fingerprint)))
}

/// Every (name, value) stat pair, in declaration order.
fn stat_fields(s: &SimStats) -> [(&'static str, u64); 29] {
    [
        ("cycles", s.cycles),
        ("mt_retired", s.mt_retired),
        ("ht_retired", s.ht_retired),
        ("mt_cond_branches", s.mt_cond_branches),
        ("mt_mispredicts", s.mt_mispredicts),
        ("mispredicts_from_queue", s.mispredicts_from_queue),
        ("preds_from_queue", s.preds_from_queue),
        ("queue_untimely", s.queue_untimely),
        ("load_violations", s.load_violations),
        ("triggers", s.triggers),
        ("terminations", s.terminations),
        ("l1i_accesses", s.l1i_accesses),
        ("l1i_misses", s.l1i_misses),
        ("l1d_accesses", s.l1d_accesses),
        ("l1d_misses", s.l1d_misses),
        ("l1d_store_accesses", s.l1d_store_accesses),
        ("l1d_store_misses", s.l1d_store_misses),
        ("l2_misses", s.l2_misses),
        ("l3_misses", s.l3_misses),
        ("prefetches_issued", s.prefetches_issued),
        ("prefetch_hits", s.prefetch_hits),
        ("mt_fetch_stall_mispredict", s.mt_fetch_stall_mispredict),
        ("mt_fetch_stall_trigger", s.mt_fetch_stall_trigger),
        ("mt_fetch_stall_ifetch", s.mt_fetch_stall_ifetch),
        ("l1i_port_stalls", s.l1i_port_stalls),
        ("l1d_port_stalls", s.l1d_port_stalls),
        ("l2_port_stalls", s.l2_port_stalls),
        ("l3_port_stalls", s.l3_port_stalls),
        ("dram_queue_stalls", s.dram_queue_stalls),
    ]
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes the stats + breakdown of one result as a JSON object-body
/// fragment (`"stats":{...},"breakdown":{...}`, no surrounding braces).
/// Shared by the cache file format and the `phelps-serve` wire protocol,
/// so a cached cell and a streamed result are byte-compatible.
pub fn result_body_json(r: &SimResult) -> String {
    let mut j = String::from("\"stats\":{");
    for (i, (k, v)) in stat_fields(&r.stats).iter().enumerate() {
        if i > 0 {
            j.push(',');
        }
        j.push_str(&format!("\"{k}\":{v}"));
    }
    j.push_str(&format!(
        "}},\"breakdown\":{{\"retired\":{},\"counts\":{{",
        r.breakdown.retired
    ));
    let mut first = true;
    for class in MispredictClass::all() {
        let n = r.breakdown.count(class);
        if n == 0 {
            continue;
        }
        if !first {
            j.push(',');
        }
        first = false;
        j.push_str(&format!("\"{}\":{n}", json_escape(class.label())));
    }
    j.push_str("}}");
    j
}

/// Serializes one cell result (stats + breakdown, no telemetry).
pub(super) fn to_json(fingerprint: &str, r: &SimResult) -> String {
    format!(
        "{{\"fingerprint\":\"{}\",{}}}",
        json_escape(fingerprint),
        result_body_json(r)
    )
}

fn stats_from_json(v: &JsonValue) -> Option<SimStats> {
    let mut s = SimStats::default();
    let mut defaults = stat_fields(&s);
    for (k, slot) in defaults.iter_mut() {
        *slot = v.get(k)?.as_u64()?;
    }
    let [cycles, mt_retired, ht_retired, mt_cond_branches, mt_mispredicts, mispredicts_from_queue, preds_from_queue, queue_untimely, load_violations, triggers, terminations, l1i_accesses, l1i_misses, l1d_accesses, l1d_misses, l1d_store_accesses, l1d_store_misses, l2_misses, l3_misses, prefetches_issued, prefetch_hits, mt_fetch_stall_mispredict, mt_fetch_stall_trigger, mt_fetch_stall_ifetch, l1i_port_stalls, l1d_port_stalls, l2_port_stalls, l3_port_stalls, dram_queue_stalls] =
        defaults.map(|(_, v)| v);
    s = SimStats {
        cycles,
        mt_retired,
        ht_retired,
        mt_cond_branches,
        mt_mispredicts,
        mispredicts_from_queue,
        preds_from_queue,
        queue_untimely,
        load_violations,
        triggers,
        terminations,
        l1i_accesses,
        l1i_misses,
        l1d_accesses,
        l1d_misses,
        l1d_store_accesses,
        l1d_store_misses,
        l2_misses,
        l3_misses,
        prefetches_issued,
        prefetch_hits,
        mt_fetch_stall_mispredict,
        mt_fetch_stall_trigger,
        mt_fetch_stall_ifetch,
        l1i_port_stalls,
        l1d_port_stalls,
        l2_port_stalls,
        l3_port_stalls,
        dram_queue_stalls,
    };
    Some(s)
}

/// Reconstructs a [`SimResult`] from a parsed JSON object containing the
/// [`result_body_json`] fields (`stats` + `breakdown`). The inverse of
/// that fragment, shared by the cache loader and the serve client.
pub fn result_from_body(v: &JsonValue) -> Option<SimResult> {
    let stats = stats_from_json(v.get("stats")?)?;
    let bd = v.get("breakdown")?;
    let mut breakdown = MispredictBreakdown::new();
    breakdown.retired = bd.get("retired")?.as_u64()?;
    let counts = bd.get("counts")?;
    for class in MispredictClass::all() {
        if let Some(n) = counts.get(class.label()).and_then(JsonValue::as_u64) {
            breakdown.add(class, n);
        }
    }
    Some(SimResult {
        stats,
        breakdown,
        telemetry: None,
        retire_log: None,
        final_state: None,
    })
}

fn parse_cell(text: &str, fingerprint: &str) -> Option<SimResult> {
    let v = parse_json(text).ok()?;
    if v.get("fingerprint")?.as_str()? != fingerprint {
        return None; // hash collision or stale schema
    }
    result_from_body(&v)
}

/// Attempts to load a cached result. Any failure — missing file, corrupt
/// JSON, fingerprint mismatch — is a miss; corruption additionally warns
/// so silent staleness can't hide.
pub fn load(dir: &Path, fingerprint: &str) -> Option<SimResult> {
    let path = cell_path(dir, fingerprint);
    let text = std::fs::read_to_string(&path).ok()?;
    let r = parse_cell(&text, fingerprint);
    if r.is_none() {
        eprintln!(
            "warning: ignoring corrupt or stale cache file {} (treated as a miss)",
            path.display()
        );
    }
    r
}

/// Persists one cell result; errors are reported but non-fatal (the
/// in-memory result is still used). The write goes to a unique temporary
/// file first and is renamed into place, so concurrent readers — other
/// runner workers, other processes, daemon tenants — never see a torn
/// file.
pub fn store(dir: &Path, fingerprint: &str, r: &SimResult) {
    static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
    let path = cell_path(dir, fingerprint);
    let tmp = path.with_extension(format!(
        "tmp.{}.{}",
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let res = std::fs::write(&tmp, to_json(fingerprint, r)).and_then(|()| {
        std::fs::rename(&tmp, &path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    });
    if let Err(e) = res {
        eprintln!("warning: cannot write cache file {}: {e}", path.display());
    }
}

/// A process-wide per-key lock table: at most one thread holds any given
/// key at a time; others block until it is released. Keys are cell
/// fingerprints, so two tenants racing to compute the same cell
/// serialize — the loser re-checks the cache after the winner's store
/// and hits instead of re-simulating (see `phelps_bench::exec`).
#[derive(Debug, Default)]
pub struct KeyLocks {
    held: Mutex<HashSet<String>>,
    released: Condvar,
}

impl KeyLocks {
    /// An empty lock table.
    pub fn new() -> KeyLocks {
        KeyLocks::default()
    }

    /// Acquires `key`, blocking while another thread holds it. The key is
    /// released when the returned guard drops.
    pub fn lock(&self, key: &str) -> KeyGuard<'_> {
        let mut held = self.held.lock().unwrap_or_else(|e| e.into_inner());
        while held.contains(key) {
            held = self.released.wait(held).unwrap_or_else(|e| e.into_inner());
        }
        held.insert(key.to_string());
        KeyGuard {
            locks: self,
            key: key.to_string(),
        }
    }
}

/// Holds one key in a [`KeyLocks`] table; releases (and wakes waiters) on
/// drop.
#[derive(Debug)]
pub struct KeyGuard<'a> {
    locks: &'a KeyLocks,
    key: String,
}

impl Drop for KeyGuard<'_> {
    fn drop(&mut self) {
        self.locks
            .held
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&self.key);
        self.locks.released.notify_all();
    }
}

/// The process-global lock table guarding cache cells. Every front door
/// (the parallel runner, the `phelps-serve` worker pool) routes cell
/// execution through these locks, so identical cells never compute twice
/// within one process regardless of which API submitted them.
pub fn key_locks() -> &'static KeyLocks {
    static LOCKS: OnceLock<KeyLocks> = OnceLock::new();
    LOCKS.get_or_init(KeyLocks::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SimResult {
        let mut r = SimResult {
            stats: SimStats::default(),
            breakdown: MispredictBreakdown::new(),
            telemetry: None,
            retire_log: None,
            final_state: None,
        };
        r.stats.cycles = 12_345;
        r.stats.mt_retired = 1_000_000;
        r.stats.l3_misses = 7;
        r.breakdown.retired = 1_000_000;
        r.breakdown.add(MispredictClass::Eliminated, 42);
        r.breakdown.add(MispredictClass::NotDelinquent, 3);
        r
    }

    #[test]
    fn roundtrip_preserves_stats_and_breakdown() {
        let r = sample();
        let text = to_json("fp", &r);
        let back = parse_cell(&text, "fp").expect("parses");
        assert_eq!(back.stats.cycles, 12_345);
        assert_eq!(back.stats.mt_retired, 1_000_000);
        assert_eq!(back.stats.l3_misses, 7);
        assert_eq!(back.breakdown.retired, 1_000_000);
        assert_eq!(back.breakdown.count(MispredictClass::Eliminated), 42);
        assert_eq!(back.breakdown.count(MispredictClass::NotDelinquent), 3);
        assert!(back.telemetry.is_none());
    }

    #[test]
    fn body_fragment_roundtrips_standalone() {
        let r = sample();
        let text = format!("{{{}}}", result_body_json(&r));
        let v = parse_json(&text).expect("fragment wraps into valid JSON");
        let back = result_from_body(&v).expect("body parses");
        assert_eq!(back.stats, r.stats);
        assert_eq!(back.breakdown.retired, r.breakdown.retired);
    }

    #[test]
    fn fingerprint_mismatch_is_a_miss() {
        let text = to_json("fp-a", &sample());
        assert!(parse_cell(&text, "fp-b").is_none());
    }

    #[test]
    fn corrupt_text_is_a_miss() {
        assert!(parse_cell("{not json", "fp").is_none());
        assert!(parse_cell("{\"fingerprint\":\"fp\"}", "fp").is_none());
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned: cache file names must not change across builds.
        assert_eq!(fnv1a(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a("a"), fnv1a("b"));
    }

    #[test]
    fn store_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("phelps-cache-tmp-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        store(&dir, "fp", &sample());
        let names: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names.len(), 1, "exactly the renamed file: {names:?}");
        assert!(names[0].ends_with(".json"));
        assert!(load(&dir, "fp").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_locks_serialize_same_key() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let locks = KeyLocks::new();
        let inside = AtomicUsize::new(0);
        let max_inside = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..50 {
                        let _g = locks.lock("same-key");
                        let n = inside.fetch_add(1, Ordering::SeqCst) + 1;
                        max_inside.fetch_max(n, Ordering::SeqCst);
                        std::thread::yield_now();
                        inside.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(
            max_inside.load(Ordering::SeqCst),
            1,
            "mutual exclusion per key"
        );
    }

    #[test]
    fn key_locks_distinct_keys_do_not_block() {
        let locks = KeyLocks::new();
        let _a = locks.lock("a");
        // Same thread: would deadlock if "b" contended with "a".
        let _b = locks.lock("b");
    }
}
