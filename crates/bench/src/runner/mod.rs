//! Declarative experiment matrix with a parallel, cached executor.
//!
//! Every figure binary declares its experiment as a set of *cells* —
//! (workload, configuration) pairs bound to a simulation thunk — and
//! hands them to [`Experiment::run`]. The runner then:
//!
//! * filters cells against `--only=<substr>` / `PHELPS_ONLY` (and lists
//!   them under `--list`),
//! * skips cells whose result is already in the on-disk cache
//!   (`results/cache/` or `PHELPS_CACHE_DIR`, keyed by a content
//!   fingerprint of the workload name, configuration label and full
//!   `RunConfig`; `PHELPS_NO_CACHE=1` bypasses it),
//! * executes the remaining cells on a scoped-thread work queue
//!   (`PHELPS_JOBS` workers, default = available parallelism), and
//! * collects results in submission order, so output tables and
//!   `PHELPS_TRACE` telemetry files are byte-identical regardless of the
//!   worker count.
//!
//! Telemetry registries are installed per worker *thread-locally*, so
//! parallel cells never mix their counters; the harvested reports ride
//! back on each [`SimResult`] and are appended to the trace output in
//! submission order.

pub mod cache;

use crate::exec::{execute_cell_prepared, CellRequest, ExecPolicy};
use crate::{exp_config, trace};
use phelps::sim::{simulate, simulate_corun_pair, Mode, RunConfig, SimResult};
use phelps_isa::Cpu;
use phelps_runahead::{simulate_runahead, BrVariant};
use phelps_telemetry as tlm;
use phelps_uarch::config::CoreConfig;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Options every figure binary accepts.
#[derive(Clone, Debug, Default)]
pub struct CliOptions {
    /// Case-insensitive substring filter over `workload/config` cell
    /// names (`--only=<substr>`, falling back to `PHELPS_ONLY`).
    pub only: Option<String>,
    /// Print the cell names and exit without simulating (`--list`).
    pub list: bool,
}

/// Parses the process arguments (ignoring unknown ones, so binaries can
/// layer their own flags) and the `PHELPS_ONLY` fallback.
pub fn parse_cli() -> CliOptions {
    let mut opts = CliOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--list" {
            opts.list = true;
        } else if let Some(v) = a.strip_prefix("--only=") {
            opts.only = Some(v.to_string());
        } else if a == "--only" {
            opts.only = args.next();
        }
    }
    if opts.only.is_none() {
        opts.only = std::env::var("PHELPS_ONLY").ok().filter(|s| !s.is_empty());
    }
    opts
}

/// One unit of work: a (workload, configuration) pair bound to a
/// simulation thunk and a content fingerprint for caching. The thunk
/// receives the cell's telemetry config (if tracing is on) and owns its
/// installation — single-run cells install on the worker thread,
/// sharded cells forward it to each shard thread.
struct Cell {
    workload: String,
    config: String,
    key: String,
    job: Box<dyn FnOnce(Option<tlm::Config>) -> Option<SimResult> + Send>,
}

/// The outcome of one cell.
#[derive(Debug)]
pub struct CellResult {
    /// Row (workload) label.
    pub workload: String,
    /// Column (configuration) label.
    pub config: String,
    /// The simulation result; `None` when the thunk failed (it has
    /// already warned) or the user filtered the cell away mid-run.
    pub result: Option<SimResult>,
    /// Whether the result was served from the on-disk cache.
    pub from_cache: bool,
    /// Whether the result is a proxy prediction (`PHELPS_PROXY`), not a
    /// simulation: only IPC/MPKI-bearing counters are populated and the
    /// cell was never written to the result cache.
    pub predicted: bool,
}

/// All cell outcomes of one experiment, in submission order.
#[derive(Debug)]
pub struct MatrixResults {
    /// Per-cell outcomes, in the order the cells were declared.
    pub cells: Vec<CellResult>,
    /// Cells served from the cache.
    pub hits: usize,
    /// Cells actually simulated.
    pub simulated: usize,
    /// Cells removed by the `--only` filter.
    pub filtered: usize,
    /// Cells backfilled with proxy predictions.
    pub predicted: usize,
}

impl MatrixResults {
    /// The result for one (workload, configuration) cell, if it ran.
    pub fn get(&self, workload: &str, config: &str) -> Option<&SimResult> {
        self.cells
            .iter()
            .find(|c| c.workload == workload && c.config == config)
            .and_then(|c| c.result.as_ref())
    }

    /// `"~"` when the cell's result is a proxy prediction, `""`
    /// otherwise — the figure binaries append it to their IPC columns so
    /// a triaged table marks predicted cells explicitly.
    pub fn mark(&self, workload: &str, config: &str) -> &'static str {
        let predicted = self
            .cells
            .iter()
            .any(|c| c.workload == workload && c.config == config && c.predicted);
        if predicted {
            "~"
        } else {
            ""
        }
    }

    /// All distinct workload labels that produced at least one result,
    /// in submission order (the row set after filtering).
    pub fn workloads(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for c in &self.cells {
            if c.result.is_some() && !out.contains(&c.workload.as_str()) {
                out.push(&c.workload);
            }
        }
        out
    }
}

/// A declarative experiment: named cells plus execution policy.
///
/// Policy defaults come from the environment (`PHELPS_JOBS`,
/// `PHELPS_ONLY`, `PHELPS_NO_CACHE`, `PHELPS_CACHE_DIR`,
/// `PHELPS_TRACE`); the builder
/// methods override them explicitly, which the tests use to avoid
/// process-global env-var races.
pub struct Experiment {
    name: String,
    cells: Vec<Cell>,
    jobs: Option<usize>,
    filter: Option<String>,
    list: bool,
    cache_dir: Option<PathBuf>,
    use_cache: bool,
    force_telemetry: bool,
    quiet: bool,
    proxy: Option<(crate::ProxyMode, PathBuf)>,
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("name", &self.name)
            .field("cells", &self.cells.len())
            .finish_non_exhaustive()
    }
}

impl Experiment {
    /// An empty experiment named after its figure/table.
    pub fn new(name: &str) -> Experiment {
        Experiment {
            name: name.to_string(),
            cells: Vec::new(),
            jobs: None,
            filter: None,
            list: false,
            cache_dir: Some(
                std::env::var("PHELPS_CACHE_DIR")
                    .ok()
                    .filter(|s| !s.is_empty())
                    .map(PathBuf::from)
                    .unwrap_or_else(|| PathBuf::from("results/cache")),
            ),
            use_cache: !std::env::var("PHELPS_NO_CACHE").is_ok_and(|v| v != "0"),
            force_telemetry: false,
            quiet: false,
            proxy: None,
        }
    }

    /// Applies parsed command-line options (filter + list mode).
    pub fn with_cli(mut self, opts: &CliOptions) -> Experiment {
        self.filter = opts.only.clone();
        self.list = opts.list;
        self
    }

    /// Overrides the worker count (tests; normally `PHELPS_JOBS`).
    pub fn jobs(mut self, n: usize) -> Experiment {
        self.jobs = Some(n.max(1));
        self
    }

    /// Overrides the cell filter.
    pub fn filter(mut self, f: Option<&str>) -> Experiment {
        self.filter = f.map(str::to_string);
        self
    }

    /// Overrides the cache directory; `None` disables caching. A
    /// `PHELPS_NO_CACHE=1` environment keeps the cache disabled even
    /// when a directory is supplied.
    pub fn cache_dir(mut self, dir: Option<PathBuf>) -> Experiment {
        if dir.is_none() {
            self.use_cache = false;
        }
        self.cache_dir = dir;
        self
    }

    /// Forces per-cell telemetry registries even without `PHELPS_TRACE`
    /// (the reports ride on the results; no trace file is written).
    pub fn telemetry(mut self, on: bool) -> Experiment {
        self.force_telemetry = on;
        self
    }

    /// Suppresses the `[runner]` summary line (tests).
    pub fn quiet(mut self, q: bool) -> Experiment {
        self.quiet = q;
        self
    }

    /// Overrides the proxy mode and model path (tests and the perf
    /// harness; normally `PHELPS_PROXY` / `PHELPS_PROXY_MODEL`).
    pub fn proxy(mut self, mode: crate::ProxyMode, model: PathBuf) -> Experiment {
        self.proxy = Some((mode, model));
        self
    }

    /// Adds a fully custom cell. `key` must capture everything that
    /// determines the result beyond the workload and config labels
    /// (typically `format!("{run_config:?}")` plus any extras).
    pub fn cell(
        &mut self,
        workload: &str,
        config: &str,
        key: String,
        job: impl FnOnce() -> Option<SimResult> + Send + 'static,
    ) {
        self.cell_prepared(workload, config, key, move |tlm_cfg| {
            if let Some(cfg) = tlm_cfg {
                tlm::install(cfg);
            }
            job()
        });
    }

    /// Adds a cell whose job owns telemetry installation (sharded cells
    /// install per shard thread instead of on the worker).
    fn cell_prepared(
        &mut self,
        workload: &str,
        config: &str,
        key: String,
        job: impl FnOnce(Option<tlm::Config>) -> Option<SimResult> + Send + 'static,
    ) {
        self.cells.push(Cell {
            workload: workload.to_string(),
            config: config.to_string(),
            key,
            job: Box::new(job),
        });
    }

    /// Adds a plain simulation cell: `make()` under `mode` with the
    /// standard scaled [`RunConfig`].
    pub fn sim_cell(
        &mut self,
        workload: &str,
        config: &str,
        mode: Mode,
        make: impl FnOnce() -> Cpu + Send + 'static,
    ) {
        let cfg = exp_config(mode);
        self.cfg_cell(workload, config, cfg, make);
    }

    /// Adds a simulation cell with a custom core configuration.
    pub fn core_cell(
        &mut self,
        workload: &str,
        config: &str,
        mode: Mode,
        core: CoreConfig,
        make: impl FnOnce() -> Cpu + Send + 'static,
    ) {
        let mut cfg = exp_config(mode);
        cfg.core = core;
        self.cfg_cell(workload, config, cfg, make);
    }

    /// Adds a simulation cell with an explicit, fully-formed [`RunConfig`].
    ///
    /// With `PHELPS_SHARDS=N` (N > 1) the cell runs through
    /// [`crate::shard::run_sharded_with`]: the run splits into N
    /// checkpoint shards simulated on their own `PHELPS_JOBS` pool and
    /// merges deterministically. The shard count changes the result (a
    /// sharded run is a sampling approximation of the monolithic one),
    /// so it is part of the cache key. Every figure binary's simulation
    /// cells inherit sharding through this path; Branch Runahead cells
    /// ([`Experiment::br_cell`]) use a different engine entry point and
    /// stay unsharded.
    pub fn cfg_cell(
        &mut self,
        workload: &str,
        config: &str,
        cfg: RunConfig,
        make: impl FnOnce() -> Cpu + Send + 'static,
    ) {
        let shards = crate::shard::shard_count();
        if shards > 1 {
            let label = workload.to_string();
            self.cell_prepared(
                workload,
                config,
                format!("{cfg:?}|shards={shards}"),
                move |tlm_cfg| {
                    crate::shard::run_sharded_with(
                        &crate::ckpt_support::CkptPolicy::from_env(),
                        crate::resolved_jobs(),
                        shards,
                        &label,
                        make(),
                        &cfg,
                        tlm_cfg.as_ref(),
                    )
                },
            );
        } else {
            self.cell(workload, config, format!("{cfg:?}"), move || {
                Some(simulate(make(), &cfg))
            });
        }
    }

    /// Adds a co-run cell: `make()` under `cfg` co-scheduled against a
    /// contending `peer` workload (tenant 1, `make_peer()` under
    /// `peer_cfg`) on one shared uncore via
    /// [`phelps::sim::simulate_corun_pair`]. The cell's result is the
    /// primary tenant's co-run outcome with its attributed share of the
    /// uncore contention; pair it with a plain solo cell of the same
    /// (workload, cfg) to read off the interference. The cache key gains
    /// a `|corun=<peer>` suffix (plus the peer's full config) — a
    /// different neighbor is a different machine, while the solo cell's
    /// key stays untouched.
    #[allow(clippy::too_many_arguments)]
    pub fn corun_cell(
        &mut self,
        workload: &str,
        config: &str,
        cfg: RunConfig,
        make: impl FnOnce() -> Cpu + Send + 'static,
        peer: &str,
        peer_cfg: RunConfig,
        make_peer: impl FnOnce() -> Cpu + Send + 'static,
    ) {
        let key = format!("{cfg:?}|peer={peer_cfg:?}|corun={peer}");
        self.cell(workload, config, key, move || {
            let [primary, _] = simulate_corun_pair(make(), &cfg, make_peer(), &peer_cfg);
            Some(primary)
        });
    }

    /// Adds a Branch Runahead cell.
    pub fn br_cell(
        &mut self,
        workload: &str,
        config: &str,
        variant: BrVariant,
        make: impl FnOnce() -> Cpu + Send + 'static,
    ) {
        let cfg = exp_config(Mode::Baseline);
        self.cell(
            workload,
            config,
            format!("{cfg:?}|{variant:?}"),
            move || Some(simulate_runahead(make(), &cfg, variant)),
        );
    }

    fn resolved_jobs(&self) -> usize {
        self.jobs.unwrap_or_else(crate::resolved_jobs)
    }

    /// Executes the matrix and collects results in submission order.
    pub fn run(mut self) -> MatrixResults {
        let total = self.cells.len();
        let all_cells = std::mem::take(&mut self.cells);
        if self.list {
            for c in &all_cells {
                println!("{}/{}", c.workload, c.config);
            }
            return MatrixResults {
                cells: Vec::new(),
                hits: 0,
                simulated: 0,
                filtered: total,
                predicted: 0,
            };
        }

        // Filter.
        let needle = self.filter.as_deref().map(str::to_lowercase);
        let (kept, dropped): (Vec<Cell>, Vec<Cell>) =
            all_cells.into_iter().partition(|c| match &needle {
                Some(n) => format!("{}/{}", c.workload, c.config)
                    .to_lowercase()
                    .contains(n),
                None => true,
            });
        let filtered = dropped.len();
        if let Some(f) = &self.filter {
            if kept.is_empty() && total > 0 {
                eprintln!(
                    "warning: --only={f:?} matched none of the {total} cells \
                     (run with --list to see their names)"
                );
            }
        }

        let want_telemetry = self.force_telemetry || trace::path().is_some();
        // Telemetry reports are never cached, so a traced run must
        // simulate every cell; it still refreshes the cache on the way.
        let read_cache = self.use_cache && !want_telemetry;
        let write_cache = self.use_cache;
        let cache_dir = self.cache_dir.as_deref().filter(|_| write_cache);
        if let Some(dir) = cache_dir {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("warning: cannot create {}: {e}", dir.display());
            }
        }

        let n = kept.len();
        let jobs = self.resolved_jobs().min(n.max(1));
        // Identity copies for the proxy planner; the cells themselves
        // (with their FnOnce jobs) move into the execution slots.
        let meta: Vec<(String, String, String)> = kept
            .iter()
            .map(|c| (c.workload.clone(), c.config.clone(), c.key.clone()))
            .collect();
        let slots: Vec<Mutex<Option<Cell>>> =
            kept.into_iter().map(|c| Mutex::new(Some(c))).collect();
        let out: Vec<Mutex<Option<CellResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let epoch_len = crate::epoch_len();
        let verbose = std::env::var("PHELPS_TRACE_VERBOSE").is_ok_and(|v| v != "0");
        let name = self.name.clone();

        // One cell through the shared execution path (cache + locks +
        // telemetry), writing its outcome slot.
        let exec_cell = |i: usize| {
            let cell = slots[i]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("each cell is taken exactly once");
            let req = CellRequest {
                experiment: name.clone(),
                workload: cell.workload.clone(),
                config: cell.config.clone(),
                key: cell.key,
            };
            let policy = ExecPolicy {
                cache_dir: cache_dir.map(std::path::Path::to_path_buf),
                read_cache,
                write_cache,
                telemetry: want_telemetry.then(|| tlm::Config {
                    epoch_len,
                    verbose,
                    label: format!("{}/{}", cell.workload, cell.config),
                    ..tlm::Config::default()
                }),
            };
            let outcome = execute_cell_prepared(&req, &policy, cell.job);
            *out[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(CellResult {
                workload: cell.workload,
                config: cell.config,
                result: outcome.result,
                from_cache: outcome.from_cache,
                predicted: false,
            });
        };
        // Executes a subset of cells on the worker pool. Claiming from
        // an atomic cursor keeps the index→result mapping independent
        // of the worker count, exactly like the full-matrix pool.
        let run_pool = |indices: &[usize]| {
            if indices.is_empty() {
                return;
            }
            let workers = jobs.min(indices.len());
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| loop {
                        let k = cursor.fetch_add(1, Ordering::Relaxed);
                        if k >= indices.len() {
                            break;
                        }
                        exec_cell(indices[k]);
                    });
                }
            });
        };

        let (proxy_mode, model_path) = self
            .proxy
            .clone()
            .unwrap_or_else(|| (crate::proxy_mode(), crate::proxy_model_path()));
        let model = if proxy_mode == crate::ProxyMode::Off || n == 0 {
            None
        } else if want_telemetry {
            proxy_warn_once(
                "PHELPS_PROXY disabled for this run: telemetry/tracing needs every \
                 cell simulated"
                    .to_string(),
            );
            None
        } else {
            match phelps_proxy::ProxyModel::load(&model_path) {
                Ok(m) => Some(m),
                Err(e) => {
                    proxy_warn_once(format!(
                        "PHELPS_PROXY disabled: {e} (train one with `phelps-proxy train`)"
                    ));
                    None
                }
            }
        };

        let proxy_line = if let Some(model) = model {
            Some(triage(
                &meta, &out, &name, cache_dir, read_cache, proxy_mode, &model, &run_pool,
            ))
        } else {
            let all: Vec<usize> = (0..n).collect();
            run_pool(&all);
            None
        };

        let cells: Vec<CellResult> = out
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(|e| e.into_inner())
                    .expect("worker filled every slot")
            })
            .collect();
        // Submission-ordered trace output: identical files for any
        // PHELPS_JOBS value. The cells are walked in declaration order
        // after the pool drained, so reserve/submit pairs are already
        // contiguous; the shared sink is what keeps daemon-submitted
        // cells (which reserve at queue-pop time) interleaved correctly.
        if let Some(sink) = trace::global() {
            for c in &cells {
                if let Some(rep) = c.result.as_ref().and_then(|r| {
                    if c.from_cache {
                        None
                    } else {
                        r.telemetry.as_deref()
                    }
                }) {
                    sink.submit(sink.reserve(), rep.clone());
                }
            }
        }
        let hits = cells.iter().filter(|c| c.from_cache).count();
        let simulated = cells
            .iter()
            .filter(|c| !c.from_cache && !c.predicted && c.result.is_some())
            .count();
        let predicted = cells.iter().filter(|c| c.predicted).count();
        if !self.quiet {
            println!(
                "[runner] {}: cells={} hits={} simulated={} filtered={} jobs={}",
                self.name,
                cells.len(),
                hits,
                simulated,
                filtered,
                jobs
            );
            if let Some(line) = proxy_line {
                println!("{line}");
            }
        }
        MatrixResults {
            cells,
            hits,
            simulated,
            filtered,
            predicted,
        }
    }
}

/// One-time proxy degradation warning (per process): the first reason
/// the proxy could not run prints, later ones stay quiet, mirroring the
/// env-var warning convention.
fn proxy_warn_once(msg: String) {
    static WARN: std::sync::Once = std::sync::Once::new();
    WARN.call_once(|| eprintln!("warning: {msg}"));
}

/// Plans and executes a proxy-triaged matrix.
///
/// The matrix is split into *anchor groups* — one workload, region, and
/// input variant ([`phelps_proxy::dataset::group_parts`]); each group's
/// anchor (its first baseline cell, or its first cell when no baseline
/// survives the filter) is always simulated, because anchor telemetry
/// is the feature source for every other cell of the group. Cache hits
/// are then peeled off, the model predicts the remaining candidates,
/// and three classes simulate for real:
///
/// * **forced** — cells the model cannot predict (failed anchor,
///   degenerate counters, non-finite prediction);
/// * **frontier** — the most-uncertain candidates: in `strict` mode
///   every cell whose IPC uncertainty exceeds the model's `tau`, in
///   `triage` mode the top-uncertainty cells that fit the budget of
///   `total_cells / 2` full simulations;
/// * **validation** — an evenly-spaced sample (one in eight) of the
///   cells that *would* be predicted, simulated anyway so the run can
///   report a measured predicted-vs-simulated error.
///
/// Everything else is backfilled with synthesized counters
/// ([`phelps_proxy::synthesize_stats`]) and flagged `predicted` — never
/// written to the result cache. Returns the `[proxy]` summary line.
#[allow(clippy::too_many_arguments)]
fn triage(
    meta: &[(String, String, String)],
    out: &[Mutex<Option<CellResult>>],
    name: &str,
    cache_dir: Option<&std::path::Path>,
    read_cache: bool,
    mode: crate::ProxyMode,
    model: &phelps_proxy::ProxyModel,
    run_pool: &dyn Fn(&[usize]),
) -> String {
    use phelps_proxy::dataset::{group_parts, is_anchor_key};
    use std::collections::BTreeMap;
    let n = meta.len();

    // Anchor selection per group, in submission order.
    let mut groups: BTreeMap<(String, String, String), Vec<usize>> = BTreeMap::new();
    for (i, (workload, config, key)) in meta.iter().enumerate() {
        groups
            .entry(group_parts(workload, config, key))
            .or_default()
            .push(i);
    }
    let mut anchor_of = vec![0usize; n];
    let mut anchors: Vec<usize> = Vec::new();
    for members in groups.values() {
        let anchor = members
            .iter()
            .copied()
            .find(|&i| is_anchor_key(&meta[i].2))
            .unwrap_or(members[0]);
        anchors.push(anchor);
        for &i in members {
            anchor_of[i] = anchor;
        }
    }
    anchors.sort_unstable();
    run_pool(&anchors);

    // Peel off cache hits (a peek, not a locked execution: a miss just
    // falls through to prediction or simulation, both of which behave
    // correctly if another process stores the cell meanwhile).
    let mut candidates: Vec<usize> = Vec::new();
    for (i, (workload, config, key)) in meta.iter().enumerate() {
        if anchor_of[i] == i {
            continue;
        }
        if read_cache {
            if let Some(dir) = cache_dir {
                let req = CellRequest {
                    experiment: name.to_string(),
                    workload: workload.clone(),
                    config: config.clone(),
                    key: key.clone(),
                };
                if let Some(result) = cache::load(dir, &req.fingerprint()) {
                    *out[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(CellResult {
                        workload: workload.clone(),
                        config: config.clone(),
                        result: Some(result),
                        from_cache: true,
                        predicted: false,
                    });
                    continue;
                }
            }
        }
        candidates.push(i);
    }

    // Predict every remaining candidate from its anchor's counters.
    let anchor_stats = |i: usize| {
        out[anchor_of[i]]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .and_then(|c| c.result.as_ref())
            .map(|r| (r.stats.clone(), r.breakdown.retired))
    };
    let mut forced: Vec<usize> = Vec::new();
    let mut scored: Vec<(usize, phelps_proxy::Prediction)> = Vec::new();
    for &i in &candidates {
        match anchor_stats(i) {
            Some((stats, _)) if stats.cycles > 0 && stats.mt_retired > 0 => {
                let x = phelps_proxy::feature_vector(
                    &phelps_proxy::anchor_slots_from_stats(&stats),
                    &meta[i].2,
                );
                let p = model.predict(&x);
                if p.ipc.is_finite() && p.mpki.is_finite() {
                    scored.push((i, p));
                } else {
                    forced.push(i);
                }
            }
            _ => forced.push(i),
        }
    }

    // Frontier: in strict mode everything the model is unsure about; in
    // triage mode the most-uncertain cells the simulation budget
    // (half the matrix) still covers after anchors, forced cells, and
    // the validation sample.
    let tau = model.tau_ipc();
    let mut by_unc: Vec<usize> = (0..scored.len()).collect();
    by_unc.sort_by(|&a, &b| {
        scored[b]
            .1
            .ipc_uncertainty
            .partial_cmp(&scored[a].1.ipc_uncertainty)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(scored[a].0.cmp(&scored[b].0))
    });
    let frontier_len = match mode {
        crate::ProxyMode::Strict => scored
            .iter()
            .filter(|(_, p)| p.ipc_uncertainty > tau)
            .count(),
        _ => {
            let budget = n / 2;
            let val_reserve = scored.len().div_ceil(8);
            budget
                .saturating_sub(anchors.len() + forced.len() + val_reserve)
                .min(scored.len())
        }
    };
    let mut simulate = vec![false; scored.len()];
    match mode {
        crate::ProxyMode::Strict => {
            for (s, (_, p)) in scored.iter().enumerate() {
                simulate[s] = p.ipc_uncertainty > tau;
            }
        }
        _ => {
            for &s in by_unc.iter().take(frontier_len) {
                simulate[s] = true;
            }
        }
    }
    let frontier_count = simulate.iter().filter(|&&b| b).count();

    // Validation: an evenly-spaced sample of the would-be-predicted
    // cells, simulated anyway to measure the model against the truth.
    let rest: Vec<usize> = (0..scored.len()).filter(|&s| !simulate[s]).collect();
    let val_len = rest.len().div_ceil(8).min(rest.len());
    let validation: Vec<usize> = (0..val_len)
        .map(|k| rest[k * rest.len() / val_len])
        .collect();
    for &s in &validation {
        simulate[s] = true;
    }

    let mut to_sim: Vec<usize> = forced.clone();
    to_sim.extend(
        scored
            .iter()
            .enumerate()
            .filter(|(s, _)| simulate[*s])
            .map(|(_, (i, _))| *i),
    );
    to_sim.sort_unstable();
    run_pool(&to_sim);

    // Backfill everything else with flagged predictions. Predicted
    // cells never reach the result cache: their counters are estimates
    // and would poison later runs as measured values.
    let mut predicted = 0usize;
    for (s, (i, p)) in scored.iter().enumerate() {
        if simulate[s] {
            continue;
        }
        let Some((stats, bd_retired)) = anchor_stats(*i) else {
            continue;
        };
        let mut breakdown = phelps::classify::MispredictBreakdown::new();
        breakdown.retired = bd_retired;
        *out[*i].lock().unwrap_or_else(|e| e.into_inner()) = Some(CellResult {
            workload: meta[*i].0.clone(),
            config: meta[*i].1.clone(),
            result: Some(SimResult {
                stats: phelps_proxy::synthesize_stats(&stats, p.ipc, p.mpki),
                breakdown,
                telemetry: None,
                retire_log: None,
                final_state: None,
            }),
            from_cache: false,
            predicted: true,
        });
        predicted += 1;
    }

    // Predicted-vs-measured error over the validation sample.
    let mut val_errs: Vec<f64> = Vec::new();
    for &s in &validation {
        let (i, p) = &scored[s];
        let measured = out[*i]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .and_then(|c| c.result.as_ref())
            .map(|r| r.stats.ipc());
        if let Some(m) = measured {
            val_errs.push((p.ipc - m).abs());
        }
    }
    let (val_mae, val_max) = if val_errs.is_empty() {
        (f64::NAN, f64::NAN)
    } else {
        (
            val_errs.iter().sum::<f64>() / val_errs.len() as f64,
            val_errs.iter().fold(0.0f64, |m, &e| m.max(e)),
        )
    };
    let mode_label = match mode {
        crate::ProxyMode::Strict => "strict",
        _ => "triage",
    };
    format!(
        "[proxy] {name}: mode={mode_label} cells={n} anchors={} forced={} frontier={} \
         validation={} predicted={predicted} tau={tau:.4} val_ipc_mae={val_mae:.4} \
         val_ipc_max={val_max:.4}",
        anchors.len(),
        forced.len(),
        frontier_count,
        validation.len(),
    )
}
