//! Submission-ordered `PHELPS_TRACE` telemetry merge.
//!
//! Both front doors — the batch experiment [`runner`] and the
//! `phelps-serve` daemon — harvest one [`Report`] per simulated cell on
//! whatever worker thread ran it, and both owe the user a trace file
//! whose runs appear in *submission* order regardless of worker count
//! or completion order. This module is the single implementation of
//! that merge: callers reserve a sequence ticket when a cell starts
//! executing and later [`TraceSink::submit`] (or [`TraceSink::skip`])
//! it; the sink buffers out-of-order completions and rewrites the JSON
//! and CSV files each time the contiguous prefix grows, so partial
//! output survives a crash mid-experiment.
//!
//! [`runner`]: crate::runner
//! [`Report`]: phelps_telemetry::Report

use phelps_telemetry as tlm;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// The `PHELPS_TRACE` output path, when tracing is enabled.
pub fn path() -> Option<String> {
    std::env::var("PHELPS_TRACE").ok().filter(|p| !p.is_empty())
}

/// The process-wide sink for the `PHELPS_TRACE` path, created on first
/// use; `None` when tracing is off. All front doors share it, so their
/// reports interleave by ticket order instead of clobbering each other.
pub fn global() -> Option<&'static TraceSink> {
    static SINK: OnceLock<Option<TraceSink>> = OnceLock::new();
    SINK.get_or_init(|| path().map(TraceSink::new)).as_ref()
}

/// An ordered, crash-tolerant telemetry merge writing one JSON document
/// (`{"runs": [...]}`) plus a sibling per-epoch CSV.
#[derive(Debug)]
pub struct TraceSink {
    path: String,
    tickets: AtomicU64,
    state: Mutex<SinkState>,
}

#[derive(Debug, Default)]
struct SinkState {
    /// Next ticket expected in the contiguous flushed prefix.
    next: u64,
    /// Out-of-order completions (`None` = skipped ticket).
    pending: BTreeMap<u64, Option<tlm::Report>>,
    /// Flushed reports, in ticket order.
    runs: Vec<tlm::Report>,
}

impl TraceSink {
    /// A sink writing to `path` (and the sibling `.csv`).
    pub fn new(path: impl Into<String>) -> TraceSink {
        TraceSink {
            path: path.into(),
            tickets: AtomicU64::new(0),
            state: Mutex::new(SinkState::default()),
        }
    }

    /// Reserves the next sequence ticket. Call at the moment a cell
    /// *starts* executing (under the queue lock, for pools that pop
    /// concurrently) so ticket order equals submission order.
    pub fn reserve(&self) -> u64 {
        self.tickets.fetch_add(1, Ordering::Relaxed)
    }

    /// Delivers the report for ticket `seq`, flushing every newly
    /// contiguous report to disk.
    pub fn submit(&self, seq: u64, report: tlm::Report) {
        self.deliver(seq, Some(report));
    }

    /// Marks ticket `seq` as producing no report (cache hit after
    /// reservation, failed thunk), so later tickets can still flush.
    pub fn skip(&self, seq: u64) {
        self.deliver(seq, None);
    }

    /// Runs flushed so far, in ticket order (tests).
    pub fn flushed(&self) -> Vec<String> {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.runs.iter().map(|r| r.label.clone()).collect()
    }

    fn deliver(&self, seq: u64, report: Option<tlm::Report>) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.pending.insert(seq, report);
        let mut grew = false;
        while let Some(entry) = {
            let next = state.next;
            state.pending.remove(&next)
        } {
            state.next += 1;
            if let Some(rep) = entry {
                state.runs.push(rep);
                grew = true;
            }
        }
        if grew {
            self.rewrite(&state.runs);
        }
    }

    /// Rewrites the JSON and CSV files from the flushed prefix. Called
    /// with the state lock held, so writes never interleave.
    fn rewrite(&self, runs: &[tlm::Report]) {
        let mut json = String::from("{\"runs\":[");
        for (i, r) in runs.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&r.to_json());
        }
        json.push_str("]}");
        if let Err(e) = std::fs::write(&self.path, json) {
            eprintln!("warning: cannot write {}: {e}", self.path);
        }

        // Sibling CSV: every run's epoch series, with a leading label
        // column.
        let csv_path = match self.path.strip_suffix(".json") {
            Some(stem) => format!("{stem}.csv"),
            None => format!("{}.csv", self.path),
        };
        let mut csv = String::new();
        for (i, r) in runs.iter().enumerate() {
            let body = r.epochs_csv();
            let mut lines = body.lines();
            if let Some(header) = lines.next() {
                if i == 0 {
                    csv.push_str(&format!("label,{header}\n"));
                }
                for line in lines {
                    csv.push_str(&format!("{},{line}\n", r.label));
                }
            }
        }
        if let Err(e) = std::fs::write(&csv_path, csv) {
            eprintln!("warning: cannot write {csv_path}: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phelps_telemetry::Config;

    /// Builds a tiny report through the thread-local registry (each test
    /// runs on its own thread, so installs never collide).
    fn report(label: &str) -> tlm::Report {
        tlm::install(Config {
            epoch_len: 2,
            label: label.to_string(),
            ..Config::default()
        });
        for cycle in 0..4u64 {
            tlm::tick(cycle);
            tlm::add(tlm::Counter::MtRetired, 1);
        }
        *tlm::harvest().expect("registry installed above")
    }

    fn scratch(tag: &str) -> String {
        std::env::temp_dir()
            .join(format!("phelps-trace-{}-{tag}.json", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn out_of_order_submission_flushes_in_ticket_order() {
        let path = scratch("order");
        let sink = TraceSink::new(&path);
        let (t0, t1, t2) = (sink.reserve(), sink.reserve(), sink.reserve());
        sink.submit(t2, report("third"));
        assert_eq!(sink.flushed(), Vec::<String>::new(), "t2 buffers");
        sink.submit(t0, report("first"));
        assert_eq!(sink.flushed(), vec!["first"], "t0 flushes, t2 held");
        sink.submit(t1, report("second"));
        assert_eq!(sink.flushed(), vec!["first", "second", "third"]);
        let text = std::fs::read_to_string(&path).unwrap();
        let first = text.find("first").unwrap();
        let second = text.find("second").unwrap();
        let third = text.find("third").unwrap();
        assert!(first < second && second < third, "file in ticket order");
        let csv = std::fs::read_to_string(path.replace(".json", ".csv")).unwrap();
        assert!(csv.starts_with("label,epoch,"));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.replace(".json", ".csv"));
    }

    #[test]
    fn skipped_tickets_do_not_block_the_prefix() {
        let path = scratch("skip");
        let sink = TraceSink::new(&path);
        let (t0, t1) = (sink.reserve(), sink.reserve());
        sink.submit(t1, report("kept"));
        assert_eq!(sink.flushed(), Vec::<String>::new());
        sink.skip(t0); // cache hit: no report, but the gap must close
        assert_eq!(sink.flushed(), vec!["kept"]);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.replace(".json", ".csv"));
    }
}
