//! # phelps-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation. Each `src/bin/figNN.rs` binary reruns the corresponding
//! experiment and prints the same rows/series the paper reports; this
//! library holds the shared runners and formatting.
//!
//! Region and epoch lengths are scaled for tractable runtimes (see
//! DESIGN.md §1) and overridable via environment variables:
//!
//! * `PHELPS_REGION` — retired main-thread instructions per run
//!   (default 2,000,000; the paper uses 100M SimPoints);
//! * `PHELPS_EPOCH` — epoch length (default 150,000; the paper uses 4M).
//!
//! ## Parallel execution and caching
//!
//! The [`runner`] module executes a figure's whole (workload ×
//! configuration) matrix on a work queue of `PHELPS_JOBS` threads,
//! serving unchanged cells from the on-disk cache (`results/cache/`,
//! bypassed with `PHELPS_NO_CACHE=1`) and filtering cells with
//! `--only=<substr>` / `PHELPS_ONLY`. All nine figure binaries go
//! through it.
//!
//! ## Telemetry
//!
//! Setting `PHELPS_TRACE=<path>` makes the [`runner`] install a
//! [`phelps_telemetry`] registry for each simulated cell (thread-local,
//! so parallel workers never mix counters) and write the harvested
//! reports to `<path>` as one JSON document (`{"runs": [...]}`), plus
//! the per-epoch series of every run as a sibling CSV, in cell
//! submission order regardless of the worker count.
//! `PHELPS_TRACE_VERBOSE=1` additionally records high-frequency events
//! (per-mispredict, per-DRAM-miss). See DESIGN.md's telemetry section
//! for the schema. Tracing forces every cell to simulate (telemetry is
//! never served from the cache).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ckpt_support;
pub mod exec;
pub mod runner;
pub mod shard;
pub mod trace;

use phelps::sim::{simulate, simulate_warmed, Mode, PhelpsFeatures, RunConfig, SimResult};
use phelps_isa::{Cpu, EmuError};
use phelps_runahead::{simulate_runahead, BrVariant};
use phelps_uarch::config::CoreConfig;

/// Emits `warning: <msg>` once per process per environment-variable
/// name — the `PHELPS_PROXY` convention generalized, so a bad value in a
/// variable consulted many times per run (e.g. `PHELPS_SHARDS` per cell)
/// does not spam the log.
fn warn_env_once(name: &'static str, msg: std::fmt::Arguments<'_>) {
    use std::collections::BTreeSet;
    use std::sync::Mutex;
    static WARNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    if WARNED.lock().map(|mut s| s.insert(name)).unwrap_or(false) {
        eprintln!("warning: {msg}");
    }
}

/// Parses `name` as u64, warning (once per process) when the variable is
/// set but unparsable instead of silently using the default.
fn env_u64(name: &'static str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => match v.trim().parse() {
            Ok(n) => n,
            Err(_) => {
                warn_env_once(
                    name,
                    format_args!("ignoring unparsable {name}={v:?}; using default {default}"),
                );
                default
            }
        },
        Err(_) => default,
    }
}

/// Retired-instruction budget for one run.
pub fn region_len() -> u64 {
    env_u64("PHELPS_REGION", 2_000_000)
}

/// Epoch length used by the delinquency/construction machinery.
pub fn epoch_len() -> u64 {
    env_u64("PHELPS_EPOCH", 150_000)
}

/// How the learned proxy participates in a sweep (`PHELPS_PROXY`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProxyMode {
    /// No proxy: every cell simulates or cache-hits (the default; output
    /// is byte-identical to a build without the proxy).
    #[default]
    Off,
    /// Budgeted triage: predict every cell, fully simulate the anchors,
    /// the most-uncertain frontier, and a fixed validation sample, up to
    /// half the matrix; backfill the rest with predictions.
    Triage,
    /// Uncertainty-gated: a prediction replaces a simulation *only*
    /// when its uncertainty is within the model's cross-validated error
    /// band — no budget ever truncates the uncertain frontier.
    Strict,
}

/// Parses `PHELPS_PROXY` (`off` | `triage` | `strict`), warning once
/// per process on an unknown value and falling back to `off` — the
/// same convention as the other bench env vars, hoisted to a
/// [`std::sync::Once`] because the runner may consult the mode many
/// times per run.
pub fn proxy_mode() -> ProxyMode {
    match std::env::var("PHELPS_PROXY") {
        Ok(v) => match v.trim().to_lowercase().as_str() {
            "" | "off" | "0" => ProxyMode::Off,
            "triage" => ProxyMode::Triage,
            "strict" => ProxyMode::Strict,
            _ => {
                static WARN: std::sync::Once = std::sync::Once::new();
                WARN.call_once(|| {
                    eprintln!(
                        "warning: ignoring unknown PHELPS_PROXY={v:?}; \
                         expected off|triage|strict, using off"
                    );
                });
                ProxyMode::Off
            }
        },
        Err(_) => ProxyMode::Off,
    }
}

/// The proxy model file consulted under `PHELPS_PROXY`:
/// `PHELPS_PROXY_MODEL` or the `phelps-proxy train` default.
pub fn proxy_model_path() -> std::path::PathBuf {
    std::env::var("PHELPS_PROXY_MODEL")
        .ok()
        .filter(|s| !s.is_empty())
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results/proxy/model.json"))
}

/// Worker-thread count: `PHELPS_JOBS`, defaulting to the machine's
/// available parallelism. One knob bounds both the runner's cell pool
/// and the shard pool ([`shard`], [`run_simpoints`]); it is pure
/// execution parallelism and never changes any result byte.
pub fn resolved_jobs() -> usize {
    let default = || {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    };
    match std::env::var("PHELPS_JOBS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            Ok(_) => {
                warn_env_once(
                    "PHELPS_JOBS",
                    format_args!("PHELPS_JOBS must be >= 1; using 1"),
                );
                1
            }
            Err(_) => {
                let d = default();
                warn_env_once(
                    "PHELPS_JOBS",
                    format_args!("ignoring unparsable PHELPS_JOBS={v:?}; using default {d}"),
                );
                d
            }
        },
        Err(_) => default(),
    }
}

/// A named list of workload constructors, the shape every figNN binary
/// iterates over.
pub type WorkloadSet = Vec<(&'static str, Box<dyn Fn() -> phelps_workloads::Workload>)>;

/// A named list of simulation thunks (workload × mode already bound).
pub type ConfigSet = Vec<(&'static str, Box<dyn Fn() -> SimResult>)>;

/// The scaled run configuration shared by all experiments.
pub fn exp_config(mode: Mode) -> RunConfig {
    RunConfig::quick(mode, region_len(), epoch_len())
}

/// Runs one workload in one mode. Telemetry installation and trace
/// output are owned by the [`runner`]; calling this directly simulates
/// under whatever registry (if any) the caller installed.
pub fn run(cpu: Cpu, mode: Mode) -> SimResult {
    simulate(cpu, &exp_config(mode))
}

/// Runs one workload with a custom core configuration.
pub fn run_with_core(cpu: Cpu, mode: Mode, core: CoreConfig) -> SimResult {
    let mut cfg = exp_config(mode);
    cfg.core = core;
    simulate(cpu, &cfg)
}

/// Runs one workload under a Branch Runahead variant.
pub fn run_br(cpu: Cpu, variant: BrVariant) -> SimResult {
    simulate_runahead(cpu, &exp_config(Mode::Baseline), variant)
}

/// Positions the CPU at retired-instruction offset `skip`, then simulates
/// a region of `region_len()` instructions in `mode` (the SimPoint
/// methodology: timing starts at the representative region's offset).
///
/// The pre-region skip goes through the checkpoint store keyed by
/// `label` (see [`ckpt_support`]): the first run fast-forwards
/// functionally and saves a checkpoint; later runs — under any mode —
/// restore it in O(resident pages). With `PHELPS_CKPT_WARM=W` the last W
/// pre-region instructions functionally warm the caches and branch
/// predictor; W=0 (the default) is bit-identical to a cold fast-forward.
///
/// Fails when the functional fast-forward itself faults (bad region
/// offset, workload shorter than `skip`).
pub fn run_region(label: &str, cpu: Cpu, skip: u64, mode: Mode) -> Result<SimResult, EmuError> {
    let (cpu, warm) = ckpt_support::region_cpu(label, cpu, skip)?;
    Ok(simulate_warmed(cpu, &exp_config(mode), &warm))
}

/// Simulates one SimPoint region of `label`, warning (and returning
/// `None`) when the pre-region skip faults — the shared policy for every
/// SimPoint driver, so a bad region offset degrades to a skipped point
/// everywhere instead of aborting the whole evaluation.
pub fn run_simpoint_region(
    label: &str,
    cpu: Cpu,
    p: &phelps_workloads::simpoints::SimPoint,
    mode: Mode,
) -> Option<SimResult> {
    match run_region(label, cpu, p.start_inst, mode) {
        Ok(r) => Some(r),
        Err(e) => {
            eprintln!(
                "warning: skipping simpoint at inst {} (weight {:.3}): fast-forward failed: {e}",
                p.start_inst, p.weight
            );
            None
        }
    }
}

/// The outcome of a full SimPoint evaluation (see [`run_simpoints`]).
#[derive(Debug)]
pub struct SimPointRun {
    /// Weighted-harmonic-mean IPC over the surviving points — the
    /// paper's per-benchmark aggregate.
    pub hmean_ipc: f64,
    /// Per-point results, in point order.
    pub points: Vec<(phelps_workloads::simpoints::SimPoint, SimResult)>,
    /// Every per-point result folded through `SimResult::merge` in point
    /// order: summed counters, spliced telemetry series. `None` when no
    /// point survived.
    pub merged: Option<SimResult>,
}

/// Full SimPoint evaluation of one workload instance: profiles it,
/// selects representative regions, simulates each region as a shard on
/// the `PHELPS_JOBS` thread pool, and aggregates — the weighted harmonic
/// mean of per-point IPCs plus the merged counter/telemetry bundle.
///
/// Missing region checkpoints are captured in one pre-pass, so the
/// per-point shards restore instead of fast-forwarding. The prototype
/// `cpu` is constructed once by the caller and cloned per use (profile
/// pass, pre-capture pass, one clone per shard) — workload factories are
/// no longer re-invoked per point.
///
/// The output is deterministic in `PHELPS_JOBS`: shards are independent
/// and fold in point order, so any worker count yields byte-identical
/// per-point and merged results (CI-enforced; see `scripts/ci.sh`).
pub fn run_simpoints(
    label: &str,
    cpu: Cpu,
    mode: Mode,
    profile_insts: u64,
    spcfg: &phelps_workloads::simpoints::SimPointConfig,
) -> SimPointRun {
    run_simpoints_with(
        label,
        cpu,
        &exp_config(mode),
        profile_insts,
        spcfg,
        &ckpt_support::CkptPolicy::from_env(),
        resolved_jobs(),
        None,
    )
}

/// [`run_simpoints`] with every policy explicit: the per-region
/// [`RunConfig`], checkpoint policy, worker count, and an optional
/// telemetry config installed per shard (after checkpoint positioning,
/// so nondeterministic restore-time counters stay out of the merged
/// report). Tests use this to avoid process-global env-var races.
#[allow(clippy::too_many_arguments)]
pub fn run_simpoints_with(
    label: &str,
    cpu: Cpu,
    cfg: &RunConfig,
    profile_insts: u64,
    spcfg: &phelps_workloads::simpoints::SimPointConfig,
    ckpt: &ckpt_support::CkptPolicy,
    workers: usize,
    telemetry: Option<&phelps_telemetry::Config>,
) -> SimPointRun {
    let points = phelps_workloads::simpoints::select_simpoints(cpu.clone(), profile_insts, spcfg);
    let starts: Vec<u64> = points.iter().map(|p| p.start_inst).collect();
    if let Err(e) = ckpt_support::ensure_region_checkpoints_with(ckpt, label, cpu.clone(), &starts)
    {
        eprintln!("warning: checkpoint pre-capture for {label} failed: {e}");
    }
    let shard_results = exec::run_indexed(points.len(), workers, |i| {
        let p = &points[i];
        match shard::run_shard(ckpt, label, cpu.clone(), p.start_inst, cfg, telemetry) {
            Ok(r) => Some(r),
            Err(e) => {
                eprintln!(
                    "warning: skipping simpoint at inst {} (weight {:.3}): \
                     fast-forward failed: {e}",
                    p.start_inst, p.weight
                );
                None
            }
        }
    });
    let results: Vec<(phelps_workloads::simpoints::SimPoint, SimResult)> = points
        .into_iter()
        .zip(shard_results)
        .filter_map(|(p, r)| r.map(|r| (p, r)))
        .collect();
    let hmean_ipc = phelps_uarch::stats::weighted_harmonic_mean_ipc(
        &results
            .iter()
            .map(|(p, r)| (p.weight, r.stats.ipc()))
            .collect::<Vec<_>>(),
    );
    let merged = shard::fold_merge(
        label,
        results.iter().map(|(_, r)| Some(r.clone())).collect(),
    );
    SimPointRun {
        hmean_ipc,
        points: results,
        merged,
    }
}

/// The five standard comparison modes of Fig. 12a.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Config12a {
    /// Baseline superscalar.
    Baseline,
    /// Perfect branch prediction.
    PerfBp,
    /// Full-featured Phelps.
    Phelps,
    /// Branch Runahead with speculative triggering.
    Br,
    /// Branch Runahead on the 12-wide core.
    Br12w,
}

impl Config12a {
    /// Column label.
    pub fn label(self) -> &'static str {
        match self {
            Config12a::Baseline => "baseline",
            Config12a::PerfBp => "perfBP",
            Config12a::Phelps => "Phelps",
            Config12a::Br => "BR",
            Config12a::Br12w => "BR-12w",
        }
    }

    /// Executes this configuration on a prepared CPU.
    pub fn run(self, cpu: Cpu) -> SimResult {
        match self {
            Config12a::Baseline => run(cpu, Mode::Baseline),
            Config12a::PerfBp => run(cpu, Mode::PerfectBp),
            Config12a::Phelps => run(cpu, Mode::Phelps(PhelpsFeatures::full())),
            Config12a::Br => run_br(cpu, BrVariant::Speculative),
            Config12a::Br12w => run_br(cpu, BrVariant::TwelveWide),
        }
    }

    /// Declares this configuration as one runner cell for `workload`.
    pub fn add_cell(
        self,
        exp: &mut runner::Experiment,
        workload: &str,
        make: impl FnOnce() -> Cpu + Send + 'static,
    ) {
        match self {
            Config12a::Baseline => exp.sim_cell(workload, self.label(), Mode::Baseline, make),
            Config12a::PerfBp => exp.sim_cell(workload, self.label(), Mode::PerfectBp, make),
            Config12a::Phelps => exp.sim_cell(
                workload,
                self.label(),
                Mode::Phelps(PhelpsFeatures::full()),
                make,
            ),
            Config12a::Br => exp.br_cell(workload, self.label(), BrVariant::Speculative, make),
            Config12a::Br12w => exp.br_cell(workload, self.label(), BrVariant::TwelveWide, make),
        }
    }
}

/// Prints an aligned text table: a header row then data rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a speedup multiplier as a percentage over baseline.
pub fn pct(speedup: f64) -> String {
    format!("{:+.1}%", (speedup - 1.0) * 100.0)
}

/// Serializes a results table as CSV (RFC-4180-style quoting for cells
/// containing commas, quotes or newlines), for downstream plotting.
pub fn to_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    fn cell(s: &str) -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| cell(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| cell(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Writes a results table as CSV next to the text output (under
/// `results/`), creating the directory if needed. Errors are reported but
/// not fatal — the printed table is the primary artifact.
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create results/: {e}");
        return;
    }
    let path = dir.join(format!("{name}.csv"));
    if let Err(e) = std::fs::write(&path, to_csv(headers, rows)) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_scaling_defaults() {
        // (Do not set the env vars here; parallel tests share the process.)
        assert!(region_len() >= 10_000);
        assert!(epoch_len() >= 1_000);
        assert!(region_len() > epoch_len());
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(1.47), "+47.0%");
        assert_eq!(pct(0.9), "-10.0%");
    }

    #[test]
    fn csv_escapes_properly() {
        let csv = to_csv(
            &["name", "value"],
            &[
                vec!["plain".into(), "1".into()],
                vec!["with,comma".into(), "with \"quote\"".into()],
            ],
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert_eq!(lines[2], "\"with,comma\",\"with \"\"quote\"\"\"");
    }

    #[test]
    fn csv_roundtrips_simple_tables() {
        let rows = vec![vec!["a".to_string(), "2.5".to_string()]];
        let csv = to_csv(&["bench", "ipc"], &rows);
        assert_eq!(csv, "bench,ipc\na,2.5\n");
    }

    #[test]
    fn config12a_labels_unique() {
        let labels = [
            Config12a::Baseline.label(),
            Config12a::PerfBp.label(),
            Config12a::Phelps.label(),
            Config12a::Br.label(),
            Config12a::Br12w.label(),
        ];
        let mut d = labels.to_vec();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), labels.len());
    }
}
