//! Criterion microbenchmarks of the simulator's hot engines: branch
//! predictor lookups, cache probes, prediction-queue operations, CDFSM
//! training, store-cache traffic, helper-thread construction, and
//! end-to-end simulation throughput.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use phelps::cdfsm::CdfsmMatrix;
use phelps::predq::PredictionQueues;
use phelps::sim::{simulate, Mode, PhelpsFeatures, RunConfig};
use phelps::storecache::StoreCache;
use phelps_uarch::bpred::{Bimodal, DirectionPredictor, TageScL};
use phelps_uarch::config::CoreConfig;
use phelps_uarch::mem::{MemRequest, MemoryHierarchy};
use phelps_workloads::astar::{astar_grid, AstarParams};

fn bench_predictors(c: &mut Criterion) {
    let mut g = c.benchmark_group("bpred");
    g.throughput(Throughput::Elements(1));

    let mut tage = TageScL::large();
    let mut x = 1u64;
    g.bench_function("tagescl_predict_speculate_update", |b| {
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let pc = 0x1000 + (x % 64) * 4;
            let actual = (x >> 33) & 1 == 1;
            let pred = tage.predict(pc);
            tage.speculate(pc, actual);
            tage.update(pc, actual, pred);
        })
    });

    let mut bim = Bimodal::new(8192);
    g.bench_function("bimodal_predict_update", |b| {
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let pc = 0x1000 + (x % 64) * 4;
            let actual = (x >> 33) & 1 == 1;
            let pred = bim.predict(pc);
            bim.update(pc, actual, pred);
        })
    });
    g.finish();
}

fn bench_memory(c: &mut Criterion) {
    let mut g = c.benchmark_group("mem");
    g.throughput(Throughput::Elements(1));

    let mut mh = MemoryHierarchy::new(&CoreConfig::paper_default());
    let mut i = 0u64;
    g.bench_function("hierarchy_access_stream", |b| {
        b.iter(|| {
            i += 1;
            mh.request(MemRequest::load(0, 0x40, (i * 8) & 0xf_ffff, i))
        })
    });

    let mut sc = StoreCache::paper_default();
    g.bench_function("store_cache_write_read", |b| {
        b.iter(|| {
            i += 1;
            sc.write((i % 64) * 8, i);
            sc.read(((i + 7) % 64) * 8)
        })
    });
    g.finish();
}

fn bench_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("predq");
    g.throughput(Throughput::Elements(1));
    let mut q = PredictionQueues::new(&[0x10, 0x14, 0x18, 0x1c], 32);
    let mut i = 0u64;
    g.bench_function("deposit_consume_cycle", |b| {
        b.iter(|| {
            i += 1;
            q.deposit(0x10, i & 1 == 0);
            q.deposit(0x14, i & 2 == 0);
            q.deposit(0x18, i & 4 == 0);
            q.deposit(0x1c, i & 8 == 0);
            q.advance_tail();
            let v = q.consume(0x10);
            q.advance_spec_head();
            q.advance_head();
            v
        })
    });
    g.finish();
}

fn bench_cdfsm(c: &mut Criterion) {
    let mut g = c.benchmark_group("cdfsm");
    g.throughput(Throughput::Elements(4));
    let mut m = CdfsmMatrix::new(8, 4);
    let mut i = 0u64;
    g.bench_function("train_iteration", |b| {
        b.iter(|| {
            i += 1;
            m.on_branch_retire(0, 0, i & 1 == 0);
            m.on_branch_retire(1, 1, i & 2 == 0);
            m.on_branch_retire(2, 2, i & 4 == 0);
            m.on_row_retire(4);
            m.on_loop_branch_retire();
        })
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    let insts = 60_000u64;
    g.throughput(Throughput::Elements(insts));

    let params = AstarParams {
        side: 65,
        worklist: 50_000,
        seed: 0xa57a,
    };
    let mut cfg = RunConfig::scaled(Mode::Baseline);
    cfg.max_mt_insts = insts;
    cfg.epoch_len = 20_000;

    g.bench_function("baseline_astar_60k", |b| {
        b.iter_batched(
            || astar_grid(&params),
            |cpu| simulate(cpu, &cfg),
            BatchSize::PerIteration,
        )
    });

    let mut cfg_p = cfg.clone();
    cfg_p.mode = Mode::Phelps(PhelpsFeatures::full());
    g.bench_function("phelps_astar_60k", |b| {
        b.iter_batched(
            || astar_grid(&params),
            |cpu| simulate(cpu, &cfg_p),
            BatchSize::PerIteration,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_predictors,
    bench_memory,
    bench_queues,
    bench_cdfsm,
    bench_end_to_end
);
criterion_main!(benches);
