//! `PHELPS_NO_CACHE` environment handling, isolated in its own test
//! binary (= its own process) because it mutates the environment, which
//! must not race the builder-driven tests in `runner.rs`.

use phelps::sim::{Mode, RunConfig};
use phelps_bench::runner::Experiment;
use phelps_workloads::suite;
use std::path::PathBuf;

fn run_one(dir: PathBuf) -> phelps_bench::runner::MatrixResults {
    let cfg = RunConfig::quick(Mode::Baseline, 20_000, 10_000);
    let mut exp = Experiment::new("runner-env-test")
        .jobs(1)
        .cache_dir(Some(dir))
        .quiet(true);
    exp.cfg_cell("astar", "baseline", cfg, || suite::astar().cpu);
    exp.run()
}

#[test]
fn no_cache_env_bypasses_reads_and_writes() {
    let dir = std::env::temp_dir().join(format!("phelps-runner-env-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Warm the cache with the env unset.
    std::env::remove_var("PHELPS_NO_CACHE");
    let cold = run_one(dir.clone());
    assert_eq!((cold.hits, cold.simulated), (0, 1));
    let warm = run_one(dir.clone());
    assert_eq!((warm.hits, warm.simulated), (1, 0));

    // PHELPS_NO_CACHE=1 bypasses the warm cache entirely.
    std::env::set_var("PHELPS_NO_CACHE", "1");
    let bypass = run_one(dir.clone());
    assert_eq!(
        (bypass.hits, bypass.simulated),
        (0, 1),
        "env bypass re-simulates despite a warm cache"
    );
    assert!(!bypass.cells[0].from_cache);

    // PHELPS_NO_CACHE=0 is explicitly "off": the cache works again.
    std::env::set_var("PHELPS_NO_CACHE", "0");
    let back = run_one(dir.clone());
    assert_eq!((back.hits, back.simulated), (1, 0));

    std::env::remove_var("PHELPS_NO_CACHE");
    let _ = std::fs::remove_dir_all(&dir);
}
