//! Integration tests for the experiment runner: determinism across
//! worker counts, cache hit/miss accounting, invalidation, and corrupt
//! cache entries.
//!
//! All experiments here use explicit builder overrides (`.jobs()`,
//! `.cache_dir()`, `.filter()`, `.telemetry()`, `.quiet()`) instead of
//! environment variables, so the tests can run concurrently in one
//! process. The `PHELPS_NO_CACHE` environment path is covered by the
//! separate `runner_env` test binary (its own process).

use phelps::sim::{simulate_corun_pair, Mode, PhelpsFeatures, RunConfig};
use phelps_bench::runner::{Experiment, MatrixResults};
use phelps_uarch::config::CoreConfig;
use phelps_workloads::suite;
use std::path::PathBuf;
use std::sync::Once;

/// Clears `PHELPS_NO_CACHE` once so a stray developer environment
/// cannot flip the cache tests below into spurious failures.
fn clean_env() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| std::env::remove_var("PHELPS_NO_CACHE"));
}

/// A per-test scratch cache directory, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!("phelps-runner-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }

    fn path(&self) -> PathBuf {
        self.0.clone()
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn tiny_cfg(mode: Mode) -> RunConfig {
    RunConfig::quick(mode, 20_000, 10_000)
}

/// The shared 2×2 matrix (astar/bfs × baseline/phelps).
fn matrix(jobs: usize, cache: Option<PathBuf>, telemetry: bool) -> MatrixResults {
    clean_env();
    let mut exp = Experiment::new("runner-test")
        .jobs(jobs)
        .cache_dir(cache)
        .telemetry(telemetry)
        .quiet(true);
    for name in ["astar", "bfs"] {
        let make = move || suite::gap_workload(name).expect("known workload").cpu;
        exp.cfg_cell(name, "baseline", tiny_cfg(Mode::Baseline), make);
        exp.cfg_cell(
            name,
            "phelps",
            tiny_cfg(Mode::Phelps(PhelpsFeatures::full())),
            make,
        );
    }
    exp.run()
}

#[test]
fn parallel_run_matches_sequential() {
    let seq = matrix(1, None, true);
    let par = matrix(4, None, true);
    assert_eq!(seq.cells.len(), 4);
    assert_eq!(par.cells.len(), 4);
    for (a, b) in seq.cells.iter().zip(&par.cells) {
        assert_eq!((&a.workload, &a.config), (&b.workload, &b.config));
        let ra = a.result.as_ref().expect("sequential cell ran");
        let rb = b.result.as_ref().expect("parallel cell ran");
        assert_eq!(
            format!("{:?}", ra.stats),
            format!("{:?}", rb.stats),
            "SimStats differ for {}/{}",
            a.workload,
            a.config
        );
        let ta = ra.telemetry.as_ref().expect("telemetry harvested");
        let tb = rb.telemetry.as_ref().expect("telemetry harvested");
        assert_eq!(
            ta.counters, tb.counters,
            "telemetry counter totals differ for {}/{}",
            a.workload, a.config
        );
        assert_eq!(ta.label, format!("{}/{}", a.workload, a.config));
    }
}

/// Co-run determinism across worker counts: the two-tenant shared-uncore
/// engine, driven through the runner's worker pool, produces
/// byte-identical per-tenant stats whether the cells run sequentially or
/// on four workers. One cell per tenant of the same (bfs, astar) pair,
/// plus a `corun_cell` for the primary-tenant path the figure binaries
/// use.
#[test]
fn corun_results_are_identical_across_worker_counts() {
    clean_env();
    let corun_matrix = |jobs: usize| {
        let mut exp = Experiment::new("runner-test")
            .jobs(jobs)
            .cache_dir(None)
            .quiet(true);
        for (config, tenant) in [("pair-t0", 0usize), ("pair-t1", 1usize)] {
            let cfg0 = tiny_cfg(Mode::Baseline);
            let cfg1 = tiny_cfg(Mode::Baseline);
            let key = format!("{cfg0:?}|peer={cfg1:?}|corun=astar|tenant={tenant}");
            exp.cell("bfs", config, key, move || {
                let pair = simulate_corun_pair(suite::bfs().cpu, &cfg0, suite::astar().cpu, &cfg1);
                let [t0, t1] = pair;
                Some(if tenant == 0 { t0 } else { t1 })
            });
        }
        exp.corun_cell(
            "bfs",
            "phelps-corun",
            tiny_cfg(Mode::Phelps(PhelpsFeatures::full())),
            || suite::bfs().cpu,
            "astar",
            tiny_cfg(Mode::Baseline),
            || suite::astar().cpu,
        );
        exp.run()
    };
    let seq = corun_matrix(1);
    let par = corun_matrix(4);
    assert_eq!(seq.cells.len(), 3);
    for (a, b) in seq.cells.iter().zip(&par.cells) {
        assert_eq!((&a.workload, &a.config), (&b.workload, &b.config));
        assert_eq!(
            format!("{:?}", a.result.as_ref().expect("jobs=1 cell ran").stats),
            format!("{:?}", b.result.as_ref().expect("jobs=4 cell ran").stats),
            "per-tenant co-run stats differ across worker counts for {}/{}",
            a.workload,
            a.config
        );
    }
    // The shared uncore really coupled the tenants: the primary tenant
    // saw nonzero shared-tier contention.
    let t0 = seq.get("bfs", "pair-t0").expect("tenant 0 cell");
    assert!(
        t0.stats.l2_port_stalls + t0.stats.l3_port_stalls + t0.stats.dram_queue_stalls > 0,
        "contended pair must attribute shared-uncore stalls to tenant 0"
    );
}

#[test]
fn warm_cache_run_simulates_nothing() {
    let dir = ScratchDir::new("warm");
    let cold = matrix(2, Some(dir.path()), false);
    assert_eq!((cold.hits, cold.simulated), (0, 4), "cold run misses");
    let warm = matrix(2, Some(dir.path()), false);
    assert_eq!((warm.hits, warm.simulated), (4, 0), "warm run all hits");
    for (a, b) in cold.cells.iter().zip(&warm.cells) {
        assert!(b.from_cache);
        assert_eq!(
            format!("{:?}", a.result.as_ref().unwrap().stats),
            format!("{:?}", b.result.as_ref().unwrap().stats),
            "cached stats round-trip for {}/{}",
            a.workload,
            a.config
        );
    }
}

#[test]
fn telemetry_forces_simulation_past_a_warm_cache() {
    let dir = ScratchDir::new("telemetry");
    let cold = matrix(1, Some(dir.path()), false);
    assert_eq!(cold.simulated, 4);
    // Telemetry reports are never cached, so a traced run simulates.
    let traced = matrix(1, Some(dir.path()), true);
    assert_eq!((traced.hits, traced.simulated), (0, 4));
    assert!(traced
        .cells
        .iter()
        .all(|c| c.result.as_ref().is_some_and(|r| r.telemetry.is_some())));
}

#[test]
fn changed_core_config_invalidates_cache() {
    clean_env();
    let dir = ScratchDir::new("invalidate");
    let run = |core: CoreConfig| {
        let mut cfg = tiny_cfg(Mode::Baseline);
        cfg.core = core;
        let mut exp = Experiment::new("runner-test")
            .jobs(1)
            .cache_dir(Some(dir.path()))
            .quiet(true);
        exp.cfg_cell("astar", "baseline", cfg, || suite::astar().cpu);
        exp.run()
    };
    let first = run(CoreConfig::paper_default());
    assert_eq!((first.hits, first.simulated), (0, 1));
    // Any CoreConfig change lands in the fingerprint and misses.
    let changed = run(CoreConfig::paper_default().with_window(400));
    assert_eq!((changed.hits, changed.simulated), (0, 1));
    // The original entry is still present and still hits.
    let again = run(CoreConfig::paper_default());
    assert_eq!((again.hits, again.simulated), (1, 0));
}

#[test]
fn corrupt_cache_file_is_a_miss() {
    clean_env();
    let dir = ScratchDir::new("corrupt");
    let run = || {
        let mut exp = Experiment::new("runner-test")
            .jobs(1)
            .cache_dir(Some(dir.path()))
            .quiet(true);
        exp.cfg_cell("astar", "baseline", tiny_cfg(Mode::Baseline), || {
            suite::astar().cpu
        });
        exp.run()
    };
    let cold = run();
    assert_eq!(cold.simulated, 1);
    let entries: Vec<_> = std::fs::read_dir(dir.path())
        .expect("cache dir exists")
        .map(|e| e.expect("readable entry").path())
        .collect();
    assert_eq!(entries.len(), 1, "one cache entry written");
    std::fs::write(&entries[0], "{ not json").expect("clobber cache entry");
    // The corrupt entry warns (stderr) and is treated as a miss...
    let after = run();
    assert_eq!((after.hits, after.simulated), (0, 1));
    // ...and the re-simulated result repairs it.
    let repaired = run();
    assert_eq!((repaired.hits, repaired.simulated), (1, 0));
}

#[test]
fn filter_drops_non_matching_cells() {
    clean_env();
    let build = || {
        let mut exp = Experiment::new("runner-test").jobs(1).quiet(true);
        exp = exp.cache_dir(None);
        for name in ["astar", "bfs"] {
            let make = move || suite::gap_workload(name).expect("known workload").cpu;
            exp.cfg_cell(name, "baseline", tiny_cfg(Mode::Baseline), make);
        }
        exp
    };
    let kept = build().filter(Some("ASTAR")).run();
    assert_eq!(kept.cells.len(), 1, "case-insensitive substring match");
    assert_eq!(kept.filtered, 1);
    assert!(kept.get("astar", "baseline").is_some());
    // A filter matching nothing warns (stderr) but still returns cleanly.
    let none = build().filter(Some("no-such-cell")).run();
    assert_eq!(none.cells.len(), 0);
    assert_eq!(none.filtered, 2);
}
