//! Integration tests for proxy-triaged matrix execution.
//!
//! The flow under test mirrors the intended workflow: warm the result
//! cache with a fully-simulated sweep, train a proxy model from that
//! cache, then re-run the sweep against a *cold* cache with
//! `ProxyMode::Triage` and check that at most half the cells simulate,
//! predicted cells are flagged (and marked `~` in tables) but never
//! written back to the cache, and the whole plan is deterministic.
//!
//! All experiments use explicit builder overrides (`.jobs()`,
//! `.cache_dir()`, `.proxy()`, `.quiet()`) so the tests never touch
//! `PHELPS_PROXY` and can run concurrently in one process.

use phelps::sim::{Mode, PhelpsFeatures, RunConfig};
use phelps_bench::runner::{Experiment, MatrixResults};
use phelps_bench::ProxyMode;
use phelps_workloads::suite;
use std::path::PathBuf;

/// A per-test scratch directory, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!("phelps-proxy-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }

    fn path(&self) -> PathBuf {
        self.0.clone()
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// The seven modes of a fig11-shaped column set.
fn modes() -> [(&'static str, Mode); 7] {
    [
        ("baseline", Mode::Baseline),
        ("perfbp", Mode::PerfectBp),
        ("partition", Mode::PartitionOnly),
        ("phelps-b1", Mode::Phelps(PhelpsFeatures::b1_only())),
        (
            "phelps-b1s1",
            Mode::Phelps(PhelpsFeatures::b1_with_stores()),
        ),
        ("phelps-b1b2", Mode::Phelps(PhelpsFeatures::no_stores())),
        ("phelps-full", Mode::Phelps(PhelpsFeatures::full())),
    ]
}

/// A 2×7 matrix (astar/bfs × the fig11 column set) on tiny regions.
fn matrix(cache: Option<PathBuf>, proxy: Option<(ProxyMode, PathBuf)>) -> MatrixResults {
    let mut exp = Experiment::new("proxy-test")
        .jobs(2)
        .cache_dir(cache)
        .quiet(true);
    if let Some((mode, model)) = proxy {
        exp = exp.proxy(mode, model);
    }
    for name in ["astar", "bfs"] {
        let make = move || suite::gap_workload(name).expect("known workload").cpu;
        for (config, mode) in modes() {
            exp.cfg_cell(name, config, RunConfig::quick(mode, 20_000, 10_000), make);
        }
    }
    exp.run()
}

/// Warms `cache` by full simulation and trains a model from it,
/// returning the saved model path inside `model_dir`.
fn train_model(cache: &ScratchDir, model_dir: &ScratchDir) -> PathBuf {
    let warm = matrix(Some(cache.path()), None);
    assert_eq!(warm.simulated, 14, "cold warm-up simulates every cell");
    let cells = phelps_proxy::scan(&cache.path());
    assert_eq!(cells.len(), 14, "proxy dataset scan sees every cache file");
    let (examples, summary) = phelps_proxy::build_examples(&cells);
    assert_eq!(summary.groups, 2, "one anchor group per workload");
    assert_eq!(examples.len(), 14, "every cell (anchors included) trains");
    let model = phelps_proxy::train_from_examples(&examples, 42, 4).expect("trainable dataset");
    let path = model_dir.path().join("model.json");
    model.save(&path).expect("model saves");
    path
}

#[test]
fn triage_simulates_at_most_half_and_marks_predictions() {
    let warm = ScratchDir::new("half-warm");
    let models = ScratchDir::new("half-model");
    let model = train_model(&warm, &models);

    // Cold cache: triage must plan from predictions, not cache hits.
    let cold = ScratchDir::new("half-cold");
    let res = matrix(Some(cold.path()), Some((ProxyMode::Triage, model)));
    assert_eq!(res.cells.len(), 14);
    assert_eq!(res.hits, 0);
    assert!(
        res.simulated * 2 <= res.cells.len(),
        "triage simulates at most half: {} of {}",
        res.simulated,
        res.cells.len()
    );
    assert!(res.predicted > 0, "some cells are predicted");
    assert_eq!(res.simulated + res.predicted, res.cells.len());

    for c in &res.cells {
        let r = c.result.as_ref().expect("every slot filled");
        assert!(r.stats.ipc().is_finite());
        if c.predicted {
            assert!(!c.from_cache);
            assert_eq!(res.mark(&c.workload, &c.config), "~");
        } else {
            assert_eq!(res.mark(&c.workload, &c.config), "");
        }
    }
    // Anchors (the baseline cells) always simulate for real.
    for name in ["astar", "bfs"] {
        let anchor = res
            .cells
            .iter()
            .find(|c| c.workload == name && c.config == "baseline")
            .expect("anchor cell present");
        assert!(!anchor.predicted, "{name} anchor simulated");
    }
    // Predicted cells never reach the on-disk cache.
    let cached = std::fs::read_dir(cold.path())
        .expect("cache dir exists")
        .count();
    assert_eq!(cached, res.simulated, "only simulated cells are cached");
}

#[test]
fn triage_plan_and_predictions_are_deterministic() {
    let warm = ScratchDir::new("det-warm");
    let models = ScratchDir::new("det-model");
    let model = train_model(&warm, &models);

    let run = |tag: &str| {
        let cold = ScratchDir::new(tag);
        matrix(Some(cold.path()), Some((ProxyMode::Triage, model.clone())))
    };
    let a = run("det-a");
    let b = run("det-b");
    for (x, y) in a.cells.iter().zip(&b.cells) {
        assert_eq!((&x.workload, &x.config), (&y.workload, &y.config));
        assert_eq!(
            x.predicted, y.predicted,
            "triage plan differs for {}/{}",
            x.workload, x.config
        );
        assert_eq!(
            format!("{:?}", x.result.as_ref().unwrap().stats),
            format!("{:?}", y.result.as_ref().unwrap().stats),
            "stats differ for {}/{}",
            x.workload,
            x.config
        );
    }
}

#[test]
fn strict_mode_simulates_every_uncertain_cell_and_off_mode_none() {
    let warm = ScratchDir::new("strict-warm");
    let models = ScratchDir::new("strict-model");
    let model = train_model(&warm, &models);

    // Off mode ignores the model entirely.
    let cold = ScratchDir::new("strict-off");
    let off = matrix(Some(cold.path()), Some((ProxyMode::Off, model.clone())));
    assert_eq!((off.predicted, off.simulated), (0, 14));
    assert!(off.cells.iter().all(|c| !c.predicted));

    // Strict mode may simulate more than the triage budget (every cell
    // over tau), and still never fabricates an anchor.
    let cold = ScratchDir::new("strict-on");
    let strict = matrix(Some(cold.path()), Some((ProxyMode::Strict, model)));
    assert_eq!(strict.cells.len(), 14);
    assert_eq!(strict.simulated + strict.predicted, 14);
    for c in strict.cells.iter().filter(|c| c.config == "baseline") {
        assert!(!c.predicted);
    }
    // A warm cache beats both prediction and simulation: re-running
    // strict against the same cache peels hits for the simulated cells.
    let again = matrix(Some(cold.path()), None);
    assert_eq!(again.hits, strict.simulated, "simulated cells now hit");
}
