//! The sharded-determinism invariant, at the library level: worker
//! count (`PHELPS_JOBS`) is pure execution parallelism and must never
//! change a single byte of a merged result. Both sharded engines —
//! whole-run checkpoint shards ([`phelps_bench::shard::run_sharded_with`])
//! and the SimPoint driver ([`phelps_bench::run_simpoints_with`]) — are
//! run serially and on a parallel pool, and their merged stats *and*
//! serialized telemetry are compared for exact equality.
//!
//! Everything here uses explicit policies (scratch checkpoint dirs, an
//! explicit worker count, an explicit telemetry config) instead of
//! environment variables, so the tests can run concurrently in one
//! process. The end-to-end binary flavor of the same invariant — two
//! `simpoints --merged-out` runs under `PHELPS_JOBS=4` vs `=1`, diffed
//! byte-for-byte — lives in `scripts/ci.sh`.

use phelps::sim::{Mode, PhelpsFeatures, RunConfig, SimResult};
use phelps_bench::ckpt_support::CkptPolicy;
use phelps_bench::shard::{run_sharded_with, shard_count, shard_plan};
use phelps_bench::{run_simpoints_with, SimPointRun};
use phelps_telemetry as tlm;
use phelps_workloads::simpoints::SimPointConfig;
use phelps_workloads::suite;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A fresh private checkpoint store per call; removed on drop.
struct Scratch(CkptPolicy);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir: PathBuf = std::env::temp_dir().join(format!(
            "phelps-shard-eq-{}-{}-{tag}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        Scratch(CkptPolicy {
            enabled: true,
            dir,
            warm: 0,
        })
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0.dir);
    }
}

fn tiny_cfg(mode: Mode) -> RunConfig {
    RunConfig::quick(mode, 20_000, 5_000)
}

fn telemetry(label: &str) -> tlm::Config {
    tlm::Config {
        epoch_len: 5_000,
        label: label.to_string(),
        ..tlm::Config::default()
    }
}

/// Merged results must match exactly: stats structurally, telemetry
/// down to the serialized bytes (the CI contract).
fn assert_identical(serial: &SimResult, parallel: &SimResult) {
    assert_eq!(serial.stats, parallel.stats, "merged stats diverged");
    assert_eq!(
        format!("{:?}", serial.breakdown),
        format!("{:?}", parallel.breakdown),
        "merged breakdown diverged"
    );
    let ser = serial.telemetry.as_deref().expect("serial telemetry");
    let par = parallel.telemetry.as_deref().expect("parallel telemetry");
    assert_eq!(
        ser.to_json(),
        par.to_json(),
        "merged telemetry bytes diverged"
    );
}

#[test]
fn sharded_run_is_independent_of_worker_count() {
    let scratch = Scratch::new("whole-run");
    let cfg = tiny_cfg(Mode::Phelps(PhelpsFeatures::full()));
    let tlm_cfg = telemetry("shard-eq/bfs");
    let run = |workers: usize| {
        run_sharded_with(
            &scratch.0,
            workers,
            4,
            "bfs",
            suite::bfs().cpu,
            &cfg,
            Some(&tlm_cfg),
        )
        .expect("sharded run")
    };
    let serial = run(1);
    let parallel = run(4);
    assert_identical(&serial, &parallel);
    // The decomposition really happened: more instructions than one
    // shard's budget were retired in total.
    let plan = shard_plan(cfg.max_mt_insts, 4);
    assert_eq!(plan.len(), 4);
    assert!(serial.stats.mt_retired > plan[0].len);
}

#[test]
fn simpoints_are_independent_of_worker_count() {
    let scratch = Scratch::new("simpoints");
    let cfg = tiny_cfg(Mode::Baseline);
    let spcfg = SimPointConfig {
        interval_len: 20_000,
        max_points: 3,
        kmeans_iters: 4,
    };
    let tlm_cfg = telemetry("shard-eq/astar");
    let run = |workers: usize| -> SimPointRun {
        run_simpoints_with(
            "astar",
            suite::astar().cpu,
            &cfg,
            200_000,
            &spcfg,
            &scratch.0,
            workers,
            Some(&tlm_cfg),
        )
    };
    let serial = run(1);
    let parallel = run(4);
    assert!(!serial.points.is_empty(), "no simpoint survived");
    assert_eq!(serial.points.len(), parallel.points.len());
    assert_eq!(serial.hmean_ipc.to_bits(), parallel.hmean_ipc.to_bits());
    for ((ps, rs), (pp, rp)) in serial.points.iter().zip(&parallel.points) {
        assert_eq!(ps.start_inst, pp.start_inst);
        assert_eq!(rs.stats, rp.stats, "point at {} diverged", ps.start_inst);
    }
    assert_identical(
        serial.merged.as_ref().expect("serial merged"),
        parallel.merged.as_ref().expect("parallel merged"),
    );
}

#[test]
fn default_shard_count_is_one() {
    // The test harness never sets PHELPS_SHARDS; the default must keep
    // every existing caller on the unsharded path.
    if std::env::var("PHELPS_SHARDS").is_err() {
        assert_eq!(shard_count(), 1);
    }
}
