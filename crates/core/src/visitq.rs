//! Visit Queue (paper §V-F, Fig. 9).
//!
//! For nested loops, the outer-thread queues one entry per inner-loop
//! *visit*: when it retires a not-taken instance of the inner loop's header
//! branch, it allocates a tail entry and writes the live-in values the
//! inner-thread's second live-in register set needs. The inner-thread
//! dequeues the head entry when its current visit fully iterates (loop
//! branch resolves not-taken) and injects moves that read the slots.

use phelps_isa::Reg;

/// Paper capacity: 16 visits.
pub const DEFAULT_VISITS: usize = 16;
/// Paper capacity: 4 live-in slots per visit.
pub const MAX_LIVE_INS: usize = 4;

/// One queued inner-loop visit: the live-in registers and their values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Visit {
    /// `(logical register, value)` pairs for the inner-thread's
    /// outer-thread-supplied live-in set.
    pub live_ins: Vec<(Reg, u64)>,
}

/// Bounded FIFO of inner-loop visits.
///
/// # Examples
///
/// ```
/// use phelps::visitq::{Visit, VisitQueue};
/// use phelps_isa::Reg;
///
/// let mut vq = VisitQueue::new(4);
/// assert!(vq.enqueue(Visit { live_ins: vec![(Reg::A0, 7)] }));
/// let v = vq.dequeue().unwrap();
/// assert_eq!(v.live_ins[0], (Reg::A0, 7));
/// assert!(vq.dequeue().is_none());
/// ```
#[derive(Clone, Debug)]
pub struct VisitQueue {
    entries: std::collections::VecDeque<Visit>,
    capacity: usize,
    /// Visits enqueued over the queue's lifetime.
    pub enqueued: u64,
    /// Enqueue attempts rejected because the queue was full (outer-thread
    /// stall cycles' cause).
    pub full_rejections: u64,
}

impl VisitQueue {
    /// Creates a visit queue holding up to `capacity` visits.
    pub fn new(capacity: usize) -> VisitQueue {
        VisitQueue {
            entries: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            enqueued: 0,
            full_rejections: 0,
        }
    }

    /// Whether the outer-thread can allocate a new entry.
    pub fn has_room(&self) -> bool {
        self.entries.len() < self.capacity
    }

    /// Number of queued visits.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no visits are queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Outer-thread allocates a visit at the tail. Returns `false` (and
    /// counts a rejection) when full — the outer-thread must stall.
    ///
    /// # Panics
    ///
    /// Panics if the visit carries more than [`MAX_LIVE_INS`] live-ins;
    /// such loops are ineligible (paper §V-J) and must be filtered during
    /// construction.
    pub fn enqueue(&mut self, visit: Visit) -> bool {
        assert!(
            visit.live_ins.len() <= MAX_LIVE_INS,
            "at most {MAX_LIVE_INS} live-ins per visit"
        );
        if !self.has_room() {
            self.full_rejections += 1;
            return false;
        }
        self.entries.push_back(visit);
        self.enqueued += 1;
        true
    }

    /// Inner-thread dequeues the head visit, if any.
    pub fn dequeue(&mut self) -> Option<Visit> {
        self.entries.pop_front()
    }

    /// Drops all queued visits (helper-thread termination).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(x: u64) -> Visit {
        Visit {
            live_ins: vec![(Reg::A0, x)],
        }
    }

    #[test]
    fn fifo_order() {
        let mut q = VisitQueue::new(4);
        for i in 0..4 {
            assert!(q.enqueue(v(i)));
        }
        for i in 0..4 {
            assert_eq!(q.dequeue().unwrap().live_ins[0].1, i);
        }
    }

    #[test]
    fn full_queue_rejects_and_counts() {
        let mut q = VisitQueue::new(2);
        assert!(q.enqueue(v(0)));
        assert!(q.enqueue(v(1)));
        assert!(!q.has_room());
        assert!(!q.enqueue(v(2)));
        assert_eq!(q.full_rejections, 1);
        let _ = q.dequeue();
        assert!(q.enqueue(v(2)));
    }

    #[test]
    fn clear_empties() {
        let mut q = VisitQueue::new(4);
        q.enqueue(v(1));
        q.enqueue(v(2));
        q.clear();
        assert!(q.is_empty());
        assert!(q.dequeue().is_none());
    }

    #[test]
    #[should_panic(expected = "live-ins")]
    fn live_in_budget_enforced() {
        let mut q = VisitQueue::new(4);
        let visit = Visit {
            live_ins: vec![
                (Reg::A0, 0),
                (Reg::A1, 1),
                (Reg::A2, 2),
                (Reg::A3, 3),
                (Reg::A4, 4),
            ],
        };
        q.enqueue(visit);
    }

    #[test]
    fn multiple_live_ins_preserved() {
        let mut q = VisitQueue::new(2);
        q.enqueue(Visit {
            live_ins: vec![(Reg::A0, 10), (Reg::S1, 20), (Reg::T3, 30)],
        });
        let got = q.dequeue().unwrap();
        assert_eq!(
            got.live_ins,
            vec![(Reg::A0, 10), (Reg::S1, 20), (Reg::T3, 30)]
        );
    }
}
