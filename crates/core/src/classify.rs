//! Misprediction characterization (paper Fig. 14).
//!
//! Every retired main-thread misprediction is attributed to exactly one
//! bin: either it was *eliminated* (the consumed prediction came from a
//! helper-thread queue and was correct — this bin counts predictions, not
//! mispredictions), or the reason it was **not** eliminated is recorded.

use std::collections::BTreeMap;

/// Why a main-thread branch misprediction was not eliminated by Phelps
/// (or that it was eliminated).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum MispredictClass {
    /// Prediction came from a queue and was correct (a would-be
    /// misprediction eliminated; counted separately from real
    /// mispredictions).
    Eliminated,
    /// Still in the first training stage: measuring delinquency.
    GatheringDelinquency,
    /// Delinquent; helper thread being constructed this epoch.
    HtBeingConstructed,
    /// Delinquent loop detected but not chosen for construction yet
    /// (another loop was picked this epoch).
    HtNotConstructed,
    /// Delinquent, but the constructed helper thread exceeded the 75%
    /// size bound (ineligible).
    HtTooBig,
    /// Delinquent, but not inside any detected loop (e.g. inside a
    /// non-inlined callee).
    NotInLoop,
    /// Delinquent, but the loop doesn't iterate enough per visit to
    /// amortize start/stop overheads (ineligible).
    NotIteratingEnough,
    /// The branch never cleared the delinquency threshold.
    NotDelinquent,
    /// A queue-supplied prediction that was wrong (helper-thread outcome
    /// incorrect or misaligned).
    HtWrongOutcome,
    /// A queue row existed but the helper thread hadn't deposited the
    /// iteration yet (untimely); the default predictor mispredicted.
    HtUntimely,
}

impl MispredictClass {
    /// Label used by the Fig. 14 regeneration harness.
    pub fn label(self) -> &'static str {
        match self {
            MispredictClass::Eliminated => "eliminated misp.",
            MispredictClass::GatheringDelinquency => "gathering delinquency",
            MispredictClass::HtBeingConstructed => "del. but ht being const.",
            MispredictClass::HtNotConstructed => "del. but ht not const.",
            MispredictClass::HtTooBig => "del. but ht too big",
            MispredictClass::NotInLoop => "del. but not in loop",
            MispredictClass::NotIteratingEnough => "del. but ot/ito not iterating enough",
            MispredictClass::NotDelinquent => "not delinquent",
            MispredictClass::HtWrongOutcome => "ht wrong outcome",
            MispredictClass::HtUntimely => "ht untimely",
        }
    }

    /// All classes, in the order the figure stacks them.
    pub fn all() -> [MispredictClass; 10] {
        [
            MispredictClass::Eliminated,
            MispredictClass::GatheringDelinquency,
            MispredictClass::HtBeingConstructed,
            MispredictClass::HtNotConstructed,
            MispredictClass::HtTooBig,
            MispredictClass::NotInLoop,
            MispredictClass::NotIteratingEnough,
            MispredictClass::NotDelinquent,
            MispredictClass::HtWrongOutcome,
            MispredictClass::HtUntimely,
        ]
    }
}

/// Accumulates the Fig. 14 breakdown. The counts live in a `BTreeMap`
/// so iteration (and `Debug`) order is deterministic — sharded runs
/// compare merged breakdowns byte-for-byte across worker counts, and a
/// hash-seeded map order would fail that even with identical contents.
#[derive(Clone, Debug, Default)]
pub struct MispredictBreakdown {
    counts: BTreeMap<MispredictClass, u64>,
    /// Main-thread instructions retired (for the MPKI denominator).
    pub retired: u64,
}

impl MispredictBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> MispredictBreakdown {
        MispredictBreakdown::default()
    }

    /// Records one classified event.
    pub fn record(&mut self, class: MispredictClass) {
        *self.counts.entry(class).or_insert(0) += 1;
    }

    /// Adds `n` events in one class at once (bulk reconstruction, e.g.
    /// when a cached breakdown is reloaded from disk).
    pub fn add(&mut self, class: MispredictClass, n: u64) {
        if n > 0 {
            *self.counts.entry(class).or_insert(0) += n;
        }
    }

    /// Count in one class.
    pub fn count(&self, class: MispredictClass) -> u64 {
        self.counts.get(&class).copied().unwrap_or(0)
    }

    /// MPKI contribution of one class.
    pub fn mpki(&self, class: MispredictClass) -> f64 {
        if self.retired == 0 {
            0.0
        } else {
            1000.0 * self.count(class) as f64 / self.retired as f64
        }
    }

    /// Folds another run's breakdown into this one: per-class counts and
    /// the retired denominator sum, so per-class MPKI reads as the
    /// whole-run value. Associative and commutative with an empty
    /// breakdown as identity (the same laws as `SimStats::merge`).
    pub fn merge(&mut self, other: &MispredictBreakdown) {
        for (class, n) in &other.counts {
            *self.counts.entry(*class).or_insert(0) += n;
        }
        self.retired = self.retired.saturating_add(other.retired);
    }

    /// Total *residual* (non-eliminated) mispredictions.
    pub fn residual(&self) -> u64 {
        MispredictClass::all()
            .into_iter()
            .filter(|c| *c != MispredictClass::Eliminated)
            .map(|c| self.count(c))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut b = MispredictBreakdown::new();
        b.retired = 1000;
        b.record(MispredictClass::Eliminated);
        b.record(MispredictClass::Eliminated);
        b.record(MispredictClass::NotDelinquent);
        assert_eq!(b.count(MispredictClass::Eliminated), 2);
        assert_eq!(b.count(MispredictClass::NotDelinquent), 1);
        assert_eq!(b.count(MispredictClass::HtTooBig), 0);
        assert_eq!(b.residual(), 1);
        assert!((b.mpki(MispredictClass::NotDelinquent) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn labels_match_figure_legend() {
        assert_eq!(MispredictClass::HtTooBig.label(), "del. but ht too big");
        assert_eq!(
            MispredictClass::NotIteratingEnough.label(),
            "del. but ot/ito not iterating enough"
        );
    }

    #[test]
    fn all_classes_distinct() {
        let all = MispredictClass::all();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn merge_sums_counts_and_denominator() {
        let mut a = MispredictBreakdown::new();
        a.retired = 1000;
        a.add(MispredictClass::Eliminated, 3);
        let mut b = MispredictBreakdown::new();
        b.retired = 3000;
        b.add(MispredictClass::Eliminated, 1);
        b.add(MispredictClass::HtUntimely, 4);
        a.merge(&b);
        assert_eq!(a.retired, 4000);
        assert_eq!(a.count(MispredictClass::Eliminated), 4);
        assert_eq!(a.count(MispredictClass::HtUntimely), 4);
        assert!((a.mpki(MispredictClass::HtUntimely) - 1.0).abs() < 1e-12);
        // Identity.
        let snapshot = (a.retired, a.count(MispredictClass::Eliminated));
        a.merge(&MispredictBreakdown::new());
        assert_eq!(snapshot, (a.retired, a.count(MispredictClass::Eliminated)));
    }

    #[test]
    fn zero_retired_mpki_guard() {
        let b = MispredictBreakdown::new();
        assert_eq!(b.mpki(MispredictClass::Eliminated), 0.0);
    }
}
