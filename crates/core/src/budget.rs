//! Storage-cost model for Phelps' new components (paper Table II).
//!
//! Computes the byte cost of every structure from its parameters, so the
//! `table2` experiment binary can regenerate the paper's cost table and
//! configuration sweeps can report their hardware budget.

/// Parameters of all Phelps structures, with paper defaults.
#[derive(Clone, Debug)]
pub struct ComponentParams {
    /// DBT entries (fully associative).
    pub dbt_entries: u64,
    /// Bits per DBT entry: PC tag + misprediction counter + two loop-bound
    /// pairs with valid bits.
    pub dbt_entry_bits: u64,
    /// DBT-Max entries.
    pub dbt_max_entries: u64,
    /// Bits per DBT-Max entry (DBT index + count).
    pub dbt_max_entry_bits: u64,
    /// Loop Table entries.
    pub lt_entries: u64,
    /// Bits per LT entry.
    pub lt_entry_bits: u64,
    /// HTCB instructions.
    pub htcb_insts: u64,
    /// Bytes per HTCB instruction.
    pub htcb_inst_bytes: u64,
    /// HTCB metadata bytes.
    pub htcb_meta_bytes: u64,
    /// LPT entries (one per logical register).
    pub lpt_entries: u64,
    /// Bits per LPT entry.
    pub lpt_entry_bits: u64,
    /// Store-detect queue entries.
    pub store_queue_entries: u64,
    /// Bits per store-detect entry (address + PC).
    pub store_queue_entry_bits: u64,
    /// CDFSM rows.
    pub cdfsm_rows: u64,
    /// CDFSM columns.
    pub cdfsm_cols: u64,
    /// Branch-list entries.
    pub branch_list_entries: u64,
    /// Bits per branch-list entry.
    pub branch_list_entry_bits: u64,
    /// PC-to-row conversion table entries.
    pub pc_row_entries: u64,
    /// Bits per PC-to-row entry.
    pub pc_row_entry_bits: u64,
    /// HTC rows.
    pub htc_rows: u64,
    /// Instructions per HTC row.
    pub htc_row_insts: u64,
    /// Bits per HTC instruction.
    pub htc_inst_bits: u64,
    /// Metadata bits per HTC row.
    pub htc_row_meta_bits: u64,
    /// Visit Queue visits.
    pub visit_entries: u64,
    /// Live-ins per visit.
    pub visit_live_ins: u64,
    /// Bits per live-in slot.
    pub visit_live_in_bits: u64,
    /// Prediction queues (rows).
    pub predq_rows: u64,
    /// Iterations (columns) per queue.
    pub predq_cols: u64,
    /// Bits per PC tag.
    pub predq_tag_bits: u64,
    /// Speculative D$ data bytes.
    pub spec_dcache_bytes: u64,
    /// Speculative D$ metadata bytes.
    pub spec_dcache_meta_bytes: u64,
    /// Predicate PRF registers.
    pub pred_prf_regs: u64,
    /// Predicate free-list entries.
    pub pred_fl_entries: u64,
    /// Predicate RMTs.
    pub pred_rmts: u64,
    /// Entries per predicate RMT.
    pub pred_rmt_entries: u64,
}

impl ComponentParams {
    /// The paper's Table II parameters.
    pub fn paper_default() -> ComponentParams {
        ComponentParams {
            dbt_entries: 256,
            // 5,280 B / 256 entries = 165 bits.
            dbt_entry_bits: 165,
            dbt_max_entries: 32,
            dbt_max_entry_bits: 21, // 84 B total
            lt_entries: 8,
            lt_entry_bits: 170, // 170 B total
            htcb_insts: 256,
            htcb_inst_bytes: 4,
            htcb_meta_bytes: 62,
            lpt_entries: 32,
            lpt_entry_bits: 30,
            store_queue_entries: 16,
            store_queue_entry_bits: 94,
            cdfsm_rows: 32,
            cdfsm_cols: 16,
            branch_list_entries: 16,
            branch_list_entry_bits: 5,
            pc_row_entries: 32,
            pc_row_entry_bits: 35,
            htc_rows: 4,
            htc_row_insts: 128,
            htc_inst_bits: 38,
            htc_row_meta_bits: 180,
            visit_entries: 16,
            visit_live_ins: 4,
            visit_live_in_bits: 70,
            predq_rows: 16,
            predq_cols: 32,
            predq_tag_bits: 30,
            spec_dcache_bytes: 256,
            spec_dcache_meta_bytes: 236,
            pred_prf_regs: 128,
            pred_fl_entries: 97,
            pred_rmts: 2,
            pred_rmt_entries: 31,
        }
    }
}

/// One line of the cost breakdown.
#[derive(Clone, Debug)]
pub struct CostLine {
    /// Component name as in Table II.
    pub component: &'static str,
    /// Cost in bytes.
    pub bytes: u64,
}

fn bits_to_bytes(bits: u64) -> u64 {
    bits.div_ceil(8)
}

/// Computes the full Table II breakdown.
pub fn cost_breakdown(p: &ComponentParams) -> Vec<CostLine> {
    vec![
        CostLine {
            component: "Delinq. Branch Table (DBT)",
            bytes: bits_to_bytes(p.dbt_entries * p.dbt_entry_bits),
        },
        CostLine {
            component: "DBT-Max",
            bytes: bits_to_bytes(p.dbt_max_entries * p.dbt_max_entry_bits),
        },
        CostLine {
            component: "Loop Table (LT)",
            bytes: bits_to_bytes(p.lt_entries * p.lt_entry_bits),
        },
        CostLine {
            component: "HTCB (instructions)",
            bytes: p.htcb_insts * p.htcb_inst_bytes,
        },
        CostLine {
            component: "HTCB (metadata)",
            bytes: p.htcb_meta_bytes,
        },
        CostLine {
            component: "Last Producer Table (LPT)",
            bytes: bits_to_bytes(p.lpt_entries * p.lpt_entry_bits),
        },
        CostLine {
            component: "store-detect queue",
            bytes: bits_to_bytes(p.store_queue_entries * p.store_queue_entry_bits),
        },
        CostLine {
            component: "CDFSM matrix",
            bytes: bits_to_bytes(p.cdfsm_rows * p.cdfsm_cols * 2),
        },
        CostLine {
            component: "branch list",
            bytes: bits_to_bytes(p.branch_list_entries * p.branch_list_entry_bits),
        },
        CostLine {
            component: "PC-to-row conversion table",
            bytes: bits_to_bytes(p.pc_row_entries * p.pc_row_entry_bits),
        },
        CostLine {
            component: "Helper Thread Cache (HTC)",
            bytes: bits_to_bytes(p.htc_rows * p.htc_row_insts * p.htc_inst_bits),
        },
        CostLine {
            component: "HTC metadata",
            bytes: bits_to_bytes(p.htc_rows * p.htc_row_meta_bits),
        },
        CostLine {
            component: "Visit Queue",
            bytes: bits_to_bytes(p.visit_entries * p.visit_live_ins * p.visit_live_in_bits),
        },
        CostLine {
            component: "Prediction Queues",
            bytes: bits_to_bytes(p.predq_rows * p.predq_cols),
        },
        CostLine {
            component: "Prediction Queue PC tags",
            bytes: bits_to_bytes(p.predq_rows * p.predq_tag_bits),
        },
        CostLine {
            component: "speculative D$ for HT stores",
            bytes: p.spec_dcache_bytes,
        },
        CostLine {
            component: "speculative D$ metadata",
            bytes: p.spec_dcache_meta_bytes,
        },
        CostLine {
            component: "pred-PRF",
            bytes: bits_to_bytes(p.pred_prf_regs * 2),
        },
        CostLine {
            component: "pred-FL",
            bytes: bits_to_bytes(p.pred_fl_entries * 7),
        },
        CostLine {
            component: "pred-RMTs",
            bytes: bits_to_bytes(p.pred_rmts * p.pred_rmt_entries * 7),
        },
    ]
}

/// Total cost in bytes.
pub fn total_cost_bytes(p: &ComponentParams) -> u64 {
    cost_breakdown(p).iter().map(|l| l.bytes).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_line_items() {
        let p = ComponentParams::paper_default();
        let lines = cost_breakdown(&p);
        let get = |name: &str| {
            lines
                .iter()
                .find(|l| l.component == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .bytes
        };
        assert_eq!(get("Delinq. Branch Table (DBT)"), 5280);
        assert_eq!(get("DBT-Max"), 84);
        assert_eq!(get("Loop Table (LT)"), 170);
        assert_eq!(get("HTCB (instructions)"), 1024);
        assert_eq!(get("Last Producer Table (LPT)"), 120);
        assert_eq!(get("store-detect queue"), 188);
        assert_eq!(get("CDFSM matrix"), 128);
        assert_eq!(get("branch list"), 10);
        assert_eq!(get("PC-to-row conversion table"), 140);
        assert_eq!(get("Helper Thread Cache (HTC)"), 2432);
        assert_eq!(get("HTC metadata"), 90);
        assert_eq!(get("Visit Queue"), 560);
        assert_eq!(get("Prediction Queues"), 64);
        assert_eq!(get("Prediction Queue PC tags"), 60);
        assert_eq!(get("speculative D$ for HT stores"), 256);
        assert_eq!(get("pred-PRF"), 32);
        assert_eq!(get("pred-FL"), 85);
        assert_eq!(get("pred-RMTs"), 55, "paper rounds 54.25 to 54");
    }

    #[test]
    fn total_close_to_paper_10_82_kb() {
        let total = total_cost_bytes(&ComponentParams::paper_default());
        let kb = total as f64 / 1024.0;
        assert!(
            (kb - 10.82).abs() < 0.05,
            "total {kb:.2} KB vs paper 10.82 KB"
        );
    }

    #[test]
    fn cost_scales_with_parameters() {
        let mut p = ComponentParams::paper_default();
        let base = total_cost_bytes(&p);
        p.dbt_entries *= 2;
        assert!(total_cost_bytes(&p) > base + 5000);
    }
}
