//! Helper-thread speculative store cache (paper §IV-A).
//!
//! Helper-thread stores commit to a tiny private cache — 32 doublewords in
//! 16 sets × 2 ways — instead of the architectural memory. Evicted data is
//! simply lost: a helper-thread load that re-references a lost address
//! falls through to the (retire-time) memory image, which may be stale or
//! up-to-date depending on whether the main thread's counterpart store has
//! retired yet. This is exactly the mechanism that can produce a rare
//! wrong `b1` outcome whose guarded `b2` outcome remains replayable
//! (paper §IV-B).

/// Doubleword-granularity private cache for helper-thread stores.
///
/// # Examples
///
/// ```
/// use phelps::storecache::StoreCache;
///
/// let mut sc = StoreCache::paper_default();
/// sc.write(0x1000, 42);
/// assert_eq!(sc.read(0x1000), Some(42));
/// assert_eq!(sc.read(0x2000), None); // falls through to memory
/// ```
#[derive(Clone, Debug)]
pub struct StoreCache {
    sets: Vec<[Slot; 2]>,
    stamp: u64,
    /// Writes performed.
    pub writes: u64,
    /// Read hits.
    pub hits: u64,
    /// Evictions (lost data).
    pub evictions: u64,
}

#[derive(Clone, Copy, Debug, Default)]
struct Slot {
    valid: bool,
    dw_addr: u64,
    data: u64,
    lru: u64,
}

impl StoreCache {
    /// The paper's geometry: 16 sets, 2 ways, 8-byte blocks (32 DWs).
    pub fn paper_default() -> StoreCache {
        StoreCache::new(16)
    }

    /// Creates a store cache with `sets` sets of 2 ways.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two.
    pub fn new(sets: usize) -> StoreCache {
        assert!(sets.is_power_of_two());
        StoreCache {
            sets: vec![[Slot::default(); 2]; sets],
            stamp: 0,
            writes: 0,
            hits: 0,
            evictions: 0,
        }
    }

    fn set_of(&self, dw_addr: u64) -> usize {
        (dw_addr & (self.sets.len() as u64 - 1)) as usize
    }

    /// Writes a doubleword at (8-byte-aligned window containing) `addr`.
    pub fn write(&mut self, addr: u64, data: u64) {
        let dw = addr >> 3;
        let set = self.set_of(dw);
        self.stamp += 1;
        self.writes += 1;
        let slots = &mut self.sets[set];
        if let Some(s) = slots.iter_mut().find(|s| s.valid && s.dw_addr == dw) {
            s.data = data;
            s.lru = self.stamp;
            return;
        }
        let victim = slots
            .iter_mut()
            .min_by_key(|s| if s.valid { s.lru } else { 0 })
            .expect("two ways");
        if victim.valid {
            self.evictions += 1; // data is simply lost
        }
        *victim = Slot {
            valid: true,
            dw_addr: dw,
            data,
            lru: self.stamp,
        };
    }

    /// Reads the doubleword containing `addr`, or `None` on miss (caller
    /// falls through to the memory image).
    pub fn read(&mut self, addr: u64) -> Option<u64> {
        let dw = addr >> 3;
        let set = self.set_of(dw);
        self.stamp += 1;
        let stamp = self.stamp;
        if let Some(s) = self.sets[set]
            .iter_mut()
            .find(|s| s.valid && s.dw_addr == dw)
        {
            s.lru = stamp;
            self.hits += 1;
            return Some(s.data);
        }
        None
    }

    /// Invalidates everything (helper-thread termination).
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            for s in set.iter_mut() {
                s.valid = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut sc = StoreCache::paper_default();
        sc.write(0x100, 7);
        assert_eq!(sc.read(0x100), Some(7));
        assert_eq!(sc.read(0x104), Some(7), "same doubleword window");
        assert_eq!(sc.read(0x108), None, "next doubleword");
    }

    #[test]
    fn overwrite_updates_in_place() {
        let mut sc = StoreCache::paper_default();
        sc.write(0x40, 1);
        sc.write(0x40, 2);
        assert_eq!(sc.read(0x40), Some(2));
        assert_eq!(sc.evictions, 0);
    }

    #[test]
    fn conflict_evicts_and_data_is_lost() {
        let mut sc = StoreCache::new(16);
        // Three DWs mapping to set 0: dw addresses 0, 16, 32.
        sc.write(0 << 3, 10);
        sc.write(16 << 3, 20);
        sc.write(32 << 3, 30); // evicts dw 0 (LRU)
        assert_eq!(sc.read(0), None, "evicted data lost");
        assert_eq!(sc.read(16 << 3), Some(20));
        assert_eq!(sc.read(32 << 3), Some(30));
        assert_eq!(sc.evictions, 1);
    }

    #[test]
    fn lru_respects_recency_of_reads() {
        let mut sc = StoreCache::new(16);
        sc.write(0 << 3, 10);
        sc.write(16 << 3, 20);
        let _ = sc.read(0); // refresh dw 0
        sc.write(32 << 3, 30); // evicts dw 16
        assert_eq!(sc.read(0), Some(10));
        assert_eq!(sc.read(16 << 3), None);
    }

    #[test]
    fn clear_empties_everything() {
        let mut sc = StoreCache::paper_default();
        for i in 0..10u64 {
            sc.write(i * 8, i);
        }
        sc.clear();
        for i in 0..10u64 {
            assert_eq!(sc.read(i * 8), None);
        }
    }

    #[test]
    fn capacity_is_thirty_two_doublewords() {
        let mut sc = StoreCache::paper_default();
        for i in 0..32u64 {
            sc.write(i * 8, i);
        }
        assert_eq!(sc.evictions, 0, "exactly fits");
        sc.write(32 * 8, 99);
        assert_eq!(sc.evictions, 1, "33rd distinct DW evicts");
    }
}
