//! Helper-thread construction (paper §V-C, §V-D, §V-E, §V-J).
//!
//! During the construction epoch, the [`Constructor`] watches the main
//! thread's retire stream for the chosen loop:
//!
//! 1. **HTCB** — every retired instruction inside the loop bounds is
//!    collected (capacity 256);
//! 2. **Seeds** — the loop's delinquent branches and backward branch (plus,
//!    for nested loops, the inner loop's header branch in the outer
//!    thread);
//! 3. **IBDA** — when an already-included instruction retires, its
//!    producers (via the Last Producer Table) are added if inside the loop;
//!    producers outside the bounds contribute the source register to a
//!    live-in set;
//! 4. **Store capture** — a 16-entry queue of retired in-loop stores is
//!    searched by each included load's address; a match includes the store;
//! 5. **CDFSM** — immediate guards of branches and included stores are
//!    learned per region (outer / inner);
//! 6. **Finalize** — eligibility checks (§V-J), predicate-register
//!    assignment, and packing into an [`HtcEntry`].

use crate::cdfsm::CdfsmMatrix;
use crate::delinq::LoopBounds;
use crate::htc::{HelperThread, HtInst, HtKind, HtcEntry, ThreadKind, ROW_INSTS};
use crate::predicate::PredSource;
use phelps_isa::{ExecRecord, Inst, Reg, NUM_REGS};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::error::Error;
use std::fmt;

/// Tunable limits of the construction hardware.
#[derive(Clone, Debug)]
pub struct ConstructorConfig {
    /// HTCB capacity in static instructions (paper: 256).
    pub htcb_capacity: usize,
    /// Store-detect queue entries (paper: 16).
    pub store_queue_entries: usize,
    /// Helper thread may not exceed this fraction of the loop's static
    /// instructions (paper: 0.75).
    pub max_ht_fraction: f64,
    /// Minimum average iterations per visit of the outermost loop.
    pub min_iters_per_visit: f64,
    /// Maximum live-in registers copyable from the main thread per thread.
    pub max_mt_live_ins: usize,
    /// Maximum live-ins supplied per visit (paper: 4).
    pub max_visit_live_ins: usize,
    /// Maximum prediction-queue rows per helper thread partition.
    pub max_queue_rows: usize,
    /// Support OR-guards: a row with two CD columns (the `if (a || b)`
    /// scenario, paper §V-K) gets both predicate sources ORed. When
    /// disabled, such a row keeps only its first guard, as in the paper's
    /// evaluated configuration.
    pub or_guards: bool,
    /// Reject loops with *alternate producers* (paper §V-K): an included
    /// control-independent instruction whose source register has different
    /// in-loop producers depending on an earlier branch direction would
    /// compute garbage in the straight-lined helper thread; detection
    /// marks the loop ineligible.
    pub reject_alternate_producers: bool,
}

impl Default for ConstructorConfig {
    fn default() -> ConstructorConfig {
        ConstructorConfig {
            htcb_capacity: 256,
            store_queue_entries: 16,
            max_ht_fraction: 0.75,
            min_iters_per_visit: 8.0,
            max_mt_live_ins: 8,
            max_visit_live_ins: 4,
            max_queue_rows: 16,
            or_guards: true,
            reject_alternate_producers: true,
        }
    }
}

/// The loop chosen for construction (from the Loop Table).
#[derive(Clone, Debug)]
pub struct ConstructionTarget {
    /// Outermost loop bounds.
    pub bounds: LoopBounds,
    /// Inner loop bounds when the target is a nested loop.
    pub inner: Option<LoopBounds>,
    /// PCs of the delinquent branches inside.
    pub delinquent: Vec<u64>,
}

/// Why a loop could not produce an eligible helper thread (§V-J).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ineligibility {
    /// Helper thread exceeds the size bound relative to the loop.
    TooBig {
        /// Helper-thread static instructions.
        ht_insts: usize,
        /// Loop static instructions.
        loop_insts: usize,
    },
    /// The outermost loop does not iterate enough per visit.
    NotIteratingEnough {
        /// Average iterations per visit, ×100.
        avg_iters_x100: u64,
    },
    /// Outer-thread is data-dependent on inner-thread.
    OuterDependsOnInner,
    /// Too many live-in registers to encode.
    TooManyLiveIns {
        /// Observed live-in count.
        count: usize,
    },
    /// More queue rows than prediction-queue hardware.
    TooManyQueueRows {
        /// Observed row count.
        count: usize,
    },
    /// The loop has more static instructions than the HTCB can hold.
    HtcbOverflow,
    /// An included instruction has alternate in-loop producers for one of
    /// its sources (paper §V-K): straight-lined execution would clobber.
    AlternateProducers,
    /// The loop (or its backward branch) was never observed retiring.
    NoLoopObserved,
}

impl fmt::Display for Ineligibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ineligibility::TooBig {
                ht_insts,
                loop_insts,
            } => write!(
                f,
                "helper thread too big ({ht_insts} of {loop_insts} loop insts)"
            ),
            Ineligibility::NotIteratingEnough { avg_iters_x100 } => {
                write!(
                    f,
                    "loop iterates too little ({} avg)",
                    *avg_iters_x100 as f64 / 100.0
                )
            }
            Ineligibility::OuterDependsOnInner => {
                f.write_str("outer-thread data-dependent on inner-thread")
            }
            Ineligibility::TooManyLiveIns { count } => {
                write!(f, "too many live-in registers ({count})")
            }
            Ineligibility::TooManyQueueRows { count } => {
                write!(f, "too many prediction-queue rows ({count})")
            }
            Ineligibility::HtcbOverflow => f.write_str("loop exceeds HTCB capacity"),
            Ineligibility::AlternateProducers => {
                f.write_str("included instruction has alternate in-loop producers")
            }
            Ineligibility::NoLoopObserved => f.write_str("loop never observed retiring"),
        }
    }
}

impl Error for Ineligibility {}

/// Which region (thread) of the target a PC belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Region {
    Outer,
    Inner,
    Outside,
}

/// Per-region CDFSM state: matrix plus the PC→row/column maps.
#[derive(Clone, Debug)]
struct RegionCdfsm {
    matrix: CdfsmMatrix,
    /// Column/branch-row PCs, in allocation order.
    branch_pcs: Vec<u64>,
    /// Store-row PCs → row index.
    store_rows: BTreeMap<u64, usize>,
}

impl RegionCdfsm {
    fn new(branch_pcs: Vec<u64>) -> RegionCdfsm {
        let n = branch_pcs.len();
        // Generous row headroom for stores discovered during training.
        RegionCdfsm {
            matrix: CdfsmMatrix::new(n + 32, n),
            branch_pcs,
            store_rows: BTreeMap::new(),
        }
    }

    fn branch_index(&self, pc: u64) -> Option<usize> {
        self.branch_pcs.iter().position(|&p| p == pc)
    }

    fn ensure_store_row(&mut self, pc: u64) -> usize {
        let next = self.branch_pcs.len() + self.store_rows.len();
        *self.store_rows.entry(pc).or_insert(next)
    }
}

/// Builds helper threads from the retire stream.
#[derive(Clone, Debug)]
pub struct Constructor {
    cfg: ConstructorConfig,
    target: ConstructionTarget,
    /// Collected loop instructions (PC → static instruction).
    htcb: BTreeMap<u64, Inst>,
    htcb_overflow: bool,
    /// Last Producer Table: last retired producer PC per logical register.
    lpt: [Option<u64>; NUM_REGS],
    /// Included helper-thread PCs (both regions).
    included: BTreeSet<u64>,
    /// Recently retired in-loop stores: (address, PC).
    store_queue: VecDeque<(u64, u64)>,
    /// Included store PCs.
    included_stores: BTreeSet<u64>,
    /// Live-in registers per consumer region.
    live_ins_outer: BTreeSet<Reg>,
    live_ins_inner_mt: BTreeSet<Reg>,
    live_ins_inner_ot: BTreeSet<Reg>,
    /// Last seen in-loop producer per (consumer PC, source slot), for
    /// alternate-producer detection (§V-K).
    producer_of: BTreeMap<(u64, usize), u64>,
    /// An included instruction was observed with two different in-loop
    /// producers for the same source.
    has_alternate_producers: bool,
    /// Inner loop's header branch, once observed.
    header_branch: Option<u64>,
    /// Outer-thread referenced a producer inside the inner loop.
    outer_depends_on_inner: bool,
    outer_cdfsm: RegionCdfsm,
    inner_cdfsm: RegionCdfsm,
    /// Outermost-loop trip accounting.
    outer_taken: u64,
    outer_not_taken: u64,
}

impl Constructor {
    /// Starts construction for `target` with default hardware limits.
    pub fn new(target: ConstructionTarget) -> Constructor {
        Constructor::with_config(target, ConstructorConfig::default())
    }

    /// Starts construction with explicit limits.
    pub fn with_config(target: ConstructionTarget, cfg: ConstructorConfig) -> Constructor {
        let (outer_br, inner_br): (Vec<u64>, Vec<u64>) = match target.inner {
            Some(inner) => {
                let outer = target
                    .delinquent
                    .iter()
                    .copied()
                    .filter(|&pc| !inner.contains(pc))
                    .collect();
                let inn = target
                    .delinquent
                    .iter()
                    .copied()
                    .filter(|&pc| inner.contains(pc))
                    .collect();
                (outer, inn)
            }
            None => (Vec::new(), target.delinquent.clone()),
        };
        let mut included: BTreeSet<u64> = target.delinquent.iter().copied().collect();
        // Seeds: delinquent branches plus the backward branch(es).
        included.insert(target.bounds.branch_pc);
        if let Some(inner) = target.inner {
            included.insert(inner.branch_pc);
        }
        Constructor {
            cfg,
            htcb: BTreeMap::new(),
            htcb_overflow: false,
            lpt: [None; NUM_REGS],
            included,
            store_queue: VecDeque::new(),
            included_stores: BTreeSet::new(),
            live_ins_outer: BTreeSet::new(),
            live_ins_inner_mt: BTreeSet::new(),
            live_ins_inner_ot: BTreeSet::new(),
            producer_of: BTreeMap::new(),
            has_alternate_producers: false,
            header_branch: None,
            outer_depends_on_inner: false,
            outer_cdfsm: RegionCdfsm::new(outer_br),
            inner_cdfsm: RegionCdfsm::new(inner_br),
            outer_taken: 0,
            outer_not_taken: 0,
            target,
        }
    }

    /// The construction target.
    pub fn target(&self) -> &ConstructionTarget {
        &self.target
    }

    /// PCs currently included in the helper thread(s).
    pub fn included(&self) -> impl Iterator<Item = u64> + '_ {
        self.included.iter().copied()
    }

    /// The inner loop's header branch, once detected.
    pub fn header_branch(&self) -> Option<u64> {
        self.header_branch
    }

    fn region_of(&self, pc: u64) -> Region {
        if let Some(inner) = self.target.inner {
            if inner.contains(pc) {
                return Region::Inner;
            }
        }
        if self.target.bounds.contains(pc) {
            Region::Outer
        } else {
            Region::Outside
        }
    }

    /// For non-nested targets the single thread is the "inner" region for
    /// CDFSM purposes.
    fn cdfsm_region(&self, pc: u64) -> Region {
        if self.target.inner.is_none() {
            if self.target.bounds.contains(pc) {
                Region::Inner
            } else {
                Region::Outside
            }
        } else {
            self.region_of(pc)
        }
    }

    /// Feeds one retired main-thread instruction.
    pub fn on_retire(&mut self, rec: &ExecRecord) {
        let pc = rec.pc;
        let region = self.region_of(pc);

        if region != Region::Outside {
            // HTCB collection.
            if !self.htcb.contains_key(&pc) {
                if self.htcb.len() >= self.cfg.htcb_capacity {
                    self.htcb_overflow = true;
                } else {
                    self.htcb.insert(pc, rec.inst);
                }
            }

            // Header-branch detection: a forward conditional branch in the
            // outer region that jumps over the inner loop.
            if self.header_branch.is_none() && region == Region::Outer {
                if let (Inst::Branch { target, .. }, Some(inner)) = (&rec.inst, self.target.inner) {
                    if pc < inner.target_pc && *target > inner.branch_pc {
                        self.header_branch = Some(pc);
                        self.included.insert(pc);
                        // The header gets a CDFSM column/row in the outer
                        // region: it is a predicate-producer-like seed.
                        if self.outer_cdfsm.branch_index(pc).is_none() {
                            self.outer_cdfsm.branch_pcs.push(pc);
                            let n = self.outer_cdfsm.branch_pcs.len();
                            self.outer_cdfsm.matrix = CdfsmMatrix::new(n + 32, n);
                        }
                    }
                }
            }
        }

        // IBDA: grow backward slices of included instructions.
        if self.included.contains(&pc) {
            for (slot, src) in rec.inst.srcs().into_iter().enumerate() {
                if src.is_zero() {
                    continue;
                }
                // Alternate-producer detection (§V-K): the same source of
                // the same consumer fed by two different in-loop PCs.
                if let Some(ppc) = self.lpt[src.index()] {
                    if self.target.bounds.contains(ppc) && ppc < pc {
                        match self.producer_of.get(&(pc, slot)) {
                            Some(&prev) if prev != ppc => {
                                self.has_alternate_producers = true;
                            }
                            None => {
                                self.producer_of.insert((pc, slot), ppc);
                            }
                            _ => {}
                        }
                    }
                }
                match self.lpt[src.index()] {
                    Some(ppc) if self.target.bounds.contains(ppc) => {
                        let prod_region = self.region_of(ppc);
                        if region == Region::Outer && prod_region == Region::Inner {
                            // §V-J condition 3.
                            self.outer_depends_on_inner = true;
                        } else {
                            if region == Region::Inner && prod_region == Region::Outer {
                                // OT→IT live-in: the outer thread computes
                                // this value and passes it via the Visit
                                // Queue.
                                self.live_ins_inner_ot.insert(src);
                            }
                            if ppc >= pc {
                                // Loop-carried (upward-exposed) use: on the
                                // helper thread's *first* iteration the
                                // value predates the loop, so it must also
                                // be copied in at trigger (e.g. induction
                                // variables).
                                match region {
                                    Region::Outer => {
                                        self.live_ins_outer.insert(src);
                                    }
                                    Region::Inner
                                        if self.target.inner.is_some()
                                            && prod_region == Region::Outer =>
                                    {
                                        // First iteration of each visit:
                                        // the outer thread holds the value.
                                        self.live_ins_inner_ot.insert(src);
                                    }
                                    Region::Inner if self.target.inner.is_some() => {
                                        // Produced within the inner region:
                                        // the value persists in the
                                        // inner-thread's registers across
                                        // visits; only the trigger needs a
                                        // copy from the main thread.
                                        self.live_ins_inner_mt.insert(src);
                                    }
                                    Region::Inner => {
                                        self.live_ins_outer.insert(src);
                                    }
                                    Region::Outside => {}
                                }
                            }
                            self.included.insert(ppc);
                        }
                    }
                    _ => {
                        // Producer outside the loop (or unobserved):
                        // live-in from the main thread.
                        match region {
                            Region::Outer => {
                                self.live_ins_outer.insert(src);
                            }
                            Region::Inner => {
                                if self.target.inner.is_some() {
                                    self.live_ins_inner_mt.insert(src);
                                } else {
                                    self.live_ins_outer.insert(src);
                                }
                            }
                            Region::Outside => {}
                        }
                    }
                }
            }

            // Store-load dependence capture.
            if rec.inst.is_load() {
                if let Some(&(_, store_pc)) = self
                    .store_queue
                    .iter()
                    .rev()
                    .find(|(addr, _)| *addr == rec.mem_addr)
                {
                    self.included.insert(store_pc);
                    self.included_stores.insert(store_pc);
                }
            }
        }

        // Track retired in-loop stores for conflict detection.
        if rec.inst.is_store() && region != Region::Outside {
            if self.store_queue.len() >= self.cfg.store_queue_entries {
                self.store_queue.pop_front();
            }
            self.store_queue.push_back((rec.mem_addr, pc));
        }

        // LPT update (after producer lookups, so self-recurrences see the
        // previous instance).
        if let Some(dst) = rec.inst.dst() {
            self.lpt[dst.index()] = Some(pc);
        }

        // CDFSM training.
        self.train_cdfsm(rec);

        // Trip accounting for the outermost loop.
        if pc == self.target.bounds.branch_pc {
            if rec.taken {
                self.outer_taken += 1;
            } else {
                self.outer_not_taken += 1;
            }
        }
    }

    fn train_cdfsm(&mut self, rec: &ExecRecord) {
        let pc = rec.pc;
        let region = self.cdfsm_region(pc);
        let (cdfsm, loop_branch_pc) = match region {
            Region::Inner => {
                let lb = self
                    .target
                    .inner
                    .map(|i| i.branch_pc)
                    .unwrap_or(self.target.bounds.branch_pc);
                (&mut self.inner_cdfsm, lb)
            }
            Region::Outer => (&mut self.outer_cdfsm, self.target.bounds.branch_pc),
            Region::Outside => return,
        };
        if pc == loop_branch_pc {
            cdfsm.matrix.on_loop_branch_retire();
            return;
        }
        if let Some(idx) = cdfsm.branch_index(pc) {
            cdfsm.matrix.on_branch_retire(idx, idx, rec.taken);
            return;
        }
        if self.included_stores.contains(&pc) {
            let row = cdfsm.ensure_store_row(pc);
            if row < cdfsm.matrix.rows() {
                cdfsm.matrix.on_row_retire(row);
            }
        }
    }

    /// Average iterations per visit of the outermost loop.
    pub fn avg_iterations_per_visit(&self) -> f64 {
        self.outer_taken as f64 / (self.outer_not_taken.max(1)) as f64
    }

    fn build_thread(&self, kind: ThreadKind) -> HelperThread {
        let region_filter = |pc: u64| -> bool {
            match (kind, self.target.inner) {
                (ThreadKind::InnerOnly, _) => self.target.bounds.contains(pc),
                (ThreadKind::Outer, Some(inner)) => {
                    self.target.bounds.contains(pc) && !inner.contains(pc)
                }
                (ThreadKind::Inner, Some(inner)) => inner.contains(pc),
                _ => false,
            }
        };
        let cdfsm = match kind {
            ThreadKind::Outer => &self.outer_cdfsm,
            _ => &self.inner_cdfsm,
        };
        let loop_branch_pc = match kind {
            ThreadKind::Inner => self.target.inner.expect("nested").branch_pc,
            _ => self.target.bounds.branch_pc,
        };

        // Predicate register assignment: branch columns in PC order.
        let mut pred_branches: Vec<u64> = cdfsm.branch_pcs.clone();
        pred_branches.sort_unstable();
        let pred_of = |pc: u64| -> Option<u8> {
            pred_branches
                .iter()
                .position(|&p| p == pc)
                .map(|i| (i + 1) as u8)
        };
        let or_guards = self.cfg.or_guards;
        let guard_of = |row: usize| -> PredSource {
            // OR-guard (§V-K): a row left with two CD columns is enabled
            // by either guard.
            if or_guards {
                let cds = cdfsm.matrix.cd_columns(row);
                if cds.len() >= 2 {
                    let source = |col: usize| -> Option<(u8, bool)> {
                        let g = match cdfsm.matrix.state(row, col) {
                            crate::cdfsm::CdState::CdT => true,
                            crate::cdfsm::CdState::CdNt => false,
                            _ => return None,
                        };
                        pred_of(cdfsm.branch_pcs[col]).map(|reg| (reg, g))
                    };
                    if let (Some(a), Some(b)) = (source(cds[0]), source(cds[1])) {
                        return PredSource::GuardedOr { a, b };
                    }
                }
            }
            match cdfsm.matrix.immediate_guard(row) {
                Some(g) => {
                    let guard_pc = cdfsm.branch_pcs[g.column];
                    match pred_of(guard_pc) {
                        Some(reg) => PredSource::Guarded {
                            reg,
                            direction: g.direction,
                        },
                        None => PredSource::Always,
                    }
                }
                None => PredSource::Always,
            }
        };

        let mut insts: Vec<HtInst> = Vec::new();
        for &pc in &self.included {
            if !region_filter(pc) {
                continue;
            }
            let Some(&inst) = self.htcb.get(&pc) else {
                continue; // seeded but never observed; dropped
            };
            let (kind_tag, pred_src) = if pc == loop_branch_pc {
                (HtKind::LoopBranch, PredSource::Always)
            } else if Some(pc) == self.header_branch && kind == ThreadKind::Outer {
                let src = cdfsm
                    .branch_index(pc)
                    .map(&guard_of)
                    .unwrap_or(PredSource::Always);
                (HtKind::HeaderBranch, src)
            } else if let Some(row) = cdfsm.branch_index(pc) {
                (
                    HtKind::PredicateProducer {
                        dest: pred_of(pc).expect("branch has a pred reg"),
                    },
                    guard_of(row),
                )
            } else if self.included_stores.contains(&pc) {
                let src = cdfsm
                    .store_rows
                    .get(&pc)
                    .map(|&row| guard_of(row))
                    .unwrap_or(PredSource::Always);
                (HtKind::Store, src)
            } else {
                (HtKind::Plain, PredSource::Always)
            };
            insts.push(HtInst {
                pc,
                inst,
                kind: kind_tag,
                pred_src,
            });
        }
        insts.sort_by_key(|i| i.pc);

        // Queue rows: predicate producers and the header branch. The loop
        // branch gets a row only when it is itself delinquent (e.g. the
        // inner loop's unpredictable backward branch brC); a predictable
        // loop branch stays with the core's default predictor and merely
        // drives the spec_head/tail pointers.
        let mut queue_rows: Vec<u64> = insts
            .iter()
            .filter(|i| {
                matches!(
                    i.kind,
                    HtKind::PredicateProducer { .. } | HtKind::HeaderBranch
                ) || (i.kind == HtKind::LoopBranch && self.target.delinquent.contains(&i.pc))
            })
            .map(|i| i.pc)
            .collect();
        queue_rows.sort_unstable();

        let (live_ins_mt, live_ins_ot) = match kind {
            ThreadKind::InnerOnly => (
                self.live_ins_outer
                    .union(&self.live_ins_inner_mt)
                    .copied()
                    .collect(),
                Vec::new(),
            ),
            ThreadKind::Outer => (self.live_ins_outer.iter().copied().collect(), Vec::new()),
            ThreadKind::Inner => (
                self.live_ins_inner_mt.iter().copied().collect(),
                self.live_ins_inner_ot.iter().copied().collect(),
            ),
        };

        HelperThread {
            kind,
            insts,
            live_ins_mt,
            live_ins_ot,
            queue_rows,
        }
    }

    /// Finalizes construction into an installable HTC entry.
    ///
    /// # Errors
    ///
    /// Returns the [`Ineligibility`] condition (§V-J) when the loop cannot
    /// be profitably pre-executed.
    pub fn finalize(&self, epoch: u64) -> Result<HtcEntry, Ineligibility> {
        if self.htcb_overflow {
            return Err(Ineligibility::HtcbOverflow);
        }
        if self.outer_taken + self.outer_not_taken == 0
            || !self.htcb.contains_key(&self.target.bounds.branch_pc)
        {
            return Err(Ineligibility::NoLoopObserved);
        }
        if self.outer_depends_on_inner {
            return Err(Ineligibility::OuterDependsOnInner);
        }
        if self.cfg.reject_alternate_producers && self.has_alternate_producers {
            return Err(Ineligibility::AlternateProducers);
        }
        let avg = self.avg_iterations_per_visit();
        if avg < self.cfg.min_iters_per_visit {
            return Err(Ineligibility::NotIteratingEnough {
                avg_iters_x100: (avg * 100.0) as u64,
            });
        }

        let nested = self.target.inner.is_some()
            && self
                .htcb
                .contains_key(&self.target.inner.expect("nested").branch_pc);
        let (outer, inner) = if nested {
            (
                Some(self.build_thread(ThreadKind::Outer)),
                self.build_thread(ThreadKind::Inner),
            )
        } else {
            (None, self.build_thread(ThreadKind::InnerOnly))
        };

        // Structural sanity: each thread must end at its loop branch.
        let ends_in_loop_branch =
            |t: &HelperThread| t.insts.last().is_some_and(|i| i.kind == HtKind::LoopBranch);
        if !ends_in_loop_branch(&inner) || outer.as_ref().is_some_and(|o| !ends_in_loop_branch(o)) {
            return Err(Ineligibility::NoLoopObserved);
        }

        // §V-J condition 1: size bound.
        let ht_insts = inner.len() + outer.as_ref().map_or(0, HelperThread::len);
        let loop_insts = self.htcb.len();
        if ht_insts as f64 > self.cfg.max_ht_fraction * loop_insts as f64 {
            return Err(Ineligibility::TooBig {
                ht_insts,
                loop_insts,
            });
        }

        // Hardware row capacity.
        let row_fits = match &outer {
            Some(o) => o.len() <= ROW_INSTS / 2 && inner.len() <= ROW_INSTS / 2,
            None => inner.len() <= ROW_INSTS,
        };
        if !row_fits {
            return Err(Ineligibility::TooBig {
                ht_insts,
                loop_insts: ROW_INSTS,
            });
        }

        // Parameter limits (§V-J last paragraph).
        for t in std::iter::once(&inner).chain(outer.as_ref()) {
            if t.live_ins_mt.len() > self.cfg.max_mt_live_ins {
                return Err(Ineligibility::TooManyLiveIns {
                    count: t.live_ins_mt.len(),
                });
            }
            if t.queue_rows.len() > self.cfg.max_queue_rows {
                return Err(Ineligibility::TooManyQueueRows {
                    count: t.queue_rows.len(),
                });
            }
        }
        if inner.live_ins_ot.len() > self.cfg.max_visit_live_ins {
            return Err(Ineligibility::TooManyLiveIns {
                count: inner.live_ins_ot.len(),
            });
        }

        Ok(HtcEntry {
            start_pc: self.target.bounds.target_pc,
            bounds: self.target.bounds,
            inner_bounds: nested.then(|| self.target.inner.expect("nested")),
            outer,
            inner,
            last_trigger_epoch: epoch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phelps_isa::{Asm, Cpu, Reg};

    /// A single loop with one delinquent branch guarding another and a
    /// guarded store, shaped like astar's b1→b2→s1 (Fig. 3/5):
    ///
    /// ```text
    /// loop: t0 = data[i]
    ///       if (t0 < thresh) {        // b1 (delinquent)
    ///           t1 = flags[t0]
    ///           if (t1 == 0) {        // b2 (delinquent, guarded by b1)
    ///               flags[t0] = 1     // s1 (guarded by b1 and b2)
    ///           }
    ///       }
    ///       i++; loop while i != n    // loop branch
    /// ```
    fn astar_like() -> (phelps_isa::Program, Vec<u64>, u64, LoopBounds) {
        let mut a = Asm::new(0x1000);
        // a0=data base, a1=flags base, a2=i, a3=n, a4=thresh
        a.label("loop");
        a.slli(Reg::T2, Reg::A2, 3);
        a.add(Reg::T2, Reg::A0, Reg::T2);
        a.ld(Reg::T0, Reg::T2, 0); // t0 = data[i]
        let b1 = a.here();
        a.bge(Reg::T0, Reg::A4, "skip"); // b1: taken = skip body
        a.slli(Reg::T3, Reg::T0, 3);
        a.add(Reg::T3, Reg::A1, Reg::T3);
        a.ld(Reg::T1, Reg::T3, 0); // t1 = flags[t0]
        let b2 = a.here();
        a.bne(Reg::T1, Reg::ZERO, "skip"); // b2: taken = skip store
        a.li(Reg::T4, 1);
        let s1 = a.here();
        a.sd(Reg::T4, Reg::T3, 0); // s1
        a.label("skip");
        // "Other statements" (paper Fig. 3 line 15): work that is not in
        // any delinquent branch's backward slice.
        a.add(Reg::S2, Reg::S2, Reg::A2);
        a.xor(Reg::S3, Reg::S3, Reg::S2);
        a.slli(Reg::S4, Reg::S2, 2);
        a.add(Reg::S5, Reg::S5, Reg::S4);
        a.andi(Reg::S6, Reg::S3, 255);
        a.or(Reg::S7, Reg::S7, Reg::S6);
        a.addi(Reg::A2, Reg::A2, 1);
        let loop_br = a.here();
        a.bne(Reg::A2, Reg::A3, "loop");
        a.halt();
        let p = a.assemble().unwrap();
        let bounds = LoopBounds {
            branch_pc: loop_br,
            target_pc: 0x1000,
        };
        (p, vec![b1, b2], s1, bounds)
    }

    fn run_construction(iters: u64) -> (Constructor, Vec<u64>, u64, LoopBounds) {
        let (prog, branches, s1, bounds) = astar_like();
        let mut cpu = Cpu::new(prog);
        // data[i] pseudo-random in 0..64; flags zeroed.
        let mut x = 7u64;
        for i in 0..iters {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            cpu.mem.write_u64(0x10000 + i * 8, (x >> 33) % 64);
        }
        cpu.set_reg(Reg::A0, 0x10000);
        cpu.set_reg(Reg::A1, 0x20000);
        cpu.set_reg(Reg::A2, 0);
        cpu.set_reg(Reg::A3, iters);
        cpu.set_reg(Reg::A4, 32);

        let target = ConstructionTarget {
            bounds,
            inner: None,
            delinquent: branches.clone(),
        };
        let mut c = Constructor::new(target);
        while !cpu.is_halted() {
            let rec = cpu.step().unwrap();
            c.on_retire(&rec);
        }
        (c, branches, s1, bounds)
    }

    #[test]
    fn ibda_grows_backward_slices() {
        let (c, branches, _s1, bounds) = run_construction(200);
        let included: Vec<u64> = c.included().collect();
        // b1's slice: the load of data[i], its address computation, and
        // the induction variable update.
        assert!(included.contains(&branches[0]));
        assert!(included.contains(&branches[1]));
        assert!(included.contains(&bounds.branch_pc));
        // ld t0 at 0x1008, and its addr gen at 0x1000/0x1004.
        assert!(included.contains(&0x1008), "b1's load included");
        assert!(included.contains(&0x1000) && included.contains(&0x1004));
    }

    #[test]
    fn conflicting_store_gets_included() {
        let (c, _, s1, _) = run_construction(400);
        // s1 conflicts with the flags load feeding b2.
        assert!(
            c.included().any(|pc| pc == s1),
            "store s1 captured via the store-detect queue"
        );
    }

    #[test]
    fn finalize_builds_fig5_shape() {
        let (c, branches, s1_pc, _) = run_construction(400);
        let entry = c.finalize(1).expect("eligible");
        assert!(!entry.is_nested());
        let t = &entry.inner;
        // Loop branch last.
        assert_eq!(t.insts.last().unwrap().kind, HtKind::LoopBranch);
        // b1 is an unguarded predicate producer; b2 guarded by b1
        // (not-taken direction); s1 guarded by b2 (not-taken direction).
        let find = |pc: u64| t.insts.iter().find(|i| i.pc == pc).unwrap();
        let b1 = find(branches[0]);
        assert!(matches!(b1.kind, HtKind::PredicateProducer { dest: 1 }));
        assert_eq!(b1.pred_src, PredSource::Always);
        let b2 = find(branches[1]);
        assert!(matches!(b2.kind, HtKind::PredicateProducer { dest: 2 }));
        assert_eq!(
            b2.pred_src,
            PredSource::Guarded {
                reg: 1,
                direction: false
            }
        );
        let s1 = find(s1_pc);
        assert_eq!(s1.kind, HtKind::Store);
        assert_eq!(
            s1.pred_src,
            PredSource::Guarded {
                reg: 2,
                direction: false
            }
        );
    }

    #[test]
    fn live_ins_capture_loop_invariants() {
        let (c, _, _s1, _) = run_construction(300);
        let entry = c.finalize(1).unwrap();
        let live = &entry.inner.live_ins_mt;
        // a0 (data base), a1 (flags base), a3 (n), a4 (thresh) are set
        // outside the loop; a2 (i) self-recurses inside, but is upward-
        // exposed (the trigger iteration needs the main thread's value),
        // so it is a live-in too.
        for r in [Reg::A0, Reg::A1, Reg::A2, Reg::A3, Reg::A4] {
            assert!(live.contains(&r), "{r} is a live-in");
        }
    }

    #[test]
    fn queue_rows_cover_producers_and_loop_branch() {
        let (c, branches, _s1, bounds) = run_construction(300);
        let entry = c.finalize(1).unwrap();
        let rows = &entry.inner.queue_rows;
        assert!(rows.contains(&branches[0]));
        assert!(rows.contains(&branches[1]));
        // The loop branch is predictable (not in the delinquent list), so
        // it does not consume one of the 16 queue rows.
        assert!(!rows.contains(&bounds.branch_pc));
    }

    #[test]
    fn short_loop_is_ineligible() {
        let (prog, branches, _s1, bounds) = astar_like();
        let mut cpu = Cpu::new(prog);
        cpu.set_reg(Reg::A0, 0x10000);
        cpu.set_reg(Reg::A1, 0x20000);
        cpu.set_reg(Reg::A3, 3); // 3 iterations per visit only
        cpu.set_reg(Reg::A4, 32);
        let mut c = Constructor::new(ConstructionTarget {
            bounds,
            inner: None,
            delinquent: branches,
        });
        while !cpu.is_halted() {
            c.on_retire(&cpu.step().unwrap());
        }
        assert!(matches!(
            c.finalize(1),
            Err(Ineligibility::NotIteratingEnough { .. })
        ));
    }

    #[test]
    fn unobserved_loop_is_ineligible() {
        let (_, branches, _s1, bounds) = astar_like();
        let c = Constructor::new(ConstructionTarget {
            bounds,
            inner: None,
            delinquent: branches,
        });
        assert_eq!(c.finalize(1).unwrap_err(), Ineligibility::NoLoopObserved);
    }

    #[test]
    fn size_bound_rejects_all_inclusive_threads() {
        // A loop whose entire body feeds the branch: HT ≈ loop → too big.
        let mut a = Asm::new(0x2000);
        a.label("loop");
        // Long dependent chain, all of it in b's slice.
        for _ in 0..20 {
            a.addi(Reg::T0, Reg::T0, 1);
            a.xor(Reg::T0, Reg::T0, Reg::A2);
            a.slli(Reg::T1, Reg::T0, 1);
            a.add(Reg::T0, Reg::T0, Reg::T1);
        }
        a.andi(Reg::T1, Reg::T0, 1);
        let b = a.here();
        a.bne(Reg::T1, Reg::ZERO, "even");
        a.label("even");
        a.addi(Reg::A2, Reg::A2, 1);
        let lb = a.here();
        a.bne(Reg::A2, Reg::A3, "loop");
        a.halt();
        let prog = a.assemble().unwrap();
        let bounds = LoopBounds {
            branch_pc: lb,
            target_pc: 0x2000,
        };
        let mut cpu = Cpu::new(prog);
        cpu.set_reg(Reg::A3, 100);
        let mut c = Constructor::new(ConstructionTarget {
            bounds,
            inner: None,
            delinquent: vec![b],
        });
        while !cpu.is_halted() {
            c.on_retire(&cpu.step().unwrap());
        }
        assert!(matches!(c.finalize(1), Err(Ineligibility::TooBig { .. })));
    }

    #[test]
    fn avg_iterations_math() {
        let (_, branches, _s1, bounds) = astar_like();
        let mut c = Constructor::new(ConstructionTarget {
            bounds,
            inner: None,
            delinquent: branches,
        });
        // Synthesize loop-branch retires: 30 taken, 2 not-taken.
        use phelps_isa::{BranchCond, ExecRecord, Inst};
        for i in 0..32 {
            let taken = i % 16 != 15;
            c.on_retire(&ExecRecord {
                pc: bounds.branch_pc,
                inst: Inst::Branch {
                    cond: BranchCond::Ne,
                    rs1: Reg::A2,
                    rs2: Reg::A3,
                    target: bounds.target_pc,
                },
                next_pc: if taken {
                    bounds.target_pc
                } else {
                    bounds.branch_pc + 4
                },
                taken,
                rd_value: 0,
                mem_addr: 0,
                store_data: 0,
            });
        }
        assert!((c.avg_iterations_per_visit() - 15.0).abs() < 1e-9);
    }
}
