//! Delinquency tracking: DBT, DBT-Max, and the Loop Table (paper §V-B, Fig. 6).
//!
//! The **Delinquent Branch Table (DBT)** records, per mispredicting
//! conditional branch PC, a misprediction count and the bounds of the
//! tightest (inner) and next-tightest (outer) loops observed to enclose it.
//! Loop bounds are trained from the most recently retired backward
//! conditional branch.
//!
//! **DBT-Max** incrementally ranks the most delinquent branches so the
//! epoch-end pass doesn't scan the whole DBT.
//!
//! The **Loop Table (LT)** is populated at the end of each epoch: every
//! DBT-Max branch clearing the delinquency threshold (0.5 MPKI of the
//! epoch) contributes its count and itself to its *outermost* loop's entry,
//! recording nested inner-loop bounds when present.

use std::collections::HashMap;

/// PC bounds of a loop, identified by its backward branch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LoopBounds {
    /// PC of the loop's backward branch.
    pub branch_pc: u64,
    /// Branch target (the top of the loop).
    pub target_pc: u64,
}

impl LoopBounds {
    /// Whether `pc` lies inside the loop body (inclusive of the branch).
    pub fn contains(&self, pc: u64) -> bool {
        self.target_pc <= pc && pc <= self.branch_pc
    }

    /// Loop extent in bytes — smaller is tighter.
    pub fn tightness(&self) -> u64 {
        self.branch_pc - self.target_pc
    }
}

/// One DBT entry.
#[derive(Clone, Copy, Debug, Default)]
pub struct DbtEntry {
    /// Mispredictions this epoch.
    pub misp: u64,
    /// Tightest enclosing loop seen.
    pub inner: Option<LoopBounds>,
    /// Next-tightest enclosing loop seen.
    pub outer: Option<LoopBounds>,
}

/// The Delinquent Branch Table plus DBT-Max ranking.
///
/// # Examples
///
/// ```
/// use phelps::delinq::Dbt;
///
/// let mut dbt = Dbt::new(256, 32);
/// // A backward branch at 0x11bfc targeting 0x11b80 closes the inner loop.
/// dbt.on_backward_branch(0x11bfc, 0x11b80);
/// dbt.on_cond_branch_retire(0x11b98, true);
/// assert_eq!(dbt.entry(0x11b98).unwrap().misp, 1);
/// assert_eq!(dbt.entry(0x11b98).unwrap().inner.unwrap().branch_pc, 0x11bfc);
/// ```
#[derive(Clone, Debug)]
pub struct Dbt {
    entries: HashMap<u64, DbtEntry>,
    capacity: usize,
    max: Vec<(u64, u64)>, // (pc, misp), the DBT-Max ranking
    max_capacity: usize,
    last_backward: Option<LoopBounds>,
    /// Evictions this epoch (the gcc effect: too many static branches).
    pub evictions: u64,
}

impl Dbt {
    /// Creates a DBT with `capacity` entries and a `max_capacity`-entry
    /// DBT-Max (the paper uses 256 and 32).
    pub fn new(capacity: usize, max_capacity: usize) -> Dbt {
        Dbt {
            entries: HashMap::new(),
            capacity,
            max: Vec::new(),
            max_capacity,
            last_backward: None,
            evictions: 0,
        }
    }

    /// The entry for `pc`, if resident.
    pub fn entry(&self, pc: u64) -> Option<&DbtEntry> {
        self.entries.get(&pc)
    }

    /// Current DBT-Max ranking, most delinquent first.
    pub fn ranking(&self) -> Vec<(u64, u64)> {
        let mut v = self.max.clone();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// The retirement unit observed a backward conditional branch (a loop
    /// branch): remember it for loop-bounds training.
    pub fn on_backward_branch(&mut self, branch_pc: u64, target_pc: u64) {
        debug_assert!(target_pc < branch_pc, "backward branch");
        self.last_backward = Some(LoopBounds {
            branch_pc,
            target_pc,
        });
    }

    /// A conditional branch retired. `mispredicted` is whether the
    /// prediction consumed at fetch (from any source) was wrong.
    pub fn on_cond_branch_retire(&mut self, pc: u64, mispredicted: bool) {
        if mispredicted {
            if !self.entries.contains_key(&pc) && self.entries.len() >= self.capacity {
                // Fully-associative table is full: evict the coldest entry.
                if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, e)| e.misp) {
                    self.entries.remove(&victim);
                    self.max.retain(|(p, _)| *p != victim);
                    self.evictions += 1;
                }
            }
            let e = self.entries.entry(pc).or_default();
            e.misp += 1;
            let misp = e.misp;
            self.update_max(pc, misp);
        }
        // Loop-bounds training applies to resident entries regardless of
        // this instance's prediction outcome.
        if let Some(bw) = self.last_backward {
            if bw.contains(pc) {
                if let Some(e) = self.entries.get_mut(&pc) {
                    Dbt::train_loops(e, bw);
                }
            }
        }
    }

    /// Keeps the two tightest enclosing loops, sorted inner (tightest)
    /// then outer.
    fn train_loops(e: &mut DbtEntry, bw: LoopBounds) {
        match (e.inner, e.outer) {
            (None, _) => e.inner = Some(bw),
            (Some(inner), _) if inner == bw => {}
            (Some(inner), None) => {
                if bw.tightness() < inner.tightness() {
                    e.outer = Some(inner);
                    e.inner = Some(bw);
                } else {
                    e.outer = Some(bw);
                }
            }
            (Some(inner), Some(outer)) => {
                if outer == bw {
                    return;
                }
                if bw.tightness() < inner.tightness() {
                    e.outer = Some(inner);
                    e.inner = Some(bw);
                } else if bw.tightness() < outer.tightness() {
                    e.outer = Some(bw);
                }
            }
        }
    }

    fn update_max(&mut self, pc: u64, misp: u64) {
        if let Some(slot) = self.max.iter_mut().find(|(p, _)| *p == pc) {
            slot.1 = misp;
            return;
        }
        if self.max.len() < self.max_capacity {
            self.max.push((pc, misp));
            return;
        }
        if let Some(min_idx) = (0..self.max.len()).min_by_key(|&i| self.max[i].1) {
            if self.max[min_idx].1 < misp {
                self.max[min_idx] = (pc, misp);
            }
        }
    }

    /// Clears counters for the next epoch (loop bounds persist with the
    /// entries they trained, matching the paper's counter-only reset).
    pub fn reset_epoch(&mut self) {
        for e in self.entries.values_mut() {
            e.misp = 0;
        }
        self.max.clear();
        self.evictions = 0;
    }
}

/// One Loop Table entry: an outermost loop and its delinquent branches.
#[derive(Clone, Debug)]
pub struct LtEntry {
    /// The outermost loop.
    pub bounds: LoopBounds,
    /// Nested inner loop, when any contributing branch reported one.
    pub inner: Option<LoopBounds>,
    /// PCs of the delinquent branches inside.
    pub branches: Vec<u64>,
    /// Aggregate misprediction count.
    pub misp: u64,
}

/// Builds the Loop Table from the epoch's DBT (paper's end-of-epoch pass).
///
/// `threshold` is the per-branch delinquency cut (0.5 MPKI of the epoch);
/// `capacity` bounds the number of LT entries (the paper uses 8).
pub fn build_loop_table(dbt: &Dbt, threshold: u64, capacity: usize) -> Vec<LtEntry> {
    let mut table: Vec<LtEntry> = Vec::new();
    for (pc, misp) in dbt.ranking() {
        if misp < threshold {
            continue;
        }
        let Some(e) = dbt.entry(pc) else { continue };
        let Some(inner) = e.inner else { continue };
        // Outermost loop: outer when present, else the inner loop itself.
        let (outermost, nested_inner) = match e.outer {
            Some(outer) => (outer, Some(inner)),
            None => (inner, None),
        };
        if let Some(slot) = table.iter_mut().find(|s| s.bounds == outermost) {
            slot.misp += misp;
            if !slot.branches.contains(&pc) {
                slot.branches.push(pc);
            }
            if slot.inner.is_none() {
                slot.inner = nested_inner;
            }
        } else if table.len() < capacity {
            table.push(LtEntry {
                bounds: outermost,
                inner: nested_inner,
                branches: vec![pc],
                misp,
            });
        }
    }
    table.sort_by_key(|e| std::cmp::Reverse(e.misp));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const INNER: LoopBounds = LoopBounds {
        branch_pc: 0x11bfc,
        target_pc: 0x11b80,
    };
    const OUTER: LoopBounds = LoopBounds {
        branch_pc: 0x11c0c,
        target_pc: 0x11b60,
    };

    /// Drives the DBT with branches in a nested loop, mimicking Fig. 6.
    fn drive_fig6(dbt: &mut Dbt, iters: usize) {
        for _ in 0..iters {
            // Inner loop: branch 0x11b98 and 0x11be0 mispredict inside it.
            dbt.on_backward_branch(INNER.branch_pc, INNER.target_pc);
            dbt.on_cond_branch_retire(0x11b98, true);
            dbt.on_cond_branch_retire(0x11be0, true);
            dbt.on_cond_branch_retire(0x11be0, true);
            // Outer loop closes.
            dbt.on_backward_branch(OUTER.branch_pc, OUTER.target_pc);
            dbt.on_cond_branch_retire(0x11b98, false);
            dbt.on_cond_branch_retire(0x11be0, false);
        }
    }

    #[test]
    fn fig6_dbt_contents() {
        let mut dbt = Dbt::new(256, 32);
        drive_fig6(&mut dbt, 100);
        let e = dbt.entry(0x11b98).unwrap();
        assert_eq!(e.misp, 100);
        assert_eq!(e.inner, Some(INNER));
        assert_eq!(e.outer, Some(OUTER));
        let e = dbt.entry(0x11be0).unwrap();
        assert_eq!(e.misp, 200);
        assert_eq!(e.inner, Some(INNER));
        assert_eq!(e.outer, Some(OUTER));
    }

    #[test]
    fn fig6_ranking_order() {
        let mut dbt = Dbt::new(256, 32);
        drive_fig6(&mut dbt, 50);
        let rank = dbt.ranking();
        assert_eq!(rank[0].0, 0x11be0, "most delinquent first");
        assert_eq!(rank[1].0, 0x11b98);
    }

    #[test]
    fn fig6_loop_table_consolidates() {
        let mut dbt = Dbt::new(256, 32);
        drive_fig6(&mut dbt, 100);
        let lt = build_loop_table(&dbt, 50, 8);
        assert_eq!(lt.len(), 1, "one outermost loop");
        let e = &lt[0];
        assert_eq!(e.bounds, OUTER);
        assert_eq!(e.inner, Some(INNER));
        assert_eq!(e.misp, 300);
        assert!(e.branches.contains(&0x11b98) && e.branches.contains(&0x11be0));
    }

    #[test]
    fn threshold_filters_cold_branches() {
        let mut dbt = Dbt::new(256, 32);
        drive_fig6(&mut dbt, 10); // 0x11b98: 10 misp, 0x11be0: 20 misp
        let lt = build_loop_table(&dbt, 15, 8);
        assert_eq!(lt.len(), 1);
        assert_eq!(lt[0].branches, vec![0x11be0]);
    }

    #[test]
    fn non_nested_loop_has_no_inner() {
        let mut dbt = Dbt::new(256, 32);
        let only = LoopBounds {
            branch_pc: 0x200,
            target_pc: 0x100,
        };
        for _ in 0..30 {
            dbt.on_backward_branch(only.branch_pc, only.target_pc);
            dbt.on_cond_branch_retire(0x180, true);
        }
        let lt = build_loop_table(&dbt, 10, 8);
        assert_eq!(lt[0].bounds, only);
        assert_eq!(lt[0].inner, None);
    }

    #[test]
    fn branch_outside_loop_gets_no_bounds() {
        let mut dbt = Dbt::new(256, 32);
        dbt.on_backward_branch(0x200, 0x100);
        // 0x900 is outside the backward branch's bounds.
        for _ in 0..20 {
            dbt.on_cond_branch_retire(0x900, true);
        }
        let e = dbt.entry(0x900).unwrap();
        assert_eq!(e.inner, None);
        // And it contributes nothing to the LT (paper's "del. but not in
        // loop" bin).
        let lt = build_loop_table(&dbt, 10, 8);
        assert!(lt.is_empty());
    }

    #[test]
    fn capacity_evicts_coldest() {
        let mut dbt = Dbt::new(4, 4);
        for i in 0..4u64 {
            for _ in 0..(i + 2) {
                dbt.on_cond_branch_retire(i * 4, true);
            }
        }
        // Insert a fifth branch: evicts the coldest (pc 0).
        dbt.on_cond_branch_retire(0x100, true);
        assert!(dbt.entry(0).is_none());
        assert!(dbt.entry(0x100).is_some());
        assert_eq!(dbt.evictions, 1);
    }

    #[test]
    fn reset_epoch_clears_counters_and_ranking() {
        let mut dbt = Dbt::new(256, 32);
        drive_fig6(&mut dbt, 10);
        dbt.reset_epoch();
        assert_eq!(dbt.entry(0x11b98).unwrap().misp, 0);
        assert!(dbt.ranking().is_empty());
        // Loop bounds persist.
        assert_eq!(dbt.entry(0x11b98).unwrap().inner, Some(INNER));
    }

    #[test]
    fn loops_sorted_inner_then_outer_regardless_of_observation_order() {
        let mut dbt = Dbt::new(256, 32);
        // Observe the OUTER loop first, then the tighter INNER loop.
        dbt.on_backward_branch(OUTER.branch_pc, OUTER.target_pc);
        dbt.on_cond_branch_retire(0x11b98, true);
        dbt.on_backward_branch(INNER.branch_pc, INNER.target_pc);
        dbt.on_cond_branch_retire(0x11b98, true);
        let e = dbt.entry(0x11b98).unwrap();
        assert_eq!(e.inner, Some(INNER));
        assert_eq!(e.outer, Some(OUTER));
    }

    #[test]
    fn third_looser_loop_is_ignored() {
        let mut dbt = Dbt::new(256, 32);
        let huge = LoopBounds {
            branch_pc: 0x11f00,
            target_pc: 0x11000,
        };
        dbt.on_backward_branch(INNER.branch_pc, INNER.target_pc);
        dbt.on_cond_branch_retire(0x11b98, true);
        dbt.on_backward_branch(OUTER.branch_pc, OUTER.target_pc);
        dbt.on_cond_branch_retire(0x11b98, true);
        dbt.on_backward_branch(huge.branch_pc, huge.target_pc);
        dbt.on_cond_branch_retire(0x11b98, true);
        let e = dbt.entry(0x11b98).unwrap();
        assert_eq!(e.inner, Some(INNER), "two tightest kept");
        assert_eq!(e.outer, Some(OUTER));
    }

    #[test]
    fn lt_capacity_bounded() {
        let mut dbt = Dbt::new(256, 32);
        for l in 0..12u64 {
            let bounds = LoopBounds {
                branch_pc: 0x1000 * (l + 1) + 0x100,
                target_pc: 0x1000 * (l + 1),
            };
            for _ in 0..20 {
                dbt.on_backward_branch(bounds.branch_pc, bounds.target_pc);
                dbt.on_cond_branch_retire(bounds.target_pc + 8, true);
            }
        }
        let lt = build_loop_table(&dbt, 5, 8);
        assert!(lt.len() <= 8);
    }
}
