//! Iteration-lockstep prediction queues (paper §IV-B, Fig. 4).
//!
//! One [`PredictionQueues`] partition exists per active helper thread. Each
//! *row* is a queue for one delinquent branch (including the loop branch);
//! each *column* is a loop iteration. Three pointers manage the columns:
//!
//! * `tail` — where the helper thread deposits; advanced when the helper
//!   thread retires an instance of the loop branch (all predicate producers
//!   of the iteration retired before it, since retirement is in order);
//! * `spec_head` — where the main thread consumes; advanced when the main
//!   thread *fetches* an instance of the loop branch;
//! * `head` — oldest live column; advanced when the main thread *retires*
//!   an instance of the loop branch, freeing the column.
//!
//! On a misprediction recovery, `spec_head` rolls back to the value
//! checkpointed at the mispredicted branch (or to `head` for a recovery
//! from the ROB head), replaying already-deposited outcomes — including the
//! Fig. 4 subtlety where a guarded branch's outcome, skipped on the wrong
//! path, is consumed the second time around.

/// Hardware capacity of the paper's queues: 32 iterations (columns).
pub const DEFAULT_COLUMNS: usize = 32;
/// Hardware row budget: 16 queues (branch PC tags).
pub const MAX_ROWS: usize = 16;

#[derive(Clone, Debug)]
struct Row {
    pc: u64,
    /// Ring of deposited outcomes, indexed by `iteration % capacity`.
    outcomes: Vec<Option<bool>>,
}

/// One helper thread's partition of per-branch prediction queues.
///
/// # Examples
///
/// Reproducing the flavor of Fig. 4 with two nested branches:
///
/// ```
/// use phelps::predq::PredictionQueues;
///
/// let mut q = PredictionQueues::new(&[0x100, 0x104], 8);
/// // Helper thread: iteration 0 deposits b1=taken, b2=not-taken.
/// q.deposit(0x100, true);
/// q.deposit(0x104, false);
/// q.advance_tail(); // helper thread retires the loop branch
///
/// // Main thread consumes b1 (taken ⇒ it will not even fetch b2).
/// assert_eq!(q.consume(0x100), Some(true));
/// // The b2 outcome nevertheless exists, replayable after a b1 recovery.
/// assert_eq!(q.consume(0x104), Some(false));
/// ```
#[derive(Clone, Debug)]
pub struct PredictionQueues {
    rows: Vec<Row>,
    capacity: usize,
    head: u64,
    spec_head: u64,
    tail: u64,
}

impl PredictionQueues {
    /// Creates a partition with one row per branch PC in `branch_pcs` and
    /// `columns` iterations of capacity.
    ///
    /// # Panics
    ///
    /// Panics if `branch_pcs` exceeds [`MAX_ROWS`] or `columns` is zero.
    pub fn new(branch_pcs: &[u64], columns: usize) -> PredictionQueues {
        assert!(branch_pcs.len() <= MAX_ROWS, "at most {MAX_ROWS} queues");
        assert!(columns > 0, "need at least one column");
        PredictionQueues {
            rows: branch_pcs
                .iter()
                .map(|&pc| Row {
                    pc,
                    outcomes: vec![None; columns],
                })
                .collect(),
            capacity: columns,
            head: 0,
            spec_head: 0,
            tail: 0,
        }
    }

    /// Whether `pc` has a queue row.
    pub fn has_row(&self, pc: u64) -> bool {
        self.rows.iter().any(|r| r.pc == pc)
    }

    /// Oldest live column (MT retire pointer).
    pub fn head(&self) -> u64 {
        self.head
    }

    /// MT consume pointer.
    pub fn spec_head(&self) -> u64 {
        self.spec_head
    }

    /// HT deposit pointer.
    pub fn tail(&self) -> u64 {
        self.tail
    }

    /// Whether the helper thread may advance into a new column (queue not
    /// full). Gates helper-thread fetch when the main thread falls behind.
    /// `head` may legally run past `tail` when the main thread outruns the
    /// helper thread (those iterations were predicted by the default
    /// predictor), hence the saturating difference.
    pub fn tail_has_room(&self) -> bool {
        self.tail.saturating_sub(self.head) < self.capacity as u64
    }

    /// Helper thread deposits the outcome of `pc` for the current tail
    /// iteration. Returns `false` if `pc` has no row (caller bug) or the
    /// queue is full.
    pub fn deposit(&mut self, pc: u64, taken: bool) -> bool {
        if !self.tail_has_room() {
            return false;
        }
        let cap = self.capacity;
        let col = (self.tail % cap as u64) as usize;
        match self.rows.iter_mut().find(|r| r.pc == pc) {
            Some(row) => {
                row.outcomes[col] = Some(taken);
                true
            }
            None => false,
        }
    }

    /// Helper thread retired the loop branch: move to the next column.
    /// Returns `false` (and does nothing) when the queue is full.
    pub fn advance_tail(&mut self) -> bool {
        if !self.tail_has_room() {
            return false;
        }
        self.tail += 1;
        // Clear the new tail column's ring slots for redeposit.
        if self.tail.saturating_sub(self.head) < self.capacity as u64 {
            let col = (self.tail % self.capacity as u64) as usize;
            for row in &mut self.rows {
                row.outcomes[col] = None;
            }
        }
        true
    }

    /// Main thread consumes the prediction for `pc` at the `spec_head`
    /// iteration. `None` when the helper thread hasn't deposited that
    /// column yet (untimely) or `pc` has no row.
    pub fn consume(&self, pc: u64) -> Option<bool> {
        if self.spec_head >= self.tail {
            return None; // column not yet complete
        }
        if self.spec_head < self.head {
            return None;
        }
        let col = (self.spec_head % self.capacity as u64) as usize;
        self.rows
            .iter()
            .find(|r| r.pc == pc)
            .and_then(|r| r.outcomes[col])
    }

    /// Main thread fetched the loop branch: advance the consume pointer.
    /// `spec_head` may legally run past `tail` (the main thread ahead of
    /// the helper thread); consumption simply returns `None` there.
    pub fn advance_spec_head(&mut self) {
        self.spec_head += 1;
    }

    /// Main thread retired the loop branch: free the oldest column.
    ///
    /// # Panics
    ///
    /// Panics if this would move `head` past `spec_head` — the retire
    /// stream cannot outrun fetch.
    pub fn advance_head(&mut self) {
        assert!(
            self.head < self.spec_head,
            "retire pointer cannot pass fetch pointer"
        );
        self.head += 1;
    }

    /// Misprediction recovery: roll `spec_head` back to `ckpt` (a value
    /// previously read from [`PredictionQueues::spec_head`]). Clamped to
    /// `head` — recovery from the ROB head passes `0` to mean "head".
    pub fn rollback_spec_head(&mut self, ckpt: u64) {
        self.spec_head = ckpt.max(self.head);
    }

    /// Number of columns the helper thread is ahead of the main thread's
    /// consumption.
    pub fn lead(&self) -> u64 {
        self.tail.saturating_sub(self.spec_head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_branch_queue() -> PredictionQueues {
        PredictionQueues::new(&[0x10, 0x14], 4)
    }

    #[test]
    fn deposit_then_consume_in_lockstep() {
        let mut q = two_branch_queue();
        q.deposit(0x10, true);
        q.deposit(0x14, false);
        q.advance_tail();
        assert_eq!(q.consume(0x10), Some(true));
        assert_eq!(q.consume(0x14), Some(false));
        q.advance_spec_head();
        assert_eq!(q.consume(0x10), None, "next column not deposited");
    }

    #[test]
    fn consume_before_tail_advance_is_untimely() {
        let mut q = two_branch_queue();
        q.deposit(0x10, true);
        // Loop branch not yet retired by HT: column incomplete.
        assert_eq!(q.consume(0x10), None);
    }

    #[test]
    fn queue_full_blocks_tail() {
        let mut q = two_branch_queue(); // 4 columns
        for _ in 0..4 {
            assert!(q.deposit(0x10, true));
            assert!(q.advance_tail());
        }
        assert!(!q.tail_has_room());
        assert!(!q.deposit(0x10, false));
        assert!(!q.advance_tail());
        // MT consumes and retires one iteration: room again.
        q.advance_spec_head();
        q.advance_head();
        assert!(q.tail_has_room());
        assert!(q.advance_tail());
    }

    #[test]
    fn rollback_replays_outcomes() {
        let mut q = two_branch_queue();
        for i in 0..3 {
            q.deposit(0x10, i % 2 == 0);
            q.deposit(0x14, i % 2 == 1);
            q.advance_tail();
        }
        // MT consumes two iterations.
        assert_eq!(q.consume(0x10), Some(true));
        let ckpt = q.spec_head();
        q.advance_spec_head();
        assert_eq!(q.consume(0x10), Some(false));
        q.advance_spec_head();
        // Mispredict at the first branch: roll back and replay.
        q.rollback_spec_head(ckpt);
        assert_eq!(q.consume(0x10), Some(true));
        // The guarded branch outcome is also still there (Fig. 4 subtlety).
        assert_eq!(q.consume(0x14), Some(false));
    }

    #[test]
    fn rollback_clamps_to_head() {
        let mut q = two_branch_queue();
        q.deposit(0x10, true);
        q.advance_tail();
        q.advance_spec_head();
        q.advance_head();
        q.rollback_spec_head(0);
        assert_eq!(q.spec_head(), q.head());
    }

    #[test]
    #[should_panic(expected = "retire pointer")]
    fn head_cannot_pass_spec_head() {
        let mut q = two_branch_queue();
        q.advance_head();
    }

    #[test]
    fn spec_head_may_run_ahead_of_tail() {
        let mut q = two_branch_queue();
        q.deposit(0x10, true);
        q.advance_tail();
        q.advance_spec_head();
        q.advance_spec_head(); // MT ahead of HT
        assert_eq!(q.consume(0x10), None);
        assert_eq!(q.lead(), 0);
    }

    #[test]
    fn ring_reuse_after_wraparound() {
        let mut q = PredictionQueues::new(&[0x10], 2);
        for lap in 0..10u64 {
            assert!(q.deposit(0x10, lap % 3 == 0));
            assert!(q.advance_tail());
            assert_eq!(q.consume(0x10), Some(lap % 3 == 0));
            q.advance_spec_head();
            q.advance_head();
        }
        assert_eq!(q.head(), 10);
        assert_eq!(q.tail(), 10);
    }

    #[test]
    fn unknown_pc_has_no_row() {
        let mut q = two_branch_queue();
        assert!(!q.has_row(0x999));
        assert!(!q.deposit(0x999, true));
        q.deposit(0x10, true);
        q.advance_tail();
        assert_eq!(q.consume(0x999), None);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn row_budget_enforced() {
        let pcs: Vec<u64> = (0..17).map(|i| i * 4).collect();
        let _ = PredictionQueues::new(&pcs, 4);
    }

    #[test]
    fn fig4_walkthrough() {
        // Fig. 4: b1 guards b2, b3 guards b4. HT deposits all four every
        // iteration; MT consumes along the highlighted path.
        let mut q = PredictionQueues::new(&[1, 2, 3, 4], 8);
        // Iteration at spec_head: b1=1, b2=(0), b3=0, b4=1.
        q.deposit(1, true);
        q.deposit(2, false);
        q.deposit(3, false);
        q.deposit(4, true);
        q.advance_tail();
        // MT: consumes b1=taken → skips b2 entirely; consumes b3=not-taken
        // → fetches and consumes b4.
        assert_eq!(q.consume(1), Some(true));
        assert_eq!(q.consume(3), Some(false));
        assert_eq!(q.consume(4), Some(true));
        // b2's outcome exists but simply goes unconsumed.
        assert_eq!(q.consume(2), Some(false));
    }
}
