//! # phelps
//!
//! Predicated helper threads (Phelps): delinquent-loop branch pre-execution
//! for superscalar cores — a reproduction of Seshadri & Rotenberg,
//! *"Delinquent Loop Pre-execution Using Predicated Helper Threads"*
//! (HPCA 2025).
//!
//! Phelps targets **delinquent branches** — frequently-executed,
//! frequently-mispredicted branches — by building a *helper thread* for
//! each inner loop that contains them. All delinquent branches, even ones
//! control-dependent on other delinquent branches, are **unconditionally
//! pre-executed** every loop iteration; their per-branch prediction queues
//! operate in lockstep with loop iterations, so the main thread's fetch
//! unit consumes or ignores outcomes in exactly the sequence its own path
//! dictates. Influential stores are retained and **predicated** on their
//! guarding branches' outcomes. Nested loops with short, unpredictable
//! inner trip counts get **dual decoupled helper threads**.
//!
//! ## Crate layout
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`delinq`] | §V-B | DBT, DBT-Max, Loop Table |
//! | [`construct`] | §V-C, §V-J | HTCB, LPT, IBDA, store capture, eligibility |
//! | [`cdfsm`] | §V-D | immediate-predicate-producer learning |
//! | [`htc`] | §V-E | Helper Thread Cache, HT instruction encoding |
//! | [`predq`] | §IV-B | iteration-lockstep prediction queues |
//! | [`visitq`] | §V-F | Visit Queue for dual decoupled threads |
//! | [`predicate`] | §V-H | 2-bit predicate registers |
//! | [`storecache`] | §IV-A | helper-thread speculative store cache |
//! | [`budget`] | Table II | storage-cost model |
//! | [`classify`] | Fig. 14 | misprediction characterization |
//! | [`sim`] | §VI | the cycle-level simulator binding it all |
//!
//! ## Quick start
//!
//! ```
//! use phelps::predq::PredictionQueues;
//!
//! // A helper thread deposits outcomes for two nested delinquent
//! // branches every iteration; the main thread consumes in lockstep.
//! let mut q = PredictionQueues::new(&[0x100, 0x104], 32);
//! q.deposit(0x100, true);
//! q.deposit(0x104, false);
//! q.advance_tail();
//! assert_eq!(q.consume(0x100), Some(true));
//! ```
//!
//! For end-to-end runs, see [`sim::simulate`] and the workspace examples.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod budget;
pub mod cdfsm;
pub mod classify;
pub mod construct;
pub mod delinq;
pub mod htc;
pub mod predicate;
pub mod predq;
pub mod sim;
pub mod storecache;
pub mod visitq;
