//! Helper Thread Cache (paper §V-E) and helper-thread instruction
//! representation.
//!
//! The HTC holds finalized helper threads for up to four loops. Each row is
//! tagged with the loop's start PC (the target of the outermost loop
//! branch) and holds up to 128 instructions; nested loops split the row
//! into an outer-thread half and an inner-thread half. Helper-thread fetch
//! is purely sequential and wraps at the loop branch.
//!
//! Delinquent branches appear converted to **predicate producers** with a
//! logical destination predicate register (`pred1`, `pred2`, ... — `pred0`
//! is reserved for "unguarded"); stores and predicate producers carry one
//! predicate source operand plus an enabling-direction bit.

use crate::delinq::LoopBounds;
use crate::predicate::PredSource;
use phelps_isa::{Inst, Reg};

/// Capacity of one HTC row in instructions.
pub const ROW_INSTS: usize = 128;
/// Number of HTC rows (loops).
pub const HTC_ROWS: usize = 4;

/// Role of a helper-thread instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HtKind {
    /// Ordinary backward-slice computation.
    Plain,
    /// A delinquent branch converted to a predicate producer writing
    /// logical predicate register `dest`.
    PredicateProducer {
        /// Destination logical predicate register (>= 1).
        dest: u8,
    },
    /// An influential store, retained for dynamic disambiguation and
    /// store-load forwarding (writes the helper thread's store cache).
    Store,
    /// The thread's loop (backward) branch: the only control flow.
    LoopBranch,
    /// The inner loop's header branch inside the outer-thread; a not-taken
    /// retired instance queues an inner-loop visit.
    HeaderBranch,
}

/// One helper-thread instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HtInst {
    /// Original main-thread PC (identity for queues and statistics).
    pub pc: u64,
    /// The underlying operation.
    pub inst: Inst,
    /// Role within the helper thread.
    pub kind: HtKind,
    /// Predicate source operand ([`PredSource::Always`] when unguarded).
    pub pred_src: PredSource,
}

/// Which of the paper's three helper-thread types a thread is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ThreadKind {
    /// Single helper thread for a non-nested loop.
    InnerOnly,
    /// Outer-thread of a nested pair.
    Outer,
    /// Inner-thread of a nested pair.
    Inner,
}

/// A finalized helper thread: instruction sequence plus metadata.
#[derive(Clone, Debug)]
pub struct HelperThread {
    /// Thread type.
    pub kind: ThreadKind,
    /// Instructions in program order; the loop branch is last.
    pub insts: Vec<HtInst>,
    /// Live-in logical registers copied from the main thread at trigger.
    pub live_ins_mt: Vec<Reg>,
    /// Live-in logical registers supplied by the outer-thread per visit
    /// (inner-thread only).
    pub live_ins_ot: Vec<Reg>,
    /// PCs of branches with prediction-queue rows (predicate producers,
    /// header branch, and the loop branch), in row order.
    pub queue_rows: Vec<u64>,
}

impl HelperThread {
    /// Index of the loop branch (always the last instruction).
    ///
    /// # Panics
    ///
    /// Panics if the thread is empty or doesn't end in a loop branch —
    /// construction guarantees both.
    pub fn loop_branch_idx(&self) -> usize {
        let last = self.insts.len() - 1;
        assert_eq!(self.insts[last].kind, HtKind::LoopBranch);
        last
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the thread has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Number of logical predicate registers used.
    pub fn pred_regs(&self) -> usize {
        self.insts
            .iter()
            .filter_map(|i| match i.kind {
                HtKind::PredicateProducer { dest } => Some(dest as usize),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }
}

/// One HTC row: the helper thread(s) for one loop.
#[derive(Clone, Debug)]
pub struct HtcEntry {
    /// Trigger tag: the start PC of the outermost loop.
    pub start_pc: u64,
    /// Outermost loop bounds (the main thread terminates pre-execution on
    /// retiring a PC outside these).
    pub bounds: LoopBounds,
    /// Inner loop bounds for nested loops.
    pub inner_bounds: Option<LoopBounds>,
    /// The outer-thread, present only for nested loops.
    pub outer: Option<HelperThread>,
    /// The inner-thread (or inner-thread-only).
    pub inner: HelperThread,
    /// Bookkeeping for replacement: epoch of the last trigger.
    pub last_trigger_epoch: u64,
}

impl HtcEntry {
    /// Whether this entry targets a nested loop.
    pub fn is_nested(&self) -> bool {
        self.outer.is_some()
    }

    /// Total instructions across both halves.
    pub fn total_insts(&self) -> usize {
        self.inner.len() + self.outer.as_ref().map_or(0, HelperThread::len)
    }

    /// Validates the row against hardware capacity: 128 instructions total,
    /// 64 per half when nested.
    pub fn fits_hardware(&self) -> bool {
        match &self.outer {
            Some(outer) => outer.len() <= ROW_INSTS / 2 && self.inner.len() <= ROW_INSTS / 2,
            None => self.inner.len() <= ROW_INSTS,
        }
    }
}

/// The Helper Thread Cache: up to [`HTC_ROWS`] loops.
///
/// # Examples
///
/// ```
/// use phelps::htc::Htc;
///
/// let htc = Htc::new();
/// assert!(htc.lookup(0x1000).is_none());
/// assert!(!htc.is_full());
/// ```
#[derive(Clone, Debug, Default)]
pub struct Htc {
    rows: Vec<HtcEntry>,
}

impl Htc {
    /// Creates an empty HTC.
    pub fn new() -> Htc {
        Htc::default()
    }

    /// Whether all rows are occupied.
    pub fn is_full(&self) -> bool {
        self.rows.len() >= HTC_ROWS
    }

    /// The entry whose loop starts at `pc`, if cached.
    pub fn lookup(&self, pc: u64) -> Option<&HtcEntry> {
        self.rows.iter().find(|r| r.start_pc == pc)
    }

    /// Mutable lookup (to stamp trigger epochs).
    pub fn lookup_mut(&mut self, pc: u64) -> Option<&mut HtcEntry> {
        self.rows.iter_mut().find(|r| r.start_pc == pc)
    }

    /// Whether a helper thread already exists for the loop with `bounds`.
    pub fn has_loop(&self, bounds: LoopBounds) -> bool {
        self.rows.iter().any(|r| r.bounds == bounds)
    }

    /// Installs `entry`, replacing an existing row for the same loop or —
    /// when full — the least-recently-triggered row.
    ///
    /// # Panics
    ///
    /// Panics if the entry exceeds hardware capacity; the constructor's
    /// eligibility checks must reject such loops first.
    pub fn install(&mut self, entry: HtcEntry) {
        assert!(entry.fits_hardware(), "HTC row capacity exceeded");
        if let Some(slot) = self.rows.iter_mut().find(|r| r.start_pc == entry.start_pc) {
            *slot = entry;
            return;
        }
        if self.rows.len() >= HTC_ROWS {
            let victim = (0..self.rows.len())
                .min_by_key(|&i| self.rows[i].last_trigger_epoch)
                .expect("nonempty");
            self.rows.remove(victim);
        }
        self.rows.push(entry);
    }

    /// Iterator over cached entries.
    pub fn iter(&self) -> impl Iterator<Item = &HtcEntry> {
        self.rows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phelps_isa::{AluOp, BranchCond};

    fn plain(pc: u64) -> HtInst {
        HtInst {
            pc,
            inst: Inst::AluImm {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::A0,
                imm: 1,
            },
            kind: HtKind::Plain,
            pred_src: PredSource::Always,
        }
    }

    fn loop_branch(pc: u64) -> HtInst {
        HtInst {
            pc,
            inst: Inst::Branch {
                cond: BranchCond::Ne,
                rs1: Reg::A0,
                rs2: Reg::ZERO,
                target: 0x100,
            },
            kind: HtKind::LoopBranch,
            pred_src: PredSource::Always,
        }
    }

    fn thread(n_plain: usize, kind: ThreadKind) -> HelperThread {
        let mut insts: Vec<HtInst> = (0..n_plain).map(|i| plain(0x100 + 4 * i as u64)).collect();
        insts.push(loop_branch(0x100 + 4 * n_plain as u64));
        HelperThread {
            kind,
            insts,
            live_ins_mt: vec![Reg::A0],
            live_ins_ot: vec![],
            queue_rows: vec![],
        }
    }

    fn entry(start_pc: u64, n: usize) -> HtcEntry {
        HtcEntry {
            start_pc,
            bounds: LoopBounds {
                branch_pc: start_pc + 0x100,
                target_pc: start_pc,
            },
            inner_bounds: None,
            outer: None,
            inner: thread(n, ThreadKind::InnerOnly),
            last_trigger_epoch: 0,
        }
    }

    #[test]
    fn loop_branch_is_last() {
        let t = thread(5, ThreadKind::InnerOnly);
        assert_eq!(t.loop_branch_idx(), 5);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn install_and_lookup() {
        let mut htc = Htc::new();
        htc.install(entry(0x1000, 3));
        assert!(htc.lookup(0x1000).is_some());
        assert!(htc.lookup(0x2000).is_none());
        assert!(htc.has_loop(LoopBounds {
            branch_pc: 0x1100,
            target_pc: 0x1000
        }));
    }

    #[test]
    fn reinstall_replaces_same_loop() {
        let mut htc = Htc::new();
        htc.install(entry(0x1000, 3));
        htc.install(entry(0x1000, 7));
        assert_eq!(htc.iter().count(), 1);
        assert_eq!(htc.lookup(0x1000).unwrap().inner.len(), 8);
    }

    #[test]
    fn eviction_picks_least_recently_triggered() {
        let mut htc = Htc::new();
        for (i, pc) in [0x1000u64, 0x2000, 0x3000, 0x4000].iter().enumerate() {
            let mut e = entry(*pc, 2);
            e.last_trigger_epoch = i as u64 + 1;
            htc.install(e);
        }
        assert!(htc.is_full());
        htc.install(entry(0x5000, 2)); // evicts 0x1000 (epoch 1)
        assert!(htc.lookup(0x1000).is_none());
        assert!(htc.lookup(0x5000).is_some());
        assert_eq!(htc.iter().count(), HTC_ROWS);
    }

    #[test]
    fn hardware_capacity_checks() {
        let e = entry(0x1000, ROW_INSTS - 1); // 127 + loop branch = 128
        assert!(e.fits_hardware());
        let e = entry(0x1000, ROW_INSTS); // 129 total
        assert!(!e.fits_hardware());
    }

    #[test]
    fn nested_halves_each_limited_to_64() {
        let mut e = entry(0x1000, 60);
        e.outer = Some(thread(60, ThreadKind::Outer));
        e.inner = thread(60, ThreadKind::Inner);
        assert!(e.fits_hardware());
        e.outer = Some(thread(70, ThreadKind::Outer));
        assert!(!e.fits_hardware());
        assert!(e.is_nested());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn install_rejects_oversized_rows() {
        let mut htc = Htc::new();
        htc.install(entry(0x1000, ROW_INSTS + 10));
    }

    #[test]
    fn pred_regs_counts_max_destination() {
        let mut t = thread(2, ThreadKind::InnerOnly);
        t.insts[0].kind = HtKind::PredicateProducer { dest: 1 };
        t.insts[1].kind = HtKind::PredicateProducer { dest: 3 };
        assert_eq!(t.pred_regs(), 3);
    }
}
