//! Shared types between the pipeline and pre-execution engines.

use crate::classify::MispredictClass;
use crate::construct::ConstructorConfig;
use crate::htc::HtKind;
use crate::predicate::PredSource;
use phelps_isa::{ExecRecord, Inst};
use phelps_uarch::config::{ActiveThreads, CoreConfig};

/// Hardware thread slots.
pub const MT: usize = 0;
/// First side (helper/pre-execution) thread slot: inner-thread-only or
/// outer-thread.
pub const HT_A: usize = 1;
/// Second side thread slot: inner-thread.
pub const HT_B: usize = 2;
/// Total thread slots.
pub const NUM_THREADS: usize = 3;

/// What a side (pre-execution) instruction is, for pipeline semantics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SideKind {
    /// Ordinary slice computation.
    Plain,
    /// Phelps predicate producer (converted delinquent branch).
    PredProducer {
        /// Destination logical predicate register.
        dest: u8,
    },
    /// Retained store (writes the side store cache at retire when enabled).
    Store,
    /// The helper thread's loop branch.
    LoopBranch,
    /// Inner-loop header branch in the outer-thread.
    HeaderBranch,
    /// Live-in move carrying its value directly.
    LiveInMove,
    /// Branch Runahead chain terminal branch.
    TerminalBranch,
}

impl From<HtKind> for SideKind {
    fn from(k: HtKind) -> SideKind {
        match k {
            HtKind::Plain => SideKind::Plain,
            HtKind::PredicateProducer { dest } => SideKind::PredProducer { dest },
            HtKind::Store => SideKind::Store,
            HtKind::LoopBranch => SideKind::LoopBranch,
            HtKind::HeaderBranch => SideKind::HeaderBranch,
        }
    }
}

/// One instruction supplied by a pre-execution engine for a side thread.
#[derive(Clone, Copy, Debug)]
pub struct SideInst {
    /// Original main-thread PC (identity for queues and stats).
    pub pc: u64,
    /// The operation.
    pub inst: Inst,
    /// Pipeline semantics.
    pub kind: SideKind,
    /// Predicate source operand.
    pub pred_src: PredSource,
    /// For [`SideKind::LiveInMove`]: the value to write.
    pub live_in_value: u64,
    /// When `true`, the main thread's fetch resumes once this instruction
    /// retires (the last live-in move of a trigger).
    pub mt_release: bool,
    /// Engine-private tag (iteration index, chain id + generation, ...).
    pub tag: u64,
}

/// Execution results handed back to the engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecInfo {
    /// Destination value (or branch link, or store data).
    pub value: u64,
    /// Branch direction, for branch-like kinds.
    pub taken: bool,
    /// Effective memory address, for loads/stores.
    pub addr: u64,
    /// Predicate evaluation: whether the instruction was predicated-true.
    pub enabled: bool,
}

/// Result of a queue lookup at main-thread fetch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueueLookup {
    /// No queue row for this PC: use the default predictor.
    NoRow,
    /// Queue supplies this prediction.
    Hit(bool),
    /// A row exists but the outcome isn't deposited yet (helper thread
    /// behind): fall back to the default predictor, counted as untimely.
    Untimely,
}

/// Engine state checkpointed at every in-flight main-thread branch.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct EngineCkpt {
    /// `spec_head` of the HT_A queue partition.
    pub a: u64,
    /// `spec_head` of the HT_B queue partition.
    pub b: u64,
    /// Per-branch-queue consumption cursors (Branch Runahead's pop-based
    /// outcome queues); empty for Phelps.
    pub cursors: Vec<u64>,
}

/// What the pipeline should do after a side branch resolves.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SideAction {
    /// Keep going.
    Continue,
    /// Squash this thread's instructions younger than the branch
    /// (inner-thread visit boundary).
    SquashYounger,
    /// Terminate pre-execution entirely.
    Terminate,
}

/// Engine command returned from the retire path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineCmd {
    /// Nothing to do.
    None,
    /// Start pre-execution with the given thread set.
    Trigger(ActiveThreads),
    /// Stop pre-execution and return resources.
    Terminate,
}

/// A pre-execution engine: Phelps helper threads or the Branch Runahead
/// baseline. The pipeline drives it through these hooks.
pub trait PreExecEngine {
    /// Queue lookup for a conditional branch the main thread is fetching.
    fn queue_lookup(&mut self, pc: u64) -> QueueLookup;

    /// The main thread fetched a conditional branch at `pc` with the given
    /// prediction (advances spec pointers / pops BR queues).
    fn on_mt_branch_fetched(&mut self, pc: u64, predicted_taken: bool);

    /// Checkpoint of consumption state, taken at every MT branch fetch.
    fn checkpoint(&self) -> EngineCkpt;

    /// Misprediction recovery: restore consumption state.
    fn restore(&mut self, ckpt: &EngineCkpt);

    /// A main-thread instruction retired. `mispredicted` applies to
    /// conditional branches. Returns a control command.
    fn on_mt_retire(&mut self, rec: &ExecRecord, mispredicted: bool, cycle: u64) -> EngineCmd;

    /// Classifies a retired main-thread misprediction (Fig. 14) or a
    /// correct queue-supplied prediction (`Eliminated` when the default
    /// predictor would have been wrong).
    fn classify(
        &mut self,
        pc: u64,
        from_queue: bool,
        mispredicted: bool,
        default_wrong: bool,
    ) -> MispredictClass;

    /// Which thread set the engine wants while triggered.
    fn active_threads(&self) -> ActiveThreads;

    /// Supplies the next instruction to fetch for side thread `tid`
    /// (`HT_A`/`HT_B`), or `None` to idle this cycle.
    fn side_fetch(&mut self, tid: usize, cycle: u64) -> Option<SideInst>;

    /// A side instruction finished executing (engine deposits here when it
    /// uses execute-time outcome queues, e.g. Branch Runahead).
    fn side_executed(&mut self, tid: usize, inst: &SideInst, info: &ExecInfo, cycle: u64);

    /// A side branch resolved: the engine steers sequencing.
    fn side_branch_resolved(&mut self, tid: usize, inst: &SideInst, taken: bool) -> SideAction;

    /// A side instruction retired in order (Phelps deposits here).
    fn side_retired(&mut self, tid: usize, inst: &SideInst, info: &ExecInfo, cycle: u64);

    /// Pre-execution was terminated (cleanup).
    fn on_terminated(&mut self);

    /// Whether side threads retire loosely (free resources at execute,
    /// no program-order retire) — used by Branch Runahead chains.
    fn loose_retire(&self) -> bool {
        false
    }

    /// Instructions the engine wants squashed right now (selective chain
    /// rollback); identified by their engine tags. Cleared by the call.
    fn take_squash_tags(&mut self) -> Vec<u64> {
        Vec::new()
    }
}

/// Simulation mode.
#[derive(Clone, Debug)]
pub enum Mode {
    /// Plain superscalar, full resources.
    Baseline,
    /// Oracle branch prediction at fetch.
    PerfectBp,
    /// Main thread only, but resources halved (Fig. 13c isolation).
    PartitionOnly,
    /// Phelps pre-execution with feature toggles.
    Phelps(PhelpsFeatures),
}

/// Ablation toggles for Phelps (Fig. 11 / Fig. 12b).
#[derive(Clone, Copy, Debug)]
pub struct PhelpsFeatures {
    /// Include influential stores in helper threads.
    pub include_stores: bool,
    /// Pre-execute delinquent branches that are guarded by other
    /// delinquent branches (b2). When `false`, guarded producers are
    /// dropped (the `Phelps:b1` / `Phelps:b1→s1` ablations).
    pub preexec_guarded_branches: bool,
}

impl PhelpsFeatures {
    /// Full-featured Phelps (`b1→b2→s1`).
    pub fn full() -> PhelpsFeatures {
        PhelpsFeatures {
            include_stores: true,
            preexec_guarded_branches: true,
        }
    }

    /// `Phelps:b1→b2`: guarded branches pre-executed, stores excluded.
    pub fn no_stores() -> PhelpsFeatures {
        PhelpsFeatures {
            include_stores: false,
            preexec_guarded_branches: true,
        }
    }

    /// `Phelps:b1`: only unguarded delinquent branches, no stores.
    pub fn b1_only() -> PhelpsFeatures {
        PhelpsFeatures {
            include_stores: false,
            preexec_guarded_branches: false,
        }
    }

    /// `Phelps:b1→s1`: stores included but guarded branches dropped.
    pub fn b1_with_stores() -> PhelpsFeatures {
        PhelpsFeatures {
            include_stores: true,
            preexec_guarded_branches: false,
        }
    }
}

/// Full run configuration.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Core and memory hierarchy.
    pub core: CoreConfig,
    /// Simulation mode.
    pub mode: Mode,
    /// Stop after this many main-thread instructions retire.
    pub max_mt_insts: u64,
    /// Epoch length in retired main-thread instructions (paper: 4M;
    /// experiments scale this down).
    pub epoch_len: u64,
    /// Delinquency threshold in mispredictions per kilo-instruction of the
    /// epoch (paper: 0.5).
    pub delinq_threshold_mpki: f64,
    /// Construction hardware limits.
    pub constructor: ConstructorConfig,
    /// Prediction-queue capacity in iterations (columns; paper: 32).
    pub queue_columns: usize,
    /// Helper-thread speculative store cache sets (2 ways each; paper: 16).
    pub store_cache_sets: usize,
}

impl RunConfig {
    /// A scaled configuration suitable for tests and CI-scale experiments:
    /// 200K-instruction epochs, 2M-instruction regions.
    pub fn scaled(mode: Mode) -> RunConfig {
        RunConfig {
            core: CoreConfig::paper_default(),
            mode,
            max_mt_insts: 2_000_000,
            epoch_len: 200_000,
            delinq_threshold_mpki: 0.5,
            constructor: ConstructorConfig::default(),
            queue_columns: 32,
            store_cache_sets: 16,
        }
    }

    /// The paper's full-scale parameters (4M epochs, 100M regions).
    pub fn paper(mode: Mode) -> RunConfig {
        RunConfig {
            core: CoreConfig::paper_default(),
            mode,
            max_mt_insts: 100_000_000,
            epoch_len: 4_000_000,
            delinq_threshold_mpki: 0.5,
            constructor: ConstructorConfig::default(),
            queue_columns: 32,
            store_cache_sets: 16,
        }
    }

    /// A scaled configuration with caller-chosen region and epoch lengths
    /// — the shared constructor behind unit tests, oracles, and golden
    /// runs, so they can't drift apart one literal at a time.
    pub fn quick(mode: Mode, max_mt_insts: u64, epoch_len: u64) -> RunConfig {
        let mut c = RunConfig::scaled(mode);
        c.max_mt_insts = max_mt_insts;
        c.epoch_len = epoch_len;
        c
    }

    /// The delinquency threshold in absolute mispredictions per epoch.
    pub fn delinq_threshold(&self) -> u64 {
        ((self.delinq_threshold_mpki * self.epoch_len as f64) / 1000.0).max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_matches_paper_scale() {
        let cfg = RunConfig::paper(Mode::Baseline);
        assert_eq!(cfg.delinq_threshold(), 2000, "0.5 MPKI of 4M = 2000");
        let cfg = RunConfig::scaled(Mode::Baseline);
        assert_eq!(cfg.delinq_threshold(), 100);
    }

    #[test]
    fn feature_presets() {
        assert!(PhelpsFeatures::full().include_stores);
        assert!(PhelpsFeatures::full().preexec_guarded_branches);
        assert!(!PhelpsFeatures::no_stores().include_stores);
        assert!(!PhelpsFeatures::b1_only().preexec_guarded_branches);
        assert!(PhelpsFeatures::b1_with_stores().include_stores);
        assert!(!PhelpsFeatures::b1_with_stores().preexec_guarded_branches);
    }

    #[test]
    fn side_kind_from_ht_kind() {
        assert_eq!(SideKind::from(HtKind::Plain), SideKind::Plain);
        assert_eq!(
            SideKind::from(HtKind::PredicateProducer { dest: 3 }),
            SideKind::PredProducer { dest: 3 }
        );
        assert_eq!(SideKind::from(HtKind::LoopBranch), SideKind::LoopBranch);
    }
}
