//! The Phelps pre-execution engine: epochs, delinquency tracking, helper
//! thread construction, triggering, and helper-thread sequencing.
//!
//! This implements [`PreExecEngine`] for the pipeline. Per epoch (paper
//! §V-A): epoch N gathers delinquency in the DBT; at the epoch boundary the
//! Loop Table is built and the most delinquent un-cached loop is chosen;
//! epoch N+1 runs the [`Constructor`] over the retire stream; the finalized
//! helper thread installs into the HTC and can trigger from epoch N+2 on.

use crate::classify::MispredictClass;
use crate::construct::{ConstructionTarget, Constructor, ConstructorConfig, Ineligibility};
use crate::delinq::{build_loop_table, Dbt, LoopBounds};
use crate::htc::{HelperThread, HtKind, Htc, HtcEntry};
use crate::predicate::PredSource;
use crate::predq::PredictionQueues;
use crate::sim::types::{
    EngineCkpt, EngineCmd, ExecInfo, PhelpsFeatures, PreExecEngine, QueueLookup, SideAction,
    SideInst, SideKind, HT_A, HT_B,
};
use crate::visitq::{Visit, VisitQueue, DEFAULT_VISITS};
use phelps_isa::{AluOp, ExecRecord, Inst, Reg, NUM_REGS};
use phelps_telemetry as tlm;
use phelps_uarch::config::ActiveThreads;
use std::collections::{HashMap, HashSet};

/// Sequencer state of one helper thread.
#[derive(Clone, Debug)]
enum SeqState {
    /// Not running (inner-thread waiting for a visit).
    Idle,
    /// Injecting live-in moves (remaining queue); `run_after` selects
    /// whether the thread starts executing the loop body afterwards or
    /// idles for a visit (inner-thread trigger moves).
    Moves(Vec<SideInst>, bool),
    /// Fetching the HTC row sequentially at instruction `idx`.
    Run { idx: usize },
    /// Loop exited / terminated.
    Stopped,
}

#[derive(Clone, Debug)]
struct SideSequencer {
    thread: HelperThread,
    state: SeqState,
    /// Iterations fetched so far (the tag of in-flight instructions).
    iteration: u64,
}

impl SideSequencer {
    fn new(thread: HelperThread) -> SideSequencer {
        SideSequencer {
            thread,
            state: SeqState::Idle,
            iteration: 0,
        }
    }
}

/// Live pre-execution state for a triggered loop.
#[derive(Clone, Debug)]
struct ActiveRun {
    entry: HtcEntry,
    qa: PredictionQueues,
    qb: Option<PredictionQueues>,
    visitq: VisitQueue,
    seq_a: SideSequencer,
    seq_b: Option<SideSequencer>,
}

/// The Phelps engine.
#[derive(Debug)]
pub struct PhelpsEngine {
    features: PhelpsFeatures,
    epoch_len: u64,
    delinq_threshold: u64,
    constructor_cfg: ConstructorConfig,
    /// Prediction-queue capacity in iterations (columns).
    queue_columns: usize,
    dbt: Dbt,
    epoch: u64,
    epoch_insts: u64,
    htc: Htc,
    constructor: Option<Constructor>,
    /// Branch PCs that ever cleared the delinquency threshold.
    delinquent_set: HashSet<u64>,
    /// Branch PCs measured over a full epoch without clearing it.
    measured_not_delinquent: HashSet<u64>,
    /// Loops that failed eligibility, with the reason.
    ineligible: HashMap<LoopBounds, Ineligibility>,
    /// Loop-Table loops seen but not yet chosen for construction.
    detected_not_chosen: HashSet<LoopBounds>,
    /// Shadow of the MT's retired register file (live-in capture).
    mt_regs: [u64; NUM_REGS],
    /// Shadow register files of the side threads (visit live-in capture).
    side_regs: [[u64; NUM_REGS]; 2],
    /// Debug counter: header-branch retirements observed.
    dbg_headers_retired: u64,
    active: Option<ActiveRun>,
}

impl PhelpsEngine {
    /// Seeds the main-thread architectural-register shadow (pre-loop setup
    /// state that no retired instruction will ever rewrite).
    pub fn seed_mt_regs(&mut self, regs: [u64; NUM_REGS]) {
        self.mt_regs = regs;
    }

    /// Overrides the prediction-queue capacity (columns; paper: 32). For
    /// the design-choice ablation harness.
    pub fn set_queue_columns(&mut self, columns: usize) {
        self.queue_columns = columns.max(1);
    }

    /// Creates an engine with the paper's table sizes.
    pub fn new(
        epoch_len: u64,
        delinq_threshold: u64,
        constructor_cfg: ConstructorConfig,
        features: PhelpsFeatures,
    ) -> PhelpsEngine {
        PhelpsEngine {
            features,
            epoch_len,
            delinq_threshold,
            constructor_cfg,
            queue_columns: 32,
            dbt: Dbt::new(256, 32),
            epoch: 0,
            epoch_insts: 0,
            htc: Htc::new(),
            constructor: None,
            delinquent_set: HashSet::new(),
            measured_not_delinquent: HashSet::new(),
            ineligible: HashMap::new(),
            detected_not_chosen: HashSet::new(),
            mt_regs: [0; NUM_REGS],
            side_regs: [[0; NUM_REGS]; 2],
            dbg_headers_retired: 0,
            active: None,
        }
    }

    /// Number of helper threads installed in the HTC.
    pub fn cached_loops(&self) -> usize {
        self.htc.iter().count()
    }

    /// Whether a pre-execution run is live.
    pub fn is_active(&self) -> bool {
        self.active.is_some()
    }

    /// The recorded ineligibility reasons (loop → reason).
    pub fn ineligible_loops(&self) -> impl Iterator<Item = (&LoopBounds, &Ineligibility)> {
        self.ineligible.iter()
    }

    // ------------------------------------------------------------------
    // Feature ablations (Fig. 11 / Fig. 12b)
    // ------------------------------------------------------------------

    fn apply_features(&self, mut entry: HtcEntry) -> HtcEntry {
        let f = self.features;
        let strip = |t: &mut HelperThread| {
            if !f.preexec_guarded_branches {
                // Drop guarded predicate producers; re-guard their
                // consumers on the dropped producer's own guard.
                let dropped: HashMap<u8, PredSource> = t
                    .insts
                    .iter()
                    .filter_map(|i| match i.kind {
                        HtKind::PredicateProducer { dest } if i.pred_src != PredSource::Always => {
                            Some((dest, i.pred_src))
                        }
                        _ => None,
                    })
                    .collect();
                let dropped_pcs: HashSet<u64> = t
                    .insts
                    .iter()
                    .filter(|i| {
                        matches!(i.kind, HtKind::PredicateProducer { dest }
                            if dropped.contains_key(&dest))
                    })
                    .map(|i| i.pc)
                    .collect();
                t.insts.retain(|i| !dropped_pcs.contains(&i.pc));
                t.queue_rows.retain(|pc| !dropped_pcs.contains(pc));
                for i in &mut t.insts {
                    // Chase re-guarding through (possibly chained) drops.
                    let mut guard = i.pred_src;
                    while let PredSource::Guarded { reg, .. } = guard {
                        match dropped.get(&reg) {
                            Some(&parent) => guard = parent,
                            None => break,
                        }
                    }
                    i.pred_src = guard;
                }
            }
            if !f.include_stores {
                t.insts.retain(|i| i.kind != HtKind::Store);
            }
        };
        strip(&mut entry.inner);
        if let Some(outer) = entry.outer.as_mut() {
            strip(outer);
        }
        entry
    }

    // ------------------------------------------------------------------
    // Epoch machinery
    // ------------------------------------------------------------------

    fn end_epoch(&mut self, cycle: u64) {
        tlm::count(tlm::Counter::EpochsEnded);
        let dbg = std::env::var("PHELPS_DBG").is_ok();
        // Finalize any in-flight construction.
        if let Some(c) = self.constructor.take() {
            let bounds = c.target().bounds;
            match c.finalize(self.epoch) {
                Ok(entry) => {
                    if dbg {
                        eprintln!(
                            "[dbg] epoch {} installed loop {:#x}..{:#x} ({} insts, nested={})",
                            self.epoch,
                            bounds.target_pc,
                            bounds.branch_pc,
                            entry.total_insts(),
                            entry.is_nested()
                        );
                    }
                    let entry = self.apply_features(entry);
                    tlm::count(tlm::Counter::HtcInstalls);
                    tlm::event(
                        tlm::EventKind::HtcInstall,
                        cycle,
                        bounds.target_pc,
                        self.epoch,
                    );
                    self.htc.install(entry);
                    self.detected_not_chosen.remove(&bounds);
                }
                Err(reason) => {
                    if dbg {
                        eprintln!(
                            "[dbg] epoch {} ineligible loop {:#x}..{:#x}: {reason}",
                            self.epoch, bounds.target_pc, bounds.branch_pc
                        );
                    }
                    self.ineligible.insert(bounds, reason);
                    self.detected_not_chosen.remove(&bounds);
                }
            }
        }

        // Mark branches measured a full epoch without clearing the bar.
        for (pc, misp) in self.dbt.ranking() {
            if misp >= self.delinq_threshold {
                self.delinquent_set.insert(pc);
                self.measured_not_delinquent.remove(&pc);
            } else if !self.delinquent_set.contains(&pc) {
                self.measured_not_delinquent.insert(pc);
            }
        }

        // Build the Loop Table and choose the next construction target.
        let lt = build_loop_table(&self.dbt, self.delinq_threshold, 8);
        if dbg {
            for e in &lt {
                eprintln!(
                    "[dbg] epoch {} LT loop {:#x}..{:#x} inner={:x?} misp={} branches={:x?}",
                    self.epoch, e.bounds.target_pc, e.bounds.branch_pc, e.inner, e.misp, e.branches
                );
            }
            let top: Vec<(u64, u64)> = self.dbt.ranking().into_iter().take(6).collect();
            eprintln!("[dbg] epoch {} dbt-top={top:x?}", self.epoch);
        }
        let mut chosen = false;
        for e in &lt {
            let known = self.htc.has_loop(e.bounds) || self.ineligible.contains_key(&e.bounds);
            if known {
                continue;
            }
            if !chosen {
                self.constructor = Some(Constructor::with_config(
                    ConstructionTarget {
                        bounds: e.bounds,
                        inner: e.inner,
                        delinquent: e.branches.clone(),
                    },
                    self.constructor_cfg.clone(),
                ));
                self.detected_not_chosen.remove(&e.bounds);
                chosen = true;
            } else {
                self.detected_not_chosen.insert(e.bounds);
            }
        }

        self.dbt.reset_epoch();
        self.epoch += 1;
        self.epoch_insts = 0;
    }

    // ------------------------------------------------------------------
    // Trigger / side-thread setup
    // ------------------------------------------------------------------

    fn start_run(&mut self, entry: HtcEntry) -> ActiveThreads {
        if std::env::var("PHELPS_DBG").is_ok() {
            eprintln!("[dbg] start_run: nested={}", entry.is_nested());
            for t in std::iter::once(&entry.inner).chain(entry.outer.as_ref()) {
                eprintln!(
                    "[dbg]  thread {:?} live_mt={:?} live_ot={:?} rows={:x?}",
                    t.kind, t.live_ins_mt, t.live_ins_ot, t.queue_rows
                );
                for i in &t.insts {
                    eprintln!(
                        "[dbg]   {:#x}: {} kind={:?} pred={:?}",
                        i.pc, i.inst, i.kind, i.pred_src
                    );
                }
            }
        }
        let nested = entry.is_nested();
        let qa_rows: Vec<u64> = if nested {
            entry.outer.as_ref().expect("nested").queue_rows.clone()
        } else {
            entry.inner.queue_rows.clone()
        };
        let qb_rows: Vec<u64> = if nested {
            entry.inner.queue_rows.clone()
        } else {
            Vec::new()
        };

        let mut seq_a = SideSequencer::new(if nested {
            entry.outer.clone().expect("nested")
        } else {
            entry.inner.clone()
        });
        // HT_A starts with its live-in moves immediately.
        seq_a.state = SeqState::Moves(
            self.live_in_moves(&seq_a.thread.live_ins_mt.clone(), true),
            true,
        );

        let seq_b = nested.then(|| {
            let mut s = SideSequencer::new(entry.inner.clone());
            // IT copies its MT live-ins at trigger, then idles for a visit.
            let moves = self.live_in_moves(&s.thread.live_ins_mt.clone(), false);
            s.state = if moves.is_empty() {
                SeqState::Idle
            } else {
                SeqState::Moves(moves, false)
            };
            s
        });

        self.side_regs = [[0; NUM_REGS]; 2];
        let columns = self.queue_columns;
        self.active = Some(ActiveRun {
            qa: PredictionQueues::new(&qa_rows, columns),
            qb: (!qb_rows.is_empty()).then(|| PredictionQueues::new(&qb_rows, columns)),
            visitq: VisitQueue::new(DEFAULT_VISITS),
            seq_a,
            seq_b,
            entry,
        });
        if nested {
            ActiveThreads::MainPlusOtIt
        } else {
            ActiveThreads::MainPlusIto
        }
    }

    /// Builds annotated live-in move instructions from the MT register
    /// shadow. `release` marks the last move so MT fetch resumes on its
    /// retirement; a dummy move is emitted when the set is empty.
    fn live_in_moves(&self, regs: &[Reg], release: bool) -> Vec<SideInst> {
        let mut moves: Vec<SideInst> = regs
            .iter()
            .map(|&r| SideInst {
                pc: 0,
                inst: Inst::Li {
                    rd: r,
                    imm: self.mt_regs[r.index()] as i64,
                },
                kind: SideKind::LiveInMove,
                pred_src: PredSource::Always,
                live_in_value: self.mt_regs[r.index()],
                mt_release: false,
                tag: 0,
            })
            .collect();
        if release {
            if moves.is_empty() {
                moves.push(SideInst {
                    pc: 0,
                    inst: Inst::AluImm {
                        op: AluOp::Add,
                        rd: Reg::ZERO,
                        rs1: Reg::ZERO,
                        imm: 0,
                    },
                    kind: SideKind::LiveInMove,
                    pred_src: PredSource::Always,
                    live_in_value: 0,
                    mt_release: false,
                    tag: 0,
                });
            }
            moves.last_mut().expect("nonempty").mt_release = true;
        }
        moves
    }
}

impl PreExecEngine for PhelpsEngine {
    fn queue_lookup(&mut self, pc: u64) -> QueueLookup {
        let Some(run) = self.active.as_ref() else {
            return QueueLookup::NoRow;
        };
        if let Some(qb) = &run.qb {
            if qb.has_row(pc) {
                return match qb.consume(pc) {
                    Some(p) => QueueLookup::Hit(p),
                    None => QueueLookup::Untimely,
                };
            }
        }
        if run.qa.has_row(pc) {
            return match run.qa.consume(pc) {
                Some(p) => QueueLookup::Hit(p),
                None => QueueLookup::Untimely,
            };
        }
        QueueLookup::NoRow
    }

    fn on_mt_branch_fetched(&mut self, pc: u64, _predicted_taken: bool) {
        let Some(run) = self.active.as_mut() else {
            return;
        };
        if pc == run.entry.bounds.branch_pc {
            run.qa.advance_spec_head();
        }
        if let (Some(inner), Some(qb)) = (run.entry.inner_bounds, run.qb.as_mut()) {
            if pc == inner.branch_pc {
                qb.advance_spec_head();
            }
        }
    }

    fn checkpoint(&self) -> EngineCkpt {
        match self.active.as_ref() {
            Some(run) => EngineCkpt {
                a: run.qa.spec_head(),
                b: run.qb.as_ref().map_or(0, PredictionQueues::spec_head),
                cursors: Vec::new(),
            },
            None => EngineCkpt::default(),
        }
    }

    fn restore(&mut self, ckpt: &EngineCkpt) {
        if let Some(run) = self.active.as_mut() {
            run.qa.rollback_spec_head(ckpt.a);
            if let Some(qb) = run.qb.as_mut() {
                qb.rollback_spec_head(ckpt.b);
            }
        }
    }

    fn on_mt_retire(&mut self, rec: &ExecRecord, default_wrong: bool, cycle: u64) -> EngineCmd {
        // Shadow architectural state.
        if let Some(dst) = rec.inst.dst() {
            self.mt_regs[dst.index()] = rec.rd_value;
        }

        // Delinquency training. Loop-bounds training must see the *previous*
        // backward branch (a backward branch's own retirement trains it
        // against the enclosing loop, not itself), so the entry update
        // precedes the backward-branch bookkeeping.
        if let Inst::Branch { target, .. } = rec.inst {
            self.dbt.on_cond_branch_retire(rec.pc, default_wrong);
            if target < rec.pc {
                self.dbt.on_backward_branch(rec.pc, target);
            }
            if default_wrong {
                if let Some(e) = self.dbt.entry(rec.pc) {
                    if e.misp >= self.delinq_threshold {
                        self.delinquent_set.insert(rec.pc);
                        self.measured_not_delinquent.remove(&rec.pc);
                    }
                }
            }
        }

        // Construction.
        if let Some(c) = self.constructor.as_mut() {
            c.on_retire(rec);
        }

        // Epoch boundary.
        self.epoch_insts += 1;
        if self.epoch_insts >= self.epoch_len {
            self.end_epoch(cycle);
        }

        // Active-run bookkeeping.
        if let Some(run) = self.active.as_mut() {
            // Column free on MT loop-branch retire.
            if rec.pc == run.entry.bounds.branch_pc && run.qa.spec_head() > run.qa.head() {
                run.qa.advance_head();
            }
            if let (Some(inner), Some(qb)) = (run.entry.inner_bounds, run.qb.as_mut()) {
                if rec.pc == inner.branch_pc && qb.spec_head() > qb.head() {
                    qb.advance_head();
                }
            }
            // Termination: MT left the loop.
            if !run.entry.bounds.contains(rec.pc) {
                if std::env::var("PHELPS_DBG").is_ok() {
                    eprintln!("[dbg] terminate: MT retired {:#x} outside bounds", rec.pc);
                }
                return EngineCmd::Terminate;
            }
            // Resync: the helper thread fell hopelessly behind the main
            // thread's consumption (e.g. after warm-up transients); kill
            // the run so the next loop-top retirement re-triggers it with
            // fresh live-ins.
            if run.qa.spec_head().saturating_sub(run.qa.tail())
                > 4 * crate::predq::DEFAULT_COLUMNS as u64
            {
                if std::env::var("PHELPS_DBG").is_ok() {
                    eprintln!(
                        "[dbg] terminate: resync (spec_head {} tail {})",
                        run.qa.spec_head(),
                        run.qa.tail()
                    );
                }
                return EngineCmd::Terminate;
            }
            return EngineCmd::None;
        }

        // Trigger check: MT retired the loop's start PC.
        if self.htc.lookup(rec.pc).is_some() {
            let mut entry = self.htc.lookup(rec.pc).expect("just found").clone();
            entry.last_trigger_epoch = self.epoch;
            if let Some(slot) = self.htc.lookup_mut(rec.pc) {
                slot.last_trigger_epoch = self.epoch;
            }
            let threads = self.start_run(entry);
            return EngineCmd::Trigger(threads);
        }
        EngineCmd::None
    }

    fn classify(
        &mut self,
        pc: u64,
        from_queue: bool,
        mispredicted: bool,
        default_wrong: bool,
    ) -> MispredictClass {
        if !mispredicted {
            // Only meaningful as "eliminated": queue was right where the
            // default predictor would have been wrong.
            return if from_queue && default_wrong {
                MispredictClass::Eliminated
            } else {
                // Recorded by the pipeline only for Eliminated; any other
                // value is ignored for correct predictions.
                MispredictClass::NotDelinquent
            };
        }
        if from_queue {
            return MispredictClass::HtWrongOutcome;
        }
        if let Some(run) = self.active.as_ref() {
            let has_row = run.qa.has_row(pc) || run.qb.as_ref().is_some_and(|q| q.has_row(pc));
            if has_row {
                return MispredictClass::HtUntimely;
            }
        }
        if self.delinquent_set.contains(&pc) {
            let Some(entry) = self.dbt.entry(pc) else {
                return MispredictClass::GatheringDelinquency; // evicted
            };
            let Some(inner) = entry.inner else {
                return MispredictClass::NotInLoop;
            };
            let outermost = entry.outer.unwrap_or(inner);
            if let Some(c) = self.constructor.as_ref() {
                if c.target().bounds == outermost {
                    return MispredictClass::HtBeingConstructed;
                }
            }
            if let Some(reason) = self.ineligible.get(&outermost) {
                return match reason {
                    Ineligibility::NotIteratingEnough { .. } => MispredictClass::NotIteratingEnough,
                    Ineligibility::TooBig { .. }
                    | Ineligibility::HtcbOverflow
                    | Ineligibility::TooManyLiveIns { .. }
                    | Ineligibility::TooManyQueueRows { .. }
                    | Ineligibility::AlternateProducers
                    | Ineligibility::OuterDependsOnInner => MispredictClass::HtTooBig,
                    Ineligibility::NoLoopObserved => MispredictClass::NotInLoop,
                };
            }
            if self.detected_not_chosen.contains(&outermost) {
                return MispredictClass::HtNotConstructed;
            }
            if self.htc.has_loop(outermost) {
                // HT exists but isn't supplying this instance (warm-up,
                // between triggers).
                return MispredictClass::HtUntimely;
            }
            return MispredictClass::GatheringDelinquency;
        }
        if self.measured_not_delinquent.contains(&pc) {
            MispredictClass::NotDelinquent
        } else {
            MispredictClass::GatheringDelinquency
        }
    }

    fn active_threads(&self) -> ActiveThreads {
        match self.active.as_ref() {
            Some(run) if run.entry.is_nested() => ActiveThreads::MainPlusOtIt,
            Some(_) => ActiveThreads::MainPlusIto,
            None => ActiveThreads::MainOnly,
        }
    }

    fn side_fetch(&mut self, tid: usize, _cycle: u64) -> Option<SideInst> {
        if _cycle.is_multiple_of(100_000) && tid == HT_A && std::env::var("PHELPS_DBG").is_ok() {
            if let Some(run) = self.active.as_ref() {
                eprintln!(
                    "[dbg] cycle={} seq_a iter={} state={:?} qa h/s/t={}/{}/{} visits={}",
                    _cycle,
                    run.seq_a.iteration,
                    match &run.seq_a.state {
                        SeqState::Idle => "idle",
                        SeqState::Moves(..) => "moves",
                        SeqState::Run { .. } => "run",
                        SeqState::Stopped => "stopped",
                    },
                    run.qa.head(),
                    run.qa.spec_head(),
                    run.qa.tail(),
                    run.visitq.len()
                );
                if let (Some(qb), Some(sb)) = (run.qb.as_ref(), run.seq_b.as_ref()) {
                    eprintln!(
                        "[dbg]   seq_b iter={} state={:?} qb h/s/t={}/{}/{}",
                        sb.iteration,
                        match &sb.state {
                            SeqState::Idle => "idle",
                            SeqState::Moves(..) => "moves",
                            SeqState::Run { .. } => "run",
                            SeqState::Stopped => "stopped",
                        },
                        qb.head(),
                        qb.spec_head(),
                        qb.tail()
                    );
                }
            }
        }
        let run = self.active.as_mut()?;
        let nested = run.entry.is_nested();
        let (seqr, q) = match tid {
            HT_A => (&mut run.seq_a, &run.qa),
            HT_B => (run.seq_b.as_mut()?, run.qb.as_ref()?),
            _ => return None,
        };
        loop {
            match &mut seqr.state {
                SeqState::Stopped => return None,
                SeqState::Moves(moves, run_after) => {
                    if moves.is_empty() {
                        seqr.state = if *run_after {
                            SeqState::Run { idx: 0 }
                        } else {
                            SeqState::Idle
                        };
                        continue;
                    }
                    return Some(moves.remove(0));
                }
                SeqState::Idle => {
                    if tid != HT_B {
                        seqr.state = SeqState::Run { idx: 0 };
                        continue;
                    }
                    // Inner-thread: wait for a visit.
                    match run.visitq.dequeue() {
                        Some(v) => {
                            tlm::count(tlm::Counter::VisitDequeues);
                            let mvs: Vec<SideInst> = v
                                .live_ins
                                .iter()
                                .map(|&(r, val)| SideInst {
                                    pc: 0,
                                    inst: Inst::Li {
                                        rd: r,
                                        imm: val as i64,
                                    },
                                    kind: SideKind::LiveInMove,
                                    pred_src: PredSource::Always,
                                    live_in_value: val,
                                    mt_release: false,
                                    tag: seqr.iteration,
                                })
                                .collect();
                            if mvs.is_empty() {
                                seqr.state = SeqState::Run { idx: 0 };
                            } else {
                                seqr.state = SeqState::Moves(mvs, true);
                            }
                            continue;
                        }
                        None => return None,
                    }
                }
                SeqState::Run { idx } => {
                    // New-iteration gating: prediction queue must have room
                    // for the iterations in flight. (The main thread may
                    // have consumed far past us — saturate.)
                    if *idx == 0
                        && seqr.iteration.saturating_sub(q.head()) >= self.queue_columns as u64
                    {
                        return None;
                    }
                    // Outer-thread gating on visit-queue headroom.
                    if tid == HT_A && nested && *idx == 0 {
                        let in_flight = seqr.iteration.saturating_sub(run.qa.tail());
                        if run.visitq.len() as u64 + in_flight >= DEFAULT_VISITS as u64 {
                            return None;
                        }
                    }
                    let ht = &seqr.thread.insts[*idx];
                    let side = SideInst {
                        pc: ht.pc,
                        inst: ht.inst,
                        kind: ht.kind.into(),
                        pred_src: ht.pred_src,
                        live_in_value: 0,
                        mt_release: false,
                        tag: seqr.iteration,
                    };
                    if *idx + 1 >= seqr.thread.insts.len() {
                        // Wrapped past the loop branch: next iteration
                        // (loop branch assumed taken).
                        seqr.iteration += 1;
                        seqr.state = SeqState::Run { idx: 0 };
                    } else {
                        *idx += 1;
                    }
                    return Some(side);
                }
            }
        }
    }

    fn side_executed(&mut self, _tid: usize, _inst: &SideInst, _info: &ExecInfo, _cycle: u64) {
        // Phelps deposits at retire; nothing to do at execute.
    }

    fn side_branch_resolved(&mut self, tid: usize, inst: &SideInst, taken: bool) -> SideAction {
        let Some(run) = self.active.as_mut() else {
            return SideAction::Continue;
        };
        match inst.kind {
            SideKind::LoopBranch => {
                if taken {
                    return SideAction::Continue;
                }
                if tid == HT_A {
                    // ITO/OT loop exhausted: pre-execution over.
                    run.seq_a.state = SeqState::Stopped;
                    return SideAction::Terminate;
                }
                // Inner-thread visit completed: squash the speculative
                // next iterations and move to the next visit.
                if let Some(seq_b) = run.seq_b.as_mut() {
                    seq_b.iteration = inst.tag + 1;
                    seq_b.state = SeqState::Idle;
                }
                SideAction::SquashYounger
            }
            _ => SideAction::Continue,
        }
    }

    fn side_retired(&mut self, tid: usize, inst: &SideInst, info: &ExecInfo, _cycle: u64) {
        // Shadow the side thread's committed registers.
        if let Some(dst) = inst.inst.dst() {
            self.side_regs[tid - 1][dst.index()] = info.value;
        }
        let Some(run) = self.active.as_mut() else {
            return;
        };
        let q = match tid {
            HT_A => &mut run.qa,
            _ => match run.qb.as_mut() {
                Some(q) => q,
                None => return,
            },
        };
        match inst.kind {
            SideKind::PredProducer { .. } => {
                q.deposit(inst.pc, info.taken);
                tlm::count(tlm::Counter::PredDeposits);
            }
            SideKind::HeaderBranch => {
                self.dbg_headers_retired += 1;
                q.deposit(inst.pc, info.taken);
                tlm::count(tlm::Counter::PredDeposits);
                if !info.taken {
                    // Inner loop will be visited: queue it with the
                    // outer-thread's current values for IT's OT live-ins.
                    let live_ins: Vec<(Reg, u64)> = run
                        .entry
                        .inner
                        .live_ins_ot
                        .iter()
                        .map(|&r| (r, self.side_regs[HT_A - 1][r.index()]))
                        .collect();
                    run.visitq.enqueue(Visit { live_ins });
                    tlm::count(tlm::Counter::VisitEnqueues);
                    tlm::gauge(tlm::Gauge::VisitQueueDepth, run.visitq.len() as u64);
                }
            }
            SideKind::LoopBranch => {
                q.deposit(inst.pc, info.taken);
                tlm::count(tlm::Counter::PredDeposits);
                q.advance_tail();
                tlm::gauge(
                    tlm::Gauge::PredQueueDepth,
                    q.tail().saturating_sub(q.head()),
                );
            }
            _ => {}
        }
    }

    fn on_terminated(&mut self) {
        if std::env::var("PHELPS_DBG").is_ok() {
            if let Some(run) = self.active.as_ref() {
                eprintln!(
                    "[dbg] terminated: visits_enq={} rejects={} qa t={} seq_a it={} headers_seen={}",
                    run.visitq.enqueued,
                    run.visitq.full_rejections,
                    run.qa.tail(),
                    run.seq_a.iteration,
                    self.dbg_headers_retired
                );
            }
        }
        self.active = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> PhelpsEngine {
        PhelpsEngine::new(
            10_000,
            5,
            ConstructorConfig::default(),
            PhelpsFeatures::full(),
        )
    }

    #[test]
    fn starts_inactive_and_empty() {
        let e = engine();
        assert!(!e.is_active());
        assert_eq!(e.cached_loops(), 0);
        assert_eq!(e.active_threads(), ActiveThreads::MainOnly);
    }

    #[test]
    fn queue_lookup_without_run_is_norow() {
        let mut e = engine();
        assert_eq!(e.queue_lookup(0x1234), QueueLookup::NoRow);
    }

    #[test]
    fn classify_progression() {
        let mut e = engine();
        // Unknown branch while still measuring.
        assert_eq!(
            e.classify(0x40, false, true, true),
            MispredictClass::GatheringDelinquency
        );
        // Correct queue prediction where the default was wrong: eliminated.
        assert_eq!(
            e.classify(0x40, true, false, true),
            MispredictClass::Eliminated
        );
        // Wrong queue prediction.
        assert_eq!(
            e.classify(0x40, true, true, true),
            MispredictClass::HtWrongOutcome
        );
    }

    #[test]
    fn checkpoint_roundtrip_without_run() {
        let mut e = engine();
        let c = e.checkpoint();
        e.restore(&c); // no-op, must not panic
        assert_eq!(c, EngineCkpt::default());
    }
}
